package codec

import (
	"repro/internal/field"
	"repro/internal/postproc"
	"repro/internal/zfp"
)

func init() { Register(zfpCodec{}) }

// zfpCodec adapts the block-wise transform backend.
type zfpCodec struct{}

func (zfpCodec) Name() string   { return "zfp" }
func (zfpCodec) WireID() byte   { return ZFPID }
func (zfpCodec) Lossless() bool { return false }

func (zfpCodec) Compress(f *field.Field, p Params) ([]byte, error) {
	return zfp.Compress(f, zfp.Options{Tolerance: p.EB})
}

func (zfpCodec) Decompress(data []byte) (*field.Field, error) {
	return zfp.Decompress(data)
}

// PostBlockSize is zfp's fixed 4³ transform block.
func (zfpCodec) PostBlockSize(p Params, unitSize int) int { return zfp.BlockSize }

// PostCandidates exploits zfp's underestimation characteristic (§III-B):
// the achieved error sits well below the tolerance, so stronger smoothing
// candidates stay within the bound.
func (zfpCodec) PostCandidates() []float64 { return postproc.ZFPCandidates() }

func (zfpCodec) PadAndAdaptiveEB() bool { return false }
