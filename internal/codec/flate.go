package codec

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/flatepool"
)

func init() { Register(flateCodec{}) }

const (
	flateMagic   = "RAWF"
	flateVersion = 1
)

// flateCodec is the lossless passthrough: the field's raw wire form
// (24-byte dims header + little-endian float64 samples) wrapped in DEFLATE.
// It exists for fields that must survive bit-exactly — segmentation masks,
// particle/halo ID grids, boolean ROI maps — which an error-bounded codec
// would silently corrupt even at tiny bounds. Every float bit pattern,
// NaN payloads included, round-trips unchanged.
type flateCodec struct{}

func (flateCodec) Name() string   { return "flate" }
func (flateCodec) WireID() byte   { return FlateID }
func (flateCodec) Lossless() bool { return true }

// Compress ignores Params entirely: there is no error bound to apply.
func (flateCodec) Compress(f *field.Field, _ Params) ([]byte, error) {
	var raw bytes.Buffer
	raw.Grow(24 + f.Bytes())
	if _, err := f.WriteTo(&raw); err != nil {
		return nil, err
	}
	packed, err := flatepool.Deflate(raw.Bytes())
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(flateMagic)+1+len(packed))
	out = append(out, flateMagic...)
	out = append(out, flateVersion)
	return append(out, packed...), nil
}

func (flateCodec) Decompress(data []byte) (*field.Field, error) {
	if len(data) < len(flateMagic)+1 || string(data[:len(flateMagic)]) != flateMagic {
		return nil, errors.New("flate: bad magic")
	}
	if data[len(flateMagic)] != flateVersion {
		return nil, fmt.Errorf("flate: unsupported version %d", data[len(flateMagic)])
	}
	body := data[len(flateMagic)+1:]
	// DEFLATE expands at most ~1032:1, so the compressed size bounds the
	// raw size any intact payload can declare — a corrupt header claiming
	// huge dimensions is rejected before the field is allocated.
	maxRaw := int64(len(body))*1032 + 64
	f, err := field.ReadFromLimit(flate.NewReader(bytes.NewReader(body)), maxRaw)
	if err != nil {
		return nil, fmt.Errorf("flate: %w", err)
	}
	return f, nil
}

// PostBlockSize is zero: a lossless codec introduces no block artifacts.
func (flateCodec) PostBlockSize(Params, int) int { return 0 }

func (flateCodec) PostCandidates() []float64 { return nil }

func (flateCodec) PadAndAdaptiveEB() bool { return false }
