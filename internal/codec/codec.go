// Package codec is the backend-compressor seam of the container pipeline:
// every behavior that used to be a per-backend switch in core, the reader,
// or the servers — compress, decompress, post-processing block size and
// intensity candidates, name/flag/query parsing — is a method on the Codec
// interface, dispatched through a registry keyed by wire ID (the byte
// containers and index footers store) and by name (what flags and query
// parameters carry).
//
// The four built-in codecs register themselves at init: the three
// error-bounded lossy backends of the paper (sz3, sz2, zfp — §III-B's
// multi-backend design) plus a lossless raw+flate passthrough for fields
// that must survive bit-exactly (masks, particle IDs). Adding a backend is
// one file implementing Codec plus a Register call; core, the reader, and
// the servers pick it up without modification.
//
// Wire IDs are a stable, append-only namespace: they appear in container
// headers, per-stream codec bytes (format v4), and index footers, so an ID
// must never be reused or renumbered.
package codec

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/field"
	"repro/internal/obs"
)

// Wire IDs of the built-in codecs. These match the historical
// core.Compressor byte values, so every container ever written remains
// decodable through the registry.
const (
	SZ3ID   byte = 0 // global interpolation (default)
	SZ2ID   byte = 1 // block-wise Lorenzo/regression
	ZFPID   byte = 2 // block-wise transform
	FlateID byte = 3 // lossless raw+flate passthrough
)

// Params carries the compression-time knobs a codec may consume. It is the
// union of all backends' options; each codec reads only its own fields and
// ignores the rest (sz2 never sees Interp, flate ignores everything).
type Params struct {
	// EB is the absolute error bound (> 0 for the lossy codecs; ignored by
	// lossless ones).
	EB float64
	// AdaptiveEB enables the per-interpolation-level bound
	// eb_l = eb / min(α^(L−l), β) (sz3 only).
	AdaptiveEB bool
	// Alpha and Beta parameterize AdaptiveEB.
	Alpha, Beta float64
	// SZ2BlockSize overrides sz2's block edge (0 = the backend default).
	SZ2BlockSize int
	// Interp selects the sz3 interpolant, as its wire byte.
	Interp byte
	// EntropyLanes selects the entropy stage's interleaved lane count for
	// the huffman-based codecs (sz2, sz3): 0/1 single-lane (the default
	// legacy format), EntropyLanesAuto to pick from the stream size, or an
	// explicit power of two. Other codecs ignore it.
	EntropyLanes int
}

// Codec is one compression backend behind the container pipeline.
// Implementations must be safe for concurrent use: the pipeline calls
// Compress and Decompress from many worker goroutines at once.
type Codec interface {
	// Name is the codec's stable lowercase name ("sz3"), used by CLI flags
	// and HTTP query parameters.
	Name() string
	// WireID is the byte stored in container headers, per-stream codec
	// bytes, and index footers. Stable forever.
	WireID() byte
	// Lossless reports whether Decompress(Compress(f)) == f bit-exactly.
	// Lossless codecs are skipped by error-bounded post-processing and by
	// intensity sampling.
	Lossless() bool
	// Compress encodes one field under p. The output must be
	// self-describing: Decompress needs no side information.
	Compress(f *field.Field, p Params) ([]byte, error)
	// Decompress decodes a payload produced by Compress.
	Decompress(data []byte) (*field.Field, error)
	// PostBlockSize is the block edge whose boundaries the error-bounded
	// post-processor should smooth for this backend, given the pipeline's
	// unit block size at the level being processed (§III-B: the partition
	// size for multi-resolution data vs the backend's own block size).
	// Zero means the codec produces no block artifacts to smooth.
	PostBlockSize(p Params, unitSize int) int
	// PostCandidates is the paper's intensity candidate set for this
	// backend's artifact profile (nil when post-processing never applies).
	PostCandidates() []float64
	// PadAndAdaptiveEB reports whether the workflow should default the
	// paper's SZ3MR improvements — XY padding of linear merges and the
	// per-interpolation-level error bound — on for this codec. True only
	// for interpolation-based backends; block-wise and lossless codecs
	// ignore both.
	PadAndAdaptiveEB() bool
}

var (
	byID   = map[byte]Codec{}
	byName = map[string]Codec{}
)

// Register adds a codec to the registry. It panics on a duplicate wire ID
// or name — codec identity clashes are programming errors, caught at init.
func Register(c Codec) {
	id, name := c.WireID(), c.Name()
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("codec: invalid name %q", name))
	}
	if prev, ok := byID[id]; ok {
		panic(fmt.Sprintf("codec: wire ID %d already registered to %q", id, prev.Name()))
	}
	if _, ok := byName[name]; ok {
		panic(fmt.Sprintf("codec: name %q already registered", name))
	}
	byID[id] = c
	byName[name] = c
}

// ByID looks a codec up by its wire ID.
func ByID(id byte) (Codec, bool) {
	c, ok := byID[id]
	return c, ok
}

// ByName looks a codec up by name (case-insensitive).
func ByName(name string) (Codec, bool) {
	c, ok := byName[strings.ToLower(name)]
	return c, ok
}

// Names returns the registered codec names, sorted — the vocabulary CLI
// flags and query parameters accept, and what error messages enumerate.
func Names() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered codec, sorted by name.
func All() []Codec {
	out := make([]Codec, 0, len(byName))
	for _, n := range Names() {
		out = append(out, byName[n])
	}
	return out
}

// DecompressCtx is Decompress under a trace span: when the context carries
// a trace, the decode appears as a "decode" span tagged with the codec name
// and payload size. Without a trace it costs one nil check.
func DecompressCtx(ctx context.Context, c Codec, data []byte) (*field.Field, error) {
	_, sp := obs.StartSpan(ctx, "decode")
	if sp != nil {
		sp.SetTag("codec", c.Name())
		sp.SetTag("bytes", strconv.Itoa(len(data)))
		defer sp.End()
	}
	return c.Decompress(data)
}

// ErrUnknownID formats the standard unknown-wire-ID error, enumerating the
// registered codecs so the message is actionable.
func ErrUnknownID(id byte) error {
	return fmt.Errorf("codec: unknown codec ID %d (registered: %s)", id, strings.Join(Names(), ", "))
}

// ErrUnknownName formats the standard unknown-name error.
func ErrUnknownName(name string) error {
	return fmt.Errorf("codec: unknown codec %q (registered: %s)", name, strings.Join(Names(), ", "))
}
