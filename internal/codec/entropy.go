// Entropy-stage wire registry and the worker-aware decompression seam.
//
// The interleaved entropy format is the first wire change below the codec
// payloads themselves: sz2/sz3 code streams may start with the interleaved
// tag instead of a symbol count. The tag is declared next to the format in
// internal/huffman and re-exported here so the wire-constant registry stays
// the one place enumerating every on-the-wire discriminator.
package codec

import (
	"context"
	"strconv"

	"repro/internal/field"
	"repro/internal/huffman"
	"repro/internal/obs"
)

// EntropyInterleavedTag is the wire discriminator of the interleaved
// multi-lane entropy format inside sz2/sz3 payloads (see
// huffman.InterleavedTag, its declared home). Stable forever: containers
// written with interleaved entropy embed it in every code stream.
const EntropyInterleavedTag = huffman.InterleavedTag

// EntropyLanesAuto requests automatic lane selection from the stream size
// wherever an entropy lane count is an option.
const EntropyLanesAuto = -1

// ValidEntropyLanes reports whether l is an acceptable EntropyLanes value:
// EntropyLanesAuto (any negative), 0/1 for the single-lane format, or a
// power of two up to huffman.MaxLanes.
func ValidEntropyLanes(l int) bool { return huffman.ValidLanes(l) }

// WorkerDecompressor is the optional interface of codecs whose Decompress
// can exploit bounded goroutine parallelism inside a single payload (the
// interleaved entropy lanes). workers follows the pipeline convention:
// 1 is fully serial, ≤ 0 the runtime default. Implementations must return
// identical results for every worker count.
type WorkerDecompressor interface {
	DecompressWorkers(data []byte, workers int) (*field.Field, error)
}

// DecompressWorkersCtx is DecompressCtx with a goroutine bound for codecs
// that support intra-payload parallelism; others fall back to the plain
// serial Decompress. The decode span gains a "workers" tag so traces show
// which requests fanned out inside the entropy stage.
func DecompressWorkersCtx(ctx context.Context, c Codec, data []byte, workers int) (*field.Field, error) {
	wd, ok := c.(WorkerDecompressor)
	if !ok || workers == 1 {
		return DecompressCtx(ctx, c, data)
	}
	_, sp := obs.StartSpan(ctx, "decode")
	if sp != nil {
		sp.SetTag("codec", c.Name())
		sp.SetTag("bytes", strconv.Itoa(len(data)))
		sp.SetTag("workers", strconv.Itoa(workers))
		defer sp.End()
	}
	return wd.DecompressWorkers(data, workers)
}
