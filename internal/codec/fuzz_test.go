package codec

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
	"repro/internal/synth"
)

// seedGoldenStreams walks the committed golden containers' footers and adds
// each backend stream — with its real wire ID — to the corpus, so the fuzzer
// starts from on-disk bytes of every codec we ship (including the mixed
// per-level v4 container) rather than only freshly generated ones.
func seedGoldenStreams(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "core", "testdata", "*.mrw"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no golden containers found: %v", err)
	}
	for _, p := range paths {
		blob, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read golden container: %v", err)
		}
		ix, err := index.ReadFrom(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			f.Fatalf("%s: golden container has no parseable footer: %v", p, err)
		}
		for _, s := range ix.Streams {
			if s.Offset < 0 || s.Len < 0 || s.Offset+s.Len > int64(len(blob)) {
				f.Fatalf("%s: stream out of bounds", p)
			}
			f.Add(s.Compressor, blob[s.Offset:s.Offset+s.Len])
		}
	}
}

// FuzzDecodeStream hammers every registered codec's payload parser with a
// fuzzed wire ID + payload — the exact bytes a hostile container or index
// footer could hand the per-stream decode path. The contract mirrors the
// container header scan's: reject or accept, never panic, and anything
// accepted must be an internally consistent field. It complements
// internal/index's FuzzContainerIndex, which covers the footer locating
// the streams; this covers decoding them.
func FuzzDecodeStream(f *testing.F) {
	seedGoldenStreams(f)
	// Seed with each codec's valid output over two small fields plus
	// truncations and raw garbage, so the fuzzer starts inside every
	// backend's header grammar.
	fields := []struct {
		size int
		seed int64
	}{{8, 1}, {12, 2}}
	for _, fs := range fields {
		src := synth.Generate(synth.Nyx, fs.size, fs.seed)
		eb := src.ValueRange() * 1e-3
		for _, c := range All() {
			blob, err := c.Compress(src, Params{EB: eb})
			if err != nil {
				f.Fatal(err)
			}
			f.Add(c.WireID(), blob)
			f.Add(c.WireID(), blob[:len(blob)/2])
			for _, other := range All() {
				f.Add(other.WireID(), blob) // payload under the wrong codec
			}
		}
	}
	f.Add(byte(0), []byte{})
	f.Add(byte(200), []byte("MRWF garbage"))

	f.Fuzz(func(t *testing.T, id byte, payload []byte) {
		c, ok := ByID(id)
		if !ok {
			return // unregistered IDs are rejected before decode dispatch
		}
		g, err := c.Decompress(payload)
		if err != nil {
			return
		}
		if g == nil {
			t.Fatalf("%s: nil field with nil error", c.Name())
		}
		if g.Nx <= 0 || g.Ny <= 0 || g.Nz <= 0 || len(g.Data) != g.Nx*g.Ny*g.Nz {
			t.Fatalf("%s: inconsistent decoded field %dx%dx%d with %d samples",
				c.Name(), g.Nx, g.Ny, g.Nz, len(g.Data))
		}
	})
}
