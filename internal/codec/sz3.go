package codec

import (
	"repro/internal/field"
	"repro/internal/postproc"
	"repro/internal/sz3"
)

func init() { Register(sz3Codec{}) }

// sz3Codec adapts the global interpolation backend (the default, and the
// substrate of the paper's SZ3MR improvements).
type sz3Codec struct{}

func (sz3Codec) Name() string   { return "sz3" }
func (sz3Codec) WireID() byte   { return SZ3ID }
func (sz3Codec) Lossless() bool { return false }

func (sz3Codec) Compress(f *field.Field, p Params) ([]byte, error) {
	so := sz3.Options{EB: p.EB, Interp: sz3.Interpolant(p.Interp), EntropyLanes: p.EntropyLanes}
	if p.AdaptiveEB {
		so.LevelEB = sz3.AdaptiveLevelEB(p.EB, p.Alpha, p.Beta)
	}
	return sz3.Compress(f, so)
}

func (sz3Codec) Decompress(data []byte) (*field.Field, error) {
	return sz3.Decompress(data)
}

// DecompressWorkers implements WorkerDecompressor: interleaved entropy
// lanes inside the payload decode on up to workers goroutines.
func (sz3Codec) DecompressWorkers(data []byte, workers int) (*field.Field, error) {
	return sz3.DecompressWorkers(data, workers)
}

// PostBlockSize is the pipeline's unit block size: sz3 itself is global
// (no block artifacts), but the partitioned multi-resolution layout
// introduces discontinuities at unit-block boundaries (§III-B: "the
// partition size for multi-resolution data is larger than the block sizes
// used by SZ/ZFP — 16 vs 4").
func (sz3Codec) PostBlockSize(p Params, unitSize int) int { return unitSize }

func (sz3Codec) PostCandidates() []float64 { return postproc.SZ2Candidates() }

func (sz3Codec) PadAndAdaptiveEB() bool { return true }
