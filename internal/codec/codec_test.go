package codec

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/synth"
)

// TestRegistryBuiltins pins the registry's vocabulary and the wire-ID
// assignments, which are burned into every container ever written.
func TestRegistryBuiltins(t *testing.T) {
	wantNames := []string{"flate", "sz2", "sz3", "zfp"}
	names := Names()
	if len(names) != len(wantNames) {
		t.Fatalf("Names() = %v, want %v", names, wantNames)
	}
	for i, n := range wantNames {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, wantNames)
		}
	}
	wantIDs := map[string]byte{"sz3": SZ3ID, "sz2": SZ2ID, "zfp": ZFPID, "flate": FlateID}
	for name, id := range wantIDs {
		c, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) missing", name)
		}
		if c.WireID() != id {
			t.Fatalf("%s wire ID = %d, want %d", name, c.WireID(), id)
		}
		c2, ok := ByID(id)
		if !ok || c2.Name() != name {
			t.Fatalf("ByID(%d) = %v, want %s", id, c2, name)
		}
	}
	if _, ok := ByID(200); ok {
		t.Fatal("ByID(200) resolved an unregistered codec")
	}
	if _, ok := ByName("zstd"); ok {
		t.Fatal(`ByName("zstd") resolved an unregistered codec`)
	}
	// Lookup is case-insensitive (flag and query-parameter ergonomics).
	if _, ok := ByName("SZ3"); !ok {
		t.Fatal(`ByName("SZ3") should resolve case-insensitively`)
	}
}

// TestRoundTripAllCodecs drives every registered codec over a small Nyx
// field at its default options: lossy codecs must respect the error bound,
// lossless ones must reproduce the input bit-for-bit, and compression must
// be deterministic (the container pipeline's byte-identity guarantees
// depend on it).
func TestRoundTripAllCodecs(t *testing.T) {
	f := synth.Generate(synth.Nyx, 16, 3)
	eb := f.ValueRange() * 1e-3
	for _, c := range All() {
		t.Run(c.Name(), func(t *testing.T) {
			p := Params{EB: eb}
			blob, err := c.Compress(f, p)
			if err != nil {
				t.Fatal(err)
			}
			again, err := c.Compress(f, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, again) {
				t.Fatal("compression is not deterministic")
			}
			g, err := c.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !g.SameShape(f) {
				t.Fatalf("decoded shape %v, want %v", g, f)
			}
			if c.Lossless() {
				if !g.Equal(f) {
					t.Fatal("lossless codec did not round-trip bit-exactly")
				}
				return
			}
			if d := f.MaxAbsDiff(g); d > eb {
				t.Fatalf("max error %g exceeds bound %g", d, eb)
			}
		})
	}
}

// TestFlateBitExact exercises the lossless passthrough on the bit patterns
// an error-bounded codec would destroy or normalize: NaN payloads,
// infinities, negative zero, and denormals — the reason mask/ID fields get
// this codec.
func TestFlateBitExact(t *testing.T) {
	c, ok := ByName("flate")
	if !ok {
		t.Fatal("flate codec not registered")
	}
	f := field.New(4, 4, 4)
	for i := range f.Data {
		f.Data[i] = float64(i) * 1e17 // large IDs, exactly representable
	}
	f.Data[0] = math.NaN()
	f.Data[1] = math.Float64frombits(0x7FF8_0000_0000_0001) // NaN with payload
	f.Data[2] = math.Inf(1)
	f.Data[3] = math.Inf(-1)
	f.Data[4] = math.Copysign(0, -1)
	f.Data[5] = math.SmallestNonzeroFloat64
	blob, err := c.Compress(f, Params{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !g.SameShape(f) {
		t.Fatalf("decoded shape %v, want %v", g, f)
	}
	for i := range f.Data {
		if math.Float64bits(f.Data[i]) != math.Float64bits(g.Data[i]) {
			t.Fatalf("sample %d: bits %x -> %x", i, math.Float64bits(f.Data[i]), math.Float64bits(g.Data[i]))
		}
	}
}

// TestFlateRejectsCorruptHeaders locks the decoder's failure modes: wrong
// magic, wrong version, truncation, and a header whose declared dimensions
// exceed what the compressed size could possibly inflate to.
func TestFlateRejectsCorruptHeaders(t *testing.T) {
	c, _ := ByName("flate")
	f := synth.Generate(synth.Nyx, 8, 1)
	blob, err := c.Compress(f, Params{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"short":         blob[:3],
		"bad magic":     append([]byte("XXXX"), blob[4:]...),
		"bad version":   append(append([]byte{}, blob[:4]...), append([]byte{99}, blob[5:]...)...),
		"truncated":     blob[:len(blob)/2],
		"garbage body":  append(append([]byte{}, blob[:5]...), 1, 2, 3, 4),
		"sz3 under raw": {'R', 'A', 'W', 'F', 1, 0},
	}
	for name, b := range cases {
		if _, err := c.Decompress(b); err == nil {
			t.Errorf("%s: decode succeeded on corrupt input", name)
		}
	}
}

// TestLossyPostHooksAgree pins the backend hook values the pipeline's
// post-processing stage depends on (§III-B).
func TestLossyPostHooksAgree(t *testing.T) {
	p := Params{SZ2BlockSize: 6}
	for _, tc := range []struct {
		name     string
		unit     int
		wantBS   int
		wantCand bool
	}{
		{"sz3", 16, 16, true},
		{"sz2", 16, 6, true},
		{"zfp", 16, 4, true},
		{"flate", 16, 0, false},
	} {
		c, ok := ByName(tc.name)
		if !ok {
			t.Fatalf("%s not registered", tc.name)
		}
		if bs := c.PostBlockSize(p, tc.unit); bs != tc.wantBS {
			t.Errorf("%s: PostBlockSize = %d, want %d", tc.name, bs, tc.wantBS)
		}
		if got := len(c.PostCandidates()) > 0; got != tc.wantCand {
			t.Errorf("%s: candidates present = %v, want %v", tc.name, got, tc.wantCand)
		}
	}
}
