package codec

import (
	"repro/internal/field"
	"repro/internal/postproc"
	"repro/internal/sz2"
)

func init() { Register(sz2Codec{}) }

// sz2Codec adapts the block-wise Lorenzo/regression backend.
type sz2Codec struct{}

func (sz2Codec) Name() string   { return "sz2" }
func (sz2Codec) WireID() byte   { return SZ2ID }
func (sz2Codec) Lossless() bool { return false }

func (sz2Codec) Compress(f *field.Field, p Params) ([]byte, error) {
	return sz2.Compress(f, sz2.Options{EB: p.EB, BlockSize: p.SZ2BlockSize, EntropyLanes: p.EntropyLanes})
}

func (sz2Codec) Decompress(data []byte) (*field.Field, error) {
	return sz2.Decompress(data)
}

// DecompressWorkers implements WorkerDecompressor: interleaved entropy
// lanes inside both code chunks decode on up to workers goroutines.
func (sz2Codec) DecompressWorkers(data []byte, workers int) (*field.Field, error) {
	return sz2.DecompressWorkers(data, workers)
}

// PostBlockSize is sz2's own block edge: the block-local regression planes
// disagree at shared faces, the artifact the Bézier post-processor repairs.
func (sz2Codec) PostBlockSize(p Params, unitSize int) int { return p.SZ2BlockSize }

func (sz2Codec) PostCandidates() []float64 { return postproc.SZ2Candidates() }

func (sz2Codec) PadAndAdaptiveEB() bool { return false }
