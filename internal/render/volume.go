package render

import (
	"fmt"
	"image"
	"image/color"
	"math"

	"repro/internal/field"
)

// Volume rendering — the visualization extension the paper's future work
// proposes for the uncertainty stage (§V). A simple emission-absorption ray
// marcher composites the field front-to-back along z, optionally blending a
// per-cell uncertainty field in red, so compression-induced uncertainty can
// be inspected volumetrically instead of per slice.

// VolumeOptions configures the ray marcher.
type VolumeOptions struct {
	// Cmap colors each sample by normalized value (default Viridis).
	Cmap Colormap
	// Opacity scales per-sample opacity; higher = denser (default 0.05).
	Opacity float64
	// Lo, Hi normalize sample values; both zero = field range.
	Lo, Hi float64
}

func (o *VolumeOptions) withDefaults(f *field.Field) VolumeOptions {
	v := *o
	if v.Cmap == nil {
		v.Cmap = Viridis
	}
	if v.Opacity == 0 {
		v.Opacity = 0.05
	}
	if v.Lo == 0 && v.Hi == 0 {
		v.Lo, v.Hi = f.Range()
	}
	if v.Hi == v.Lo {
		v.Hi = v.Lo + 1
	}
	return v
}

// Volume renders the field by front-to-back compositing along +z.
func Volume(f *field.Field, opt VolumeOptions) *image.RGBA {
	opt = (&opt).withDefaults(f)
	img := image.NewRGBA(image.Rect(0, 0, f.Nx, f.Ny))
	den := opt.Hi - opt.Lo
	for y := 0; y < f.Ny; y++ {
		for x := 0; x < f.Nx; x++ {
			var r, g, b, acc float64
			for z := 0; z < f.Nz && acc < 0.995; z++ {
				t := (f.At(x, y, z) - opt.Lo) / den
				if t < 0 {
					t = 0
				} else if t > 1 {
					t = 1
				}
				alpha := opt.Opacity * t * (1 - acc)
				c := opt.Cmap(t)
				r += alpha * float64(c.R)
				g += alpha * float64(c.G)
				b += alpha * float64(c.B)
				acc += alpha
			}
			img.SetRGBA(x, f.Ny-1-y, rgba8(r, g, b))
		}
	}
	return img
}

// VolumeWithUncertainty composites the decompressed field in grayscale and
// the cell-centered crossing-probability field in red along the same rays,
// the volumetric analogue of UncertaintyOverlay. probs must have shape
// (Nx−1)×(Ny−1)×(Nz−1).
func VolumeWithUncertainty(decomp, probs *field.Field, opt VolumeOptions) (*image.RGBA, error) {
	if probs.Nx != decomp.Nx-1 || probs.Ny != decomp.Ny-1 || probs.Nz != decomp.Nz-1 {
		return nil, fmt.Errorf("render: probability field %v does not match cells of %v", probs, decomp)
	}
	opt = (&opt).withDefaults(decomp)
	img := image.NewRGBA(image.Rect(0, 0, decomp.Nx, decomp.Ny))
	den := opt.Hi - opt.Lo
	for y := 0; y < decomp.Ny; y++ {
		for x := 0; x < decomp.Nx; x++ {
			var r, g, b, acc float64
			for z := 0; z < decomp.Nz && acc < 0.995; z++ {
				t := (decomp.At(x, y, z) - opt.Lo) / den
				if t < 0 {
					t = 0
				} else if t > 1 {
					t = 1
				}
				// Grayscale emission for the data itself.
				alpha := opt.Opacity * t * (1 - acc)
				lum := 255 * t
				r += alpha * lum
				g += alpha * lum
				b += alpha * lum
				acc += alpha
				// Red emission for uncertainty, sampled at the nearest cell.
				cx, cy, cz := clampIdx(x, probs.Nx), clampIdx(y, probs.Ny), clampIdx(z, probs.Nz)
				p := probs.At(cx, cy, cz)
				if p > 0.01 {
					ua := math.Min(1, p) * 0.3 * (1 - acc)
					r += ua * 255
					acc += ua
				}
			}
			img.SetRGBA(x, decomp.Ny-1-y, rgba8(r, g, b))
		}
	}
	return img, nil
}

func clampIdx(v, n int) int {
	if v >= n {
		return n - 1
	}
	return v
}

func rgba8(r, g, b float64) color.RGBA {
	clamp := func(v float64) uint8 {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	return color.RGBA{clamp(r), clamp(g), clamp(b), 255}
}
