package render

import (
	"image/color"
	"testing"

	"repro/internal/field"
	"repro/internal/synth"
	"repro/internal/uncertainty"
)

func TestVolumeDims(t *testing.T) {
	f := synth.Generate(synth.Nyx, 16, 1)
	img := Volume(f, VolumeOptions{})
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 16 {
		t.Fatalf("bounds %v", img.Bounds())
	}
}

func TestVolumeEmptyFieldIsBlack(t *testing.T) {
	f := field.New(8, 8, 8)
	img := Volume(f, VolumeOptions{Lo: 0, Hi: 1})
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if c := img.RGBAAt(x, y); c.R != 0 || c.G != 0 || c.B != 0 {
				t.Fatalf("empty volume rendered non-black at (%d,%d): %v", x, y, c)
			}
		}
	}
}

func TestVolumeDenseColumnBrighter(t *testing.T) {
	f := field.New(4, 4, 16)
	// One bright column at (1,1).
	for z := 0; z < 16; z++ {
		f.Set(1, 1, z, 1)
	}
	img := Volume(f, VolumeOptions{Lo: 0, Hi: 1, Cmap: Gray})
	bright := img.RGBAAt(1, 4-1-1)
	dark := img.RGBAAt(3, 0)
	if bright.R <= dark.R {
		t.Fatalf("dense column not brighter: %v vs %v", bright, dark)
	}
}

func TestVolumeWithUncertainty(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 16, 2)
	probs, err := uncertainty.CrossProbabilities(f, f.Mean(), uncertainty.ErrorModel{StdDev: f.ValueRange() * 0.1})
	if err != nil {
		t.Fatal(err)
	}
	img, err := VolumeWithUncertainty(f, probs, VolumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 {
		t.Fatal("bad bounds")
	}
	// Mismatched shapes rejected.
	if _, err := VolumeWithUncertainty(f, field.New(2, 2, 2), VolumeOptions{}); err == nil {
		t.Fatal("mismatched probs accepted")
	}
}

func TestRGBA8Clamps(t *testing.T) {
	if c := rgba8(-5, 300, 128); c != (color.RGBA{0, 255, 128, 255}) {
		t.Fatalf("rgba8 = %v", c)
	}
}
