package render

import (
	"image/color"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/uncertainty"
)

func TestColormapEndpoints(t *testing.T) {
	for name, cm := range map[string]Colormap{"viridis": Viridis, "coolwarm": CoolWarm, "gray": Gray} {
		lo := cm(0)
		hi := cm(1)
		if lo == hi {
			t.Fatalf("%s: endpoints identical", name)
		}
		if cm(-1) != lo || cm(2) != hi {
			t.Fatalf("%s: out-of-range values not clamped", name)
		}
	}
	if g := Gray(0.5); g.R != g.G || g.G != g.B {
		t.Fatalf("gray not gray: %v", g)
	}
}

func TestSliceZDimsAndOrientation(t *testing.T) {
	f := field.New(8, 4, 2)
	f.Set(0, 0, 0, 1) // bottom-left in field coords
	img := SliceZ(f, 0, Gray)
	b := img.Bounds()
	if b.Dx() != 8 || b.Dy() != 4 {
		t.Fatalf("image %v", b)
	}
	// +y up flip: field (0,0) is at image row Ny-1.
	if img.RGBAAt(0, 3) == (color.RGBA{0, 0, 0, 255}) {
		t.Fatal("orientation flip missing")
	}
}

func TestSliceZConstantField(t *testing.T) {
	f := field.New(4, 4, 1)
	f.Fill(5)
	img := SliceZ(f, 0, Viridis) // zero range must not divide by zero
	if img.Bounds().Dx() != 4 {
		t.Fatal("render failed on constant field")
	}
}

func TestLogSliceHandlesZeros(t *testing.T) {
	f := field.New(4, 4, 1)
	f.Fill(0)
	f.Set(1, 1, 0, 10)
	img := LogSliceZ(f, 0, Viridis)
	if img == nil {
		t.Fatal("nil image")
	}
}

func TestSavePNGAndReload(t *testing.T) {
	dir := t.TempDir()
	f := synth.Generate(synth.RT, 16, 1)
	img := SliceZ(f, 8, CoolWarm)
	path := filepath.Join(dir, "slice.png")
	if err := SavePNG(img, path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("png not written: %v", err)
	}
}

func TestUncertaintyOverlayShapes(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 16, 2)
	probs, err := uncertainty.CrossProbabilities(f, f.Mean(), uncertainty.ErrorModel{StdDev: 1})
	if err != nil {
		t.Fatal(err)
	}
	img, err := UncertaintyOverlay(f, probs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 16 {
		t.Fatalf("overlay bounds %v", img.Bounds())
	}
	// Mismatched probability field must be rejected.
	bad := field.New(3, 3, 3)
	if _, err := UncertaintyOverlay(f, bad, 0); err == nil {
		t.Fatal("mismatched probability field accepted")
	}
	if _, err := UncertaintyOverlay(f, probs, 99); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
}

func TestImageToFieldSSIMIdentity(t *testing.T) {
	// Rendering the same data twice must give SSIM 1 in image space.
	f := synth.Generate(synth.WarpX, 24, 3)
	a := ImageToField(SliceZ(f, 12, CoolWarm))
	b := ImageToField(SliceZ(f, 12, CoolWarm))
	if s := metrics.SSIM2D(a, b); s < 0.9999 {
		t.Fatalf("identical renders SSIM %v", s)
	}
}

func TestImageSpaceSSIMDropsWithDistortion(t *testing.T) {
	f := synth.Generate(synth.WarpX, 24, 4)
	lo, hi := f.Range()
	g := f.Clone()
	for i := range g.Data {
		if i%7 == 0 {
			g.Data[i] += (hi - lo) * 0.3
		}
	}
	a := ImageToField(SliceZNormalized(f, 12, CoolWarm, lo, hi))
	b := ImageToField(SliceZNormalized(g, 12, CoolWarm, lo, hi))
	if s := metrics.SSIM2D(a, b); s >= 0.999 {
		t.Fatalf("distorted render SSIM suspiciously high: %v", s)
	}
}
