// Package render produces the visualization artifacts of the workflow:
// colormapped 2D slices of scalar fields and uncertainty overlays (crossing
// probability in red over a grayscale base, as in Fig. 14), written as PNG.
// It stands in for the paper's VTK-based rendering, sufficient to compute
// image-space quality metrics and to inspect compression artifacts.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"

	"repro/internal/field"
)

// Colormap maps a normalized value in [0,1] to a color.
type Colormap func(t float64) color.RGBA

// controlPoint colormaps are defined by linear interpolation between a few
// anchors, adequate for inspection and SSIM-style comparisons.
type controlPoint struct {
	t       float64
	r, g, b uint8
}

func lerpMap(points []controlPoint) Colormap {
	return func(t float64) color.RGBA {
		if math.IsNaN(t) {
			return color.RGBA{255, 0, 255, 255}
		}
		if t <= points[0].t {
			p := points[0]
			return color.RGBA{p.r, p.g, p.b, 255}
		}
		for i := 1; i < len(points); i++ {
			if t <= points[i].t {
				a, b := points[i-1], points[i]
				f := (t - a.t) / (b.t - a.t)
				return color.RGBA{
					uint8(float64(a.r) + f*(float64(b.r)-float64(a.r))),
					uint8(float64(a.g) + f*(float64(b.g)-float64(a.g))),
					uint8(float64(a.b) + f*(float64(b.b)-float64(a.b))),
					255,
				}
			}
		}
		p := points[len(points)-1]
		return color.RGBA{p.r, p.g, p.b, 255}
	}
}

// Viridis approximates the matplotlib viridis colormap.
var Viridis = lerpMap([]controlPoint{
	{0.0, 68, 1, 84},
	{0.25, 59, 82, 139},
	{0.5, 33, 145, 140},
	{0.75, 94, 201, 98},
	{1.0, 253, 231, 37},
})

// CoolWarm approximates the diverging cool-warm map ("warmer colors indicate
// higher values", Fig. 5).
var CoolWarm = lerpMap([]controlPoint{
	{0.0, 59, 76, 192},
	{0.5, 221, 221, 221},
	{1.0, 180, 4, 38},
})

// Gray is a linear grayscale map.
var Gray = lerpMap([]controlPoint{{0, 0, 0, 0}, {1, 255, 255, 255}})

// SliceZ renders the z-slice of a field with the colormap, normalizing by
// the field's global range (so slices of original and decompressed fields
// are directly comparable when rendered with the same reference).
func SliceZ(f *field.Field, z int, cmap Colormap) *image.RGBA {
	return SliceZNormalized(f, z, cmap, fieldMin(f), fieldMax(f))
}

// SliceZNormalized renders with an explicit normalization range.
func SliceZNormalized(f *field.Field, z int, cmap Colormap, lo, hi float64) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, f.Nx, f.Ny))
	den := hi - lo
	if den == 0 {
		den = 1
	}
	for y := 0; y < f.Ny; y++ {
		for x := 0; x < f.Nx; x++ {
			t := (f.At(x, y, z) - lo) / den
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			// Flip y so +y is up, the usual scientific-plot convention.
			img.SetRGBA(x, f.Ny-1-y, cmap(t))
		}
	}
	return img
}

// LogSliceZ renders a z-slice on a log10 scale, useful for fields spanning
// orders of magnitude (Nyx density).
func LogSliceZ(f *field.Field, z int, cmap Colormap) *image.RGBA {
	g := f.SliceZ(z)
	g.Apply(func(v float64) float64 {
		if v <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(v)
	})
	lo, hi := g.Range()
	return SliceZNormalized(g, 0, cmap, lo, hi)
}

// UncertaintyOverlay renders a decompressed slice in grayscale with the
// cell-crossing probability blended in red on top — the presentation of
// Fig. 14c. probs must be the cell-centered probability field
// ((Nx−1)×(Ny−1)×(Nz−1)); cell z planes are aligned with voxel plane z.
func UncertaintyOverlay(decomp, probs *field.Field, z int) (*image.RGBA, error) {
	if probs.Nx != decomp.Nx-1 || probs.Ny != decomp.Ny-1 || probs.Nz != decomp.Nz-1 {
		return nil, fmt.Errorf("render: probability field %v does not match cells of %v", probs, decomp)
	}
	if z < 0 || z >= probs.Nz {
		return nil, fmt.Errorf("render: slice %d out of cell range", z)
	}
	base := SliceZ(decomp, z, Gray)
	for y := 0; y < probs.Ny; y++ {
		for x := 0; x < probs.Nx; x++ {
			p := probs.At(x, y, z)
			if p <= 0.01 {
				continue
			}
			if p > 1 {
				p = 1
			}
			// Blend red proportional to probability over the cell's voxels.
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					px, py := x+dx, decomp.Ny-1-(y+dy)
					c := base.RGBAAt(px, py)
					c.R = uint8(math.Min(255, float64(c.R)+p*200))
					c.G = uint8(float64(c.G) * (1 - 0.6*p))
					c.B = uint8(float64(c.B) * (1 - 0.6*p))
					base.SetRGBA(px, py, c)
				}
			}
		}
	}
	return base, nil
}

// SavePNG writes an image to the named file.
func SavePNG(img image.Image, path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := png.Encode(w, img); err != nil {
		return err
	}
	return w.Close()
}

// ImageToField converts an RGBA image's luminance back into a 2D field,
// letting image-space SSIM/PSNR be computed on rendered views (the way the
// paper reports SSIM of visualizations).
func ImageToField(img *image.RGBA) *field.Field {
	b := img.Bounds()
	f := field.New(b.Dx(), b.Dy(), 1)
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			c := img.RGBAAt(b.Min.X+x, b.Min.Y+y)
			f.Set(x, y, 0, 0.299*float64(c.R)+0.587*float64(c.G)+0.114*float64(c.B))
		}
	}
	return f
}

func fieldMin(f *field.Field) float64 { lo, _ := f.Range(); return lo }
func fieldMax(f *field.Field) float64 { _, hi := f.Range(); return hi }
