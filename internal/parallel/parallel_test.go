package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachWorkersSerial(t *testing.T) {
	// With one worker, execution must be in order (no data race possible).
	var order []int
	ForEachWorkers(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, func(int) { called = true })
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachMoreWorkersThanItems(t *testing.T) {
	var count int32
	ForEachWorkers(3, 100, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(50, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers must be >= 1")
	}
}
