package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachWorkersSerial(t *testing.T) {
	// With one worker, execution must be in order (no data race possible).
	var order []int
	ForEachWorkers(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, func(int) { called = true })
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachMoreWorkersThanItems(t *testing.T) {
	var count int32
	ForEachWorkers(3, 100, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(50, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers must be >= 1")
	}
}

func TestMapErrWorkersOrderedForAnyWorkerCount(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		out, err := MapErrWorkers(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrWorkersLowestErrorWins(t *testing.T) {
	boom := errors.New("boom 7")
	for _, workers := range []int{1, 4} {
		_, err := MapErrWorkers(20, workers, func(i int) (int, error) {
			if i >= 7 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != boom.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}

func TestMapErrWorkersEmpty(t *testing.T) {
	out, err := MapErrWorkers(0, 4, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	out, err = MapErrWorkers(-3, 4, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapErrRunsEveryJob(t *testing.T) {
	const n = 300
	var hits [n]int32
	if _, err := MapErr(n, func(i int) (struct{}, error) {
		atomic.AddInt32(&hits[i], 1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}
