// Package parallel provides the goroutine worker-pool helpers standing in
// for the paper's OpenMP parallelization of compression and post-processing.
package parallel

import (
	"runtime"
	"sync"
)

// Workers returns the degree of parallelism to use: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for i in [0, n) across Workers() goroutines, blocking
// until all complete. Iterations are distributed in contiguous chunks to
// keep per-item overhead low on large n.
func ForEach(n int, fn func(i int)) {
	ForEachWorkers(n, Workers(), fn)
}

// ForEachWorkers is ForEach with an explicit worker count (1 = serial, the
// paper's "Serial SZ2" configuration).
func ForEachWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Map applies fn to each index and collects the results in order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
