// Package parallel provides the goroutine worker-pool helpers standing in
// for the paper's OpenMP parallelization of compression and post-processing.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the degree of parallelism to use: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for i in [0, n) across Workers() goroutines, blocking
// until all complete. Iterations are distributed in contiguous chunks to
// keep per-item overhead low on large n.
func ForEach(n int, fn func(i int)) {
	ForEachWorkers(n, Workers(), fn)
}

// ForEachWorkers is ForEach with an explicit worker count (1 = serial, the
// paper's "Serial SZ2" configuration).
func ForEachWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Map applies fn to each index and collects the results in order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is MapErrWorkers with the default Workers() bound.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapErrWorkers(n, Workers(), fn)
}

// MapErrWorkers runs fn(i) for i in [0, n) across at most `workers`
// goroutines and collects the results in index order, so the output is
// independent of the worker count. Jobs are handed out one at a time from a
// shared counter (not in contiguous chunks) because callers typically have
// few, unevenly sized jobs — e.g. one compression stream per level or box.
// If any job fails, the error from the lowest failing index is returned and
// the results are discarded; every job still runs (fn must not assume
// earlier indices succeeded).
func MapErrWorkers[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, max(n, 0))
	if n <= 0 {
		return out, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := range out {
			out[i], errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
