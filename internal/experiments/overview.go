package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/postproc"
	"repro/internal/render"
	"repro/internal/roi"
	"repro/internal/synth"
	"repro/internal/uncertainty"
	"repro/internal/zfp"

	corepkg "repro/internal/core"
)

func init() {
	register("fig1", "AMR example dataset: Rayleigh–Taylor hierarchy overview", runFig1)
	register("fig2", "Per-level data distribution of a multi-resolution dataset", runFig2)
	register("fig4", "Compression-oriented ROI extraction quality (Nyx)", runFig4)
	register("fig14", "Uncertainty visualization of compression effects (Hurricane)", runFig14)
}

// runFig1 builds the Rayleigh–Taylor AMR hierarchy of Fig. 1 and reports its
// structure (per-level size and density, the Table III columns), optionally
// rendering a slice of the flattened field.
func runFig1(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := rtAMR(cfg)
	if err != nil {
		return err
	}
	printHeader(w, "Fig 1: Rayleigh–Taylor AMR hierarchy", "level", "resolution", "density", "samples")
	for li, lv := range h.Levels {
		u := h.UnitBlockSize(li)
		samples := 0
		for _, o := range lv.Owned {
			if o {
				samples += u * u * u
			}
		}
		fmt.Fprintf(w, "%d\t%dx%dx%d\t%.0f%%\t%d\n", li,
			lv.Data.Nx, lv.Data.Ny, lv.Data.Nz, h.Density(li)*100, samples)
	}
	if cfg.OutDir != "" {
		img := render.SliceZ(h.Flatten(), h.Nz/2, render.CoolWarm)
		if err := render.SavePNG(img, filepath.Join(cfg.OutDir, "fig1_rt_amr.png")); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", filepath.Join(cfg.OutDir, "fig1_rt_amr.png"))
	}
	return nil
}

// runFig2 shows how each level of a multi-resolution dataset holds a
// different, irregular part of the domain: per-level owned-block counts and,
// with an output directory, per-level occupancy renders.
func runFig2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := rtAMR(cfg)
	if err != nil {
		return err
	}
	printHeader(w, "Fig 2: per-level block ownership", "level", "ownedBlocks", "boxes(TAC)")
	for li := range h.Levels {
		// The TAC partition size is a good irregularity proxy: a level whose
		// blocks form few boxes is contiguous; many boxes = fragmented.
		// (Import cycle note: TACPartition lives in layout, reached via core
		// in rd.go; here we only need counts.)
		owned := len(h.OwnedBlocks(li))
		boxes := tacBoxCount(h, li)
		fmt.Fprintf(w, "%d\t%d\t%d\n", li, owned, boxes)
		if cfg.OutDir != "" {
			img := render.SliceZ(levelOccupancy(h, li), h.Nz/h.Levels[li].Scale/2, render.Gray)
			path := filepath.Join(cfg.OutDir, fmt.Sprintf("fig2_level%d.png", li))
			if err := render.SavePNG(img, path); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", path)
		}
	}
	return nil
}

// runFig4 reproduces the ROI-extraction quality claim: selecting a small
// fraction of Nyx blocks captures the halos almost perfectly.
func runFig4(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed+20)
	printHeader(w, "Fig 4: ROI extraction on Nyx", "topFrac", "sampleRatio", "SSIM", "PSNR")
	for _, frac := range []float64{0.15, 0.25, 0.5} {
		rec, err := roi.ROIOnly(f, roi.Options{BlockB: 16, TopFrac: frac})
		if err != nil {
			return err
		}
		st, err := roi.Measure(f, roi.Options{BlockB: 16, TopFrac: frac})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.2f\t%.3f\t%.5f\t%.2f\n", frac, st.SampleRatio,
			metrics.SSIM3D(f, rec), metrics.PSNR(f, rec))
	}
	if cfg.OutDir != "" {
		rec, err := roi.ROIOnly(f, roi.Options{BlockB: 16, TopFrac: 0.15})
		if err != nil {
			return err
		}
		for _, out := range []struct {
			name string
			f    *field.Field
		}{{"fig4_original.png", f}, {"fig4_roi.png", rec}} {
			img := render.LogSliceZ(out.f, f.Nz/2, render.Viridis)
			if err := render.SavePNG(img, filepath.Join(cfg.OutDir, out.name)); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", filepath.Join(cfg.OutDir, out.name))
		}
	}
	return nil
}

// runFig14 compresses the Hurricane dataset aggressively with ZFP, models
// the compression error from the workflow's samples, and reports how many
// isosurface cells the compression pruned and how many the probabilistic
// marching cubes recover; with an output directory it writes the three
// panels of Fig. 14.
func runFig14(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.GenerateDims(synth.Hurricane, cfg.Size, cfg.Size, cfg.Size/2, cfg.Seed+21)
	eb := f.ValueRange() * 0.08 // aggressive: the CR≈240 regime of Fig. 14
	blob, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		return err
	}
	dec, err := zfp.Decompress(blob)
	if err != nil {
		return err
	}
	iso := f.Mean() * 1.5
	po := postproc.Options{EB: eb, BlockSize: 4, Candidates: postproc.ZFPCandidates()}
	set, err := postproc.CollectSamples(f, uniformRoundTrip(corepkg.ZFP, eb), po)
	if err != nil {
		return err
	}
	model := uncertainty.ModelNearIsovalue(set, iso, eb*4)
	rec, err := uncertainty.AnalyzeRecovery(f, dec, iso, model, 0.05)
	if err != nil {
		return err
	}
	printHeader(w, "Fig 14: isosurface uncertainty under compression (Hurricane, ZFP)",
		"quantity", "value")
	fmt.Fprintf(w, "CR\t%.1f\n", float64(f.Bytes())/float64(len(blob)))
	fmt.Fprintf(w, "isovalue\t%.3f\n", iso)
	fmt.Fprintf(w, "error-model stddev\t%.4g\n", model.StdDev)
	fmt.Fprintf(w, "orig crossing cells\t%d\n", rec.OrigCells)
	fmt.Fprintf(w, "decomp crossing cells\t%d\n", rec.DecompCells)
	fmt.Fprintf(w, "lost cells\t%d\n", rec.Lost)
	fmt.Fprintf(w, "recovered by uncertainty vis\t%d (%.0f%%)\n", rec.Recovered, rec.RecoveryRate()*100)
	fmt.Fprintf(w, "spurious cells\t%d\n", rec.Spurious)
	if cfg.OutDir != "" {
		probs, err := uncertainty.CrossProbabilities(dec, iso, model)
		if err != nil {
			return err
		}
		z := f.Nz / 2
		if err := render.SavePNG(render.SliceZ(f, z, render.Gray), filepath.Join(cfg.OutDir, "fig14_original.png")); err != nil {
			return err
		}
		if err := render.SavePNG(render.SliceZ(dec, z, render.Gray), filepath.Join(cfg.OutDir, "fig14_decompressed.png")); err != nil {
			return err
		}
		overlay, err := render.UncertaintyOverlay(dec, probs, z)
		if err != nil {
			return err
		}
		if err := render.SavePNG(overlay, filepath.Join(cfg.OutDir, "fig14_uncertainty.png")); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote 3 panels to %s\n", cfg.OutDir)
	}
	return nil
}

// levelOccupancy renders a level's ownership as a 0/1 field at the level's
// resolution.
func levelOccupancy(h *grid.Hierarchy, level int) *field.Field {
	u := h.UnitBlockSize(level)
	lv := h.Levels[level]
	out := field.New(lv.Data.Nx, lv.Data.Ny, lv.Data.Nz)
	for _, bc := range h.OwnedBlocks(level) {
		for z := 0; z < u; z++ {
			for y := 0; y < u; y++ {
				for x := 0; x < u; x++ {
					out.Set(bc[0]*u+x, bc[1]*u+y, bc[2]*u+z, 1)
				}
			}
		}
	}
	return out
}

// tacBoxCount reports how many contiguous boxes a level fragments into.
func tacBoxCount(h *grid.Hierarchy, level int) int {
	return len(layout.TACPartition(h, level))
}
