package experiments

import (
	"bytes"
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/reader"
	"repro/internal/synth"
)

// IntegrityBench prices end-to-end integrity on the read path: the same
// Size³ container read through the random-access reader with per-stream
// CRC verification on (the default) and off. Two context rows bound the
// numbers from below: a raw crc32 pass over the whole container (the pure
// checksum cost, no decode) and a full Verify scrub (what the periodic
// integrity pass costs). The headline number is verify_overhead_pct — the
// crc32 pass priced against an unverified read-all; the CRC is computed
// over compressed bytes, which the codecs then spend orders of magnitude
// longer decoding, so the target is well under low single digits. The
// direct A/B delta is reported too, but on a shared machine it is bounded
// by scheduler noise, not by the checksum.
//
// The committed BENCH_integrity.json tracks this across PRs; regenerate
// with `mrbench -exp integrity -size 128 -json FILE`.
func IntegrityBench(cfg Config) (*benchfmt.Report, error) {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.35, 0.40})
	if err != nil {
		return nil, err
	}
	eb := hierarchyRange(h) * 1e-3
	opt := core.SZ3MROptions(eb)
	opt.Workers = cfg.Workers
	c, err := core.CompressHierarchy(h, opt)
	if err != nil {
		return nil, err
	}
	blob := c.Blob
	payload := int64(h.PayloadBytes())

	probe, err := reader.Open(bytes.NewReader(blob), int64(len(blob)), reader.WithCache(nil))
	if err != nil {
		return nil, err
	}
	if !probe.CanVerify() {
		return nil, fmt.Errorf("integrity: freshly written container has no stream checksums")
	}
	rep := &benchfmt.Report{Config: map[string]any{
		"dataset":         "nyx",
		"size":            cfg.Size,
		"seed":            cfg.Seed,
		"eb":              "1e-3 * value range",
		"levels":          len(h.Levels),
		"container_bytes": len(blob),
		"payload_bytes":   payload,
		"streams":         len(probe.Index().Streams),
	}}

	// More iterations than the write/serve benches: the quantity of
	// interest is a small difference between two large numbers, so noise
	// must sit well under the <3% overhead target.
	iters := 1 << 25 / (cfg.Size * cfg.Size * cfg.Size)
	if iters < 2 {
		iters = 2
	} else if iters > 16 {
		iters = 16
	}

	var benchErr error
	keep := func(err error) {
		if err != nil && benchErr == nil {
			benchErr = err
		}
	}
	// Cold reads: a fresh reader per iteration, caching off, so every
	// iteration pays the full fetch+verify+decode of every level.
	readAll := func(verify bool) {
		r, err := reader.Open(bytes.NewReader(blob), int64(len(blob)),
			reader.WithCache(nil), reader.WithVerify(verify))
		if err != nil {
			keep(err)
			return
		}
		for l := 0; l < r.NumLevels(); l++ {
			if _, err := r.ReadLevel(l); err != nil {
				keep(err)
				return
			}
		}
	}
	// Interleave the verified/unverified iterations so clock and thermal
	// drift land on both sides equally — the overhead is a small difference
	// between two large numbers.
	readAll(true)
	readAll(false)
	var tVer, tUnver time.Duration
	minVer, minUnver := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < iters; i++ {
		start := time.Now()
		readAll(true)
		d := time.Since(start)
		tVer += d
		if d < minVer {
			minVer = d
		}
		start = time.Now()
		readAll(false)
		d = time.Since(start)
		tUnver += d
		if d < minUnver {
			minUnver = d
		}
	}
	rep.Add("read_all_levels_verified", iters, tVer, payload)
	rep.Add("read_all_levels_unverified", iters, tUnver, payload)
	rep.Measure("crc32_container_pass", iters*8, int64(len(blob)), func() {
		crc32.ChecksumIEEE(blob)
	})
	rep.Measure("verify_scrub", iters, int64(len(blob)), func() {
		res, err := probe.Verify(context.Background())
		keep(err)
		if err == nil && !res.OK() {
			keep(fmt.Errorf("integrity: scrub found faults in a clean container: %v", res.Faults))
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}

	// Two overhead numbers. The headline is deterministic: a verified
	// read-all does exactly one CRC pass over the compressed bytes it
	// fetches, so its true added cost is the measured crc32 pass divided by
	// the unverified read time. The A/B delta (min-of-k over interleaved
	// iterations) is kept as a sanity check — on a shared machine it is
	// noise-bounded at a few percent, an order of magnitude above the
	// signal, so it only confirms the overhead is not grossly larger than
	// the analytic number.
	round2 := func(pct float64) float64 { return float64(int(pct*100)) / 100 }
	if minUnver > 0 {
		crcNs := rep.Results[2].NsPerOp
		rep.Config["verify_overhead_pct"] = round2(crcNs / float64(minUnver) * 100)
		rep.Config["verify_ab_delta_pct"] = round2(float64(minVer-minUnver) / float64(minUnver) * 100)
	}
	return rep, nil
}

// IntegrityWriteTSV prints an integrity report in the package's
// tab-separated style, the overhead headline last.
func IntegrityWriteTSV(w io.Writer, rep *benchfmt.Report) {
	printHeader(w, fmt.Sprintf("Integrity overhead: %v³ nyx, %v-byte container, %v streams",
		rep.Config["size"], rep.Config["container_bytes"], rep.Config["streams"]),
		"op", "ns/op", "MB/s")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\n", r.Name, r.NsPerOp, r.MBPerS)
	}
	fmt.Fprintf(w, "verify overhead\t%v%%\t(A/B delta %v%%, noise-bounded)\n",
		rep.Config["verify_overhead_pct"], rep.Config["verify_ab_delta_pct"])
}

func init() {
	register("integrity", "Integrity overhead: per-stream CRC verification on the read path, on vs off",
		func(w io.Writer, cfg Config) error {
			rep, err := IntegrityBench(cfg)
			if err != nil {
				return err
			}
			IntegrityWriteTSV(w, rep)
			return nil
		})
	registerJSON("integrity", IntegrityBench, IntegrityWriteTSV)
}
