package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/reader"
	"repro/internal/synth"
)

// ServeBench measures progressive random access against decode-everything
// on a Size³ Nyx container: full core.Decompress versus reader.ReadLevel of
// the coarsest and finest levels (cold: fresh reader, no cache; cached:
// repeated reads of a warm reader) and a z-slice. This is the serving
// subsystem's economics in one table — the coarsest-level read is the
// first byte a progressive viewer sees, the cached read is what a hot
// level costs under load. The committed BENCH_serve.json tracks these
// numbers across PRs; regenerate with
// `mrbench -exp serve -size 128 -json FILE`.
func ServeBench(cfg Config) (*benchfmt.Report, error) {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.35, 0.40})
	if err != nil {
		return nil, err
	}
	eb := hierarchyRange(h) * 1e-3
	c, err := core.CompressHierarchy(h, core.SZ3MROptions(eb))
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "mrserve-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "field.mrw")
	if err := os.WriteFile(path, c.Blob, 0o644); err != nil {
		return nil, err
	}

	coarsest := len(h.Levels) - 1
	probe, err := reader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	ix := probe.Index()
	coarseRaw, fineRaw := int64(0), int64(0)
	for _, si := range ix.Levels[coarsest].Streams {
		coarseRaw += ix.Streams[si].RawLen
	}
	for _, si := range ix.Levels[0].Streams {
		fineRaw += ix.Streams[si].RawLen
	}
	probe.Close()

	rep := &benchfmt.Report{Config: map[string]any{
		"dataset":             "nyx",
		"size":                cfg.Size,
		"seed":                cfg.Seed,
		"eb":                  "1e-3 * value range",
		"levels":              len(h.Levels),
		"container_bytes":     len(c.Blob),
		"coarsest_level":      coarsest,
		"coarsest_comp_bytes": ix.CompressedBytes(coarsest),
		"finest_comp_bytes":   ix.CompressedBytes(0),
		"payload_bytes":       h.PayloadBytes(),
	}}

	// Keep total wall clock a few seconds regardless of size.
	iters := 1 << 23 / (cfg.Size * cfg.Size * cfg.Size)
	if iters < 1 {
		iters = 1
	} else if iters > 30 {
		iters = 30
	}
	cheapIters := iters * 10

	var benchErr error
	keep := func(err error) {
		if err != nil && benchErr == nil {
			benchErr = err
		}
	}

	rep.Measure("full_decompress", iters, int64(h.PayloadBytes()), func() {
		_, err := core.Decompress(c.Blob)
		keep(err)
	})
	rep.Measure("readlevel_coarsest_cold", cheapIters, coarseRaw, func() {
		r, err := reader.OpenFile(path, reader.WithCache(nil))
		if err != nil {
			keep(err)
			return
		}
		_, err = r.ReadLevel(coarsest)
		keep(err)
		r.Close()
	})
	rep.Measure("readlevel_finest_cold", iters, fineRaw, func() {
		r, err := reader.OpenFile(path, reader.WithCache(nil))
		if err != nil {
			keep(err)
			return
		}
		_, err = r.ReadLevel(0)
		keep(err)
		r.Close()
	})
	warm, err := reader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer warm.Close()
	rep.Measure("readlevel_coarsest_cached", cheapIters, coarseRaw, func() {
		_, err := warm.ReadLevel(coarsest)
		keep(err)
	})
	rep.Measure("readlevel_finest_cached", cheapIters, fineRaw, func() {
		_, err := warm.ReadLevel(0)
		keep(err)
	})
	nx0, ny0, _ := ix.LevelDims(0)
	rep.Measure("readslice_z_cached", cheapIters, int64(nx0*ny0*8), func() {
		_, err := warm.ReadSlice(reader.AxisZ, cfg.Size/2, 0)
		keep(err)
	})
	if benchErr != nil {
		return nil, benchErr
	}
	return rep, nil
}

// WriteServeTSV prints a serve report in the package's tab-separated style.
func WriteServeTSV(w io.Writer, rep *benchfmt.Report) {
	printHeader(w, fmt.Sprintf("Progressive access vs full decode: %v³ nyx, %v levels, %v-byte container",
		rep.Config["size"], rep.Config["levels"], rep.Config["container_bytes"]),
		"op", "ns/op", "MB/s")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\n", r.Name, r.NsPerOp, r.MBPerS)
	}
}

func init() {
	register("serve", "Progressive serving: ReadLevel/ReadSlice (cold+cached) vs full Decompress",
		func(w io.Writer, cfg Config) error {
			rep, err := ServeBench(cfg)
			if err != nil {
				return err
			}
			WriteServeTSV(w, rep)
			return nil
		})
	registerJSON("serve", ServeBench, WriteServeTSV)
}
