package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/filters"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/parallelcomp"
	"repro/internal/postproc"
	"repro/internal/synth"
	"repro/internal/sz2"
	"repro/internal/zfp"
)

func init() {
	register("tab1", "Image filters vs error-bounded post-processing (WarpX + ZFP)", runTable1)
	register("fig12", "Post-processing rate-distortion variants (WarpX + ZFP)", runFig12)
	register("tab2", "SZ2 vs post-processed SZ2 across CRs (WarpX)", runTable2)
	register("tab5", "AMRIC-SZ2 vs post-processed on both AMR levels (Nyx-T1)", runTable5)
	register("tab7", "Post-processing on multi-resolution data (RT, Hurricane × ZFP, SZ2)", runTable7)
	register("tab8", "Post-processing on uniform data (S3D, Nyx-T3 × ZFP, SZ2)", runTable8)
	register("tab9", "Post-processing overhead breakdown (S3D)", runTable9)
}

// uniformRoundTrip builds a RoundTrip for a single-field compressor.
func uniformRoundTrip(comp core.Compressor, eb float64) postproc.RoundTrip {
	return core.Options{EB: eb, Compressor: comp}.RoundTrip()
}

// uniformCompress encodes one uniform field with the registered backend at
// the given error bound and that backend's default options.
func uniformCompress(comp core.Compressor, f *field.Field, eb float64) ([]byte, error) {
	cd, ok := codec.ByID(byte(comp))
	if !ok {
		return nil, codec.ErrUnknownID(byte(comp))
	}
	return cd.Compress(f, codec.Params{EB: eb})
}

// postProcessUniform runs the full §III-B pipeline on a uniform field:
// sample → fit intensity → compress → decompress → process. It returns CR,
// PSNR before, and PSNR after.
func postProcessUniform(f *field.Field, comp core.Compressor, eb float64) (cr, before, after float64, err error) {
	rt := uniformRoundTrip(comp, eb)
	bs := core.PostBlockSize(core.Options{Compressor: comp, SZ2BlockSize: sz2.DefaultBlockSize}, 0)
	po := postproc.Options{EB: eb, BlockSize: bs, Candidates: core.PostCandidates(comp)}
	set, err := postproc.CollectSamples(f, rt, po)
	if err != nil {
		return 0, 0, 0, err
	}
	a := set.FindIntensity()
	blob, err := uniformCompress(comp, f, eb)
	if err != nil {
		return 0, 0, 0, err
	}
	dec, err := rtDecode(comp, blob)
	if err != nil {
		return 0, 0, 0, err
	}
	proc := postproc.Process(dec, a, po)
	return float64(f.Bytes()) / float64(len(blob)), metrics.PSNR(f, dec), metrics.PSNR(f, proc), nil
}

func rtDecode(comp core.Compressor, blob []byte) (*field.Field, error) {
	cd, ok := codec.ByID(byte(comp))
	if !ok {
		return nil, codec.ErrUnknownID(byte(comp))
	}
	return cd.Decompress(blob)
}

// runTable1 compares the classical filters against the error-bounded
// post-processor on ZFP-decompressed WarpX data at one aggressive setting.
func runTable1(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.WarpX, cfg.Size, cfg.Seed+10)
	eb := f.ValueRange() * 2e-2 // aggressive enough for visible ZFP artifacts
	blob, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		return err
	}
	dec, err := zfp.Decompress(blob)
	if err != nil {
		return err
	}
	po := postproc.Options{EB: eb, BlockSize: 4, Candidates: postproc.ZFPCandidates()}
	set, err := postproc.CollectSamples(f, uniformRoundTrip(core.ZFP, eb), po)
	if err != nil {
		return err
	}
	ours := postproc.Process(dec, set.FindIntensity(), po)
	printHeader(w, "Table I: PSNR of post-processing approaches (WarpX, ZFP)",
		"variant", "PSNR")
	rows := []struct {
		name string
		g    *field.Field
	}{
		{"Decompressed", dec},
		{"MedianFilter", filters.Median3(dec)},
		{"GaussianBlur", filters.Gaussian(dec, 1.0)},
		{"AnisoDiffusion", filters.AnisotropicDiffusion(dec, 5, f.ValueRange()*0.05, 1.0/7)},
		{"Ours", ours},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\n", r.name, metrics.PSNR(f, r.g))
	}
	return nil
}

// runFig12 sweeps ZFP tolerances on WarpX and reports the rate-distortion of
// the decompressed data, the unclamped Bézier smoothing, the full-error-
// bound clamp (a = 1), and the dynamic intensity ("Process").
func runFig12(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.WarpX, cfg.Size, cfg.Seed+11)
	rng := f.ValueRange()
	printHeader(w, "Fig 12: post-process variants rate-distortion (WarpX, ZFP)",
		"relEB", "CR", "PSNR-ZFP", "PSNR-Bezier", "PSNR-a1", "PSNR-Process")
	for _, rel := range relEBSweep {
		// ZFP's conservative tolerance needs a looser sweep than SZ to reach
		// the paper's CR range (its real error sits well below the bound).
		rel *= 4
		eb := rel * rng
		blob, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
		if err != nil {
			return err
		}
		dec, err := zfp.Decompress(blob)
		if err != nil {
			return err
		}
		po := postproc.Options{EB: eb, BlockSize: 4, Candidates: postproc.ZFPCandidates()}
		// Unclamped Bézier: an effectively infinite limit.
		bezier := postproc.Process(dec, postproc.Uniform(1e12), po)
		a1 := postproc.Process(dec, postproc.Uniform(1), po)
		set, err := postproc.CollectSamples(f, uniformRoundTrip(core.ZFP, eb), po)
		if err != nil {
			return err
		}
		dynamic := postproc.Process(dec, set.FindIntensity(), po)
		fmt.Fprintf(w, "%.0e\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			rel, float64(f.Bytes())/float64(len(blob)),
			metrics.PSNR(f, dec), metrics.PSNR(f, bezier),
			metrics.PSNR(f, a1), metrics.PSNR(f, dynamic))
	}
	return nil
}

// runTable2 sweeps SZ2 on WarpX, reporting PSNR before and after
// post-processing at each CR.
func runTable2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.WarpX, cfg.Size, cfg.Seed+12)
	rng := f.ValueRange()
	printHeader(w, "Table II: SZ2 vs post-processed SZ2 (WarpX)",
		"relEB", "CR", "PSNR-SZ2", "PSNR-Proc'ed")
	for _, rel := range relEBSweep {
		cr, before, after, err := postProcessUniform(f, core.SZ2, rel*rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.0e\t%.1f\t%.2f\t%.2f\n", rel, cr, before, after)
	}
	return nil
}

// runTable5 runs the AMRIC-SZ2 multi-resolution pipeline on the in-situ AMR
// snapshot and reports per-level PSNR before and after post-processing.
func runTable5(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT1(cfg)
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Table V: post-processing of AMRIC-SZ2 on Nyx-T1 AMR levels",
		"relEB", "level", "CR", "PSNR-AMRIC-SZ2", "PSNR-Post-SZ2")
	for _, rel := range relEBSweep {
		opts := cfg.tuned(core.AMRICSZ2Options)(rel * rng)
		prep, err := core.Prepare(h, opts)
		if err != nil {
			return err
		}
		intens, err := prep.FindIntensities()
		if err != nil {
			return err
		}
		c, err := prep.Compress()
		if err != nil {
			return err
		}
		plain, err := core.DecompressWorkers(c.Blob, cfg.Workers)
		if err != nil {
			return err
		}
		proc, err := core.DecompressProcessedWorkers(c.Blob, intens, cfg.Workers)
		if err != nil {
			return err
		}
		for li := range h.Levels {
			a := mergedLevel(h, li)
			if a == nil {
				continue
			}
			cr := float64(a.Bytes()) / float64(maxInt(c.LevelBytes[li], 1))
			fmt.Fprintf(w, "%.0e\t%d\t%.1f\t%.2f\t%.2f\n", rel, li, cr,
				metrics.PSNR(a, mergedLevel(plain, li)),
				metrics.PSNR(a, mergedLevel(proc, li)))
		}
	}
	return nil
}

// runTable7 applies post-processing to multi-resolution RT and Hurricane
// data under both block-wise backends.
func runTable7(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	rt, err := rtAMR(cfg)
	if err != nil {
		return err
	}
	_, hurr, err := hurricaneAdaptive(cfg)
	if err != nil {
		return err
	}
	printHeader(w, "Table VII: post-processing on multi-resolution data",
		"dataset", "compressor", "relEB", "CR", "PSNR-Ori", "PSNR-Post")
	for _, ds := range []struct {
		name string
		h    *grid.Hierarchy
	}{{"RT", rt}, {"Hurricane", hurr}} {
		rng := hierarchyRange(ds.h)
		for _, comp := range []struct {
			name string
			mk   func(float64) core.Options
			mul  float64 // sweep scale: ZFP needs looser tolerances (see fig12)
		}{
			{"ZFP", cfg.tuned(core.MRZFPOptions), 4},
			{"SZ2", cfg.tuned(core.AMRICSZ2Options), 1},
		} {
			for _, rel := range relEBSweep {
				rel *= comp.mul
				opts := comp.mk(rel * rng)
				prep, err := core.Prepare(ds.h, opts)
				if err != nil {
					return err
				}
				intens, err := prep.FindIntensities()
				if err != nil {
					return err
				}
				c, err := prep.Compress()
				if err != nil {
					return err
				}
				plain, err := core.DecompressWorkers(c.Blob, cfg.Workers)
				if err != nil {
					return err
				}
				proc, err := core.DecompressProcessedWorkers(c.Blob, intens, cfg.Workers)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\t%s\t%.0e\t%.1f\t%.2f\t%.2f\n",
					ds.name, comp.name, rel, c.Ratio(ds.h),
					payloadPSNR(ds.h, plain), payloadPSNR(ds.h, proc))
			}
		}
	}
	return nil
}

// runTable8 applies post-processing to uniform-resolution S3D and Nyx data.
func runTable8(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	printHeader(w, "Table VIII: post-processing on uniform data",
		"dataset", "compressor", "relEB", "CR", "PSNR-Ori", "PSNR-Post")
	for _, ds := range []struct {
		name string
		f    *field.Field
	}{
		{"S3D", synth.Generate(synth.S3D, cfg.Size, cfg.Seed+13)},
		{"Nyx-T3", synth.Generate(synth.Nyx, cfg.Size, cfg.Seed+14)},
	} {
		rng := ds.f.ValueRange()
		for _, comp := range []core.Compressor{core.ZFP, core.SZ2} {
			for _, rel := range relEBSweep {
				if comp == core.ZFP {
					rel *= 4 // looser sweep for ZFP, as in fig12
				}
				cr, before, after, err := postProcessUniform(ds.f, comp, rel*rng)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\t%v\t%.0e\t%.1f\t%.2f\t%.2f\n",
					ds.name, comp, rel, cr, before, after)
			}
		}
	}
	return nil
}

// runTable9 breaks down the post-processing overhead on S3D: baseline
// workflow time (I/O + compress + decompress) vs the extra sampling/model
// and processing time, for ZFP and SZ2 in chunked-parallel mode (the paper's
// OpenMP configuration, via internal/parallelcomp) and SZ2 serial.
func runTable9(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.S3D, cfg.Size, cfg.Seed+15)
	rng := f.ValueRange()
	printHeader(w, "Table IX: post-processing overhead (seconds, S3D)",
		"variant", "relEB", "io", "comp+decomp", "sample+model", "process", "overhead")
	// Slab count for the parallel variants: the run's -workers bound when
	// set, else 2× cores (oversubscription evens out slab imbalance).
	pw := cfg.Workers
	if pw <= 0 {
		pw = parallel.Workers() * 2
	}
	variants := []struct {
		name    string
		comp    core.Compressor
		workers int
	}{
		{"ZFP(parallel)", core.ZFP, pw},
		{"SZ2(parallel)", core.SZ2, pw},
		{"SZ2(serial)", core.SZ2, 1},
	}
	for _, v := range variants {
		codec := chunkCodec(v.comp, 0)                    // eb filled per row below
		for _, rel := range []float64{1e-2, 2e-3, 5e-4} { // large, mid, small CR
			eb := rel * rng
			codec = chunkCodec(v.comp, eb)
			// I/O: write + read the raw field (the workflow's file stage).
			t0 := time.Now()
			tmp, err := writeTempField(f)
			if err != nil {
				return err
			}
			g, err := field.Load(tmp)
			if err != nil {
				return err
			}
			_ = g
			ioTime := time.Since(t0)
			os.Remove(tmp)

			t0 = time.Now()
			blob, err := parallelcomp.Compress(f, codec, v.workers)
			if err != nil {
				return err
			}
			dec, err := parallelcomp.Decompress(blob, codec)
			if err != nil {
				return err
			}
			cdTime := time.Since(t0)

			bs := 4
			if v.comp == core.SZ2 {
				bs = sz2.DefaultBlockSize
			}
			po := postproc.Options{EB: eb, BlockSize: bs, Candidates: core.PostCandidates(v.comp)}
			t0 = time.Now()
			set, err := postproc.CollectSamples(f, uniformRoundTrip(v.comp, eb), po)
			if err != nil {
				return err
			}
			a := set.FindIntensity()
			smTime := time.Since(t0)

			t0 = time.Now()
			_ = postproc.Process(dec, a, po)
			pTime := time.Since(t0)

			base := ioTime + cdTime
			extra := smTime + pTime
			fmt.Fprintf(w, "%s\t%.0e\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				v.name, rel, ioTime.Seconds(), cdTime.Seconds(),
				smTime.Seconds(), pTime.Seconds(), extra.Seconds()/base.Seconds())
		}
	}
	return nil
}

// chunkCodec adapts a registered backend for parallelcomp at one error
// bound.
func chunkCodec(comp core.Compressor, eb float64) parallelcomp.Codec {
	cd, ok := codec.ByID(byte(comp))
	if !ok {
		err := codec.ErrUnknownID(byte(comp))
		return parallelcomp.Codec{
			Name:       comp.String(),
			Compress:   func(*field.Field) ([]byte, error) { return nil, err },
			Decompress: func([]byte) (*field.Field, error) { return nil, err },
		}
	}
	return parallelcomp.Codec{
		Name:       cd.Name(),
		Compress:   func(f *field.Field) ([]byte, error) { return cd.Compress(f, codec.Params{EB: eb}) },
		Decompress: cd.Decompress,
	}
}

func writeTempField(f *field.Field) (string, error) {
	tmp, err := os.CreateTemp("", "mrwf-io-*.bin")
	if err != nil {
		return "", err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := f.Save(name); err != nil {
		os.Remove(name)
		return "", err
	}
	return name, nil
}
