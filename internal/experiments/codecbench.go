package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/codec"
	"repro/internal/synth"
)

// CodecBench measures every registered codec on the same Size³ Nyx field
// at eb = 1e-3·range (lossless codecs ignore the bound): single-field
// compress and decompress throughput plus the achieved compression ratio
// (recorded per codec in the report config as ratio_<name>). This is the
// per-backend economics behind codec selection — what a level pays, in
// time and bytes, for choosing sz3 vs sz2 vs zfp vs lossless flate. The
// committed BENCH_codec.json tracks these numbers across PRs; regenerate
// with `mrbench -exp codec -size 128 -json FILE`.
func CodecBench(cfg Config) (*benchfmt.Report, error) {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed)
	eb := f.ValueRange() * 1e-3

	rep := &benchfmt.Report{Config: map[string]any{
		"dataset": "nyx",
		"size":    cfg.Size,
		"seed":    cfg.Seed,
		"eb":      "1e-3 * value range",
	}}
	// Keep total wall clock a few seconds regardless of size.
	iters := 1 << 24 / (cfg.Size * cfg.Size * cfg.Size)
	if iters < 1 {
		iters = 1
	} else if iters > 20 {
		iters = 20
	}

	fieldBytes := int64(f.Bytes())
	var benchErr error
	for _, c := range codec.All() {
		p := codec.Params{EB: eb}
		blob, err := c.Compress(f, p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		rep.Config["ratio_"+c.Name()] = float64(fieldBytes) / float64(len(blob))
		rep.Measure(c.Name()+"_compress", iters, fieldBytes, func() {
			if _, err := c.Compress(f, p); err != nil && benchErr == nil {
				benchErr = err
			}
		})
		rep.Measure(c.Name()+"_decompress", iters, fieldBytes, func() {
			if _, err := c.Decompress(blob); err != nil && benchErr == nil {
				benchErr = err
			}
		})
	}
	if benchErr != nil {
		return nil, benchErr
	}
	return rep, nil
}

// WriteCodecTSV prints a report in the package's usual tab-separated style.
func WriteCodecTSV(w io.Writer, rep *benchfmt.Report) {
	printHeader(w, fmt.Sprintf("Per-codec throughput and ratio: %v³ nyx, eb %v",
		rep.Config["size"], rep.Config["eb"]),
		"op", "ns/op", "MB/s", "CR")
	for _, r := range rep.Results {
		cr := ""
		if name, ok := strings.CutSuffix(r.Name, "_compress"); ok {
			if ratio, ok := rep.Config["ratio_"+name]; ok {
				cr = fmt.Sprintf("%.1f", ratio)
			}
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%s\n", r.Name, r.NsPerOp, r.MBPerS, cr)
	}
}

func init() {
	register("codec", "Per-backend codec throughput and ratio (registry sweep)",
		func(w io.Writer, cfg Config) error {
			rep, err := CodecBench(cfg)
			if err != nil {
				return err
			}
			WriteCodecTSV(w, rep)
			return nil
		})
	registerJSON("codec", CodecBench, WriteCodecTSV)
}
