package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/postproc"
	"repro/internal/synth"
	"repro/internal/sz3"
	"repro/internal/zfp"
)

func init() {
	register("abl-padkind", "Ablation: padding extrapolation kind (constant/linear/quadratic)", runAblPadKind)
	register("abl-padthreshold", "Ablation: padding small unit blocks (u=4) vs the u>4 rule", runAblPadThreshold)
	register("abl-alphabeta", "Ablation: adaptive error-bound α/β grid", runAblAlphaBeta)
	register("abl-interp", "Ablation: SZ3 interpolant (linear vs cubic)", runAblInterp)
	register("abl-sampling", "Ablation: post-processing sampling rate vs selected intensity quality", runAblSampling)
	register("abl-arrange", "Ablation: arrangement (linear/stack/tac/zorder1d) at fixed eb", runAblArrange)
}

// runAblPadKind compares the three pad-value extrapolations of §III-A
// ("we test using constant, linear, and quadratic extrapolation … linear
// overall produces the best prediction performance").
func runAblPadKind(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT2(cfg)
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Ablation: padding kind (Nyx-T2, SZ3MR)", "kind", "relEB", "CR", "PSNR")
	for _, k := range []struct {
		name string
		kind layout.PadKind
	}{
		{"constant", layout.PadConstant},
		{"linear", layout.PadLinear},
		{"quadratic", layout.PadQuadratic},
	} {
		for _, rel := range []float64{2e-3, 5e-3, 1e-2} {
			opts := cfg.tuned(core.SZ3MROptions)(rel * rng)
			opts.PadKind = k.kind
			cr, psnr, err := compressOverall(h, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%.0e\t%.1f\t%.2f\n", k.name, rel, cr, psnr)
		}
	}
	return nil
}

// runAblPadThreshold quantifies the u>4 rule: on a hierarchy whose coarse
// level has u=4, padding that level costs (u+1)²/u² = 56% size overhead for
// little prediction gain (§III-A).
func runAblPadThreshold(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := rtAMR(cfg) // 3 levels: u = 16, 8, 4
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Ablation: pad threshold on the u=4 level (RT)", "policy", "relEB", "CR", "PSNR")
	for _, rel := range []float64{2e-3, 5e-3, 1e-2} {
		// Default policy: pad only u > 4.
		def := cfg.tuned(core.SZ3MROptions)(rel * rng)
		cr, psnr, err := compressOverall(h, def)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "pad-u>4\t%.0e\t%.1f\t%.2f\n", rel, cr, psnr)
		// Force-pad everything by padding the coarse level manually: emulate
		// by compressing the u=4 level's merged+padded array standalone.
		m := layout.LinearMerge(h, 2)
		if m.Data == nil {
			continue
		}
		padded := layout.PadXY(m.Data, layout.PadLinear)
		eb := rel * rng
		rawBlob, err := sz3.Compress(m.Data, sz3.Options{EB: eb})
		if err != nil {
			return err
		}
		padBlob, err := sz3.Compress(padded, sz3.Options{EB: eb})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "u4-unpadded\t%.0e\t%.1f\t-\n", rel,
			float64(m.Data.Bytes())/float64(len(rawBlob)))
		fmt.Fprintf(w, "u4-padded\t%.0e\t%.1f\t-\n", rel,
			float64(m.Data.Bytes())/float64(len(padBlob)))
	}
	return nil
}

// runAblAlphaBeta sweeps the adaptive-error-bound parameters around the
// paper's α=2.25, β=8 choice.
func runAblAlphaBeta(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT2(cfg)
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Ablation: adaptive-eb α/β (Nyx-T2)", "alpha", "beta", "CR", "PSNR")
	rel := 2e-3
	for _, alpha := range []float64{1.25, 1.75, 2.25, 3.0} {
		for _, beta := range []float64{2, 4, 8, 16} {
			opts := cfg.tuned(core.SZ3MROptions)(rel * rng)
			opts.Alpha, opts.Beta = alpha, beta
			cr, psnr, err := compressOverall(h, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.2f\t%.0f\t%.1f\t%.2f\n", alpha, beta, cr, psnr)
		}
	}
	return nil
}

// runAblInterp compares linear and cubic spline interpolation in SZ3MR.
func runAblInterp(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT2(cfg)
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Ablation: SZ3 interpolant (Nyx-T2, SZ3MR)", "interp", "relEB", "CR", "PSNR")
	for _, in := range []struct {
		name   string
		interp sz3.Interpolant
	}{{"linear", sz3.Linear}, {"cubic", sz3.Cubic}} {
		for _, rel := range []float64{5e-4, 2e-3, 5e-3} {
			opts := cfg.tuned(core.SZ3MROptions)(rel * rng)
			opts.Interp = in.interp
			cr, psnr, err := compressOverall(h, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%.0e\t%.1f\t%.2f\n", in.name, rel, cr, psnr)
		}
	}
	return nil
}

// runAblSampling varies the post-processing sampling rate and reports the
// resulting full-field PSNR gain, validating that ~1.5% sampling suffices.
func runAblSampling(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.WarpX, cfg.Size, cfg.Seed+30)
	eb := f.ValueRange() * 2e-2
	blob, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		return err
	}
	dec, err := zfp.Decompress(blob)
	if err != nil {
		return err
	}
	before := metrics.PSNR(f, dec)
	printHeader(w, "Ablation: sampling rate vs post-processing gain (WarpX, ZFP)",
		"sampleFrac", "samples", "PSNR-before", "PSNR-after")
	for _, frac := range []float64{0.005, 0.015, 0.05, 0.15} {
		po := postproc.Options{EB: eb, BlockSize: 4, Candidates: postproc.ZFPCandidates(), SampleFrac: frac}
		set, err := postproc.CollectSamples(f, uniformRoundTrip(core.ZFP, eb), po)
		if err != nil {
			return err
		}
		proc := postproc.Process(dec, set.FindIntensity(), po)
		fmt.Fprintf(w, "%.3f\t%d\t%.2f\t%.2f\n", frac, len(set.Samples), before, metrics.PSNR(f, proc))
	}
	return nil
}

// runAblArrange isolates the arrangement choice at a fixed error bound,
// including the zMesh-style 1D layout (which loses 3D spatial information).
func runAblArrange(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT2(cfg)
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Ablation: arrangements at fixed eb (Nyx-T2, SZ3)",
		"arrangement", "relEB", "CR", "PSNR")
	for _, arr := range []core.Arrangement{core.ArrangeLinear, core.ArrangeStack, core.ArrangeTAC, core.ArrangeZOrder1D} {
		for _, rel := range []float64{1e-3, 5e-3} {
			opts := core.Options{EB: rel * rng, Compressor: core.SZ3, Arrangement: arr, Workers: cfg.Workers}
			cr, psnr, err := compressOverall(h, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%v\t%.0e\t%.1f\t%.2f\n", arr, rel, cr, psnr)
		}
	}
	return nil
}
