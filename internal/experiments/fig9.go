package experiments

import (
	"fmt"
	"io"
	"math"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/postproc"
	"repro/internal/render"
	"repro/internal/synth"
	"repro/internal/sz2"
)

func init() {
	register("fig9", "Visual comparison of block-wise compression before/after post-processing (WarpX×ZFP, Nyx×SZ2)", runFig9)
}

// runFig9 reproduces Fig. 9: for WarpX's Ez field under ZFP and Nyx's
// density under SZ2 at aggressive ratios (the paper uses CR 139 and 143),
// report SSIM and PSNR of the decompressed data and of the post-processed
// data, and render the three panels per dataset when an output directory is
// given.
func runFig9(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	printHeader(w, "Fig 9: post-processing visual quality on block-wise compressors",
		"dataset", "compressor", "CR", "variant", "SSIM", "PSNR")
	cases := []struct {
		name     string
		f        *field.Field
		comp     core.Compressor
		targetCR float64
	}{
		{"WarpX-Ez", synth.Generate(synth.WarpX, cfg.Size, cfg.Seed+50), core.ZFP, 60},
		{"Nyx-density", synth.Generate(synth.Nyx, cfg.Size, cfg.Seed+51), core.SZ2, 60},
	}
	for _, c := range cases {
		eb, blob, err := uniformEBForCR(c.f, c.comp, c.targetCR)
		if err != nil {
			return err
		}
		dec, err := rtDecode(c.comp, blob)
		if err != nil {
			return err
		}
		bs := 4
		if c.comp == core.SZ2 {
			bs = sz2.DefaultBlockSize
		}
		po := postproc.Options{EB: eb, BlockSize: bs, Candidates: core.PostCandidates(c.comp)}
		set, err := postproc.CollectSamples(c.f, uniformRoundTrip(c.comp, eb), po)
		if err != nil {
			return err
		}
		proc := postproc.Process(dec, set.FindIntensity(), po)
		cr := float64(c.f.Bytes()) / float64(len(blob))
		fmt.Fprintf(w, "%s\t%v\t%.1f\t%s\t%.3f\t%.2f\n", c.name, c.comp, cr,
			"decompressed", metrics.SSIMCentral(c.f, dec), metrics.PSNR(c.f, dec))
		fmt.Fprintf(w, "%s\t%v\t%.1f\t%s\t%.3f\t%.2f\n", c.name, c.comp, cr,
			"processed", metrics.SSIMCentral(c.f, proc), metrics.PSNR(c.f, proc))
		if cfg.OutDir != "" {
			lo, hi := c.f.Range()
			z := c.f.Nz / 2
			for suffix, g := range map[string]*field.Field{"original": c.f, "decompressed": dec, "processed": proc} {
				img := render.SliceZNormalized(g, z, render.CoolWarm, lo, hi)
				path := filepath.Join(cfg.OutDir, fmt.Sprintf("fig9_%s_%s.png", c.name, suffix))
				if err := render.SavePNG(img, path); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "wrote 3 panels for %s to %s\n", c.name, cfg.OutDir)
		}
	}
	return nil
}

// uniformEBForCR searches the error bound bringing a uniform-field backend
// near the target CR and returns the bound plus the compressed stream.
func uniformEBForCR(f *field.Field, comp core.Compressor, targetCR float64) (float64, []byte, error) {
	rng := f.ValueRange()
	lo, hi := rng*1e-7, rng*0.5
	var eb float64
	var blob []byte
	var err error
	for i := 0; i < 12; i++ {
		eb = math.Sqrt(lo * hi)
		blob, err = uniformCompress(comp, f, eb)
		if err != nil {
			return 0, nil, err
		}
		cr := float64(f.Bytes()) / float64(len(blob))
		if math.Abs(cr-targetCR)/targetCR < 0.05 {
			return eb, blob, nil
		}
		if cr < targetCR {
			lo = eb
		} else {
			hi = eb
		}
	}
	return eb, blob, nil
}
