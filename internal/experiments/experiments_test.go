package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{
		"fig1", "fig2", "fig4", "fig5", "fig9", "fig12", "fig14", "fig15",
		"fig16", "fig17", "fig18", "tab1", "tab2", "tab4", "tab5", "tab6",
		"tab7", "tab8", "tab9",
		"abl-padkind", "abl-padthreshold", "abl-alphabeta", "abl-interp",
		"abl-sampling", "abl-arrange", "abl-curve",
		"ext-halo", "ext-volren",
		"serve", "write",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want at least %d", len(All()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

// TestAllExperimentsRunSmall smoke-tests every registered experiment at a
// reduced size: they must complete without error and print a header plus at
// least one data row.
func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short")
	}
	cfg := Config{Size: 32, Seed: 7, OutDir: t.TempDir()}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("%s: missing header:\n%s", e.ID, out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Fatalf("%s: no data rows:\n%s", e.ID, out)
			}
		})
	}
}

func TestEBForTargetCRConverges(t *testing.T) {
	cfg := Config{Size: 32, Seed: 7}
	h, err := nyxT2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := ebForTargetCR(h, core.BaselineSZ3Options, 50)
	if err != nil {
		t.Fatal(err)
	}
	if eb <= 0 {
		t.Fatalf("eb = %g", eb)
	}
	c, err := core.CompressHierarchy(h, core.BaselineSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	if cr := c.Ratio(h); cr < 25 || cr > 100 {
		t.Fatalf("matched CR %.1f far from target 50", cr)
	}
}

func TestPayloadPSNRIdentical(t *testing.T) {
	cfg := Config{Size: 32, Seed: 7}
	h, err := nyxT2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := payloadPSNR(h, h)
	if !isInf(p) {
		t.Fatalf("payload PSNR of identical hierarchies = %v, want +Inf", p)
	}
}

func isInf(f float64) bool { return f > 1e308 }

// TestExperimentsDeterministic verifies that an experiment produces
// byte-identical output for the same configuration — required for the
// paper-vs-measured records in EXPERIMENTS.md to be reproducible.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipped in -short")
	}
	cfg := Config{Size: 32, Seed: 5}
	for _, id := range []string{"fig4", "fig18", "tab2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var a, b bytes.Buffer
		if err := e.Run(&a, cfg); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(&b, cfg); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s output not deterministic", id)
		}
	}
}
