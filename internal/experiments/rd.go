package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/metrics"
)

func init() {
	register("fig15", "In-situ AMR rate-distortion per level (Nyx-T1, SZ3 methods + post-process)", runFig15)
	register("fig17", "Adaptive-data rate-distortion (WarpX in-situ, Hurricane offline)", runFig17)
	register("fig18", "Offline AMR rate-distortion incl. TAC (Nyx-T2, RT)", runFig18)
	register("fig5", "Visual-quality comparison at matched CR (Nyx fine level)", runFig5)
	register("fig16", "WarpX visual comparison: original SZ3 vs SZ3MR at matched CR", runFig16)
	register("tab4", "Output-time breakdown: AMRIC vs SZ3MR (pre-process vs compress+write)", runTable4)
	register("tab6", "Power-spectrum relative error at matched CR (Nyx-T2, k<10)", runTable6)
}

// runFig15 sweeps error bounds over the in-situ AMR snapshot and reports,
// per refinement level, CR and PSNR for each SZ3 configuration plus the
// post-processed SZ3MR ("Ours (processed)").
func runFig15(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT1(cfg)
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Fig 15: Nyx-T1 in-situ AMR rate-distortion",
		"method", "relEB", "level", "CR", "PSNR")
	for _, m := range sz3Methods(cfg, false) {
		for _, rel := range relEBSweep {
			crs, psnrs, err := levelPSNRAndCR(h, m.opts(rel*rng))
			if err != nil {
				return fmt.Errorf("%s: %w", m.name, err)
			}
			for li := range crs {
				fmt.Fprintf(w, "%s\t%.0e\t%d\t%.1f\t%.2f\n", m.name, rel, li, crs[li], psnrs[li])
			}
		}
	}
	// Ours (processed): SZ3MR + error-bounded post-processing.
	for _, rel := range relEBSweep {
		opts := cfg.tuned(core.SZ3MROptions)(rel * rng)
		prep, err := core.Prepare(h, opts)
		if err != nil {
			return err
		}
		intens, err := prep.FindIntensities()
		if err != nil {
			return err
		}
		c, err := prep.Compress()
		if err != nil {
			return err
		}
		g, err := core.DecompressProcessedWorkers(c.Blob, intens, cfg.Workers)
		if err != nil {
			return err
		}
		for li := range h.Levels {
			a := mergedLevel(h, li)
			b := mergedLevel(g, li)
			if a == nil {
				continue
			}
			cr := float64(a.Bytes()) / float64(maxInt(c.LevelBytes[li], 1))
			fmt.Fprintf(w, "%s\t%.0e\t%d\t%.1f\t%.2f\n", "Ours(processed)", rel, li, cr, metrics.PSNR(a, b))
		}
	}
	return nil
}

// runFig17 reports adaptive-data rate-distortion on the WarpX and Hurricane
// datasets for baseline SZ3, Ours(pad), and Ours(pad+eb). (AMRIC/TAC have no
// adaptive-data mode, as noted in §IV-B.)
func runFig17(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	_, warp, err := warpxAdaptive(cfg)
	if err != nil {
		return err
	}
	_, hurr, err := hurricaneAdaptive(cfg)
	if err != nil {
		return err
	}
	printHeader(w, "Fig 17: adaptive-data rate-distortion",
		"dataset", "method", "relEB", "CR", "PSNR")
	methods := []method{
		{"Baseline-SZ3", cfg.tuned(core.BaselineSZ3Options)},
		{"Ours(pad)", cfg.tuned(core.SZ3MRPadOnlyOptions)},
		{"Ours(pad+eb)", cfg.tuned(core.SZ3MROptions)},
	}
	for _, ds := range []struct {
		name string
		h    *grid.Hierarchy
	}{{"WarpX", warp}, {"Hurricane", hurr}} {
		rng := hierarchyRange(ds.h)
		for _, m := range methods {
			for _, rel := range relEBSweep {
				cr, psnr, err := compressOverall(ds.h, m.opts(rel*rng))
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\t%s\t%.0e\t%.1f\t%.2f\n", ds.name, m.name, rel, cr, psnr)
			}
		}
	}
	return nil
}

// runFig18 reports offline AMR rate-distortion including the TAC baseline.
func runFig18(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	printHeader(w, "Fig 18: offline AMR rate-distortion",
		"dataset", "method", "relEB", "CR", "PSNR")
	for _, ds := range []struct {
		name  string
		build func(Config) (*grid.Hierarchy, error)
	}{
		{"Nyx-T2", nyxT2},
		{"RT", rtAMR},
	} {
		h, err := ds.build(cfg)
		if err != nil {
			return err
		}
		rng := hierarchyRange(h)
		for _, m := range sz3Methods(cfg, true) {
			for _, rel := range relEBSweep {
				cr, psnr, err := compressOverall(h, m.opts(rel*rng))
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s\t%s\t%.0e\t%.1f\t%.2f\n", ds.name, m.name, rel, cr, psnr)
			}
		}
	}
	return nil
}

// runFig5 matches the methods at a common compression ratio on the AMR
// dataset and compares reconstruction quality on the fine level, reporting
// SSIM (central slice) and PSNR as in the paper's Fig. 5 captions.
func runFig5(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT2(cfg)
	if err != nil {
		return err
	}
	const targetCR = 60
	printHeader(w, "Fig 5: quality at matched CR (Nyx fine level)",
		"method", "CR", "SSIM", "PSNR")
	for _, m := range sz3Methods(cfg, true) {
		eb, err := ebForTargetCR(h, m.opts, targetCR)
		if err != nil {
			return err
		}
		c, err := core.CompressHierarchy(h, m.opts(eb))
		if err != nil {
			return err
		}
		g, err := core.DecompressWorkers(c.Blob, cfg.Workers)
		if err != nil {
			return err
		}
		a := mergedLevel(h, 0)
		b := mergedLevel(g, 0)
		fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%.2f\n", m.name, c.Ratio(h),
			metrics.SSIMCentral(a, b), metrics.PSNR(a, b))
	}
	return nil
}

// runFig16 compares original SZ3 and SZ3MR on the WarpX adaptive data at a
// matched CR, reporting full-field SSIM and PSNR of the reconstruction
// against the uniform original.
func runFig16(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f, h, err := warpxAdaptive(cfg)
	if err != nil {
		return err
	}
	const targetCR = 80
	printHeader(w, "Fig 16: WarpX Ez visual quality at matched CR",
		"method", "CR", "SSIM", "PSNR")
	for _, m := range []method{
		{"SZ3", cfg.tuned(core.BaselineSZ3Options)},
		{"Ours(SZ3MR)", cfg.tuned(core.SZ3MROptions)},
	} {
		eb, err := ebForTargetCR(h, m.opts, targetCR)
		if err != nil {
			return err
		}
		c, err := core.CompressHierarchy(h, m.opts(eb))
		if err != nil {
			return err
		}
		g, err := core.DecompressWorkers(c.Blob, cfg.Workers)
		if err != nil {
			return err
		}
		rec := g.Flatten()
		fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%.2f\n", m.name, c.Ratio(h),
			metrics.SSIMCentral(f, rec), metrics.PSNR(f, rec))
	}
	return nil
}

// runTable4 times the in-situ output pipeline (pre-process vs compress +
// write) for AMRIC stacking vs SZ3MR, at a big and a small error bound.
func runTable4(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT1(cfg)
	if err != nil {
		return err
	}
	rng := hierarchyRange(h)
	printHeader(w, "Table IV: output time on Nyx-T1 (seconds)",
		"EB", "method", "pre-process", "comp+write", "total")
	tmp, err := os.MkdirTemp("", "mrwf")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	const reps = 5 // repeat the output path for stable small-domain timings
	for _, eb := range []struct {
		label string
		rel   float64
	}{{"big", 5e-3}, {"small", 2.5e-4}} {
		for _, m := range []method{
			{"AMRIC", cfg.tuned(core.AMRICSZ3Options)},
			{"Ours", cfg.tuned(core.SZ3MROptions)},
		} {
			opts := m.opts(eb.rel * rng)
			var pre, cw time.Duration
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				prep, err := core.Prepare(h, opts)
				if err != nil {
					return err
				}
				pre += time.Since(t0)
				t0 = time.Now()
				c, err := prep.Compress()
				if err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(tmp, "snap.mrw"), c.Blob, 0o644); err != nil {
					return err
				}
				cw += time.Since(t0)
			}
			pre /= reps
			cw /= reps
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.4f\n", eb.label, m.name,
				pre.Seconds(), cw.Seconds(), (pre + cw).Seconds())
		}
	}
	return nil
}

// runTable6 matches four methods at a common CR on Nyx-T2 and reports the
// maximum and average relative power-spectrum error for k < 10, computed on
// the flattened reconstruction.
func runTable6(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.Size&(cfg.Size-1) != 0 {
		return fmt.Errorf("tab6 requires power-of-two size, got %d", cfg.Size)
	}
	h, err := nyxT2(cfg)
	if err != nil {
		return err
	}
	orig := h.Flatten()
	// Match at an aggressive ratio: the adaptive error bound's advantage
	// (and the paper's 60–75% spectrum-error reduction) appears in the
	// high-CR regime (§IV-B); at low CRs padding overhead dominates.
	const targetCR = 120
	printHeader(w, "Table VI: power-spectrum error at matched CR (k<10)",
		"method", "CR", "avg rel err", "max rel err")
	for _, m := range sz3Methods(cfg, true) {
		if m.name == "Ours(pad)" {
			continue // the paper's table compares the three baselines vs pad+eb
		}
		eb, err := ebForTargetCR(h, m.opts, targetCR)
		if err != nil {
			return err
		}
		c, err := core.CompressHierarchy(h, m.opts(eb))
		if err != nil {
			return err
		}
		g, err := core.DecompressWorkers(c.Blob, cfg.Workers)
		if err != nil {
			return err
		}
		errs := fft.SpectrumRelErrors(orig, g.Flatten(), 9)
		maxE, avgE := fft.MaxAvg(errs)
		fmt.Fprintf(w, "%s\t%.1f\t%.2e\t%.2e\n", m.name, c.Ratio(h), avgE, maxE)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
