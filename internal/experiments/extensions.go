package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/halo"
	"repro/internal/metrics"
	"repro/internal/postproc"
	"repro/internal/render"
	"repro/internal/synth"
	"repro/internal/uncertainty"
	"repro/internal/zfp"
)

func init() {
	register("ext-halo", "Future work: halo-finder post-analysis preservation across CRs (Nyx)", runExtHalo)
	register("abl-curve", "Future work: post-processing curve (quadratic Bézier vs 4-point cubic)", runAblCurve)
	register("ext-volren", "Future work: volume-rendered uncertainty (Hurricane)", runExtVolren)
}

// runExtHalo sweeps the SZ3MR error bound on the Nyx AMR dataset and
// compares halo catalogs (count, match rate, mass error) of the original and
// reconstructed fields — the application-specific post-analysis quality the
// paper's future work targets.
func runExtHalo(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	h, err := nyxT2(cfg)
	if err != nil {
		return err
	}
	orig := h.Flatten()
	cat := halo.Find(orig, halo.Options{})
	rng := hierarchyRange(h)
	printHeader(w, "Halo-finder preservation (Nyx-T2, SZ3MR)",
		"relEB", "CR", "origHalos", "decompHalos", "matchRate", "massErr", "centerDist")
	for _, rel := range []float64{5e-4, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2} {
		c, err := core.CompressHierarchy(h, cfg.tuned(core.SZ3MROptions)(rel*rng))
		if err != nil {
			return err
		}
		g, err := core.DecompressWorkers(c.Blob, cfg.Workers)
		if err != nil {
			return err
		}
		dcat := halo.Find(g.Flatten(), halo.Options{})
		d := halo.Compare(cat, dcat, 2)
		fmt.Fprintf(w, "%.0e\t%.1f\t%d\t%d\t%.2f\t%.4f\t%.3f\n",
			rel, c.Ratio(h), d.OrigCount, d.DecompCount, d.MatchRate(), d.MassErr, d.CenterDist)
	}
	return nil
}

// runAblCurve compares the paper's quadratic Bézier against the 4-point
// cubic replacement curve on SZ2-compressed data.
func runAblCurve(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed+40)
	rng := f.ValueRange()
	printHeader(w, "Post-processing curve comparison (Nyx, SZ2)",
		"curve", "relEB", "CR", "PSNR-before", "PSNR-after")
	for _, curve := range []struct {
		name string
		kind postproc.CurveKind
	}{{"quad-bezier", postproc.QuadBezier}, {"cubic4", postproc.Cubic4}} {
		for _, rel := range []float64{1e-3, 5e-3, 1e-2} {
			eb := rel * rng
			rt := uniformRoundTrip(core.SZ2, eb)
			po := postproc.Options{EB: eb, BlockSize: 6, Candidates: postproc.SZ2Candidates(), Curve: curve.kind}
			set, err := postproc.CollectSamples(f, rt, po)
			if err != nil {
				return err
			}
			a := set.FindIntensity()
			dec, err := rt(f)
			if err != nil {
				return err
			}
			proc := postproc.Process(dec, a, po)
			// CR via the actual compressor on the full field.
			blob, err := uniformCompress(core.SZ2, f, eb)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%.0e\t%.1f\t%.2f\t%.2f\n", curve.name, rel,
				float64(f.Bytes())/float64(len(blob)),
				metrics.PSNR(f, dec), metrics.PSNR(f, proc))
		}
	}
	return nil
}

// runExtVolren renders volume images of the decompressed Hurricane field
// with and without the uncertainty emission and reports basic stats; the
// images land in OutDir when set.
func runExtVolren(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	f := synth.GenerateDims(synth.Hurricane, cfg.Size, cfg.Size, cfg.Size/2, cfg.Seed+41)
	eb := f.ValueRange() * 0.05
	blob, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		return err
	}
	dec, err := zfp.Decompress(blob)
	if err != nil {
		return err
	}
	iso := f.Mean() * 1.5
	probs, err := uncertainty.CrossProbabilities(dec, iso, uncertainty.ErrorModel{StdDev: f.MaxAbsDiff(dec) / 2})
	if err != nil {
		return err
	}
	printHeader(w, "Volume-rendered uncertainty (Hurricane, ZFP)", "quantity", "value")
	fmt.Fprintf(w, "CR\t%.1f\n", float64(f.Bytes())/float64(len(blob)))
	maxP := 0.0
	hot := 0
	for _, p := range probs.Data {
		if p > maxP {
			maxP = p
		}
		if p > 0.5 {
			hot++
		}
	}
	fmt.Fprintf(w, "max crossing probability\t%.3f\n", maxP)
	fmt.Fprintf(w, "cells with P>0.5\t%d\n", hot)
	if cfg.OutDir != "" {
		img := render.Volume(dec, render.VolumeOptions{})
		if err := render.SavePNG(img, filepath.Join(cfg.OutDir, "volren_data.png")); err != nil {
			return err
		}
		unc, err := render.VolumeWithUncertainty(dec, probs, render.VolumeOptions{})
		if err != nil {
			return err
		}
		if err := render.SavePNG(unc, filepath.Join(cfg.OutDir, "volren_uncertainty.png")); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote volren_data.png, volren_uncertainty.png\n")
	}
	return nil
}
