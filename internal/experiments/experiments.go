// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each experiment is a named function that prints
// paper-style rows; cmd/mrbench exposes them on the command line and the
// root bench_test.go wraps them as Go benchmarks.
//
// Absolute numbers differ from the paper (different substrate, synthetic
// data, smaller domains), but each experiment preserves the comparison
// structure: the same methods, sweeps, and reported quantities, so the
// paper's claims (who wins, in which regime) can be checked directly.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/roi"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Config parameterizes an experiment run.
type Config struct {
	// Size is the fine-grid edge for cubic datasets (default 64; must be a
	// multiple of 16, and a power of two for spectra).
	Size int
	// Seed drives all synthetic data (default 42).
	Seed int64
	// OutDir, when non-empty, receives rendered PNG artifacts.
	OutDir string
	// Workers bounds concurrent backend compression/decompression streams
	// (0 = all cores, 1 = serial). For the core container pipeline the
	// results are identical for every value — only wall-clock timings
	// change. The chunked-parallel variants of Table IX are the exception:
	// there Workers also sets the z-slab count, which changes the blobs
	// (each slab loses cross-slab prediction context, the paper's OpenMP
	// ratio-loss effect).
	Workers int
	// Store selects the storage backend for experiments that serve
	// containers (currently traffic): "file" (default), "mem", or "http"
	// (an in-process range-request origin). Read-only backends redirect
	// the workload's ingest share to level reads.
	Store string
}

func (c Config) withDefaults() Config {
	if c.Size == 0 {
		c.Size = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// registry of all experiments, populated by init functions in this package.
var registry []Experiment

func register(id, title string, run func(io.Writer, Config) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// JSONExperiment is an experiment that can also emit a machine-readable
// benchfmt.Report (consumed by `mrbench -json` and the committed
// BENCH_*.json trajectories).
type JSONExperiment struct {
	// Run produces the report.
	Run func(Config) (*benchfmt.Report, error)
	// WriteTSV prints the report in the package's usual row style.
	WriteTSV func(io.Writer, *benchfmt.Report)
}

var jsonRegistry = map[string]JSONExperiment{}

func registerJSON(id string, run func(Config) (*benchfmt.Report, error), tsv func(io.Writer, *benchfmt.Report)) {
	jsonRegistry[id] = JSONExperiment{Run: run, WriteTSV: tsv}
}

// JSONByID finds an experiment's machine-readable runner.
func JSONByID(id string) (JSONExperiment, bool) {
	e, ok := jsonRegistry[id]
	return e, ok
}

// JSONIDs lists the experiments supporting -json output, sorted.
func JSONIDs() []string {
	ids := make([]string, 0, len(jsonRegistry))
	for id := range jsonRegistry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- dataset builders -----------------------------------------------------

// nyxT1 is the in-situ AMR dataset (simulation snapshot, fine density ~25%).
func nyxT1(cfg Config) (*grid.Hierarchy, error) {
	s := sim.New(sim.Config{N: cfg.Size, Seed: cfg.Seed, FineFrac: 0.25})
	for i := 0; i < 3; i++ {
		s.Step(1)
	}
	return s.Snapshot()
}

// nyxT2 is the offline 2-level AMR dataset (Table III: fine 58%, coarse 42%).
func nyxT2(cfg Config) (*grid.Hierarchy, error) {
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed+1)
	return grid.BuildAMR(f, 16, []float64{0.58, 0.42})
}

// rtAMR is the 3-level Rayleigh–Taylor dataset (15% / 31% / 54%).
func rtAMR(cfg Config) (*grid.Hierarchy, error) {
	f := synth.Generate(synth.RT, cfg.Size, cfg.Seed+2)
	return grid.BuildAMR(f, 16, []float64{0.15, 0.31, 0.54})
}

// warpxAdaptive converts a WarpX-like uniform field (elongated domain) to
// adaptive data at 50% ROI, as in the paper's WarpX configuration.
func warpxAdaptive(cfg Config) (*field.Field, *grid.Hierarchy, error) {
	n := cfg.Size
	f := synth.GenerateDims(synth.WarpX, n/2, n/2, 2*n, cfg.Seed+3)
	h, err := roi.Convert(f, roi.Options{BlockB: 16, TopFrac: 0.5})
	return f, h, err
}

// hurricaneAdaptive converts a Hurricane-like field to adaptive data at 35%
// ROI (Table III: fine 35%, coarse 65%).
func hurricaneAdaptive(cfg Config) (*field.Field, *grid.Hierarchy, error) {
	n := cfg.Size
	f := synth.GenerateDims(synth.Hurricane, n, n, n/2, cfg.Seed+4)
	h, err := roi.Convert(f, roi.Options{BlockB: 16, TopFrac: 0.35})
	return f, h, err
}

// --- method presets ---------------------------------------------------------

// method names a pipeline configuration used across rate-distortion plots.
type method struct {
	name string
	opts func(eb float64) core.Options
}

// tuned applies the run's worker bound to a preset constructor.
func (c Config) tuned(mk func(eb float64) core.Options) func(eb float64) core.Options {
	return func(eb float64) core.Options {
		o := mk(eb)
		o.Workers = c.Workers
		return o
	}
}

func sz3Methods(cfg Config, includeTAC bool) []method {
	ms := []method{
		{"Baseline-SZ3", cfg.tuned(core.BaselineSZ3Options)},
		{"AMRIC-SZ3", cfg.tuned(core.AMRICSZ3Options)},
	}
	if includeTAC {
		ms = append(ms, method{"TAC-SZ3", cfg.tuned(core.TACSZ3Options)})
	}
	ms = append(ms,
		method{"Ours(pad)", cfg.tuned(core.SZ3MRPadOnlyOptions)},
		method{"Ours(pad+eb)", cfg.tuned(core.SZ3MROptions)},
	)
	return ms
}

// --- shared measurement helpers ---------------------------------------------

// mergedLevel returns one level's payload as a single array (nil if empty).
func mergedLevel(h *grid.Hierarchy, level int) *field.Field {
	return layout.LinearMerge(h, level).Data
}

// hierarchyRange returns the maximum per-level value range (the reference
// range for relative error bounds).
func hierarchyRange(h *grid.Hierarchy) float64 {
	rng := 0.0
	for _, lv := range h.Levels {
		if r := lv.Data.ValueRange(); r > rng {
			rng = r
		}
	}
	return rng
}

// payloadPSNR computes PSNR over the stored multi-resolution samples
// (concatenating each level's linear merge, so only owned samples count).
func payloadPSNR(orig, dec *grid.Hierarchy) float64 {
	var sqe float64
	var n int
	rng := 0.0
	for li := range orig.Levels {
		a := layout.LinearMerge(orig, li)
		b := layout.LinearMerge(dec, li)
		if a.Data == nil {
			continue
		}
		if r := a.Data.ValueRange(); r > rng {
			rng = r
		}
		for i, v := range a.Data.Data {
			d := v - b.Data.Data[i]
			sqe += d * d
		}
		n += a.Data.Len()
	}
	if n == 0 || sqe == 0 {
		return math.Inf(1)
	}
	if rng == 0 {
		rng = 1
	}
	return 20*math.Log10(rng) - 10*math.Log10(sqe/float64(n))
}

// levelPSNRAndCR compresses h with opts and returns, per level, the
// compression ratio and PSNR of that level's payload.
func levelPSNRAndCR(h *grid.Hierarchy, opts core.Options) (cr, psnr []float64, err error) {
	c, err := core.CompressHierarchy(h, opts)
	if err != nil {
		return nil, nil, err
	}
	g, err := core.DecompressWorkers(c.Blob, opts.Workers)
	if err != nil {
		return nil, nil, err
	}
	for li := range h.Levels {
		a := layout.LinearMerge(h, li)
		b := layout.LinearMerge(g, li)
		if a.Data == nil {
			cr = append(cr, 0)
			psnr = append(psnr, math.Inf(1))
			continue
		}
		raw := a.Data.Bytes()
		comp := c.LevelBytes[li]
		if comp == 0 {
			comp = 1
		}
		cr = append(cr, float64(raw)/float64(comp))
		psnr = append(psnr, metrics.PSNR(a.Data, b.Data))
	}
	return cr, psnr, nil
}

// compressOverall returns (CR, payload PSNR) for one configuration.
func compressOverall(h *grid.Hierarchy, opts core.Options) (float64, float64, error) {
	c, err := core.CompressHierarchy(h, opts)
	if err != nil {
		return 0, 0, err
	}
	g, err := core.DecompressWorkers(c.Blob, opts.Workers)
	if err != nil {
		return 0, 0, err
	}
	return c.Ratio(h), payloadPSNR(h, g), nil
}

// ebForTargetCR binary-searches the error bound that brings a method to
// (approximately) the target compression ratio, enabling the paper's
// "same CR" comparisons.
func ebForTargetCR(h *grid.Hierarchy, mk func(eb float64) core.Options, targetCR float64) (float64, error) {
	rng := hierarchyRange(h)
	lo, hi := rng*1e-7, rng*0.2
	var eb float64
	for i := 0; i < 12; i++ {
		eb = math.Sqrt(lo * hi) // geometric midpoint: CR is log-sensitive
		c, err := core.CompressHierarchy(h, mk(eb))
		if err != nil {
			return 0, err
		}
		cr := c.Ratio(h)
		if math.Abs(cr-targetCR)/targetCR < 0.03 {
			return eb, nil
		}
		if cr < targetCR {
			lo = eb
		} else {
			hi = eb
		}
	}
	return eb, nil
}

// relEBSweep is the default relative-error-bound sweep for rate-distortion
// experiments (from tight to loose, i.e. low to high CR).
var relEBSweep = []float64{2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2}

func printHeader(w io.Writer, title string, cols ...string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}
