package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
)

// TestTrafficSmoke runs the load harness at smoke scale — tiny fields,
// short window, low concurrency — and checks the report is well-formed:
// nonzero ops, valid JSON, quantile series for the read endpoints, and
// p99 ≥ p50 (quantiles from one histogram must be monotone).
func TestTrafficSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness; skipped in -short")
	}
	defer func(c []int, d time.Duration, f int) {
		trafficConcurrency, trafficDuration, trafficFields = c, d, f
	}(trafficConcurrency, trafficDuration, trafficFields)
	trafficConcurrency = []int{2, 4}
	trafficDuration = time.Second
	trafficFields = 2

	rep, err := TrafficBench(Config{Size: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range trafficConcurrency {
		ops, ok := rep.Config[fmt.Sprintf("c%d_ops", c)].(int64)
		if !ok || ops == 0 {
			t.Fatalf("concurrency %d: zero ops (%v)", c, rep.Config)
		}
		if v := rep.Config[fmt.Sprintf("c%d_ops_per_s", c)].(float64); v <= 0 {
			t.Fatalf("concurrency %d: throughput %v", c, v)
		}
	}

	// Quantile rows exist for the read endpoints at every concurrency
	// level, and each endpoint's p99 ≥ p50.
	quant := map[string]float64{}
	for _, r := range rep.Results {
		quant[r.Name] = r.NsPerOp
	}
	for _, c := range trafficConcurrency {
		for _, ep := range []string{"level", "slice"} {
			p50, ok50 := quant[fmt.Sprintf("c%d/%s/p50", c, ep)]
			p99, ok99 := quant[fmt.Sprintf("c%d/%s/p99", c, ep)]
			if !ok50 || !ok99 {
				t.Fatalf("c%d/%s: missing quantile rows (have %v)", c, ep, quant)
			}
			if p99 < p50 {
				t.Errorf("c%d/%s: p99 %.0fns < p50 %.0fns", c, ep, p99, p50)
			}
			if p50 <= 0 {
				t.Errorf("c%d/%s: p50 %.0fns not positive", c, ep, p50)
			}
		}
	}

	// The report must round-trip as JSON in the benchfmt schema.
	var buf bytes.Buffer
	if err := benchfmt.Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back benchfmt.Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("JSON round-trip lost results: %d != %d", len(back.Results), len(rep.Results))
	}

	// The TSV writer emits a header and data rows.
	var tsv bytes.Buffer
	WriteTrafficTSV(&tsv, rep)
	if !strings.Contains(tsv.String(), "==") || len(strings.Split(strings.TrimSpace(tsv.String()), "\n")) < 3 {
		t.Fatalf("TSV output malformed:\n%s", tsv.String())
	}
}
