package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/synth"
)

// WriteBench measures the streaming container write path (CompressTo into
// a file, emitting streams as worker waves complete) against the monolithic
// path (Compress assembling the whole blob in memory, then one WriteFile)
// on a Size³ Nyx container. Two quantities per path:
//
//   - wall clock per compress-and-persist;
//   - the write path's working set. The deterministic numbers are exact:
//     the monolithic path retains every compressed stream plus the
//     assembled blob (working_set_bytes_monolithic), the streaming path at
//     most one wave of streams (working_set_bytes_streaming*, measured by
//     the writer itself). peak_heap_bytes_* corroborates with a sampled
//     HeapAlloc high-water mark above the post-Prepare baseline, which also
//     captures transient compressor allocations shared by both paths.
//
// The committed BENCH_write.json tracks these numbers across PRs;
// regenerate with `mrbench -exp write -size 128 -json FILE`.
func WriteBench(cfg Config) (*benchfmt.Report, error) {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.35, 0.40})
	if err != nil {
		return nil, err
	}
	eb := hierarchyRange(h) * 1e-3
	opt := core.SZ3MROptions(eb)
	opt.Workers = cfg.Workers

	dir, err := os.MkdirTemp("", "mrw-writebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "field.mrw")

	// One probe run pins the deterministic sizes (identical every run).
	prep, err := core.Prepare(h, opt)
	if err != nil {
		return nil, err
	}
	c, err := prep.Compress()
	if err != nil {
		return nil, err
	}
	streamTotal := 0
	for _, lb := range c.LevelBytes {
		streamTotal += lb
	}
	monolithicWorkingSet := int64(streamTotal + len(c.Blob))

	rep := &benchfmt.Report{Config: map[string]any{
		"dataset":                      "nyx",
		"size":                         cfg.Size,
		"seed":                         cfg.Seed,
		"eb":                           "1e-3 * value range",
		"levels":                       len(h.Levels),
		"container_bytes":              len(c.Blob),
		"payload_bytes":                h.PayloadBytes(),
		"working_set_bytes_monolithic": monolithicWorkingSet,
	}}

	iters := 1 << 23 / (cfg.Size * cfg.Size * cfg.Size)
	if iters < 1 {
		iters = 1
	} else if iters > 8 {
		iters = 8
	}

	payload := int64(h.PayloadBytes())
	var benchErr error
	keep := func(err error) {
		if err != nil && benchErr == nil {
			benchErr = err
		}
	}

	measure := func(name string, workers int, fn func(p *core.Prepared) error) {
		o := opt
		o.Workers = workers
		p, err := core.Prepare(h, o)
		if err != nil {
			keep(err)
			return
		}
		keep(fn(p)) // warm-up, outside the peak window
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		stop := make(chan struct{})
		peakc := make(chan uint64)
		go func() {
			peak := uint64(0)
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					peakc <- peak
					return
				default:
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peak {
						peak = ms.HeapAlloc
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
		start := time.Now()
		for i := 0; i < iters; i++ {
			keep(fn(p))
		}
		elapsed := time.Since(start)
		close(stop)
		peak := <-peakc
		rep.Add(name, iters, elapsed, payload)
		delta := int64(peak) - int64(base.HeapAlloc)
		if delta < 0 {
			delta = 0
		}
		rep.Config["peak_heap_bytes_"+name] = delta
	}

	measure("monolithic_compress_writefile", cfg.Workers, func(p *core.Prepared) error {
		c, err := p.Compress()
		if err != nil {
			return err
		}
		return os.WriteFile(path, c.Blob, 0o644)
	})
	measure("streaming_compressto_file", cfg.Workers, func(p *core.Prepared) error {
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		res, err := p.CompressTo(out)
		if err != nil {
			out.Close()
			return err
		}
		rep.Config["working_set_bytes_streaming"] = res.MaxBufferedBytes
		return out.Close()
	})
	measure("streaming_compressto_file_serial", 1, func(p *core.Prepared) error {
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		res, err := p.CompressTo(out)
		if err != nil {
			out.Close()
			return err
		}
		rep.Config["working_set_bytes_streaming_serial"] = res.MaxBufferedBytes
		return out.Close()
	})
	if benchErr != nil {
		return nil, benchErr
	}
	return rep, nil
}

// WriteWriteTSV prints a write-path report in the package's tab-separated
// style, working-set numbers included.
func WriteWriteTSV(w io.Writer, rep *benchfmt.Report) {
	printHeader(w, fmt.Sprintf("Streaming vs monolithic container write: %v³ nyx, %v-byte container",
		rep.Config["size"], rep.Config["container_bytes"]),
		"op", "ns/op", "MB/s", "working set B", "peak heap B")
	ws := func(name string) any {
		switch name {
		case "monolithic_compress_writefile":
			return rep.Config["working_set_bytes_monolithic"]
		case "streaming_compressto_file":
			return rep.Config["working_set_bytes_streaming"]
		case "streaming_compressto_file_serial":
			return rep.Config["working_set_bytes_streaming_serial"]
		}
		return ""
	}
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%v\t%v\n",
			r.Name, r.NsPerOp, r.MBPerS, ws(r.Name), rep.Config["peak_heap_bytes_"+r.Name])
	}
}

func init() {
	register("write", "Streaming write path: CompressTo (wave-bounded) vs monolithic Compress+WriteFile",
		func(w io.Writer, cfg Config) error {
			rep, err := WriteBench(cfg)
			if err != nil {
				return err
			}
			WriteWriteTSV(w, rep)
			return nil
		})
	registerJSON("write", WriteBench, WriteWriteTSV)
}
