package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
)

// Traffic harness: a mixed-op closed-loop load generator against an
// in-process mrserve. Unlike the "serve" experiment (single-threaded reader
// micro-benchmarks), this measures the whole serving stack — HTTP, handler
// instrumentation, cache contention, ingest invalidation — and reports
// latency quantiles straight from the server's own request histograms, so
// the committed BENCH_traffic.json is also a standing proof that the
// observability plane measures what clients experience. The committed
// trajectory regenerates with `mrbench -exp traffic -json BENCH_traffic.json`
// and includes one level served through the HTTP range-request storage
// backend (http-c4/… rows); `mrbench -exp traffic -store mem|http` runs the
// whole sweep over an alternate backend.

// Knobs with package scope so the smoke test can shrink the run.
var (
	// trafficConcurrency lists the closed-loop worker counts measured, one
	// serving instance per entry.
	trafficConcurrency = []int{4, 16}
	// trafficDuration is the measured wall-clock per concurrency level.
	trafficDuration = 2 * time.Second
	// trafficFields is how many distinct containers the zipf popularity
	// distribution selects over.
	trafficFields = 4
)

// Op mix of the closed loop, in percent. Ingest is deliberately rare: it
// is the only write op and each one recompresses a field and invalidates
// its reader, so a few percent already exercises the churn path hard.
const (
	trafficLevelPct = 60
	trafficSlicePct = 30 // remainder (100 - level - slice) is ingest
)

// trafficCounts aggregates one concurrency level's closed loop.
type trafficCounts struct {
	ops    atomic.Int64
	errors atomic.Int64
}

// buildTrafficDir compresses trafficFields synthetic AMR containers into
// dir, returning the field IDs and the level count (shared: same geometry,
// different seeds).
func buildTrafficDir(dir string, cfg Config) ([]string, int, error) {
	ids := make([]string, 0, trafficFields)
	levels := 0
	for i := 0; i < trafficFields; i++ {
		f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed+int64(i))
		h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.35, 0.40})
		if err != nil {
			return nil, 0, err
		}
		c, err := core.CompressHierarchy(h, core.SZ3MROptions(hierarchyRange(h)*1e-3))
		if err != nil {
			return nil, 0, err
		}
		id := fmt.Sprintf("field%02d", i)
		if err := os.WriteFile(filepath.Join(dir, id+".mrw"), c.Blob, 0o644); err != nil {
			return nil, 0, err
		}
		ids = append(ids, id)
		levels = len(h.Levels)
	}
	return ids, levels, nil
}

// trafficBackend bundles a storage backend with its workload implications:
// a read-only backend cannot take ingest (its write share is redirected to
// level reads), and a remote backend gets a revalidation window so identity
// probes do not turn into a HEAD per request.
type trafficBackend struct {
	label    string // row-name prefix; "" for the default file backend
	st       store.Store
	readOnly bool
	reval    time.Duration
	close    func()
}

// openTrafficBackend mounts dir through the named storage backend. "http"
// publishes dir via an in-process range-capable origin (store.OriginHandler)
// and reads it back through the HTTP range-request backend — loopback TCP,
// but the full remote read path: suffix-range open, ranged brick reads,
// ETag revalidation.
func openTrafficBackend(kind, dir string) (*trafficBackend, error) {
	switch kind {
	case "", "file":
		st, err := store.NewFS(dir)
		if err != nil {
			return nil, err
		}
		return &trafficBackend{st: st, close: func() {}}, nil
	case "mem":
		m := store.NewMem()
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return nil, err
			}
			err = m.Install(context.Background(), e.Name(), func(w io.Writer) error {
				_, werr := w.Write(b)
				return werr
			})
			if err != nil {
				return nil, err
			}
		}
		return &trafficBackend{label: "mem-", st: m, close: func() {}}, nil
	case "http":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		origin := &http.Server{Handler: store.OriginHandler(dir), ReadHeaderTimeout: 10 * time.Second}
		go origin.Serve(ln)
		st, err := store.NewHTTP("http://"+ln.Addr().String()+"/", store.HTTPOptions{})
		if err != nil {
			origin.Close()
			return nil, err
		}
		return &trafficBackend{
			label:    "http-",
			st:       st,
			readOnly: true,
			reval:    time.Second,
			close:    func() { origin.Close() },
		}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown store backend %q (want file, mem, or http)", kind)
	}
}

// trafficWorker runs one closed-loop client until deadline: pick an op by
// mix, a field by zipf popularity, fire, repeat. Each worker owns its rng
// (rand.Zipf is not concurrency-safe) and its keep-alive connection.
func trafficWorker(base string, ids []string, levels int, cfg Config, wseed int64, ingestBody []byte, readOnly bool, deadline time.Time, counts *trafficCounts) {
	rng := rand.New(rand.NewSource(cfg.Seed*1000 + wseed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(ids)-1))
	client := &http.Client{}
	axes := []string{"x", "y", "z"}
	for time.Now().Before(deadline) {
		id := ids[zipf.Uint64()]
		var (
			resp *http.Response
			err  error
		)
		switch p := rng.Intn(100); {
		case p < trafficLevelPct:
			resp, err = client.Get(fmt.Sprintf("%s/v1/field/%s/level/%d", base, id, rng.Intn(levels)))
		case p < trafficLevelPct+trafficSlicePct:
			l := rng.Intn(levels)
			k := rng.Intn(cfg.Size >> uint(l))
			resp, err = client.Get(fmt.Sprintf("%s/v1/field/%s/slice?axis=%s&k=%d&level=%d",
				base, id, axes[rng.Intn(3)], k, l))
		default:
			if readOnly {
				// The backend cannot take writes; spend the ingest share
				// on level reads so op totals stay comparable across
				// backends.
				resp, err = client.Get(fmt.Sprintf("%s/v1/field/%s/level/%d", base, id, rng.Intn(levels)))
				break
			}
			req, rerr := http.NewRequest("PUT", base+"/v1/field/ingested?releb=1e-3",
				bytes.NewReader(ingestBody))
			if rerr != nil {
				counts.errors.Add(1)
				continue
			}
			resp, err = client.Do(req)
		}
		counts.ops.Add(1)
		if err != nil {
			counts.errors.Add(1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			counts.errors.Add(1)
		}
	}
}

// runTrafficLevel measures one concurrency level against a fresh serving
// instance (fresh cache, fresh histograms: levels stay independent) and
// appends its quantile and throughput rows to rep, prefixed with the
// backend's label (e.g. http-c4/level/p99 next to c4/level/p99).
func runTrafficLevel(rep *benchfmt.Report, be *trafficBackend, ids []string, levels, workers int, cfg Config, ingestBody []byte) error {
	s, err := serve.New(serve.Config{
		Store:           be.st,
		RevalidateEvery: be.reval,
		CacheBytes:      64 << 20,
		MaxIngestBytes:  1 << 30,
		CacheShards:     8,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	var counts trafficCounts
	deadline := time.Now().Add(trafficDuration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trafficWorker(base, ids, levels, cfg, int64(w), ingestBody, be.readOnly, deadline, &counts)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ops := counts.ops.Load()
	if ops == 0 {
		return fmt.Errorf("traffic: concurrency %d completed zero operations", workers)
	}
	kp := strings.ReplaceAll(be.label, "-", "_") // http- rows → http_c4_ops keys
	rep.Config[fmt.Sprintf("%sc%d_ops", kp, workers)] = ops
	rep.Config[fmt.Sprintf("%sc%d_errors", kp, workers)] = counts.errors.Load()
	rep.Config[fmt.Sprintf("%sc%d_ops_per_s", kp, workers)] = float64(ops) / elapsed.Seconds()

	// Latency quantiles come from the server's own per-endpoint histograms —
	// the same series /metrics exposes — not from client-side timers.
	hists := s.EndpointHistograms()
	for _, ep := range []string{"level", "slice", "ingest"} {
		snap, ok := hists[ep]
		if !ok || snap.Count == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			rep.Results = append(rep.Results, benchfmt.Result{
				Name:    fmt.Sprintf("%sc%d/%s/%s", be.label, workers, ep, q.label),
				Iters:   int(snap.Count),
				NsPerOp: snap.Quantile(q.q) * 1e9,
			})
		}
	}
	rep.Results = append(rep.Results, benchfmt.Result{
		Name:    fmt.Sprintf("%sc%d/all/mean", be.label, workers),
		Iters:   int(ops),
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
	})
	return nil
}

// TrafficBench drives the mixed closed-loop workload at every configured
// concurrency level and reports per-endpoint p50/p95/p99 plus throughput.
func TrafficBench(cfg Config) (*benchfmt.Report, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "mrserve-traffic")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ids, levels, err := buildTrafficDir(dir, cfg)
	if err != nil {
		return nil, err
	}

	// The ingest payload is a small raw field: big enough to exercise the
	// compression path, small enough that the rare write op does not
	// dominate the loop.
	var ingestBuf bytes.Buffer
	if _, err := synth.Generate(synth.Nyx, 16, cfg.Seed+99).WriteTo(&ingestBuf); err != nil {
		return nil, err
	}

	be, err := openTrafficBackend(cfg.Store, dir)
	if err != nil {
		return nil, err
	}
	defer be.close()

	storeName := cfg.Store
	if storeName == "" {
		storeName = "file"
	}
	rep := &benchfmt.Report{Config: map[string]any{
		"dataset":      "nyx",
		"size":         cfg.Size,
		"seed":         cfg.Seed,
		"fields":       trafficFields,
		"levels":       levels,
		"store":        storeName,
		"mix":          fmt.Sprintf("level=%d%% slice=%d%% ingest=%d%%", trafficLevelPct, trafficSlicePct, 100-trafficLevelPct-trafficSlicePct),
		"zipf_s":       1.2,
		"duration_s":   trafficDuration.Seconds(),
		"concurrency":  append([]int(nil), trafficConcurrency...),
		"quantile_src": "server-side mrserve_request_duration_seconds histograms",
	}}
	for _, workers := range trafficConcurrency {
		if err := runTrafficLevel(rep, be, ids, levels, workers, cfg, ingestBuf.Bytes()); err != nil {
			return nil, err
		}
	}

	// The default run appends one level served through the HTTP
	// range-request backend at the lowest concurrency, so the committed
	// trajectory carries a standing remote-backend datapoint (http-c4/…
	// rows) next to the local ones. Explicit -store runs measure only the
	// backend they asked for.
	if be.label == "" {
		hb, err := openTrafficBackend("http", dir)
		if err != nil {
			return nil, err
		}
		defer hb.close()
		if err := runTrafficLevel(rep, hb, ids, levels, trafficConcurrency[0], cfg, ingestBuf.Bytes()); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// WriteTrafficTSV prints a traffic report in the package's row style.
func WriteTrafficTSV(w io.Writer, rep *benchfmt.Report) {
	printHeader(w, fmt.Sprintf("Mixed-op serving load: %v fields (%v³ nyx), mix %v, %vs per level",
		rep.Config["fields"], rep.Config["size"], rep.Config["mix"], rep.Config["duration_s"]),
		"series", "latency_ms", "ops")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%s\t%.3f\t%d\n", r.Name, r.NsPerOp/1e6, r.Iters)
	}
	for _, kp := range []string{"", "mem_", "http_"} {
		for _, c := range trafficConcurrency {
			if v, ok := rep.Config[fmt.Sprintf("%sc%d_ops_per_s", kp, c)]; ok {
				fmt.Fprintf(w, "%sc%d/throughput\t%.1f ops/s\t(errors %v)\n",
					strings.ReplaceAll(kp, "_", "-"), c, v, rep.Config[fmt.Sprintf("%sc%d_errors", kp, c)])
			}
		}
	}
}

func init() {
	register("traffic", "Mixed-op closed-loop serving load: p50/p95/p99 + throughput from server histograms",
		func(w io.Writer, cfg Config) error {
			rep, err := TrafficBench(cfg)
			if err != nil {
				return err
			}
			WriteTrafficTSV(w, rep)
			return nil
		})
	registerJSON("traffic", TrafficBench, WriteTrafficTSV)
}
