package experiments

import (
	"fmt"
	"io"

	"repro/internal/benchfmt"
	"repro/internal/huffman"
	"repro/internal/synth"
	"repro/internal/sz3"
)

// entropyLaneSweep is the interleaved lane counts BENCH_entropy.json
// tracks; 1 is the legacy single-lane format (measured as huffman_decode,
// the name the trajectory has carried since PR 1).
var entropyLaneSweep = []int{1, 2, 4, 8}

// EntropyBench measures the entropy stage — canonical Huffman over bitio —
// in isolation on the quantization-code stream sz3 produces for a Size³ Nyx
// field (eb = 1e-3·range), plus the surrounding sz3 pipeline for context.
// Decode is swept across the interleaved lane counts (huffman_decode_lanesN
// rows), and cfg.Workers bounds the goroutines multi-lane decode and sz3
// decompression may fan out to (0 = all cores, 1 = serial ILP only).
// The committed BENCH_entropy.json tracks these numbers across PRs;
// regenerate with `mrbench -exp entropy -size 128 -json BENCH_entropy.json`.
func EntropyBench(cfg Config) (*benchfmt.Report, error) {
	cfg = cfg.withDefaults()
	f := synth.Generate(synth.Nyx, cfg.Size, cfg.Seed)
	eb := f.ValueRange() * 1e-3
	codes, err := sz3.Codes(f, sz3.Options{EB: eb})
	if err != nil {
		return nil, err
	}
	enc := huffman.Encode(codes)
	blob, err := sz3.Compress(f, sz3.Options{EB: eb})
	if err != nil {
		return nil, err
	}

	rep := &benchfmt.Report{Config: map[string]any{
		"dataset":       "nyx",
		"size":          cfg.Size,
		"seed":          cfg.Seed,
		"eb":            "1e-3 * value range",
		"symbols":       len(codes),
		"encoded_bytes": len(enc),
		"lanes":         entropyLaneSweep,
		"workers":       cfg.Workers,
	}}
	// Keep total wall clock a few seconds regardless of size.
	iters := 1 << 24 / (cfg.Size * cfg.Size * cfg.Size)
	if iters < 1 {
		iters = 1
	} else if iters > 50 {
		iters = 50
	}

	codeBytes := int64(len(codes) * 4)
	var benchErr error
	rep.Measure("huffman_encode", iters, codeBytes, func() {
		huffman.Encode(codes)
	})
	rep.Measure("huffman_decode", iters, codeBytes, func() {
		if _, err := huffman.Decode(enc); err != nil && benchErr == nil {
			benchErr = err
		}
	})
	for _, lanes := range entropyLaneSweep {
		if lanes == 1 {
			continue // the huffman_decode row above
		}
		il := huffman.EncodeInterleaved(codes, lanes)
		rep.Measure(fmt.Sprintf("huffman_decode_lanes%d", lanes), iters, codeBytes, func() {
			if _, err := huffman.DecodeWorkers(il, cfg.Workers); err != nil && benchErr == nil {
				benchErr = err
			}
		})
	}
	fieldBytes := int64(f.Bytes())
	rep.Measure("sz3_compress", iters, fieldBytes, func() {
		if _, err := sz3.Compress(f, sz3.Options{EB: eb}); err != nil && benchErr == nil {
			benchErr = err
		}
	})
	rep.Measure("sz3_decompress", iters, fieldBytes, func() {
		if _, err := sz3.DecompressWorkers(blob, cfg.Workers); err != nil && benchErr == nil {
			benchErr = err
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}
	return rep, nil
}

// WriteEntropyTSV prints a report in the package's usual tab-separated style.
func WriteEntropyTSV(w io.Writer, rep *benchfmt.Report) {
	printHeader(w, fmt.Sprintf("Entropy-stage throughput: %v³ nyx, %v symbols, %v encoded bytes",
		rep.Config["size"], rep.Config["symbols"], rep.Config["encoded_bytes"]),
		"op", "ns/op", "MB/s")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\n", r.Name, r.NsPerOp, r.MBPerS)
	}
}

func init() {
	register("entropy", "Entropy-stage throughput (batched bitio + table-driven Huffman)",
		func(w io.Writer, cfg Config) error {
			rep, err := EntropyBench(cfg)
			if err != nil {
				return err
			}
			WriteEntropyTSV(w, rep)
			return nil
		})
	registerJSON("entropy", EntropyBench, WriteEntropyTSV)
}
