package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultio"
)

// backends returns one instance of every Store implementation over the same
// two objects, plus whether it accepts writes. The HTTP backend reads a
// temp directory published through OriginHandler — loopback, but the real
// remote path: suffix-range open, ranged reads, ETag identity.
func backends(t *testing.T, objects map[string][]byte) []struct {
	name     string
	st       Store
	writable bool
} {
	t.Helper()

	dir := t.TempDir()
	for k, v := range objects {
		if err := os.WriteFile(filepath.Join(dir, k), v, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fsStore, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}

	mem := NewMem()
	for k, v := range objects {
		data := v
		err := mem.Install(context.Background(), k, func(w io.Writer) error {
			_, werr := w.Write(data)
			return werr
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(OriginHandler(dir))
	t.Cleanup(srv.Close)
	httpStore, err := NewHTTP(srv.URL+"/", HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}

	return []struct {
		name     string
		st       Store
		writable bool
	}{
		{"fs", fsStore, true},
		{"mem", mem, true},
		{"http", httpStore, false},
	}
}

// TestConformance locks the behaviors every backend must share: full and
// positioned reads return identical bytes, Size and Info are consistent,
// Stat's identity matches the open handle's, missing objects wrap
// fs.ErrNotExist, and invalid keys never touch storage.
func TestConformance(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB
	objects := map[string][]byte{"a.mrw": payload, "b.mrw": []byte("tiny")}
	ctx := context.Background()

	for _, be := range backends(t, objects) {
		t.Run(be.name, func(t *testing.T) {
			h, err := be.st.Open(ctx, "a.mrw")
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			if h.Size() != int64(len(payload)) {
				t.Fatalf("Size = %d, want %d", h.Size(), len(payload))
			}
			if h.Info().Size != int64(len(payload)) {
				t.Fatalf("Info().Size = %d, want %d", h.Info().Size, len(payload))
			}

			// Full read, interior read, and a read straddling EOF.
			got := make([]byte, len(payload))
			if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("full ReadAt differs from payload")
			}
			mid := make([]byte, 100)
			if _, err := h.ReadAt(mid, 1000); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mid, payload[1000:1100]) {
				t.Fatal("interior ReadAt differs from payload")
			}
			over := make([]byte, 100)
			n, err := h.ReadAt(over, int64(len(payload))-10)
			if n != 10 || err != io.EOF {
				t.Fatalf("ReadAt past EOF = (%d, %v), want (10, EOF)", n, err)
			}
			if !bytes.Equal(over[:10], payload[len(payload)-10:]) {
				t.Fatal("EOF-straddling ReadAt differs from payload tail")
			}

			// Stat identifies the same version the handle observed.
			info, err := be.st.Stat(ctx, "a.mrw")
			if err != nil {
				t.Fatal(err)
			}
			if !info.Same(h.Info()) {
				t.Fatalf("Stat %+v is not Same as open Info %+v", info, h.Info())
			}

			// Missing objects wrap fs.ErrNotExist on both paths.
			if _, err := be.st.Open(ctx, "missing.mrw"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Open(missing) = %v, want fs.ErrNotExist", err)
			}
			if _, err := be.st.Stat(ctx, "missing.mrw"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Stat(missing) = %v, want fs.ErrNotExist", err)
			}

			// Traversal and separator keys are rejected before storage.
			for _, bad := range []string{"", "a/b", `a\b`, "..", "x..y"} {
				if _, err := be.st.Open(ctx, bad); err == nil {
					t.Errorf("Open(%q) accepted an invalid key", bad)
				}
			}
		})
	}
}

// TestInstallListRoundTrip locks Install atomicity semantics and List on
// the writable backends, and ErrUnsupported on the read-only one.
func TestInstallListRoundTrip(t *testing.T) {
	ctx := context.Background()
	for _, be := range backends(t, map[string][]byte{"seed.mrw": []byte("v1")}) {
		t.Run(be.name, func(t *testing.T) {
			if !be.writable {
				err := be.st.Install(ctx, "x.mrw", func(io.Writer) error { return nil })
				if !errors.Is(err, ErrUnsupported) {
					t.Fatalf("Install on read-only backend = %v, want ErrUnsupported", err)
				}
				if _, err := be.st.List(ctx); !errors.Is(err, ErrUnsupported) {
					t.Fatalf("List on read-only backend = %v, want ErrUnsupported", err)
				}
				return
			}

			// Replace while a handle is open: the old handle keeps serving
			// its version's bytes, and the new Stat identity diverges.
			h, err := be.st.Open(ctx, "seed.mrw")
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			old := h.Info()
			err = be.st.Install(ctx, "seed.mrw", func(w io.Writer) error {
				_, werr := w.Write([]byte("version-two"))
				return werr
			})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 2)
			if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(got) != "v1" {
				t.Fatalf("open handle read %q after replace, want the original bytes", got)
			}
			now, err := be.st.Stat(ctx, "seed.mrw")
			if err != nil {
				t.Fatal(err)
			}
			if now.Same(old) {
				t.Fatal("Stat identity unchanged across Install of different content")
			}

			// A failing install leaves no residue.
			boom := errors.New("boom")
			if err := be.st.Install(ctx, "aborted.mrw", func(io.Writer) error { return boom }); !errors.Is(err, boom) {
				t.Fatalf("Install error = %v, want the writer's", err)
			}
			keys, err := be.st.List(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(keys, []string{"seed.mrw"}) {
				t.Fatalf("List = %v, want [seed.mrw]", keys)
			}
		})
	}
}

// countingOrigin wraps OriginHandler counting requests.
func countingOrigin(t *testing.T, dir string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	inner := OriginHandler(dir)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

// TestHTTPRoundTrips proves the backend's round-trip economy: one
// suffix-range GET opens the object AND serves every read inside the
// prefetched tail; a cold interior read costs one ranged GET whose
// read-ahead then absorbs neighboring reads.
func TestHTTPRoundTrips(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "obj"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	srv, n := countingOrigin(t, dir)
	st, err := NewHTTP(srv.URL, HTTPOptions{FooterPrefetch: 4096, ReadAhead: 8192})
	if err != nil {
		t.Fatal(err)
	}

	h, err := st.Open(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if got := n.Load(); got != 1 {
		t.Fatalf("Open cost %d requests, want 1", got)
	}
	if h.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", h.Size(), len(payload))
	}

	// Reads inside the prefetched tail are free.
	tail := make([]byte, 512)
	if _, err := h.ReadAt(tail, int64(len(payload))-512); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, payload[len(payload)-512:]) {
		t.Fatal("tail read differs")
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("tail read cost %d extra requests, want 0", got-1)
	}

	// A cold interior read costs one ranged GET; the next read inside its
	// read-ahead window costs none.
	p := make([]byte, 100)
	if _, err := h.ReadAt(p, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, payload[5000:5100]) {
		t.Fatal("interior read differs")
	}
	if got := n.Load(); got != 2 {
		t.Fatalf("cold interior read cost %d requests, want 1", got-1)
	}
	if _, err := h.ReadAt(p, 5100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, payload[5100:5200]) {
		t.Fatal("window read differs")
	}
	if got := n.Load(); got != 2 {
		t.Fatalf("read-ahead window miss: %d extra requests", got-2)
	}
}

// TestHTTPNoRangeFallback locks the degraded-origin path: an origin that
// ignores Range answers 200 with the whole object, and the handle serves
// every read from the buffered body without further requests.
func TestHTTPNoRangeFallback(t *testing.T) {
	payload := []byte("the whole object, no ranges here")
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.Write(payload)
	}))
	t.Cleanup(srv.Close)
	st, err := NewHTTP(srv.URL, HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Open(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", h.Size(), len(payload))
	}
	got := make([]byte, len(payload))
	if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("buffered read differs")
	}
	if n.Load() != 1 {
		t.Fatalf("full-body fallback issued %d requests, want 1", n.Load())
	}
}

// TestHTTPObjectChangedMidHandle locks the mixed-version guard: when the
// origin's ETag changes under an open handle, the next ranged read fails
// permanently (reopen, don't retry) instead of splicing bytes from two
// versions into one container image.
func TestHTTPObjectChangedMidHandle(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 64<<10)
	var etag atomic.Value
	etag.Store(`"v1"`)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", etag.Load().(string))
		http.ServeContent(w, r, "obj", time.Time{}, bytes.NewReader(payload))
	}))
	t.Cleanup(srv.Close)
	st, err := NewHTTP(srv.URL, HTTPOptions{FooterPrefetch: 1024, ReadAhead: 1024})
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Open(context.Background(), "obj")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	etag.Store(`"v2"`)
	p := make([]byte, 100)
	_, err = h.ReadAt(p, 0) // outside the tail: must hit the origin
	if err == nil {
		t.Fatal("read across an origin-side replace succeeded")
	}
	if faultio.Classify(err) != faultio.ClassPermanent {
		t.Fatalf("version-change error classified %v, want Permanent", faultio.Classify(err))
	}
}

// TestOriginHandlerRejectsEscapes locks the origin's key discipline: only
// flat names under the directory are served.
func TestOriginHandlerRejectsEscapes(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ok"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := OriginHandler(dir)
	for _, path := range []string{"/", "/nope", "/../secret", "/a/b", `/..\x`} {
		req := httptest.NewRequest("GET", "http://origin"+path, nil)
		// Bypass client-side path cleaning: set the raw path explicitly.
		req.URL.Path = path
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %q = %d, want 404", path, rec.Code)
		}
	}
	req := httptest.NewRequest("GET", "http://origin/ok", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("ETag") == "" {
		t.Fatalf("GET /ok = %d (ETag %q), want 200 with a strong ETag", rec.Code, rec.Header().Get("ETag"))
	}
}

// TestOpenURL locks the scheme dispatch of the store-URL resolver.
func TestOpenURL(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		url  string
		want string // String() prefix; "" = expect an error
	}{
		{"file://" + dir, "file://"},
		{dir, "file://"},
		{"mem://", "mem://"},
		{"http://origin/prefix", "http://origin/prefix/"},
		{"https://origin/", "https://origin/"},
		{"ftp://origin/", ""},
		{"", ""},
	}
	for _, tc := range cases {
		st, err := Open(tc.url)
		if tc.want == "" {
			if err == nil {
				t.Errorf("Open(%q) accepted", tc.url)
			}
			continue
		}
		if err != nil {
			t.Errorf("Open(%q): %v", tc.url, err)
			continue
		}
		if got := st.String(); len(got) < len(tc.want) || got[:len(tc.want)] != tc.want {
			t.Errorf("Open(%q).String() = %q, want prefix %q", tc.url, got, tc.want)
		}
	}
}

// TestOpenObjectURL locks the store/key split of object URLs.
func TestOpenObjectURL(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.mrw"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		url, key string
	}{
		{filepath.Join(dir, "x.mrw"), "x.mrw"},
		{"file://" + filepath.Join(dir, "x.mrw"), "x.mrw"},
		{"http://origin/c/x.mrw", "x.mrw"},
	} {
		st, key, err := OpenObjectURL(tc.url)
		if err != nil {
			t.Errorf("OpenObjectURL(%q): %v", tc.url, err)
			continue
		}
		if key != tc.key {
			t.Errorf("OpenObjectURL(%q) key = %q, want %q", tc.url, key, tc.key)
		}
		if st == nil {
			t.Errorf("OpenObjectURL(%q): nil store", tc.url)
		}
	}
	for _, bad := range []string{"", "http://origin/", fmt.Sprintf("%s%c", dir, os.PathSeparator)} {
		if _, _, err := OpenObjectURL(bad); err == nil {
			t.Errorf("OpenObjectURL(%q) accepted", bad)
		}
	}
}
