package store

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// OriginHandler serves dir's regular files statically — a minimal
// range-capable origin speaking exactly the dialect the HTTP backend
// wants: ranged GETs for positioned reads, HEAD + strong ETag
// (size + mtime) for revalidation, 404 for anything else. Keys are flat
// (no subdirectories), mirroring FS. It exists so a plain directory of
// containers can be published to remote readers without running a full
// object store: mrserve's -raw-origin flag, the traffic harness's http
// backend, and the store conformance tests all mount it.
func OriginHandler(dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/")
		if name == "" || strings.ContainsAny(name, `/\`) || strings.Contains(name, "..") {
			http.NotFound(w, r)
			return
		}
		path := filepath.Join(dir, name)
		st, err := os.Stat(path)
		if err != nil || st.IsDir() {
			http.NotFound(w, r)
			return
		}
		// A strong validator lets the store detect replace-while-serving
		// and conditional requests short-circuit; ServeFile then handles
		// Range, HEAD, and If-None-Match against it.
		w.Header().Set("ETag", fmt.Sprintf("\"%x-%x\"", st.Size(), st.ModTime().UnixNano()))
		http.ServeFile(w, r, path)
	})
}
