package store

import (
	"bytes"
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"sort"
	"sync"
	"time"
)

// Mem is the in-memory backend: objects are byte slices under a mutex. It
// exists for tests and the traffic harness — a full serving stack with no
// filesystem underneath — and as the reference implementation of the
// interface's atomicity contract (Install swaps a complete object in one
// critical section).
type Mem struct {
	mu      sync.Mutex
	objects map[string]memObject
	now     func() time.Time // test seam
}

type memObject struct {
	data []byte
	info Info
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{objects: make(map[string]memObject), now: time.Now}
}

func (s *Mem) String() string { return "mem://" }

// memETag is the strong validator of an in-memory object version: content
// CRC plus length, the same shape the serving tier derives from container
// footers.
func memETag(data []byte) string {
	return fmt.Sprintf("%08x-%x", crc32.ChecksumIEEE(data), len(data))
}

// memHandle reads a snapshot of the object's bytes: a concurrent Install
// replaces the store's slice, never mutates it, so the handle stays
// consistent for its lifetime.
type memHandle struct {
	r    *bytes.Reader
	info Info
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) { return h.r.ReadAt(p, off) }
func (h *memHandle) Close() error                            { return nil }
func (h *memHandle) Size() int64                             { return h.info.Size }
func (h *memHandle) Info() Info                              { return h.info }

func (s *Mem) get(key string) (memObject, error) {
	if err := checkKey(key); err != nil {
		return memObject{}, err
	}
	s.mu.Lock()
	obj, ok := s.objects[key]
	s.mu.Unlock()
	if !ok {
		return memObject{}, fmt.Errorf("store: mem object %q: %w", key, fs.ErrNotExist)
	}
	return obj, nil
}

func (s *Mem) Open(_ context.Context, key string) (Handle, error) {
	obj, err := s.get(key)
	if err != nil {
		return nil, err
	}
	return &memHandle{r: bytes.NewReader(obj.data), info: obj.info}, nil
}

func (s *Mem) Stat(_ context.Context, key string) (Info, error) {
	obj, err := s.get(key)
	if err != nil {
		return Info{}, err
	}
	return obj.info, nil
}

func (s *Mem) Install(_ context.Context, key string, fn func(io.Writer) error) error {
	if err := checkKey(key); err != nil {
		return err
	}
	// Build the complete object outside the lock; swap it in atomically.
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		return err
	}
	data := buf.Bytes()
	info := Info{Size: int64(len(data)), ETag: memETag(data)}
	s.mu.Lock()
	info.ModTime = s.now()
	s.objects[key] = memObject{data: data, info: info}
	s.mu.Unlock()
	return nil
}

func (s *Mem) List(_ context.Context) ([]string, error) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}
