package store

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/writer"
)

// FS is the local-filesystem backend: objects are files in one directory,
// opened with os.Open, revalidated by fstat identity (size + mtime), and
// installed through writer.AtomicFile (temp + fsync + rename). This is the
// storage logic the serving tier and reader used inline before the seam
// existed, extracted behind the interface.
type FS struct {
	dir string
}

// NewFS returns a filesystem store rooted at dir, which must exist and be a
// directory.
func NewFS(dir string) (*FS, error) {
	st, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, &os.PathError{Op: "store", Path: dir, Err: os.ErrInvalid}
	}
	return &FS{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *FS) Dir() string { return s.dir }

func (s *FS) String() string { return "file://" + s.dir }

func fsInfo(st os.FileInfo) Info {
	return Info{Size: st.Size(), ModTime: st.ModTime()}
}

// fsHandle is an open file plus the identity fstat'ed at open time.
type fsHandle struct {
	f    *os.File
	info Info
}

func (h *fsHandle) ReadAt(p []byte, off int64) (int, error) { return h.f.ReadAt(p, off) }
func (h *fsHandle) Close() error                            { return h.f.Close() }
func (h *fsHandle) Size() int64                             { return h.info.Size }
func (h *fsHandle) Info() Info                              { return h.info }

func (s *FS) Open(_ context.Context, key string) (Handle, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(s.dir, key))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	// The identity comes from fstat of the opened file descriptor — the
	// inode this handle actually reads — not from the path, so a replace
	// racing the open can never attach the new file's identity to the old
	// file's bytes.
	return &fsHandle{f: f, info: fsInfo(st)}, nil
}

func (s *FS) Stat(_ context.Context, key string) (Info, error) {
	if err := checkKey(key); err != nil {
		return Info{}, err
	}
	st, err := os.Stat(filepath.Join(s.dir, key))
	if err != nil {
		return Info{}, err
	}
	return fsInfo(st), nil
}

func (s *FS) Install(_ context.Context, key string, fn func(io.Writer) error) error {
	if err := checkKey(key); err != nil {
		return err
	}
	return writer.AtomicFile(filepath.Join(s.dir, key), 0o644, fn)
}

func (s *FS) List(_ context.Context) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		// Skip directories, AtomicFile temporaries, and other dotfiles.
		if !e.Type().IsRegular() || name == "" || name[0] == '.' {
			continue
		}
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys, nil
}

// SweepTemps removes stale AtomicFile temporaries (crash residue from an
// interrupted Install) older than maxAge.
func (s *FS) SweepTemps(maxAge time.Duration) (int, error) {
	return writer.SweepTemps(s.dir, maxAge)
}
