// Package store is the storage-backend seam under the container read and
// write paths: everything that used to assume containers are local files
// opened via os.Open — the random-access reader, the mrserve serving tier,
// ingest's atomic install, mrcompress — goes through the Store interface
// instead, so the same serving stack runs unchanged over a local directory,
// an in-memory object set (tests, the traffic harness), or a remote HTTP
// origin fetched with range requests.
//
// A Store names objects by flat keys ("nyx.mrw"): no path separators, no
// traversal. Open returns a random-access Handle (io.ReaderAt + size) plus
// the object's identity at open time; Stat revalidates that identity so a
// serving tier can detect replacement without reopening; Install writes an
// object atomically (every observer sees the old or the new object, never a
// partial one); List enumerates keys.
//
// Backends classify their failures through internal/faultio — timeouts and
// 5xx as Transient, missing objects as Permanent wrapping fs.ErrNotExist —
// so the reader's retry/backoff layer and the serving tier's error mapping
// apply identically over every backend.
package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// Info identifies one version of an object: the tuple a serving tier
// compares to decide whether a cached handle still matches the stored
// object. Local backends fill Size and ModTime (the fstat identity); remote
// backends additionally carry the origin's ETag when it offers one.
type Info struct {
	// Size is the object's length in bytes.
	Size int64
	// ModTime is the object's last-modified time (zero when the backend has
	// none).
	ModTime time.Time
	// ETag is the backend's strong validator for this version ("" when the
	// backend has none). When both sides of a comparison carry one, it wins
	// over the size+mtime identity.
	ETag string
}

// Same reports whether two Infos identify the same object version: by ETag
// when both carry one, by size+mtime otherwise.
func (a Info) Same(b Info) bool {
	if a.ETag != "" && b.ETag != "" {
		return a.ETag == b.ETag && a.Size == b.Size
	}
	return a.Size == b.Size && a.ModTime.Equal(b.ModTime)
}

// Handle is an open object: positioned reads over a fixed-size snapshot.
// Implementations are safe for concurrent ReadAt, like os.File.
type Handle interface {
	io.ReaderAt
	io.Closer
	// Size is the object's total length in bytes.
	Size() int64
	// Info is the object's identity observed at open time (the baseline a
	// later Stat is compared against to detect replacement).
	Info() Info
}

// Store is a storage backend holding flat-keyed objects.
type Store interface {
	// Open returns a random-access handle on the object named key, or an
	// error wrapping fs.ErrNotExist when there is no such object.
	Open(ctx context.Context, key string) (Handle, error)
	// Stat returns the object's current identity without opening it — the
	// revalidation probe a serving tier issues per lookup.
	Stat(ctx context.Context, key string) (Info, error)
	// Install atomically writes the object named key from fn's output: a
	// concurrent Open observes either the previous version or the complete
	// new one. Read-only backends return ErrUnsupported.
	Install(ctx context.Context, key string, fn func(io.Writer) error) error
	// List returns the keys present, sorted.
	List(ctx context.Context) ([]string, error)
	// String describes the store (its URL) for logs.
	String() string
}

// Sweeper is implemented by stores that can accumulate crash residue from
// interrupted installs (the filesystem backend); SweepTemps removes
// leftovers older than maxAge and reports how many.
type Sweeper interface {
	SweepTemps(maxAge time.Duration) (int, error)
}

// ErrUnsupported reports an operation the backend cannot perform (e.g.
// Install on a read-only HTTP origin).
var ErrUnsupported = errors.New("store: operation not supported by this backend")

// ValidKey reports whether key is a flat object name: non-empty, no path
// separators, no traversal. Every backend rejects invalid keys before they
// touch storage.
func ValidKey(key string) bool {
	return key != "" && !strings.ContainsAny(key, `/\`) && !strings.Contains(key, "..")
}

func checkKey(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid object key %q", key)
	}
	return nil
}
