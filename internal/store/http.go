package store

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultio"
)

// Default HTTP backend tuning. The footer prefetch is sized to cover the
// index section of any realistic container (trailer + section in one round
// trip, so an open costs exactly one GET); the read-ahead floor batches the
// small stream reads of a sequential level decode into fewer range
// requests.
const (
	DefaultFooterPrefetch = 64 << 10
	DefaultReadAhead      = 256 << 10
	defaultHTTPTimeout    = 30 * time.Second
)

// HTTPOptions tunes the HTTP backend.
type HTTPOptions struct {
	// FooterPrefetch is how many trailing bytes of the object are fetched
	// (with one suffix-range GET) at Open and kept for the handle's
	// lifetime, so the index footer reads that follow cost no further round
	// trips. <= 0 means DefaultFooterPrefetch.
	FooterPrefetch int64
	// ReadAhead is the minimum number of bytes fetched per range request;
	// the surplus past the caller's read is kept and serves subsequent
	// overlapping reads without a round trip. <= 0 means DefaultReadAhead.
	ReadAhead int64
	// Client overrides the http.Client (nil: a client with a bounded
	// overall request timeout).
	Client *http.Client
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.FooterPrefetch <= 0 {
		o.FooterPrefetch = DefaultFooterPrefetch
	}
	if o.ReadAhead <= 0 {
		o.ReadAhead = DefaultReadAhead
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: defaultHTTPTimeout}
	}
	return o
}

// HTTP is the remote range-request backend: objects live behind a base URL
// (any origin that serves files — a CDN, an object store's HTTP gate, a
// static file server) and are read with ranged GETs. Opening an object
// costs one suffix-range GET that both sizes it and prefetches its tail;
// subsequent positioned reads are ranged GETs with read-ahead. Transport
// faults and origin statuses are classified through internal/faultio —
// timeouts/resets/5xx Transient, 404/416 Permanent — so the reader's
// retry/backoff layer applies unchanged. The backend is read-only: Install
// and List return ErrUnsupported.
type HTTP struct {
	base string // normalized with one trailing slash
	opt  HTTPOptions
}

// NewHTTP returns a store over the given http:// or https:// base URL;
// object keys are appended as one path element.
func NewHTTP(base string, opt HTTPOptions) (*HTTP, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("store: http base url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("store: http base url %q: scheme must be http or https", base)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("store: http base url %q: missing host", base)
	}
	return &HTTP{base: strings.TrimRight(u.String(), "/") + "/", opt: opt.withDefaults()}, nil
}

func (s *HTTP) String() string { return s.base }

func (s *HTTP) objectURL(key string) string { return s.base + url.PathEscape(key) }

// httpInfo extracts the object identity from response headers.
func httpInfo(h http.Header, size int64) Info {
	info := Info{Size: size, ETag: h.Get("ETag")}
	if lm := h.Get("Last-Modified"); lm != "" {
		if t, err := http.ParseTime(lm); err == nil {
			info.ModTime = t
		}
	}
	return info
}

// statusError classifies an unexpected origin status, folding not-found
// into fs.ErrNotExist so callers' missing-object handling works unchanged
// over the remote backend.
func statusError(status int, url string) error {
	err := faultio.HTTPStatusError(status, url)
	if status == http.StatusNotFound || status == http.StatusGone {
		err = faultio.Permanent(fmt.Errorf("store: %s: http %d: %w", url, status, fs.ErrNotExist))
	}
	return err
}

// parseContentRange extracts first, last, and total from a 206 response's
// "bytes first-last/total" header.
func parseContentRange(v string) (first, last, total int64, err error) {
	rest, ok := strings.CutPrefix(v, "bytes ")
	if !ok {
		return 0, 0, 0, fmt.Errorf("store: unparseable Content-Range %q", v)
	}
	span, tot, ok := strings.Cut(rest, "/")
	if !ok {
		return 0, 0, 0, fmt.Errorf("store: unparseable Content-Range %q", v)
	}
	lo, hi, ok := strings.Cut(span, "-")
	if !ok {
		return 0, 0, 0, fmt.Errorf("store: unparseable Content-Range %q", v)
	}
	if first, err = strconv.ParseInt(lo, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("store: unparseable Content-Range %q", v)
	}
	if last, err = strconv.ParseInt(hi, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("store: unparseable Content-Range %q", v)
	}
	if total, err = strconv.ParseInt(tot, 10, 64); err != nil || first < 0 || last < first || total <= last {
		return 0, 0, 0, fmt.Errorf("store: implausible Content-Range %q", v)
	}
	return first, last, total, nil
}

// Open fetches the object's tail with one suffix-range GET: the response
// sizes the object (Content-Range total), captures its identity (ETag,
// Last-Modified), and prefetches the last FooterPrefetch bytes so the
// container footer reads that follow are free. An origin that ignores
// Range answers 200 with the whole object; the handle then serves every
// read from the buffered body.
func (s *HTTP) Open(ctx context.Context, key string) (Handle, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	u := s.objectURL(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=-%d", s.opt.FooterPrefetch))
	resp, err := s.opt.Client.Do(req)
	if err != nil {
		return nil, faultio.NetError(fmt.Errorf("store: open %s: %w", u, err))
	}
	defer resp.Body.Close()
	h := &httpHandle{s: s, url: u, readAhead: s.opt.ReadAhead}
	switch resp.StatusCode {
	case http.StatusPartialContent:
		first, last, total, perr := parseContentRange(resp.Header.Get("Content-Range"))
		if perr != nil {
			return nil, faultio.Corrupt(perr)
		}
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, faultio.NetError(fmt.Errorf("store: open %s: reading tail: %w", u, rerr))
		}
		if int64(len(body)) != last-first+1 {
			return nil, faultio.Corrupt(fmt.Errorf("store: open %s: tail body %d bytes, Content-Range promised %d",
				u, len(body), last-first+1))
		}
		h.size = total
		h.tail, h.tailOff = body, first
		h.full = first == 0 && last == total-1
	case http.StatusOK:
		// Origin ignores ranges: the whole object is already on the wire;
		// buffer it and never issue another request.
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, faultio.NetError(fmt.Errorf("store: open %s: reading body: %w", u, rerr))
		}
		h.size = int64(len(body))
		h.tail, h.tailOff = body, 0
		h.full = true
	default:
		return nil, statusError(resp.StatusCode, u)
	}
	h.info = httpInfo(resp.Header, h.size)
	return h, nil
}

// Stat issues a HEAD request: the revalidation probe comparing the
// origin's current ETag (or size + Last-Modified) against an open handle's.
func (s *HTTP) Stat(ctx context.Context, key string) (Info, error) {
	if err := checkKey(key); err != nil {
		return Info{}, err
	}
	u := s.objectURL(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, u, nil)
	if err != nil {
		return Info{}, err
	}
	resp, err := s.opt.Client.Do(req)
	if err != nil {
		return Info{}, faultio.NetError(fmt.Errorf("store: stat %s: %w", u, err))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Info{}, statusError(resp.StatusCode, u)
	}
	return httpInfo(resp.Header, resp.ContentLength), nil
}

func (s *HTTP) Install(context.Context, string, func(io.Writer) error) error {
	return fmt.Errorf("store: install over %s: %w", s.base, ErrUnsupported)
}

func (s *HTTP) List(context.Context) ([]string, error) {
	return nil, fmt.Errorf("store: list over %s: %w", s.base, ErrUnsupported)
}

// httpHandle is one open remote object: the prefetched tail (immutable),
// plus a single mutex-guarded read-ahead window holding the most recent
// range fetch. Reads outside both cost one ranged GET of at least
// readAhead bytes. Safe for concurrent ReadAt: the window is only read and
// swapped under the mutex; fetches run outside it (concurrent misses race
// to refresh the window — last wins, all return correct bytes).
type httpHandle struct {
	s         *HTTP
	url       string
	size      int64
	info      Info
	tail      []byte
	tailOff   int64
	full      bool
	readAhead int64

	mu     sync.Mutex
	win    []byte
	winOff int64
}

func (h *httpHandle) Close() error { return nil }
func (h *httpHandle) Size() int64  { return h.size }
func (h *httpHandle) Info() Info   { return h.info }

func (h *httpHandle) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: negative read offset %d", off)
	}
	if off >= h.size {
		return 0, io.EOF
	}
	want := p
	if off+int64(len(p)) > h.size {
		want = p[:h.size-off]
	}
	n, err := h.readAt(want, off)
	if err == nil && n == len(want) && len(want) < len(p) {
		return n, io.EOF
	}
	return n, err
}

func (h *httpHandle) readAt(p []byte, off int64) (int, error) {
	// The immutable tail (footer prefetch, or the whole buffered object).
	if off >= h.tailOff {
		return copy(p, h.tail[off-h.tailOff:]), nil
	}
	// The read-ahead window from the previous fetch.
	h.mu.Lock()
	if off >= h.winOff && off+int64(len(p)) <= h.winOff+int64(len(h.win)) {
		n := copy(p, h.win[off-h.winOff:])
		h.mu.Unlock()
		return n, nil
	}
	h.mu.Unlock()
	// Miss: fetch [off, off+max(len(p), readAhead)), clamped to the tail
	// boundary (bytes past it are already resident).
	fetchLen := int64(len(p))
	if fetchLen < h.readAhead {
		fetchLen = h.readAhead
	}
	if off+fetchLen > h.tailOff {
		fetchLen = h.tailOff - off
	}
	buf, err := h.fetch(off, fetchLen)
	if err != nil {
		return 0, err
	}
	n := copy(p, buf)
	if n < len(p) {
		// The ranged fetch was clamped at the tail boundary; finish from it.
		n += copy(p[n:], h.tail[:len(p)-n])
	}
	h.mu.Lock()
	h.win, h.winOff = buf, off
	h.mu.Unlock()
	return n, nil
}

// fetch GETs [off, off+length) with one range request, classifying
// transport and status failures so the retry layer above reacts correctly.
func (h *httpHandle) fetch(off, length int64) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, h.url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	resp, err := h.s.opt.Client.Do(req)
	if err != nil {
		return nil, faultio.NetError(fmt.Errorf("store: read %s @%d: %w", h.url, off, err))
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		// A replaced object must never leak mixed-version bytes into one
		// handle: when both sides carry a strong validator and they
		// disagree, fail permanently so the caller reopens.
		if et := resp.Header.Get("ETag"); et != "" && h.info.ETag != "" && et != h.info.ETag {
			return nil, faultio.Permanent(fmt.Errorf("store: read %s @%d: object changed at origin (ETag %s, opened %s)",
				h.url, off, et, h.info.ETag))
		}
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, faultio.NetError(fmt.Errorf("store: read %s @%d: %w", h.url, off, rerr))
		}
		if int64(len(body)) < length {
			return body, io.ErrUnexpectedEOF
		}
		return body[:length], nil
	case http.StatusOK:
		// The origin ignored the range mid-handle: take the slice we need
		// from the full body.
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, faultio.NetError(fmt.Errorf("store: read %s @%d: %w", h.url, off, rerr))
		}
		if int64(len(body)) < off+length {
			return nil, io.ErrUnexpectedEOF
		}
		return body[off : off+length], nil
	default:
		return nil, statusError(resp.StatusCode, h.url)
	}
}
