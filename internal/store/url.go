package store

import (
	"fmt"
	"strings"
)

// Open resolves a store URL to a backend:
//
//	file:///data/containers   (or a bare path)  → FS
//	mem://                                       → a fresh empty Mem
//	http://origin/path, https://…                → HTTP range-request backend
func Open(rawurl string) (Store, error) {
	switch {
	case strings.HasPrefix(rawurl, "file://"):
		return NewFS(strings.TrimPrefix(rawurl, "file://"))
	case rawurl == "mem://" || rawurl == "mem:":
		return NewMem(), nil
	case strings.HasPrefix(rawurl, "http://") || strings.HasPrefix(rawurl, "https://"):
		return NewHTTP(rawurl, HTTPOptions{})
	case strings.Contains(rawurl, "://"):
		return nil, fmt.Errorf("store: unsupported store url %q (want file://, mem://, or http(s)://)", rawurl)
	case rawurl == "":
		return nil, fmt.Errorf("store: empty store url")
	default:
		// A bare path is the local directory backend.
		return NewFS(rawurl)
	}
}

// OpenObjectURL resolves a URL naming one object — the directory (or origin
// prefix) becomes the store, the final path element the key:
//
//	/data/x.mrw, file:///data/x.mrw  → FS over /data, key "x.mrw"
//	http://origin/c/x.mrw            → HTTP over http://origin/c, key "x.mrw"
func OpenObjectURL(rawurl string) (Store, string, error) {
	if rawurl == "" {
		return nil, "", fmt.Errorf("store: empty object url")
	}
	trimmed := strings.TrimPrefix(rawurl, "file://")
	if strings.HasPrefix(rawurl, "http://") || strings.HasPrefix(rawurl, "https://") {
		i := strings.LastIndex(rawurl, "/")
		key := rawurl[i+1:]
		if key == "" || strings.HasSuffix(rawurl[:i], "/") {
			return nil, "", fmt.Errorf("store: url %q does not name an object", rawurl)
		}
		st, err := NewHTTP(rawurl[:i], HTTPOptions{})
		if err != nil {
			return nil, "", err
		}
		return st, key, nil
	}
	if strings.Contains(trimmed, "://") {
		return nil, "", fmt.Errorf("store: unsupported object url %q", rawurl)
	}
	i := strings.LastIndexAny(trimmed, `/\`)
	if i < 0 {
		st, err := NewFS(".")
		if err != nil {
			return nil, "", err
		}
		return st, trimmed, nil
	}
	dir, key := trimmed[:i], trimmed[i+1:]
	if dir == "" {
		dir = "/"
	}
	if key == "" {
		return nil, "", fmt.Errorf("store: url %q does not name an object", rawurl)
	}
	st, err := NewFS(dir)
	if err != nil {
		return nil, "", err
	}
	return st, key, nil
}
