package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter()
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if w.Len() != len(bits) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(bits))
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10110110 {
		t.Fatalf("bytes = %08b", b)
	}
}

func TestReadBitsRoundTrip(t *testing.T) {
	prop := func(v uint64, nRaw uint8) bool {
		n := uint(nRaw%64) + 1
		v &= (1 << n) - 1
		w := NewWriter()
		w.WriteBits(v, n)
		r := NewReader(w.Bytes())
		got, err := r.ReadBits(n)
		return err == nil && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestMixedSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	type item struct {
		v uint64
		n uint
	}
	var items []item
	w := NewWriter()
	for i := 0; i < 500; i++ {
		n := uint(1 + rng.Intn(32))
		v := rng.Uint64() & ((1 << n) - 1)
		items = append(items, item{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, it := range items {
		got, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %d want %d", i, got, it.v)
		}
	}
}

func TestPosTracksBits(t *testing.T) {
	r := NewReader([]byte{0xAB, 0xCD})
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Pos() != 5 {
		t.Fatalf("Pos = %d, want 5", r.Pos())
	}
}
