package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter()
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if w.Len() != len(bits) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(bits))
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10110110 {
		t.Fatalf("bytes = %08b", b)
	}
}

func TestReadBitsRoundTrip(t *testing.T) {
	prop := func(v uint64, nRaw uint8) bool {
		n := uint(nRaw%64) + 1
		v &= (1 << n) - 1
		w := NewWriter()
		w.WriteBits(v, n)
		r := NewReader(w.Bytes())
		got, err := r.ReadBits(n)
		return err == nil && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestMixedSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	type item struct {
		v uint64
		n uint
	}
	var items []item
	w := NewWriter()
	for i := 0; i < 500; i++ {
		n := uint(1 + rng.Intn(32))
		v := rng.Uint64() & ((1 << n) - 1)
		items = append(items, item{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, it := range items {
		got, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %d want %d", i, got, it.v)
		}
	}
}

func TestPosTracksBits(t *testing.T) {
	r := NewReader([]byte{0xAB, 0xCD})
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Pos() != 5 {
		t.Fatalf("Pos = %d, want 5", r.Pos())
	}
}

func TestBytesNonAliasing(t *testing.T) {
	// Regression: the padded final byte used to be appended into the
	// writer's spare capacity, so a later WriteBit could clobber the
	// previously returned slice.
	w := NewWriter()
	w.WriteBits(0b1010101, 7) // partial byte forces padding
	snap := w.Bytes()
	got := append([]byte(nil), snap...)
	for i := 0; i < 64; i++ {
		w.WriteBit(1)
	}
	for i := range snap {
		if snap[i] != got[i] {
			t.Fatalf("byte %d of snapshot changed after later writes: %08b -> %08b", i, got[i], snap[i])
		}
	}
}

func TestReadBitsZeroAndFull(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0, 0) // n = 0 write is a no-op
	if w.Len() != 0 {
		t.Fatalf("Len after zero-bit write = %d", w.Len())
	}
	const v uint64 = 0xDEADBEEFCAFEF00D
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	if got := r.Peek(0); got != 0 {
		t.Fatalf("Peek(0) = %d", got)
	}
	if got, err := r.ReadBits(0); err != nil || got != 0 {
		t.Fatalf("ReadBits(0) = %d, %v", got, err)
	}
	if got, err := r.ReadBits(64); err != nil || got != v {
		t.Fatalf("ReadBits(64) = %#x, %v; want %#x", got, err, v)
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("read past end: %v", err)
	}
}

func TestReadBits64Unaligned(t *testing.T) {
	// A 64-bit read at a non-zero bit offset must straddle nine bytes.
	w := NewWriter()
	w.WriteBits(0b101, 3)
	const v = 0x0123456789ABCDEF
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	if got, err := r.ReadBits(3); err != nil || got != 0b101 {
		t.Fatalf("prefix = %b, %v", got, err)
	}
	if got := r.Peek(64); got != v {
		t.Fatalf("Peek(64) = %#x, want %#x", got, v)
	}
	if got, err := r.ReadBits(64); err != nil || got != v {
		t.Fatalf("ReadBits(64) = %#x, %v; want %#x", got, err, v)
	}
}

func TestPeekZeroPadsPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if got := r.Peek(16); got != 0xFF00 {
		t.Fatalf("Peek(16) = %#x, want 0xFF00", got)
	}
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	// 5 real bits remain (all ones), zero-padded to 12.
	if got := r.Peek(12); got != 0b111110000000 {
		t.Fatalf("Peek(12) = %#b", got)
	}
}

func TestSkip(t *testing.T) {
	r := NewReader([]byte{0xAA, 0xBB})
	if err := r.Skip(0); err != nil || r.Pos() != 0 {
		t.Fatalf("Skip(0): %v, pos %d", err, r.Pos())
	}
	if err := r.Skip(9); err != nil || r.Pos() != 9 {
		t.Fatalf("Skip(9): %v, pos %d", err, r.Pos())
	}
	if r.Remaining() != 7 {
		t.Fatalf("Remaining = %d, want 7", r.Remaining())
	}
	if err := r.Skip(8); err != ErrOutOfBits {
		t.Fatalf("Skip past end: %v", err)
	}
	if r.Pos() != 9 {
		t.Fatalf("failed Skip moved pos to %d", r.Pos())
	}
	if err := r.Skip(7); err != nil || r.Remaining() != 0 {
		t.Fatalf("Skip to end: %v, remaining %d", err, r.Remaining())
	}
}

func TestReadBitsStraddlesFinalPartialByte(t *testing.T) {
	// 13 bits: one full byte plus a 5-bit partial byte. Reads that straddle
	// the byte boundary and end inside the padding must behave exactly like
	// the bit-at-a-time reader: padding bits are real zeros, past-the-last-
	// byte is ErrOutOfBits.
	w := NewWriter()
	w.WriteBits(0b1011011100110, 13)
	b := w.Bytes()
	if len(b) != 2 {
		t.Fatalf("len = %d", len(b))
	}
	r := NewReader(b)
	if got, err := r.ReadBits(10); err != nil || got != 0b1011011100 {
		t.Fatalf("ReadBits(10) = %#b, %v", got, err)
	}
	// 6 bits left: 3 data bits + 3 padding zeros.
	if got, err := r.ReadBits(6); err != nil || got != 0b110000 {
		t.Fatalf("ReadBits(6) = %#b, %v", got, err)
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestGrowPreservesContent(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xABCD, 16)
	w.WriteBits(0b101, 3)
	w.Grow(1 << 16)
	w.WriteBits(0b11111, 5)
	r := NewReader(w.Bytes())
	if got, _ := r.ReadBits(24); got != 0xABCD<<8|0b10111111 {
		t.Fatalf("content after Grow = %#x", got)
	}
}

func TestFinishPadsInPlace(t *testing.T) {
	w := NewWriter()
	w.Grow(13)
	w.WriteBits(0b1011011100110, 13)
	b := w.Finish()
	if len(b) != 2 || b[0] != 0b10110111 || b[1] != 0b00110000 {
		t.Fatalf("bytes = %08b", b)
	}
	// Finish must pad inside the capacity Grow reserved — at most the two
	// allocations of NewWriter and Grow, none from Finish itself.
	allocs := testing.AllocsPerRun(100, func() {
		w := NewWriter()
		w.Grow(13)
		w.WriteBits(0b1011011100110, 13)
		w.Finish()
	})
	if allocs > 2 {
		t.Fatalf("allocs = %v, want ≤ 2 (Finish must not copy)", allocs)
	}
}

func TestNewWriterAppend(t *testing.T) {
	head := []byte{0x01, 0x02}
	w := NewWriterAppend(head)
	w.WriteBits(0xFF, 8)
	b := w.Bytes()
	if len(b) != 3 || b[0] != 0x01 || b[1] != 0x02 || b[2] != 0xFF {
		t.Fatalf("bytes = %x", b)
	}
	if w.Len() != 8 {
		t.Fatalf("Len counts only written bits, got %d", w.Len())
	}
}

// TestBatchedMatchesBitAtATime cross-checks the accumulator paths against a
// reference one-bit-at-a-time writer/reader over random mixed-width writes.
func TestBatchedMatchesBitAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		w := NewWriter()
		var ref []uint // every bit, in order
		for i := 0; i < 200; i++ {
			n := uint(rng.Intn(65))
			v := rng.Uint64()
			if n < 64 {
				v &= 1<<n - 1
			}
			w.WriteBits(v, n)
			for j := int(n) - 1; j >= 0; j-- {
				ref = append(ref, uint(v>>uint(j))&1)
			}
		}
		r := NewReader(w.Bytes())
		for i, want := range ref {
			got, err := r.ReadBit()
			if err != nil {
				t.Fatalf("trial %d bit %d: %v", trial, i, err)
			}
			if got != want {
				t.Fatalf("trial %d bit %d = %d, want %d", trial, i, got, want)
			}
		}
		// Re-read the same stream with random batched widths via Peek+Skip.
		r = NewReader(w.Bytes())
		for pos := 0; pos < len(ref); {
			n := 1 + rng.Intn(64)
			if pos+n > len(ref) {
				n = len(ref) - pos
			}
			var want uint64
			for j := 0; j < n; j++ {
				want = want<<1 | uint64(ref[pos+j])
			}
			if got := r.Peek(uint(n)); got != want {
				t.Fatalf("trial %d pos %d Peek(%d) = %#x, want %#x", trial, pos, n, got, want)
			}
			got, err := r.ReadBits(uint(n))
			if err != nil {
				t.Fatalf("trial %d pos %d: %v", trial, pos, err)
			}
			if got != want {
				t.Fatalf("trial %d pos %d ReadBits(%d) = %#x, want %#x", trial, pos, n, got, want)
			}
			pos += n
		}
	}
}
