// Package bitio provides big-endian bit-level writers and readers used by the
// entropy coders (Huffman in the SZ stand-ins, bit-plane truncation in the
// ZFP stand-in).
package bitio

import (
	"errors"
)

// Writer accumulates bits into a byte buffer, most significant bit first.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned in the low `n` bits
	n    uint   // number of pending bits in cur (< 8 after flushing)
	bits int    // total bits written
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends one bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
	}
}

// WriteBits appends the low `n` bits of v, most significant first. n ≤ 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.bits }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The writer remains usable; subsequent writes continue after the padding.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if w.n > 0 {
		out = append(out, byte(w.cur<<(8-w.n)))
	}
	return out
}

// Reader consumes bits from a byte slice, most significant bit first.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ErrOutOfBits is returned when a read goes past the end of the buffer.
var ErrOutOfBits = errors.New("bitio: out of bits")

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	bit := uint(r.buf[byteIdx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

// ReadBits returns the next n bits as the low bits of a uint64.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }
