// Package bitio provides big-endian bit-level writers and readers used by the
// entropy coders (Huffman in the SZ stand-ins, bit-plane truncation in the
// ZFP stand-in).
//
// Both sides batch through a 64-bit accumulator: WriteBits appends up to 64
// bits with a single shift/merge (plus at most one 8-byte store), and
// ReadBits/Peek gather up to 64 bits with a single unaligned 8-byte load on
// the fast path. The bit order (most significant bit first) and the byte
// stream produced are identical to the historical one-bit-at-a-time
// implementation.
package bitio

import (
	"encoding/binary"
	"errors"
)

// Writer accumulates bits into a byte buffer, most significant bit first.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, right-aligned in the low n bits
	n    uint   // number of pending bits in cur (< 8 between calls)
	bits int    // total bits written
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// NewWriterAppend returns a writer that appends to buf, so a header already
// serialized into buf and the bit stream share one allocation. The caller
// must not use buf again until after Bytes().
func NewWriterAppend(buf []byte) *Writer { return &Writer{buf: buf} }

// Grow preallocates capacity for at least `bits` more bits, so subsequent
// writes do not reallocate. Callers that know the stream size (e.g. Huffman,
// which knows Σ freq·len up front) should Grow once before emitting.
func (w *Writer) Grow(bits int) {
	if bits <= 0 {
		return
	}
	need := len(w.buf) + (bits+int(w.n)+7)/8
	if cap(w.buf) < need {
		nb := make([]byte, len(w.buf), need)
		copy(nb, w.buf)
		w.buf = nb
	}
}

// WriteBit appends one bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
	}
}

// WriteBits appends the low `n` bits of v, most significant first. n ≤ 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	w.bits += int(n)
	if w.n+n > 64 {
		// The accumulator can't hold everything: top up to exactly 64
		// pending bits, store them as one big-endian word, and carry the
		// remainder (< 8 bits, since w.n < 8 between calls).
		top := 64 - w.n
		w.cur = w.cur<<top | v>>(n-top)
		var b8 [8]byte
		binary.BigEndian.PutUint64(b8[:], w.cur)
		w.buf = append(w.buf, b8[:]...)
		n -= top
		w.cur, w.n = 0, 0
		v &= 1<<n - 1
	}
	w.cur = w.cur<<n | v
	w.n += n
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.cur>>w.n))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.bits }

// Bytes returns the stream with any partial byte zero-padded. The returned
// slice never aliases writer-owned spare capacity: when padding is needed the
// result is a fresh copy, so later writes cannot clobber it. The writer
// remains usable; subsequent writes continue from the partial bit position
// (not after the padding). Callers that are done writing should prefer
// Finish, which never copies.
//
// aliases: the no-padding fast path returns the writer's live buffer; it
// shares backing storage with the writer, though later appends never mutate
// the returned elements.
func (w *Writer) Bytes() []byte {
	if w.n == 0 {
		return w.buf
	}
	out := make([]byte, len(w.buf)+1)
	copy(out, w.buf)
	out[len(w.buf)] = byte(w.cur << (8 - w.n))
	return out
}

// Finish flushes any partial byte (zero-padded) into the writer's own buffer
// and returns it, consuming the writer: it must not be written to again.
// Unlike Bytes it never copies, so a caller that pre-Grew the writer gets the
// finished stream in place.
//
// aliases: the returned slice is the writer's own buffer; the writer must
// not be reused while the result is live.
func (w *Writer) Finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.n)))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// Reader consumes bits from a byte slice, most significant bit first. It
// maintains a left-aligned 64-bit lookahead register so the fast paths of
// Peek, Skip, ReadBit, and ReadBits are a couple of shifts and inline into
// callers' decode loops; the register refills from the byte slice in bulk.
type Reader struct {
	buf   []byte
	next  int    // index of the next byte to load into cache
	cache uint64 // unconsumed bits, left-aligned (bit 63 is the next bit)
	cnt   uint   // number of valid bits in cache
	nbits int    // len(buf) * 8
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf, nbits: len(buf) * 8} }

// NewReaderBits returns a reader over the first nbits bits of buf, for
// sub-streams whose payload does not fill the final byte (e.g. one lane of an
// interleaved entropy stream, sliced out of a shared buffer by byte range but
// bounded by its exact bit length). Reads past nbits fail with ErrOutOfBits
// exactly as they would at a buffer boundary, so a truncated or over-consumed
// lane is detected at bit granularity rather than rounded up to a byte. A
// nbits outside [0, len(buf)*8] is clamped to the buffer's own size.
func NewReaderBits(buf []byte, nbits int) *Reader {
	if max := len(buf) * 8; nbits < 0 || nbits > max {
		nbits = max
	}
	return &Reader{buf: buf, nbits: nbits}
}

// ErrOutOfBits is returned when a read goes past the end of the buffer.
var ErrOutOfBits = errors.New("bitio: out of bits")

// refill tops the cache up to at least 57 bits (or to the end of the buffer).
func (r *Reader) refill() {
	if r.next+8 <= len(r.buf) {
		// Bulk path: one 8-byte big-endian load, inserting as many whole
		// bytes as fit below the cached bits (the cache's low 64-cnt bits
		// are always zero, so OR-merging is safe).
		k := (64 - r.cnt) >> 3
		v := binary.BigEndian.Uint64(r.buf[r.next:])
		r.cache |= v >> (64 - k*8) << (64 - r.cnt - k*8)
		r.cnt += k * 8
		r.next += int(k)
		return
	}
	for r.cnt <= 56 && r.next < len(r.buf) {
		r.cache |= uint64(r.buf[r.next]) << (56 - r.cnt)
		r.cnt += 8
		r.next++
	}
}

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.cnt == 0 {
		r.refill()
		if r.cnt == 0 {
			return 0, ErrOutOfBits
		}
	}
	b := uint(r.cache >> 63)
	r.cache <<= 1
	r.cnt--
	return b, nil
}

// ReadBits returns the next n bits (n ≤ 64) as the low bits of a uint64. On
// error the position is unchanged (no partial consumption).
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n <= r.cnt {
		v := r.cache >> (64 - n)
		r.cache <<= n // n == 64 shifts to 0, which is exactly right
		r.cnt -= n
		return v, nil
	}
	return r.readBitsSlow(n)
}

func (r *Reader) readBitsSlow(n uint) (uint64, error) {
	if r.Pos()+int(n) > r.nbits {
		return 0, ErrOutOfBits
	}
	v := r.peekSlow(n)
	if err := r.Skip(n); err != nil {
		return 0, err
	}
	return v, nil
}

// Peek returns the next n bits (n ≤ 64) without advancing, zero-padded when
// fewer than n bits remain. Combine with Skip for table-driven decoding.
func (r *Reader) Peek(n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n <= r.cnt {
		return r.cache >> (64 - n)
	}
	return r.peekSlow(n)
}

func (r *Reader) peekSlow(n uint) uint64 {
	r.refill()
	if n <= r.cnt {
		return r.cache >> (64 - n)
	}
	// Fewer than n bits cached: either the buffer is exhausted (the cache's
	// low bits are zero, so the shift below zero-pads), or n > cnt ≥ 57 and
	// up to 7 more bits live in the next byte.
	v := r.cache >> (64 - n)
	if r.next < len(r.buf) {
		rest := n - r.cnt // ≤ 7 when bytes remain, since refill tops to ≥ 57
		v |= uint64(r.buf[r.next]) >> (8 - rest)
	}
	return v
}

// Skip advances the position by n bits, erroring (without moving) if fewer
// than n bits remain.
func (r *Reader) Skip(n uint) error {
	if n <= r.cnt {
		r.cache <<= n
		r.cnt -= n
		return nil
	}
	return r.skipSlow(n)
}

func (r *Reader) skipSlow(n uint) error {
	if r.Pos()+int(n) > r.nbits {
		return ErrOutOfBits
	}
	n -= r.cnt
	r.cache, r.cnt = 0, 0
	r.next += int(n >> 3)
	if rem := n & 7; rem > 0 {
		r.refill() // the bounds check above guarantees ≥ rem bits here
		r.cache <<= rem
		r.cnt -= rem
	}
	return nil
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.next*8 - int(r.cnt) }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbits - r.Pos() }
