// Package sim provides a toy AMR simulation standing in for the paper's
// in-situ applications (Nyx on AMReX, WarpX). It evolves a population of
// gravitating "halos" (Gaussian blobs that drift toward each other and
// condense) over timesteps, producing at each step a two-level AMR hierarchy
// refined by the range criterion — enough to exercise the full in-situ
// output path (collect → merge/pad → compress → write) with realistic
// per-step timings for the Table IV experiments.
package sim

import (
	"math"
	"math/rand"

	"repro/internal/field"
	"repro/internal/grid"
)

// Config parameterizes the simulation.
type Config struct {
	// N is the fine-grid edge (multiple of BlockB).
	N int
	// BlockB is the AMR block size in fine cells (default 16).
	BlockB int
	// FineFrac is the fraction of blocks refined to the fine level
	// (default 0.25, Nyx-T1-like density).
	FineFrac float64
	// Halos is the number of blobs (default 20).
	Halos int
	// Seed makes the run deterministic.
	Seed int64
}

func (c *Config) withDefaults() Config {
	v := *c
	if v.N == 0 {
		v.N = 64
	}
	if v.BlockB == 0 {
		v.BlockB = 16
	}
	if v.FineFrac == 0 {
		v.FineFrac = 0.25
	}
	if v.Halos == 0 {
		v.Halos = 20
	}
	if v.Seed == 0 {
		v.Seed = 1
	}
	return v
}

type halo struct {
	x, y, z    float64 // position in [0,1)³
	vx, vy, vz float64
	mass       float64
	radius     float64
}

// Simulation is an evolving halo population.
type Simulation struct {
	cfg   Config
	halos []halo
	step  int
}

// New creates a simulation.
func New(cfg Config) *Simulation {
	cfg = (&cfg).withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Simulation{cfg: cfg}
	for i := 0; i < cfg.Halos; i++ {
		s.halos = append(s.halos, halo{
			x: rng.Float64(), y: rng.Float64(), z: rng.Float64(),
			vx: 0.02 * rng.NormFloat64(), vy: 0.02 * rng.NormFloat64(), vz: 0.02 * rng.NormFloat64(),
			mass:   math.Exp(1.5 + rng.Float64()*2),
			radius: 0.02 + 0.03*rng.Float64(),
		})
	}
	return s
}

// Step advances the simulation by dt: halos attract each other (softened
// pairwise gravity), drift, wrap periodically, and slowly condense.
func (s *Simulation) Step(dt float64) {
	n := len(s.halos)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	const g = 0.002
	const soft = 0.01
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := wrapDelta(s.halos[j].x - s.halos[i].x)
			dy := wrapDelta(s.halos[j].y - s.halos[i].y)
			dz := wrapDelta(s.halos[j].z - s.halos[i].z)
			d2 := dx*dx + dy*dy + dz*dz + soft*soft
			inv := 1 / (d2 * math.Sqrt(d2))
			fi := g * s.halos[j].mass * inv
			fj := g * s.halos[i].mass * inv
			ax[i] += fi * dx
			ay[i] += fi * dy
			az[i] += fi * dz
			ax[j] -= fj * dx
			ay[j] -= fj * dy
			az[j] -= fj * dz
		}
	}
	for i := range s.halos {
		h := &s.halos[i]
		h.vx += ax[i] * dt
		h.vy += ay[i] * dt
		h.vz += az[i] * dt
		h.x = wrap01(h.x + h.vx*dt)
		h.y = wrap01(h.y + h.vy*dt)
		h.z = wrap01(h.z + h.vz*dt)
		// Condensation: halos sharpen slowly over time.
		h.radius = math.Max(0.012, h.radius*(1-0.01*dt))
	}
	s.step++
}

// StepIndex returns the number of steps taken.
func (s *Simulation) StepIndex() int { return s.step }

// Density rasterizes the current halo population onto the fine grid as a
// positive density field (background + Gaussian blobs, periodic).
func (s *Simulation) Density() *field.Field {
	n := s.cfg.N
	f := field.New(n, n, n)
	f.Fill(1)
	for _, h := range s.halos {
		// Rasterize only a local neighborhood of each halo for speed.
		r := h.radius * 4
		lox, hix := int((h.x-r)*float64(n)), int((h.x+r)*float64(n))+1
		loy, hiy := int((h.y-r)*float64(n)), int((h.y+r)*float64(n))+1
		loz, hiz := int((h.z-r)*float64(n)), int((h.z+r)*float64(n))+1
		for z := loz; z <= hiz; z++ {
			pz := (float64(z) + 0.5) / float64(n)
			dz := wrapDelta(pz - h.z)
			for y := loy; y <= hiy; y++ {
				py := (float64(y) + 0.5) / float64(n)
				dy := wrapDelta(py - h.y)
				for x := lox; x <= hix; x++ {
					px := (float64(x) + 0.5) / float64(n)
					dx := wrapDelta(px - h.x)
					d2 := dx*dx + dy*dy + dz*dz
					v := h.mass * math.Exp(-d2/(2*h.radius*h.radius))
					i := f.Index(mod(x, n), mod(y, n), mod(z, n))
					f.Data[i] += v
				}
			}
		}
	}
	return f
}

// Snapshot produces the current state as a two-level AMR hierarchy refined
// by the range criterion (the fraction cfg.FineFrac of highest-range blocks
// at the fine level), scaled to Nyx-like absolute values.
func (s *Simulation) Snapshot() (*grid.Hierarchy, error) {
	f := s.Density()
	f.Apply(func(v float64) float64 { return v * 1e8 })
	return grid.BuildAMR(f, s.cfg.BlockB, []float64{s.cfg.FineFrac, 1 - s.cfg.FineFrac})
}

func wrap01(v float64) float64 {
	v -= math.Floor(v)
	return v
}

// wrapDelta maps a periodic difference into [-0.5, 0.5).
func wrapDelta(d float64) float64 {
	d -= math.Round(d)
	return d
}

func mod(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}
