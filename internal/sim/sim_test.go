package sim

import (
	"math"
	"testing"
)

func TestDeterministicRuns(t *testing.T) {
	a := New(Config{N: 32, Seed: 5})
	b := New(Config{N: 32, Seed: 5})
	for i := 0; i < 3; i++ {
		a.Step(0.5)
		b.Step(0.5)
	}
	if !a.Density().Equal(b.Density()) {
		t.Fatal("simulation not deterministic")
	}
}

func TestDensityPositiveAndPeaked(t *testing.T) {
	s := New(Config{N: 32, Seed: 2})
	f := s.Density()
	min, max := f.Range()
	if min < 1 {
		t.Fatalf("density background below 1: %g", min)
	}
	if max < 5 {
		t.Fatalf("no halo peaks: max %g", max)
	}
}

func TestStepEvolvesField(t *testing.T) {
	s := New(Config{N: 32, Seed: 3})
	before := s.Density()
	for i := 0; i < 5; i++ {
		s.Step(1)
	}
	after := s.Density()
	if before.Equal(after) {
		t.Fatal("field did not evolve")
	}
	if s.StepIndex() != 5 {
		t.Fatalf("step index %d", s.StepIndex())
	}
}

func TestHalosStayInDomain(t *testing.T) {
	s := New(Config{N: 16, Seed: 4, Halos: 10})
	for i := 0; i < 50; i++ {
		s.Step(1)
	}
	for i, h := range s.halos {
		if h.x < 0 || h.x >= 1 || h.y < 0 || h.y >= 1 || h.z < 0 || h.z >= 1 {
			t.Fatalf("halo %d escaped: (%g,%g,%g)", i, h.x, h.y, h.z)
		}
		if math.IsNaN(h.vx + h.vy + h.vz) {
			t.Fatalf("halo %d velocity NaN", i)
		}
	}
}

func TestSnapshotHierarchy(t *testing.T) {
	s := New(Config{N: 64, Seed: 6, FineFrac: 0.25})
	h, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 2 {
		t.Fatalf("levels %d", len(h.Levels))
	}
	if d := h.Density(0); math.Abs(d-0.25) > 0.05 {
		t.Fatalf("fine density %g, want ~0.25", d)
	}
}

func TestWrapDelta(t *testing.T) {
	if d := wrapDelta(0.9); math.Abs(d-(-0.1)) > 1e-12 {
		t.Fatalf("wrapDelta(0.9) = %g, want -0.1", d)
	}
	if d := wrapDelta(-0.9); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("wrapDelta(-0.9) = %g, want 0.1", d)
	}
	if wrapDelta(0.2) != 0.2 {
		t.Fatal("small delta changed")
	}
}

func TestDefaults(t *testing.T) {
	c := (&Config{}).withDefaults()
	if c.N != 64 || c.BlockB != 16 || c.FineFrac != 0.25 || c.Halos != 20 || c.Seed != 1 {
		t.Fatalf("defaults %+v", c)
	}
}
