// Package benchfmt emits machine-readable benchmark results, so performance
// work on the hot paths leaves a committed, diffable trajectory instead of
// numbers buried in PR descriptions. BENCH_entropy.json at the repo root is
// the first consumer (see README "Performance"); `mrbench -json FILE`
// produces fresh reports in the same schema.
package benchfmt

import (
	"encoding/json"
	"io"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	// Name identifies the operation, e.g. "huffman_decode".
	Name string `json:"name"`
	// Iters is how many timed iterations the measurement averaged over.
	Iters int `json:"iters"`
	// NsPerOp is the mean wall-clock time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Bytes is the payload size processed per operation (0 if not set).
	Bytes int64 `json:"bytes,omitempty"`
	// MBPerS is Bytes/NsPerOp scaled to MB/s (0 if Bytes is unset).
	MBPerS float64 `json:"mb_per_s,omitempty"`
}

// Report is one benchmark run: a labeled set of results plus the
// configuration that produced them.
type Report struct {
	// Variant labels the code state measured, e.g. "pre-entropy-overhaul".
	Variant string `json:"variant,omitempty"`
	// Config records workload parameters (size, seed, ...).
	Config  map[string]any `json:"config,omitempty"`
	Results []Result       `json:"results"`
}

// Trajectory is the schema of committed BENCH_*.json files: the same
// workload measured across code states, oldest first.
type Trajectory struct {
	Workload string   `json:"workload"`
	Runs     []Report `json:"runs"`
}

// Add appends a measurement to the report. bytes may be 0 for operations
// without a natural payload size.
func (r *Report) Add(name string, iters int, elapsed time.Duration, bytes int64) {
	res := Result{
		Name:    name,
		Iters:   iters,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
		Bytes:   bytes,
	}
	if bytes > 0 && res.NsPerOp > 0 {
		res.MBPerS = float64(bytes) / res.NsPerOp * 1e3 // B/ns → MB/s
	}
	r.Results = append(r.Results, res)
}

// Write serializes the report as indented JSON.
func Write(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Measure times fn (after one untimed warm-up call) over iters iterations
// and records the result.
func (r *Report) Measure(name string, iters int, bytes int64, fn func()) {
	fn()
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	r.Add(name, iters, time.Since(start), bytes)
}
