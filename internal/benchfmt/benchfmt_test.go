package benchfmt

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestAddComputesThroughput(t *testing.T) {
	var r Report
	r.Add("op", 10, 10*time.Millisecond, 2_000_000)
	res := r.Results[0]
	if res.NsPerOp != 1e6 {
		t.Fatalf("ns/op = %v", res.NsPerOp)
	}
	// 2 MB per op at 1 ms per op → 2000 MB/s.
	if res.MBPerS < 1999 || res.MBPerS > 2001 {
		t.Fatalf("MB/s = %v", res.MBPerS)
	}
}

func TestAddWithoutBytes(t *testing.T) {
	var r Report
	r.Add("op", 1, time.Millisecond, 0)
	if r.Results[0].MBPerS != 0 {
		t.Fatalf("MB/s should be 0 without bytes")
	}
}

func TestMeasureRunsWarmupPlusIters(t *testing.T) {
	var r Report
	calls := 0
	r.Measure("op", 3, 0, func() { calls++ })
	if calls != 4 { // 1 warm-up + 3 timed
		t.Fatalf("calls = %d, want 4", calls)
	}
	if r.Results[0].Iters != 3 {
		t.Fatalf("iters = %d", r.Results[0].Iters)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	traj := Trajectory{
		Workload: "w",
		Runs: []Report{{
			Variant: "v1",
			Config:  map[string]any{"size": 128},
			Results: []Result{{Name: "op", Iters: 2, NsPerOp: 5, Bytes: 10, MBPerS: 2000}},
		}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, traj); err != nil {
		t.Fatal(err)
	}
	var back Trajectory
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload != "w" || len(back.Runs) != 1 || back.Runs[0].Results[0].Name != "op" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
