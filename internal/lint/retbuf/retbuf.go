// Package retbuf flags exported methods on hot-path types that return a
// slice aliasing an internal reusable buffer without saying so.
//
// This is the PR 2 regression class: bitio.Writer.Bytes() returns the
// writer's live buffer to avoid a copy, and a caller that held the slice
// across the next Write saw it mutate underfoot. Zero-copy returns are
// deliberate on the hot path, so the fix is not to forbid them but to make
// the contract explicit: any exported method that returns memory the
// receiver may reuse must carry a doc comment containing "aliases:"
// describing the lifetime (e.g. "// aliases: valid until the next Write").
//
// The analyzer runs on the packages whose types sit on the decode/serve hot
// path — internal/bitio, internal/huffman, internal/cache — and reports
// exported methods whose return value is rooted in the receiver: a receiver
// field (w.buf), a slice of one (w.buf[:n]), an append whose destination is
// one, or a local alias of one, unless the method's doc comment contains
// "aliases:". Returning a fresh allocation (make + copy, or append to a
// caller-provided destination) is always fine.
package retbuf

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "retbuf",
	Doc: "exported methods on hot-path types must not return slices aliasing " +
		"internal buffers unless the doc comment documents it with \"aliases:\"",
	Run: run,
}

// hotPkgs are the packages whose exported API the rule applies to; their
// buffers are reused across calls on the serve path.
var hotPkgs = map[string]bool{
	"repro/internal/bitio":   true,
	"repro/internal/huffman": true,
	"repro/internal/cache":   true,
}

func run(pass *analysis.Pass) error {
	if !hotPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			if !returnsSlice(pass, fd) {
				continue
			}
			if docAliases(fd.Doc) {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

// returnsSlice reports whether any result of fd is a slice type.
func returnsSlice(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				return true
			}
		}
	}
	return false
}

// docAliases reports whether the doc comment documents the aliasing.
func docAliases(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(doc.Text(), "aliases:")
}

// checkMethod walks fd's body in source order, tracking which locals alias
// receiver-rooted memory, and reports returns of receiver-rooted slices.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverObj(pass, fd)
	if recv == nil {
		return
	}
	aliased := map[types.Object]bool{}
	rooted := func(e ast.Expr) bool {
		return receiverRooted(pass, e, recv, aliased)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures escape this simple model
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if rooted(n.Rhs[i]) {
					aliased[obj] = true
				} else {
					delete(aliased, obj)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tv, ok := pass.TypesInfo.Types[res]; ok {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
						continue
					}
				}
				if rooted(res) {
					pass.Reportf(res.Pos(), "%s returns a slice aliasing an internal buffer; "+
						"document the lifetime with an \"aliases:\" doc comment or return a copy",
						fd.Name.Name)
				}
			}
		}
		return true
	})
}

// receiverObj returns the receiver variable's object, or nil for anonymous
// receivers (which cannot leak fields by name).
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// receiverRooted reports whether e evaluates to memory reachable from the
// receiver: a field selector chain rooted at the receiver, a slice or index
// of one, an append whose destination is one, or a tracked local alias.
func receiverRooted(pass *analysis.Pass, e ast.Expr, recv types.Object, aliased map[types.Object]bool) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		return obj == recv || aliased[obj]
	case *ast.SelectorExpr:
		return receiverRooted(pass, e.X, recv, aliased)
	case *ast.SliceExpr:
		return receiverRooted(pass, e.X, recv, aliased)
	case *ast.IndexExpr:
		return receiverRooted(pass, e.X, recv, aliased)
	case *ast.StarExpr:
		return receiverRooted(pass, e.X, recv, aliased)
	case *ast.CallExpr:
		// append(dst, ...) may return dst's backing array when capacity
		// suffices, so an append rooted in the receiver stays rooted.
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				return receiverRooted(pass, e.Args[0], recv, aliased)
			}
		}
		// Conversions keep the backing array for slice-to-slice; treat a
		// conversion of a rooted value as rooted.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return receiverRooted(pass, e.Args[0], recv, aliased)
		}
		return false
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
