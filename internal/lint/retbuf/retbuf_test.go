package retbuf_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/retbuf"
)

func TestRetbuf(t *testing.T) {
	linttest.Run(t, linttest.Testdata(t), retbuf.Analyzer, "repro/internal/bitio", "coldpkg")
}
