// Package coldpkg is not on the hot-path list: the same aliasing shapes
// that are flagged in repro/internal/bitio must produce zero findings here.
package coldpkg

type Buffer struct {
	data []byte
}

// Raw aliases the internal buffer, but coldpkg is not subject to the rule.
func (b *Buffer) Raw() []byte {
	return b.data
}

// RawTail likewise.
func (b *Buffer) RawTail(n int) []byte {
	return b.data[n:]
}
