// Negative cases: documented aliasing, fresh allocations, caller-owned
// destinations, and unexported methods all pass.
package bitio

// Finish returns the encoded stream.
//
// aliases: the returned slice is the writer's own buffer; the writer must
// not be reused while the result is live.
func (w *Writer) Finish() []byte {
	return w.buf
}

// Copy returns a fresh allocation.
func (w *Writer) Copy() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// AppendTo appends into a caller-provided destination; the result is rooted
// in dst, not the receiver.
func (w *Writer) AppendTo(dst []byte) []byte {
	return append(dst, w.buf...)
}

// peek is unexported; the rule covers only the exported API surface.
func (w *Writer) peek() []byte {
	return w.buf
}

// Fresh reassigns the local away from the buffer before returning it.
func (w *Writer) Fresh() []byte {
	b := w.buf
	b = make([]byte, w.n)
	return b
}

// Count returns no slice at all.
func (w *Writer) Count() int {
	return w.n
}
