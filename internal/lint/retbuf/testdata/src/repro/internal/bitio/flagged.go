// Package bitio is a fixture stub living at the hot-path import path
// repro/internal/bitio; this file holds the positive cases.
package bitio

type Writer struct {
	buf []byte
	n   int
}

// Bytes returns the live buffer with no aliasing contract.
func (w *Writer) Bytes() []byte {
	return w.buf // want `Bytes returns a slice aliasing an internal buffer; document the lifetime with an "aliases:" doc comment or return a copy`
}

// Tail returns a reslice of the internal buffer.
func (w *Writer) Tail() []byte {
	return w.buf[w.n:] // want `Tail returns a slice aliasing an internal buffer`
}

// Local launders the buffer through a local alias.
func (w *Writer) Local() []byte {
	b := w.buf
	return b // want `Local returns a slice aliasing an internal buffer`
}

// Grown returns an append rooted in the internal buffer, which reuses the
// backing array whenever capacity suffices.
func (w *Writer) Grown(pad []byte) []byte {
	return append(w.buf, pad...) // want `Grown returns a slice aliasing an internal buffer`
}
