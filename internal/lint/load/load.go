// Package load type-checks Go packages for mrlint using only the standard
// library. The usual loader for go/analysis drivers is
// golang.org/x/tools/go/packages; this environment pins dependencies to the
// stdlib, so load reimplements the needed subset: it resolves packages
// either through `go list -deps -json` (the mrlint driver) or through an
// on-disk source tree rooted at a testdata directory (the linttest
// harness), parses their files, and type-checks them in dependency order
// with go/types. Dependency packages are checked with IgnoreFuncBodies —
// only their exported API matters — so a full run over the module plus its
// stdlib closure stays fast.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Fset       *token.FileSet
	Types      *types.Package
	Info       *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies pulled in for type information only).
	Target bool
}

// rawPackage is a resolved-but-unparsed package.
type rawPackage struct {
	importPath string
	dir        string
	files      []string          // absolute paths
	importMap  map[string]string // source import path -> resolved import path
	target     bool
}

// resolver maps an import path to its source files.
type resolver func(importPath string) (*rawPackage, error)

// loader caches type-checked packages across the recursive import walk.
type loader struct {
	fset    *token.FileSet
	resolve resolver
	cache   map[string]*Package
	pending map[string]bool
	sizes   types.Sizes
}

func newLoader(resolve resolver) *loader {
	return &loader{
		fset:    token.NewFileSet(),
		resolve: resolve,
		cache:   map[string]*Package{},
		pending: map[string]bool{},
		sizes:   types.SizesFor("gc", runtime.GOARCH),
	}
}

// load type-checks importPath (and, recursively, its imports).
func (l *loader) load(importPath string) (*Package, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	if l.pending[importPath] {
		return nil, fmt.Errorf("load: import cycle through %s", importPath)
	}
	l.pending[importPath] = true
	defer delete(l.pending, importPath)

	raw, err := l.resolve(importPath)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(raw.files))
	for _, path := range raw.files {
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", importPath, err)
		}
		files = append(files, f)
	}

	// Type-check with imports resolved through this loader. Dependency
	// packages tolerate errors (assembly-backed stdlib internals and
	// build-tag corners need not check perfectly to expose their API);
	// target packages must check cleanly.
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	cfg := types.Config{
		Importer:         &mapImporter{l: l, importMap: raw.importMap},
		FakeImportC:      true,
		IgnoreFuncBodies: !raw.target,
		Sizes:            l.sizes,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := cfg.Check(importPath, l.fset, files, info)
	if raw.target && firstErr != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, firstErr)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        raw.dir,
		Files:      files,
		Fset:       l.fset,
		Types:      tpkg,
		Info:       info,
		Target:     raw.target,
	}
	l.cache[importPath] = p
	return p, nil
}

// mapImporter resolves import statements against the loader cache,
// translating through the importing package's ImportMap (vendored stdlib
// dependencies are listed under their vendor path).
type mapImporter struct {
	l         *loader
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mapImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	p, err := m.l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// goListPackage is the subset of `go list -json` output the loader needs.
type goListPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
}

// FromGoList loads the packages matched by the go-list patterns plus their
// full dependency closure, and returns only the matched (target) packages,
// fully type-checked, in import-path order.
func FromGoList(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}

	listed := map[string]*goListPackage{}
	var order []string
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p goListPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		listed[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}

	l := newLoader(func(importPath string) (*rawPackage, error) {
		p, ok := listed[importPath]
		if !ok {
			return nil, fmt.Errorf("load: package %s not in go list output", importPath)
		}
		raw := &rawPackage{
			importPath: p.ImportPath,
			dir:        p.Dir,
			importMap:  p.ImportMap,
			target:     !p.DepOnly && !p.Standard,
		}
		for _, f := range p.GoFiles {
			raw.files = append(raw.files, filepath.Join(p.Dir, f))
		}
		return raw, nil
	})

	var targets []*Package
	for _, path := range order {
		p := listed[path]
		if p.DepOnly || p.Standard || p.Name == "main" && p.ImportPath == "command-line-arguments" {
			continue
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		targets = append(targets, pkg)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, nil
}

// FromDir loads one package rooted at dir/src/<importPath> (the
// analysistest-style fixture layout). Imports resolve first against
// dir/src, then against the standard library in GOROOT.
func FromDir(dir string, importPath string) (*Package, error) {
	ctx := build.Default
	ctx.CgoEnabled = false
	l := newLoader(func(path string) (*rawPackage, error) {
		if fixture := filepath.Join(dir, "src", filepath.FromSlash(path)); isDir(fixture) {
			files, err := dirGoFiles(&ctx, fixture)
			if err != nil {
				return nil, err
			}
			return &rawPackage{importPath: path, dir: fixture, files: files, target: path == importPath}, nil
		}
		for _, root := range []string{
			filepath.Join(ctx.GOROOT, "src", filepath.FromSlash(path)),
			filepath.Join(ctx.GOROOT, "src", "vendor", filepath.FromSlash(path)),
		} {
			if isDir(root) {
				files, err := dirGoFiles(&ctx, root)
				if err != nil {
					return nil, err
				}
				return &rawPackage{importPath: path, dir: root, files: files}, nil
			}
		}
		return nil, fmt.Errorf("load: cannot resolve import %q under %s or GOROOT", path, dir)
	})
	return l.load(importPath)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// dirGoFiles lists the buildable non-test Go files of dir, applying the
// usual build constraints.
func dirGoFiles(ctx *build.Context, dir string) ([]string, error) {
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	files := make([]string, 0, len(bp.GoFiles))
	for _, f := range bp.GoFiles {
		files = append(files, filepath.Join(dir, f))
	}
	return files, nil
}
