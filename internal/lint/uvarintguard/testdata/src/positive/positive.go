// Positive fixtures: every pattern here reproduces a shipped bug class and
// must be flagged.
package positive

import "encoding/binary"

// direct is the PR 5 shape: convert first, validate (or not) later.
func direct(buf []byte) []byte {
	v, _ := binary.Uvarint(buf)
	n := int(v) // want `converted to int without a preceding bound check`
	_ = n
	m := make([]byte, v) // want `used as a make\(\) size`
	_ = m
	return buf[:v] // want `used as a slice bound`
}

// inline converts a fresh wire read with no variable in between.
func inline(hdr []byte) int {
	return int(binary.LittleEndian.Uint64(hdr)) // want `converted to int`
}

// lowerBoundOnly shows that v < min does not count: it misses exactly the
// huge values that overflow downstream products.
func lowerBoundOnly(buf []byte) int {
	v, _ := binary.Uvarint(buf)
	if v < 1 {
		return 0
	}
	return int(v) // want `converted to int`
}

// arithmeticNoGuard is the sz3 outlier-count bug: n*8 wraps uint64, so the
// comparison does not bound n itself.
func arithmeticNoGuard(buf []byte) []float64 {
	n, _ := binary.Uvarint(buf)
	if uint64(len(buf)) < n*8 {
		return nil
	}
	return make([]float64, n) // want `used as a make\(\) size`
}

// convertThenCheck validates too late: the int conversion already happened.
func convertThenCheck(buf []byte) int {
	v, _ := binary.Uvarint(buf)
	n := int(v) // want `converted to int`
	if n > 100 {
		return 0
	}
	return n
}

// readU returns the decoded value unchecked, so calls to it are sources.
func readU(buf []byte) (uint64, []byte) {
	v, n := binary.Uvarint(buf)
	return v, buf[n:]
}

// viaWrapper taints through the unchecked local wrapper.
func viaWrapper(buf []byte) int {
	v, _ := readU(buf)
	return int(v) // want `converted to int`
}

// viaClosure taints through an unchecked named closure.
func viaClosure(buf []byte) uint32 {
	read := func() uint64 {
		v, n := binary.Uvarint(buf)
		buf = buf[n:]
		return v
	}
	v := read()
	return uint32(v) // want `converted to uint32`
}
