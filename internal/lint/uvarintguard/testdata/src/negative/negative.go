// Negative fixtures: the guarded patterns the real code uses (modeled on
// internal/index) must produce zero findings.
package negative

import "encoding/binary"

const maxN = 1 << 20

// guarded is the canonical reject-form upper bound before conversion.
func guarded(buf []byte) []byte {
	v, _ := binary.Uvarint(buf)
	if v > maxN {
		return nil
	}
	return make([]byte, v)
}

// guardedFlip bounds the value with the operands swapped, the
// `uint64(len(buf)) < need` truncation-check idiom.
func guardedFlip(buf []byte) []byte {
	v, _ := binary.Uvarint(buf)
	if uint64(len(buf)) < v {
		return nil
	}
	return buf[:v]
}

// guardedDivision is the wrap-free form of a scaled length check: dividing
// the limit cannot overflow, so it genuinely bounds v.
func guardedDivision(buf []byte) []float64 {
	v, _ := binary.Uvarint(buf)
	if v > uint64(len(buf))/8 {
		return nil
	}
	return make([]float64, v)
}

// pinned shows equality pinning the value.
func pinned(buf []byte) []byte {
	v, _ := binary.Uvarint(buf)
	if v != 4 {
		return nil
	}
	return make([]byte, v)
}

// checkedWrapper validates internally (the internal/index readU pattern),
// so neither its body nor its callers are flagged.
func checkedWrapper(buf []byte) (int, bool) {
	v, n := binary.Uvarint(buf)
	if n <= 0 || v > maxN {
		return 0, false
	}
	return int(v), true
}

// useChecked consumes the already-validated int.
func useChecked(buf []byte) []byte {
	n, ok := checkedWrapper(buf)
	if !ok {
		return nil
	}
	return make([]byte, n)
}

// widening is allowed: every uint32 fits an int64/uint64.
func widening(b []byte) int64 {
	return int64(binary.LittleEndian.Uint32(b))
}
