package uvarintguard_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/uvarintguard"
)

func TestUvarintguard(t *testing.T) {
	linttest.Run(t, linttest.Testdata(t), uvarintguard.Analyzer, "positive", "negative")
}
