// Package uvarintguard flags length and count fields decoded from the wire
// that reach a dangerous sink without passing an explicit upper-bound check
// first.
//
// This is the bug class behind two shipped fixes: the PR 1 container header
// scan trusted a uvarint block count and over-allocated, and the PR 5
// field.ReadFromLimit converted uint64 dimensions to int before validating
// them, so a crafted header overflowed the nx*ny*nz product and panicked a
// server goroutine. Untrusted integers must be range-checked while still in
// their decoded (wide, unsigned) type.
//
// Sources — values treated as attacker-controlled:
//
//   - binary.Uvarint / binary.Varint / binary.ReadUvarint / binary.ReadVarint
//   - binary.LittleEndian.Uint16/32/64 and binary.BigEndian.Uint16/32/64
//   - calls to same-package functions (or local closures) that return such a
//     value unchecked
//
// Sinks — uses that must be preceded by a bound check on the same variable:
//
//   - conversions that narrow or change sign (uint64 → int, int64, uint32, …)
//   - make() lengths and capacities
//   - index and slice expressions
//
// Guards — what counts as a bound check. The tainted variable must appear as
// a direct operand of a comparison in its decoded type, in one of the forms
//
//	v == k, v != k        (equality pins the value)
//	v > max, v >= max     (reject-form upper bound: `if v > max { return err }`)
//	min < v, min <= v     (same bound with the operands swapped)
//
// Lower-bound-only checks (`v <= 0`) do not count: they miss exactly the
// huge positive values that overflow downstream products. Comparing after
// converting (`if int(v) > max`) does not count either — the conversion has
// already destroyed the value. Arithmetic on the tainted value
// (`v*8 < limit`) does not guard it, because the multiplication itself can
// wrap.
//
// The analysis is intra-procedural and source-position ordered; taint does
// not propagate through arithmetic, slices, or non-local calls.
package uvarintguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "uvarintguard",
	Doc: "wire-decoded integers (binary.Uvarint and friends) must pass an " +
		"explicit upper-bound check before narrowing conversions, make sizes, " +
		"or index expressions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Phase 1: find same-package wrappers that return a wire-decoded value
	// unchecked, so calls to them count as sources too.
	wrappers := findWrappers(pass)
	// Phase 2: analyze every function body with the extended source set.
	forEachFunc(pass, func(body *ast.BlockStmt) {
		newChecker(pass, wrappers, true).walk(body)
	})
	return nil
}

// forEachFunc invokes fn once per function body in the package: every
// FuncDecl body and every FuncLit body (closures get fresh state — taint
// does not cross the closure boundary).
func forEachFunc(pass *analysis.Pass, fn func(*ast.BlockStmt)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// source describes one tainted value: how many value bits it carries and
// whether its decoded type is signed.
type source struct {
	bits   int
	signed bool
}

// checker walks one function body in source order, tracking which variables
// hold unchecked wire-decoded values.
type checker struct {
	pass     *analysis.Pass
	wrappers map[types.Object][]source // func/closure object -> per-result taint (nil entry = clean)
	report   bool
	tainted  map[types.Object]source
	// returnsTainted records, per result index, whether any return statement
	// returned a still-tainted value (used by wrapper detection).
	returnsTainted map[int]source
}

func newChecker(pass *analysis.Pass, wrappers map[types.Object][]source, report bool) *checker {
	return &checker{
		pass:           pass,
		wrappers:       wrappers,
		report:         report,
		tainted:        map[types.Object]source{},
		returnsTainted: map[int]source{},
	}
}

func (c *checker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Fresh state; analyzed by forEachFunc.
			return false
		case *ast.AssignStmt:
			c.assign(n)
			return true
		case *ast.BinaryExpr:
			c.compare(n)
			return true
		case *ast.CallExpr:
			c.call(n)
			return true
		case *ast.IndexExpr:
			if src, ok := c.taintedExpr(n.Index); ok {
				c.reportf(n.Index.Pos(), src, "used as an index")
			}
			return true
		case *ast.SliceExpr:
			for _, idx := range []ast.Expr{n.Low, n.High, n.Max} {
				if idx == nil {
					continue
				}
				if src, ok := c.taintedExpr(idx); ok {
					c.reportf(idx.Pos(), src, "used as a slice bound")
				}
			}
			return true
		case *ast.ReturnStmt:
			c.ret(n)
			return true
		}
		return true
	})
}

// assign handles taint introduction (v, n := binary.Uvarint(buf)), alias
// propagation (x := v), and kill-on-reassign.
func (c *checker) assign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 {
		if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			if srcs := c.sourceCall(call); srcs != nil {
				for i, lhs := range n.Lhs {
					obj := c.lhsObject(lhs)
					if obj == nil {
						continue
					}
					if i < len(srcs) && srcs[i].bits != 0 {
						c.tainted[obj] = srcs[i]
					} else {
						delete(c.tainted, obj)
					}
				}
				return
			}
		}
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			obj := c.lhsObject(lhs)
			if obj == nil {
				continue
			}
			if src, from := c.taintedOperand(n.Rhs[i]); from != nil {
				c.tainted[obj] = src // direct copy keeps the taint
			} else {
				delete(c.tainted, obj)
			}
		}
	}
}

// compare clears taint when the comparison is a genuine upper-bound (or
// equality) check with the tainted variable as a direct operand.
func (c *checker) compare(n *ast.BinaryExpr) {
	_, lobj := c.taintedOperand(n.X)
	_, robj := c.taintedOperand(n.Y)
	switch n.Op {
	case token.EQL, token.NEQ:
		// Equality pins the value on the path that matters.
		if lobj != nil {
			delete(c.tainted, lobj)
		}
		if robj != nil {
			delete(c.tainted, robj)
		}
	case token.GTR, token.GEQ:
		// v > max / v >= max: reject-form upper bound.
		if lobj != nil {
			delete(c.tainted, lobj)
		}
	case token.LSS, token.LEQ:
		// min < v / limit <= v: the same upper bound, operands swapped
		// (also covers `uint64(len(buf)) < need`). A tainted LEFT operand
		// here is a lower-bound-only check (v <= 0) and does NOT clear.
		if robj != nil {
			delete(c.tainted, robj)
		}
	}
}

// call handles make() sinks, conversion sinks, and taint introduced by bare
// source calls used as statements (their results are unnamed, so nothing to
// do beyond classification).
func (c *checker) call(n *ast.CallExpr) {
	// make([]T, v) / make([]T, 0, v)
	if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
		if obj, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && obj.Name() == "make" {
			for _, arg := range n.Args[1:] {
				if src, ok := c.taintedExpr(arg); ok {
					c.reportf(arg.Pos(), src, "used as a make() size")
				}
			}
			return
		}
	}
	// Conversion sink: T(v) where T cannot hold every value of v's type.
	if len(n.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
			if src, ok := c.taintedExpr(n.Args[0]); ok {
				if narrows(src, tv.Type) {
					c.reportf(n.Args[0].Pos(), src, "converted to "+tv.Type.String())
				}
			}
		}
	}
}

func (c *checker) ret(n *ast.ReturnStmt) {
	// return binary.Uvarint(buf) — tuple return of a source call.
	if len(n.Results) == 1 {
		if call, ok := unparen(n.Results[0]).(*ast.CallExpr); ok {
			if srcs := c.sourceCall(call); srcs != nil {
				for j, s := range srcs {
					if s.bits != 0 {
						if _, seen := c.returnsTainted[j]; !seen {
							c.returnsTainted[j] = s
						}
					}
				}
				return
			}
		}
	}
	for i, res := range n.Results {
		if src, obj := c.taintedOperand(res); obj != nil {
			if _, seen := c.returnsTainted[i]; !seen {
				c.returnsTainted[i] = src
			}
		}
	}
}

func (c *checker) reportf(pos token.Pos, _ source, what string) {
	if !c.report {
		return
	}
	c.pass.Reportf(pos, "wire-decoded integer %s without a preceding bound check; "+
		"validate it in its decoded type first (see internal/index for the pattern)", what)
}

// taintedExpr reports whether expr is an unchecked wire-decoded value at a
// sink: either a tainted variable, or a direct source call — converting a
// fresh binary.Uvarint result inline (int(binary.Uvarint(...)) or through
// an unchecked wrapper) can never have been bound-checked.
func (c *checker) taintedExpr(expr ast.Expr) (source, bool) {
	if src, obj := c.taintedOperand(expr); obj != nil {
		return src, true
	}
	if call, ok := unparen(expr).(*ast.CallExpr); ok {
		if srcs := c.sourceCall(call); len(srcs) > 0 && srcs[0].bits != 0 {
			return srcs[0], true
		}
	}
	return source{}, false
}

// taintedOperand unwraps parentheses and reports whether expr is (exactly) a
// tainted variable. Conversions and arithmetic deliberately do NOT unwrap:
// int(v) has already narrowed, and v*8 can wrap.
func (c *checker) taintedOperand(expr ast.Expr) (source, types.Object) {
	id, ok := unparen(expr).(*ast.Ident)
	if !ok {
		return source{}, nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return source{}, nil
	}
	if src, ok := c.tainted[obj]; ok {
		return src, obj
	}
	return source{}, nil
}

func (c *checker) lhsObject(lhs ast.Expr) types.Object {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// sourceCall classifies call: if it produces wire-decoded value(s), the
// returned slice has one entry per result (zero-valued entries are clean).
// A nil return means the call is not a source.
func (c *checker) sourceCall(call *ast.CallExpr) []source {
	callee := c.callee(call)
	if callee == nil {
		return nil
	}
	if fn, ok := callee.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
		switch fn.Name() {
		case "Uvarint", "ReadUvarint":
			return []source{{bits: 64, signed: false}}
		case "Varint", "ReadVarint":
			return []source{{bits: 64, signed: true}}
		case "Uint64":
			return []source{{bits: 64, signed: false}}
		case "Uint32":
			return []source{{bits: 32, signed: false}}
		case "Uint16":
			return []source{{bits: 16, signed: false}}
		}
		return nil
	}
	if srcs, ok := c.wrappers[callee]; ok {
		return srcs
	}
	return nil
}

// callee resolves the called function or variable object, if any.
func (c *checker) callee(call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return c.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// narrows reports whether converting a value of src to dst can lose range:
// the destination's capacity in value bits is smaller than the source's.
func narrows(src source, dst types.Type) bool {
	b, ok := dst.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	var dstBits int
	var dstSigned bool
	switch b.Kind() {
	case types.Int, types.Int64:
		dstBits, dstSigned = 64, true
	case types.Int32:
		dstBits, dstSigned = 32, true
	case types.Int16:
		dstBits, dstSigned = 16, true
	case types.Int8:
		dstBits, dstSigned = 8, true
	case types.Uint, types.Uint64, types.Uintptr:
		dstBits, dstSigned = 64, false
	case types.Uint32:
		dstBits, dstSigned = 32, false
	case types.Uint16:
		dstBits, dstSigned = 16, false
	case types.Uint8:
		dstBits, dstSigned = 8, false
	case types.Float32, types.Float64:
		return false // float conversions round, they don't truncate-and-wrap
	default:
		return false
	}
	srcCap := src.bits
	if src.signed {
		srcCap--
	}
	dstCap := dstBits
	if dstSigned {
		dstCap--
	}
	return srcCap > dstCap
}

// findWrappers locates same-package functions and named closures that
// return a wire-decoded value without checking it; calls to them are then
// treated as sources. A wrapper that validates internally (the
// internal/index readU pattern) is clean and is not flagged at call sites.
// Detection is one level deep: wrappers of wrappers are not chased.
func findWrappers(pass *analysis.Pass) map[types.Object][]source {
	wrappers := map[types.Object][]source{}
	record := func(obj types.Object, nResults int, body *ast.BlockStmt) {
		if obj == nil || nResults == 0 {
			return
		}
		probe := newChecker(pass, nil, false)
		probe.walk(body)
		if len(probe.returnsTainted) == 0 {
			return
		}
		srcs := make([]source, nResults)
		for i, s := range probe.returnsTainted {
			if i < nResults {
				srcs[i] = s
			}
		}
		wrappers[obj] = srcs
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				obj := pass.TypesInfo.Defs[n.Name]
				record(obj, numResults(n.Type), n.Body)
			case *ast.AssignStmt:
				// name := func(...) { ... } — a named closure.
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if lit, ok := n.Rhs[0].(*ast.FuncLit); ok {
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							obj := pass.TypesInfo.Defs[id]
							if obj == nil {
								obj = pass.TypesInfo.Uses[id]
							}
							record(obj, numResults(lit.Type), lit.Body)
						}
					}
				}
			}
			return true
		})
	}
	return wrappers
}

func numResults(ft *ast.FuncType) int {
	if ft.Results == nil {
		return 0
	}
	n := 0
	for _, field := range ft.Results.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
