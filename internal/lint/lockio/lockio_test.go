package lockio_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockio"
)

func TestLockio(t *testing.T) {
	linttest.Run(t, linttest.Testdata(t), lockio.Analyzer, "positive", "negative")
}
