// Package lockio flags decode, I/O, and cross-shard calls made while a
// sync.Mutex or sync.RWMutex is held.
//
// This is the PR 3 race class: mrserve's reader registry once performed a
// container decode inside its registry lock, and a concurrent shutdown
// handed a stale reader to an in-flight request; only -race caught it. The
// invariant since then is that locks in this codebase protect in-memory
// bookkeeping only — anything that can block (file reads, network writes,
// flate/huffman decode, another shard's lock) happens before the lock is
// taken or after it is released.
//
// The analyzer walks each function in statement order, tracking the set of
// held mutexes (keyed by the receiver expression, e.g. "s.mu"). While any
// lock is held it reports:
//
//   - calls into blocking or decode-heavy packages: os, io, io/fs, bufio,
//     net, net/http, compress/flate, compress/gzip, and the repro decode
//     stack (internal/core, codec, reader, field, cache, sz2, sz3, zfp,
//     huffman, writer)
//   - Lock/RLock on a second mutex (lock-order inversion risk — the
//     cross-shard half of the PR 3 class)
//
// Calls to functions in the same package are exempt (the *Locked helper
// convention); intentional sites carry a //lint:ignore mrlint/lockio
// directive with a reason. Branch bodies are analyzed with a copy of the
// held set, so `if done { s.mu.Unlock(); decode() }` is not a false
// positive; a deferred Unlock keeps the mutex held to the end of the
// function, which is exactly what it does at runtime.
package lockio

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: "no decode, I/O, or other-lock calls while holding a sync.Mutex/RWMutex; " +
		"locks protect in-memory state only",
	Run: run,
}

// deniedPkgs are the packages whose calls must not happen under a lock.
var deniedPkgs = map[string]bool{
	"os":             true,
	"io":             true,
	"io/fs":          true,
	"bufio":          true,
	"net":            true,
	"net/http":       true,
	"compress/flate": true,
	"compress/gzip":  true,

	"repro/internal/core":    true,
	"repro/internal/codec":   true,
	"repro/internal/reader":  true,
	"repro/internal/field":   true,
	"repro/internal/cache":   true,
	"repro/internal/sz2":     true,
	"repro/internal/sz3":     true,
	"repro/internal/zfp":     true,
	"repro/internal/huffman": true,
	"repro/internal/writer":  true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &walker{pass: pass}
					w.block(n.Body, map[string]bool{})
				}
				return false // nested FuncLits handled by the walker
			}
			return true
		})
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// block walks stmts in order, mutating held.
func (w *walker) block(b *ast.BlockStmt, held map[string]bool) {
	for _, s := range b.List {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.block(s.Body, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.block(s.Body, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.block(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			inner := copyHeld(held)
			for _, e := range cc.List {
				w.expr(e, inner)
			}
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			inner := copyHeld(held)
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			inner := copyHeld(held)
			if cc.Comm != nil {
				w.stmt(cc.Comm, inner)
			}
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the mutex stays held for
		// the remainder of the walk, which is the truth we want to model.
		// Deferred closures get their own fresh analysis.
		if kind, _ := w.lockOp(s.Call); kind == opNone {
			w.expr(s.Call, held)
		}
	case *ast.GoStmt:
		// The goroutine runs concurrently; it does not inherit our locks.
		w.funcLits(s.Call)
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	}
}

// expr scans an expression for lock operations and denied calls, in
// pre-order (good enough within a single expression).
func (w *walker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures start with no locks held in this model; their bodies
			// are analyzed separately.
			w.block(n.Body, map[string]bool{})
			return false
		case *ast.CallExpr:
			w.call(n, held)
			return true
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies call as a Lock/RLock or Unlock/RUnlock on a
// sync.Mutex/RWMutex, returning the held-set key for the mutex expression.
func (w *walker) lockOp(call *ast.CallExpr) (lockOpKind, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return opNone, ""
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return opLock, key
	case "Unlock", "RUnlock":
		return opUnlock, key
	}
	return opNone, ""
}

func (w *walker) call(call *ast.CallExpr, held map[string]bool) {
	if kind, key := w.lockOp(call); kind != opNone {
		switch kind {
		case opLock:
			if len(held) > 0 && !held[key] {
				w.pass.Reportf(call.Pos(), "acquiring %q while already holding %s: "+
					"lock-order inversion risk; release the first lock before taking another",
					key, heldList(held))
			}
			held[key] = true
		case opUnlock:
			delete(held, key)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	callee := w.callee(call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	pkg := callee.Pkg()
	if pkg == w.pass.Pkg {
		return // same-package helpers follow the *Locked convention
	}
	if isFileInfoAccessor(callee) {
		return // fs.FileInfo methods read an already-completed stat
	}
	if deniedPkgs[pkg.Path()] {
		w.pass.Reportf(call.Pos(), "call to %s.%s while holding %s: "+
			"locks protect in-memory state only; move decode/IO outside the critical section",
			pkg.Path(), callee.Name(), heldList(held))
	}
}

// isFileInfoAccessor reports whether fn is a method of io/fs.FileInfo
// (Name, Size, Mode, ModTime, IsDir, Sys). Those are accessors on the
// result of a stat that already happened; calling them never blocks, so
// they are exempt even though they live in a denied package.
func isFileInfoAccessor(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named, ok := recv.Type().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "FileInfo" && o.Pkg() != nil && o.Pkg().Path() == "io/fs"
}

func (w *walker) callee(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return w.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return w.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// funcLits analyzes any function literals inside e with fresh state.
func (w *walker) funcLits(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.block(lit.Body, map[string]bool{})
			return false
		}
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
