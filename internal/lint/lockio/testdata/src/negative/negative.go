// Negative fixtures: the lock-release-before-IO patterns the real code
// uses must produce zero findings.
package negative

import (
	"os"
	"sync"
)

type server struct {
	mu   sync.Mutex
	data map[string][]byte
}

// released does the IO after the critical section — the getReader shape.
func (s *server) released(path string) []byte {
	s.mu.Lock()
	b, ok := s.data[path]
	s.mu.Unlock()
	if ok {
		return b
	}
	b, _ = os.ReadFile(path)
	return b
}

// branchRelease unlocks inside the branch before the IO; branch state is a
// copy, so the fall-through path still counts as held.
func (s *server) branchRelease(path string, done bool) {
	s.mu.Lock()
	if done {
		s.mu.Unlock()
		os.ReadFile(path)
		return
	}
	s.data[path] = nil
	s.mu.Unlock()
}

// lockedHelper follows the same-package *Locked convention.
func (s *server) dropLocked(path string) {
	delete(s.data, path)
}

func (s *server) drop(path string) {
	s.mu.Lock()
	s.dropLocked(path)
	s.mu.Unlock()
}

// statAccessors calls fs.FileInfo methods under the lock: those read an
// already-completed stat and never block.
func (s *server) statAccessors(st os.FileInfo) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.Size() + st.ModTime().Unix()
}

// goroutineDoesNotInherit: the spawned goroutine runs without our locks
// (it must synchronize on its own), so its IO is not flagged.
func (s *server) goroutineDoesNotInherit(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		os.ReadFile(path)
	}()
}

// suppressed documents an intentional site with a reason.
func (s *server) suppressed(path string) {
	s.mu.Lock()
	//lint:ignore mrlint/lockio warm-up read of a memoized config file, never blocks after startup
	os.ReadFile(path)
	s.mu.Unlock()
}
