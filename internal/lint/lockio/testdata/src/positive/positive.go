// Positive fixtures: blocking work under a mutex, the PR 3 race class.
package positive

import (
	"os"
	"sync"
)

type server struct {
	mu   sync.Mutex
	data map[string][]byte
}

// deferHold keeps the lock for the whole body, so the read is under it.
func (s *server) deferHold(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, _ := os.ReadFile(path) // want `call to os.ReadFile while holding s\.mu`
	s.data[path] = b
}

// explicitHold releases only after the IO.
func (s *server) explicitHold(path string) {
	s.mu.Lock()
	os.ReadFile(path) // want `call to os.ReadFile while holding s\.mu`
	s.mu.Unlock()
}

type shard struct {
	mu sync.Mutex
}

// nested takes a second lock while holding the first: the cross-shard
// lock-order inversion half of the class.
func nested(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `acquiring "b\.mu" while already holding a\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

// rlockCounts exercises the RWMutex read side.
type registry struct {
	mu sync.RWMutex
}

func (r *registry) rlocked(path string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	os.Stat(path) // want `call to os.Stat while holding r\.mu`
}
