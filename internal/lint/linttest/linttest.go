// Package linttest is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// fixture packages laid out under testdata/src/<importpath> and checks the
// reported diagnostics against // want annotations in the fixture sources.
//
// An annotation is a trailing comment of the form
//
//	code() // want "regex"
//	code() // want `regex with "quotes"`
//
// Each quoted (or backquoted) string is a regular expression that must
// match the message of exactly one diagnostic reported on that line; lines
// may carry several. Diagnostics on lines without a matching annotation,
// and annotations no diagnostic matches, both fail the test — so fixtures
// prove both the positives and the absence of false positives.
//
// Suppression directives (//lint:ignore) are honored exactly as in the real
// driver, so fixtures can also exercise the suppression convention.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Testdata returns the absolute path of the calling test's testdata
// directory.
func Testdata(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each fixture package from testdata/src/<importPath>, applies
// the analyzer, and compares diagnostics against the // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		path := path
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			pkg, err := load.FromDir(testdata, path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			checkWants(t, pkg.Dir, diags)
		})
	}
}

// wantRe matches one quoted or backquoted expectation after a want marker.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")

var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkWants collects the annotations from every fixture file in dir and
// cross-checks them against diags.
func checkWants(t *testing.T, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllString(m[1], -1) {
				pattern, err := unquoteWant(arg)
				if err != nil {
					t.Fatalf("%s:%d: bad want argument %s: %v", path, i+1, arg, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pattern, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re.String())
		}
	}
}

func unquoteWant(arg string) (string, error) {
	if strings.HasPrefix(arg, "`") {
		return strings.Trim(arg, "`"), nil
	}
	return strconv.Unquote(arg)
}
