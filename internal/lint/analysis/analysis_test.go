package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// callFlagger reports every call to a function literally named "flagme";
// just enough analyzer to exercise the suppression machinery.
var callFlagger = &Analyzer{
	Name: "callflag",
	Doc:  "test analyzer: flags calls to flagme",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						p.Reportf(call.Pos(), "call to flagme")
					}
				}
				return true
			})
		}
		return nil
	},
}

func runOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	diags, err := RunAnalyzers(fset, []*ast.File{f}, nil, nil, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return diags
}

func TestSuppressionSameLine(t *testing.T) {
	diags := runOn(t, `package p
func flagme() {}
func f() {
	flagme() //lint:ignore mrlint/callflag fixture says this one is fine
}
`)
	if len(diags) != 0 {
		t.Fatalf("same-line directive did not suppress: %v", diags)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	diags := runOn(t, `package p
func flagme() {}
func f() {
	//lint:ignore mrlint/callflag fixture says this one is fine
	flagme()
}
`)
	if len(diags) != 0 {
		t.Fatalf("line-above directive did not suppress: %v", diags)
	}
}

func TestBareNameSuppresses(t *testing.T) {
	diags := runOn(t, `package p
func flagme() {}
func f() {
	//lint:ignore callflag the unqualified analyzer name also works
	flagme()
}
`)
	if len(diags) != 0 {
		t.Fatalf("bare-name directive did not suppress: %v", diags)
	}
}

func TestUnsuppressedFindingSurvives(t *testing.T) {
	diags := runOn(t, `package p
func flagme() {}
func f() {
	flagme()
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "callflag" {
		t.Fatalf("want the one callflag finding, got %v", diags)
	}
	if diags[0].Pos.Line != 4 {
		t.Fatalf("finding at line %d, want 4", diags[0].Pos.Line)
	}
}

func TestDirectiveWithoutReason(t *testing.T) {
	diags := runOn(t, `package p
func flagme() {}
func f() {
	//lint:ignore mrlint/callflag
	flagme()
}
`)
	// A reasonless directive suppresses nothing, so both the original
	// finding and the malformed-directive diagnostic must come back.
	var gotFinding, gotMalformed bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "callflag":
			gotFinding = true
		case d.Analyzer == "ignore" && strings.Contains(d.Message, "without a reason"):
			gotMalformed = true
		}
	}
	if !gotFinding || !gotMalformed {
		t.Fatalf("want original finding and malformed-directive diagnostic, got %v", diags)
	}
}

func TestUnusedDirectiveReported(t *testing.T) {
	diags := runOn(t, `package p
func f() {
	//lint:ignore mrlint/callflag nothing on the next line actually trips it
	_ = 1
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "ignore" ||
		!strings.Contains(diags[0].Message, "unused //lint:ignore mrlint/callflag") {
		t.Fatalf("want one unused-directive diagnostic, got %v", diags)
	}
}

func TestWrongAnalyzerNameDoesNotSuppress(t *testing.T) {
	diags := runOn(t, `package p
func flagme() {}
func f() {
	//lint:ignore mrlint/otherthing reason aimed at a different analyzer
	flagme()
}
`)
	// The finding survives and the directive is reported as unused.
	var gotFinding, gotUnused bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "callflag":
			gotFinding = true
		case d.Analyzer == "ignore" && strings.Contains(d.Message, "unused"):
			gotUnused = true
		}
	}
	if !gotFinding || !gotUnused {
		t.Fatalf("want surviving finding plus unused directive, got %v", diags)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	diags := runOn(t, `package p
func flagme() {}
func g() {
	flagme()
	flagme()
}
`)
	if len(diags) != 2 {
		t.Fatalf("want 2 findings, got %v", diags)
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Fatalf("diagnostics not sorted by line: %v", diags)
	}
}
