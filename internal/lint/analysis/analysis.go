// Package analysis is a stdlib-only reimplementation of the subset of
// golang.org/x/tools/go/analysis that mrlint's analyzers need. The build
// environment pins dependencies to the standard library, so the real
// framework cannot be vendored; this package keeps the same shape —
// Analyzer, Pass, Diagnostic, and a Reportf helper — so the analyzers can
// migrate to x/tools mechanically if the dependency ever becomes available.
//
// It also implements mrlint's suppression convention: a diagnostic from
// analyzer <name> is dropped when the flagged line, or the line immediately
// above it, carries a comment of the form
//
//	//lint:ignore mrlint/<name> reason
//
// The reason is mandatory; an ignore directive without one does not
// suppress anything (and is itself reported by the driver), so every
// intentional violation documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives ("mrlint/<name>").
	Name string
	// Doc is the one-paragraph description printed by mrlint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreRe matches the suppression directive. The directive name may be
// written qualified ("mrlint/lockio") or bare ("lockio").
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	name   string // analyzer name, without the mrlint/ prefix
	reason string
	pos    token.Position
	used   bool
}

// RunAnalyzers applies analyzers to the package and returns the surviving
// diagnostics plus any malformed or unused suppression directives (which
// the driver reports as findings themselves, so stale ignores cannot
// accumulate silently).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(p); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		diags = append(diags, p.diags...)
	}

	directives, bad := collectIgnores(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !suppress(directives, d) {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		if !dir.used {
			kept = append(kept, Diagnostic{
				Analyzer: "ignore",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("unused //lint:ignore mrlint/%s directive (nothing to suppress here)", dir.name),
			})
		}
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// collectIgnores parses every //lint:ignore directive in the files.
// Malformed directives (missing reason, missing analyzer name) come back as
// diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]*ignoreDirective, []Diagnostic) {
	var dirs []*ignoreDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				name := strings.TrimPrefix(m[1], "mrlint/")
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  "//lint:ignore directive without a reason; every suppression must say why the flagged code is safe",
					})
					continue
				}
				dirs = append(dirs, &ignoreDirective{name: name, reason: strings.TrimSpace(m[2]), pos: pos})
			}
		}
	}
	return dirs, bad
}

// suppress reports whether some directive covers d: same file, same
// analyzer, on the flagged line or the line immediately above it.
func suppress(dirs []*ignoreDirective, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.name != d.Analyzer {
			continue
		}
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			dir.used = true
			return true
		}
	}
	return false
}
