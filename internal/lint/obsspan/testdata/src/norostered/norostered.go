// Package norostered instruments endpoints but ships no roster at all: the
// instrument declaration itself is flagged.
package norostered

type server struct{}

func (s *server) instrument(name string, h func()) func() { // want `no _test.go .* declares`
	return h
}

func (s *server) handler() {
	s.instrument("healthz", nil)
}
