package positive

var expectedMetricEndpoints = []string{"healthz", "level"}
