// Package positive registers more endpoints than its roster lists: the
// unlisted ones must be flagged, the listed ones must not.
package positive

import "net/http"

type server struct {
	mux *http.ServeMux
}

func (s *server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return h
}

func (s *server) handler() {
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", nil))
	s.mux.HandleFunc("GET /v1/level", s.instrument("level", nil))
	s.mux.HandleFunc("GET /v1/slice", s.instrument("slice", nil))       // want `endpoint "slice" is instrumented but missing from expectedMetricEndpoints`
	s.mux.HandleFunc("PUT /v1/ingest", s.instrument("ingest", nil))     // want `endpoint "ingest" is instrumented but missing from expectedMetricEndpoints`
	s.mux.HandleFunc("GET /v1/suppress", s.instrument("suppress", nil)) //lint:ignore mrlint/obsspan exercised by the suppression-convention fixture
}
