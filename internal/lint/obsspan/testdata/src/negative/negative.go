// Package negative is the clean case: every instrumented endpoint appears
// in the roster, and packages without an instrument method (or with a
// non-string first parameter) are out of scope entirely.
package negative

type server struct{}

func (s *server) instrument(name string, h func()) func() {
	return h
}

// instrumentOther has the name but not the signature; calls to it are not
// endpoint registrations.
type other struct{}

func (o *other) instrument(n int) int { return n }

func (s *server) handler(o *other) {
	s.instrument("healthz", nil)
	s.instrument("level", nil)
	o.instrument(7)
}
