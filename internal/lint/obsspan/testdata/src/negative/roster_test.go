package negative

var expectedMetricEndpoints = []string{"healthz", "level"}
