// Package obsspan keeps the metrics contract and the serving mux in sync:
// every endpoint a package registers through its instrument method must
// appear in the expectedMetricEndpoints roster of that package's tests.
//
// This is the PR 8 drop class: instrument() is the single wrapper that
// gives an endpoint its trace root, request counters, and latency
// histogram, and the metrics test walks expectedMetricEndpoints to assert a
// complete _bucket/_sum/_count series per endpoint on /metrics. A new
// endpoint wired through instrument but left off the roster would serve
// histograms nobody pins — a later refactor could silently drop its series
// and no test would notice. The analyzer closes that gap statically.
//
// Mechanics: the check gates on a package that declares a method named
// instrument whose first parameter is a string (the endpoint name). It
// collects every string-literal first argument of .instrument(...) calls.
// The roster lives in a _test.go file, which the mrlint loader deliberately
// does not type-check — so the analyzer parses the package directory's
// *_test.go sources directly (syntax only) looking for
//
//	var expectedMetricEndpoints = []string{...}
//
// and reports every instrumented endpoint missing from it, or the absence
// of the roster altogether. Endpoints named by non-literal expressions are
// outside the contract and ignored (none exist today).
package obsspan

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsspan",
	Doc: "every endpoint registered through the instrument method must appear in the " +
		"metrics test's expectedMetricEndpoints roster, so its histogram series cannot drop from /metrics unnoticed",
	Run: run,
}

func run(pass *analysis.Pass) error {
	instr := instrumentMethod(pass.Files)
	if instr == nil {
		return nil
	}

	type site struct {
		name string
		pos  token.Pos
	}
	var sites []site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "instrument" || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			sites = append(sites, site{name: name, pos: call.Pos()})
			return true
		})
	}
	if len(sites) == 0 {
		return nil
	}

	dir := filepath.Dir(pass.Fset.Position(instr.Pos()).Filename)
	roster, rosterFile, err := loadRoster(dir)
	if err != nil {
		return err
	}
	if roster == nil {
		pass.Reportf(instr.Pos(), "package instruments %d endpoint(s) but no _test.go in %s declares "+
			"`var expectedMetricEndpoints = []string{...}`; add the roster so the metrics test pins every endpoint's histogram series",
			len(sites), dir)
		return nil
	}
	for _, s := range sites {
		if !roster[s.name] {
			pass.Reportf(s.pos, "endpoint %q is instrumented but missing from expectedMetricEndpoints in %s; "+
				"without it the metrics test would not notice this endpoint's histogram series dropping from /metrics",
				s.name, rosterFile)
		}
	}
	return nil
}

// instrumentMethod finds a method declaration named instrument whose first
// parameter is a plain string — the endpoint-wrapper signature the check
// gates on.
func instrumentMethod(files []*ast.File) *ast.FuncDecl {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "instrument" {
				continue
			}
			params := fd.Type.Params
			if params == nil || len(params.List) == 0 {
				continue
			}
			if id, ok := params.List[0].Type.(*ast.Ident); ok && id.Name == "string" {
				return fd
			}
		}
	}
	return nil
}

// loadRoster parses the directory's *_test.go files (syntax only; the
// loader never type-checks test files) for the expectedMetricEndpoints
// declaration and returns its entries as a set, plus the declaring file's
// base name. A missing roster returns a nil map; an unparsable test file is
// an error (the roster must stay discoverable).
func loadRoster(dir string) (map[string]bool, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", fmt.Errorf("obsspan: reading %s: %w", dir, err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, "", fmt.Errorf("obsspan: parsing %s: %w", path, err)
		}
		if roster := rosterFromFile(f); roster != nil {
			return roster, e.Name(), nil
		}
	}
	return nil, "", nil
}

// rosterFromFile extracts the string elements of a top-level
// `var expectedMetricEndpoints = []string{...}` declaration, or nil.
func rosterFromFile(f *ast.File) map[string]bool {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "expectedMetricEndpoints" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				roster := map[string]bool{}
				for _, el := range cl.Elts {
					lit, ok := el.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					if s, err := strconv.Unquote(lit.Value); err == nil {
						roster[s] = true
					}
				}
				return roster
			}
		}
	}
	return nil
}
