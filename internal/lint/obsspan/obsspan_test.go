package obsspan_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/obsspan"
)

func TestObsspan(t *testing.T) {
	linttest.Run(t, linttest.Testdata(t), obsspan.Analyzer, "positive", "norostered", "negative")
}
