// Package lint ties the mrlint analyzer suite together: it loads packages,
// runs every registered analyzer over them, and applies the suppression
// convention. cmd/mrlint is a thin wrapper around Run; the analyzers live
// in subpackages so each invariant is documented and tested on its own.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/lockio"
	"repro/internal/lint/obsspan"
	"repro/internal/lint/retbuf"
	"repro/internal/lint/uvarintguard"
	"repro/internal/lint/wireconst"
)

// Analyzers returns the full mrlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockio.Analyzer,
		obsspan.Analyzer,
		retbuf.Analyzer,
		uvarintguard.Analyzer,
		wireconst.Analyzer,
	}
}

// Run loads the packages matched by the go-list patterns and returns every
// surviving diagnostic, sorted by position.
func Run(patterns []string) ([]analysis.Diagnostic, error) {
	pkgs, err := load.FromGoList(patterns)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, Analyzers())
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}
