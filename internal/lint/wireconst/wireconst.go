// Package wireconst enforces that on-the-wire magic numbers — container
// version bytes, codec wire IDs, and the container magic string — are named
// constants declared in exactly one place, never literals at use sites.
//
// The container format is at version 4 and every bump so far touched
// several packages (writer, parser, mrserve capability negotiation). A
// bare `version == 3` scattered through the tree is how format v5+ silently
// forks: one site gets updated, another keeps the stale literal. The
// declared homes are internal/core (containerVersion* constants, the
// "MRWF" magic) and internal/codec (the wire ID registry); everything else
// must reference them by name.
//
// Flagged patterns (outside const declarations):
//
//   - an integer literal compared against, assigned to, or switched over a
//     variable named "version" (or ending in "Version")
//   - an integer literal used as a repro/internal/core.Compressor or
//     .Arrangement value, including explicit conversions like Compressor(2)
//   - an integer literal passed as the id argument of codec.ByID
//   - a string literal compared against a string(...) conversion — the
//     wire-magic sniffing pattern; the magic belongs in a named constant
package wireconst

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wireconst",
	Doc: "container versions, codec wire IDs, and wire magic must be named " +
		"constants from internal/core / internal/codec, not literals at use sites",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Literals inside constant declarations are the single allowed home.
		inConst := constDeclRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if within(inConst, n.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkByID(pass, n)
				if checkConversion(pass, n) {
					// The literal argument was reported as part of the
					// conversion; don't report it again as a typed literal.
					return false
				}
			case *ast.BasicLit:
				checkTypedLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// constDeclRanges returns the source ranges of every const declaration.
func constDeclRanges(f *ast.File) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.CONST {
			ranges = append(ranges, [2]token.Pos{gd.Pos(), gd.End()})
		}
		return true
	})
	return ranges
}

func within(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

// versionIdent reports whether e (parens stripped) is an identifier or
// field selector whose name is "version" or ends in "Version".
func versionIdent(e ast.Expr) bool {
	var name string
	switch e := unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	return name == "version" || strings.HasSuffix(name, "Version") || strings.HasSuffix(name, "version")
}

func intLit(e ast.Expr) *ast.BasicLit {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return nil
	}
	return lit
}

func stringLit(e ast.Expr) *ast.BasicLit {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	return lit
}

// stringConv reports whether e is a string(...) conversion — the wire
// sniffing idiom `string(blob[:4]) == "..."`.
func stringConv(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func checkCompare(pass *analysis.Pass, n *ast.BinaryExpr) {
	switch n.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	// version <op> INT (either side)
	if versionIdent(n.X) {
		if lit := intLit(n.Y); lit != nil {
			report(pass, lit, "version compared against literal %s", lit.Value)
		}
	}
	if versionIdent(n.Y) {
		if lit := intLit(n.X); lit != nil {
			report(pass, lit, "version compared against literal %s", lit.Value)
		}
	}
	// string(x) ==/!= "MAGI" (wire magic sniffing)
	if n.Op == token.EQL || n.Op == token.NEQ {
		if stringConv(pass, n.X) {
			if lit := stringLit(n.Y); lit != nil {
				report(pass, lit, "wire magic compared as string literal %s", lit.Value)
			}
		}
		if stringConv(pass, n.Y) {
			if lit := stringLit(n.X); lit != nil {
				report(pass, lit, "wire magic compared as string literal %s", lit.Value)
			}
		}
	}
}

func checkAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if !versionIdent(lhs) {
			continue
		}
		if lit := intLit(n.Rhs[i]); lit != nil {
			report(pass, lit, "version assigned literal %s", lit.Value)
		}
	}
}

func checkSwitch(pass *analysis.Pass, n *ast.SwitchStmt) {
	if n.Tag == nil || !versionIdent(n.Tag) {
		return
	}
	for _, clause := range n.Body.List {
		cc := clause.(*ast.CaseClause)
		for _, e := range cc.List {
			if lit := intLit(e); lit != nil {
				report(pass, lit, "switch over version with literal case %s", lit.Value)
			}
		}
	}
}

// checkByID flags codec.ByID(3): the wire ID must be one of the named
// registry constants.
func checkByID(pass *analysis.Pass, n *ast.CallExpr) {
	sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "ByID" || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/codec" {
		return
	}
	if len(n.Args) == 0 {
		return
	}
	if lit := intLit(n.Args[0]); lit != nil {
		report(pass, lit, "codec.ByID called with literal wire ID %s", lit.Value)
	}
}

// checkConversion flags core.Compressor(2) / core.Arrangement(1): explicit
// conversions of literals to the wire enum types. It reports whether it
// produced a finding, so the caller can avoid double-reporting the literal.
func checkConversion(pass *analysis.Pass, n *ast.CallExpr) bool {
	if len(n.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[n.Fun]
	if !ok || !tv.IsType() || !isWireEnum(tv.Type) {
		return false
	}
	if lit := intLit(n.Args[0]); lit != nil {
		report(pass, lit, "literal %s converted to %s", lit.Value, tv.Type.String())
		return true
	}
	return false
}

// checkTypedLiteral flags integer literals that the type checker resolved
// to a wire enum type through implicit conversion (assignment, argument,
// return, comparison against a typed value). The implicit zero value is
// exempt — `return 0, err` is a Go error-path idiom, not a wire ID; an
// explicit Compressor(0) conversion is still flagged.
func checkTypedLiteral(pass *analysis.Pass, lit *ast.BasicLit) {
	if lit.Kind != token.INT || lit.Value == "0" {
		return
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isWireEnum(tv.Type) {
		return
	}
	report(pass, lit, "literal %s used as %s value", lit.Value, tv.Type.String())
}

// isWireEnum reports whether t is repro/internal/core.Compressor or
// .Arrangement — the two enum types whose values go on the wire.
func isWireEnum(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "repro/internal/core" {
		return false
	}
	return obj.Name() == "Compressor" || obj.Name() == "Arrangement"
}

func report(pass *analysis.Pass, lit *ast.BasicLit, format string, args ...any) {
	pass.Reportf(lit.Pos(), format+"; declare it as a named constant in "+
		"internal/core or internal/codec and reference it by name", args...)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
