package wireconst_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wireconst"
)

func TestWireconst(t *testing.T) {
	linttest.Run(t, linttest.Testdata(t), wireconst.Analyzer, "positive", "negative")
}
