// Package codec is a fixture stub of repro/internal/codec: the registry
// lookup and the named wire IDs.
package codec

const (
	SZ3ID byte = 0
	SZ2ID byte = 1
)

// ByID looks a codec up by wire ID.
func ByID(id byte) (any, bool) {
	return nil, id <= SZ2ID
}
