// Package core is a fixture stub of repro/internal/core: just the wire
// enum types and their named constants, enough for the analyzer's
// type-based checks to resolve.
package core

type Compressor byte

type Arrangement byte

const (
	SZ3 Compressor = 0
	SZ2 Compressor = 1
	ZFP Compressor = 2
)

const (
	ArrangeLinear Arrangement = 0
	ArrangeTAC    Arrangement = 1
)
