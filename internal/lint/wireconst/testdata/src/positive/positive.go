// Positive fixtures: wire literals at use sites, each a way format v5+
// could silently fork.
package positive

import (
	"repro/internal/codec"
	"repro/internal/core"
)

func compare(version byte) bool {
	return version == 3 // want `version compared against literal 3`
}

func rangeCheck(version byte) bool {
	return version < 1 // want `version compared against literal 1`
}

func fieldSelector(h struct{ FormatVersion int }) bool {
	return h.FormatVersion != 2 // want `version compared against literal 2`
}

func assign() {
	var headerVersion int
	headerVersion = 4 // want `version assigned literal 4`
	_ = headerVersion
}

func switchOver(version byte) int {
	switch version {
	case 1: // want `switch over version with literal case 1`
		return 1
	case 2: // want `switch over version with literal case 2`
		return 2
	}
	return 0
}

func lookup() {
	codec.ByID(3) // want `codec\.ByID called with literal wire ID 3`
}

func convert() core.Compressor {
	return core.Compressor(2) // want `literal 2 converted to repro/internal/core\.Compressor`
}

func implicit() {
	var c core.Compressor = 1 // want `literal 1 used as repro/internal/core\.Compressor value`
	_ = c
	var a core.Arrangement = 1 // want `literal 1 used as repro/internal/core\.Arrangement value`
	_ = a
}

func magic(blob []byte) bool {
	return string(blob[:4]) == "MRWF" // want `wire magic compared as string literal "MRWF"`
}
