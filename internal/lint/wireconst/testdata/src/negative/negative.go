// Negative fixtures: named constants everywhere — the shapes the real code
// uses after the cleanup — must produce zero findings.
package negative

import (
	"repro/internal/codec"
	"repro/internal/core"
)

// The const declaration is the one allowed home for the literals.
const (
	containerMagic   = "MRWF"
	containerVersion = 3
	minVersion       = 1
)

func compare(version byte) bool {
	return version == containerVersion
}

func rangeCheck(version byte) bool {
	return version < minVersion || version > containerVersion
}

func lookup() {
	codec.ByID(codec.SZ3ID)
}

func convert() core.Compressor {
	return core.SZ2
}

// zeroValue: `return 0, err` is the Go error-path idiom, not a wire ID.
func zeroValue(fail bool) (core.Compressor, bool) {
	if fail {
		return 0, false
	}
	return core.ZFP, true
}

func magic(blob []byte) bool {
	return len(blob) >= 4 && string(blob[:4]) == containerMagic
}

// plainCounts: integer literals around ordinary variables stay untouched.
func plainCounts(n int) int {
	return n + 4
}
