// Package fft provides a radix-2 complex FFT, a 3D transform built from it,
// and the radially binned power spectrum P(k) used by the paper's
// application-specific Nyx analysis (Table VI).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/field"
)

// FFT computes the in-place forward discrete Fourier transform of x using the
// iterative radix-2 Cooley–Tukey algorithm. len(x) must be a power of two.
func FFT(x []complex128) {
	transform(x, false)
}

// IFFT computes the in-place inverse DFT (with 1/N normalization).
func IFFT(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// FFT3D computes the forward 3D DFT of a real field and returns the complex
// spectrum in the same row-major layout. All dimensions must be powers of two.
func FFT3D(f *field.Field) []complex128 {
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	for _, n := range []int{nx, ny, nz} {
		if n&(n-1) != 0 {
			panic(fmt.Sprintf("fft: dimension %d is not a power of two", n))
		}
	}
	c := make([]complex128, nx*ny*nz)
	for i, v := range f.Data {
		c[i] = complex(v, 0)
	}
	// Transform along x (contiguous rows).
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			row := c[(z*ny+y)*nx : (z*ny+y+1)*nx]
			FFT(row)
		}
	}
	// Transform along y.
	buf := make([]complex128, max3(nx, ny, nz))
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				buf[y] = c[x+nx*(y+ny*z)]
			}
			FFT(buf[:ny])
			for y := 0; y < ny; y++ {
				c[x+nx*(y+ny*z)] = buf[y]
			}
		}
	}
	// Transform along z.
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				buf[z] = c[x+nx*(y+ny*z)]
			}
			FFT(buf[:nz])
			for z := 0; z < nz; z++ {
				c[x+nx*(y+ny*z)] = buf[z]
			}
		}
	}
	return c
}

// PowerSpectrum computes the radially binned power spectrum of a field:
// P(k) = mean over modes with |k| in [k, k+1) of |F(k)|²/N², for integer
// wavenumbers k = 0..kmax. This matches the matter power spectrum diagnostic
// used for Nyx (up to normalization, which cancels in relative errors).
func PowerSpectrum(f *field.Field, kmax int) []float64 {
	c := FFT3D(f)
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	norm := float64(f.Len())
	power := make([]float64, kmax+1)
	count := make([]int, kmax+1)
	for z := 0; z < nz; z++ {
		kz := foldFreq(z, nz)
		for y := 0; y < ny; y++ {
			ky := foldFreq(y, ny)
			for x := 0; x < nx; x++ {
				kx := foldFreq(x, nx)
				k := int(math.Round(math.Sqrt(float64(kx*kx + ky*ky + kz*kz))))
				if k > kmax {
					continue
				}
				v := c[x+nx*(y+ny*z)]
				p := real(v)*real(v) + imag(v)*imag(v)
				power[k] += p / (norm * norm)
				count[k]++
			}
		}
	}
	for k := range power {
		if count[k] > 0 {
			power[k] /= float64(count[k])
		}
	}
	return power
}

// SpectrumRelErrors returns the per-k relative error |p'(k)-p(k)|/p(k) for
// k = 1..kmax (k=0 is the mean mode and is excluded, as in the paper's
// "all k < 10" convention which tracks structure, not the DC offset).
func SpectrumRelErrors(orig, decomp *field.Field, kmax int) []float64 {
	p := PowerSpectrum(orig, kmax)
	q := PowerSpectrum(decomp, kmax)
	errs := make([]float64, 0, kmax)
	for k := 1; k <= kmax; k++ {
		if p[k] == 0 {
			continue
		}
		errs = append(errs, math.Abs(q[k]-p[k])/p[k])
	}
	return errs
}

// MaxAvg returns the maximum and mean of a non-empty slice.
func MaxAvg(xs []float64) (max, avg float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, v := range xs {
		if v > max {
			max = v
		}
		sum += v
	}
	return max, sum / float64(len(xs))
}

// foldFreq maps an FFT bin index to its signed frequency.
func foldFreq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
