package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 64)
	orig := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip error at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse DFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestFFTKnownCosine(t *testing.T) {
	// cos(2πk₀n/N) has spikes of N/2 at bins k₀ and N−k₀.
	const n, k0 = 32, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*k0*float64(i)/n), 0)
	}
	FFT(x)
	for k, v := range x {
		want := 0.0
		if k == k0 || k == n-k0 {
			want = n / 2
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("|DFT[%d]| = %v, want %v", k, cmplx.Abs(v), want)
		}
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|² = (1/N) sum |X|².
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4))
		x := make([]complex128, n)
		e1 := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			e1 += real(x[i]) * real(x[i])
		}
		FFT(x)
		e2 := 0.0
		for _, v := range x {
			e2 += real(v)*real(v) + imag(v)*imag(v)
		}
		e2 /= float64(n)
		return math.Abs(e1-e2) < 1e-8*(1+e1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT3DConstantField(t *testing.T) {
	f := field.New(8, 8, 8)
	f.Fill(3)
	c := FFT3D(f)
	// DC bin = sum of all samples; everything else ~0.
	if math.Abs(real(c[0])-3*512) > 1e-9 {
		t.Fatalf("DC bin = %v, want 1536", c[0])
	}
	for i := 1; i < len(c); i++ {
		if cmplx.Abs(c[i]) > 1e-8 {
			t.Fatalf("non-DC bin %d = %v", i, c[i])
		}
	}
}

func TestPowerSpectrumSingleMode(t *testing.T) {
	// A pure k=3 mode along x must put all (non-DC) power in the k=3 bin.
	f := field.New(16, 16, 16)
	for z := 0; z < 16; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				f.Set(x, y, z, math.Cos(2*math.Pi*3*float64(x)/16))
			}
		}
	}
	p := PowerSpectrum(f, 8)
	for k := 1; k <= 8; k++ {
		if k == 3 {
			if p[k] == 0 {
				t.Fatal("power at k=3 missing")
			}
			continue
		}
		if p[k] > 1e-12*p[3] {
			t.Fatalf("leakage at k=%d: %g vs %g", k, p[k], p[3])
		}
	}
}

func TestSpectrumRelErrorsZeroForIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := field.New(16, 16, 16)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	errs := SpectrumRelErrors(f, f, 9)
	for _, e := range errs {
		if e != 0 {
			t.Fatalf("nonzero relative error %v for identical fields", e)
		}
	}
	if len(errs) != 9 {
		t.Fatalf("expected 9 k-bins, got %d", len(errs))
	}
}

func TestSpectrumRelErrorsGrowWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := field.New(16, 16, 16)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	g := f.Clone()
	for i := range g.Data {
		g.Data[i] += 0.3 * rng.NormFloat64()
	}
	_, avgSmall := MaxAvg(SpectrumRelErrors(f, f, 9))
	_, avgBig := MaxAvg(SpectrumRelErrors(f, g, 9))
	if !(avgBig > avgSmall) {
		t.Fatalf("spectrum error should grow with noise: %v vs %v", avgBig, avgSmall)
	}
}

func TestMaxAvg(t *testing.T) {
	max, avg := MaxAvg([]float64{1, 3, 2})
	if max != 3 || avg != 2 {
		t.Fatalf("MaxAvg = (%v,%v), want (3,2)", max, avg)
	}
	max, avg = MaxAvg(nil)
	if max != 0 || avg != 0 {
		t.Fatal("MaxAvg of empty must be zero")
	}
}
