package halo

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/synth"
)

// blobField places Gaussian blobs of the given integer centers and
// amplitude on a unit background.
func blobField(n int, centers [][3]int, amp float64) *field.Field {
	f := field.New(n, n, n)
	f.Fill(1)
	for _, c := range centers {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					dx, dy, dz := float64(x-c[0]), float64(y-c[1]), float64(z-c[2])
					f.Data[f.Index(x, y, z)] += amp * math.Exp(-(dx*dx+dy*dy+dz*dz)/8)
				}
			}
		}
	}
	return f
}

func TestFindIsolatedBlobs(t *testing.T) {
	centers := [][3]int{{8, 8, 8}, {24, 24, 24}, {8, 24, 8}}
	f := blobField(32, centers, 50)
	halos := Find(f, Options{})
	if len(halos) != len(centers) {
		t.Fatalf("found %d halos, want %d", len(halos), len(centers))
	}
	// Each center must be close to one found center.
	for _, c := range centers {
		ok := false
		for _, h := range halos {
			d := math.Hypot(math.Hypot(h.CX-float64(c[0]), h.CY-float64(c[1])), h.CZ-float64(c[2]))
			if d < 1.5 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("center %v not recovered: %+v", c, halos)
		}
	}
}

func TestFindSortedByMass(t *testing.T) {
	f := blobField(32, [][3]int{{8, 8, 8}}, 100)
	g := blobField(32, [][3]int{{24, 24, 24}}, 30)
	f.AddScaled(1, g)
	f.AddScaled(-1, fieldOnes(32)) // keep background at 1 after the add
	halos := Find(f, Options{})
	if len(halos) < 2 {
		t.Fatalf("found %d halos", len(halos))
	}
	if halos[0].Mass < halos[1].Mass {
		t.Fatal("catalog not sorted by mass")
	}
	// The most massive must be the amp-100 blob at (8,8,8).
	if math.Abs(halos[0].CX-8) > 1.5 {
		t.Fatalf("wrong primary halo at (%g,%g,%g)", halos[0].CX, halos[0].CY, halos[0].CZ)
	}
}

func fieldOnes(n int) *field.Field {
	f := field.New(n, n, n)
	f.Fill(1)
	return f
}

func TestMinVoxelsFilters(t *testing.T) {
	f := field.New(16, 16, 16)
	f.Fill(1)
	f.Set(8, 8, 8, 1000) // single hot voxel
	if halos := Find(f, Options{MinVoxels: 8}); len(halos) != 0 {
		t.Fatalf("single voxel passed MinVoxels=8: %+v", halos)
	}
	if halos := Find(f, Options{MinVoxels: 1}); len(halos) != 1 {
		t.Fatal("single voxel not found with MinVoxels=1")
	}
}

func TestTouchingBlobsMerge(t *testing.T) {
	// Two blobs close enough to overlap above threshold → one halo.
	f := blobField(32, [][3]int{{14, 16, 16}, {18, 16, 16}}, 50)
	halos := Find(f, Options{})
	if len(halos) != 1 {
		t.Fatalf("overlapping blobs gave %d halos", len(halos))
	}
	if math.Abs(halos[0].CX-16) > 1 {
		t.Fatalf("merged center at %g, want ~16", halos[0].CX)
	}
}

func TestUniformFieldNoHalos(t *testing.T) {
	f := field.New(16, 16, 16)
	f.Fill(5)
	if halos := Find(f, Options{}); len(halos) != 0 {
		t.Fatalf("uniform field produced %d halos", len(halos))
	}
}

func TestCompareIdenticalCatalogs(t *testing.T) {
	f := synth.Generate(synth.Nyx, 48, 3)
	cat := Find(f, Options{})
	if len(cat) == 0 {
		t.Skip("no halos at this seed")
	}
	d := Compare(cat, cat, 2)
	if d.Matched != len(cat) || d.MassErr != 0 || d.CenterDist != 0 {
		t.Fatalf("self-compare diff %+v", d)
	}
	if d.MatchRate() != 1 {
		t.Fatal("match rate != 1")
	}
}

func TestComparePerturbedCatalog(t *testing.T) {
	orig := []Halo{{Mass: 100, CX: 10, CY: 10, CZ: 10}, {Mass: 50, CX: 30, CY: 30, CZ: 30}}
	dec := []Halo{{Mass: 90, CX: 10.5, CY: 10, CZ: 10}} // second halo lost
	d := Compare(orig, dec, 2)
	if d.Matched != 1 {
		t.Fatalf("matched %d, want 1", d.Matched)
	}
	if math.Abs(d.MassErr-0.1) > 1e-12 {
		t.Fatalf("mass err %g, want 0.1", d.MassErr)
	}
	if math.Abs(d.CenterDist-0.5) > 1e-12 {
		t.Fatalf("center dist %g, want 0.5", d.CenterDist)
	}
	if d.MatchRate() != 0.5 {
		t.Fatalf("match rate %g", d.MatchRate())
	}
}

func TestCompareEmptyOriginal(t *testing.T) {
	if r := (CatalogDiff{}).MatchRate(); r != 1 {
		t.Fatalf("empty original match rate %g", r)
	}
}

func TestNyxHalosSurviveMildCompressionNoise(t *testing.T) {
	// Halo catalogs must be robust to error-bound-scale perturbations.
	f := synth.Generate(synth.Nyx, 48, 4)
	cat := Find(f, Options{})
	if len(cat) < 3 {
		t.Skip("too few halos")
	}
	g := f.Clone()
	eb := f.ValueRange() * 1e-3
	for i := range g.Data {
		if i%2 == 0 {
			g.Data[i] += eb
		} else {
			g.Data[i] -= eb
		}
	}
	d := Compare(cat, Find(g, Options{}), 2)
	if d.MatchRate() < 0.9 {
		t.Fatalf("halos lost under eb-scale noise: rate %.2f", d.MatchRate())
	}
}
