// Package halo implements a friends-of-friends-style halo finder for
// density fields: connected components of voxels above an overdensity
// threshold, with per-halo mass and center of mass. It provides the
// application-specific post-analysis the paper's future work targets
// ("preserve application-specific post-analysis quality such as
// Halo-finder", §V): comparing the halo catalogs of original and
// decompressed data quantifies how much structure compression preserves
// beyond pointwise PSNR.
//
// The algorithm matches the standard grid-based variant of the
// Davis et al. (1985) overdensity framing: threshold at δ× the mean
// density, link face-adjacent voxels, discard components below a minimum
// voxel count.
package halo

import (
	"math"
	"sort"

	"repro/internal/field"
)

// Options configures the finder.
type Options struct {
	// OverdensityFactor is the threshold as a multiple of the mean density
	// (default 3).
	OverdensityFactor float64
	// MinVoxels discards components smaller than this (default 8).
	MinVoxels int
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.OverdensityFactor == 0 {
		v.OverdensityFactor = 3
	}
	if v.MinVoxels == 0 {
		v.MinVoxels = 8
	}
	return v
}

// Halo is one connected overdense region.
type Halo struct {
	// Voxels is the component size.
	Voxels int
	// Mass is the summed density over the component.
	Mass float64
	// CX, CY, CZ is the mass-weighted center.
	CX, CY, CZ float64
	// Peak is the maximum density inside the halo.
	Peak float64
}

// Find returns the halo catalog of a density field, sorted by decreasing
// mass.
func Find(f *field.Field, opt Options) []Halo {
	opt = (&opt).withDefaults()
	threshold := f.Mean() * opt.OverdensityFactor
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	n := f.Len()

	// Union-find over above-threshold voxels.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1 // below threshold / unvisited
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	for i, v := range f.Data {
		if v >= threshold {
			parent[i] = int32(i)
		}
	}
	// Link face neighbors (only −x, −y, −z needed in a forward sweep).
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := f.Index(x, y, z)
				if parent[i] < 0 {
					continue
				}
				if x > 0 && parent[i-1] >= 0 {
					union(int32(i), int32(i-1))
				}
				if y > 0 && parent[i-nx] >= 0 {
					union(int32(i), int32(i-nx))
				}
				if z > 0 && parent[i-nx*ny] >= 0 {
					union(int32(i), int32(i-nx*ny))
				}
			}
		}
	}

	// Accumulate per-root statistics.
	acc := make(map[int32]*Halo)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := f.Index(x, y, z)
				if parent[i] < 0 {
					continue
				}
				r := find(int32(i))
				h := acc[r]
				if h == nil {
					h = &Halo{}
					acc[r] = h
				}
				v := f.Data[i]
				h.Voxels++
				h.Mass += v
				h.CX += v * float64(x)
				h.CY += v * float64(y)
				h.CZ += v * float64(z)
				if v > h.Peak {
					h.Peak = v
				}
			}
		}
	}
	var out []Halo
	for _, h := range acc {
		if h.Voxels < opt.MinVoxels {
			continue
		}
		if h.Mass > 0 {
			h.CX /= h.Mass
			h.CY /= h.Mass
			h.CZ /= h.Mass
		}
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mass != out[j].Mass {
			return out[i].Mass > out[j].Mass
		}
		return out[i].Voxels > out[j].Voxels
	})
	return out
}

// CatalogDiff summarizes how well a decompressed catalog matches the
// original one.
type CatalogDiff struct {
	// OrigCount and DecompCount are the catalog sizes.
	OrigCount, DecompCount int
	// Matched is the number of original halos with a decompressed halo
	// center within the match radius.
	Matched int
	// MassErr is the mean relative mass error over matched pairs.
	MassErr float64
	// CenterDist is the mean center distance (voxels) over matched pairs.
	CenterDist float64
}

// MatchRate returns Matched/OrigCount (1 for empty originals).
func (d CatalogDiff) MatchRate() float64 {
	if d.OrigCount == 0 {
		return 1
	}
	return float64(d.Matched) / float64(d.OrigCount)
}

// Compare greedily matches each original halo to the nearest decompressed
// halo within radius (voxels) and reports catalog fidelity.
func Compare(orig, decomp []Halo, radius float64) CatalogDiff {
	d := CatalogDiff{OrigCount: len(orig), DecompCount: len(decomp)}
	used := make([]bool, len(decomp))
	var massErrSum, distSum float64
	for _, o := range orig {
		best, bestDist := -1, radius
		for j, g := range decomp {
			if used[j] {
				continue
			}
			dist := math.Sqrt((o.CX-g.CX)*(o.CX-g.CX) + (o.CY-g.CY)*(o.CY-g.CY) + (o.CZ-g.CZ)*(o.CZ-g.CZ))
			if dist <= bestDist {
				best, bestDist = j, dist
			}
		}
		if best < 0 {
			continue
		}
		used[best] = true
		d.Matched++
		distSum += bestDist
		if o.Mass != 0 {
			massErrSum += math.Abs(decomp[best].Mass-o.Mass) / o.Mass
		}
	}
	if d.Matched > 0 {
		d.MassErr = massErrSum / float64(d.Matched)
		d.CenterDist = distSum / float64(d.Matched)
	}
	return d
}
