package layout

import (
	"math/bits"
	"testing"
)

// TestHZOrderCoarseFirst verifies the defining property of HZ ordering used
// by IDX-style multi-resolution storage: all points of a coarser resolution
// level (more trailing zeros in the Morton code) precede every point of any
// finer level, so a prefix read of an HZ-ordered file yields a complete
// coarse version of the data.
func TestHZOrderCoarseFirst(t *testing.T) {
	const maxBits = 9 // 8³ domain
	levelOf := func(m uint64) int {
		if m == 0 {
			return 0
		}
		return maxBits - bits.TrailingZeros64(m)
	}
	for a := uint64(0); a < 512; a++ {
		for b := a + 1; b < 512; b += 37 { // sampled pairs for speed
			la, lb := levelOf(a), levelOf(b)
			ha, hb := HZIndex(a, maxBits), HZIndex(b, maxBits)
			if la < lb && ha >= hb {
				t.Fatalf("coarser point (m=%d, level %d, hz %d) not before finer (m=%d, level %d, hz %d)",
					a, la, ha, b, lb, hb)
			}
			if lb < la && hb >= ha {
				t.Fatalf("coarser point (m=%d, level %d, hz %d) not before finer (m=%d, level %d, hz %d)",
					b, lb, hb, a, la, ha)
			}
		}
	}
}

// TestHZLevelSizes checks that HZ level l (l ≥ 1) occupies exactly the index
// range [2^(l−1), 2^l) — each level doubles the resolution.
func TestHZLevelSizes(t *testing.T) {
	const maxBits = 6 // 4³ domain = 64 points
	counts := make(map[uint64]int)
	for m := uint64(0); m < 64; m++ {
		hz := HZIndex(m, maxBits)
		level := uint64(0)
		for l := uint(1); l <= maxBits; l++ {
			if hz >= 1<<(l-1) && hz < 1<<l {
				level = uint64(l)
			}
		}
		counts[level]++
	}
	// Level 0 holds only hz index 0 (one point); level l holds 2^(l−1).
	if counts[0] != 1 {
		t.Fatalf("level 0 count %d", counts[0])
	}
	for l := uint64(1); l <= maxBits; l++ {
		if counts[l] != 1<<(l-1) {
			t.Fatalf("level %d count %d, want %d", l, counts[l], 1<<(l-1))
		}
	}
}
