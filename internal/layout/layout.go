// Package layout implements the spatial arrangements the paper compares for
// compressing the unit blocks of a multi-resolution level (§III-A, Fig. 6):
//
//   - Linear merge (the baseline the paper builds on): unit blocks
//     concatenated along z into a u×u×(u·k) array.
//   - Stack merge (AMRIC): unit blocks stacked into a near-cubic
//     arrangement, which balances dimensions but adjoins non-neighboring
//     blocks, creating unsmooth internal boundaries.
//   - TAC partition: greedy merging of adjacent owned blocks into maximal
//     rectangular boxes, preserving locality but producing variable shapes
//     that must be compressed separately.
//
// It also provides the paper's padding operator (one extrapolated layer on
// each of the two small dimensions of a linear merge, §III-A Improvement 1)
// and Z-order/HZ-order curves used by the zMesh- and Kumar-style baselines.
package layout

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/field"
	"repro/internal/grid"
)

// Merged is a level's unit blocks arranged into a single array.
type Merged struct {
	// Data is the merged array.
	Data *field.Field
	// U is the unit block edge.
	U int
	// Blocks lists the block coordinates in merge order.
	Blocks [][3]int
}

// LinearMerge concatenates the owned unit blocks of hierarchy level l along
// the z axis: the result is u×u×(u·k) for k owned blocks. Blocks appear in
// raster order, so blocks adjacent along z in the domain often remain
// adjacent in the merge.
func LinearMerge(h *grid.Hierarchy, level int) *Merged {
	u := h.UnitBlockSize(level)
	blocks := h.OwnedBlocks(level)
	k := len(blocks)
	if k == 0 {
		return &Merged{Data: nil, U: u}
	}
	out := field.New(u, u, u*k)
	for i, bc := range blocks {
		b := h.BlockField(level, bc[0], bc[1], bc[2])
		out.SetBlock(0, 0, i*u, b)
	}
	return &Merged{Data: out, U: u, Blocks: blocks}
}

// LinearPlace writes the merged blocks into dst, a full-domain array at the
// level's resolution (each block lands at its domain position). It is the
// placement half of LinearUnmerge, shared with the random-access reader,
// which reconstructs single levels without allocating a hierarchy.
func LinearPlace(m *Merged, dst *field.Field) error {
	if m.Data == nil {
		return nil
	}
	u := m.U
	if m.Data.Nx != u || m.Data.Ny != u || m.Data.Nz != u*len(m.Blocks) {
		return fmt.Errorf("layout: merged shape %v inconsistent with %d blocks of u=%d", m.Data, len(m.Blocks), u)
	}
	for i, bc := range m.Blocks {
		if err := checkBlockFits(dst, bc, u); err != nil {
			return err
		}
		b := m.Data.SubBlock(0, 0, i*u, u, u, u)
		dst.SetBlock(bc[0]*u, bc[1]*u, bc[2]*u, b)
	}
	return nil
}

// LinearUnmerge writes the merged blocks back into hierarchy level l,
// setting ownership accordingly.
func LinearUnmerge(m *Merged, h *grid.Hierarchy, level int) error {
	if err := checkUnitSize(m, h, level); err != nil {
		return err
	}
	if err := LinearPlace(m, h.Levels[level].Data); err != nil {
		return err
	}
	markOwned(m, h, level)
	return nil
}

// StackMerge arranges the owned unit blocks of a level into an m×m×m cubic
// grid of slots (m = ⌈k^(1/3)⌉), the AMRIC approach. Slots beyond the k real
// blocks are filled with a copy of the final block so the array stays
// well-defined; the decoder discards them.
func StackMerge(h *grid.Hierarchy, level int) *Merged {
	u := h.UnitBlockSize(level)
	blocks := h.OwnedBlocks(level)
	k := len(blocks)
	if k == 0 {
		return &Merged{Data: nil, U: u}
	}
	m := int(math.Ceil(math.Cbrt(float64(k))))
	out := field.New(u*m, u*m, u*m)
	var last *field.Field
	slot := 0
	for sz := 0; sz < m; sz++ {
		for sy := 0; sy < m; sy++ {
			for sx := 0; sx < m; sx++ {
				var b *field.Field
				if slot < k {
					bc := blocks[slot]
					b = h.BlockField(level, bc[0], bc[1], bc[2])
					last = b
				} else {
					b = last
				}
				out.SetBlock(sx*u, sy*u, sz*u, b)
				slot++
			}
		}
	}
	return &Merged{Data: out, U: u, Blocks: blocks}
}

// StackPlace writes the stacked blocks into dst, a full-domain array at the
// level's resolution; padding slots beyond the real blocks are discarded.
func StackPlace(m *Merged, dst *field.Field) error {
	if m.Data == nil {
		return nil
	}
	u := m.U
	k := len(m.Blocks)
	mm := int(math.Ceil(math.Cbrt(float64(k))))
	if m.Data.Nx != u*mm || m.Data.Ny != u*mm || m.Data.Nz != u*mm {
		return fmt.Errorf("layout: stacked shape %v inconsistent with k=%d u=%d", m.Data, k, u)
	}
	slot := 0
	for sz := 0; sz < mm; sz++ {
		for sy := 0; sy < mm; sy++ {
			for sx := 0; sx < mm; sx++ {
				if slot >= k {
					return nil
				}
				bc := m.Blocks[slot]
				if err := checkBlockFits(dst, bc, u); err != nil {
					return err
				}
				b := m.Data.SubBlock(sx*u, sy*u, sz*u, u, u, u)
				dst.SetBlock(bc[0]*u, bc[1]*u, bc[2]*u, b)
				slot++
			}
		}
	}
	return nil
}

// StackUnmerge reverses StackMerge.
func StackUnmerge(m *Merged, h *grid.Hierarchy, level int) error {
	if err := checkUnitSize(m, h, level); err != nil {
		return err
	}
	if err := StackPlace(m, h.Levels[level].Data); err != nil {
		return err
	}
	markOwned(m, h, level)
	return nil
}

// Box is an axis-aligned run of owned blocks, in block coordinates.
type Box struct {
	X0, Y0, Z0 int // origin block
	WX, WY, WZ int // extent in blocks
}

// TACPartition greedily merges adjacent owned blocks of a level into maximal
// rectangular boxes (a simplification of TAC's kd-tree merge that preserves
// its key property: merged regions are spatially contiguous). Boxes are
// discovered in raster order: grow along x, then extend rows along y, then
// planes along z.
func TACPartition(h *grid.Hierarchy, level int) []Box {
	nbx, nby, nbz := h.NumBlocks()
	lv := h.Levels[level]
	owned := func(bx, by, bz int) bool {
		return lv.Owned[h.BlockIndex(bx, by, bz)]
	}
	visited := make([]bool, nbx*nby*nbz)
	vis := func(bx, by, bz int) bool { return visited[h.BlockIndex(bx, by, bz)] }
	var boxes []Box
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				if !owned(bx, by, bz) || vis(bx, by, bz) {
					continue
				}
				wx := 1
				for bx+wx < nbx && owned(bx+wx, by, bz) && !vis(bx+wx, by, bz) {
					wx++
				}
				wy := 1
				for by+wy < nby && rowFree(owned, vis, bx, by+wy, bz, wx) {
					wy++
				}
				wz := 1
				for bz+wz < nbz && planeFree(owned, vis, bx, by, bz+wz, wx, wy) {
					wz++
				}
				for dz := 0; dz < wz; dz++ {
					for dy := 0; dy < wy; dy++ {
						for dx := 0; dx < wx; dx++ {
							visited[h.BlockIndex(bx+dx, by+dy, bz+dz)] = true
						}
					}
				}
				boxes = append(boxes, Box{bx, by, bz, wx, wy, wz})
			}
		}
	}
	return boxes
}

func rowFree(owned, vis func(int, int, int) bool, bx, by, bz, wx int) bool {
	for dx := 0; dx < wx; dx++ {
		if !owned(bx+dx, by, bz) || vis(bx+dx, by, bz) {
			return false
		}
	}
	return true
}

func planeFree(owned, vis func(int, int, int) bool, bx, by, bz, wx, wy int) bool {
	for dy := 0; dy < wy; dy++ {
		if !rowFree(owned, vis, bx, by+dy, bz, wx) {
			return false
		}
	}
	return true
}

// ExtractBox copies the samples of a box from a level into a standalone
// field of shape (u·WX, u·WY, u·WZ).
func ExtractBox(h *grid.Hierarchy, level int, b Box) *field.Field {
	u := h.UnitBlockSize(level)
	return h.Levels[level].Data.SubBlock(b.X0*u, b.Y0*u, b.Z0*u, b.WX*u, b.WY*u, b.WZ*u)
}

// InsertBox writes a box's samples back into a level and marks ownership.
func InsertBox(h *grid.Hierarchy, level int, b Box, data *field.Field) error {
	u := h.UnitBlockSize(level)
	if data.Nx != b.WX*u || data.Ny != b.WY*u || data.Nz != b.WZ*u {
		return fmt.Errorf("layout: box data %v does not match box %+v u=%d", data, b, u)
	}
	h.Levels[level].Data.SetBlock(b.X0*u, b.Y0*u, b.Z0*u, data)
	for dz := 0; dz < b.WZ; dz++ {
		for dy := 0; dy < b.WY; dy++ {
			for dx := 0; dx < b.WX; dx++ {
				h.Levels[level].Owned[h.BlockIndex(b.X0+dx, b.Y0+dy, b.Z0+dz)] = true
			}
		}
	}
	return nil
}

// PadKind selects the extrapolation used for padding values (§III-A: the
// paper tests constant, linear, and quadratic, and picks linear).
type PadKind byte

const (
	// PadConstant replicates the edge sample.
	PadConstant PadKind = iota
	// PadLinear extrapolates linearly from the last two samples (the
	// paper's choice).
	PadLinear
	// PadQuadratic extrapolates quadratically from the last three samples.
	PadQuadratic
)

// PadXY appends one extrapolated layer to the +x and +y faces of the merged
// array, growing u×u×L to (u+1)×(u+1)×L. Size overhead is (u+1)²/u², as
// analyzed in the paper.
func PadXY(f *field.Field, kind PadKind) *field.Field {
	g := field.New(f.Nx+1, f.Ny+1, f.Nz)
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				g.Set(x, y, z, f.At(x, y, z))
			}
		}
	}
	// +x face.
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			g.Set(f.Nx, y, z, extrapolate(kind,
				sampleBack(f, f.Nx, func(i int) float64 { return f.At(i, y, z) })))
		}
	}
	// +y face, including the new corner column (use the padded array so the
	// corner extrapolates from already-padded x values).
	for z := 0; z < f.Nz; z++ {
		for x := 0; x <= f.Nx; x++ {
			g.Set(x, f.Ny, z, extrapolate(kind,
				sampleBack(g, f.Ny, func(i int) float64 { return g.At(x, i, z) })))
		}
	}
	return g
}

// UnpadXY drops the last x and y layers, reversing PadXY.
func UnpadXY(f *field.Field) *field.Field {
	return f.SubBlock(0, 0, 0, f.Nx-1, f.Ny-1, f.Nz)
}

// sampleBack collects up to the last three samples before index n along a
// line accessor, most recent first.
func sampleBack(f *field.Field, n int, at func(int) float64) [3]float64 {
	var s [3]float64
	for i := 0; i < 3; i++ {
		j := n - 1 - i
		if j < 0 {
			j = 0
		}
		s[i] = at(j)
	}
	return s
}

// extrapolate predicts the next sample from the trailing samples s
// (s[0] = last, s[1] = second-to-last, s[2] = third-to-last).
func extrapolate(kind PadKind, s [3]float64) float64 {
	switch kind {
	case PadLinear:
		return 2*s[0] - s[1]
	case PadQuadratic:
		return 3*s[0] - 3*s[1] + s[2]
	default:
		return s[0]
	}
}

// MortonEncode interleaves the bits of (x, y, z) into a Morton (z-order)
// index. Coordinates must be < 2²¹.
func MortonEncode(x, y, z uint32) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

// MortonDecode reverses MortonEncode.
func MortonDecode(m uint64) (x, y, z uint32) {
	return compact(m), compact(m >> 1), compact(m >> 2)
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

func compact(m uint64) uint32 {
	x := m & 0x1249249249249249
	x = (x | x>>2) & 0x10c30c30c30c30c3
	x = (x | x>>4) & 0x100f00f00f00f00f
	x = (x | x>>8) & 0x1f0000ff0000ff
	x = (x | x>>16) & 0x1f00000000ffff
	x = (x | x>>32) & 0x1fffff
	return uint32(x)
}

// HZIndex converts a Morton index to its HZ-order (hierarchical Z-order)
// position, the traversal used by IDX-style multi-resolution storage
// (Kumar et al. [7]). maxBits is the total interleaved bit count (3×level
// bits for a cubic domain). Index 0 maps to 0; any other point's HZ level is
// determined by its lowest set bit.
func HZIndex(morton uint64, maxBits uint) uint64 {
	if morton == 0 {
		return 0
	}
	tz := uint(0)
	for morton&(1<<tz) == 0 {
		tz++
	}
	level := maxBits - tz
	return 1<<(level-1) + morton>>(tz+1)
}

// ZOrderFlatten1D traverses the owned unit blocks of a level in Morton order
// of their block coordinates and concatenates all samples (raster order
// within a block) into a 1D field — the zMesh-style layout that sacrifices
// 3D spatial information for locality across refinement levels.
func ZOrderFlatten1D(h *grid.Hierarchy, level int) *Merged {
	u := h.UnitBlockSize(level)
	blocks := h.OwnedBlocks(level)
	if len(blocks) == 0 {
		return &Merged{Data: nil, U: u}
	}
	sortBlocksMorton(blocks)
	out := field.New(u*u*u*len(blocks), 1, 1)
	pos := 0
	for _, bc := range blocks {
		b := h.BlockField(level, bc[0], bc[1], bc[2])
		copy(out.Data[pos:pos+b.Len()], b.Data)
		pos += b.Len()
	}
	return &Merged{Data: out, U: u, Blocks: blocks}
}

// ZOrderPlace1D writes the Morton-flattened blocks into dst, a full-domain
// array at the level's resolution.
func ZOrderPlace1D(m *Merged, dst *field.Field) error {
	if m.Data == nil {
		return nil
	}
	u := m.U
	per := u * u * u
	if m.Data.Len() != per*len(m.Blocks) {
		return fmt.Errorf("layout: 1D length %d inconsistent with %d blocks", m.Data.Len(), len(m.Blocks))
	}
	pos := 0
	for _, bc := range m.Blocks {
		if err := checkBlockFits(dst, bc, u); err != nil {
			return err
		}
		b := field.New(u, u, u)
		copy(b.Data, m.Data.Data[pos:pos+per])
		pos += per
		dst.SetBlock(bc[0]*u, bc[1]*u, bc[2]*u, b)
	}
	return nil
}

// ZOrderUnflatten1D reverses ZOrderFlatten1D.
func ZOrderUnflatten1D(m *Merged, h *grid.Hierarchy, level int) error {
	if err := checkUnitSize(m, h, level); err != nil {
		return err
	}
	if err := ZOrderPlace1D(m, h.Levels[level].Data); err != nil {
		return err
	}
	markOwned(m, h, level)
	return nil
}

// checkUnitSize verifies a merged array's unit block edge matches the
// destination level's.
func checkUnitSize(m *Merged, h *grid.Hierarchy, level int) error {
	if u := h.UnitBlockSize(level); m.U != u {
		return fmt.Errorf("layout: unit size %d != level unit size %d", m.U, u)
	}
	return nil
}

// checkBlockFits verifies block coordinates land inside dst (defensive: the
// block list may come from an untrusted container index).
func checkBlockFits(dst *field.Field, bc [3]int, u int) error {
	if bc[0] < 0 || bc[1] < 0 || bc[2] < 0 ||
		(bc[0]+1)*u > dst.Nx || (bc[1]+1)*u > dst.Ny || (bc[2]+1)*u > dst.Nz {
		return fmt.Errorf("layout: block %v of unit %d outside level array %v", bc, u, dst)
	}
	return nil
}

// markOwned flags the merged blocks as owned by the hierarchy level.
func markOwned(m *Merged, h *grid.Hierarchy, level int) {
	lv := h.Levels[level]
	for _, bc := range m.Blocks {
		lv.Owned[h.BlockIndex(bc[0], bc[1], bc[2])] = true
	}
}

func sortBlocksMorton(blocks [][3]int) {
	sort.Slice(blocks, func(i, j int) bool {
		a := MortonEncode(uint32(blocks[i][0]), uint32(blocks[i][1]), uint32(blocks[i][2]))
		b := MortonEncode(uint32(blocks[j][0]), uint32(blocks[j][1]), uint32(blocks[j][2]))
		return a < b
	})
}
