package layout

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/synth"
)

func testHierarchy(t *testing.T, seed int64) *grid.Hierarchy {
	t.Helper()
	f := synth.Generate(synth.Nyx, 32, seed)
	h, err := grid.BuildAMR(f, 8, []float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func emptyLike(t *testing.T, h *grid.Hierarchy) *grid.Hierarchy {
	t.Helper()
	g, err := grid.New(h.Nx, h.Ny, h.Nz, h.BlockB, len(h.Levels))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func levelsEqual(a, b *grid.Hierarchy, level int) bool {
	la, lb := a.Levels[level], b.Levels[level]
	for i, o := range la.Owned {
		if o != lb.Owned[i] {
			return false
		}
	}
	for _, bc := range a.OwnedBlocks(level) {
		if !a.BlockField(level, bc[0], bc[1], bc[2]).Equal(b.BlockField(level, bc[0], bc[1], bc[2])) {
			return false
		}
	}
	return true
}

func TestLinearMergeRoundTrip(t *testing.T) {
	h := testHierarchy(t, 1)
	for level := range h.Levels {
		m := LinearMerge(h, level)
		u := h.UnitBlockSize(level)
		if m.Data.Nx != u || m.Data.Ny != u || m.Data.Nz != u*len(m.Blocks) {
			t.Fatalf("level %d merged shape %v", level, m.Data)
		}
		g := emptyLike(t, h)
		if err := LinearUnmerge(m, g, level); err != nil {
			t.Fatal(err)
		}
		if !levelsEqual(h, g, level) {
			t.Fatalf("level %d linear round trip failed", level)
		}
	}
}

func TestStackMergeRoundTrip(t *testing.T) {
	h := testHierarchy(t, 2)
	for level := range h.Levels {
		m := StackMerge(h, level)
		// Cubic shape.
		if m.Data.Nx != m.Data.Ny || m.Data.Ny != m.Data.Nz {
			t.Fatalf("stack merge not cubic: %v", m.Data)
		}
		g := emptyLike(t, h)
		if err := StackUnmerge(m, g, level); err != nil {
			t.Fatal(err)
		}
		if !levelsEqual(h, g, level) {
			t.Fatalf("level %d stack round trip failed", level)
		}
	}
}

func TestTACPartitionCoversExactly(t *testing.T) {
	h := testHierarchy(t, 3)
	for level := range h.Levels {
		boxes := TACPartition(h, level)
		covered := make(map[[3]int]int)
		for _, b := range boxes {
			for dz := 0; dz < b.WZ; dz++ {
				for dy := 0; dy < b.WY; dy++ {
					for dx := 0; dx < b.WX; dx++ {
						covered[[3]int{b.X0 + dx, b.Y0 + dy, b.Z0 + dz}]++
					}
				}
			}
		}
		owned := h.OwnedBlocks(level)
		if len(covered) != len(owned) {
			t.Fatalf("level %d: covered %d blocks, own %d", level, len(covered), len(owned))
		}
		for _, bc := range owned {
			if covered[bc] != 1 {
				t.Fatalf("level %d block %v covered %d times", level, bc, covered[bc])
			}
		}
	}
}

func TestTACBoxRoundTrip(t *testing.T) {
	h := testHierarchy(t, 4)
	for level := range h.Levels {
		g := emptyLike(t, h)
		for _, b := range TACPartition(h, level) {
			data := ExtractBox(h, level, b)
			if err := InsertBox(g, level, b, data); err != nil {
				t.Fatal(err)
			}
		}
		if !levelsEqual(h, g, level) {
			t.Fatalf("level %d TAC round trip failed", level)
		}
	}
}

func TestTACMergesContiguousRegions(t *testing.T) {
	// Fully owned level → a single box.
	f := synth.Generate(synth.S3D, 32, 5)
	h, err := grid.FromUniform(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	boxes := TACPartition(h, 0)
	if len(boxes) != 1 {
		t.Fatalf("full level should partition into 1 box, got %d", len(boxes))
	}
	b := boxes[0]
	if b.WX != 4 || b.WY != 4 || b.WZ != 4 {
		t.Fatalf("box %+v, want full 4x4x4 block grid", b)
	}
}

func TestPadXYShapesAndValues(t *testing.T) {
	f := field.New(4, 4, 8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				f.Set(x, y, z, float64(x)+10*float64(y))
			}
		}
	}
	g := PadXY(f, PadLinear)
	if g.Nx != 5 || g.Ny != 5 || g.Nz != 8 {
		t.Fatalf("padded shape %v", g)
	}
	// Linear data → linear extrapolation is exact: pad x value = 4.
	if got := g.At(4, 2, 3); got != 4+20 {
		t.Fatalf("x pad = %v, want 24", got)
	}
	if got := g.At(2, 4, 3); got != 2+40 {
		t.Fatalf("y pad = %v, want 42", got)
	}
	// Corner also linear.
	if got := g.At(4, 4, 3); got != 4+40 {
		t.Fatalf("corner pad = %v, want 44", got)
	}
	// Unpad restores the original exactly.
	if !UnpadXY(g).Equal(f) {
		t.Fatal("UnpadXY(PadXY(f)) != f")
	}
}

func TestPadKinds(t *testing.T) {
	f := field.New(4, 1, 1)
	copy(f.Data, []float64{1, 2, 4, 8}) // geometric: quadratic ≠ linear ≠ constant
	c := PadXY(f, PadConstant).At(4, 0, 0)
	l := PadXY(f, PadLinear).At(4, 0, 0)
	q := PadXY(f, PadQuadratic).At(4, 0, 0)
	if c != 8 {
		t.Fatalf("constant pad = %v", c)
	}
	if l != 12 { // 2*8-4
		t.Fatalf("linear pad = %v", l)
	}
	if q != 14 { // 3*8-3*4+2
		t.Fatalf("quadratic pad = %v", q)
	}
}

func TestPadOverheadFormula(t *testing.T) {
	// Overhead must match the paper's (u+1)²/u² analysis.
	for _, u := range []int{4, 8, 16} {
		f := field.New(u, u, u*5)
		g := PadXY(f, PadLinear)
		got := float64(g.Len()) / float64(f.Len())
		want := float64((u+1)*(u+1)) / float64(u*u)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("u=%d overhead %v, want %v", u, got, want)
		}
	}
}

func TestMortonRoundTrip(t *testing.T) {
	prop := func(x, y, z uint32) bool {
		x &= 0x1fffff
		y &= 0x1fffff
		z &= 0x1fffff
		gx, gy, gz := MortonDecode(MortonEncode(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonOrderLocality(t *testing.T) {
	// The canonical first 8 Morton codes of the unit cube.
	want := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	got := []uint64{
		MortonEncode(0, 0, 0), MortonEncode(1, 0, 0),
		MortonEncode(0, 1, 0), MortonEncode(1, 1, 0),
		MortonEncode(0, 0, 1), MortonEncode(1, 0, 1),
		MortonEncode(0, 1, 1), MortonEncode(1, 1, 1),
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("morton[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestHZIndexBijective(t *testing.T) {
	// For an 8³ domain (9 bits of Morton code), HZ indices must be a
	// permutation of 0..511.
	const maxBits = 9
	seen := make(map[uint64]bool)
	for m := uint64(0); m < 512; m++ {
		hz := HZIndex(m, maxBits)
		if hz >= 512 {
			t.Fatalf("HZ index %d out of range for morton %d", hz, m)
		}
		if seen[hz] {
			t.Fatalf("duplicate HZ index %d", hz)
		}
		seen[hz] = true
	}
}

func TestZOrderFlattenRoundTrip(t *testing.T) {
	h := testHierarchy(t, 6)
	for level := range h.Levels {
		m := ZOrderFlatten1D(h, level)
		if m.Data.Ny != 1 || m.Data.Nz != 1 {
			t.Fatalf("flattened field not 1D: %v", m.Data)
		}
		g := emptyLike(t, h)
		if err := ZOrderUnflatten1D(m, g, level); err != nil {
			t.Fatal(err)
		}
		if !levelsEqual(h, g, level) {
			t.Fatalf("level %d z-order round trip failed", level)
		}
	}
}

func TestEmptyLevelMerges(t *testing.T) {
	// A hierarchy where level 0 owns nothing must not crash any arrangement.
	f := synth.Generate(synth.Nyx, 16, 7)
	h, err := grid.BuildAMR(f, 8, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := LinearMerge(h, 0); m.Data != nil {
		t.Fatal("empty level should merge to nil")
	}
	if m := StackMerge(h, 0); m.Data != nil {
		t.Fatal("empty level should stack to nil")
	}
	if boxes := TACPartition(h, 0); len(boxes) != 0 {
		t.Fatal("empty level should have no boxes")
	}
}
