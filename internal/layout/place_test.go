package layout

import (
	"testing"

	"repro/internal/field"
)

// TestPlaceMatchesUnmerge verifies the Place helpers (used by the
// random-access reader to rebuild one level without a hierarchy) produce
// exactly the level array the full unmerge path produces.
func TestPlaceMatchesUnmerge(t *testing.T) {
	h := testHierarchy(t, 5)
	type variant struct {
		name  string
		merge func(level int) *Merged
		place func(m *Merged, dst *field.Field) error
	}
	variants := []variant{
		{"linear", func(l int) *Merged { return LinearMerge(h, l) }, LinearPlace},
		{"stack", func(l int) *Merged { return StackMerge(h, l) }, StackPlace},
		{"zorder1d", func(l int) *Merged { return ZOrderFlatten1D(h, l) }, ZOrderPlace1D},
	}
	for _, v := range variants {
		for level := range h.Levels {
			m := v.merge(level)
			want := h.Levels[level].Data
			got := field.New(want.Nx, want.Ny, want.Nz)
			if err := v.place(m, got); err != nil {
				t.Fatalf("%s level %d: %v", v.name, level, err)
			}
			for _, bc := range m.Blocks {
				u := m.U
				a := want.SubBlock(bc[0]*u, bc[1]*u, bc[2]*u, u, u, u)
				b := got.SubBlock(bc[0]*u, bc[1]*u, bc[2]*u, u, u, u)
				if !a.Equal(b) {
					t.Fatalf("%s level %d block %v: placed data differs", v.name, level, bc)
				}
			}
		}
	}
}

// TestPlaceRejectsOutOfRangeBlocks locks the defensive bound: block
// coordinates from an untrusted index must not write outside the level
// array (SetBlock would panic).
func TestPlaceRejectsOutOfRangeBlocks(t *testing.T) {
	h := testHierarchy(t, 6)
	m := LinearMerge(h, 0)
	m.Blocks[0] = [3]int{1000, 0, 0}
	dst := field.New(h.Nx, h.Ny, h.Nz)
	if err := LinearPlace(m, dst); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	m.Blocks[0] = [3]int{-1, 0, 0}
	if err := LinearPlace(m, dst); err == nil {
		t.Fatal("negative block accepted")
	}
}
