package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func randomField(nx, ny, nz int, seed int64) *field.Field {
	rng := rand.New(rand.NewSource(seed))
	f := field.New(nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

func TestMSEZeroForIdentical(t *testing.T) {
	f := randomField(8, 8, 8, 1)
	if MSE(f, f) != 0 {
		t.Fatal("MSE of identical fields must be 0")
	}
}

func TestMSEKnownValue(t *testing.T) {
	a := field.New(2, 1, 1)
	b := field.New(2, 1, 1)
	a.Data[0], a.Data[1] = 1, 3
	b.Data[0], b.Data[1] = 2, 1
	// errors: 1 and 2 → MSE = (1+4)/2 = 2.5
	if got := MSE(a, b); got != 2.5 {
		t.Fatalf("MSE = %v, want 2.5", got)
	}
}

func TestPSNRInfiniteForIdentical(t *testing.T) {
	f := randomField(4, 4, 4, 2)
	if !math.IsInf(PSNR(f, f), 1) {
		t.Fatal("PSNR of identical fields must be +Inf")
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := field.New(2, 1, 1)
	b := field.New(2, 1, 1)
	a.Data[0], a.Data[1] = 0, 100 // range 100
	b.Data[0], b.Data[1] = 1, 100 // MSE = 0.5
	want := 20*math.Log10(100) - 10*math.Log10(0.5)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PSNR = %v, want %v", got, want)
	}
}

func TestPSNRMonotoneInError(t *testing.T) {
	f := randomField(8, 8, 8, 3)
	g1 := f.Clone()
	g2 := f.Clone()
	for i := range g1.Data {
		g1.Data[i] += 0.01
		g2.Data[i] += 0.1
	}
	if PSNR(f, g1) <= PSNR(f, g2) {
		t.Fatal("smaller error must give higher PSNR")
	}
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	f := randomField(32, 32, 1, 4)
	if s := SSIM2D(f, f); math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM of identical slices = %v, want 1", s)
	}
}

func TestSSIMDecreasesWithNoise(t *testing.T) {
	f := randomField(32, 32, 1, 5)
	rng := rand.New(rand.NewSource(6))
	small := f.Clone()
	big := f.Clone()
	for i := range f.Data {
		n := rng.NormFloat64()
		small.Data[i] += 0.05 * n
		big.Data[i] += 0.8 * n
	}
	sSmall := SSIM2D(f, small)
	sBig := SSIM2D(f, big)
	if !(sSmall > sBig) {
		t.Fatalf("SSIM should decrease with noise: %v vs %v", sSmall, sBig)
	}
	if sBig < -1.01 || sSmall > 1.01 {
		t.Fatalf("SSIM out of [-1,1]: %v %v", sBig, sSmall)
	}
}

func TestSSIM3DMeanOfSlices(t *testing.T) {
	f := randomField(16, 16, 4, 7)
	g := f.Clone()
	if s := SSIM3D(f, g); math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM3D identical = %v", s)
	}
}

func TestSSIMCentralUsesMiddleSlice(t *testing.T) {
	f := randomField(16, 16, 8, 8)
	g := f.Clone()
	// Corrupt a non-central slice only: central SSIM must stay 1.
	for x := 0; x < 16; x++ {
		g.Set(x, 0, 0, 99)
	}
	if s := SSIMCentral(f, g); math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIMCentral affected by other slice: %v", s)
	}
}

func TestCompressionRatioAndBitRate(t *testing.T) {
	if CompressionRatio(1000, 10) != 100 {
		t.Fatal("CR wrong")
	}
	if !math.IsInf(CompressionRatio(10, 0), 1) {
		t.Fatal("CR with 0 bytes should be +Inf")
	}
	if BitRate(100, 100) != 8 {
		t.Fatal("BitRate wrong")
	}
}

func TestNRMSE(t *testing.T) {
	a := field.New(2, 1, 1)
	b := field.New(2, 1, 1)
	a.Data[0], a.Data[1] = 0, 10
	b.Data[0], b.Data[1] = 1, 10
	want := math.Sqrt(0.5) / 10
	if got := NRMSE(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NRMSE = %v, want %v", got, want)
	}
}

func TestQuickSSIMSymmetricRange(t *testing.T) {
	// Property: SSIM is within [-1, 1+eps] for random perturbations.
	prop := func(seed int64) bool {
		f := randomField(16, 16, 1, seed)
		g := randomField(16, 16, 1, seed+1)
		s := SSIM2D(f, g)
		return s >= -1.000001 && s <= 1.000001 && !math.IsNaN(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
