// Package metrics implements the data-quality measures used throughout the
// paper's evaluation: MSE/PSNR, maximum pointwise error, SSIM (on 2D slices
// and averaged over a volume), and compression-ratio bookkeeping.
package metrics

import (
	"math"

	"repro/internal/field"
)

// MSE returns the mean squared error between two same-shaped fields.
func MSE(a, b *field.Field) float64 {
	if !a.SameShape(b) {
		panic("metrics: MSE shape mismatch")
	}
	s := 0.0
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return s / float64(a.Len())
}

// MaxAbsError returns the L∞ error between two same-shaped fields.
func MaxAbsError(a, b *field.Field) float64 { return a.MaxAbsDiff(b) }

// PSNR returns the peak signal-to-noise ratio in dB, using the value range of
// the reference field a as the peak, matching the convention of the SZ/ZFP
// literature (and of the paper): PSNR = 20·log10(range) − 10·log10(MSE).
// It returns +Inf for identical fields.
func PSNR(a, b *field.Field) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	rng := a.ValueRange()
	if rng == 0 {
		rng = 1
	}
	return 20*math.Log10(rng) - 10*math.Log10(mse)
}

// NRMSE returns the range-normalized root mean squared error.
func NRMSE(a, b *field.Field) float64 {
	rng := a.ValueRange()
	if rng == 0 {
		rng = 1
	}
	return math.Sqrt(MSE(a, b)) / rng
}

// CompressionRatio returns originalBytes/compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return math.Inf(1)
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// BitRate returns the number of compressed bits per sample for a field of n
// float64 samples compressed to compressedBytes.
func BitRate(n, compressedBytes int) float64 {
	if n == 0 {
		return 0
	}
	return 8 * float64(compressedBytes) / float64(n)
}

// ssimWindow is the Gaussian window size used by SSIM (the standard 11×11,
// σ=1.5 window of Wang et al. 2004).
const ssimWindow = 11

var ssimKernel = gaussianKernel(ssimWindow, 1.5)

func gaussianKernel(n int, sigma float64) []float64 {
	k := make([]float64, n)
	c := float64(n-1) / 2
	sum := 0.0
	for i := range k {
		d := (float64(i) - c) / sigma
		k[i] = math.Exp(-0.5 * d * d)
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// SSIM2D computes the mean structural similarity index between two 2D slices
// (fields with Nz == 1), using the standard Gaussian-weighted 11×11 window
// and constants C1=(0.01·L)², C2=(0.03·L)² with L the value range of a.
func SSIM2D(a, b *field.Field) float64 {
	if !a.SameShape(b) {
		panic("metrics: SSIM2D shape mismatch")
	}
	if a.Nz != 1 {
		panic("metrics: SSIM2D requires Nz == 1")
	}
	l := a.ValueRange()
	if l == 0 {
		l = 1
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)

	nx, ny := a.Nx, a.Ny
	// Separable Gaussian filtering of a, b, a², b², a·b.
	mu1 := filter2D(a.Data, nx, ny)
	mu2 := filter2D(b.Data, nx, ny)
	sq1 := make([]float64, nx*ny)
	sq2 := make([]float64, nx*ny)
	s12 := make([]float64, nx*ny)
	for i := range sq1 {
		sq1[i] = a.Data[i] * a.Data[i]
		sq2[i] = b.Data[i] * b.Data[i]
		s12[i] = a.Data[i] * b.Data[i]
	}
	e11 := filter2D(sq1, nx, ny)
	e22 := filter2D(sq2, nx, ny)
	e12 := filter2D(s12, nx, ny)

	sum := 0.0
	for i := range mu1 {
		m1, m2 := mu1[i], mu2[i]
		v1 := e11[i] - m1*m1
		v2 := e22[i] - m2*m2
		cov := e12[i] - m1*m2
		s := ((2*m1*m2 + c1) * (2*cov + c2)) / ((m1*m1 + m2*m2 + c1) * (v1 + v2 + c2))
		sum += s
	}
	return sum / float64(len(mu1))
}

// filter2D applies the separable Gaussian SSIM kernel with clamped borders.
func filter2D(data []float64, nx, ny int) []float64 {
	half := ssimWindow / 2
	tmp := make([]float64, nx*ny)
	out := make([]float64, nx*ny)
	// Horizontal pass.
	for y := 0; y < ny; y++ {
		row := data[y*nx : (y+1)*nx]
		for x := 0; x < nx; x++ {
			s := 0.0
			for k := 0; k < ssimWindow; k++ {
				xi := clamp(x+k-half, 0, nx-1)
				s += ssimKernel[k] * row[xi]
			}
			tmp[y*nx+x] = s
		}
	}
	// Vertical pass.
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			s := 0.0
			for k := 0; k < ssimWindow; k++ {
				yi := clamp(y+k-half, 0, ny-1)
				s += ssimKernel[k] * tmp[yi*nx+x]
			}
			out[y*nx+x] = s
		}
	}
	return out
}

// SSIM3D computes the mean of SSIM2D over all z-slices of a volume — the
// usual way SSIM is reported for 3D scientific data (and cheap enough to run
// in benches). Both fields must have the same shape.
func SSIM3D(a, b *field.Field) float64 {
	if !a.SameShape(b) {
		panic("metrics: SSIM3D shape mismatch")
	}
	sum := 0.0
	for z := 0; z < a.Nz; z++ {
		sum += SSIM2D(a.SliceZ(z), b.SliceZ(z))
	}
	return sum / float64(a.Nz)
}

// SSIMCentral computes SSIM on the central z-slice only, matching the
// "one 2D slice" visual comparisons in the paper's figures.
func SSIMCentral(a, b *field.Field) float64 {
	z := a.Nz / 2
	return SSIM2D(a.SliceZ(z), b.SliceZ(z))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
