// Package core implements the paper's primary contribution: SZ3MR, a
// multi-resolution compression pipeline that arranges each level's unit
// blocks into a compressor-friendly layout (§III-A), optionally pads the two
// small dimensions with extrapolated layers, applies a per-interpolation-
// level adaptive error bound, and drives one of three error-bounded
// compressors (SZ3 / SZ2 / ZFP stand-ins) over the result.
//
// The same pipeline, configured with the paper's baseline arrangements,
// reproduces the comparison systems: Baseline-SZ3 (plain linear merge),
// AMRIC-SZ3 (cubic stacking), TAC-SZ3 (adjacency boxes compressed
// separately), and a zMesh-style 1D z-order layout.
//
// The two pipeline stages are exposed separately — Prepare (the paper's
// "pre-processing": collecting data into the compression buffer) and
// Compressed (compression proper) — so the in-situ output-time breakdown of
// Table IV can be measured.
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strings"

	"repro/internal/codec"
	"repro/internal/faultio"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/parallel"
	"repro/internal/postproc"
	"repro/internal/sz2"
	"repro/internal/sz3"
)

// Container format versions. Version 2 widened SZ2BlockSize from a single
// (silently truncating) byte to a uvarint; version 3 appends a
// self-describing block-index footer (internal/index) after the last
// stream for random access (the v3 body is byte-identical to a v2 body,
// the sequential decoder never reads the footer, and version-1/2
// containers remain readable); version 4 adds one codec wire-ID byte per
// stream so levels may use different codecs (Options.LevelCodecs).
// Containers whose levels all share the header codec are still written as
// version 3, byte-identical to before — version 4 appears on the wire only
// when a level actually overrides the codec.
const (
	// containerMagic opens every container; the version byte follows it.
	containerMagic = "MRWF"
	// containerVersionV1 stored SZ2BlockSize in a single byte.
	containerVersionV1 = 1
	// containerVersionV2 widened SZ2BlockSize to a uvarint.
	containerVersionV2 = 2
	// containerVersion (v3) appended the seekable index footer.
	containerVersion = 3
	// containerVersionMixed (v4) added a per-stream codec byte.
	containerVersionMixed = 4
)

// maxSZ2BlockSize bounds the v2 SZ2BlockSize field on both write and read:
// large enough for any real block size, small enough that a corrupt uvarint
// can neither wrap int nor smuggle an absurd value past the header scan.
const maxSZ2BlockSize = 1 << 30

// maxHeaderField bounds the scalar container-header fields beyond the axis
// dimensions (block size, level count, TAC box geometry): generous for any
// real grid, small enough that the int conversion and every downstream
// product stay well inside int64.
const maxHeaderField = 1 << 24

// Compressor selects a backend codec by its wire ID (see internal/codec;
// the constants below alias the registry's built-in IDs). Any registered
// codec ID is valid here — the pipeline dispatches through the registry,
// never through per-backend switches.
type Compressor byte

// Built-in backend codecs.
const (
	SZ3   = Compressor(codec.SZ3ID)   // global interpolation (default)
	SZ2   = Compressor(codec.SZ2ID)   // block-wise Lorenzo/regression
	ZFP   = Compressor(codec.ZFPID)   // block-wise transform
	Flate = Compressor(codec.FlateID) // lossless raw+flate passthrough
)

func (c Compressor) String() string {
	if cd, ok := codec.ByID(byte(c)); ok {
		return strings.ToUpper(cd.Name())
	}
	return fmt.Sprintf("Compressor(%d)", byte(c))
}

// Arrangement selects how a level's unit blocks are laid out before
// compression (Fig. 6 of the paper).
type Arrangement byte

// Arrangements.
const (
	// ArrangeLinear concatenates unit blocks along z (the baseline layout,
	// and — with padding and adaptive eb — the paper's SZ3MR layout).
	ArrangeLinear Arrangement = iota
	// ArrangeStack stacks unit blocks into a near-cube (AMRIC).
	ArrangeStack
	// ArrangeTAC merges adjacent blocks into boxes compressed separately.
	ArrangeTAC
	// ArrangeZOrder1D flattens blocks along a Morton curve into a 1D array
	// (zMesh-style; loses higher-dimensional spatial information).
	ArrangeZOrder1D
)

func (a Arrangement) String() string {
	switch a {
	case ArrangeLinear:
		return "linear"
	case ArrangeStack:
		return "stack"
	case ArrangeTAC:
		return "tac"
	case ArrangeZOrder1D:
		return "zorder1d"
	}
	return fmt.Sprintf("Arrangement(%d)", byte(a))
}

// Options configures the multi-resolution pipeline.
type Options struct {
	// EB is the absolute error bound applied to every level (> 0).
	EB float64
	// Compressor selects the backend (default SZ3).
	Compressor Compressor
	// Arrangement selects the unit-block layout (default ArrangeLinear).
	Arrangement Arrangement
	// Pad enables the paper's padding improvement: one linearly-extrapolated
	// layer on each small dimension of a linear merge, applied only when the
	// unit block size exceeds 4 (the overhead analysis of §III-A).
	Pad bool
	// PadKind selects the extrapolation (default layout.PadLinear).
	PadKind layout.PadKind
	// AdaptiveEB enables the per-interpolation-level error bound
	// eb_l = eb / min(α^(L−l), β) for the SZ3 backend.
	AdaptiveEB bool
	// Alpha and Beta parameterize AdaptiveEB (defaults 2.25 and 8).
	Alpha, Beta float64
	// SZ2BlockSize overrides SZ2's block size (default 4, the AMRIC-tuned
	// value for multi-resolution data).
	SZ2BlockSize int
	// Interp selects the SZ3 interpolant (default linear).
	Interp sz3.Interpolant
	// Workers bounds the number of goroutines compressing (or decompressing)
	// backend streams concurrently — one stream per merged level, one per
	// TAC box. Default runtime.GOMAXPROCS(0); 1 gives fully serial
	// execution. The container bytes are identical for every Workers value.
	Workers int
	// EntropyLanes selects the entropy stage's interleaved lane count for
	// the huffman-based backends (sz2, sz3): 0 or 1 write the single-lane
	// format (the default — containers stay byte-identical to earlier
	// versions), codec.EntropyLanesAuto (any negative) picks from each
	// stream's size, and an explicit power of two (≤ 64) writes that many
	// lanes per code stream. Interleaved streams decode their lanes on up
	// to Workers goroutines; decode needs no option — the format is
	// self-describing.
	EntropyLanes int
	// LevelCodecs overrides the codec per resolution level (key = level,
	// 0 = finest); levels not named use Compressor. The canonical use is
	// mixing precision across the hierarchy — coarse levels lossless
	// (Flate), fine levels error-bounded — or keeping mask/ID fields
	// bit-exact. A container with at least one effective override is
	// written as format version 4 (one codec wire-ID byte per stream);
	// without overrides the bytes are identical to version 3.
	LevelCodecs map[int]Compressor
}

// codecFor returns the codec compressing (and decompressing) a level's
// streams: the per-level override when present, else the container codec.
func (o *Options) codecFor(level int) Compressor {
	if c, ok := o.LevelCodecs[level]; ok {
		return c
	}
	return o.Compressor
}

// params flattens the options into the codec-facing parameter set.
func (o Options) params() codec.Params {
	return codec.Params{
		EB:           o.EB,
		AdaptiveEB:   o.AdaptiveEB,
		Alpha:        o.Alpha,
		Beta:         o.Beta,
		SZ2BlockSize: o.SZ2BlockSize,
		Interp:       byte(o.Interp),
		EntropyLanes: o.EntropyLanes,
	}
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Alpha == 0 {
		v.Alpha = 2.25
	}
	if v.Beta == 0 {
		v.Beta = 8
	}
	if v.SZ2BlockSize == 0 {
		v.SZ2BlockSize = sz2.MultiResBlockSize
	}
	if v.Workers == 0 {
		v.Workers = parallel.Workers()
	}
	return v
}

// SZ3MROptions returns the paper's full SZ3MR configuration (linear merge +
// padding + adaptive error bound), the "Ours (pad+eb)" curve.
func SZ3MROptions(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeLinear, Pad: true, AdaptiveEB: true}
}

// SZ3MRPadOnlyOptions returns the intermediate "Ours (pad)" configuration.
func SZ3MRPadOnlyOptions(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeLinear, Pad: true}
}

// BaselineSZ3Options returns the plain linear-merge SZ3 baseline.
func BaselineSZ3Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeLinear}
}

// AMRICSZ3Options returns the AMRIC-style cubic-stacking SZ3 configuration.
func AMRICSZ3Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeStack}
}

// TACSZ3Options returns the TAC-style adjacency-merge SZ3 configuration.
func TACSZ3Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeTAC}
}

// AMRICSZ2Options returns AMRIC's SZ2 configuration for multi-resolution
// data (linear merge, 4³ SZ2 blocks) used by the post-processing tables.
func AMRICSZ2Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ2, Arrangement: ArrangeLinear}
}

// MRZFPOptions returns the ZFP backend over a linear merge.
func MRZFPOptions(eb float64) Options {
	return Options{EB: eb, Compressor: ZFP, Arrangement: ArrangeLinear}
}

// preparedLevel is one level's compression-ready buffers.
type preparedLevel struct {
	blocks [][3]int       // merge order
	merged *field.Field   // linear/stack/zorder arrangements (nil if empty)
	padded bool           // whether merged carries pad layers
	boxes  []layout.Box   // TAC arrangement
	boxFld []*field.Field // TAC box data
}

// Prepared holds the output of the pre-processing stage: merged (and
// possibly padded) per-level arrays ready for the backend compressor.
type Prepared struct {
	nx, ny, nz int
	blockB     int
	opt        Options
	levels     []preparedLevel
}

// Prepare runs the pre-processing stage: extract each level's unit blocks
// and arrange (and pad) them into compression buffers.
func Prepare(h *grid.Hierarchy, opt Options) (*Prepared, error) {
	if opt.EB <= 0 {
		return nil, errors.New("core: error bound must be positive")
	}
	opt = (&opt).withDefaults()
	p := &Prepared{nx: h.Nx, ny: h.Ny, nz: h.Nz, blockB: h.BlockB, opt: opt}
	for li := range h.Levels {
		var pl preparedLevel
		u := h.UnitBlockSize(li)
		switch opt.Arrangement {
		case ArrangeLinear:
			m := layout.LinearMerge(h, li)
			pl.blocks = m.Blocks
			pl.merged = m.Data
			if opt.Pad && u > 4 && m.Data != nil {
				pl.merged = layout.PadXY(m.Data, opt.PadKind)
				pl.padded = true
			}
		case ArrangeStack:
			m := layout.StackMerge(h, li)
			pl.blocks = m.Blocks
			pl.merged = m.Data
		case ArrangeZOrder1D:
			m := layout.ZOrderFlatten1D(h, li)
			pl.blocks = m.Blocks
			pl.merged = m.Data
		case ArrangeTAC:
			pl.boxes = layout.TACPartition(h, li)
			for _, b := range pl.boxes {
				pl.boxFld = append(pl.boxFld, layout.ExtractBox(h, li, b))
			}
		default:
			return nil, fmt.Errorf("core: unknown arrangement %d", opt.Arrangement)
		}
		p.levels = append(p.levels, pl)
	}
	return p, nil
}

// compressField dispatches one buffer to the codec named by c through the
// registry.
func compressField(f *field.Field, opt Options, c Compressor) ([]byte, error) {
	cd, ok := codec.ByID(byte(c))
	if !ok {
		return nil, fmt.Errorf("core: %w", codec.ErrUnknownID(byte(c)))
	}
	return cd.Compress(f, opt.params())
}

func decompressField(data []byte, c Compressor) (*field.Field, error) {
	return decompressFieldCtx(context.Background(), data, c)
}

func decompressFieldCtx(ctx context.Context, data []byte, c Compressor) (f *field.Field, err error) {
	return decompressFieldWorkersCtx(ctx, data, c, 1)
}

func decompressFieldWorkersCtx(ctx context.Context, data []byte, c Compressor, workers int) (f *field.Field, err error) {
	cd, ok := codec.ByID(byte(c))
	if !ok {
		return nil, fmt.Errorf("core: %w", codec.ErrUnknownID(byte(c)))
	}
	// Corrupt input can drive a codec into an out-of-range panic before its
	// own validation notices the damage; convert that to a typed Corrupt
	// error here — the one dispatch point every decode path funnels through
	// — so a single bad stream cannot take down a serving process (worker
	// pools do not recover panics in their goroutines).
	defer func() {
		if r := recover(); r != nil {
			f, err = nil, faultio.Corrupt(fmt.Errorf("core: %s decode panicked: %v", cd.Name(), r))
		}
	}()
	return codec.DecompressWorkersCtx(ctx, cd, data, workers)
}

// Compressed is a serialized multi-resolution compression result.
type Compressed struct {
	// Blob is the self-describing container.
	Blob []byte
	// LevelBytes records the compressed payload per level (diagnostics).
	LevelBytes []int
}

// Size returns the container size in bytes.
func (c *Compressed) Size() int { return len(c.Blob) }

// compressJob names one backend stream to produce: a level's merged field
// (box < 0) or one TAC box, under the level's codec.
type compressJob struct {
	level, box int
	codec      Compressor
	f          *field.Field
}

// jobs lists every stream the container will carry, in serialization order.
func (p *Prepared) jobs() []compressJob {
	var jobs []compressJob
	for li, pl := range p.levels {
		c := p.opt.codecFor(li)
		if p.opt.Arrangement == ArrangeTAC {
			for bi, bf := range pl.boxFld {
				jobs = append(jobs, compressJob{li, bi, c, bf})
			}
			continue
		}
		if pl.merged != nil {
			jobs = append(jobs, compressJob{li, -1, c, pl.merged})
		}
	}
	return jobs
}

// streamErr annotates a stream-scoped error with its level (and TAC box).
func streamErr(level, box int, err error) error {
	if box >= 0 {
		return fmt.Errorf("core: level %d box %d: %w", level, box, err)
	}
	return fmt.Errorf("core: level %d: %w", level, err)
}

// compressStream dispatches one job to its codec with level/box error
// context (shared by the monolithic and streaming write paths).
func (p *Prepared) compressStream(j compressJob) ([]byte, error) {
	s, err := compressField(j.f, p.opt, j.codec)
	if err != nil {
		return nil, streamErr(j.level, j.box, err)
	}
	return s, nil
}

// wireVersion picks the container format version: 4 only when some level
// that actually emits a stream overrides the codec, 3 (byte-identical to
// every pre-registry container) otherwise.
func (p *Prepared) wireVersion() byte {
	for li, pl := range p.levels {
		if pl.merged == nil && len(pl.boxFld) == 0 {
			continue // empty level: no stream carries its codec
		}
		if p.opt.codecFor(li) != p.opt.Compressor {
			return containerVersionMixed
		}
	}
	return containerVersion
}

// checkCompressOptions validates the write-time option invariants shared by
// Compress and CompressTo.
func (p *Prepared) checkCompressOptions() error {
	if p.opt.SZ2BlockSize < 0 || p.opt.SZ2BlockSize > maxSZ2BlockSize {
		return fmt.Errorf("core: SZ2 block size %d out of range [0, %d]", p.opt.SZ2BlockSize, maxSZ2BlockSize)
	}
	if _, ok := codec.ByID(byte(p.opt.Compressor)); !ok {
		return fmt.Errorf("core: %w", codec.ErrUnknownID(byte(p.opt.Compressor)))
	}
	if !codec.ValidEntropyLanes(p.opt.EntropyLanes) {
		return fmt.Errorf("core: entropy lane count %d is not auto, 0/1, or a power of two ≤ 64", p.opt.EntropyLanes)
	}
	for l, c := range p.opt.LevelCodecs {
		if l < 0 || l >= len(p.levels) {
			return fmt.Errorf("core: LevelCodecs names level %d, container has levels [0,%d)", l, len(p.levels))
		}
		if _, ok := codec.ByID(byte(c)); !ok {
			return fmt.Errorf("core: level %d: %w", l, codec.ErrUnknownID(byte(c)))
		}
	}
	return nil
}

// Compress runs the compression stage over prepared buffers and serializes
// everything into an in-memory container. Streams are compressed by a pool
// of p.opt.Workers goroutines and collected in order, so the container is
// byte-identical for every worker count — and byte-identical to what
// CompressTo streams out. This path holds every compressed stream plus the
// assembled blob in memory at once; CompressTo bounds that by one worker
// wave instead.
func (p *Prepared) Compress() (*Compressed, error) {
	if err := p.checkCompressOptions(); err != nil {
		return nil, err
	}
	jobs := p.jobs()
	streams, err := parallel.MapErrWorkers(len(jobs), p.opt.Workers, func(i int) ([]byte, error) {
		return p.compressStream(jobs[i])
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	streamTotal := 0
	for _, s := range streams {
		streamTotal += len(s)
	}
	buf.Grow(streamTotal + 16*len(streams) + 256) // streams + per-stream/box headers
	ix, levelBytes, err := p.writeContainer(&wireWriter{w: &buf}, func(i int) ([]byte, error) {
		return streams[i], nil
	})
	if err != nil {
		return nil, err
	}
	return &Compressed{Blob: ix.AppendFooter(buf.Bytes()), LevelBytes: levelBytes}, nil
}

// indexOpts echoes the container options into their index wire form.
func indexOpts(o Options) index.Opts {
	return index.Opts{
		Compressor:  byte(o.Compressor),
		Arrangement: byte(o.Arrangement),
		Pad:         o.Pad,
		PadKind:     byte(o.PadKind),
		AdaptiveEB:  o.AdaptiveEB,
		SZ2Block:    o.SZ2BlockSize,
		Interp:      byte(o.Interp),
		EB:          o.EB,
		Alpha:       o.Alpha,
		Beta:        o.Beta,
	}
}

// OptionsFromIndex reconstructs decode options from an index's header echo
// (the inverse of the echo written by Compress).
func OptionsFromIndex(o index.Opts) Options {
	return Options{
		Compressor:   Compressor(o.Compressor),
		Arrangement:  Arrangement(o.Arrangement),
		Pad:          o.Pad,
		PadKind:      layout.PadKind(o.PadKind),
		AdaptiveEB:   o.AdaptiveEB,
		SZ2BlockSize: o.SZ2Block,
		Interp:       sz3.Interpolant(o.Interp),
		EB:           o.EB,
		Alpha:        o.Alpha,
		Beta:         o.Beta,
	}
}

// CompressHierarchy runs both stages.
func CompressHierarchy(h *grid.Hierarchy, opt Options) (*Compressed, error) {
	p, err := Prepare(h, opt)
	if err != nil {
		return nil, err
	}
	return p.Compress()
}

// postHook transforms a level's decoded field (after unpadding, before
// unmerging) — the insertion point for error-bounded post-processing. Hooks
// may be invoked concurrently from several decode workers and must be safe
// for parallel use.
type postHook func(level, unitSize int, opt Options, f *field.Field) *field.Field

// Decompress reconstructs the multi-resolution hierarchy from a container,
// decoding backend streams with the default worker count.
func Decompress(blob []byte) (*grid.Hierarchy, error) {
	return decompressImpl(blob, nil, 0)
}

// DecompressWorkers is Decompress with an explicit bound on concurrent
// stream decoders (1 = serial, 0 = runtime.GOMAXPROCS(0)).
func DecompressWorkers(blob []byte, workers int) (*grid.Hierarchy, error) {
	return decompressImpl(blob, nil, workers)
}

// PostBlockSize returns the block size whose boundaries the post-processor
// should smooth for opt.Compressor: the codec's own block for block-wise
// backends (SZ2/ZFP), the unit block size for the partitioned global case
// (§III-B: "the partition size for multi-resolution data is larger than
// the block sizes used by SZ/ZFP — 16 vs 4"), or 0 when the codec produces
// no block artifacts (lossless passthrough).
func PostBlockSize(opt Options, unitSize int) int {
	cd, ok := codec.ByID(byte(opt.Compressor))
	if !ok {
		return unitSize
	}
	return cd.PostBlockSize(opt.params(), unitSize)
}

// PostCandidates returns the paper's intensity candidate set for the
// backend (nil when post-processing never applies to it).
func PostCandidates(c Compressor) []float64 {
	if cd, ok := codec.ByID(byte(c)); ok {
		return cd.PostCandidates()
	}
	return postproc.SZ2Candidates()
}

// RoundTrip returns a single-field compress+decompress closure for the
// configured backend at the working error bound, used for sampling.
func (o Options) RoundTrip() postproc.RoundTrip {
	opt := (&o).withDefaults()
	return func(f *field.Field) (*field.Field, error) {
		data, err := compressField(f, opt, opt.Compressor)
		if err != nil {
			return nil, err
		}
		return decompressField(data, opt.Compressor)
	}
}

// FindIntensities runs the paper's sample-and-model stage on the prepared
// buffers: for each level it compresses a ≤1.5% sample and selects the
// per-dimension post-processing intensity by stochastic descent over the
// backend's candidate set. Levels without data get zero intensity.
func (p *Prepared) FindIntensities() ([]postproc.Intensity, error) {
	out := make([]postproc.Intensity, len(p.levels))
	for li, pl := range p.levels {
		// Sample under the codec that will actually compress this level.
		lopt := p.opt
		lopt.Compressor = p.opt.codecFor(li)
		if cd, ok := codec.ByID(byte(lopt.Compressor)); ok && cd.Lossless() {
			continue // bit-exact level: nothing to repair
		}
		var sample *field.Field
		switch {
		case pl.merged != nil:
			sample = pl.merged
		case len(pl.boxFld) > 0:
			sample = largestField(pl.boxFld)
		default:
			continue
		}
		u := p.blockB >> li
		bs := PostBlockSize(lopt, u)
		po := postproc.Options{EB: lopt.EB, BlockSize: bs, Candidates: PostCandidates(lopt.Compressor)}
		set, err := postproc.CollectSamples(sample, lopt.RoundTrip(), po)
		if err != nil {
			// A level too small to sample simply goes unprocessed.
			continue
		}
		out[li] = set.FindIntensity()
	}
	return out, nil
}

func largestField(fs []*field.Field) *field.Field {
	best := fs[0]
	for _, f := range fs[1:] {
		if f.Len() > best.Len() {
			best = f
		}
	}
	return best
}

// DecompressProcessed decompresses and applies error-bounded post-processing
// with the given per-level intensities to each level's decoded array before
// reassembly.
func DecompressProcessed(blob []byte, intens []postproc.Intensity) (*grid.Hierarchy, error) {
	return DecompressProcessedWorkers(blob, intens, 0)
}

// DecompressProcessedWorkers is DecompressProcessed with an explicit bound
// on concurrent stream decoders.
func DecompressProcessedWorkers(blob []byte, intens []postproc.Intensity, workers int) (*grid.Hierarchy, error) {
	hook := func(level, unitSize int, opt Options, f *field.Field) *field.Field {
		if level >= len(intens) {
			return f
		}
		a := intens[level]
		if a == (postproc.Intensity{}) {
			return f
		}
		// opt.Compressor is the stream's own codec here (decompressImpl
		// rewrites it per stream); a codec without block artifacts — the
		// lossless passthrough — reports block size 0 and is left alone.
		bs := PostBlockSize(opt, unitSize)
		if bs <= 0 {
			return f
		}
		return postproc.Process(f, a, postproc.Options{EB: opt.EB, BlockSize: bs})
	}
	return decompressImpl(blob, hook, workers)
}

// decodedLevel is one level's parsed container metadata plus its raw
// (still-compressed) payload slices.
type decodedLevel struct {
	blocks [][3]int
	padded bool
	boxes  []layout.Box
	// streams holds one compressed payload per TAC box, or a single entry
	// for the level's merged field (empty for an empty level).
	streams [][]byte
	// offsets holds each stream's absolute byte offset in the container,
	// parallel to streams (used to synthesize an index for random access
	// over containers without a footer).
	offsets []int64
	// codecs holds each stream's codec, parallel to streams: the per-stream
	// wire ID for version-4 containers, the header codec otherwise.
	codecs []Compressor
}

// container is the fully scanned (but not yet decoded) container.
type container struct {
	version byte
	opt     Options
	levels  []decodedLevel
}

// parseContainer scans the container serially: header, per-level block
// lists, box geometry, and the offsets of every compressed stream. All
// structural validation happens here so the concurrent decode stage only
// sees well-delimited payloads. It returns the parsed structure and the
// allocated (still empty) hierarchy.
func parseContainer(blob []byte) (*container, *grid.Hierarchy, error) {
	if len(blob) < 12 || string(blob[:4]) != containerMagic {
		return nil, nil, errors.New("core: bad magic")
	}
	version := blob[4]
	if version < containerVersionV1 || version > containerVersionMixed {
		return nil, nil, fmt.Errorf("core: unsupported version %d", version)
	}
	buf := blob[5:]
	need := func(n int) error {
		if len(buf) < n {
			return errors.New("core: truncated container")
		}
		return nil
	}
	readU := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, errors.New("core: truncated varint")
		}
		buf = buf[n:]
		return v, nil
	}
	readV := func() (int64, error) {
		v, n := binary.Varint(buf)
		if n <= 0 {
			return 0, errors.New("core: truncated varint")
		}
		buf = buf[n:]
		return v, nil
	}
	readF := func() (float64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
		return v, nil
	}
	if err := need(5); err != nil {
		return nil, nil, err
	}
	c := &container{version: version}
	opt := &c.opt
	opt.Compressor = Compressor(buf[0])
	opt.Arrangement = Arrangement(buf[1])
	opt.Pad = buf[2] != 0
	opt.PadKind = layout.PadKind(buf[3])
	opt.AdaptiveEB = buf[4] != 0
	buf = buf[5:]
	if version == containerVersionV1 {
		// v1 stored SZ2BlockSize in one byte (values > 255 wrapped on write).
		if err := need(2); err != nil {
			return nil, nil, err
		}
		opt.SZ2BlockSize = int(buf[0])
		opt.Interp = sz3.Interpolant(buf[1])
		buf = buf[2:]
	} else {
		bs, err := readU()
		if err != nil {
			return nil, nil, err
		}
		if bs > maxSZ2BlockSize {
			return nil, nil, fmt.Errorf("core: implausible SZ2 block size %d", bs)
		}
		opt.SZ2BlockSize = int(bs)
		if err := need(1); err != nil {
			return nil, nil, err
		}
		opt.Interp = sz3.Interpolant(buf[0])
		buf = buf[1:]
	}
	var err error
	if opt.EB, err = readF(); err != nil {
		return nil, nil, err
	}
	if opt.Alpha, err = readF(); err != nil {
		return nil, nil, err
	}
	if opt.Beta, err = readF(); err != nil {
		return nil, nil, err
	}
	// The five geometry fields are validated in their decoded uint64 form
	// before any int conversion: CheckDims bounds the axes and their
	// product, and the remaining scalars get the generic header cap, so a
	// hostile container can neither wrap an int nor drive grid.New into a
	// huge allocation.
	nx64, err := readU()
	if err != nil {
		return nil, nil, err
	}
	ny64, err := readU()
	if err != nil {
		return nil, nil, err
	}
	nz64, err := readU()
	if err != nil {
		return nil, nil, err
	}
	blockB64, err := readU()
	if err != nil {
		return nil, nil, err
	}
	nLevels64, err := readU()
	if err != nil {
		return nil, nil, err
	}
	nx, ny, nz, _, err := field.CheckDims(nx64, ny64, nz64)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	if blockB64 > maxHeaderField || nLevels64 > maxHeaderField {
		return nil, nil, errors.New("core: implausible header field")
	}
	blockB, nLevels := int(blockB64), int(nLevels64)
	h, err := grid.New(nx, ny, nz, blockB, nLevels)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	nbx, nby, nbz := h.NumBlocks()

	// readStreamCodec consumes the per-stream codec byte of a version-4
	// container; older versions compress every stream with the header codec.
	readStreamCodec := func() (Compressor, error) {
		if version < containerVersionMixed {
			return opt.Compressor, nil
		}
		if err := need(1); err != nil {
			return 0, err
		}
		sc := Compressor(buf[0])
		buf = buf[1:]
		return sc, nil
	}

	for li := 0; li < nLevels; li++ {
		var dl decodedLevel
		nBlocks64, err := readU()
		if err != nil {
			return nil, nil, err
		}
		if nBlocks64 > uint64(nbx*nby*nbz) { // compare unsigned: int(nBlocks64) may wrap negative
			return nil, nil, errors.New("core: implausible block count")
		}
		nBlocks := int(nBlocks64)
		dl.blocks = make([][3]int, nBlocks)
		prev := int64(0)
		for i := range dl.blocks {
			d, err := readV()
			if err != nil {
				return nil, nil, err
			}
			prev += d
			flat := int(prev)
			if flat < 0 || flat >= nbx*nby*nbz {
				return nil, nil, errors.New("core: block index out of range")
			}
			dl.blocks[i] = [3]int{flat % nbx, (flat / nbx) % nby, flat / (nbx * nby)}
		}
		if err := need(1); err != nil {
			return nil, nil, err
		}
		dl.padded = buf[0] != 0
		buf = buf[1:]

		if opt.Arrangement == ArrangeTAC {
			nBoxes64, err := readU()
			if err != nil {
				return nil, nil, err
			}
			// Same unsigned comparison as the block count: a box never holds
			// fewer than one unit block, so the level-0 block total bounds it.
			if nBoxes64 > uint64(nbx*nby*nbz) {
				return nil, nil, errors.New("core: implausible box count")
			}
			for bi := 0; bi < int(nBoxes64); bi++ {
				var vals [6]int
				for i := range vals {
					v, err := readU()
					if err != nil {
						return nil, nil, err
					}
					if v > maxHeaderField {
						return nil, nil, errors.New("core: implausible box geometry")
					}
					vals[i] = int(v)
				}
				dl.boxes = append(dl.boxes, layout.Box{X0: vals[0], Y0: vals[1], Z0: vals[2], WX: vals[3], WY: vals[4], WZ: vals[5]})
				slen, err := readU()
				if err != nil {
					return nil, nil, err
				}
				sc, err := readStreamCodec()
				if err != nil {
					return nil, nil, err
				}
				if uint64(len(buf)) < slen {
					return nil, nil, errors.New("core: truncated box stream")
				}
				dl.offsets = append(dl.offsets, int64(len(blob)-len(buf)))
				dl.streams = append(dl.streams, buf[:slen])
				dl.codecs = append(dl.codecs, sc)
				buf = buf[slen:]
			}
			c.levels = append(c.levels, dl)
			continue
		}

		slen, err := readU()
		if err != nil {
			return nil, nil, err
		}
		if slen != 0 {
			sc, err := readStreamCodec()
			if err != nil {
				return nil, nil, err
			}
			if uint64(len(buf)) < slen {
				return nil, nil, errors.New("core: truncated level stream")
			}
			dl.offsets = append(dl.offsets, int64(len(blob)-len(buf)))
			dl.streams = append(dl.streams, buf[:slen])
			dl.codecs = append(dl.codecs, sc)
			buf = buf[slen:]
		}
		c.levels = append(c.levels, dl)
	}
	return c, h, nil
}

// DecodeStream decodes one backend stream (as located by a container
// index) with opt.Compressor. It is the per-stream decode seam the
// random-access reader builds on; for mixed-codec containers the caller
// sets opt.Compressor to the stream's own codec (index.Stream.Compressor).
// A stream with interleaved entropy lanes decodes them on up to
// opt.Workers goroutines (0 = runtime default, 1 = fully serial); the
// decoded field is identical for every worker count.
func DecodeStream(stream []byte, opt Options) (*field.Field, error) {
	return DecodeStreamCtx(context.Background(), stream, opt)
}

// DecodeStreamCtx is DecodeStream with request-scoped observability: when
// ctx carries a trace (see internal/obs), the decode is recorded as a
// "decode" span tagged with the codec name. Untraced contexts cost one
// context lookup.
func DecodeStreamCtx(ctx context.Context, stream []byte, opt Options) (*field.Field, error) {
	return decompressFieldWorkersCtx(ctx, stream, opt.Compressor, streamWorkers(opt.Workers))
}

// streamWorkers normalizes an Options.Workers value for a single-stream
// decode: 0 means the runtime default, negative clamps to fully serial,
// matching the pipeline's convention.
func streamWorkers(w int) int {
	if w == 0 {
		return parallel.Workers()
	}
	if w < 0 {
		return 1
	}
	return w
}

// BuildIndex scans a full in-memory container and synthesizes the block
// index a v3 footer would carry — the fallback that gives v1/v2 containers
// (and v3 containers whose footer was lost) random access at the cost of
// one sequential scan. Stream payloads are located but not decoded.
func BuildIndex(blob []byte) (*index.Index, error) {
	c, h, err := parseContainer(blob)
	if err != nil {
		return nil, err
	}
	ix := &index.Index{
		Opts:       indexOpts(c.opt),
		Nx:         h.Nx,
		Ny:         h.Ny,
		Nz:         h.Nz,
		BlockB:     h.BlockB,
		StreamCRCs: true,
	}
	for li, dl := range c.levels {
		u := h.UnitBlockSize(li)
		ixl := index.Level{Blocks: dl.blocks, Padded: dl.padded}
		for si, s := range dl.streams {
			st := index.Stream{
				Level: li, Box: -1, Compressor: byte(dl.codecs[si]),
				Offset: dl.offsets[si], Len: int64(len(s)),
				CRC: crc32.ChecksumIEEE(s),
			}
			if c.opt.Arrangement == ArrangeTAC {
				st.Box = si
				st.Geom = dl.boxes[si]
				st.RawLen = int64(st.Geom.WX*u) * int64(st.Geom.WY*u) * int64(st.Geom.WZ*u) * 8
			} else {
				st.RawLen = mergedRawLen(c.opt.Arrangement, u, len(dl.blocks), dl.padded)
			}
			ixl.Streams = append(ixl.Streams, len(ix.Streams))
			ix.Streams = append(ix.Streams, st)
		}
		ix.Levels = append(ix.Levels, ixl)
	}
	return ix, nil
}

// mergedRawLen computes the decoded byte size of a merged-level stream from
// its arrangement, unit edge, block count, and padding flag.
func mergedRawLen(a Arrangement, u, k int, padded bool) int64 {
	if k == 0 {
		return 0
	}
	switch a {
	case ArrangeStack:
		m := int64(math.Ceil(math.Cbrt(float64(k))))
		return m * m * m * int64(u) * int64(u) * int64(u) * 8
	case ArrangeZOrder1D:
		return int64(u) * int64(u) * int64(u) * int64(k) * 8
	default: // linear
		nx, ny := int64(u), int64(u)
		if padded {
			nx, ny = nx+1, ny+1
		}
		return nx * ny * int64(u) * int64(k) * 8
	}
}

// footerStreamCRCs parses an in-memory container's index footer and, when it
// carries per-stream checksums, returns an offset→CRC map for payload
// verification. Containers without a footer (v1/v2, or a truncated v3 body)
// and version-1 footers return nil: verification unavailable, not an error —
// the sequential decoder must keep decoding footerless bodies.
func footerStreamCRCs(blob []byte) map[int64]uint32 {
	body, ok := index.Locate(blob)
	if !ok {
		return nil
	}
	ix, err := index.Parse(blob[body:len(blob)-index.TrailerLen], int64(len(blob)))
	if err != nil || !ix.StreamCRCs {
		return nil
	}
	m := make(map[int64]uint32, len(ix.Streams))
	for _, s := range ix.Streams {
		m[s.Offset] = s.CRC
	}
	return m
}

func decompressImpl(blob []byte, post postHook, workers int) (*grid.Hierarchy, error) {
	c, h, err := parseContainer(blob)
	if err != nil {
		return nil, err
	}
	crcs := footerStreamCRCs(blob)
	opt := c.opt
	if workers == 0 {
		workers = parallel.Workers()
	} else if workers < 0 {
		workers = 1 // match the compress side's clamp to serial
	}

	// Decode stage: streams decompress (and unpad / post-process)
	// concurrently on a bounded pool, mirroring the parallel write side.
	// Work proceeds in waves of `workers` streams, each wave's fields
	// unmerged into the hierarchy and released before the next decodes, so
	// peak memory holds at most `workers` decoded fields beyond the
	// destination hierarchy (Workers=1 is fully streaming, as the serial
	// decoder was). Unmerge/insert itself stays serial: it writes into the
	// shared hierarchy, and its cost is dwarfed by backend decoding.
	type decodeJob struct {
		level, box int
		codec      Compressor
		stream     []byte
		offset     int64
	}
	var jobs []decodeJob
	for li := range c.levels {
		dl := &c.levels[li]
		if opt.Arrangement == ArrangeTAC {
			for bi := range dl.streams {
				jobs = append(jobs, decodeJob{li, bi, dl.codecs[bi], dl.streams[bi], dl.offsets[bi]})
			}
			continue
		}
		if len(dl.streams) == 1 {
			jobs = append(jobs, decodeJob{li, -1, dl.codecs[0], dl.streams[0], dl.offsets[0]})
		}
	}
	for start := 0; start < len(jobs); start += workers {
		end := min(start+workers, len(jobs))
		wave, err := parallel.MapErrWorkers(end-start, workers, func(i int) (*field.Field, error) {
			j := jobs[start+i]
			if want, ok := crcs[j.offset]; ok && crc32.ChecksumIEEE(j.stream) != want {
				return nil, faultio.Corrupt(streamErr(j.level, j.box, errors.New("stream checksum mismatch")))
			}
			// With one stream per wave the pool has no stream-level
			// parallelism to exploit; hand the worker budget to the
			// entropy stage instead, so an interleaved code stream still
			// uses the cores.
			lw := 1
			if len(jobs) == 1 {
				lw = workers
			}
			f, err := decompressFieldWorkersCtx(context.Background(), j.stream, j.codec, lw)
			if err != nil {
				return nil, streamErr(j.level, j.box, err)
			}
			if j.box < 0 && c.levels[j.level].padded {
				f = layout.UnpadXY(f)
			}
			if post != nil {
				// The hook sees the stream's own codec, so mixed-codec
				// containers post-process each level under the backend that
				// actually produced it.
				jopt := opt
				jopt.Compressor = j.codec
				f = post(j.level, h.UnitBlockSize(j.level), jopt, f)
			}
			return f, nil
		})
		if err != nil {
			return nil, err
		}
		for i, f := range wave {
			j := jobs[start+i]
			dl := &c.levels[j.level]
			if j.box >= 0 {
				if err := layout.InsertBox(h, j.level, dl.boxes[j.box], f); err != nil {
					return nil, err
				}
				continue
			}
			m := &layout.Merged{Data: f, U: h.UnitBlockSize(j.level), Blocks: dl.blocks}
			switch opt.Arrangement {
			case ArrangeLinear:
				err = layout.LinearUnmerge(m, h, j.level)
			case ArrangeStack:
				err = layout.StackUnmerge(m, h, j.level)
			case ArrangeZOrder1D:
				err = layout.ZOrderUnflatten1D(m, h, j.level)
			default:
				err = fmt.Errorf("core: unknown arrangement %d", opt.Arrangement)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// Ratio returns the compression ratio relative to the hierarchy's raw
// multi-resolution payload.
func (c *Compressed) Ratio(h *grid.Hierarchy) float64 {
	return float64(h.PayloadBytes()) / float64(c.Size())
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
