// Package core implements the paper's primary contribution: SZ3MR, a
// multi-resolution compression pipeline that arranges each level's unit
// blocks into a compressor-friendly layout (§III-A), optionally pads the two
// small dimensions with extrapolated layers, applies a per-interpolation-
// level adaptive error bound, and drives one of three error-bounded
// compressors (SZ3 / SZ2 / ZFP stand-ins) over the result.
//
// The same pipeline, configured with the paper's baseline arrangements,
// reproduces the comparison systems: Baseline-SZ3 (plain linear merge),
// AMRIC-SZ3 (cubic stacking), TAC-SZ3 (adjacency boxes compressed
// separately), and a zMesh-style 1D z-order layout.
//
// The two pipeline stages are exposed separately — Prepare (the paper's
// "pre-processing": collecting data into the compression buffer) and
// Compressed (compression proper) — so the in-situ output-time breakdown of
// Table IV can be measured.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/postproc"
	"repro/internal/sz2"
	"repro/internal/sz3"
	"repro/internal/zfp"
)

// Compressor selects the backend lossy compressor.
type Compressor byte

// Backend compressors.
const (
	SZ3 Compressor = iota // global interpolation (default)
	SZ2                   // block-wise Lorenzo/regression
	ZFP                   // block-wise transform
)

func (c Compressor) String() string {
	switch c {
	case SZ3:
		return "SZ3"
	case SZ2:
		return "SZ2"
	case ZFP:
		return "ZFP"
	}
	return fmt.Sprintf("Compressor(%d)", byte(c))
}

// Arrangement selects how a level's unit blocks are laid out before
// compression (Fig. 6 of the paper).
type Arrangement byte

// Arrangements.
const (
	// ArrangeLinear concatenates unit blocks along z (the baseline layout,
	// and — with padding and adaptive eb — the paper's SZ3MR layout).
	ArrangeLinear Arrangement = iota
	// ArrangeStack stacks unit blocks into a near-cube (AMRIC).
	ArrangeStack
	// ArrangeTAC merges adjacent blocks into boxes compressed separately.
	ArrangeTAC
	// ArrangeZOrder1D flattens blocks along a Morton curve into a 1D array
	// (zMesh-style; loses higher-dimensional spatial information).
	ArrangeZOrder1D
)

func (a Arrangement) String() string {
	switch a {
	case ArrangeLinear:
		return "linear"
	case ArrangeStack:
		return "stack"
	case ArrangeTAC:
		return "tac"
	case ArrangeZOrder1D:
		return "zorder1d"
	}
	return fmt.Sprintf("Arrangement(%d)", byte(a))
}

// Options configures the multi-resolution pipeline.
type Options struct {
	// EB is the absolute error bound applied to every level (> 0).
	EB float64
	// Compressor selects the backend (default SZ3).
	Compressor Compressor
	// Arrangement selects the unit-block layout (default ArrangeLinear).
	Arrangement Arrangement
	// Pad enables the paper's padding improvement: one linearly-extrapolated
	// layer on each small dimension of a linear merge, applied only when the
	// unit block size exceeds 4 (the overhead analysis of §III-A).
	Pad bool
	// PadKind selects the extrapolation (default layout.PadLinear).
	PadKind layout.PadKind
	// AdaptiveEB enables the per-interpolation-level error bound
	// eb_l = eb / min(α^(L−l), β) for the SZ3 backend.
	AdaptiveEB bool
	// Alpha and Beta parameterize AdaptiveEB (defaults 2.25 and 8).
	Alpha, Beta float64
	// SZ2BlockSize overrides SZ2's block size (default 4, the AMRIC-tuned
	// value for multi-resolution data).
	SZ2BlockSize int
	// Interp selects the SZ3 interpolant (default linear).
	Interp sz3.Interpolant
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Alpha == 0 {
		v.Alpha = 2.25
	}
	if v.Beta == 0 {
		v.Beta = 8
	}
	if v.SZ2BlockSize == 0 {
		v.SZ2BlockSize = sz2.MultiResBlockSize
	}
	return v
}

// SZ3MROptions returns the paper's full SZ3MR configuration (linear merge +
// padding + adaptive error bound), the "Ours (pad+eb)" curve.
func SZ3MROptions(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeLinear, Pad: true, AdaptiveEB: true}
}

// SZ3MRPadOnlyOptions returns the intermediate "Ours (pad)" configuration.
func SZ3MRPadOnlyOptions(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeLinear, Pad: true}
}

// BaselineSZ3Options returns the plain linear-merge SZ3 baseline.
func BaselineSZ3Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeLinear}
}

// AMRICSZ3Options returns the AMRIC-style cubic-stacking SZ3 configuration.
func AMRICSZ3Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeStack}
}

// TACSZ3Options returns the TAC-style adjacency-merge SZ3 configuration.
func TACSZ3Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ3, Arrangement: ArrangeTAC}
}

// AMRICSZ2Options returns AMRIC's SZ2 configuration for multi-resolution
// data (linear merge, 4³ SZ2 blocks) used by the post-processing tables.
func AMRICSZ2Options(eb float64) Options {
	return Options{EB: eb, Compressor: SZ2, Arrangement: ArrangeLinear}
}

// MRZFPOptions returns the ZFP backend over a linear merge.
func MRZFPOptions(eb float64) Options {
	return Options{EB: eb, Compressor: ZFP, Arrangement: ArrangeLinear}
}

// preparedLevel is one level's compression-ready buffers.
type preparedLevel struct {
	blocks [][3]int       // merge order
	merged *field.Field   // linear/stack/zorder arrangements (nil if empty)
	padded bool           // whether merged carries pad layers
	boxes  []layout.Box   // TAC arrangement
	boxFld []*field.Field // TAC box data
}

// Prepared holds the output of the pre-processing stage: merged (and
// possibly padded) per-level arrays ready for the backend compressor.
type Prepared struct {
	nx, ny, nz int
	blockB     int
	opt        Options
	levels     []preparedLevel
}

// Prepare runs the pre-processing stage: extract each level's unit blocks
// and arrange (and pad) them into compression buffers.
func Prepare(h *grid.Hierarchy, opt Options) (*Prepared, error) {
	if opt.EB <= 0 {
		return nil, errors.New("core: error bound must be positive")
	}
	opt = (&opt).withDefaults()
	p := &Prepared{nx: h.Nx, ny: h.Ny, nz: h.Nz, blockB: h.BlockB, opt: opt}
	for li := range h.Levels {
		var pl preparedLevel
		u := h.UnitBlockSize(li)
		switch opt.Arrangement {
		case ArrangeLinear:
			m := layout.LinearMerge(h, li)
			pl.blocks = m.Blocks
			pl.merged = m.Data
			if opt.Pad && u > 4 && m.Data != nil {
				pl.merged = layout.PadXY(m.Data, opt.PadKind)
				pl.padded = true
			}
		case ArrangeStack:
			m := layout.StackMerge(h, li)
			pl.blocks = m.Blocks
			pl.merged = m.Data
		case ArrangeZOrder1D:
			m := layout.ZOrderFlatten1D(h, li)
			pl.blocks = m.Blocks
			pl.merged = m.Data
		case ArrangeTAC:
			pl.boxes = layout.TACPartition(h, li)
			for _, b := range pl.boxes {
				pl.boxFld = append(pl.boxFld, layout.ExtractBox(h, li, b))
			}
		default:
			return nil, fmt.Errorf("core: unknown arrangement %d", opt.Arrangement)
		}
		p.levels = append(p.levels, pl)
	}
	return p, nil
}

// compressField dispatches one buffer to the selected backend.
func compressField(f *field.Field, opt Options) ([]byte, error) {
	switch opt.Compressor {
	case SZ3:
		so := sz3.Options{EB: opt.EB, Interp: opt.Interp}
		if opt.AdaptiveEB {
			so.LevelEB = sz3.AdaptiveLevelEB(opt.EB, opt.Alpha, opt.Beta)
		}
		return sz3.Compress(f, so)
	case SZ2:
		return sz2.Compress(f, sz2.Options{EB: opt.EB, BlockSize: opt.SZ2BlockSize})
	case ZFP:
		return zfp.Compress(f, zfp.Options{Tolerance: opt.EB})
	default:
		return nil, fmt.Errorf("core: unknown compressor %d", opt.Compressor)
	}
}

func decompressField(data []byte, opt Options) (*field.Field, error) {
	switch opt.Compressor {
	case SZ3:
		return sz3.Decompress(data)
	case SZ2:
		return sz2.Decompress(data)
	case ZFP:
		return zfp.Decompress(data)
	default:
		return nil, fmt.Errorf("core: unknown compressor %d", opt.Compressor)
	}
}

// Compressed is a serialized multi-resolution compression result.
type Compressed struct {
	// Blob is the self-describing container.
	Blob []byte
	// LevelBytes records the compressed payload per level (diagnostics).
	LevelBytes []int
}

// Size returns the container size in bytes.
func (c *Compressed) Size() int { return len(c.Blob) }

// Compress runs the compression stage over prepared buffers and serializes
// everything into a container.
func (p *Prepared) Compress() (*Compressed, error) {
	var buf bytes.Buffer
	buf.WriteString("MRWF")
	buf.WriteByte(1) // version
	o := p.opt
	buf.WriteByte(byte(o.Compressor))
	buf.WriteByte(byte(o.Arrangement))
	buf.WriteByte(boolByte(o.Pad))
	buf.WriteByte(byte(o.PadKind))
	buf.WriteByte(boolByte(o.AdaptiveEB))
	buf.WriteByte(byte(o.SZ2BlockSize))
	buf.WriteByte(byte(o.Interp))
	var tmp [binary.MaxVarintLen64]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	writeF := func(v float64) {
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		buf.Write(b8[:])
	}
	writeF(o.EB)
	writeF(o.Alpha)
	writeF(o.Beta)
	writeU(uint64(p.nx))
	writeU(uint64(p.ny))
	writeU(uint64(p.nz))
	writeU(uint64(p.blockB))
	writeU(uint64(len(p.levels)))

	nbx := p.nx / p.blockB
	nby := p.ny / p.blockB
	levelBytes := make([]int, len(p.levels))
	for li, pl := range p.levels {
		// Block list as deltas of flat indices (raster order for linear /
		// stack; Morton order for zorder — order matters, so store as-is).
		writeU(uint64(len(pl.blocks)))
		prev := int64(0)
		for _, bc := range pl.blocks {
			flat := int64(bc[0] + nbx*(bc[1]+nby*bc[2]))
			n := binary.PutVarint(tmp[:], flat-prev)
			buf.Write(tmp[:n])
			prev = flat
		}
		buf.WriteByte(boolByte(pl.padded))
		if p.opt.Arrangement == ArrangeTAC {
			writeU(uint64(len(pl.boxes)))
			for bi, b := range pl.boxes {
				for _, v := range []int{b.X0, b.Y0, b.Z0, b.WX, b.WY, b.WZ} {
					writeU(uint64(v))
				}
				stream, err := compressField(pl.boxFld[bi], p.opt)
				if err != nil {
					return nil, fmt.Errorf("core: level %d box %d: %w", li, bi, err)
				}
				writeU(uint64(len(stream)))
				buf.Write(stream)
				levelBytes[li] += len(stream)
			}
			continue
		}
		if pl.merged == nil {
			writeU(0)
			continue
		}
		stream, err := compressField(pl.merged, p.opt)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", li, err)
		}
		writeU(uint64(len(stream)))
		buf.Write(stream)
		levelBytes[li] += len(stream)
	}
	return &Compressed{Blob: buf.Bytes(), LevelBytes: levelBytes}, nil
}

// CompressHierarchy runs both stages.
func CompressHierarchy(h *grid.Hierarchy, opt Options) (*Compressed, error) {
	p, err := Prepare(h, opt)
	if err != nil {
		return nil, err
	}
	return p.Compress()
}

// postHook transforms a level's decoded field (after unpadding, before
// unmerging) — the insertion point for error-bounded post-processing.
type postHook func(level, unitSize int, opt Options, f *field.Field) *field.Field

// Decompress reconstructs the multi-resolution hierarchy from a container.
func Decompress(blob []byte) (*grid.Hierarchy, error) {
	return decompressImpl(blob, nil)
}

// PostBlockSize returns the block size whose boundaries the post-processor
// should smooth for a given backend: the compressor block for SZ2/ZFP, or
// the unit block size for the partitioned-SZ3 multi-resolution case (§III-B:
// "the partition size for multi-resolution data is larger than the block
// sizes used by SZ/ZFP — 16 vs 4").
func PostBlockSize(opt Options, unitSize int) int {
	switch opt.Compressor {
	case SZ2:
		return opt.SZ2BlockSize
	case ZFP:
		return 4
	default:
		return unitSize
	}
}

// PostCandidates returns the paper's intensity candidate set for the
// container's backend.
func PostCandidates(c Compressor) []float64 {
	if c == ZFP {
		return postproc.ZFPCandidates()
	}
	return postproc.SZ2Candidates()
}

// RoundTrip returns a single-field compress+decompress closure for the
// configured backend at the working error bound, used for sampling.
func (o Options) RoundTrip() postproc.RoundTrip {
	opt := (&o).withDefaults()
	return func(f *field.Field) (*field.Field, error) {
		data, err := compressField(f, opt)
		if err != nil {
			return nil, err
		}
		return decompressField(data, opt)
	}
}

// FindIntensities runs the paper's sample-and-model stage on the prepared
// buffers: for each level it compresses a ≤1.5% sample and selects the
// per-dimension post-processing intensity by stochastic descent over the
// backend's candidate set. Levels without data get zero intensity.
func (p *Prepared) FindIntensities() ([]postproc.Intensity, error) {
	rt := p.opt.RoundTrip()
	out := make([]postproc.Intensity, len(p.levels))
	for li, pl := range p.levels {
		var sample *field.Field
		switch {
		case pl.merged != nil:
			sample = pl.merged
		case len(pl.boxFld) > 0:
			sample = largestField(pl.boxFld)
		default:
			continue
		}
		u := p.blockB >> li
		bs := PostBlockSize(p.opt, u)
		po := postproc.Options{EB: p.opt.EB, BlockSize: bs, Candidates: PostCandidates(p.opt.Compressor)}
		set, err := postproc.CollectSamples(sample, rt, po)
		if err != nil {
			// A level too small to sample simply goes unprocessed.
			continue
		}
		out[li] = set.FindIntensity()
	}
	return out, nil
}

func largestField(fs []*field.Field) *field.Field {
	best := fs[0]
	for _, f := range fs[1:] {
		if f.Len() > best.Len() {
			best = f
		}
	}
	return best
}

// DecompressProcessed decompresses and applies error-bounded post-processing
// with the given per-level intensities to each level's decoded array before
// reassembly.
func DecompressProcessed(blob []byte, intens []postproc.Intensity) (*grid.Hierarchy, error) {
	hook := func(level, unitSize int, opt Options, f *field.Field) *field.Field {
		if level >= len(intens) {
			return f
		}
		a := intens[level]
		if a == (postproc.Intensity{}) {
			return f
		}
		bs := PostBlockSize(opt, unitSize)
		return postproc.Process(f, a, postproc.Options{EB: opt.EB, BlockSize: bs})
	}
	return decompressImpl(blob, hook)
}

func decompressImpl(blob []byte, post postHook) (*grid.Hierarchy, error) {
	if len(blob) < 12 || string(blob[:4]) != "MRWF" {
		return nil, errors.New("core: bad magic")
	}
	if blob[4] != 1 {
		return nil, fmt.Errorf("core: unsupported version %d", blob[4])
	}
	buf := blob[5:]
	need := func(n int) error {
		if len(buf) < n {
			return errors.New("core: truncated container")
		}
		return nil
	}
	if err := need(7); err != nil {
		return nil, err
	}
	var opt Options
	opt.Compressor = Compressor(buf[0])
	opt.Arrangement = Arrangement(buf[1])
	opt.Pad = buf[2] != 0
	opt.PadKind = layout.PadKind(buf[3])
	opt.AdaptiveEB = buf[4] != 0
	opt.SZ2BlockSize = int(buf[5])
	opt.Interp = sz3.Interpolant(buf[6])
	buf = buf[7:]
	readF := func() (float64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
		return v, nil
	}
	readU := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, errors.New("core: truncated varint")
		}
		buf = buf[n:]
		return v, nil
	}
	readV := func() (int64, error) {
		v, n := binary.Varint(buf)
		if n <= 0 {
			return 0, errors.New("core: truncated varint")
		}
		buf = buf[n:]
		return v, nil
	}
	var err error
	if opt.EB, err = readF(); err != nil {
		return nil, err
	}
	if opt.Alpha, err = readF(); err != nil {
		return nil, err
	}
	if opt.Beta, err = readF(); err != nil {
		return nil, err
	}
	dims := make([]int, 5)
	for i := range dims {
		v, err := readU()
		if err != nil {
			return nil, err
		}
		dims[i] = int(v)
	}
	nx, ny, nz, blockB, nLevels := dims[0], dims[1], dims[2], dims[3], dims[4]
	h, err := grid.New(nx, ny, nz, blockB, nLevels)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nbx, nby, nbz := h.NumBlocks()

	for li := 0; li < nLevels; li++ {
		nBlocks64, err := readU()
		if err != nil {
			return nil, err
		}
		nBlocks := int(nBlocks64)
		if nBlocks > nbx*nby*nbz {
			return nil, errors.New("core: implausible block count")
		}
		blocks := make([][3]int, nBlocks)
		prev := int64(0)
		for i := range blocks {
			d, err := readV()
			if err != nil {
				return nil, err
			}
			prev += d
			flat := int(prev)
			if flat < 0 || flat >= nbx*nby*nbz {
				return nil, errors.New("core: block index out of range")
			}
			blocks[i] = [3]int{flat % nbx, (flat / nbx) % nby, flat / (nbx * nby)}
		}
		if err := need(1); err != nil {
			return nil, err
		}
		padded := buf[0] != 0
		buf = buf[1:]

		if opt.Arrangement == ArrangeTAC {
			nBoxes64, err := readU()
			if err != nil {
				return nil, err
			}
			for bi := 0; bi < int(nBoxes64); bi++ {
				var vals [6]int
				for i := range vals {
					v, err := readU()
					if err != nil {
						return nil, err
					}
					vals[i] = int(v)
				}
				b := layout.Box{X0: vals[0], Y0: vals[1], Z0: vals[2], WX: vals[3], WY: vals[4], WZ: vals[5]}
				slen, err := readU()
				if err != nil {
					return nil, err
				}
				if uint64(len(buf)) < slen {
					return nil, errors.New("core: truncated box stream")
				}
				f, err := decompressField(buf[:slen], opt)
				if err != nil {
					return nil, fmt.Errorf("core: level %d box %d: %w", li, bi, err)
				}
				buf = buf[slen:]
				if post != nil {
					f = post(li, h.UnitBlockSize(li), opt, f)
				}
				if err := layout.InsertBox(h, li, b, f); err != nil {
					return nil, err
				}
			}
			continue
		}

		slen, err := readU()
		if err != nil {
			return nil, err
		}
		if slen == 0 {
			continue // empty level
		}
		if uint64(len(buf)) < slen {
			return nil, errors.New("core: truncated level stream")
		}
		f, err := decompressField(buf[:slen], opt)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", li, err)
		}
		buf = buf[slen:]
		if padded {
			f = layout.UnpadXY(f)
		}
		if post != nil {
			f = post(li, h.UnitBlockSize(li), opt, f)
		}
		m := &layout.Merged{Data: f, U: h.UnitBlockSize(li), Blocks: blocks}
		switch opt.Arrangement {
		case ArrangeLinear:
			err = layout.LinearUnmerge(m, h, li)
		case ArrangeStack:
			err = layout.StackUnmerge(m, h, li)
		case ArrangeZOrder1D:
			err = layout.ZOrderUnflatten1D(m, h, li)
		default:
			err = fmt.Errorf("core: unknown arrangement %d", opt.Arrangement)
		}
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Ratio returns the compression ratio relative to the hierarchy's raw
// multi-resolution payload.
func (c *Compressed) Ratio(h *grid.Hierarchy) float64 {
	return float64(h.PayloadBytes()) / float64(c.Size())
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
