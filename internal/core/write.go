package core

// Streaming container serialization. writeContainer is the single place a
// container body is laid out on the wire; Compress feeds it from a slice of
// pre-compressed streams, CompressTo from a bounded wave source, so the two
// paths cannot diverge byte-wise.

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/grid"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/parallel"
)

// wireWriter wraps a destination with error-latching primitive writers and
// an offset counter (the index needs absolute stream offsets).
type wireWriter struct {
	w   io.Writer
	n   int64
	err error
	tmp [binary.MaxVarintLen64]byte
}

func (ww *wireWriter) write(b []byte) {
	if ww.err != nil {
		return
	}
	m, err := ww.w.Write(b)
	ww.n += int64(m)
	ww.err = err
}

func (ww *wireWriter) writeByte(b byte) {
	ww.tmp[0] = b
	ww.write(ww.tmp[:1])
}

func (ww *wireWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(ww.tmp[:], v)
	ww.write(ww.tmp[:n])
}

func (ww *wireWriter) writeVarint(v int64) {
	n := binary.PutVarint(ww.tmp[:], v)
	ww.write(ww.tmp[:n])
}

func (ww *wireWriter) writeFloat(v float64) {
	binary.LittleEndian.PutUint64(ww.tmp[:8], math.Float64bits(v))
	ww.write(ww.tmp[:8])
}

// writeContainer serializes the container body (header, per-level metadata,
// compressed streams) to ww, pulling stream i from streamAt — called exactly
// once per stream, in serialization order, so a source may discard a stream
// once handed over. It returns the populated index (ready for AppendFooter)
// and the per-level compressed payload byte counts.
func (p *Prepared) writeContainer(ww *wireWriter, streamAt func(int) ([]byte, error)) (*index.Index, []int, error) {
	o := p.opt
	ver := p.wireVersion()
	ww.write([]byte(containerMagic))
	ww.writeByte(ver)
	ww.writeByte(byte(o.Compressor))
	ww.writeByte(byte(o.Arrangement))
	ww.writeByte(boolByte(o.Pad))
	ww.writeByte(byte(o.PadKind))
	ww.writeByte(boolByte(o.AdaptiveEB))
	ww.writeUvarint(uint64(o.SZ2BlockSize)) // v2: uvarint (v1 wrote a truncating byte)
	ww.writeByte(byte(o.Interp))
	ww.writeFloat(o.EB)
	ww.writeFloat(o.Alpha)
	ww.writeFloat(o.Beta)
	ww.writeUvarint(uint64(p.nx))
	ww.writeUvarint(uint64(p.ny))
	ww.writeUvarint(uint64(p.nz))
	ww.writeUvarint(uint64(p.blockB))
	ww.writeUvarint(uint64(len(p.levels)))

	nbx := p.nx / p.blockB
	nby := p.ny / p.blockB
	levelBytes := make([]int, len(p.levels))
	ix := &index.Index{
		Opts:       indexOpts(o),
		Nx:         p.nx,
		Ny:         p.ny,
		Nz:         p.nz,
		BlockB:     p.blockB,
		StreamCRCs: true,
	}
	next := 0
	emitStream := func(li, box int, geom layout.Box, rawLen int) error {
		s, err := streamAt(next)
		if err != nil {
			return err
		}
		next++
		sc := o.codecFor(li)
		ww.writeUvarint(uint64(len(s)))
		if ver >= containerVersionMixed {
			// v4: each stream names its own codec on the wire, right after
			// its length — the sequential decoder's counterpart to the
			// per-stream compressor byte the index footer always carried.
			ww.writeByte(byte(sc))
		}
		ixl := &ix.Levels[li]
		ixl.Streams = append(ixl.Streams, len(ix.Streams))
		ix.Streams = append(ix.Streams, index.Stream{
			Level: li, Box: box, Geom: geom, Compressor: byte(sc),
			Offset: ww.n, Len: int64(len(s)), RawLen: int64(rawLen),
			CRC: crc32.ChecksumIEEE(s),
		})
		ww.write(s)
		levelBytes[li] += len(s)
		return nil
	}
	for li, pl := range p.levels {
		ix.Levels = append(ix.Levels, index.Level{Blocks: pl.blocks, Padded: pl.padded})
		// Block list as deltas of flat indices (raster order for linear /
		// stack; Morton order for zorder — order matters, so store as-is).
		ww.writeUvarint(uint64(len(pl.blocks)))
		prev := int64(0)
		for _, bc := range pl.blocks {
			flat := int64(bc[0] + nbx*(bc[1]+nby*bc[2]))
			ww.writeVarint(flat - prev)
			prev = flat
		}
		ww.writeByte(boolByte(pl.padded))
		if o.Arrangement == ArrangeTAC {
			ww.writeUvarint(uint64(len(pl.boxes)))
			for bi, b := range pl.boxes {
				for _, v := range []int{b.X0, b.Y0, b.Z0, b.WX, b.WY, b.WZ} {
					ww.writeUvarint(uint64(v))
				}
				if err := emitStream(li, bi, b, pl.boxFld[bi].Bytes()); err != nil {
					return nil, nil, err
				}
			}
			continue
		}
		if pl.merged == nil {
			ww.writeUvarint(0)
			continue
		}
		if err := emitStream(li, -1, layout.Box{}, pl.merged.Bytes()); err != nil {
			return nil, nil, err
		}
	}
	if ww.err != nil {
		return nil, nil, ww.err
	}
	return ix, levelBytes, nil
}

// waveSource compresses container streams lazily, one wave of up to Workers
// jobs at a time, handing each compressed stream to the serializer exactly
// once and releasing it immediately after — so at most one wave of
// compressed output is alive at any point, regardless of container size.
type waveSource struct {
	p           *Prepared
	jobs        []compressJob
	workers     int
	wave        [][]byte
	start       int // job index of wave[0]
	maxBuffered int64
}

func (ws *waveSource) stream(i int) ([]byte, error) {
	for i >= ws.start+len(ws.wave) {
		ws.start += len(ws.wave)
		n := min(ws.workers, len(ws.jobs)-ws.start)
		base := ws.start
		wave, err := parallel.MapErrWorkers(n, ws.workers, func(k int) ([]byte, error) {
			return ws.p.compressStream(ws.jobs[base+k])
		})
		if err != nil {
			return nil, err
		}
		ws.wave = wave
		var total int64
		for _, s := range wave {
			total += int64(len(s))
		}
		if total > ws.maxBuffered {
			ws.maxBuffered = total
		}
	}
	s := ws.wave[i-ws.start]
	ws.wave[i-ws.start] = nil // consumed: release for GC before the next wave
	return s, nil
}

// WriteResult summarizes a streaming container write.
type WriteResult struct {
	// Bytes is the total container size written, index footer included.
	Bytes int64
	// LevelBytes records the compressed payload per level (diagnostics).
	LevelBytes []int
	// MaxBufferedBytes is the peak total of compressed stream bytes held in
	// memory at once during the write: the streaming path's compressed
	// working set, bounded by one wave of Workers streams rather than by
	// the container size.
	MaxBufferedBytes int64
}

// CompressTo runs the compression stage and streams the container to w as
// worker waves complete: the header and each compressed stream are written
// as soon as they are ready, and the block-index footer — built
// incrementally alongside — is appended at the end. The bytes written are
// identical to Compress().Blob for every worker count; peak memory beyond
// the prepared buffers holds at most one wave of compressed streams plus
// the footer, never the whole container.
func (p *Prepared) CompressTo(w io.Writer) (*WriteResult, error) {
	if err := p.checkCompressOptions(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	ws := &waveSource{p: p, jobs: p.jobs(), workers: p.opt.Workers}
	ww := &wireWriter{w: bw}
	ix, levelBytes, err := p.writeContainer(ww, ws.stream)
	if err != nil {
		return nil, err
	}
	ww.write(ix.AppendFooter(nil))
	if ww.err != nil {
		return nil, ww.err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &WriteResult{Bytes: ww.n, LevelBytes: levelBytes, MaxBufferedBytes: ws.maxBuffered}, nil
}

// CompressHierarchyTo runs both stages, streaming the container to w. See
// (*Prepared).CompressTo for the memory bound.
func CompressHierarchyTo(h *grid.Hierarchy, opt Options, w io.Writer) (*WriteResult, error) {
	p, err := Prepare(h, opt)
	if err != nil {
		return nil, err
	}
	return p.CompressTo(w)
}
