package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLevelCodecsRoundTrip proves per-level codec overrides across every
// arrangement: the container self-describes as format v4, decodes through
// the sequential path, reconstructs the overridden (lossless) level
// bit-exactly, and keeps the error-bounded levels within the bound.
func TestLevelCodecsRoundTrip(t *testing.T) {
	h, eb := goldenHierarchy(t)
	for _, arr := range []Arrangement{ArrangeLinear, ArrangeStack, ArrangeTAC, ArrangeZOrder1D} {
		t.Run(arr.String(), func(t *testing.T) {
			opt := Options{EB: eb, Compressor: SZ3, Arrangement: arr,
				LevelCodecs: map[int]Compressor{1: Flate}}
			c, err := CompressHierarchy(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			if c.Blob[4] != containerVersionMixed {
				t.Fatalf("container version %d, want %d", c.Blob[4], containerVersionMixed)
			}
			got, err := Decompress(c.Blob)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Levels[1].Data.Equal(h.Levels[1].Data) {
				t.Fatal("flate-coded level is not bit-exact")
			}
			if d := h.Levels[0].Data.MaxAbsDiff(got.Levels[0].Data); d > eb {
				t.Fatalf("sz3 level error %g exceeds bound %g", d, eb)
			}
		})
	}
}

// TestLevelCodecsNoopOverrideStaysV3 pins the compatibility guarantee: an
// override that merely restates the container codec changes nothing — the
// bytes, version 3 included, are identical to the unoverridden container.
func TestLevelCodecsNoopOverrideStaysV3(t *testing.T) {
	h, eb := goldenHierarchy(t)
	plain, err := CompressHierarchy(h, TACSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	opt := TACSZ3Options(eb)
	opt.LevelCodecs = map[int]Compressor{0: SZ3, 1: SZ3}
	noop, err := CompressHierarchy(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(noop.Blob) != string(plain.Blob) {
		t.Fatal("no-op LevelCodecs changed the container bytes")
	}
	if noop.Blob[4] != containerVersion {
		t.Fatalf("no-op override wrote version %d, want %d", noop.Blob[4], containerVersion)
	}
}

// TestLevelCodecsValidation locks the write-time errors: out-of-range
// levels and unregistered codecs fail up front, with the registry
// vocabulary in the message.
func TestLevelCodecsValidation(t *testing.T) {
	h, eb := goldenHierarchy(t)
	opt := BaselineSZ3Options(eb)
	opt.LevelCodecs = map[int]Compressor{7: Flate}
	if _, err := CompressHierarchy(h, opt); err == nil || !strings.Contains(err.Error(), "level 7") {
		t.Fatalf("out-of-range level: %v", err)
	}
	opt.LevelCodecs = map[int]Compressor{1: Compressor(200)}
	_, err := CompressHierarchy(h, opt)
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("unknown level codec: %v", err)
	}
	bad := BaselineSZ3Options(eb)
	bad.Compressor = Compressor(200)
	if _, err := CompressHierarchy(h, bad); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("unknown container codec: %v", err)
	}
}

// TestDecompressRejectsUnknownStreamCodec corrupts the per-stream codec
// byte of the committed v4 fixture: the sequential decoder must fail with
// the registry's actionable unknown-ID error, not panic or misdecode.
func TestDecompressRejectsUnknownStreamCodec(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "golden-mixed-sz3-flate-v4.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(blob)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), blob...)
	// The v4 codec byte sits immediately before each stream's payload.
	mut[ix.Streams[len(ix.Streams)-1].Offset-1] = 200
	_, err = Decompress(mut)
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("corrupt codec byte: %v", err)
	}
}
