package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/roi"
	"repro/internal/synth"
)

func amrHierarchy(t *testing.T, n int, seed int64) *grid.Hierarchy {
	t.Helper()
	f := synth.Generate(synth.Nyx, n, seed)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// maxLevelError returns the max abs error between matching owned blocks of
// two hierarchies.
func maxLevelError(a, b *grid.Hierarchy) float64 {
	worst := 0.0
	for li := range a.Levels {
		for _, bc := range a.OwnedBlocks(li) {
			d := a.BlockField(li, bc[0], bc[1], bc[2]).MaxAbsDiff(b.BlockField(li, bc[0], bc[1], bc[2]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func ownershipEqual(a, b *grid.Hierarchy) bool {
	for li := range a.Levels {
		for i := range a.Levels[li].Owned {
			if a.Levels[li].Owned[i] != b.Levels[li].Owned[i] {
				return false
			}
		}
	}
	return true
}

func TestRoundTripAllArrangements(t *testing.T) {
	h := amrHierarchy(t, 64, 1)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, arr := range []Arrangement{ArrangeLinear, ArrangeStack, ArrangeTAC, ArrangeZOrder1D} {
		opt := Options{EB: eb, Compressor: SZ3, Arrangement: arr}
		c, err := CompressHierarchy(h, opt)
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		g, err := Decompress(c.Blob)
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		if !ownershipEqual(h, g) {
			t.Fatalf("%v: ownership not preserved", arr)
		}
		if d := maxLevelError(h, g); d > eb*(1+1e-12) {
			t.Fatalf("%v: max error %g exceeds %g", arr, d, eb)
		}
	}
}

func TestRoundTripAllCompressors(t *testing.T) {
	h := amrHierarchy(t, 64, 2)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, comp := range []Compressor{SZ3, SZ2, ZFP} {
		opt := Options{EB: eb, Compressor: comp, Arrangement: ArrangeLinear}
		c, err := CompressHierarchy(h, opt)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		g, err := Decompress(c.Blob)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		if d := maxLevelError(h, g); d > eb*(1+1e-12) {
			t.Fatalf("%v: max error %g exceeds %g", comp, d, eb)
		}
	}
}

func TestSZ3MRPresetRoundTripAndBound(t *testing.T) {
	h := amrHierarchy(t, 64, 3)
	eb := h.Levels[0].Data.ValueRange() * 5e-4
	c, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLevelError(h, g); d > eb*(1+1e-12) {
		t.Fatalf("SZ3MR: max error %g exceeds %g", d, eb)
	}
	if c.Ratio(h) < 2 {
		t.Fatalf("SZ3MR ratio %.2f implausibly low", c.Ratio(h))
	}
}

func TestPaddingOnlyAppliedWhenUnitAbove4(t *testing.T) {
	// blockB=16, 3 levels → unit sizes 16, 8, 4. Padding must apply to the
	// first two only.
	f := synth.Generate(synth.RT, 64, 4)
	h, err := grid.BuildAMR(f, 16, []float64{0.3, 0.4, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(h, SZ3MROptions(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if !p.levels[0].padded || !p.levels[1].padded {
		t.Fatal("levels with u>4 should be padded")
	}
	if p.levels[2].padded {
		t.Fatal("u=4 level must not be padded (overhead rule)")
	}
	// Padded shape is (u+1)×(u+1)×L.
	if p.levels[0].merged.Nx != 17 || p.levels[0].merged.Ny != 17 {
		t.Fatalf("padded shape %v", p.levels[0].merged)
	}
	// Round trip still exact within bound.
	c, err := p.Compress()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLevelError(h, g); d > 1e-3*(1+1e-12) {
		t.Fatalf("3-level padded round trip error %g", d)
	}
}

func TestAdaptiveDataFromROI(t *testing.T) {
	f := synth.Generate(synth.WarpX, 64, 5)
	h, err := roi.Convert(f, roi.Options{BlockB: 16, TopFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eb := f.ValueRange() * 1e-3
	c, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLevelError(h, g); d > eb*(1+1e-12) {
		t.Fatalf("adaptive data error %g exceeds %g", d, eb)
	}
}

func TestPadImprovesCompressionAtSameEB(t *testing.T) {
	// The headline mechanism: padding should improve rate-distortion. At a
	// fixed error bound it should not cost much size and typically helps on
	// smooth data; we assert the effect direction on PSNR-per-byte by
	// comparing sizes with bounded tolerance, then assert strictly that
	// pad+eb beats the stack (AMRIC) arrangement on this dataset.
	f := synth.Generate(synth.Nyx, 64, 6)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	eb := f.ValueRange() * 2e-3
	ours, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	amric, err := CompressHierarchy(h, AMRICSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	if float64(ours.Size()) > 1.15*float64(amric.Size()) {
		t.Fatalf("SZ3MR size %d much worse than AMRIC %d at same eb", ours.Size(), amric.Size())
	}
}

func TestEmptyLevelHandled(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 7)
	h, err := grid.BuildAMR(f, 8, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, arr := range []Arrangement{ArrangeLinear, ArrangeStack, ArrangeTAC, ArrangeZOrder1D} {
		c, err := CompressHierarchy(h, Options{EB: 0.01, Arrangement: arr})
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		g, err := Decompress(c.Blob)
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		if d := maxLevelError(h, g); d > 0.01*(1+1e-12) {
			t.Fatalf("%v: error %g", arr, d)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	h := amrHierarchy(t, 32, 8)
	if _, err := CompressHierarchy(h, Options{EB: 0}); err == nil {
		t.Fatal("zero eb accepted")
	}
	if _, err := Decompress([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	c, err := CompressHierarchy(h, Options{EB: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(c.Blob[:20]); err == nil {
		t.Fatal("truncated container accepted")
	}
}

func TestLevelBytesAccounting(t *testing.T) {
	h := amrHierarchy(t, 64, 9)
	c, err := CompressHierarchy(h, SZ3MROptions(h.Levels[0].Data.ValueRange()*1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LevelBytes) != 2 {
		t.Fatalf("LevelBytes = %v", c.LevelBytes)
	}
	sum := 0
	for _, b := range c.LevelBytes {
		if b <= 0 {
			t.Fatalf("level with zero compressed bytes: %v", c.LevelBytes)
		}
		sum += b
	}
	if sum > c.Size() {
		t.Fatalf("level bytes %d exceed container %d", sum, c.Size())
	}
}

func TestOptionStringers(t *testing.T) {
	if SZ3.String() != "SZ3" || ZFP.String() != "ZFP" {
		t.Fatal("compressor stringer broken")
	}
	if ArrangeLinear.String() != "linear" || ArrangeTAC.String() != "tac" {
		t.Fatal("arrangement stringer broken")
	}
}

func TestWorkersByteIdenticalContainers(t *testing.T) {
	// The worker pool must never change the serialized container: Workers=1
	// and Workers=N are required to produce byte-identical blobs for every
	// arrangement, and decoding with any worker count must reconstruct the
	// same hierarchy.
	h := amrHierarchy(t, 64, 21)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, arr := range []Arrangement{ArrangeLinear, ArrangeStack, ArrangeTAC, ArrangeZOrder1D} {
		serial := Options{EB: eb, Arrangement: arr, Workers: 1}
		c1, err := CompressHierarchy(h, serial)
		if err != nil {
			t.Fatalf("%v workers=1: %v", arr, err)
		}
		for _, workers := range []int{2, 8} {
			opt := serial
			opt.Workers = workers
			cn, err := CompressHierarchy(h, opt)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", arr, workers, err)
			}
			if !bytes.Equal(c1.Blob, cn.Blob) {
				t.Fatalf("%v: workers=1 and workers=%d containers differ (%d vs %d bytes)",
					arr, workers, len(c1.Blob), len(cn.Blob))
			}
		}
		g1, err := DecompressWorkers(c1.Blob, 1)
		if err != nil {
			t.Fatalf("%v decode workers=1: %v", arr, err)
		}
		for _, workers := range []int{8, -3} { // negative must clamp to serial, not hang
			gn, err := DecompressWorkers(c1.Blob, workers)
			if err != nil {
				t.Fatalf("%v decode workers=%d: %v", arr, workers, err)
			}
			if !ownershipEqual(g1, gn) || maxLevelError(g1, gn) != 0 {
				t.Fatalf("%v: decode differs between worker counts", arr)
			}
		}
	}
}

func TestSZ2BlockSizeLargeHeaderRoundTrip(t *testing.T) {
	// v1 wrote SZ2BlockSize as one byte, so 256 wrapped to 0 and a
	// round-trip decoded with the wrong block size. v2 stores a uvarint.
	h := amrHierarchy(t, 64, 22)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, bs := range []int{200, 256, 300, 1 << 20} {
		opt := Options{EB: eb, Compressor: SZ2, SZ2BlockSize: bs}
		c, err := CompressHierarchy(h, opt)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		parsed, _, err := parseContainer(c.Blob)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		if parsed.version != containerVersion {
			t.Fatalf("bs=%d: container version %d", bs, parsed.version)
		}
		if parsed.opt.SZ2BlockSize != bs {
			t.Fatalf("bs=%d: header round-tripped to %d", bs, parsed.opt.SZ2BlockSize)
		}
		g, err := Decompress(c.Blob)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		if d := maxLevelError(h, g); d > eb*(1+1e-12) {
			t.Fatalf("bs=%d: max error %g exceeds %g", bs, d, eb)
		}
	}
	if _, err := CompressHierarchy(h, Options{EB: eb, Compressor: SZ2, SZ2BlockSize: -4}); err == nil {
		t.Fatal("negative SZ2 block size accepted")
	}
	if _, err := CompressHierarchy(h, Options{EB: eb, Compressor: SZ2, SZ2BlockSize: 1 << 40}); err == nil {
		t.Fatal("absurd SZ2 block size accepted")
	}
}

func TestV1ContainerReadPath(t *testing.T) {
	// For SZ2BlockSize < 128 the uvarint encoding is the same single byte
	// v1 wrote, so rewriting the version byte of a v2 container yields a
	// valid v1 container; the v1 read path must decode it identically.
	h := amrHierarchy(t, 64, 23)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	c, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), c.Blob...)
	v1[4] = 1
	parsed, _, err := parseContainer(v1)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.version != 1 || parsed.opt.SZ2BlockSize != 4 {
		t.Fatalf("v1 parse: version=%d SZ2BlockSize=%d", parsed.version, parsed.opt.SZ2BlockSize)
	}
	g2, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Decompress(v1)
	if err != nil {
		t.Fatal(err)
	}
	if !ownershipEqual(g1, g2) || maxLevelError(g1, g2) != 0 {
		t.Fatal("v1 and v2 decodes differ")
	}
	v1[4] = containerVersion + 1
	if _, err := Decompress(v1); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestOverflowingBlockCountRejectedOnRead(t *testing.T) {
	// A per-level block-count uvarint ≥ 2^63 wraps negative as int; the
	// guard must compare unsigned and error rather than panic in make().
	c, err := CompressHierarchy(corruptionHierarchyForOverflow(t), Options{EB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), c.Blob...)
	// Locate the first level's block-count uvarint: it follows the fixed
	// header (5+5+1 bytes + 3 float64s) and 5 dimension uvarints.
	off := 4 + 1 + 5 + 1 + 1 + 3*8
	for i := 0; i < 5; i++ {
		_, n := binary.Uvarint(blob[off:])
		off += n
	}
	crafted := append(append([]byte(nil), blob[:off]...), binary.AppendUvarint(nil, 1<<63)...)
	crafted = append(crafted, blob[off:]...)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("overflowing block count panicked: %v", r)
		}
	}()
	if _, err := Decompress(crafted); err == nil {
		t.Fatal("overflowing block count accepted")
	}
}

func TestOverflowingBoxCountRejectedOnRead(t *testing.T) {
	// The TAC box count needs the same unsigned guard as the block count:
	// a wrapped-negative count previously skipped all boxes and misparsed
	// the rest of the container without error.
	h := corruptionHierarchyForOverflow(t)
	c, err := CompressHierarchy(h, Options{EB: 0.01, Arrangement: ArrangeTAC})
	if err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), c.Blob...)
	// Walk to level 0's box count: fixed header, 5 dim uvarints, block
	// count + that many varint deltas, padded byte.
	off := 4 + 1 + 5 + 1 + 1 + 3*8
	skipUv := func() uint64 {
		v, n := binary.Uvarint(blob[off:])
		off += n
		return v
	}
	for i := 0; i < 5; i++ {
		skipUv()
	}
	nBlocks := skipUv()
	for i := uint64(0); i < nBlocks; i++ {
		_, n := binary.Varint(blob[off:])
		off += n
	}
	off++ // padded flag
	crafted := append(append([]byte(nil), blob[:off]...), binary.AppendUvarint(nil, 1<<63)...)
	crafted = append(crafted, blob[off:]...)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("overflowing box count panicked: %v", r)
		}
	}()
	if _, err := Decompress(crafted); err == nil {
		t.Fatal("overflowing box count accepted")
	}
}

func corruptionHierarchyForOverflow(t *testing.T) *grid.Hierarchy {
	t.Helper()
	f := synth.Generate(synth.Nyx, 32, 30)
	h, err := grid.BuildAMR(f, 8, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestImplausibleSZ2BlockSizeRejectedOnRead(t *testing.T) {
	// Hand-craft a v2 header whose SZ2BlockSize uvarint is absurdly large:
	// the header scan must reject it rather than wrap or pass it through.
	blob := []byte("MRWF")
	blob = append(blob, 2, 0, 0, 0, 0, 0) // version + 5 option bytes
	blob = binary.AppendUvarint(blob, 1<<40)
	blob = append(blob, make([]byte, 40)...) // interp byte + padding past the min-length check
	if _, err := Decompress(blob); err == nil {
		t.Fatal("implausible SZ2 block size accepted")
	}
}

func TestAdaptiveEBDefaultsApplied(t *testing.T) {
	o := (&Options{EB: 1}).withDefaults()
	if o.Alpha != 2.25 || o.Beta != 8 {
		t.Fatalf("defaults alpha=%g beta=%g", o.Alpha, o.Beta)
	}
	if o.SZ2BlockSize != 4 {
		t.Fatalf("default SZ2 block size %d", o.SZ2BlockSize)
	}
	if math.Abs(o.EB-1) > 0 {
		t.Fatal("EB clobbered")
	}
}
