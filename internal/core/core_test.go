package core

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/roi"
	"repro/internal/synth"
)

func amrHierarchy(t *testing.T, n int, seed int64) *grid.Hierarchy {
	t.Helper()
	f := synth.Generate(synth.Nyx, n, seed)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// maxLevelError returns the max abs error between matching owned blocks of
// two hierarchies.
func maxLevelError(a, b *grid.Hierarchy) float64 {
	worst := 0.0
	for li := range a.Levels {
		for _, bc := range a.OwnedBlocks(li) {
			d := a.BlockField(li, bc[0], bc[1], bc[2]).MaxAbsDiff(b.BlockField(li, bc[0], bc[1], bc[2]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func ownershipEqual(a, b *grid.Hierarchy) bool {
	for li := range a.Levels {
		for i := range a.Levels[li].Owned {
			if a.Levels[li].Owned[i] != b.Levels[li].Owned[i] {
				return false
			}
		}
	}
	return true
}

func TestRoundTripAllArrangements(t *testing.T) {
	h := amrHierarchy(t, 64, 1)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, arr := range []Arrangement{ArrangeLinear, ArrangeStack, ArrangeTAC, ArrangeZOrder1D} {
		opt := Options{EB: eb, Compressor: SZ3, Arrangement: arr}
		c, err := CompressHierarchy(h, opt)
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		g, err := Decompress(c.Blob)
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		if !ownershipEqual(h, g) {
			t.Fatalf("%v: ownership not preserved", arr)
		}
		if d := maxLevelError(h, g); d > eb*(1+1e-12) {
			t.Fatalf("%v: max error %g exceeds %g", arr, d, eb)
		}
	}
}

func TestRoundTripAllCompressors(t *testing.T) {
	h := amrHierarchy(t, 64, 2)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, comp := range []Compressor{SZ3, SZ2, ZFP} {
		opt := Options{EB: eb, Compressor: comp, Arrangement: ArrangeLinear}
		c, err := CompressHierarchy(h, opt)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		g, err := Decompress(c.Blob)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		if d := maxLevelError(h, g); d > eb*(1+1e-12) {
			t.Fatalf("%v: max error %g exceeds %g", comp, d, eb)
		}
	}
}

func TestSZ3MRPresetRoundTripAndBound(t *testing.T) {
	h := amrHierarchy(t, 64, 3)
	eb := h.Levels[0].Data.ValueRange() * 5e-4
	c, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLevelError(h, g); d > eb*(1+1e-12) {
		t.Fatalf("SZ3MR: max error %g exceeds %g", d, eb)
	}
	if c.Ratio(h) < 2 {
		t.Fatalf("SZ3MR ratio %.2f implausibly low", c.Ratio(h))
	}
}

func TestPaddingOnlyAppliedWhenUnitAbove4(t *testing.T) {
	// blockB=16, 3 levels → unit sizes 16, 8, 4. Padding must apply to the
	// first two only.
	f := synth.Generate(synth.RT, 64, 4)
	h, err := grid.BuildAMR(f, 16, []float64{0.3, 0.4, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(h, SZ3MROptions(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if !p.levels[0].padded || !p.levels[1].padded {
		t.Fatal("levels with u>4 should be padded")
	}
	if p.levels[2].padded {
		t.Fatal("u=4 level must not be padded (overhead rule)")
	}
	// Padded shape is (u+1)×(u+1)×L.
	if p.levels[0].merged.Nx != 17 || p.levels[0].merged.Ny != 17 {
		t.Fatalf("padded shape %v", p.levels[0].merged)
	}
	// Round trip still exact within bound.
	c, err := p.Compress()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLevelError(h, g); d > 1e-3*(1+1e-12) {
		t.Fatalf("3-level padded round trip error %g", d)
	}
}

func TestAdaptiveDataFromROI(t *testing.T) {
	f := synth.Generate(synth.WarpX, 64, 5)
	h, err := roi.Convert(f, roi.Options{BlockB: 16, TopFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eb := f.ValueRange() * 1e-3
	c, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxLevelError(h, g); d > eb*(1+1e-12) {
		t.Fatalf("adaptive data error %g exceeds %g", d, eb)
	}
}

func TestPadImprovesCompressionAtSameEB(t *testing.T) {
	// The headline mechanism: padding should improve rate-distortion. At a
	// fixed error bound it should not cost much size and typically helps on
	// smooth data; we assert the effect direction on PSNR-per-byte by
	// comparing sizes with bounded tolerance, then assert strictly that
	// pad+eb beats the stack (AMRIC) arrangement on this dataset.
	f := synth.Generate(synth.Nyx, 64, 6)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	eb := f.ValueRange() * 2e-3
	ours, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	amric, err := CompressHierarchy(h, AMRICSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	if float64(ours.Size()) > 1.15*float64(amric.Size()) {
		t.Fatalf("SZ3MR size %d much worse than AMRIC %d at same eb", ours.Size(), amric.Size())
	}
}

func TestEmptyLevelHandled(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 7)
	h, err := grid.BuildAMR(f, 8, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, arr := range []Arrangement{ArrangeLinear, ArrangeStack, ArrangeTAC, ArrangeZOrder1D} {
		c, err := CompressHierarchy(h, Options{EB: 0.01, Arrangement: arr})
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		g, err := Decompress(c.Blob)
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		if d := maxLevelError(h, g); d > 0.01*(1+1e-12) {
			t.Fatalf("%v: error %g", arr, d)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	h := amrHierarchy(t, 32, 8)
	if _, err := CompressHierarchy(h, Options{EB: 0}); err == nil {
		t.Fatal("zero eb accepted")
	}
	if _, err := Decompress([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	c, err := CompressHierarchy(h, Options{EB: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(c.Blob[:20]); err == nil {
		t.Fatal("truncated container accepted")
	}
}

func TestLevelBytesAccounting(t *testing.T) {
	h := amrHierarchy(t, 64, 9)
	c, err := CompressHierarchy(h, SZ3MROptions(h.Levels[0].Data.ValueRange()*1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LevelBytes) != 2 {
		t.Fatalf("LevelBytes = %v", c.LevelBytes)
	}
	sum := 0
	for _, b := range c.LevelBytes {
		if b <= 0 {
			t.Fatalf("level with zero compressed bytes: %v", c.LevelBytes)
		}
		sum += b
	}
	if sum > c.Size() {
		t.Fatalf("level bytes %d exceed container %d", sum, c.Size())
	}
}

func TestOptionStringers(t *testing.T) {
	if SZ3.String() != "SZ3" || ZFP.String() != "ZFP" {
		t.Fatal("compressor stringer broken")
	}
	if ArrangeLinear.String() != "linear" || ArrangeTAC.String() != "tac" {
		t.Fatal("arrangement stringer broken")
	}
}

func TestAdaptiveEBDefaultsApplied(t *testing.T) {
	o := (&Options{EB: 1}).withDefaults()
	if o.Alpha != 2.25 || o.Beta != 8 {
		t.Fatalf("defaults alpha=%g beta=%g", o.Alpha, o.Beta)
	}
	if o.SZ2BlockSize != 4 {
		t.Fatalf("default SZ2 block size %d", o.SZ2BlockSize)
	}
	if math.Abs(o.EB-1) > 0 {
		t.Fatal("EB clobbered")
	}
}
