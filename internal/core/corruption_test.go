package core

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/index"
	"repro/internal/synth"
	"repro/internal/sz2"
	"repro/internal/sz3"
	"repro/internal/zfp"
)

// Failure injection: decoders must never panic on corrupted or truncated
// input — they must either return an error or (for corruption the checksums
// cannot see, e.g. flipped data bits) produce some decoded output.

func corruptionHierarchy(t *testing.T) *grid.Hierarchy {
	t.Helper()
	f := synth.Generate(synth.Nyx, 32, 11)
	h, err := grid.BuildAMR(f, 8, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// mustNotPanic runs fn and converts any panic into a test failure.
func mustNotPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", what, r)
		}
	}()
	fn()
}

func TestContainerTruncationNeverPanics(t *testing.T) {
	h := corruptionHierarchy(t)
	c, err := CompressHierarchy(h, SZ3MROptions(1e-3*h.Levels[0].Data.ValueRange()))
	if err != nil {
		t.Fatal(err)
	}
	blob := c.Blob
	// The index footer is strictly additive: cutting anywhere inside the
	// body must error, while cutting only footer bytes still decodes (the
	// sequential decoder never reads past the last stream).
	body, ok := index.Locate(blob)
	if !ok {
		t.Fatal("compressed container has no index footer")
	}
	for _, n := range []int{0, 1, 4, 5, 12, body / 4, body / 2, body - 1} {
		n := n
		mustNotPanic(t, "truncated container", func() {
			if _, err := Decompress(blob[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
		})
	}
	for _, n := range []int{body, body + 1, len(blob) - 1} {
		g, err := Decompress(blob[:n])
		if err != nil {
			t.Fatalf("footer-only truncation to %d bytes failed to decode: %v", n, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("footer-only truncation to %d bytes decoded invalid hierarchy: %v", n, err)
		}
	}
}

func TestContainerBitFlipsNeverPanic(t *testing.T) {
	h := corruptionHierarchy(t)
	for _, comp := range []Compressor{SZ3, SZ2, ZFP} {
		c, err := CompressHierarchy(h, Options{EB: 1e5, Compressor: comp})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 200; trial++ {
			blob := make([]byte, len(c.Blob))
			copy(blob, c.Blob)
			pos := rng.Intn(len(blob))
			blob[pos] ^= 1 << uint(rng.Intn(8))
			mustNotPanic(t, comp.String()+" bit flip", func() {
				_, _ = Decompress(blob) // error or success both fine
			})
		}
	}
}

func TestBackendBitFlipsNeverPanic(t *testing.T) {
	f := synth.Generate(synth.S3D, 16, 12)
	eb := f.ValueRange() * 1e-3
	type codec struct {
		name string
		enc  func() ([]byte, error)
		dec  func([]byte) error
	}
	codecs := []codec{
		{"sz3",
			func() ([]byte, error) { return sz3.Compress(f, sz3.Options{EB: eb}) },
			func(b []byte) error { _, err := sz3.Decompress(b); return err }},
		{"sz2",
			func() ([]byte, error) { return sz2.Compress(f, sz2.Options{EB: eb}) },
			func(b []byte) error { _, err := sz2.Decompress(b); return err }},
		{"zfp",
			func() ([]byte, error) { return zfp.Compress(f, zfp.Options{Tolerance: eb}) },
			func(b []byte) error { _, err := zfp.Decompress(b); return err }},
	}
	rng := rand.New(rand.NewSource(14))
	for _, c := range codecs {
		blob, err := c.enc()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			mut := make([]byte, len(blob))
			copy(mut, blob)
			mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
			mustNotPanic(t, c.name+" bit flip", func() { _ = c.dec(mut) })
		}
		for _, n := range []int{0, 1, len(blob) / 3, len(blob) - 1} {
			n := n
			mustNotPanic(t, c.name+" truncation", func() {
				if err := c.dec(blob[:n]); err == nil {
					t.Fatalf("%s decoded %d-byte truncation", c.name, n)
				}
			})
		}
	}
}

func TestRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 100; trial++ {
		blob := make([]byte, rng.Intn(512))
		rng.Read(blob)
		mustNotPanic(t, "garbage", func() { _, _ = Decompress(blob) })
		mustNotPanic(t, "garbage sz3", func() { _, _ = sz3.Decompress(blob) })
		mustNotPanic(t, "garbage sz2", func() { _, _ = sz2.Decompress(blob) })
		mustNotPanic(t, "garbage zfp", func() { _, _ = zfp.Decompress(blob) })
	}
}
