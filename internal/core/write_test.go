package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
)

// writeConfigs spans every arrangement and compressor the container format
// carries, the full matrix the streaming writer must reproduce exactly.
func writeConfigs(eb float64) map[string]Options {
	return map[string]Options{
		"sz3mr":    SZ3MROptions(eb),
		"baseline": BaselineSZ3Options(eb),
		"stack":    AMRICSZ3Options(eb),
		"tac":      TACSZ3Options(eb),
		"zorder":   {EB: eb, Compressor: SZ3, Arrangement: ArrangeZOrder1D},
		"sz2":      AMRICSZ2Options(eb),
		"tac-sz2":  {EB: eb, Compressor: SZ2, Arrangement: ArrangeTAC},
		"zfp":      MRZFPOptions(eb),
		"tac-zfp":  {EB: eb, Compressor: ZFP, Arrangement: ArrangeTAC},
		"flate":    {EB: eb, Compressor: Flate},
		"mixed": {EB: eb, Compressor: SZ3, Pad: true, AdaptiveEB: true,
			LevelCodecs: map[int]Compressor{1: Flate}},
		"tac-mixed": {EB: eb, Compressor: SZ3, Arrangement: ArrangeTAC,
			LevelCodecs: map[int]Compressor{0: ZFP, 1: Flate}},
	}
}

// TestCompressToMatchesCompress locks the tentpole invariant: the streaming
// writer's output is byte-for-byte the monolithic Compress().Blob, for
// every arrangement, every backend, and several worker counts (worker count
// changes wave boundaries, never bytes).
func TestCompressToMatchesCompress(t *testing.T) {
	h, eb := goldenHierarchy(t)
	for name, opt := range writeConfigs(eb) {
		t.Run(name, func(t *testing.T) {
			p, err := Prepare(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Compress()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7} {
				wopt := opt
				wopt.Workers = workers
				wp, err := Prepare(h, wopt)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				res, err := wp.CompressTo(&buf)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(buf.Bytes(), want.Blob) {
					t.Fatalf("workers=%d: streamed container differs from Compress (%d vs %d bytes)",
						workers, buf.Len(), len(want.Blob))
				}
				if res.Bytes != int64(len(want.Blob)) {
					t.Fatalf("workers=%d: WriteResult.Bytes = %d, container is %d", workers, res.Bytes, len(want.Blob))
				}
				for li, lb := range res.LevelBytes {
					if lb != want.LevelBytes[li] {
						t.Fatalf("workers=%d: LevelBytes[%d] = %d, want %d", workers, li, lb, want.LevelBytes[li])
					}
				}
				if len(wp.jobs()) > 0 && res.MaxBufferedBytes <= 0 {
					t.Fatalf("workers=%d: MaxBufferedBytes not tracked", workers)
				}
				if res.MaxBufferedBytes > int64(len(want.Blob)) {
					t.Fatalf("workers=%d: buffered %d bytes, more than the whole container", workers, res.MaxBufferedBytes)
				}
			}
		})
	}
}

// TestCompressToMatchesGoldenFixtures locks the streaming writer against
// the committed fixtures directly: it must reproduce the v3 fixture's body
// byte-for-byte, and that body (version byte rewritten) must be the
// committed v2 fixture — the same identities the monolithic path is held
// to. (Footers are compared semantically in TestGoldenContainer: the
// writer now emits the checked footer version over the unchanged body.)
func TestCompressToMatchesGoldenFixtures(t *testing.T) {
	h, eb := goldenHierarchy(t)
	p, err := Prepare(h, TACSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.CompressTo(&buf); err != nil {
		t.Fatal(err)
	}
	v3, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3-v3.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	fixtureBody, ok := index.Locate(v3)
	if !ok {
		t.Fatal("v3 fixture has no index footer")
	}
	gotBody, ok := index.Locate(buf.Bytes())
	if !ok {
		t.Fatal("streamed container has no index footer")
	}
	if !bytes.Equal(buf.Bytes()[:gotBody], v3[:fixtureBody]) {
		t.Fatalf("streamed body diverged from the v3 golden fixture (%d vs %d bytes)", gotBody, fixtureBody)
	}
	v2, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3.mrc"))
	if err != nil {
		t.Fatal(err)
	}
	body, ok := index.Locate(buf.Bytes())
	if !ok {
		t.Fatal("streamed container has no index footer")
	}
	asV2 := append([]byte(nil), buf.Bytes()[:body]...)
	asV2[4] = 2
	if !bytes.Equal(asV2, v2) {
		t.Fatal("streamed body is not the v2 fixture plus a footer")
	}
}

// TestCompressToStreamedContainerDecodes round-trips a streamed container
// through both the sequential decoder and a CompressHierarchyTo write.
func TestCompressToStreamedContainerDecodes(t *testing.T) {
	h, eb := goldenHierarchy(t)
	var buf bytes.Buffer
	if _, err := CompressHierarchyTo(h, SZ3MROptions(eb), &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompressHierarchy(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	for li := range want.Levels {
		if !got.Levels[li].Data.Equal(want.Levels[li].Data) {
			t.Fatalf("level %d differs between streamed and monolithic round trips", li)
		}
	}
}

// failAfter errors once n bytes have been accepted.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.err
	}
	f.n -= len(p)
	return len(p), nil
}

// TestCompressToPropagatesWriteErrors proves a failing destination surfaces
// the sink's error instead of a panic or silent truncation.
func TestCompressToPropagatesWriteErrors(t *testing.T) {
	h, eb := goldenHierarchy(t)
	p, err := Prepare(h, SZ3MROptions(eb))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compress()
	if err != nil {
		t.Fatal(err)
	}
	sinkErr := errors.New("sink full")
	// Fail in the header, mid-body, and inside the footer.
	for _, limit := range []int{0, 3, 100, len(c.Blob) - 4} {
		_, err := p.CompressTo(&failAfter{n: limit, err: sinkErr})
		if !errors.Is(err, sinkErr) {
			t.Fatalf("limit %d: error %v, want the sink's", limit, err)
		}
	}
}

// TestCompressToWaveBound checks the advertised memory discipline: with
// Workers=1 the writer never holds more than the largest single compressed
// stream.
func TestCompressToWaveBound(t *testing.T) {
	h, eb := goldenHierarchy(t)
	opt := TACSZ3Options(eb) // TAC: many streams per container
	opt.Workers = 1
	p, err := Prepare(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compress()
	if err != nil {
		t.Fatal(err)
	}
	largest := 0
	ix, err := BuildIndex(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Streams) < 2 {
		t.Fatalf("want a multi-stream container, got %d streams", len(ix.Streams))
	}
	for _, s := range ix.Streams {
		largest = max(largest, int(s.Len))
	}
	var buf bytes.Buffer
	res, err := p.CompressTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxBufferedBytes > int64(largest) {
		t.Fatalf("serial write buffered %d bytes, largest stream is %d", res.MaxBufferedBytes, largest)
	}
}

func init() {
	// Guard against accidentally quadratic fixture configs.
	if len(writeConfigs(1)) < 9 {
		panic(fmt.Sprintf("writeConfigs shrank: %d", len(writeConfigs(1))))
	}
}
