package core

import (
	"bytes"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/index"
	"repro/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from the current coder")

// goldenHierarchy is the fixed input both golden fixtures were produced
// from.
func goldenHierarchy(t *testing.T) (*grid.Hierarchy, float64) {
	t.Helper()
	f := synth.Generate(synth.Nyx, 32, 7)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return h, f.ValueRange() * 1e-3
}

// goldenCases are the committed container fixtures: one per backend
// (locking each codec's container path byte-for-byte across refactors)
// plus a mixed-codec container exercising the per-level override format.
var goldenCases = []struct {
	name string
	file string
	opts func(eb float64) Options
}{
	{"tac-sz3", "golden-tac-sz3-v3.mrw", TACSZ3Options},
	{"linear-sz2", "golden-linear-sz2-v3.mrw", AMRICSZ2Options},
	{"linear-zfp", "golden-linear-zfp-v3.mrw", MRZFPOptions},
	// Fine level error-bounded sz3, coarse level lossless flate: the
	// canonical mixed-precision configuration, written as format v4.
	{"mixed-sz3-flate", "golden-mixed-sz3-flate-v4.mrw", func(eb float64) Options {
		o := SZ3MROptions(eb)
		o.LevelCodecs = map[int]Compressor{1: Flate}
		return o
	}},
}

// TestGoldenContainer locks the container bodies — header layout, every
// per-stream backend payload, per-stream codec bytes (v4) — byte-for-byte
// against every committed fixture, and pins the footer transition: the
// writer emits the checked footer (per-stream CRCs) over an unchanged body,
// while the committed fixtures' original footers must keep parsing — with
// verification reported unavailable — and decoding.
func TestGoldenContainer(t *testing.T) {
	h, eb := goldenHierarchy(t)
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			c, err := CompressHierarchy(h, gc.opts(eb))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", gc.file)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, c.Blob, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read fixture (regenerate with -update): %v", err)
			}
			gotBody, ok := index.Locate(c.Blob)
			if !ok {
				t.Fatal("written container has no index footer")
			}
			wantBody, ok := index.Locate(want)
			if !ok {
				t.Fatal("fixture has no index footer")
			}
			if !bytes.Equal(c.Blob[:gotBody], want[:wantBody]) {
				t.Fatalf("container body diverged from golden fixture: got %d bytes, fixture %d bytes", gotBody, wantBody)
			}
			// The freshly written footer carries per-stream checksums that
			// match the payload bytes it indexes.
			gotIx, err := index.ReadFrom(bytes.NewReader(c.Blob), int64(len(c.Blob)))
			if err != nil {
				t.Fatal(err)
			}
			if !gotIx.StreamCRCs {
				t.Fatal("written footer carries no stream CRCs")
			}
			for i, s := range gotIx.Streams {
				if crc32.ChecksumIEEE(c.Blob[s.Offset:s.Offset+s.Len]) != s.CRC {
					t.Fatalf("stream %d: footer CRC does not match payload bytes", i)
				}
			}
			// The fixture's original footer still parses, reports
			// verification unavailable, and locates the same streams.
			wantIx, err := index.ReadFrom(bytes.NewReader(want), int64(len(want)))
			if err != nil {
				t.Fatalf("parse fixture footer: %v", err)
			}
			if wantIx.StreamCRCs {
				t.Fatal("committed fixture footer unexpectedly reports stream CRCs")
			}
			if len(wantIx.Streams) != len(gotIx.Streams) {
				t.Fatalf("fixture indexes %d streams, writer %d", len(wantIx.Streams), len(gotIx.Streams))
			}
			// Both generations decode: the fixture without verification, the
			// new container through the CRC-verifying path.
			if _, err := Decompress(want); err != nil {
				t.Fatalf("decode fixture: %v", err)
			}
			if _, err := Decompress(c.Blob); err != nil {
				t.Fatalf("decode verified container: %v", err)
			}
		})
	}
}

// TestGoldenMixedCodecContainer pins the mixed-codec fixture's semantics:
// it is a version-4 container whose index names both codecs, and its
// flate-compressed coarse level reconstructs the input bit-exactly while
// the sz3 fine level stays within the error bound.
func TestGoldenMixedCodecContainer(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "golden-mixed-sz3-flate-v4.mrw"))
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if blob[4] != containerVersionMixed {
		t.Fatalf("mixed fixture has container version %d, want %d", blob[4], containerVersionMixed)
	}
	ix, err := index.ReadFrom(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	codecs := map[int]Compressor{}
	for _, s := range ix.Streams {
		codecs[s.Level] = Compressor(s.Compressor)
	}
	if codecs[0] != SZ3 || codecs[1] != Flate {
		t.Fatalf("index stream codecs = %v, want level 0 SZ3, level 1 Flate", codecs)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	h, eb := goldenHierarchy(t)
	if !got.Levels[1].Data.Equal(h.Levels[1].Data) {
		t.Fatal("flate level of the mixed container is not bit-exact")
	}
	if d := h.Levels[0].Data.MaxAbsDiff(got.Levels[0].Data); d > eb {
		t.Fatalf("sz3 level error %g exceeds bound %g", d, eb)
	}
}

// TestGoldenV2BodyIdentity proves the v3 format is strictly additive: the
// v3 fixture's body, with only the version byte rewritten, must equal the
// committed v2 fixture byte-for-byte — so decoders that ignore the index
// see exactly the container they always saw.
func TestGoldenV2BodyIdentity(t *testing.T) {
	v3, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3-v3.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3.mrc"))
	if err != nil {
		t.Fatal(err)
	}
	body, ok := index.Locate(v3)
	if !ok {
		t.Fatal("v3 fixture has no index footer")
	}
	asV2 := append([]byte(nil), v3[:body]...)
	if asV2[4] != 3 {
		t.Fatalf("v3 fixture has version byte %d", asV2[4])
	}
	asV2[4] = 2
	if !bytes.Equal(asV2, v2) {
		t.Fatalf("v3 body (%d bytes) is not the v2 container (%d bytes) plus a footer", body, len(v2))
	}
}

// TestGoldenV2StillDecodes locks the v2 read path: the pre-index fixture
// must keep decoding to exactly the hierarchy the current coder produces.
func TestGoldenV2StillDecodes(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3.mrc"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatalf("decode v2 fixture: %v", err)
	}
	h, eb := goldenHierarchy(t)
	c, err := CompressHierarchy(h, TACSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("level count %d != %d", len(got.Levels), len(want.Levels))
	}
	for li := range got.Levels {
		if !got.Levels[li].Data.Equal(want.Levels[li].Data) {
			t.Fatalf("level %d: v2 fixture decode differs from current decode", li)
		}
	}
}
