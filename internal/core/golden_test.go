package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/index"
	"repro/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from the current coder")

// goldenHierarchy is the fixed input both golden fixtures were produced
// from.
func goldenHierarchy(t *testing.T) (*grid.Hierarchy, float64) {
	t.Helper()
	f := synth.Generate(synth.Nyx, 32, 7)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return h, f.ValueRange() * 1e-3
}

// TestGoldenContainer locks the full v3 container format — header layout,
// every per-stream SZ payload, and the index footer — byte-for-byte.
func TestGoldenContainer(t *testing.T) {
	h, eb := goldenHierarchy(t)
	c, err := CompressHierarchy(h, TACSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden-tac-sz3-v3.mrw")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, c.Blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(c.Blob, want) {
		t.Fatalf("container diverged from golden fixture: got %d bytes, fixture %d bytes", len(c.Blob), len(want))
	}
	if _, err := Decompress(want); err != nil {
		t.Fatalf("decode fixture: %v", err)
	}
}

// TestGoldenV2BodyIdentity proves the v3 format is strictly additive: the
// v3 fixture's body, with only the version byte rewritten, must equal the
// committed v2 fixture byte-for-byte — so decoders that ignore the index
// see exactly the container they always saw.
func TestGoldenV2BodyIdentity(t *testing.T) {
	v3, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3-v3.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3.mrc"))
	if err != nil {
		t.Fatal(err)
	}
	body, ok := index.Locate(v3)
	if !ok {
		t.Fatal("v3 fixture has no index footer")
	}
	asV2 := append([]byte(nil), v3[:body]...)
	if asV2[4] != 3 {
		t.Fatalf("v3 fixture has version byte %d", asV2[4])
	}
	asV2[4] = 2
	if !bytes.Equal(asV2, v2) {
		t.Fatalf("v3 body (%d bytes) is not the v2 container (%d bytes) plus a footer", body, len(v2))
	}
}

// TestGoldenV2StillDecodes locks the v2 read path: the pre-index fixture
// must keep decoding to exactly the hierarchy the current coder produces.
func TestGoldenV2StillDecodes(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "golden-tac-sz3.mrc"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatalf("decode v2 fixture: %v", err)
	}
	h, eb := goldenHierarchy(t)
	c, err := CompressHierarchy(h, TACSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("level count %d != %d", len(got.Levels), len(want.Levels))
	}
	for li := range got.Levels {
		if !got.Levels[li].Data.Equal(want.Levels[li].Data) {
			t.Fatalf("level %d: v2 fixture decode differs from current decode", li)
		}
	}
}
