package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from the current coder")

// TestGoldenContainer locks the full container format — header layout plus
// every per-stream SZ payload — across entropy-stage rewrites. The committed
// fixture was produced by the pre-rewrite coder; the current encoder must
// reproduce it byte-for-byte, and the current decoder must read it.
func TestGoldenContainer(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 7)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	eb := f.ValueRange() * 1e-3
	c, err := CompressHierarchy(h, TACSZ3Options(eb))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden-tac-sz3.mrc")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, c.Blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(c.Blob, want) {
		t.Fatalf("container diverged from golden fixture: got %d bytes, fixture %d bytes", len(c.Blob), len(want))
	}
	if _, err := Decompress(want); err != nil {
		t.Fatalf("decode fixture: %v", err)
	}
}
