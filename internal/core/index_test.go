package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/index"
	"repro/internal/synth"
)

// TestFooterMatchesBodyScan locks the two ways of obtaining a container
// index against each other for every arrangement: the footer written by
// Compress must equal the index synthesized by BuildIndex's sequential
// body scan, and every stream extent it names must slice out the exact
// payload the sequential parser sees.
func TestFooterMatchesBodyScan(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 19)
	h, err := grid.BuildAMR(f, 8, []float64{0.3, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	eb := f.ValueRange() * 1e-3
	for _, arr := range []Arrangement{ArrangeLinear, ArrangeStack, ArrangeTAC, ArrangeZOrder1D} {
		opt := Options{EB: eb, Arrangement: arr, Pad: arr == ArrangeLinear, AdaptiveEB: true}
		c, err := CompressHierarchy(h, opt)
		if err != nil {
			t.Fatalf("%v: %v", arr, err)
		}
		fromFooter, err := index.ReadFrom(bytes.NewReader(c.Blob), int64(len(c.Blob)))
		if err != nil {
			t.Fatalf("%v: footer: %v", arr, err)
		}
		fromScan, err := BuildIndex(c.Blob)
		if err != nil {
			t.Fatalf("%v: scan: %v", arr, err)
		}
		// The footer parse carries the trailer's section CRC; the body scan
		// never saw a serialized section, so normalize before comparing.
		fromFooter.SectionCRC = 0
		if !reflect.DeepEqual(fromFooter, fromScan) {
			t.Fatalf("%v: footer index differs from body scan:\nfooter %+v\nscan   %+v", arr, fromFooter, fromScan)
		}
		// Each indexed stream must decode standalone to its declared size.
		copt := OptionsFromIndex(fromFooter.Opts)
		for _, s := range fromFooter.Streams {
			payload := c.Blob[s.Offset : s.Offset+s.Len]
			g, err := DecodeStream(payload, copt)
			if err != nil {
				t.Fatalf("%v: stream L%dB%d: %v", arr, s.Level, s.Box, err)
			}
			if int64(g.Bytes()) != s.RawLen {
				t.Fatalf("%v: stream L%dB%d decoded to %d bytes, index says %d",
					arr, s.Level, s.Box, g.Bytes(), s.RawLen)
			}
		}
	}
}

// TestOptionsIndexRoundTrip locks the Options ↔ index.Opts echo.
func TestOptionsIndexRoundTrip(t *testing.T) {
	o := Options{
		EB: 2.5e-3, Compressor: SZ2, Arrangement: ArrangeTAC,
		Pad: true, PadKind: 2, AdaptiveEB: true,
		Alpha: 2.25, Beta: 8, SZ2BlockSize: 260, Interp: 1,
	}
	back := OptionsFromIndex(indexOpts(o))
	if !reflect.DeepEqual(back, o) {
		t.Fatalf("round trip mismatch: %+v != %+v", back, o)
	}
}
