// Package uncertainty implements the paper's uncertainty-visualization stage
// (§III-C): treating decompressed data as uncertain data whose per-voxel
// error follows a normal distribution, and running probabilistic marching
// cubes (Pöthkow et al. 2011; Athawale et al. 2021) to compute, per cell,
// the probability that the isosurface crosses it.
//
// The error distribution's mean and variance come from the compression-error
// samples already collected for post-processing (reused at no extra cost, as
// in Fig. 3 of the paper), optionally conditioned on voxels near the
// isovalue (isovalue-related variance).
package uncertainty

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/field"
	"repro/internal/mcubes"
	"repro/internal/postproc"
)

// ErrorModel is the per-voxel normal error model: the true value at a voxel
// with decompressed value d is modeled as N(d + Mean, StdDev²).
type ErrorModel struct {
	Mean   float64
	StdDev float64
}

// ModelFromSamples builds an error model from the post-processing sample
// set, using all sampled voxels.
func ModelFromSamples(s *postproc.SampleSet) ErrorModel {
	mean, variance := s.ErrorStats()
	return ErrorModel{Mean: mean, StdDev: math.Sqrt(variance)}
}

// ModelNearIsovalue builds an isovalue-conditioned error model: only voxels
// whose decompressed value lies within window of iso contribute, since those
// are the voxels that decide isosurface topology. Falls back to the global
// model when too few voxels qualify.
func ModelNearIsovalue(s *postproc.SampleSet, iso, window float64) ErrorModel {
	mean, variance, count := s.ErrorStatsNearIsovalue(iso, window)
	if count < 16 {
		return ModelFromSamples(s)
	}
	return ErrorModel{Mean: mean, StdDev: math.Sqrt(variance)}
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// VertexAboveProb returns P(true value ≥ iso) for a voxel with decompressed
// value d under the model. With zero variance it degenerates to a step.
func (m ErrorModel) VertexAboveProb(d, iso float64) float64 {
	mu := d + m.Mean
	if m.StdDev == 0 {
		if mu >= iso {
			return 1
		}
		return 0
	}
	return 1 - phi((iso-mu)/m.StdDev)
}

// CrossProbabilities computes, per cell, the probability that the
// isosurface crosses it under the independent-Gaussian model:
//
//	P(cross) = 1 − P(all 8 corners above) − P(all 8 corners below).
//
// The result is a cell-centered field of shape (Nx−1)×(Ny−1)×(Nz−1).
func CrossProbabilities(decomp *field.Field, iso float64, m ErrorModel) (*field.Field, error) {
	cx, cy, cz := decomp.Nx-1, decomp.Ny-1, decomp.Nz-1
	if cx <= 0 || cy <= 0 || cz <= 0 {
		return nil, errors.New("uncertainty: field too small for cells")
	}
	// Precompute per-voxel above-probabilities.
	pAbove := make([]float64, decomp.Len())
	for i, d := range decomp.Data {
		pAbove[i] = m.VertexAboveProb(d, iso)
	}
	out := field.New(cx, cy, cz)
	idx := func(x, y, z int) int { return x + decomp.Nx*(y+decomp.Ny*z) }
	for z := 0; z < cz; z++ {
		for y := 0; y < cy; y++ {
			for x := 0; x < cx; x++ {
				allAbove, allBelow := 1.0, 1.0
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							p := pAbove[idx(x+dx, y+dy, z+dz)]
							allAbove *= p
							allBelow *= 1 - p
						}
					}
				}
				out.Set(x, y, z, 1-allAbove-allBelow)
			}
		}
	}
	return out, nil
}

// MonteCarloCrossProbabilities estimates the same probabilities by sampling
// realizations of the error model — a validation reference for the closed
// form (and the general mechanism of probabilistic marching cubes for
// non-Gaussian models).
func MonteCarloCrossProbabilities(decomp *field.Field, iso float64, m ErrorModel, trials int, seed int64) (*field.Field, error) {
	cx, cy, cz := decomp.Nx-1, decomp.Ny-1, decomp.Nz-1
	if cx <= 0 || cy <= 0 || cz <= 0 {
		return nil, errors.New("uncertainty: field too small for cells")
	}
	if trials <= 0 {
		return nil, errors.New("uncertainty: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, cx*cy*cz)
	sample := field.New(decomp.Nx, decomp.Ny, decomp.Nz)
	for t := 0; t < trials; t++ {
		for i, d := range decomp.Data {
			sample.Data[i] = d + m.Mean + m.StdDev*rng.NormFloat64()
		}
		mask, _ := mcubes.CrossingCells(sample, iso)
		for i, crossed := range mask {
			if crossed {
				counts[i]++
			}
		}
	}
	out := field.New(cx, cy, cz)
	for i, c := range counts {
		out.Data[i] = float64(c) / float64(trials)
	}
	return out, nil
}

// FeatureRecovery quantifies Fig. 14's qualitative claim. Comparing
// isosurface cells of the original and decompressed fields:
//
//   - Lost counts cells crossed in the original but not after decompression
//     (features pruned by compression error);
//   - Recovered counts lost cells whose crossing probability exceeds
//     probThreshold — features the uncertainty visualization re-surfaces;
//   - Spurious counts cells crossed only after decompression.
type FeatureRecovery struct {
	OrigCells   int
	DecompCells int
	Lost        int
	Recovered   int
	Spurious    int
}

// RecoveryRate returns Recovered/Lost (1 if nothing was lost).
func (r FeatureRecovery) RecoveryRate() float64 {
	if r.Lost == 0 {
		return 1
	}
	return float64(r.Recovered) / float64(r.Lost)
}

// AnalyzeRecovery computes FeatureRecovery for an isovalue, an error model,
// and a probability threshold.
func AnalyzeRecovery(orig, decomp *field.Field, iso float64, m ErrorModel, probThreshold float64) (FeatureRecovery, error) {
	var r FeatureRecovery
	if !orig.SameShape(decomp) {
		return r, errors.New("uncertainty: shape mismatch")
	}
	origMask, origCount := mcubes.CrossingCells(orig, iso)
	decMask, decCount := mcubes.CrossingCells(decomp, iso)
	probs, err := CrossProbabilities(decomp, iso, m)
	if err != nil {
		return r, err
	}
	r.OrigCells, r.DecompCells = origCount, decCount
	for i := range origMask {
		switch {
		case origMask[i] && !decMask[i]:
			r.Lost++
			if probs.Data[i] > probThreshold {
				r.Recovered++
			}
		case !origMask[i] && decMask[i]:
			r.Spurious++
		}
	}
	return r, nil
}
