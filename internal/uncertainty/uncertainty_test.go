package uncertainty

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/postproc"
	"repro/internal/synth"
	"repro/internal/zfp"
)

func TestVertexAboveProb(t *testing.T) {
	m := ErrorModel{Mean: 0, StdDev: 1}
	if p := m.VertexAboveProb(0, 0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P(above) at iso = %g, want 0.5", p)
	}
	if p := m.VertexAboveProb(10, 0); p < 0.999 {
		t.Fatalf("P(above) far above iso = %g", p)
	}
	if p := m.VertexAboveProb(-10, 0); p > 0.001 {
		t.Fatalf("P(above) far below iso = %g", p)
	}
	// Zero variance degenerates to a step.
	d := ErrorModel{}
	if d.VertexAboveProb(1, 0) != 1 || d.VertexAboveProb(-1, 0) != 0 {
		t.Fatal("deterministic model broken")
	}
}

func TestCrossProbabilitiesDeterministicLimit(t *testing.T) {
	// With zero variance, probabilities must be exactly the crossing mask.
	f := field.New(4, 4, 4)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				f.Set(x, y, z, float64(x))
			}
		}
	}
	p, err := CrossProbabilities(f, 1.5, ErrorModel{})
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				want := 0.0
				if x == 1 { // cells spanning values [1,2] cross iso 1.5
					want = 1
				}
				if got := p.At(x, y, z); got != want {
					t.Fatalf("P(%d,%d,%d) = %g, want %g", x, y, z, got, want)
				}
			}
		}
	}
}

func TestCrossProbabilitiesInUnitRange(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 16, 1)
	m := ErrorModel{Mean: 0.01, StdDev: f.ValueRange() * 0.01}
	p, err := CrossProbabilities(f, f.Mean(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p.Data {
		if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
			t.Fatalf("probability out of range at %d: %g", i, v)
		}
	}
}

func TestMonteCarloAgreesWithClosedForm(t *testing.T) {
	f := synth.Generate(synth.S3D, 10, 2)
	iso := f.Mean()
	m := ErrorModel{StdDev: f.ValueRange() * 0.02}
	closed, err := CrossProbabilities(f, iso, m)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloCrossProbabilities(f, iso, m, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Mean absolute deviation should be small (MC noise ~ 1/sqrt(400)).
	sum := 0.0
	for i := range closed.Data {
		sum += math.Abs(closed.Data[i] - mc.Data[i])
	}
	if mad := sum / float64(len(closed.Data)); mad > 0.05 {
		t.Fatalf("closed form vs Monte Carlo MAD = %g", mad)
	}
}

func TestProbabilityHighNearSurface(t *testing.T) {
	// Linear field, iso plane at x=1.5: cells adjacent to the plane should
	// have higher crossing probability than distant cells.
	f := field.New(8, 4, 4)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 8; x++ {
				f.Set(x, y, z, float64(x))
			}
		}
	}
	p, err := CrossProbabilities(f, 1.5, ErrorModel{StdDev: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !(p.At(1, 1, 1) > p.At(5, 1, 1)) {
		t.Fatalf("probability not peaked at surface: %g vs %g", p.At(1, 1, 1), p.At(5, 1, 1))
	}
}

func TestModelFromSamples(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 32, 3)
	eb := f.ValueRange() * 1e-2
	rt := func(g *field.Field) (*field.Field, error) {
		data, err := zfp.Compress(g, zfp.Options{Tolerance: eb})
		if err != nil {
			return nil, err
		}
		return zfp.Decompress(data)
	}
	set, err := postproc.CollectSamples(f, rt, postproc.Options{EB: eb, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := ModelFromSamples(set)
	if m.StdDev < 0 || m.StdDev > eb {
		t.Fatalf("implausible error stddev %g for eb %g", m.StdDev, eb)
	}
	iso := f.Mean() * 2
	mi := ModelNearIsovalue(set, iso, eb*10)
	if mi.StdDev < 0 {
		t.Fatalf("isovalue model stddev %g", mi.StdDev)
	}
}

// TestFig14RecoveryDirection reproduces the mechanism of Fig. 14: heavy
// compression prunes isosurface cells, and the probabilistic visualization
// flags most of the lost cells.
func TestFig14RecoveryDirection(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 32, 4)
	eb := f.ValueRange() * 0.05 // aggressive, like CR=240 in the paper
	data, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := zfp.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	iso := f.Mean() * 1.5
	m := ErrorModel{StdDev: f.MaxAbsDiff(dec) / 2}
	r, err := AnalyzeRecovery(f, dec, iso, m, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.OrigCells == 0 {
		t.Fatal("no isosurface in original")
	}
	if r.Lost == 0 {
		t.Skip("compression did not prune cells at this setting")
	}
	if r.RecoveryRate() < 0.5 {
		t.Fatalf("uncertainty recovered only %.0f%% of lost cells", r.RecoveryRate()*100)
	}
}

func TestAnalyzeRecoveryValidation(t *testing.T) {
	a := field.New(4, 4, 4)
	b := field.New(5, 4, 4)
	if _, err := AnalyzeRecovery(a, b, 0, ErrorModel{}, 0.5); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	f := field.New(4, 4, 4)
	if _, err := MonteCarloCrossProbabilities(f, 0, ErrorModel{}, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
	tiny := field.New(1, 1, 1)
	if _, err := CrossProbabilities(tiny, 0, ErrorModel{}); err == nil {
		t.Fatal("1-voxel field accepted")
	}
}
