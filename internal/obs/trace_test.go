package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanPropagation walks a trace through nested contexts — the
// serve→read→decode shape — and checks parentage, tags, and events all
// land in the finished snapshot under the original trace ID.
func TestSpanPropagation(t *testing.T) {
	c := NewCollector(8)
	ctx, tr := c.StartTrace(context.Background(), "req-42")
	if tr.ID() != "req-42" {
		t.Fatalf("trace id %q", tr.ID())
	}
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not on context")
	}

	ctx1, serve := StartSpan(ctx, "serve:level")
	ctx2, read := StartSpan(ctx1, "read_level")
	ctx3, dec := StartSpan(ctx2, "decode")
	dec.SetTag("codec", "flate")
	Eventf(ctx3, "retry attempt=%d", 1)
	dec.End()
	Record(ctx2, "cache_miss", time.Now(), "key", "f/L0/B3")
	read.End()
	serve.End()
	tr.SetAttr("endpoint", "level")
	c.Finish(tr)

	traces := c.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	snap := traces[0]
	if snap.ID != "req-42" || snap.Attrs["endpoint"] != "level" {
		t.Fatalf("snapshot %+v", snap)
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	for name, parent := range map[string]string{
		"serve:level": "",
		"read_level":  "serve:level",
		"decode":      "read_level",
		"cache_miss":  "read_level",
	} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("missing span %q in %v", name, snap.Spans)
		}
		if s.Parent != parent {
			t.Errorf("span %q parent %q want %q", name, s.Parent, parent)
		}
	}
	if byName["decode"].Tags["codec"] != "flate" {
		t.Errorf("decode tags %v", byName["decode"].Tags)
	}
	if len(byName["decode"].Events) != 1 || !strings.Contains(byName["decode"].Events[0], "attempt=1") {
		t.Errorf("decode events %v", byName["decode"].Events)
	}
	if byName["cache_miss"].Tags["key"] != "f/L0/B3" {
		t.Errorf("cache_miss tags %v", byName["cache_miss"].Tags)
	}
	// Stage histograms were fed by span End.
	stages := c.StageSnapshots()
	var names []string
	for _, st := range stages {
		names = append(names, st.Name)
	}
	for _, want := range []string{"serve:level", "read_level", "decode", "cache_miss"} {
		if c.Stage(want).Snapshot().Count != 1 {
			t.Errorf("stage %q count != 1 (stages seen: %v)", want, names)
		}
	}
}

// TestNilSafety: instrumented library code runs with no trace on the
// context; every obs call must be a no-op, not a panic.
func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "orphan")
	if s != nil || ctx2 != ctx {
		t.Fatal("traceless StartSpan should return ctx unchanged and nil span")
	}
	s.SetTag("k", "v")
	s.SetName("renamed")
	s.Eventf("e %d", 1)
	s.End()
	Record(ctx, "leaf", time.Now())
	Eventf(ctx, "event")
	var tr *Trace
	tr.SetAttr("k", "v")
	NewCollector(4).Finish(nil)
	var lg *Logger
	lg.Log("k", "v")
	var sm *Sampler
	if sm.Allow() {
		t.Fatal("nil sampler allowed")
	}
}

// TestTraceRingEviction overfills the ring and checks only the newest
// ringSize traces survive, newest first.
func TestTraceRingEviction(t *testing.T) {
	const ringSize = 4
	c := NewCollector(ringSize)
	for i := 0; i < 10; i++ {
		_, tr := c.StartTrace(context.Background(), fmt.Sprintf("t%d", i))
		c.Finish(tr)
	}
	got := c.Traces(0)
	if len(got) != ringSize {
		t.Fatalf("ring holds %d traces, want %d", len(got), ringSize)
	}
	for i, snap := range got {
		want := fmt.Sprintf("t%d", 9-i)
		if snap.ID != want {
			t.Errorf("slot %d: id %q want %q", i, snap.ID, want)
		}
	}
	if limited := c.Traces(2); len(limited) != 2 || limited[0].ID != "t9" {
		t.Errorf("Traces(2) = %v", limited)
	}
}

// TestTraceRingConcurrent finishes traces from many goroutines while a
// reader drains Traces; -race validates the locking.
func TestTraceRingConcurrent(t *testing.T) {
	c := NewCollector(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, tr := c.StartTrace(context.Background(), "")
				_, s := StartSpan(ctx, "work")
				s.End()
				tr.SetAttr("g", fmt.Sprint(g))
				c.Finish(tr)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, snap := range c.Traces(0) {
				_ = snap.Attrs["g"]
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Stage("work").Snapshot().Count; got != 8*200 {
		t.Fatalf("stage count %d want %d", got, 8*200)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestSlowLog checks the threshold gate and the rendered line shape.
func TestSlowLog(t *testing.T) {
	var buf strings.Builder
	c := NewCollector(4)
	c.SetSlowLog(time.Nanosecond, NewLogger(&buf))
	ctx, tr := c.StartTrace(context.Background(), "slow-1")
	_, s := StartSpan(ctx, "read_level")
	time.Sleep(time.Millisecond)
	s.End()
	tr.SetAttr("endpoint", "level")
	c.Finish(tr)
	line := buf.String()
	for _, want := range []string{"slow_request=true", "trace=slow-1", "endpoint=level", "read_level:"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log missing %q: %s", want, line)
		}
	}

	buf.Reset()
	c.SetSlowLog(time.Hour, NewLogger(&buf))
	_, fast := c.StartTrace(context.Background(), "fast-1")
	c.Finish(fast)
	if buf.Len() != 0 {
		t.Errorf("fast trace logged: %s", buf.String())
	}
}

func TestLoggerQuoting(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf)
	l.now = func() time.Time { return time.Unix(0, 0).UTC() }
	l.Log("plain", "v", "spacey", "a b", "empty", "", "eq", "a=b", "odd")
	got := buf.String()
	want := `ts=1970-01-01T00:00:00Z plain=v spacey="a b" empty="" eq="a=b"` + "\n"
	if got != want {
		t.Errorf("log line\n got %q\nwant %q", got, want)
	}
}

func TestSampler(t *testing.T) {
	one := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !one.Allow() {
			t.Fatal("every=1 must always allow")
		}
	}
	third := NewSampler(3)
	allowed := 0
	for i := 0; i < 30; i++ {
		if third.Allow() {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("every=3 allowed %d of 30", allowed)
	}
	if NewSampler(0).Allow() {
		t.Fatal("every=0 must never allow")
	}
}
