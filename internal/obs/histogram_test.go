package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucketing rule: an observation
// equal to a bound lands in that bound's bucket (le is inclusive, the
// Prometheus convention), one nanosecond past it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1e-3, 1e-2, 1e-1})
	h.Observe(time.Millisecond)      // == bound 0
	h.Observe(time.Millisecond + 1)  // just past bound 0
	h.Observe(10 * time.Millisecond) // == bound 1
	h.Observe(time.Second)           // beyond every bound: +Inf
	h.Observe(-time.Second)          // negative clamps to 0: bucket 0
	for i, want := range []int64{2, 2, 0, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d: got %d want %d", i, got, want)
		}
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count %d", s.Count)
	}
	wantSum := (1e-3) + (1e-3 + 1e-9) + 1e-2 + 1 + 0
	if math.Abs(s.Sum-wantSum) > 1e-12 {
		t.Fatalf("sum %v want %v", s.Sum, wantSum)
	}
}

// TestHistogramQuantileErrorBound feeds known uniform samples and checks
// the interpolated quantile estimate lands within one bucket width of the
// exact value — the estimator's accuracy contract.
func TestHistogramQuantileErrorBound(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over 80µs..400ms, the serving latency range.
		v := math.Exp(math.Log(80e-6) + rng.Float64()*(math.Log(400e-3)-math.Log(80e-6)))
		samples = append(samples, v)
		h.Observe(time.Duration(v * 1e9))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		// Exact quantile by selection.
		sorted := append([]float64(nil), samples...)
		idx := int(q*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := quickSelect(sorted, idx)
		// The estimate must land inside the bucket containing the exact
		// value: [lower bound, upper bound] of that bucket.
		lo, hi := bucketRange(s.Bounds, exact)
		if got < lo || got > hi {
			t.Errorf("q%.2f: estimate %.6f outside bucket [%.6f,%.6f] of exact %.6f", q, got, lo, hi, exact)
		}
	}
	// Monotonicity: p50 <= p95 <= p99.
	if !(s.Quantile(0.5) <= s.Quantile(0.95) && s.Quantile(0.95) <= s.Quantile(0.99)) {
		t.Fatal("quantiles not monotone")
	}
}

func bucketRange(bounds []float64, v float64) (float64, float64) {
	lo := 0.0
	for _, b := range bounds {
		if v <= b {
			return lo, b
		}
		lo = b
	}
	return lo, math.Inf(1)
}

func quickSelect(a []float64, k int) float64 {
	// Small n; sorting is fine.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
	return a[k]
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile %v", got)
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines; under -race this is the lock-free-writer proof, and the
// final count/sum must be exact (no lost updates).
func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i%5000) * time.Microsecond)
				if i%64 == 0 {
					h.Snapshot().Quantile(0.5) // concurrent reader
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d want %d (lost updates)", s.Count, goroutines*per)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

// TestHistogramWriteProm checks the exposition format: cumulative buckets,
// +Inf, _sum/_count, label merging.
func TestHistogramWriteProm(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Second)
	var b strings.Builder
	h.Snapshot().WriteProm(&b, "x_seconds", `endpoint="level"`)
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{endpoint="level",le="0.001"} 1`,
		`x_seconds_bucket{endpoint="level",le="0.01"} 2`,
		`x_seconds_bucket{endpoint="level",le="+Inf"} 3`,
		`x_seconds_count{endpoint="level"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	var nb strings.Builder
	h.Snapshot().WriteProm(&nb, "y_seconds", "")
	if !strings.Contains(nb.String(), `y_seconds_bucket{le="+Inf"} 3`) {
		t.Errorf("unlabeled buckets malformed:\n%s", nb.String())
	}
}
