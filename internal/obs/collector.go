package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultRingSize is how many finished traces a Collector retains when the
// caller does not choose (see mrserve -trace-ring).
const DefaultRingSize = 256

// Collector ties the tracing side of the package together: it owns the
// bounded ring of recent traces and one latency histogram per span name
// ("stage"), and optionally emits slow-request log lines. One Collector per
// serving process.
type Collector struct {
	// SlowThreshold, when > 0, logs every trace whose total duration
	// reaches it (see SetSlowLog).
	slowThreshold time.Duration
	slowLog       *Logger

	ringMu   sync.Mutex
	ring     []TraceSnapshot // circular, ringNext is the oldest slot
	ringNext int
	ringLen  int

	stageMu      sync.RWMutex
	stages       map[string]*Histogram
	stageBuckets []float64
}

// NewCollector builds a collector retaining the last ringSize traces
// (DefaultRingSize when <= 0), with per-stage histograms over the default
// latency buckets.
func NewCollector(ringSize int) *Collector {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Collector{
		ring:   make([]TraceSnapshot, ringSize),
		stages: make(map[string]*Histogram),
	}
}

// SetSlowLog makes Finish write one structured line to log for every trace
// at least threshold long (0 disables).
func (c *Collector) SetSlowLog(threshold time.Duration, log *Logger) {
	c.slowThreshold = threshold
	c.slowLog = log
}

// StartTrace creates a trace with the given ID (NewID() when empty), hangs
// it on the context, and returns both. The caller must pass the trace to
// Finish when the request completes.
func (c *Collector) StartTrace(ctx context.Context, id string) (context.Context, *Trace) {
	if id == "" {
		id = NewID()
	}
	t := &Trace{id: id, start: time.Now(), collector: c}
	return ContextWithTrace(ctx, t), t
}

// Finish seals a trace: it lands in the ring (evicting the oldest) and, if
// it was slow, in the slow-request log.
func (c *Collector) Finish(t *Trace) {
	if t == nil {
		return
	}
	d := time.Since(t.start)
	t.mu.Lock()
	var attrs map[string]string
	if len(t.attrs) > 0 {
		attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			attrs[k] = v
		}
	}
	snap := TraceSnapshot{
		ID:         t.id,
		Start:      t.start,
		DurationNs: d.Nanoseconds(),
		Attrs:      attrs,
		Spans:      append([]SpanSnapshot(nil), t.spans...),
	}
	t.mu.Unlock()

	c.ringMu.Lock()
	c.ring[c.ringNext] = snap
	c.ringNext = (c.ringNext + 1) % len(c.ring)
	if c.ringLen < len(c.ring) {
		c.ringLen++
	}
	c.ringMu.Unlock()

	if c.slowThreshold > 0 && d >= c.slowThreshold && c.slowLog != nil {
		pairs := []string{"slow_request", "true", "trace", snap.ID, "dur", d.String()}
		for _, k := range sortedKeys(snap.Attrs) {
			pairs = append(pairs, k, snap.Attrs[k])
		}
		pairs = append(pairs, "spans", summarizeSpans(snap.Spans))
		c.slowLog.Log(pairs...)
	}
}

// summarizeSpans renders "name:dur,name:dur" for the slow log.
func summarizeSpans(spans []SpanSnapshot) string {
	out := ""
	for i, s := range spans {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s:%s", s.Name, time.Duration(s.DurationNs))
	}
	return out
}

// Traces returns up to n finished traces, newest first (all retained
// traces when n <= 0).
func (c *Collector) Traces(n int) []TraceSnapshot {
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	if n <= 0 || n > c.ringLen {
		n = c.ringLen
	}
	out := make([]TraceSnapshot, 0, n)
	for i := 1; i <= n; i++ {
		// ringNext-1 is the newest slot.
		out = append(out, c.ring[(c.ringNext-i+len(c.ring))%len(c.ring)])
	}
	return out
}

// Stage returns the histogram for one span name, creating it on first use.
func (c *Collector) Stage(name string) *Histogram {
	c.stageMu.RLock()
	h, ok := c.stages[name]
	c.stageMu.RUnlock()
	if ok {
		return h
	}
	c.stageMu.Lock()
	defer c.stageMu.Unlock()
	if h, ok = c.stages[name]; ok {
		return h
	}
	h = NewHistogram(c.stageBuckets)
	c.stages[name] = h
	return h
}

func (c *Collector) observeStage(name string, d time.Duration) {
	c.Stage(name).Observe(d)
}

// StageSnapshots returns a stable-ordered snapshot of every stage
// histogram, for the /metrics formatter.
func (c *Collector) StageSnapshots() []StageSnapshot {
	c.stageMu.RLock()
	names := make([]string, 0, len(c.stages))
	for n := range c.stages {
		names = append(names, n)
	}
	hists := make([]*Histogram, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		hists = append(hists, c.stages[n])
	}
	c.stageMu.RUnlock()
	out := make([]StageSnapshot, len(names))
	for i := range names {
		out[i] = StageSnapshot{Name: names[i], Hist: hists[i].Snapshot()}
	}
	return out
}

// StageSnapshot pairs a stage name with its histogram snapshot.
type StageSnapshot struct {
	Name string
	Hist HistogramSnapshot
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
