package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used for
// request and stage latencies: ~exponential from 50µs to 10s, covering a
// cached-brick hit through a cold fine-level decode with bounded relative
// error per bucket.
var DefaultLatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// writers: every Observe is two atomic adds plus one atomic increment, no
// locks, so it can sit on the hottest request path. Bounds are in seconds
// (the Prometheus convention); observations are recorded in nanoseconds
// internally so concurrent sums stay exact.
type Histogram struct {
	boundsNs []int64   // upper bounds in ns, ascending
	bounds   []float64 // same bounds in seconds (exposition)
	counts   []atomic.Int64
	sumNs    atomic.Int64
	count    atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds in seconds. An implicit +Inf bucket is always appended. A nil or
// empty bounds slice uses DefaultLatencyBuckets.
func NewHistogram(boundsSeconds []float64) *Histogram {
	if len(boundsSeconds) == 0 {
		boundsSeconds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds:   append([]float64(nil), boundsSeconds...),
		boundsNs: make([]int64, len(boundsSeconds)),
		counts:   make([]atomic.Int64, len(boundsSeconds)+1),
	}
	for i, b := range h.bounds {
		h.boundsNs[i] = int64(b * 1e9)
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := sort.Search(len(h.boundsNs), func(i int) bool { return ns <= h.boundsNs[i] })
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram, the unit the
// /metrics formatter and quantile estimation work from (so neither runs
// against moving counters).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds (exclusive of +Inf).
	Bounds []float64
	// Counts holds per-bucket (non-cumulative) observation counts;
	// len(Counts) == len(Bounds)+1, the last being the +Inf bucket.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the total observed time in seconds.
	Sum float64
}

// Snapshot copies the counters. Concurrent Observes may land between the
// bucket loads — the snapshot is still a valid histogram, merely a few
// observations behind or ahead per bucket, which is the usual Prometheus
// scrape semantics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    float64(h.sumNs.Load()) / 1e9,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation inside the bucket holding the target rank — the standard
// fixed-bucket estimator, accurate to the width of that bucket. Ranks that
// land in the +Inf bucket return the largest finite bound (a lower bound on
// the truth). An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no finite upper edge to interpolate toward.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WriteProm writes the snapshot in the Prometheus text exposition format:
// cumulative <name>_bucket lines with an le label, then <name>_sum and
// <name>_count. labels is either empty or a pre-rendered label list such as
// `endpoint="level"` that is merged ahead of le.
func (s HistogramSnapshot) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %.9f\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}
