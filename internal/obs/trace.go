package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Trace is one request's span collection, created by Collector.StartTrace
// and carried by context. Spans append to it as they end; Collector.Finish
// snapshots it into the trace ring.
type Trace struct {
	id        string
	start     time.Time
	collector *Collector

	mu    sync.Mutex
	attrs map[string]string
	spans []SpanSnapshot
}

// ID returns the trace's request ID.
func (t *Trace) ID() string { return t.id }

// Start returns the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// SetAttr records a trace-level attribute (endpoint, status, degraded) that
// /debug/traces and the slow-request log report.
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string, 4)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// record appends a finished span and feeds the per-stage histogram.
func (t *Trace) record(s *Span, d time.Duration) {
	snap := SpanSnapshot{
		Name:       s.name,
		Parent:     s.parent,
		StartNs:    s.start.Sub(t.start).Nanoseconds(),
		DurationNs: d.Nanoseconds(),
		Tags:       s.tags,
		Events:     s.events,
	}
	t.mu.Lock()
	t.spans = append(t.spans, snap)
	t.mu.Unlock()
	if t.collector != nil {
		t.collector.observeStage(s.name, d)
	}
}

// Span is one timed operation inside a trace. A Span belongs to the
// goroutine that started it: Set* and End must not race with each other.
// The nil *Span (returned when the context has no trace) no-ops every
// method, so instrumented code needs no guards.
type Span struct {
	trace  *Trace
	name   string
	parent string
	start  time.Time
	tags   map[string]string
	events []string
}

// SetTag attaches a key/value tag to the span.
func (s *Span) SetTag(key, value string) {
	if s == nil {
		return
	}
	if s.tags == nil {
		s.tags = make(map[string]string, 2)
	}
	s.tags[key] = value
}

// SetName renames the span before End — used when the right stage name is
// only known after the work ran (cache_hit vs cache_miss).
func (s *Span) SetName(name string) {
	if s != nil {
		s.name = name
	}
}

// Eventf appends a formatted event (a retry, an injected fault) to the
// span's log.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	s.events = append(s.events, fmt.Sprintf(format, args...))
}

// End stops the span's clock and publishes it into its trace (and the
// collector's stage histogram). End must be called exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.record(s, time.Since(s.start))
}

// SpanSnapshot is a finished span as exposed by /debug/traces.
type SpanSnapshot struct {
	Name       string            `json:"name"`
	Parent     string            `json:"parent,omitempty"`
	StartNs    int64             `json:"start_ns"`
	DurationNs int64             `json:"duration_ns"`
	Tags       map[string]string `json:"tags,omitempty"`
	Events     []string          `json:"events,omitempty"`
}

// TraceSnapshot is a finished trace as exposed by /debug/traces.
type TraceSnapshot struct {
	ID         string            `json:"id"`
	Start      time.Time         `json:"start"`
	DurationNs int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanSnapshot    `json:"spans"`
}

type traceKey struct{}
type spanKey struct{}

// ContextWithTrace hangs a trace on the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// CurrentSpan returns the innermost open span started through this
// context, or nil.
func CurrentSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span named name under the context's current span. The
// returned context parents further spans under the new one. Without a trace
// on the context it returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{trace: t, name: name, start: time.Now()}
	if p := CurrentSpan(ctx); p != nil {
		s.parent = p.name
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Record publishes an already-measured leaf span: an operation too small to
// carry child spans (a cache probe), timed from start to now. tags are
// alternating key/value pairs.
func Record(ctx context.Context, name string, start time.Time, tags ...string) {
	t := TraceFrom(ctx)
	if t == nil {
		return
	}
	s := &Span{trace: t, name: name, start: start}
	if p := CurrentSpan(ctx); p != nil {
		s.parent = p.name
	}
	for i := 0; i+1 < len(tags); i += 2 {
		s.SetTag(tags[i], tags[i+1])
	}
	s.End()
}

// Eventf appends a formatted event to the context's current span. Layers
// below the span tree (the retry reader) use it to leave fault breadcrumbs
// on whatever operation is in flight.
func Eventf(ctx context.Context, format string, args ...any) {
	CurrentSpan(ctx).Eventf(format, args...)
}
