package obs

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Logger writes structured key=value lines (the access-log and slow-log
// format): one "ts=<RFC3339Nano> k=v k=v ..." line per call, whole lines
// written atomically so concurrent handlers never interleave mid-line.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test seam
}

// NewLogger builds a logger writing to w. A nil w yields a logger whose
// Log is a no-op, so callers can thread an optional logger without checks.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w, now: time.Now}
}

// Log writes one line from alternating key/value pairs (a trailing odd key
// is dropped). Values containing spaces, quotes, or '=' are quoted.
func (l *Logger) Log(pairs ...string) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	for i := 0; i+1 < len(pairs); i += 2 {
		b.WriteByte(' ')
		b.WriteString(pairs[i])
		b.WriteByte('=')
		b.WriteString(quoteValue(pairs[i+1]))
	}
	b.WriteByte('\n')
	line := b.String()
	l.mu.Lock()
	// The line is fully formatted before the lock; the guarded region is
	// exactly one Write, which is what makes concurrent lines atomic.
	//lint:ignore mrlint/lockio the write IS the protected operation; this mutex serializes log lines, it guards no decode or shared state
	io.WriteString(l.w, line)
	l.mu.Unlock()
}

// quoteValue quotes a value only when the plain form would be ambiguous.
func quoteValue(v string) string {
	if v == "" {
		return `""`
	}
	if strings.ContainsAny(v, " \t\n\"=") {
		return `"` + strings.NewReplacer(`"`, `\"`, "\n", `\n`).Replace(v) + `"`
	}
	return v
}

// Sampler admits one in every N events — the access log's rate limiter
// under load. every == 1 admits everything; every <= 0 admits nothing.
type Sampler struct {
	every int64
	n     atomic.Int64
}

// NewSampler builds a sampler admitting one in every `every` calls.
func NewSampler(every int) *Sampler {
	return &Sampler{every: int64(every)}
}

// Allow reports whether this event is in the sample.
func (s *Sampler) Allow() bool {
	if s == nil || s.every <= 0 {
		return false
	}
	if s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 1
}
