// Package obs is the stdlib-only observability substrate of the serving
// stack: request tracing, latency histograms, and structured logging, built
// so the layers above it (mrserve, the random-access reader, the codec
// registry, the fault/retry layer) can report what they spend time on
// without importing anything but this package.
//
// The pieces compose around context.Context:
//
//   - a Collector owns a bounded ring of recent request traces plus one
//     fixed-bucket latency Histogram per pipeline stage;
//   - Collector.StartTrace hangs a Trace off the context; StartSpan /
//     Record / Eventf then attach timed spans (and retry/fault events) to
//     whatever trace the context carries, from any layer, with no plumbing
//     beyond the ctx that request handlers already propagate;
//   - finished traces land in the ring (served by mrserve's /debug/traces)
//     and every span's duration feeds the collector's per-stage histogram,
//     so the same instrumentation produces both the per-request waterfall
//     and the fleet-wide p50/p99.
//
// All of it is nil-tolerant: a context without a trace makes StartSpan
// return a nil *Span whose methods no-op, so instrumented library code (the
// reader, codecs) costs almost nothing when no one is tracing.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// idFallback feeds NewID when crypto/rand fails (it effectively never
// does); a process-unique counter still yields distinct IDs.
var idFallback atomic.Int64

// NewID returns a fresh 16-hex-digit request/trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := idFallback.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}
