// Package field provides the fundamental 3D scalar field type used across
// the workflow: a dense, row-major (x fastest) array of float64 samples with
// helpers for block extraction, resampling, and basic statistics.
//
// All compressors, layout transforms, and analysis passes in this repository
// operate on Field values. A Field is deliberately a thin wrapper around a
// flat []float64 so that hot loops can index f.Data directly.
package field

import (
	"fmt"
	"math"
)

// Field is a dense 3D scalar field of size Nx×Ny×Nz stored row-major with x
// varying fastest: Data[x + Nx*(y + Ny*z)].
type Field struct {
	Nx, Ny, Nz int
	Data       []float64
}

// New allocates a zero-valued field of the given dimensions.
// It panics if any dimension is non-positive.
func New(nx, ny, nz int) *Field {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("field: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Field{Nx: nx, Ny: ny, Nz: nz, Data: make([]float64, nx*ny*nz)}
}

// FromData wraps an existing slice as a field. The slice length must equal
// nx*ny*nz; the field aliases the slice (no copy).
func FromData(nx, ny, nz int, data []float64) (*Field, error) {
	if len(data) != nx*ny*nz {
		return nil, fmt.Errorf("field: data length %d does not match %dx%dx%d", len(data), nx, ny, nz)
	}
	return &Field{Nx: nx, Ny: ny, Nz: nz, Data: data}, nil
}

// Len returns the total number of samples.
func (f *Field) Len() int { return f.Nx * f.Ny * f.Nz }

// Bytes returns the uncompressed size in bytes (8 bytes per sample).
func (f *Field) Bytes() int { return f.Len() * 8 }

// Index returns the flat index of (x, y, z).
func (f *Field) Index(x, y, z int) int { return x + f.Nx*(y+f.Ny*z) }

// At returns the sample at (x, y, z).
func (f *Field) At(x, y, z int) float64 { return f.Data[x+f.Nx*(y+f.Ny*z)] }

// Set stores v at (x, y, z).
func (f *Field) Set(x, y, z int, v float64) { f.Data[x+f.Nx*(y+f.Ny*z)] = v }

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := New(f.Nx, f.Ny, f.Nz)
	copy(g.Data, f.Data)
	return g
}

// SameShape reports whether g has identical dimensions.
func (f *Field) SameShape(g *Field) bool {
	return f.Nx == g.Nx && f.Ny == g.Ny && f.Nz == g.Nz
}

// Range returns the minimum and maximum sample values. For an empty field it
// returns (0, 0); NaNs are ignored unless all samples are NaN.
func (f *Field) Range() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if math.IsInf(min, 1) { // empty or all NaN
		return 0, 0
	}
	return min, max
}

// ValueRange returns max-min, the "range" statistic used by the ROI selector.
func (f *Field) ValueRange() float64 {
	min, max := f.Range()
	return max - min
}

// Mean returns the arithmetic mean of all samples.
func (f *Field) Mean() float64 {
	if f.Len() == 0 {
		return 0
	}
	s := 0.0
	for _, v := range f.Data {
		s += v
	}
	return s / float64(f.Len())
}

// Variance returns the population variance of all samples.
func (f *Field) Variance() float64 {
	n := f.Len()
	if n == 0 {
		return 0
	}
	m := f.Mean()
	s := 0.0
	for _, v := range f.Data {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// SubBlock copies the region of size (bx,by,bz) anchored at (x0,y0,z0) into a
// new field. The region is clamped to the field bounds; the returned block
// has the clamped dimensions.
func (f *Field) SubBlock(x0, y0, z0, bx, by, bz int) *Field {
	if x0 < 0 || y0 < 0 || z0 < 0 {
		panic("field: negative block origin")
	}
	cx := minInt(bx, f.Nx-x0)
	cy := minInt(by, f.Ny-y0)
	cz := minInt(bz, f.Nz-z0)
	if cx <= 0 || cy <= 0 || cz <= 0 {
		panic(fmt.Sprintf("field: block origin (%d,%d,%d) outside field %dx%dx%d", x0, y0, z0, f.Nx, f.Ny, f.Nz))
	}
	b := New(cx, cy, cz)
	for z := 0; z < cz; z++ {
		for y := 0; y < cy; y++ {
			src := f.Index(x0, y0+y, z0+z)
			dst := b.Index(0, y, z)
			copy(b.Data[dst:dst+cx], f.Data[src:src+cx])
		}
	}
	return b
}

// SetBlock writes block b into the field anchored at (x0,y0,z0). The block
// must fit entirely inside the field.
func (f *Field) SetBlock(x0, y0, z0 int, b *Field) {
	if x0+b.Nx > f.Nx || y0+b.Ny > f.Ny || z0+b.Nz > f.Nz || x0 < 0 || y0 < 0 || z0 < 0 {
		panic(fmt.Sprintf("field: block %dx%dx%d at (%d,%d,%d) does not fit in %dx%dx%d",
			b.Nx, b.Ny, b.Nz, x0, y0, z0, f.Nx, f.Ny, f.Nz))
	}
	for z := 0; z < b.Nz; z++ {
		for y := 0; y < b.Ny; y++ {
			src := b.Index(0, y, z)
			dst := f.Index(x0, y0+y, z0+z)
			copy(f.Data[dst:dst+b.Nx], b.Data[src:src+b.Nx])
		}
	}
}

// Downsample2 returns a field of half resolution per axis (ceil division)
// where each coarse sample is the mean of its (up to) 2×2×2 fine children.
// This is the restriction operator used for non-ROI regions and for building
// coarse AMR levels from fine data.
func (f *Field) Downsample2() *Field {
	nx := (f.Nx + 1) / 2
	ny := (f.Ny + 1) / 2
	nz := (f.Nz + 1) / 2
	g := New(nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				sum, n := 0.0, 0
				for dz := 0; dz < 2; dz++ {
					fz := 2*z + dz
					if fz >= f.Nz {
						continue
					}
					for dy := 0; dy < 2; dy++ {
						fy := 2*y + dy
						if fy >= f.Ny {
							continue
						}
						for dx := 0; dx < 2; dx++ {
							fx := 2*x + dx
							if fx >= f.Nx {
								continue
							}
							sum += f.At(fx, fy, fz)
							n++
						}
					}
				}
				g.Set(x, y, z, sum/float64(n))
			}
		}
	}
	return g
}

// Upsample2 returns a field of exactly (nx,ny,nz) samples reconstructed from
// f by trilinear interpolation, where f is treated as a 2×-coarse version
// (cell-centred). It is the prolongation operator matching Downsample2.
func (f *Field) Upsample2(nx, ny, nz int) *Field {
	g := New(nx, ny, nz)
	// Map fine coordinate x to coarse sample space: coarse sample i covers
	// fine samples 2i and 2i+1, so fine x corresponds to coarse (x-0.5)/2.
	for z := 0; z < nz; z++ {
		cz, wz := splitCoord(z, f.Nz)
		for y := 0; y < ny; y++ {
			cy, wy := splitCoord(y, f.Ny)
			for x := 0; x < nx; x++ {
				cx, wx := splitCoord(x, f.Nx)
				v := 0.0
				for dz := 0; dz < 2; dz++ {
					pz := clampInt(cz+dz, 0, f.Nz-1)
					fz := lerpWeight(wz, dz)
					for dy := 0; dy < 2; dy++ {
						py := clampInt(cy+dy, 0, f.Ny-1)
						fy := lerpWeight(wy, dy)
						for dx := 0; dx < 2; dx++ {
							px := clampInt(cx+dx, 0, f.Nx-1)
							fx := lerpWeight(wx, dx)
							v += f.At(px, py, pz) * fx * fy * fz
						}
					}
				}
				g.Set(x, y, z, v)
			}
		}
	}
	return g
}

// UpsampleNearest returns a field of (nx,ny,nz) samples where each fine
// sample copies its covering coarse sample (piecewise-constant prolongation).
func (f *Field) UpsampleNearest(nx, ny, nz int) *Field {
	g := New(nx, ny, nz)
	for z := 0; z < nz; z++ {
		cz := clampInt(z/2, 0, f.Nz-1)
		for y := 0; y < ny; y++ {
			cy := clampInt(y/2, 0, f.Ny-1)
			for x := 0; x < nx; x++ {
				cx := clampInt(x/2, 0, f.Nx-1)
				g.Set(x, y, z, f.At(cx, cy, cz))
			}
		}
	}
	return g
}

// splitCoord maps a fine coordinate to the coarse base index and the
// fractional weight toward the next coarse sample, for cell-centred 2×
// coarsening.
func splitCoord(fine, ncoarse int) (base int, frac float64) {
	c := (float64(fine) - 0.5) / 2.0
	base = int(math.Floor(c))
	frac = c - float64(base)
	if base < 0 {
		base, frac = 0, 0
	}
	if base >= ncoarse-1 {
		base, frac = ncoarse-1, 0
	}
	return base, frac
}

func lerpWeight(frac float64, d int) float64 {
	if d == 0 {
		return 1 - frac
	}
	return frac
}

// SliceZ extracts the 2D slice at depth z as a Nx×Ny×1 field.
func (f *Field) SliceZ(z int) *Field {
	if z < 0 || z >= f.Nz {
		panic(fmt.Sprintf("field: slice z=%d out of range [0,%d)", z, f.Nz))
	}
	s := New(f.Nx, f.Ny, 1)
	copy(s.Data, f.Data[z*f.Nx*f.Ny:(z+1)*f.Nx*f.Ny])
	return s
}

// Fill sets every sample to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Apply replaces every sample x with fn(x).
func (f *Field) Apply(fn func(float64) float64) {
	for i, v := range f.Data {
		f.Data[i] = fn(v)
	}
}

// AddScaled adds s*g to f in place. The fields must have the same shape.
func (f *Field) AddScaled(s float64, g *Field) {
	if !f.SameShape(g) {
		panic("field: AddScaled shape mismatch")
	}
	for i := range f.Data {
		f.Data[i] += s * g.Data[i]
	}
}

// Equal reports whether two fields have identical shape and bit-identical
// sample values.
func (f *Field) Equal(g *Field) bool {
	if !f.SameShape(g) {
		return false
	}
	for i, v := range f.Data {
		if v != g.Data[i] && !(math.IsNaN(v) && math.IsNaN(g.Data[i])) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the L∞ distance between two same-shaped fields.
func (f *Field) MaxAbsDiff(g *Field) float64 {
	if !f.SameShape(g) {
		panic("field: MaxAbsDiff shape mismatch")
	}
	m := 0.0
	for i, v := range f.Data {
		d := math.Abs(v - g.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

func (f *Field) String() string {
	return fmt.Sprintf("Field(%dx%dx%d)", f.Nx, f.Ny, f.Nz)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
