package field

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// ErrTooLarge reports a field whose header-implied size exceeds the limit
// given to ReadFromLimit (distinguishable from malformed data, e.g. for an
// HTTP 413).
var ErrTooLarge = errors.New("field too large")

// Binary container for raw fields: a 24-byte header (three little-endian
// int64 dimensions) followed by Nx*Ny*Nz little-endian float64 samples.
// cmd/mrcompress and the examples use this as the on-disk "simulation output"
// format.

const headerSize = 24

// MaxSamples caps the total sample count any decoder will accept from an
// untrusted header: 2^33 float64 samples is 64 GiB, far beyond any dataset
// this pipeline targets.
const MaxSamples = 1 << 33

// CheckDims validates wire-decoded field dimensions while they are still in
// their raw uint64 form and converts them only after the bounds hold. It is
// the single place where untrusted nx/ny/nz become ints: every decoder
// (field containers, sz2/sz3/zfp headers, parallelcomp slabs, core
// containers) funnels through it, so a hostile header can neither wrap the
// nx*ny*nz product past an int64 nor drive a huge allocation. The product
// is checked one factor at a time because a naive multiply can wrap int64
// and slip a negative (or tiny) total past the cap. Returns the dimensions
// as ints plus the validated total sample count.
func CheckDims(nx64, ny64, nz64 uint64) (nx, ny, nz int, samples int64, err error) {
	badDims := func() error {
		return fmt.Errorf("field: invalid dimensions %dx%dx%d", nx64, ny64, nz64)
	}
	if nx64 == 0 || nx64 > MaxSamples {
		return 0, 0, 0, 0, badDims()
	}
	if ny64 == 0 || ny64 > MaxSamples {
		return 0, 0, 0, 0, badDims()
	}
	if nz64 == 0 || nz64 > MaxSamples {
		return 0, 0, 0, 0, badDims()
	}
	n := int64(nx64)
	if int64(ny64) > MaxSamples/n {
		return 0, 0, 0, 0, badDims()
	}
	n *= int64(ny64)
	if int64(nz64) > MaxSamples/n {
		return 0, 0, 0, 0, badDims()
	}
	n *= int64(nz64)
	return int(nx64), int(ny64), int(nz64), n, nil
}

// WriteTo serializes the field to w in the raw binary format.
func (f *Field) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(f.Nx))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(f.Ny))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(f.Nz))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var buf [8]byte
	for _, v := range f.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(headerSize + 8*len(f.Data)), nil
}

// ReadFrom deserializes a field written by WriteTo.
func ReadFrom(r io.Reader) (*Field, error) {
	return ReadFromLimit(r, 0)
}

// ReadFromLimit is ReadFrom with a cap on the serialized size: a header
// whose dimensions imply more than maxBytes on the wire is rejected
// *before* the field is allocated, so an untrusted header cannot drive a
// huge allocation from a tiny payload. maxBytes <= 0 applies only the
// package sanity cap.
func ReadFromLimit(r io.Reader, maxBytes int64) (*Field, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("field: reading header: %w", err)
	}
	nx, ny, nz, n, err := CheckDims(
		binary.LittleEndian.Uint64(hdr[0:]),
		binary.LittleEndian.Uint64(hdr[8:]),
		binary.LittleEndian.Uint64(hdr[16:]),
	)
	if err != nil {
		return nil, err
	}
	if maxBytes > 0 && headerSize+8*n > maxBytes {
		return nil, fmt.Errorf("field: %dx%dx%d needs %d bytes, over the %d-byte limit: %w",
			nx, ny, nz, headerSize+8*n, maxBytes, ErrTooLarge)
	}
	f := New(nx, ny, nz)
	var buf [8]byte
	for i := range f.Data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("field: reading sample %d: %w", i, err)
		}
		f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return f, nil
}

// Save writes the field to the named file.
func (f *Field) Save(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := f.WriteTo(w); err != nil {
		return err
	}
	return w.Close()
}

// Load reads a field from the named file.
func Load(path string) (*Field, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return ReadFrom(r)
}
