package field

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// ErrTooLarge reports a field whose header-implied size exceeds the limit
// given to ReadFromLimit (distinguishable from malformed data, e.g. for an
// HTTP 413).
var ErrTooLarge = errors.New("field too large")

// Binary container for raw fields: a 24-byte header (three little-endian
// int64 dimensions) followed by Nx*Ny*Nz little-endian float64 samples.
// cmd/mrcompress and the examples use this as the on-disk "simulation output"
// format.

const headerSize = 24

// WriteTo serializes the field to w in the raw binary format.
func (f *Field) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(f.Nx))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(f.Ny))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(f.Nz))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var buf [8]byte
	for _, v := range f.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(headerSize + 8*len(f.Data)), nil
}

// ReadFrom deserializes a field written by WriteTo.
func ReadFrom(r io.Reader) (*Field, error) {
	return ReadFromLimit(r, 0)
}

// ReadFromLimit is ReadFrom with a cap on the serialized size: a header
// whose dimensions imply more than maxBytes on the wire is rejected
// *before* the field is allocated, so an untrusted header cannot drive a
// huge allocation from a tiny payload. maxBytes <= 0 applies only the
// package sanity cap.
func ReadFromLimit(r io.Reader, maxBytes int64) (*Field, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("field: reading header: %w", err)
	}
	nx := int(binary.LittleEndian.Uint64(hdr[0:]))
	ny := int(binary.LittleEndian.Uint64(hdr[8:]))
	nz := int(binary.LittleEndian.Uint64(hdr[16:]))
	// The sample-count cap is checked one factor at a time: a naive
	// nx*ny*nz can wrap int64 for hostile headers and slip a negative (or
	// tiny) product past the bound, panicking in field.New.
	const maxSamples = 1 << 33 // 64 GiB of float64, sanity cap
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("field: invalid dimensions %dx%dx%d", nx, ny, nz)
	}
	n := int64(nx)
	if int64(ny) > maxSamples/n {
		return nil, fmt.Errorf("field: invalid dimensions %dx%dx%d", nx, ny, nz)
	}
	n *= int64(ny)
	if int64(nz) > maxSamples/n {
		return nil, fmt.Errorf("field: invalid dimensions %dx%dx%d", nx, ny, nz)
	}
	n *= int64(nz)
	if maxBytes > 0 && headerSize+8*n > maxBytes {
		return nil, fmt.Errorf("field: %dx%dx%d needs %d bytes, over the %d-byte limit: %w",
			nx, ny, nz, headerSize+8*n, maxBytes, ErrTooLarge)
	}
	f := New(nx, ny, nz)
	var buf [8]byte
	for i := range f.Data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("field: reading sample %d: %w", i, err)
		}
		f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return f, nil
}

// Save writes the field to the named file.
func (f *Field) Save(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := f.WriteTo(w); err != nil {
		return err
	}
	return w.Close()
}

// Load reads a field from the named file.
func Load(path string) (*Field, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return ReadFrom(r)
}
