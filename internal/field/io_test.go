package field

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func readFilePrefix(path string, n int) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if n > len(data) {
		n = len(data)
	}
	return data[:n], nil
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := New(7, 5, 3)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	path := filepath.Join(t.TempDir(), "field.bin")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("Save/Load round trip not exact")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.bin")
	f := New(4, 4, 4)
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	// Truncate the file below the declared payload.
	data, err := readFilePrefix(path, 40)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.bin")
	if err := writeFile(short, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(short); err == nil {
		t.Fatal("expected error for truncated file")
	}
}
