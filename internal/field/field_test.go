package field

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	f := New(3, 4, 5)
	if f.Len() != 60 {
		t.Fatalf("Len = %d, want 60", f.Len())
	}
	for i, v := range f.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(0, 1, 1)
}

func TestFromData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	f, err := FromData(3, 2, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(2, 1, 0) != 6 {
		t.Fatalf("At(2,1,0) = %v, want 6", f.At(2, 1, 0))
	}
	if _, err := FromData(2, 2, 2, d); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestIndexRowMajorXFastest(t *testing.T) {
	f := New(4, 3, 2)
	// x must be the fastest-varying coordinate.
	if f.Index(1, 0, 0) != 1 {
		t.Fatalf("Index(1,0,0) = %d, want 1", f.Index(1, 0, 0))
	}
	if f.Index(0, 1, 0) != 4 {
		t.Fatalf("Index(0,1,0) = %d, want 4", f.Index(0, 1, 0))
	}
	if f.Index(0, 0, 1) != 12 {
		t.Fatalf("Index(0,0,1) = %d, want 12", f.Index(0, 0, 1))
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	f := New(5, 6, 7)
	f.Set(4, 5, 6, 42.5)
	if got := f.At(4, 5, 6); got != 42.5 {
		t.Fatalf("At = %v, want 42.5", got)
	}
}

func TestRangeAndValueRange(t *testing.T) {
	f := New(2, 2, 1)
	copy(f.Data, []float64{-3, 7, 0, 2})
	min, max := f.Range()
	if min != -3 || max != 7 {
		t.Fatalf("Range = (%v,%v), want (-3,7)", min, max)
	}
	if f.ValueRange() != 10 {
		t.Fatalf("ValueRange = %v, want 10", f.ValueRange())
	}
}

func TestRangeIgnoresNaN(t *testing.T) {
	f := New(2, 1, 1)
	f.Data[0] = math.NaN()
	f.Data[1] = 5
	min, max := f.Range()
	if min != 5 || max != 5 {
		t.Fatalf("Range with NaN = (%v,%v), want (5,5)", min, max)
	}
}

func TestMeanVariance(t *testing.T) {
	f := New(4, 1, 1)
	copy(f.Data, []float64{1, 2, 3, 4})
	if m := f.Mean(); m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
	if v := f.Variance(); math.Abs(v-1.25) > 1e-15 {
		t.Fatalf("Variance = %v, want 1.25", v)
	}
}

func TestSubBlockSetBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := New(8, 9, 10)
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	b := f.SubBlock(2, 3, 4, 4, 4, 4)
	if b.Nx != 4 || b.Ny != 4 || b.Nz != 4 {
		t.Fatalf("block shape %v", b)
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if b.At(x, y, z) != f.At(2+x, 3+y, 4+z) {
					t.Fatalf("block mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
	g := New(8, 9, 10)
	g.SetBlock(2, 3, 4, b)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if g.At(2+x, 3+y, 4+z) != b.At(x, y, z) {
					t.Fatalf("SetBlock mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestSubBlockClamped(t *testing.T) {
	f := New(5, 5, 5)
	b := f.SubBlock(3, 3, 3, 4, 4, 4)
	if b.Nx != 2 || b.Ny != 2 || b.Nz != 2 {
		t.Fatalf("clamped block = %v, want 2x2x2", b)
	}
}

func TestDownsample2Mean(t *testing.T) {
	f := New(2, 2, 2)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	g := f.Downsample2()
	if g.Nx != 1 || g.Ny != 1 || g.Nz != 1 {
		t.Fatalf("downsampled shape %v", g)
	}
	if g.Data[0] != 3.5 {
		t.Fatalf("mean = %v, want 3.5", g.Data[0])
	}
}

func TestDownsample2OddDims(t *testing.T) {
	f := New(3, 3, 1)
	f.Fill(2)
	g := f.Downsample2()
	if g.Nx != 2 || g.Ny != 2 || g.Nz != 1 {
		t.Fatalf("downsampled shape %v", g)
	}
	for _, v := range g.Data {
		if v != 2 {
			t.Fatalf("constant field downsample = %v, want 2", v)
		}
	}
}

func TestUpsample2PreservesConstant(t *testing.T) {
	f := New(4, 4, 4)
	f.Fill(7)
	g := f.Upsample2(8, 8, 8)
	for _, v := range g.Data {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("upsample of constant = %v, want 7", v)
		}
	}
}

func TestUpsampleNearest(t *testing.T) {
	f := New(2, 1, 1)
	f.Data[0], f.Data[1] = 1, 9
	g := f.UpsampleNearest(4, 2, 2)
	want := []float64{1, 1, 9, 9}
	for x := 0; x < 4; x++ {
		if g.At(x, 0, 0) != want[x] {
			t.Fatalf("nearest upsample x=%d: %v want %v", x, g.At(x, 0, 0), want[x])
		}
	}
}

func TestDownUpRoundTripLinearField(t *testing.T) {
	// A linear ramp should be reproduced nearly exactly by mean-downsample +
	// trilinear upsample away from boundaries.
	f := New(16, 16, 16)
	for z := 0; z < 16; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				f.Set(x, y, z, float64(x)+2*float64(y)+3*float64(z))
			}
		}
	}
	g := f.Downsample2().Upsample2(16, 16, 16)
	for z := 2; z < 14; z++ {
		for y := 2; y < 14; y++ {
			for x := 2; x < 14; x++ {
				if d := math.Abs(g.At(x, y, z) - f.At(x, y, z)); d > 1e-9 {
					t.Fatalf("linear field not preserved at (%d,%d,%d): diff %g", x, y, z, d)
				}
			}
		}
	}
}

func TestSliceZ(t *testing.T) {
	f := New(2, 2, 3)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	s := f.SliceZ(1)
	if s.Nz != 1 || s.At(0, 0, 0) != 4 || s.At(1, 1, 0) != 7 {
		t.Fatalf("SliceZ(1) wrong: %v", s.Data)
	}
}

func TestCloneIndependent(t *testing.T) {
	f := New(2, 2, 2)
	g := f.Clone()
	g.Data[0] = 99
	if f.Data[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestMaxAbsDiffAndEqual(t *testing.T) {
	f := New(2, 2, 2)
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("identical fields not Equal")
	}
	g.Data[3] = 0.5
	if f.Equal(g) {
		t.Fatal("different fields Equal")
	}
	if d := f.MaxAbsDiff(g); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v, want 0.5", d)
	}
}

func TestAddScaled(t *testing.T) {
	f := New(2, 1, 1)
	g := New(2, 1, 1)
	f.Data[0], f.Data[1] = 1, 2
	g.Data[0], g.Data[1] = 10, 20
	f.AddScaled(0.5, g)
	if f.Data[0] != 6 || f.Data[1] != 12 {
		t.Fatalf("AddScaled = %v", f.Data)
	}
}

func TestBinaryIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(5, 3, 4)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() * 1e6
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(24+8*f.Len()) {
		t.Fatalf("WriteTo bytes = %d", n)
	}
	g, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("binary round trip not exact")
	}
}

func TestReadFromRejectsBadHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 24)) // all zero dims
	if _, err := ReadFrom(&buf); err == nil {
		t.Fatal("expected error for zero dimensions")
	}
}

func TestQuickSubBlockRoundTrip(t *testing.T) {
	// Property: extracting any in-bounds block and writing it back to a zero
	// field, then extracting again, is idempotent.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 2+rng.Intn(7), 2+rng.Intn(7), 2+rng.Intn(7)
		f := New(nx, ny, nz)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		bx, by, bz := 1+rng.Intn(nx), 1+rng.Intn(ny), 1+rng.Intn(nz)
		x0, y0, z0 := rng.Intn(nx-bx+1), rng.Intn(ny-by+1), rng.Intn(nz-bz+1)
		b := f.SubBlock(x0, y0, z0, bx, by, bz)
		g := New(nx, ny, nz)
		g.SetBlock(x0, y0, z0, b)
		b2 := g.SubBlock(x0, y0, z0, bx, by, bz)
		return b.Equal(b2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDownsamplePreservesMean(t *testing.T) {
	// Property: for even dimensions, mean is exactly preserved by 2x mean
	// downsampling (each coarse cell averages exactly 8 children).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 * (1 + rng.Intn(4))
		f := New(n, n, n)
		for i := range f.Data {
			f.Data[i] = rng.Float64()
		}
		g := f.Downsample2()
		return math.Abs(f.Mean()-g.Mean()) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
