package huffman

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []int32) {
	t.Helper()
	enc := Encode(data)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(data) {
		t.Fatalf("length %d, want %d", len(dec), len(data))
	}
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("symbol %d: got %d want %d", i, dec[i], data[i])
		}
	}
}

func TestEmpty(t *testing.T) { roundTrip(t, []int32{}) }

func TestSingleSymbol(t *testing.T) {
	roundTrip(t, []int32{7})
	roundTrip(t, []int32{7, 7, 7, 7, 7})
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []int32{1, 2, 1, 1, 2, 1})
}

func TestNegativeSymbols(t *testing.T) {
	roundTrip(t, []int32{-5, 3, -5, 0, 1 << 30, -(1 << 30)})
}

func TestGeometricDistribution(t *testing.T) {
	// Quantization codes cluster around a center; mimic that.
	rng := rand.New(rand.NewSource(1))
	data := make([]int32, 20000)
	for i := range data {
		data[i] = 32768 + int32(rng.NormFloat64()*3)
	}
	enc := Encode(data)
	roundTrip(t, data)
	// Entropy of this distribution is ~3.3 bits; Huffman should get well
	// below the 32 bits/symbol raw size.
	if len(enc)*8 > len(data)*6 {
		t.Fatalf("poor compression: %d bits for %d symbols", len(enc)*8, len(data))
	}
}

func TestSkewedDistributionDepthLimit(t *testing.T) {
	// Fibonacci-like frequencies create maximal tree depth; ensure the
	// length-limited fallback still round-trips.
	var data []int32
	f1, f2 := 1, 1
	for s := int32(0); s < 40; s++ {
		for i := 0; i < f1 && len(data) < 300000; i++ {
			data = append(data, s)
		}
		f1, f2 = f2, f1+f2
		if f1 > 100000 {
			f1 = 100000
		}
	}
	roundTrip(t, data)
}

func TestUniformLargeAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]int32, 5000)
	for i := range data {
		data[i] = int32(rng.Intn(1000))
	}
	roundTrip(t, data)
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("expected error for empty buffer")
	}
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Fatal("expected error for truncated header")
	}
	// Valid encode, then truncate the bit stream.
	enc := Encode([]int32{1, 2, 3, 4, 5, 6, 7, 8})
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(data []int32) bool {
		enc := Encode(data)
		dec, err := Decode(enc)
		if err != nil || len(dec) != len(data) {
			return false
		}
		for i := range data {
			if dec[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// FuzzHuffmanRoundTrip asserts decode(encode(x)) == x for arbitrary symbol
// streams, and that decoding arbitrary (typically corrupt) bytes returns an
// error instead of panicking.
func FuzzHuffmanRoundTrip(f *testing.F) {
	// Seed the decode-robustness argument with the committed SZ backend
	// fixtures: their payloads embed real huffman sections, so the fuzzer's
	// corrupt-stream mutations start from shipped bit patterns.
	for _, pat := range []string{
		filepath.Join("..", "sz3", "testdata", "*.sz3"),
		filepath.Join("..", "sz2", "testdata", "*.sz2"),
	} {
		paths, err := filepath.Glob(pat)
		if err != nil || len(paths) == 0 {
			f.Fatalf("no golden fixtures for %s: %v", pat, err)
		}
		for _, p := range paths {
			blob, err := os.ReadFile(p)
			if err != nil {
				f.Fatalf("read golden fixture: %v", err)
			}
			f.Add([]byte{}, blob)
		}
	}
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 0, 1, 255, 255, 255, 255}, []byte{0xFF})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, Encode([]int32{1, 2, 1, 1, 2, 3}))
	f.Fuzz(func(t *testing.T, symRaw, stream []byte) {
		// Round trip: reinterpret symRaw as int32 symbols.
		data := make([]int32, len(symRaw)/4)
		for i := range data {
			data[i] = int32(uint32(symRaw[4*i]) | uint32(symRaw[4*i+1])<<8 |
				uint32(symRaw[4*i+2])<<16 | uint32(symRaw[4*i+3])<<24)
		}
		enc := Encode(data)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if len(dec) != len(data) {
			t.Fatalf("length %d, want %d", len(dec), len(data))
		}
		for i := range data {
			if dec[i] != data[i] {
				t.Fatalf("symbol %d: got %d want %d", i, dec[i], data[i])
			}
		}
		// Corrupt-stream robustness: arbitrary bytes, and truncations /
		// mutations of a valid stream, must error or succeed — never panic.
		if _, err := Decode(stream); err != nil {
			_ = err
		}
		if len(enc) > 0 {
			if _, err := Decode(enc[:len(enc)-1]); err != nil {
				_ = err
			}
			mut := append([]byte(nil), enc...)
			mut[len(mut)/2] ^= 0x5A
			if _, err := Decode(mut); err != nil {
				_ = err
			}
		}
	})
}

func TestDeterministicEncoding(t *testing.T) {
	data := []int32{5, 2, 9, 2, 5, 5, 1}
	a := Encode(data)
	b := Encode(data)
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}
