// Package huffman implements a canonical Huffman coder for the integer
// quantization codes produced by the error-bounded compressors, mirroring the
// entropy stage of SZ. The encoded stream is self-describing: it carries the
// symbol dictionary and canonical code lengths, followed by the bit stream.
//
// Two wire formats share the dictionary and code assignment. The historical
// single-lane format (Encode/Decode) is one sequential bitstream; the
// interleaved format (EncodeInterleaved, see interleave.go) splits the symbol
// stream into N fixed-stride lanes that decode independently — overlapped on
// one core or spread across goroutines — behind the same Decode entry point.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitio"
)

// maxCodeLen bounds canonical code lengths so codes fit comfortably in a
// uint64. If the Huffman tree is deeper, frequencies are flattened and the
// tree rebuilt.
const maxCodeLen = 57

// tableBits is the index width of the primary decode lookup table: one peek
// of this many bits resolves every code of length ≤ tableBits (the vast
// majority of symbols in SZ quantization streams) in a single table hit.
// 10 bits keeps the table at 2¹⁰ 32-byte entries (32 KiB), L1-resident —
// measured faster than wider tables despite covering fewer long codes.
const tableBits = 10

// maxN bounds the plausible symbol count in a stream header. Both wire
// formats enforce it before allocating, and the interleaved format's tag
// (InterleavedTag) is deliberately chosen above it so a single-lane-only
// decoder rejects interleaved streams instead of misparsing them.
const maxN = 1 << 33

type node struct {
	freq        uint64
	symbol      int32 // valid for leaves
	left, right int   // child indices, -1 for leaves
}

type nodeHeap struct {
	nodes []node
	order []int
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return h.order[i] < h.order[j] // deterministic tie-break
}
func (h *nodeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() any {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for the given symbol frequencies,
// flattening frequencies if the depth would exceed maxCodeLen.
func codeLengths(symbols []int32, freqs []uint64) []int {
	for {
		lengths := buildLengths(symbols, freqs)
		maxLen := 0
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= maxCodeLen {
			return lengths
		}
		// Flatten the distribution and retry; this terminates because all
		// frequencies converge toward 1, giving a balanced tree.
		for i := range freqs {
			freqs[i] = freqs[i]/2 + 1
		}
	}
}

func buildLengths(symbols []int32, freqs []uint64) []int {
	n := len(symbols)
	if n == 1 {
		return []int{1}
	}
	nodes := make([]node, 0, 2*n)
	h := &nodeHeap{nodes: nil}
	for i := 0; i < n; i++ {
		nodes = append(nodes, node{freq: freqs[i], symbol: symbols[i], left: -1, right: -1})
	}
	h.nodes = nodes
	h.order = make([]int, n)
	for i := range h.order {
		h.order[i] = i
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, node{freq: h.nodes[a].freq + h.nodes[b].freq, left: a, right: b})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.order[0]
	lengths := make([]int, n)
	// Iterative DFS assigning depths to leaves.
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[fr.idx]
		if nd.left == -1 {
			// Leaf: find its position. Leaves are the first n nodes in order.
			lengths[fr.idx] = fr.depth
			continue
		}
		stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
	}
	return lengths
}

// canonicalCodes assigns canonical codes given symbols sorted by (length,
// symbol). Returns code values aligned with the sorted order.
func canonicalCodes(lengths []int) []uint64 {
	codes := make([]uint64, len(lengths))
	var code uint64
	prevLen := 0
	for i, l := range lengths {
		code <<= uint(l - prevLen)
		codes[i] = code
		code++
		prevLen = l
	}
	return codes
}

// denseSpanLimit caps the symbol range for which histogram and code lookup
// use dense offset-indexed arrays instead of maps. SZ quantization codes
// cluster tightly around the zero code, so the dense path is the common one;
// the limit keeps degenerate wide-range inputs from allocating huge tables.
const denseSpanLimit = 1 << 22

// histogram counts symbol occurrences, returning symbols in ascending order
// with aligned frequencies. When the symbol range is small (the SZ
// quantization-code case) it uses a dense offset-indexed counting array; the
// map fallback covers arbitrary ranges. Both produce identical results. The
// returned minS/span/dense describe the range so the emit stage can make the
// same dense-vs-map choice without recomputing it.
func histogram(data []int32) (symbols []int32, freqs []uint64, minS int32, span int64, dense bool) {
	minS, maxS := data[0], data[0]
	for _, v := range data {
		if v < minS {
			minS = v
		}
		if v > maxS {
			maxS = v
		}
	}
	span = int64(maxS) - int64(minS) + 1
	limit := int64(4*len(data)) + 1024
	dense = span <= denseSpanLimit && span <= limit
	if dense {
		counts := make([]uint64, span)
		for _, v := range data {
			counts[int64(v)-int64(minS)]++
		}
		for i, c := range counts {
			if c != 0 {
				symbols = append(symbols, minS+int32(i))
				freqs = append(freqs, c)
			}
		}
		return symbols, freqs, minS, span, dense
	}
	freq := make(map[int32]uint64)
	for _, v := range data {
		freq[v]++
	}
	symbols = make([]int32, 0, len(freq))
	for s := range freq {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	freqs = make([]uint64, len(symbols))
	for i, s := range symbols {
		freqs[i] = freq[s]
	}
	return symbols, freqs, minS, span, dense
}

// sym is one dictionary entry: a symbol and its canonical code length.
type sym struct {
	s int32
	l int
}

type symCode struct {
	code uint64
	len  uint8
}

// coder holds one canonical code assignment — the sorted dictionary, the
// code values, and the symbol→code lookup — shared by the single-lane and
// interleaved encoders, which differ only in how they walk the input and
// frame the bitstream.
type coder struct {
	ss        []sym    // dictionary sorted by (length, symbol)
	codes     []uint64 // canonical codes aligned with ss
	totalBits int      // Σ freq·len over the whole input

	// Symbol→code lookup, mirroring histogram's dense-vs-map choice.
	dense   bool
	minS    int32
	codeVal []uint64 // dense: indexed by symbol-minS
	codeLen []uint8
	codeOf  map[int32]symCode // map fallback
}

// newCoder builds the canonical code assignment for data (which must be
// non-empty).
func newCoder(data []int32) *coder {
	symbols, freqs, minS, span, dense := histogram(data)

	// codeLengths may flatten freqs in place when limiting depth; keep the
	// true counts for sizing the output bit stream.
	origFreqs := append([]uint64(nil), freqs...)
	lengths := codeLengths(symbols, freqs)

	// Sort symbols canonically: by (length, symbol value).
	ss := make([]sym, len(symbols))
	for i := range symbols {
		ss[i] = sym{symbols[i], lengths[i]}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].l != ss[j].l {
			return ss[i].l < ss[j].l
		}
		return ss[i].s < ss[j].s
	})
	sortedLens := make([]int, len(ss))
	for i := range ss {
		sortedLens[i] = ss[i].l
	}
	codes := canonicalCodes(sortedLens)

	totalBits := 0
	for i := range origFreqs {
		totalBits += int(origFreqs[i]) * lengths[i]
	}

	c := &coder{ss: ss, codes: codes, totalBits: totalBits, dense: dense, minS: minS}
	if dense {
		c.codeVal = make([]uint64, span)
		c.codeLen = make([]uint8, span)
		for i, e := range ss {
			idx := int64(e.s) - int64(minS)
			c.codeVal[idx] = codes[i]
			c.codeLen[idx] = uint8(e.l)
		}
	} else {
		c.codeOf = make(map[int32]symCode, len(ss))
		for i, e := range ss {
			c.codeOf[e.s] = symCode{codes[i], uint8(e.l)}
		}
	}
	return c
}

// appendDict serializes the dictionary — uvarint symbol count, then per
// symbol a zigzag delta and a length byte — identically in both wire formats.
func (c *coder) appendDict(out []byte) []byte {
	out = binary.AppendUvarint(out, uint64(len(c.ss)))
	prev := int64(0)
	for _, e := range c.ss {
		delta := int64(e.s) - prev
		out = binary.AppendVarint(out, delta)
		prev = int64(e.s)
		out = append(out, byte(e.l))
	}
	return out
}

// bitLen returns the code length assigned to symbol v (which must occur in
// the coder's input).
func (c *coder) bitLen(v int32) int {
	if c.dense {
		return int(c.codeLen[int64(v)-int64(c.minS)])
	}
	return int(c.codeOf[v].len)
}

// emit appends the codes for data[start], data[start+stride], … to bw.
func (c *coder) emit(bw *bitio.Writer, data []int32, start, stride int) {
	if c.dense {
		codeVal, codeLen, minS := c.codeVal, c.codeLen, int64(c.minS)
		for i := start; i < len(data); i += stride {
			idx := int64(data[i]) - minS
			bw.WriteBits(codeVal[idx], uint(codeLen[idx]))
		}
		return
	}
	for i := start; i < len(data); i += stride {
		sc := c.codeOf[data[i]]
		bw.WriteBits(sc.code, uint(sc.len))
	}
}

// Encode compresses a sequence of int32 symbols into the single-lane format.
// The output is self-describing and decoded by Decode.
func Encode(data []int32) []byte {
	if len(data) == 0 {
		var out []byte
		out = binary.AppendUvarint(out, 0)
		out = binary.AppendUvarint(out, 0)
		return out
	}
	c := newCoder(data)

	var out []byte
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = c.appendDict(out)

	// Emit the bit stream. The writer appends to the header/dictionary
	// buffer and is pre-grown to the exact stream size (Σ freq·len), so the
	// hot loop never reallocates.
	bw := bitio.NewWriterAppend(out)
	bw.Grow(c.totalBits)
	c.emit(bw, data, 0, 1)
	return bw.Finish()
}

// Decode reverses Encode and EncodeInterleaved: the first uvarint
// distinguishes the formats (InterleavedTag is not a plausible symbol
// count). Interleaved streams decode serially here — DecodeWorkers adds
// goroutine-parallel lanes.
func Decode(buf []byte) ([]int32, error) { return decode(buf, 1) }

// DecodeWorkers is Decode with an explicit goroutine bound for the lanes of
// an interleaved stream: 1 decodes all lanes interleaved on the calling
// goroutine (ILP only), larger values spread lanes across up to that many
// goroutines, and values ≤ 0 use the runtime default (GOMAXPROCS). The
// single-lane format ignores workers. The result is identical for every
// worker count.
func DecodeWorkers(buf []byte, workers int) ([]int32, error) { return decode(buf, workers) }

func decode(buf []byte, workers int) ([]int32, error) {
	if tag, m := binary.Uvarint(buf); m > 0 && tag == InterleavedTag {
		return decodeInterleaved(buf[m:], workers)
	}
	n, k, err := readHeader(&buf)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []int32{}, nil
	}
	if k == 0 {
		return nil, errors.New("huffman: zero symbols for nonzero data")
	}
	syms, lens, buf, err := parseDict(buf, k)
	if err != nil {
		return nil, err
	}
	t, err := newDecodeTable(syms, lens, n)
	if err != nil {
		return nil, err
	}
	// Every code is at least one bit, so the payload bounds the symbol
	// count; checking before the allocation below keeps a corrupt header
	// from demanding gigabytes for a few bytes of stream.
	if n > len(buf)*8 {
		return nil, fmt.Errorf("huffman: %d-byte stream cannot hold %d symbols: %w", len(buf), n, bitio.ErrOutOfBits)
	}
	br := bitio.NewReader(buf)
	// maxBatch slack lets the batch path store a full fixed-size array (a
	// few plain moves instead of a variable-length copy); the tail beyond n
	// is trimmed on return and never decoded.
	out := make([]int32, n+maxBatch)
	if err := t.decodeAll(br, out, n); err != nil {
		return nil, err
	}
	return out[:n:n], nil
}

// parseDict reads the k-entry dictionary (zigzag-delta symbols + length
// bytes) and checks it is sorted by (length, symbol) as canonical decode
// requires. It returns the symbols, lengths, and the remaining bytes.
func parseDict(buf []byte, k int) (syms []int32, lens []int, rest []byte, err error) {
	syms = make([]int32, k)
	lens = make([]int, k)
	prev := int64(0)
	for i := 0; i < k; i++ {
		delta, m := binary.Varint(buf)
		if m <= 0 {
			return nil, nil, nil, errors.New("huffman: truncated dictionary")
		}
		buf = buf[m:]
		prev += delta
		if prev > math.MaxInt32 || prev < math.MinInt32 {
			return nil, nil, nil, errors.New("huffman: symbol out of range")
		}
		syms[i] = int32(prev)
		if len(buf) == 0 {
			return nil, nil, nil, errors.New("huffman: truncated lengths")
		}
		lens[i] = int(buf[0])
		if lens[i] == 0 || lens[i] > maxCodeLen+1 {
			return nil, nil, nil, fmt.Errorf("huffman: invalid code length %d", lens[i])
		}
		buf = buf[1:]
	}
	for i := 1; i < k; i++ {
		if lens[i] < lens[i-1] {
			return nil, nil, nil, errors.New("huffman: dictionary not canonical")
		}
	}
	return syms, lens, buf, nil
}

// maxBatch is the number of symbols one decode-table entry can hold.
const maxBatch = 7

type tableEntry struct {
	n     uint8 // symbols fully decoded within the window
	total uint8 // bits consumed by those n symbols
	first uint8 // bit length of the first symbol; 0 → long-code fallback
	syms  [maxBatch]int32
}

// decodeTable is the table-driven canonical decoder state, shared by the
// single-lane loop and every lane of an interleaved stream (the lanes share
// one code table by construction).
//
// The primary table maps every possible value of the next tb bits to the
// symbols that decode from it. Because SZ quantization streams are dominated
// by 1–3-bit codes, one window usually holds several complete symbols, so
// each entry stores the whole batch — one Peek/lookup/Skip round-trip emits
// up to maxBatch symbols, amortizing the serial bit-position dependency that
// otherwise bounds Huffman decode throughput. Codes longer than tb fall back
// to the canonical first-code scan.
type decodeTable struct {
	syms      []int32
	maxLen    int
	tb        int
	firstCode []uint64
	firstIdx  []int
	countAt   []int
	entries   []tableEntry
}

// newDecodeTable validates the code lengths (Kraft sum) and fills the lookup
// table. n is the total symbol count of the stream, used only to size the
// table for small streams.
func newDecodeTable(syms []int32, lens []int, n int) (*decodeTable, error) {
	k := len(syms)
	codes := canonicalCodes(lens)

	// Canonical decoding: per length, the first code and symbol index.
	maxLen := lens[k-1]
	// Reject dictionaries that oversubscribe the code space (Kraft sum > 1):
	// their canonical codes overflow the length class, which the table fill
	// below must never see. The check is incremental so it cannot overflow.
	var kraft uint64 // in units of 2^-maxLen
	for i := 0; i < k; i++ {
		kraft += 1 << uint(maxLen-lens[i])
		if kraft > 1<<uint(maxLen) {
			return nil, errors.New("huffman: invalid code lengths")
		}
	}
	firstCode := make([]uint64, maxLen+2)
	firstIdx := make([]int, maxLen+2)
	countAt := make([]int, maxLen+2)
	for i := 0; i < k; i++ {
		if countAt[lens[i]] == 0 {
			firstCode[lens[i]] = codes[i]
			firstIdx[lens[i]] = i
		}
		countAt[lens[i]]++
	}

	tb := tableBits
	if maxLen < tb {
		tb = maxLen
	}
	if n < 1<<14 && tb > 8 {
		tb = 8 // small streams don't amortize the full-width table build
	}
	table := make([]tableEntry, 1<<uint(tb))
	for w := range table {
		e := &table[w]
		pos := 0
		for int(e.n) < maxBatch {
			sym, l := int32(0), 0
			for l = 1; l <= tb-pos && l <= maxLen; l++ {
				code := uint64(w) >> uint(tb-pos-l) & (1<<uint(l) - 1)
				if countAt[l] > 0 && code >= firstCode[l] && code < firstCode[l]+uint64(countAt[l]) {
					sym = syms[firstIdx[l]+int(code-firstCode[l])]
					break
				}
			}
			if l > tb-pos || l > maxLen {
				break // next code extends beyond the window
			}
			if e.n == 0 {
				e.first = uint8(l)
			}
			e.syms[e.n] = sym
			e.n++
			pos += l
		}
		e.total = uint8(pos)
	}
	return &decodeTable{
		syms: syms, maxLen: maxLen, tb: tb,
		firstCode: firstCode, firstIdx: firstIdx, countAt: countAt,
		entries: table,
	}, nil
}

// decodeAll drains one sequential bitstream into out[0:n]. out must have
// maxBatch slack beyond n for the fixed-size batch store. Peek zero-pads
// past the end of the buffer, so Skip performs the authoritative bounds
// check: a code that would extend past the last byte is reported as
// truncation, exactly like the historical bit-at-a-time decoder.
func (t *decodeTable) decodeAll(br *bitio.Reader, out []int32, n int) error {
	entries, tb := t.entries, uint(t.tb)
	for i := 0; i < n; {
		e := &entries[br.Peek(tb)]
		if nb := int(e.n); nb > 0 {
			if i+nb <= n {
				if err := br.Skip(uint(e.total)); err == nil {
					*(*[maxBatch]int32)(out[i:]) = e.syms
					i += nb
					continue
				}
			}
			// Output tail or truncated stream: take exactly one symbol with
			// a precise per-symbol bounds check.
			if err := br.Skip(uint(e.first)); err != nil {
				return fmt.Errorf("huffman: truncated bit stream at symbol %d: %w", i, err)
			}
			out[i] = e.syms[0]
			i++
			continue
		}
		s, err := t.decodeLong(br, i)
		if err != nil {
			return err
		}
		out[i] = s
		i++
	}
	return nil
}

// decodeLong resolves one code longer than the table width by scanning the
// canonical first-code ranges. i only labels the error.
func (t *decodeTable) decodeLong(br *bitio.Reader, i int) (int32, error) {
	maxLen := t.maxLen
	pk := br.Peek(uint(maxLen))
	for l := t.tb + 1; l <= maxLen; l++ {
		code := pk >> uint(maxLen-l)
		if t.countAt[l] > 0 && code >= t.firstCode[l] && code < t.firstCode[l]+uint64(t.countAt[l]) {
			if err := br.Skip(uint(l)); err != nil {
				return 0, fmt.Errorf("huffman: truncated bit stream at symbol %d: %w", i, err)
			}
			return t.syms[t.firstIdx[l]+int(code-t.firstCode[l])], nil
		}
	}
	if br.Remaining() < maxLen {
		return 0, fmt.Errorf("huffman: truncated bit stream at symbol %d: %w", i, bitio.ErrOutOfBits)
	}
	return 0, errors.New("huffman: invalid code in stream")
}

func readHeader(buf *[]byte) (n, k int, err error) {
	un, m := binary.Uvarint(*buf)
	if m <= 0 {
		return 0, 0, errors.New("huffman: truncated header")
	}
	*buf = (*buf)[m:]
	uk, m := binary.Uvarint(*buf)
	if m <= 0 {
		return 0, 0, errors.New("huffman: truncated header")
	}
	*buf = (*buf)[m:]
	if un > maxN || uk > un+1 {
		return 0, 0, fmt.Errorf("huffman: implausible header n=%d k=%d", un, uk)
	}
	return int(un), int(uk), nil
}
