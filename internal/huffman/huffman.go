// Package huffman implements a canonical Huffman coder for the integer
// quantization codes produced by the error-bounded compressors, mirroring the
// entropy stage of SZ. The encoded stream is self-describing: it carries the
// symbol dictionary and canonical code lengths, followed by the bit stream.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// maxCodeLen bounds canonical code lengths so codes fit comfortably in a
// uint64. If the Huffman tree is deeper, frequencies are flattened and the
// tree rebuilt.
const maxCodeLen = 57

type node struct {
	freq        uint64
	symbol      int32 // valid for leaves
	left, right int   // child indices, -1 for leaves
}

type nodeHeap struct {
	nodes []node
	order []int
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return h.order[i] < h.order[j] // deterministic tie-break
}
func (h *nodeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() any {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for the given symbol frequencies,
// flattening frequencies if the depth would exceed maxCodeLen.
func codeLengths(symbols []int32, freqs []uint64) []int {
	for {
		lengths := buildLengths(symbols, freqs)
		maxLen := 0
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= maxCodeLen {
			return lengths
		}
		// Flatten the distribution and retry; this terminates because all
		// frequencies converge toward 1, giving a balanced tree.
		for i := range freqs {
			freqs[i] = freqs[i]/2 + 1
		}
	}
}

func buildLengths(symbols []int32, freqs []uint64) []int {
	n := len(symbols)
	if n == 1 {
		return []int{1}
	}
	nodes := make([]node, 0, 2*n)
	h := &nodeHeap{nodes: nil}
	for i := 0; i < n; i++ {
		nodes = append(nodes, node{freq: freqs[i], symbol: symbols[i], left: -1, right: -1})
	}
	h.nodes = nodes
	h.order = make([]int, n)
	for i := range h.order {
		h.order[i] = i
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, node{freq: h.nodes[a].freq + h.nodes[b].freq, left: a, right: b})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.order[0]
	lengths := make([]int, n)
	// Iterative DFS assigning depths to leaves.
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[fr.idx]
		if nd.left == -1 {
			// Leaf: find its position. Leaves are the first n nodes in order.
			lengths[fr.idx] = fr.depth
			continue
		}
		stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
	}
	return lengths
}

// canonicalCodes assigns canonical codes given symbols sorted by (length,
// symbol). Returns code values aligned with the sorted order.
func canonicalCodes(lengths []int) []uint64 {
	codes := make([]uint64, len(lengths))
	var code uint64
	prevLen := 0
	for i, l := range lengths {
		code <<= uint(l - prevLen)
		codes[i] = code
		code++
		prevLen = l
	}
	return codes
}

// Encode compresses a sequence of int32 symbols. The output is
// self-describing and decoded by Decode.
func Encode(data []int32) []byte {
	// Histogram.
	freq := make(map[int32]uint64)
	for _, v := range data {
		freq[v]++
	}
	symbols := make([]int32, 0, len(freq))
	for s := range freq {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })

	var out []byte
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = binary.AppendUvarint(out, uint64(len(symbols)))
	if len(data) == 0 {
		return out
	}

	freqs := make([]uint64, len(symbols))
	for i, s := range symbols {
		freqs[i] = freq[s]
	}
	lengths := codeLengths(symbols, freqs)

	// Sort symbols canonically: by (length, symbol value).
	type sym struct {
		s int32
		l int
	}
	ss := make([]sym, len(symbols))
	for i := range symbols {
		ss[i] = sym{symbols[i], lengths[i]}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].l != ss[j].l {
			return ss[i].l < ss[j].l
		}
		return ss[i].s < ss[j].s
	})
	sortedLens := make([]int, len(ss))
	for i := range ss {
		sortedLens[i] = ss[i].l
	}
	codes := canonicalCodes(sortedLens)

	// Serialize dictionary: symbols (zigzag delta) + lengths.
	prev := int64(0)
	for _, e := range ss {
		delta := int64(e.s) - prev
		out = binary.AppendVarint(out, delta)
		prev = int64(e.s)
		out = append(out, byte(e.l))
	}

	// Build lookup and emit the bit stream.
	codeOf := make(map[int32]struct {
		code uint64
		len  uint
	}, len(ss))
	for i, e := range ss {
		codeOf[e.s] = struct {
			code uint64
			len  uint
		}{codes[i], uint(e.l)}
	}
	bw := bitio.NewWriter()
	for _, v := range data {
		c := codeOf[v]
		bw.WriteBits(c.code, c.len)
	}
	return append(out, bw.Bytes()...)
}

// Decode reverses Encode.
func Decode(buf []byte) ([]int32, error) {
	n, k, err := readHeader(&buf)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []int32{}, nil
	}
	if k == 0 {
		return nil, errors.New("huffman: zero symbols for nonzero data")
	}
	syms := make([]int32, k)
	lens := make([]int, k)
	prev := int64(0)
	for i := 0; i < k; i++ {
		delta, m := binary.Varint(buf)
		if m <= 0 {
			return nil, errors.New("huffman: truncated dictionary")
		}
		buf = buf[m:]
		prev += delta
		syms[i] = int32(prev)
		if len(buf) == 0 {
			return nil, errors.New("huffman: truncated lengths")
		}
		lens[i] = int(buf[0])
		if lens[i] == 0 || lens[i] > maxCodeLen+1 {
			return nil, fmt.Errorf("huffman: invalid code length %d", lens[i])
		}
		buf = buf[1:]
	}
	// Dictionary must be sorted by (length, symbol) for canonical decode.
	for i := 1; i < k; i++ {
		if lens[i] < lens[i-1] {
			return nil, errors.New("huffman: dictionary not canonical")
		}
	}
	codes := canonicalCodes(lens)

	// Canonical decoding: per length, the first code and symbol index.
	maxLen := lens[k-1]
	firstCode := make([]uint64, maxLen+2)
	firstIdx := make([]int, maxLen+2)
	countAt := make([]int, maxLen+2)
	for i := 0; i < k; i++ {
		if countAt[lens[i]] == 0 {
			firstCode[lens[i]] = codes[i]
			firstIdx[lens[i]] = i
		}
		countAt[lens[i]]++
	}

	br := bitio.NewReader(buf)
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		var code uint64
		l := 0
		for {
			b, err := br.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("huffman: truncated bit stream at symbol %d: %w", i, err)
			}
			code = code<<1 | uint64(b)
			l++
			if l > maxLen {
				return nil, errors.New("huffman: invalid code in stream")
			}
			if countAt[l] > 0 && code >= firstCode[l] && code < firstCode[l]+uint64(countAt[l]) {
				out[i] = syms[firstIdx[l]+int(code-firstCode[l])]
				break
			}
		}
	}
	return out, nil
}

func readHeader(buf *[]byte) (n, k int, err error) {
	un, m := binary.Uvarint(*buf)
	if m <= 0 {
		return 0, 0, errors.New("huffman: truncated header")
	}
	*buf = (*buf)[m:]
	uk, m := binary.Uvarint(*buf)
	if m <= 0 {
		return 0, 0, errors.New("huffman: truncated header")
	}
	*buf = (*buf)[m:]
	const maxN = 1 << 33
	if un > maxN || uk > un+1 {
		return 0, 0, fmt.Errorf("huffman: implausible header n=%d k=%d", un, uk)
	}
	return int(un), int(uk), nil
}
