// Package huffman implements a canonical Huffman coder for the integer
// quantization codes produced by the error-bounded compressors, mirroring the
// entropy stage of SZ. The encoded stream is self-describing: it carries the
// symbol dictionary and canonical code lengths, followed by the bit stream.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitio"
)

// maxCodeLen bounds canonical code lengths so codes fit comfortably in a
// uint64. If the Huffman tree is deeper, frequencies are flattened and the
// tree rebuilt.
const maxCodeLen = 57

// tableBits is the index width of the primary decode lookup table: one peek
// of this many bits resolves every code of length ≤ tableBits (the vast
// majority of symbols in SZ quantization streams) in a single table hit.
// 10 bits keeps the table at 2¹⁰ 32-byte entries (32 KiB), L1-resident —
// measured faster than wider tables despite covering fewer long codes.
const tableBits = 10

type node struct {
	freq        uint64
	symbol      int32 // valid for leaves
	left, right int   // child indices, -1 for leaves
}

type nodeHeap struct {
	nodes []node
	order []int
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return h.order[i] < h.order[j] // deterministic tie-break
}
func (h *nodeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() any {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for the given symbol frequencies,
// flattening frequencies if the depth would exceed maxCodeLen.
func codeLengths(symbols []int32, freqs []uint64) []int {
	for {
		lengths := buildLengths(symbols, freqs)
		maxLen := 0
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= maxCodeLen {
			return lengths
		}
		// Flatten the distribution and retry; this terminates because all
		// frequencies converge toward 1, giving a balanced tree.
		for i := range freqs {
			freqs[i] = freqs[i]/2 + 1
		}
	}
}

func buildLengths(symbols []int32, freqs []uint64) []int {
	n := len(symbols)
	if n == 1 {
		return []int{1}
	}
	nodes := make([]node, 0, 2*n)
	h := &nodeHeap{nodes: nil}
	for i := 0; i < n; i++ {
		nodes = append(nodes, node{freq: freqs[i], symbol: symbols[i], left: -1, right: -1})
	}
	h.nodes = nodes
	h.order = make([]int, n)
	for i := range h.order {
		h.order[i] = i
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, node{freq: h.nodes[a].freq + h.nodes[b].freq, left: a, right: b})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.order[0]
	lengths := make([]int, n)
	// Iterative DFS assigning depths to leaves.
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[fr.idx]
		if nd.left == -1 {
			// Leaf: find its position. Leaves are the first n nodes in order.
			lengths[fr.idx] = fr.depth
			continue
		}
		stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
	}
	return lengths
}

// canonicalCodes assigns canonical codes given symbols sorted by (length,
// symbol). Returns code values aligned with the sorted order.
func canonicalCodes(lengths []int) []uint64 {
	codes := make([]uint64, len(lengths))
	var code uint64
	prevLen := 0
	for i, l := range lengths {
		code <<= uint(l - prevLen)
		codes[i] = code
		code++
		prevLen = l
	}
	return codes
}

// denseSpanLimit caps the symbol range for which histogram and code lookup
// use dense offset-indexed arrays instead of maps. SZ quantization codes
// cluster tightly around the zero code, so the dense path is the common one;
// the limit keeps degenerate wide-range inputs from allocating huge tables.
const denseSpanLimit = 1 << 22

// histogram counts symbol occurrences, returning symbols in ascending order
// with aligned frequencies. When the symbol range is small (the SZ
// quantization-code case) it uses a dense offset-indexed counting array; the
// map fallback covers arbitrary ranges. Both produce identical results. The
// returned minS/span/dense describe the range so the emit stage can make the
// same dense-vs-map choice without recomputing it.
func histogram(data []int32) (symbols []int32, freqs []uint64, minS int32, span int64, dense bool) {
	minS, maxS := data[0], data[0]
	for _, v := range data {
		if v < minS {
			minS = v
		}
		if v > maxS {
			maxS = v
		}
	}
	span = int64(maxS) - int64(minS) + 1
	limit := int64(4*len(data)) + 1024
	dense = span <= denseSpanLimit && span <= limit
	if dense {
		counts := make([]uint64, span)
		for _, v := range data {
			counts[int64(v)-int64(minS)]++
		}
		for i, c := range counts {
			if c != 0 {
				symbols = append(symbols, minS+int32(i))
				freqs = append(freqs, c)
			}
		}
		return symbols, freqs, minS, span, dense
	}
	freq := make(map[int32]uint64)
	for _, v := range data {
		freq[v]++
	}
	symbols = make([]int32, 0, len(freq))
	for s := range freq {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	freqs = make([]uint64, len(symbols))
	for i, s := range symbols {
		freqs[i] = freq[s]
	}
	return symbols, freqs, minS, span, dense
}

// Encode compresses a sequence of int32 symbols. The output is
// self-describing and decoded by Decode.
func Encode(data []int32) []byte {
	if len(data) == 0 {
		var out []byte
		out = binary.AppendUvarint(out, 0)
		out = binary.AppendUvarint(out, 0)
		return out
	}
	symbols, freqs, minS, span, dense := histogram(data)

	var out []byte
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = binary.AppendUvarint(out, uint64(len(symbols)))

	// codeLengths may flatten freqs in place when limiting depth; keep the
	// true counts for sizing the output bit stream.
	origFreqs := append([]uint64(nil), freqs...)
	lengths := codeLengths(symbols, freqs)

	// Sort symbols canonically: by (length, symbol value).
	type sym struct {
		s int32
		l int
	}
	ss := make([]sym, len(symbols))
	for i := range symbols {
		ss[i] = sym{symbols[i], lengths[i]}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].l != ss[j].l {
			return ss[i].l < ss[j].l
		}
		return ss[i].s < ss[j].s
	})
	sortedLens := make([]int, len(ss))
	for i := range ss {
		sortedLens[i] = ss[i].l
	}
	codes := canonicalCodes(sortedLens)

	// Serialize dictionary: symbols (zigzag delta) + lengths.
	prev := int64(0)
	for _, e := range ss {
		delta := int64(e.s) - prev
		out = binary.AppendVarint(out, delta)
		prev = int64(e.s)
		out = append(out, byte(e.l))
	}

	// Emit the bit stream. The writer appends to the header/dictionary
	// buffer and is pre-grown to the exact stream size (Σ freq·len), so the
	// hot loop never reallocates. Symbol→code lookup mirrors the histogram:
	// dense offset-indexed arrays when the symbol range is small, map
	// fallback otherwise.
	totalBits := 0
	for i := range origFreqs {
		totalBits += int(origFreqs[i]) * lengths[i]
	}
	bw := bitio.NewWriterAppend(out)
	bw.Grow(totalBits)
	if dense {
		codeVal := make([]uint64, span)
		codeLen := make([]uint8, span)
		for i, e := range ss {
			idx := int64(e.s) - int64(minS)
			codeVal[idx] = codes[i]
			codeLen[idx] = uint8(e.l)
		}
		for _, v := range data {
			idx := int64(v) - int64(minS)
			bw.WriteBits(codeVal[idx], uint(codeLen[idx]))
		}
	} else {
		type symCode struct {
			code uint64
			len  uint8
		}
		codeOf := make(map[int32]symCode, len(ss))
		for i, e := range ss {
			codeOf[e.s] = symCode{codes[i], uint8(e.l)}
		}
		for _, v := range data {
			c := codeOf[v]
			bw.WriteBits(c.code, uint(c.len))
		}
	}
	return bw.Finish()
}

// Decode reverses Encode.
func Decode(buf []byte) ([]int32, error) {
	n, k, err := readHeader(&buf)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []int32{}, nil
	}
	if k == 0 {
		return nil, errors.New("huffman: zero symbols for nonzero data")
	}
	syms := make([]int32, k)
	lens := make([]int, k)
	prev := int64(0)
	for i := 0; i < k; i++ {
		delta, m := binary.Varint(buf)
		if m <= 0 {
			return nil, errors.New("huffman: truncated dictionary")
		}
		buf = buf[m:]
		prev += delta
		if prev > math.MaxInt32 || prev < math.MinInt32 {
			return nil, errors.New("huffman: symbol out of range")
		}
		syms[i] = int32(prev)
		if len(buf) == 0 {
			return nil, errors.New("huffman: truncated lengths")
		}
		lens[i] = int(buf[0])
		if lens[i] == 0 || lens[i] > maxCodeLen+1 {
			return nil, fmt.Errorf("huffman: invalid code length %d", lens[i])
		}
		buf = buf[1:]
	}
	// Dictionary must be sorted by (length, symbol) for canonical decode.
	for i := 1; i < k; i++ {
		if lens[i] < lens[i-1] {
			return nil, errors.New("huffman: dictionary not canonical")
		}
	}
	codes := canonicalCodes(lens)

	// Canonical decoding: per length, the first code and symbol index.
	maxLen := lens[k-1]
	// Reject dictionaries that oversubscribe the code space (Kraft sum > 1):
	// their canonical codes overflow the length class, which the table fill
	// below must never see. The check is incremental so it cannot overflow.
	var kraft uint64 // in units of 2^-maxLen
	for i := 0; i < k; i++ {
		kraft += 1 << uint(maxLen-lens[i])
		if kraft > 1<<uint(maxLen) {
			return nil, errors.New("huffman: invalid code lengths")
		}
	}
	firstCode := make([]uint64, maxLen+2)
	firstIdx := make([]int, maxLen+2)
	countAt := make([]int, maxLen+2)
	for i := 0; i < k; i++ {
		if countAt[lens[i]] == 0 {
			firstCode[lens[i]] = codes[i]
			firstIdx[lens[i]] = i
		}
		countAt[lens[i]]++
	}

	// Table-driven decode: the primary table maps every possible value of
	// the next tb bits to the symbols that decode from it. Because SZ
	// quantization streams are dominated by 1–3-bit codes, one window
	// usually holds several complete symbols, so each entry stores the whole
	// batch — one Peek/lookup/Skip round-trip emits up to maxBatch symbols,
	// amortizing the serial bit-position dependency that otherwise bounds
	// Huffman decode throughput. Codes longer than tb fall back to the
	// canonical first-code scan. Peek zero-pads past the end of the buffer,
	// so Skip performs the authoritative bounds check: a code that would
	// extend past the last byte is reported as truncation, exactly like the
	// historical bit-at-a-time decoder.
	tb := tableBits
	if maxLen < tb {
		tb = maxLen
	}
	if n < 1<<14 && tb > 8 {
		tb = 8 // small streams don't amortize the full-width table build
	}
	const maxBatch = 7
	type tableEntry struct {
		n     uint8 // symbols fully decoded within the window
		total uint8 // bits consumed by those n symbols
		first uint8 // bit length of the first symbol; 0 → long-code fallback
		syms  [maxBatch]int32
	}
	table := make([]tableEntry, 1<<uint(tb))
	for w := range table {
		e := &table[w]
		pos := 0
		for int(e.n) < maxBatch {
			sym, l := int32(0), 0
			for l = 1; l <= tb-pos && l <= maxLen; l++ {
				code := uint64(w) >> uint(tb-pos-l) & (1<<uint(l) - 1)
				if countAt[l] > 0 && code >= firstCode[l] && code < firstCode[l]+uint64(countAt[l]) {
					sym = syms[firstIdx[l]+int(code-firstCode[l])]
					break
				}
			}
			if l > tb-pos || l > maxLen {
				break // next code extends beyond the window
			}
			if e.n == 0 {
				e.first = uint8(l)
			}
			e.syms[e.n] = sym
			e.n++
			pos += l
		}
		e.total = uint8(pos)
	}

	br := bitio.NewReader(buf)
	// maxBatch slack lets the batch path store a full fixed-size array (a
	// few plain moves instead of a variable-length copy); the tail beyond n
	// is trimmed on return and never decoded.
	out := make([]int32, n+maxBatch)
	for i := 0; i < n; {
		e := &table[br.Peek(uint(tb))]
		if nb := int(e.n); nb > 0 {
			if i+nb <= n {
				if err := br.Skip(uint(e.total)); err == nil {
					*(*[maxBatch]int32)(out[i:]) = e.syms
					i += nb
					continue
				}
			}
			// Output tail or truncated stream: take exactly one symbol with
			// a precise per-symbol bounds check.
			if err := br.Skip(uint(e.first)); err != nil {
				return nil, fmt.Errorf("huffman: truncated bit stream at symbol %d: %w", i, err)
			}
			out[i] = e.syms[0]
			i++
			continue
		}
		// Long code: scan lengths beyond the table width against the
		// canonical first-code ranges.
		pk := br.Peek(uint(maxLen))
		matched := false
		for l := tb + 1; l <= maxLen; l++ {
			code := pk >> uint(maxLen-l)
			if countAt[l] > 0 && code >= firstCode[l] && code < firstCode[l]+uint64(countAt[l]) {
				if err := br.Skip(uint(l)); err != nil {
					return nil, fmt.Errorf("huffman: truncated bit stream at symbol %d: %w", i, err)
				}
				out[i] = syms[firstIdx[l]+int(code-firstCode[l])]
				matched = true
				break
			}
		}
		if !matched {
			if br.Remaining() < maxLen {
				return nil, fmt.Errorf("huffman: truncated bit stream at symbol %d: %w", i, bitio.ErrOutOfBits)
			}
			return nil, errors.New("huffman: invalid code in stream")
		}
		i++
	}
	return out[:n:n], nil
}

func readHeader(buf *[]byte) (n, k int, err error) {
	un, m := binary.Uvarint(*buf)
	if m <= 0 {
		return 0, 0, errors.New("huffman: truncated header")
	}
	*buf = (*buf)[m:]
	uk, m := binary.Uvarint(*buf)
	if m <= 0 {
		return 0, 0, errors.New("huffman: truncated header")
	}
	*buf = (*buf)[m:]
	const maxN = 1 << 33
	if un > maxN || uk > un+1 {
		return 0, 0, fmt.Errorf("huffman: implausible header n=%d k=%d", un, uk)
	}
	return int(un), int(uk), nil
}
