package huffman

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// interleaveCorpus returns symbol streams spanning the shapes the encoder
// sees in practice: empty, tiny, batch-boundary sizes, clustered
// quantization codes, and a skewed distribution with long codes.
func interleaveCorpus() map[string][]int32 {
	rng := rand.New(rand.NewSource(7))
	gauss := make([]int32, 200000)
	for i := range gauss {
		gauss[i] = 4096 + int32(rng.NormFloat64()*4)
	}
	var skewed []int32
	f1, f2 := 1, 1
	for s := int32(0); s < 36; s++ {
		for i := 0; i < f1 && len(skewed) < 150000; i++ {
			skewed = append(skewed, s)
		}
		f1, f2 = f2, f1+f2
		if f1 > 60000 {
			f1 = 60000
		}
	}
	rng.Shuffle(len(skewed), func(i, j int) { skewed[i], skewed[j] = skewed[j], skewed[i] })
	return map[string][]int32{
		"empty":    {},
		"one":      {42},
		"tiny":     {-3, 9, -3, -3, 9, 7},
		"batchish": {1, 2, 1, 1, 2, 1, 2, 2, 1, 1, 1, 2, 1},
		"gauss":    gauss,
		"skewed":   skewed,
	}
}

func TestInterleavedRoundTripMatrix(t *testing.T) {
	for name, data := range interleaveCorpus() {
		for _, lanes := range []int{-1, 0, 1, 2, 4, 8, 32} {
			enc := EncodeInterleaved(data, lanes)
			for _, workers := range []int{0, 1, 2, 4, 7} {
				dec, err := DecodeWorkers(enc, workers)
				if err != nil {
					t.Fatalf("%s lanes=%d workers=%d: decode: %v", name, lanes, workers, err)
				}
				if len(dec) != len(data) {
					t.Fatalf("%s lanes=%d workers=%d: length %d, want %d", name, lanes, workers, len(dec), len(data))
				}
				for i := range data {
					if dec[i] != data[i] {
						t.Fatalf("%s lanes=%d workers=%d: symbol %d: got %d want %d", name, lanes, workers, i, dec[i], data[i])
					}
				}
			}
		}
	}
}

func TestEncodeInterleavedSingleLaneMatchesEncode(t *testing.T) {
	for name, data := range interleaveCorpus() {
		want := Encode(data)
		for _, lanes := range []int{0, 1} {
			if got := EncodeInterleaved(data, lanes); !bytes.Equal(got, want) {
				t.Fatalf("%s lanes=%d: EncodeInterleaved differs from Encode", name, lanes)
			}
		}
	}
	// A lane request larger than the stream shrinks until no lane is empty,
	// collapsing to the single-lane format only for a single symbol.
	if got := Lanes(EncodeInterleaved([]int32{5, 6, 7}, 8)); got != 2 {
		t.Fatalf("lanes=8 on 3 symbols: got %d lanes, want 2", got)
	}
	data := []int32{9}
	if got := EncodeInterleaved(data, 8); !bytes.Equal(got, Encode(data)) {
		t.Fatalf("lanes=8 on 1 symbol: want fallback to single-lane encoding")
	}
}

func TestEncodeInterleavedNormalizesLaneCount(t *testing.T) {
	data := make([]int32, 4096)
	for i := range data {
		data[i] = int32(i % 17)
	}
	// Non-power-of-two rounds down, oversized caps at MaxLanes.
	if got := Lanes(EncodeInterleaved(data, 6)); got != 4 {
		t.Fatalf("lanes=6 normalized to %d, want 4", got)
	}
	if got := Lanes(EncodeInterleaved(data, 1<<20)); got != MaxLanes {
		t.Fatalf("lanes=1<<20 normalized to %d, want %d", got, MaxLanes)
	}
}

func TestAutoLanes(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1},
		{1000, 1},
		{autoLaneSymbols, 1},
		{2 * autoLaneSymbols, 2},
		{4 * autoLaneSymbols, 4},
		{8 * autoLaneSymbols, 8},
		{1 << 24, maxAutoLanes},
	}
	for _, c := range cases {
		if got := AutoLanes(c.n); got != c.want {
			t.Fatalf("AutoLanes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestValidLanes(t *testing.T) {
	for _, l := range []int{-5, -1, 0, 1, 2, 4, 32, 64} {
		if !ValidLanes(l) {
			t.Fatalf("ValidLanes(%d) = false, want true", l)
		}
	}
	for _, l := range []int{3, 5, 6, 7, 9, 65, 128} {
		if ValidLanes(l) {
			t.Fatalf("ValidLanes(%d) = true, want false", l)
		}
	}
}

func TestLanesSniff(t *testing.T) {
	data := make([]int32, 1<<17)
	for i := range data {
		data[i] = int32(i & 31)
	}
	if got := Lanes(Encode(data)); got != 1 {
		t.Fatalf("single-lane stream reported %d lanes", got)
	}
	if got := Lanes(EncodeInterleaved(data, 4)); got != 4 {
		t.Fatalf("4-lane stream reported %d lanes", got)
	}
	if got := Lanes([]byte{0x80}); got != 1 { // truncated uvarint
		t.Fatalf("unparseable stream reported %d lanes", got)
	}
}

// TestLegacyDecoderRejectsInterleaved pins the discriminator property: the
// tag exceeds the single-lane plausibility bound, so a decoder that only
// knows the old format errors instead of misparsing.
func TestLegacyDecoderRejectsInterleaved(t *testing.T) {
	if InterleavedTag <= maxN {
		t.Fatalf("InterleavedTag %#x must exceed maxN %#x", int64(InterleavedTag), int64(maxN))
	}
	enc := EncodeInterleaved([]int32{1, 2, 3, 1, 2, 3, 1, 2}, 2)
	buf := enc
	n, k, err := readHeader(&buf)
	if err == nil {
		t.Fatalf("legacy readHeader accepted interleaved stream: n=%d k=%d", n, k)
	}
}

func TestInterleavedDecodeErrors(t *testing.T) {
	data := make([]int32, 50000)
	rng := rand.New(rand.NewSource(11))
	for i := range data {
		data[i] = int32(rng.Intn(256) - 128)
	}
	enc := EncodeInterleaved(data, 4)

	// Truncation at every byte boundary must error, never panic.
	for cut := 0; cut < len(enc); cut += 1 + len(enc)/97 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncated at %d/%d bytes: decode succeeded", cut, len(enc))
		}
	}

	// Bit flips anywhere — header, dictionary, lane lengths, payloads —
	// must never panic, and an accepted stream must keep the header's
	// symbol count. Symbol exactness under payload corruption is the
	// container checksum's job (a flip can swap equal-length codewords,
	// which no entropy layer can detect), same as the single-lane format.
	for off := 0; off < len(enc); off += 1 + len(enc)/211 {
		buf := append([]byte(nil), enc...)
		buf[off] ^= 0x10
		if dec, err := Decode(buf); err == nil && len(dec) != len(data) {
			t.Fatalf("bitflip at %d: accepted with wrong length %d", off, len(dec))
		}
	}

	// Directed header corruptions.
	tag, m := binary.Uvarint(enc)
	if tag != InterleavedTag {
		t.Fatalf("test stream is not interleaved")
	}
	rest := enc[m:]
	_, mn := binary.Uvarint(rest)
	nEnd := m + mn

	bad := binary.AppendUvarint(nil, InterleavedTag)
	bad = binary.AppendUvarint(bad, uint64(len(data)))
	bad = binary.AppendUvarint(bad, 3) // non-power-of-two lane count
	bad = append(bad, enc[nEnd+1:]...)
	if _, err := Decode(bad); err == nil {
		t.Fatalf("lane count 3 accepted")
	}

	bad = binary.AppendUvarint(nil, InterleavedTag)
	bad = binary.AppendUvarint(bad, maxN+1) // implausible n
	bad = append(bad, enc[nEnd:]...)
	if _, err := Decode(bad); err == nil {
		t.Fatalf("implausible n accepted")
	}

	if _, err := Decode(binary.AppendUvarint(nil, InterleavedTag)); err == nil {
		t.Fatalf("bare tag accepted")
	}
}

// TestInterleavedLaneBitsCrossCheck corrupts one lane's advertised bit
// length so every code still decodes but the lane does not consume exactly
// its payload; the consumed-bits check must catch it.
func TestInterleavedLaneBitsCrossCheck(t *testing.T) {
	data := make([]int32, 1<<14)
	for i := range data {
		data[i] = int32(i % 7)
	}
	enc := EncodeInterleaved(data, 4)

	// Walk the header to the first lane-length uvarint.
	buf := enc
	for i := 0; i < 3; i++ { // tag, n, lanes
		_, m := binary.Uvarint(buf)
		buf = buf[m:]
	}
	uk, m := binary.Uvarint(buf)
	buf = buf[m:]
	for i := 0; i < int(uk); i++ { // dictionary entries: symbol delta + length
		_, m = binary.Uvarint(buf)
		buf = buf[m:]
		_, m = binary.Uvarint(buf)
		buf = buf[m:]
	}
	laneOff := len(enc) - len(buf)

	ub, m := binary.Uvarint(enc[laneOff:])
	if m != len(binary.AppendUvarint(nil, ub-8)) {
		t.Skip("lane-length uvarint width changes; directed edit not applicable")
	}
	mut := append([]byte(nil), enc...)
	copy(mut[laneOff:], binary.AppendUvarint(nil, ub-8)) // shrink lane 0 by one byte's bits
	if _, err := Decode(mut); err == nil {
		t.Fatalf("shrunken lane 0 length accepted")
	}
}

func FuzzInterleavedRoundTrip(f *testing.F) {
	// Seed the corrupt-stream argument with the committed SZ backend
	// fixtures (their payloads embed real huffman sections) and with
	// interleaved encodings of small streams, so mutations explore the lane
	// header and lane payload structure from shipped bit patterns.
	for _, pat := range []string{
		filepath.Join("..", "sz3", "testdata", "*.sz3"),
		filepath.Join("..", "sz2", "testdata", "*.sz2"),
	} {
		paths, err := filepath.Glob(pat)
		if err != nil || len(paths) == 0 {
			f.Fatalf("no golden fixtures for %s: %v", pat, err)
		}
		for _, p := range paths {
			blob, err := os.ReadFile(p)
			if err != nil {
				f.Fatalf("read golden fixture: %v", err)
			}
			f.Add([]byte{}, uint8(4), uint8(1), blob)
		}
	}
	f.Add([]byte{}, uint8(0), uint8(0), []byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 3, 0, 0, 0}, uint8(2), uint8(2),
		EncodeInterleaved([]int32{6, 7, 6, 6, 7, 6, 8, 6}, 2))
	f.Add([]byte{9, 9, 9, 9}, uint8(8), uint8(3),
		EncodeInterleaved([]int32{-1, 1, -1, 1, -1, 1, -1, 1, 2, 2, 2, 2}, 4))
	f.Fuzz(func(t *testing.T, symRaw []byte, lanes, workers uint8, stream []byte) {
		data := make([]int32, len(symRaw)/4)
		for i := range data {
			data[i] = int32(uint32(symRaw[4*i]) | uint32(symRaw[4*i+1])<<8 |
				uint32(symRaw[4*i+2])<<16 | uint32(symRaw[4*i+3])<<24)
		}
		// Round trip at an arbitrary lane request (EncodeInterleaved
		// normalizes it) and worker count: must be symbol-exact.
		enc := EncodeInterleaved(data, int(lanes)-1) // covers -1 (auto) too
		dec, err := DecodeWorkers(enc, int(workers))
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if len(dec) != len(data) {
			t.Fatalf("length %d, want %d", len(dec), len(data))
		}
		for i := range data {
			if dec[i] != data[i] {
				t.Fatalf("symbol %d: got %d want %d", i, dec[i], data[i])
			}
		}
		// Corrupt-stream robustness: arbitrary bytes, truncations, and
		// mutations (which land in the lane header as often as in the
		// payloads) must error or decode cleanly — never panic, and never
		// return a slice that disagrees with the length they claim.
		if dec, err := Decode(stream); err == nil && cap(dec) != len(dec) {
			t.Fatalf("accepted stream returned overgrown slice")
		}
		if len(enc) > 0 {
			if _, err := Decode(enc[:len(enc)*3/4]); err != nil {
				_ = err
			}
			mut := append([]byte(nil), enc...)
			mut[int(workers)%len(mut)] ^= 0x5A
			if _, err := DecodeWorkers(mut, int(workers)); err != nil {
				_ = err
			}
		}
	})
}
