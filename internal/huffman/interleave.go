// Interleaved multi-lane entropy format. The encoder deals the symbol
// stream round-robin into N fixed-stride lanes (lane j holds symbols j,
// j+N, j+2N, …), encodes every lane against ONE shared canonical code
// table, and frames them as:
//
//	uvarint InterleavedTag     format discriminator (see below)
//	uvarint n                  total symbol count
//	uvarint lanes              power of two in [2, MaxLanes], ≤ n
//	dictionary                 identical serialization to the single-lane format
//	lanes × uvarint            per-lane payload length in bits
//	lane payloads              each byte-aligned, concatenated in lane order
//
// Each lane is a self-contained bitstream, so the decoder can drain them
// independently: interleaved at batch granularity on one goroutine (the N
// peek→table→skip dependency chains overlap in the pipeline, which is where
// the single-stream speedup comes from on one core) or one goroutine per
// lane for large streams. Both paths write symbols straight into their
// strided positions of the shared output slice — the lanes touch disjoint
// indices, so there is no reassembly copy and no synchronization beyond
// joining the workers.
package huffman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitio"
	"repro/internal/parallel"
)

// InterleavedTag is the wire discriminator for interleaved entropy streams,
// read as the first uvarint where the single-lane format stores its symbol
// count. Its value ("ILVE" with a bit above 2³³) exceeds the maxN
// plausibility bound, so a single-lane-only decoder rejects an interleaved
// stream with a header error instead of misparsing it. Re-exported by
// internal/codec as EntropyInterleavedTag for the wire-constant registry.
const InterleavedTag = 0x2494C5645

// MaxLanes bounds the wire lane count. Beyond ~64 lanes the per-lane
// uvarint headers and partial final bytes cost more than any machine's
// pipeline or core count can repay.
const MaxLanes = 64

// maxAutoLanes caps automatic lane selection well below MaxLanes: the
// measured ILP win flattens out by 8 lanes, and more lanes only dilute the
// per-lane batch locality.
const maxAutoLanes = 8

// autoLaneSymbols is the per-lane symbol mass automatic selection requires
// before adding another lane; below it the lane headers and scheduling
// overhead outweigh the overlap they buy.
const autoLaneSymbols = 1 << 15

// parallelMinSymbols is the stream size below which DecodeWorkers stays on
// the single-goroutine interleaved path even when workers allow more.
const parallelMinSymbols = 1 << 16

// AutoLanes picks a lane count for an n-symbol stream: the largest power of
// two ≤ maxAutoLanes that keeps at least autoLaneSymbols symbols per lane,
// so small streams stay single-lane and large ones get the full overlap.
func AutoLanes(n int) int {
	l := 1
	for l < maxAutoLanes && n >= 2*l*autoLaneSymbols {
		l *= 2
	}
	return l
}

// ValidLanes reports whether l is an acceptable lane request at the Options
// level: any negative value selects automatically, 0 and 1 keep the
// single-lane format, and an explicit count must be a power of two no
// larger than MaxLanes.
func ValidLanes(l int) bool {
	return l <= 1 || (l <= MaxLanes && l&(l-1) == 0)
}

// Lanes reports the lane count of an encoded stream: the wire lane count
// for an interleaved stream, 1 for the single-lane format or anything
// unparseable.
func Lanes(buf []byte) int {
	tag, m := binary.Uvarint(buf)
	if m <= 0 || tag != InterleavedTag {
		return 1
	}
	buf = buf[m:]
	if _, m = binary.Uvarint(buf); m <= 0 { // n
		return 1
	}
	buf = buf[m:]
	ul, m := binary.Uvarint(buf)
	if m <= 0 || ul < 2 || ul > MaxLanes {
		return 1
	}
	return int(ul)
}

// EncodeInterleaved compresses data into lanes interleaved bitstreams
// sharing one code table. lanes < 0 selects the count automatically from
// the stream size (AutoLanes); 0 or 1 produces the single-lane format
// byte-identically to Encode. An explicit count is normalized to a valid
// one (rounded down to a power of two, capped at MaxLanes) and reduced so
// no lane is empty; streams that end up with one lane fall back to Encode.
// Every output decodes with Decode/DecodeWorkers.
func EncodeInterleaved(data []int32, lanes int) []byte {
	if lanes < 0 {
		lanes = AutoLanes(len(data))
	}
	if lanes > MaxLanes {
		lanes = MaxLanes
	}
	for lanes&(lanes-1) != 0 { // round down to a power of two
		lanes &= lanes - 1
	}
	for lanes > 1 && lanes > len(data) {
		lanes /= 2
	}
	if lanes <= 1 {
		return Encode(data)
	}

	c := newCoder(data)
	laneBits := make([]int, lanes)
	j := 0
	for _, v := range data {
		laneBits[j] += c.bitLen(v)
		j++
		if j == lanes {
			j = 0
		}
	}

	var out []byte
	out = binary.AppendUvarint(out, InterleavedTag)
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = binary.AppendUvarint(out, uint64(lanes))
	out = c.appendDict(out)
	for _, b := range laneBits {
		out = binary.AppendUvarint(out, uint64(b))
	}
	// Each lane appends to the same backing buffer and is byte-aligned by
	// Finish, so the whole stream is built in one allocation.
	for j := 0; j < lanes; j++ {
		bw := bitio.NewWriterAppend(out)
		bw.Grow(laneBits[j])
		c.emit(bw, data, j, lanes)
		out = bw.Finish()
	}
	return out
}

// decodeInterleaved decodes the interleaved format. buf starts just past
// the InterleavedTag uvarint.
func decodeInterleaved(buf []byte, workers int) ([]int32, error) {
	un, m := binary.Uvarint(buf)
	if m <= 0 {
		return nil, errInterleavedHeader
	}
	buf = buf[m:]
	if un == 0 || un > maxN {
		return nil, fmt.Errorf("huffman: implausible interleaved n=%d", un)
	}
	ul, m := binary.Uvarint(buf)
	if m <= 0 {
		return nil, errInterleavedHeader
	}
	buf = buf[m:]
	if ul < 2 || ul > MaxLanes || ul&(ul-1) != 0 || ul > un {
		return nil, fmt.Errorf("huffman: invalid lane count %d for n=%d", ul, un)
	}
	n, lanes := int(un), int(ul)
	uk, m := binary.Uvarint(buf)
	if m <= 0 {
		return nil, errInterleavedHeader
	}
	buf = buf[m:]
	if uk == 0 || uk > un {
		return nil, fmt.Errorf("huffman: implausible dictionary size %d for n=%d", uk, un)
	}
	syms, lens, buf, err := parseDict(buf, int(uk))
	if err != nil {
		return nil, err
	}
	t, err := newDecodeTable(syms, lens, n)
	if err != nil {
		return nil, err
	}

	// Lane header: per-lane bit lengths. Any single lane's payload is a
	// subrange of the bytes still ahead, which bounds the uvarint before it
	// is narrowed; the byte-range slicing below is the exact check.
	laneBits := make([]int, lanes)
	for j := range laneBits {
		ub, m := binary.Uvarint(buf)
		if m <= 0 {
			return nil, errInterleavedHeader
		}
		if ub > uint64(len(buf))*8 {
			return nil, fmt.Errorf("huffman: lane %d length %d bits exceeds payload", j, ub)
		}
		buf = buf[m:]
		laneBits[j] = int(ub)
	}
	states := make([]laneState, lanes)
	off := 0
	for j, bits := range laneBits {
		// Every code is at least one bit, so a lane's bit length bounds its
		// symbol count; this also ties n to the actual payload size before
		// the output allocation below.
		if rem := (n - j + lanes - 1) / lanes; bits < rem {
			return nil, fmt.Errorf("huffman: lane %d: %d bits cannot hold %d symbols", j, bits, rem)
		}
		blen := (bits + 7) / 8
		if blen > len(buf)-off {
			return nil, fmt.Errorf("huffman: truncated lane %d payload: %w", j, bitio.ErrOutOfBits)
		}
		states[j] = laneState{
			r:    *bitio.NewReaderBits(buf[off:off+blen], bits),
			bits: bits,
			pos:  j,
			rem:  (n - j + lanes - 1) / lanes,
		}
		off += blen
	}

	out := make([]int32, n)
	if workers <= 0 {
		workers = parallel.Workers()
	}
	if workers > lanes {
		workers = lanes
	}
	if workers <= 1 || n < parallelMinSymbols {
		if err := t.decodeLanesSerial(states, out, lanes); err != nil {
			return nil, err
		}
	} else {
		if _, err := parallel.MapErrWorkers(lanes, workers, func(j int) (struct{}, error) {
			return struct{}{}, t.decodeStride(&states[j], out, lanes)
		}); err != nil {
			return nil, err
		}
	}
	// A well-formed lane consumes exactly its advertised bits. A mismatch
	// means the header and payload disagree — corruption the bit-exact
	// lane bound can catch even when every code decoded "successfully".
	for j := range states {
		if left := states[j].r.Remaining(); left != 0 {
			return nil, fmt.Errorf("huffman: lane %d consumed %d of %d bits", j, states[j].bits-left, states[j].bits)
		}
	}
	return out, nil
}

var errInterleavedHeader = errors.New("huffman: truncated interleaved header")

// laneState is one lane's decode cursor: a bit-bounded reader over its
// slice of the shared payload buffer, the lane's exact bit length, and
// where its next symbol lands in the shared output.
type laneState struct {
	r    bitio.Reader
	bits int // exact payload length in bits
	pos  int // next output index (advances by the lane stride)
	rem  int // symbols still to decode
}

// decodeLanesSerial drains all lanes on the calling goroutine: the unrolled
// fast functions interleave lanes in groups of four (or two) at batch
// granularity, so the independent peek→table→skip dependency chains overlap
// in the CPU pipeline — the single-core payoff of the interleaved format —
// and decodeStride finishes each lane's tail with exact guards.
func (t *decodeTable) decodeLanesSerial(states []laneState, out []int32, lanes int) error {
	switch lanes {
	case 2:
		t.fastLanes2s2(states, out)
	case 4:
		t.fastLanes4s4(states, out)
	case 8:
		t.fastLanes4s8(states[0:4], out)
		t.fastLanes4s8(states[4:8], out)
	default:
		for g := 0; g+4 <= lanes; g += 4 {
			t.fastLanes4(states[g:g+4], out, lanes)
		}
	}
	for j := range states {
		if err := t.decodeStride(&states[j], out, lanes); err != nil {
			return err
		}
	}
	return nil
}

// The lane loops below reuse the single-lane hot path's reader primitives
// (Peek/Skip inline; Skip's failure is the bounds check) but store each
// batch with maxBatch unconditional strided stores: the indices pos,
// pos+stride, …, pos+6·stride are all congruent mod the stride, i.e. they
// stay inside the lane's own output column, so the slots past a short
// batch hold the same lane's future positions and are overwritten by its
// later batches (or by the exact tail). With rem ≥ maxBatch the farthest
// slot is still inside the column, so no slack rows are needed. Long codes
// are resolved inline by decodeLong, keeping the lanes in step.

// fastLanes4 runs four lanes' batch decodes interleaved until one of them
// nears its end (or needs the error path), leaving the residue in states
// for decodeStride to finish.
func (t *decodeTable) fastLanes4(sts []laneState, out []int32, stride int) {
	entries, tb := t.entries, uint(t.tb)
	br0, br1, br2, br3 := &sts[0].r, &sts[1].r, &sts[2].r, &sts[3].r
	p0, p1, p2, p3 := sts[0].pos, sts[1].pos, sts[2].pos, sts[3].pos
	n0, n1, n2, n3 := sts[0].rem, sts[1].rem, sts[2].rem, sts[3].rem
	s := stride
	sh := uint(bits.TrailingZeros(uint(s)))
	s2, s3, s4, s5, s6 := 2*s, 3*s, 4*s, 5*s, 6*s
	for n0 >= maxBatch && n1 >= maxBatch && n2 >= maxBatch && n3 >= maxBatch {
		e0 := &entries[br0.Peek(tb)]
		if nb := int(e0.n); nb > 0 {
			if br0.Skip(uint(e0.total)) != nil {
				break
			}
			out[p0+s6] = e0.syms[6]
			out[p0] = e0.syms[0]
			out[p0+s] = e0.syms[1]
			out[p0+s2] = e0.syms[2]
			out[p0+s3] = e0.syms[3]
			out[p0+s4] = e0.syms[4]
			out[p0+s5] = e0.syms[5]
			p0 += nb << sh
			n0 -= nb
		} else if v, err := t.decodeLong(br0, p0); err == nil {
			out[p0] = v
			p0 += s
			n0--
		} else {
			break // decodeStride re-derives the error with context
		}
		e1 := &entries[br1.Peek(tb)]
		if nb := int(e1.n); nb > 0 {
			if br1.Skip(uint(e1.total)) != nil {
				break
			}
			out[p1+s6] = e1.syms[6]
			out[p1] = e1.syms[0]
			out[p1+s] = e1.syms[1]
			out[p1+s2] = e1.syms[2]
			out[p1+s3] = e1.syms[3]
			out[p1+s4] = e1.syms[4]
			out[p1+s5] = e1.syms[5]
			p1 += nb << sh
			n1 -= nb
		} else if v, err := t.decodeLong(br1, p1); err == nil {
			out[p1] = v
			p1 += s
			n1--
		} else {
			break // decodeStride re-derives the error with context
		}
		e2 := &entries[br2.Peek(tb)]
		if nb := int(e2.n); nb > 0 {
			if br2.Skip(uint(e2.total)) != nil {
				break
			}
			out[p2+s6] = e2.syms[6]
			out[p2] = e2.syms[0]
			out[p2+s] = e2.syms[1]
			out[p2+s2] = e2.syms[2]
			out[p2+s3] = e2.syms[3]
			out[p2+s4] = e2.syms[4]
			out[p2+s5] = e2.syms[5]
			p2 += nb << sh
			n2 -= nb
		} else if v, err := t.decodeLong(br2, p2); err == nil {
			out[p2] = v
			p2 += s
			n2--
		} else {
			break // decodeStride re-derives the error with context
		}
		e3 := &entries[br3.Peek(tb)]
		if nb := int(e3.n); nb > 0 {
			if br3.Skip(uint(e3.total)) != nil {
				break
			}
			out[p3+s6] = e3.syms[6]
			out[p3] = e3.syms[0]
			out[p3+s] = e3.syms[1]
			out[p3+s2] = e3.syms[2]
			out[p3+s3] = e3.syms[3]
			out[p3+s4] = e3.syms[4]
			out[p3+s5] = e3.syms[5]
			p3 += nb << sh
			n3 -= nb
		} else if v, err := t.decodeLong(br3, p3); err == nil {
			out[p3] = v
			p3 += s
			n3--
		} else {
			break // decodeStride re-derives the error with context
		}
	}
	sts[0].pos, sts[1].pos, sts[2].pos, sts[3].pos = p0, p1, p2, p3
	sts[0].rem, sts[1].rem, sts[2].rem, sts[3].rem = n0, n1, n2, n3
}

// decodeStride drains the rest of one lane: rem symbols into out[pos],
// out[pos+stride], …. It is decodeAll with strided stores — the same batch
// fast path, per-symbol exact fallback near the lane's bit bound, and
// inline long-code resolution — and is also the whole per-goroutine body
// when lanes decode in parallel. Different lanes' strided stores touch
// disjoint indices.
func (t *decodeTable) decodeStride(st *laneState, out []int32, stride int) error {
	entries, tb := t.entries, uint(t.tb)
	br := &st.r
	pos, rem := st.pos, st.rem
	s := stride
	sh := uint(bits.TrailingZeros(uint(s)))
	s2, s3, s4, s5, s6 := 2*s, 3*s, 4*s, 5*s, 6*s
	for rem > 0 {
		e := &entries[br.Peek(tb)]
		if nb := int(e.n); nb > 0 {
			if rem >= maxBatch {
				if br.Skip(uint(e.total)) == nil {
					out[pos+s6] = e.syms[6]
					out[pos] = e.syms[0]
					out[pos+s] = e.syms[1]
					out[pos+s2] = e.syms[2]
					out[pos+s3] = e.syms[3]
					out[pos+s4] = e.syms[4]
					out[pos+s5] = e.syms[5]
					pos += nb << sh
					rem -= nb
					continue
				}
			}
			// Lane tail or truncated payload: take exactly one symbol with
			// a precise per-symbol bounds check.
			if err := br.Skip(uint(e.first)); err != nil {
				return fmt.Errorf("huffman: truncated lane at symbol %d: %w", pos, err)
			}
			out[pos] = e.syms[0]
			pos += s
			rem--
			continue
		}
		v, err := t.decodeLong(br, pos)
		if err != nil {
			return err
		}
		out[pos] = v
		pos += s
		rem--
	}
	st.pos, st.rem = pos, rem
	return nil
}

// fastLanes4s4 is fastLanes4 specialized to stride 4: the constant store
// offsets let the compiler fold the addressing and discharge the batch's
// bounds checks against the farthest store.
func (t *decodeTable) fastLanes4s4(sts []laneState, out []int32) {
	entries, tb := t.entries, uint(t.tb)
	br0, br1, br2, br3 := &sts[0].r, &sts[1].r, &sts[2].r, &sts[3].r
	p0, p1, p2, p3 := sts[0].pos, sts[1].pos, sts[2].pos, sts[3].pos
	n0, n1, n2, n3 := sts[0].rem, sts[1].rem, sts[2].rem, sts[3].rem
	for n0 >= maxBatch && n1 >= maxBatch && n2 >= maxBatch && n3 >= maxBatch {
		e0 := &entries[br0.Peek(tb)]
		if nb := int(e0.n); nb > 0 {
			if br0.Skip(uint(e0.total)) != nil {
				break
			}
			out[p0+24] = e0.syms[6]
			out[p0] = e0.syms[0]
			out[p0+4] = e0.syms[1]
			out[p0+8] = e0.syms[2]
			out[p0+12] = e0.syms[3]
			out[p0+16] = e0.syms[4]
			out[p0+20] = e0.syms[5]
			p0 += nb * 4
			n0 -= nb
		} else if v, err := t.decodeLong(br0, p0); err == nil {
			out[p0] = v
			p0 += 4
			n0--
		} else {
			break // decodeStride re-derives the error with context
		}
		e1 := &entries[br1.Peek(tb)]
		if nb := int(e1.n); nb > 0 {
			if br1.Skip(uint(e1.total)) != nil {
				break
			}
			out[p1+24] = e1.syms[6]
			out[p1] = e1.syms[0]
			out[p1+4] = e1.syms[1]
			out[p1+8] = e1.syms[2]
			out[p1+12] = e1.syms[3]
			out[p1+16] = e1.syms[4]
			out[p1+20] = e1.syms[5]
			p1 += nb * 4
			n1 -= nb
		} else if v, err := t.decodeLong(br1, p1); err == nil {
			out[p1] = v
			p1 += 4
			n1--
		} else {
			break // decodeStride re-derives the error with context
		}
		e2 := &entries[br2.Peek(tb)]
		if nb := int(e2.n); nb > 0 {
			if br2.Skip(uint(e2.total)) != nil {
				break
			}
			out[p2+24] = e2.syms[6]
			out[p2] = e2.syms[0]
			out[p2+4] = e2.syms[1]
			out[p2+8] = e2.syms[2]
			out[p2+12] = e2.syms[3]
			out[p2+16] = e2.syms[4]
			out[p2+20] = e2.syms[5]
			p2 += nb * 4
			n2 -= nb
		} else if v, err := t.decodeLong(br2, p2); err == nil {
			out[p2] = v
			p2 += 4
			n2--
		} else {
			break // decodeStride re-derives the error with context
		}
		e3 := &entries[br3.Peek(tb)]
		if nb := int(e3.n); nb > 0 {
			if br3.Skip(uint(e3.total)) != nil {
				break
			}
			out[p3+24] = e3.syms[6]
			out[p3] = e3.syms[0]
			out[p3+4] = e3.syms[1]
			out[p3+8] = e3.syms[2]
			out[p3+12] = e3.syms[3]
			out[p3+16] = e3.syms[4]
			out[p3+20] = e3.syms[5]
			p3 += nb * 4
			n3 -= nb
		} else if v, err := t.decodeLong(br3, p3); err == nil {
			out[p3] = v
			p3 += 4
			n3--
		} else {
			break // decodeStride re-derives the error with context
		}
	}
	sts[0].pos, sts[1].pos, sts[2].pos, sts[3].pos = p0, p1, p2, p3
	sts[0].rem, sts[1].rem, sts[2].rem, sts[3].rem = n0, n1, n2, n3
}

// fastLanes4s8 is fastLanes4 specialized to stride 8: the constant store
// offsets let the compiler fold the addressing and discharge the batch's
// bounds checks against the farthest store.
func (t *decodeTable) fastLanes4s8(sts []laneState, out []int32) {
	entries, tb := t.entries, uint(t.tb)
	br0, br1, br2, br3 := &sts[0].r, &sts[1].r, &sts[2].r, &sts[3].r
	p0, p1, p2, p3 := sts[0].pos, sts[1].pos, sts[2].pos, sts[3].pos
	n0, n1, n2, n3 := sts[0].rem, sts[1].rem, sts[2].rem, sts[3].rem
	for n0 >= maxBatch && n1 >= maxBatch && n2 >= maxBatch && n3 >= maxBatch {
		e0 := &entries[br0.Peek(tb)]
		if nb := int(e0.n); nb > 0 {
			if br0.Skip(uint(e0.total)) != nil {
				break
			}
			out[p0+48] = e0.syms[6]
			out[p0] = e0.syms[0]
			out[p0+8] = e0.syms[1]
			out[p0+16] = e0.syms[2]
			out[p0+24] = e0.syms[3]
			out[p0+32] = e0.syms[4]
			out[p0+40] = e0.syms[5]
			p0 += nb * 8
			n0 -= nb
		} else if v, err := t.decodeLong(br0, p0); err == nil {
			out[p0] = v
			p0 += 8
			n0--
		} else {
			break // decodeStride re-derives the error with context
		}
		e1 := &entries[br1.Peek(tb)]
		if nb := int(e1.n); nb > 0 {
			if br1.Skip(uint(e1.total)) != nil {
				break
			}
			out[p1+48] = e1.syms[6]
			out[p1] = e1.syms[0]
			out[p1+8] = e1.syms[1]
			out[p1+16] = e1.syms[2]
			out[p1+24] = e1.syms[3]
			out[p1+32] = e1.syms[4]
			out[p1+40] = e1.syms[5]
			p1 += nb * 8
			n1 -= nb
		} else if v, err := t.decodeLong(br1, p1); err == nil {
			out[p1] = v
			p1 += 8
			n1--
		} else {
			break // decodeStride re-derives the error with context
		}
		e2 := &entries[br2.Peek(tb)]
		if nb := int(e2.n); nb > 0 {
			if br2.Skip(uint(e2.total)) != nil {
				break
			}
			out[p2+48] = e2.syms[6]
			out[p2] = e2.syms[0]
			out[p2+8] = e2.syms[1]
			out[p2+16] = e2.syms[2]
			out[p2+24] = e2.syms[3]
			out[p2+32] = e2.syms[4]
			out[p2+40] = e2.syms[5]
			p2 += nb * 8
			n2 -= nb
		} else if v, err := t.decodeLong(br2, p2); err == nil {
			out[p2] = v
			p2 += 8
			n2--
		} else {
			break // decodeStride re-derives the error with context
		}
		e3 := &entries[br3.Peek(tb)]
		if nb := int(e3.n); nb > 0 {
			if br3.Skip(uint(e3.total)) != nil {
				break
			}
			out[p3+48] = e3.syms[6]
			out[p3] = e3.syms[0]
			out[p3+8] = e3.syms[1]
			out[p3+16] = e3.syms[2]
			out[p3+24] = e3.syms[3]
			out[p3+32] = e3.syms[4]
			out[p3+40] = e3.syms[5]
			p3 += nb * 8
			n3 -= nb
		} else if v, err := t.decodeLong(br3, p3); err == nil {
			out[p3] = v
			p3 += 8
			n3--
		} else {
			break // decodeStride re-derives the error with context
		}
	}
	sts[0].pos, sts[1].pos, sts[2].pos, sts[3].pos = p0, p1, p2, p3
	sts[0].rem, sts[1].rem, sts[2].rem, sts[3].rem = n0, n1, n2, n3
}

// fastLanes2s2 is the stride-2 specialization for two-lane streams.
func (t *decodeTable) fastLanes2s2(sts []laneState, out []int32) {
	entries, tb := t.entries, uint(t.tb)
	br0, br1 := &sts[0].r, &sts[1].r
	p0, p1 := sts[0].pos, sts[1].pos
	n0, n1 := sts[0].rem, sts[1].rem
	for n0 >= maxBatch && n1 >= maxBatch {
		e0 := &entries[br0.Peek(tb)]
		if nb := int(e0.n); nb > 0 {
			if br0.Skip(uint(e0.total)) != nil {
				break
			}
			out[p0+12] = e0.syms[6]
			out[p0] = e0.syms[0]
			out[p0+2] = e0.syms[1]
			out[p0+4] = e0.syms[2]
			out[p0+6] = e0.syms[3]
			out[p0+8] = e0.syms[4]
			out[p0+10] = e0.syms[5]
			p0 += nb * 2
			n0 -= nb
		} else if v, err := t.decodeLong(br0, p0); err == nil {
			out[p0] = v
			p0 += 2
			n0--
		} else {
			break // decodeStride re-derives the error with context
		}
		e1 := &entries[br1.Peek(tb)]
		if nb := int(e1.n); nb > 0 {
			if br1.Skip(uint(e1.total)) != nil {
				break
			}
			out[p1+12] = e1.syms[6]
			out[p1] = e1.syms[0]
			out[p1+2] = e1.syms[1]
			out[p1+4] = e1.syms[2]
			out[p1+6] = e1.syms[3]
			out[p1+8] = e1.syms[4]
			out[p1+10] = e1.syms[5]
			p1 += nb * 2
			n1 -= nb
		} else if v, err := t.decodeLong(br1, p1); err == nil {
			out[p1] = v
			p1 += 2
			n1--
		} else {
			break // decodeStride re-derives the error with context
		}
	}
	sts[0].pos, sts[1].pos = p0, p1
	sts[0].rem, sts[1].rem = n0, n1
}
