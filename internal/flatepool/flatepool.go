// Package flatepool wraps the DEFLATE wrapper stage shared by the sz2, sz3,
// and zfp stand-ins behind a sync.Pool of flate writers. A flate.Writer
// carries tens of kilobytes of matcher state; the container pipeline
// compresses one stream per level/box, so reusing writers across streams
// (and across the worker pool's goroutines) removes the dominant per-stream
// allocation. flate.Writer.Reset is documented to make the writer equivalent
// to a fresh NewWriter, so pooled output is byte-identical to unpooled.
package flatepool

import (
	"bytes"
	"compress/flate"
	"sync"
)

var pool = sync.Pool{New: func() any {
	w, err := flate.NewWriter(nil, flate.BestSpeed)
	if err != nil {
		// flate.BestSpeed is a valid level; NewWriter cannot fail on it.
		panic(err)
	}
	return w
}}

// Deflate compresses payload at flate.BestSpeed using a pooled writer.
func Deflate(payload []byte) ([]byte, error) {
	var out bytes.Buffer
	out.Grow(len(payload)/4 + 64)
	fw := pool.Get().(*flate.Writer)
	fw.Reset(&out)
	if _, err := fw.Write(payload); err != nil {
		pool.Put(fw)
		return nil, err
	}
	if err := fw.Close(); err != nil {
		pool.Put(fw)
		return nil, err
	}
	pool.Put(fw)
	return out.Bytes(), nil
}
