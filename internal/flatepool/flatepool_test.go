package flatepool

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// freshDeflate is the reference: a brand-new writer per call.
func freshDeflate(t *testing.T, payload []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestByteIdenticalToFreshWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 100, 65536, 1 << 18} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(rng.Intn(7)) // compressible
		}
		// Repeat so later calls exercise pooled (previously used) writers.
		for trial := 0; trial < 3; trial++ {
			got, err := Deflate(payload)
			if err != nil {
				t.Fatal(err)
			}
			if want := freshDeflate(t, payload); !bytes.Equal(got, want) {
				t.Fatalf("n=%d trial %d: pooled output differs from fresh writer", n, trial)
			}
			fr := flate.NewReader(bytes.NewReader(got))
			round, err := io.ReadAll(fr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(round, payload) {
				t.Fatalf("n=%d: round trip mismatch", n)
			}
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	payload := bytes.Repeat([]byte("abcabcabd"), 4096)
	want, err := Deflate(payload)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := Deflate(payload)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("concurrent deflate diverged (err=%v)", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
