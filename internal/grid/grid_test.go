package grid

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/synth"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(32, 32, 32, 7, 1); err == nil {
		t.Fatal("non-power-of-two blockB accepted")
	}
	if _, err := New(32, 32, 32, 4, 1); err == nil {
		t.Fatal("blockB=4 accepted (must be >4)")
	}
	if _, err := New(30, 32, 32, 8, 1); err == nil {
		t.Fatal("non-multiple dims accepted")
	}
	if _, err := New(32, 32, 32, 8, 4); err == nil {
		t.Fatal("too-deep hierarchy accepted (8>>3 < 2)")
	}
	h, err := New(32, 32, 32, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 2 || h.Levels[1].Scale != 2 {
		t.Fatalf("hierarchy misbuilt: %+v", h)
	}
}

func TestFromUniformOwnsEverything(t *testing.T) {
	f := synth.Generate(synth.S3D, 16, 1)
	h, err := FromUniform(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := h.Density(0); d != 1 {
		t.Fatalf("density = %v, want 1", d)
	}
	if !h.Flatten().Equal(f) {
		t.Fatal("flatten of uniform hierarchy must be exact")
	}
}

func TestSetBlockFromFineAndValidate(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 2)
	h, err := New(32, 32, 32, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	nbx, nby, nbz := h.NumBlocks()
	if nbx != 4 || nby != 4 || nbz != 4 {
		t.Fatalf("block grid %dx%dx%d", nbx, nby, nbz)
	}
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				level := (bx + by + bz) % 2
				h.SetBlockFromFine(level, bx, by, bz, f)
			}
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if d0 := h.Density(0); math.Abs(d0-0.5) > 0.01 {
		t.Fatalf("level 0 density %v, want ~0.5", d0)
	}
	// Fine-owned block data must match the source exactly.
	b := h.BlockField(0, 0, 0, 0)
	want := f.SubBlock(0, 0, 0, 8, 8, 8)
	if !b.Equal(want) {
		t.Fatal("fine block data mismatch")
	}
}

func TestPayloadAccounting(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 3)
	h, err := BuildAMR(f, 8, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	// 64 blocks: 16 fine at 512 samples, 48 coarse at 64 samples.
	want := 16*512 + 48*64
	if got := h.PayloadSamples(); got != want {
		t.Fatalf("payload = %d, want %d", got, want)
	}
	if h.PayloadBytes() != want*8 {
		t.Fatal("PayloadBytes inconsistent")
	}
}

func TestBuildAMRRefinesHighRange(t *testing.T) {
	// Nyx halos concentrate range; the finest level should capture blocks
	// with higher mean range than the coarse level.
	f := synth.Generate(synth.Nyx, 32, 4)
	h, err := BuildAMR(f, 8, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	rangeOf := func(level int) float64 {
		sum, n := 0.0, 0
		for _, bc := range h.OwnedBlocks(level) {
			b := f.SubBlock(bc[0]*8, bc[1]*8, bc[2]*8, 8, 8, 8)
			sum += b.ValueRange()
			n++
		}
		return sum / float64(n)
	}
	if rangeOf(0) <= rangeOf(1) {
		t.Fatalf("fine blocks should have higher range: %g vs %g", rangeOf(0), rangeOf(1))
	}
}

func TestBuildAMRFractionValidation(t *testing.T) {
	f := field.New(16, 16, 16)
	if _, err := BuildAMR(f, 8, []float64{0.5, 0.2}); err == nil {
		t.Fatal("fractions not summing to 1 accepted")
	}
	if _, err := BuildAMR(f, 8, []float64{-0.5, 1.5}); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestFlattenReconstructionQuality(t *testing.T) {
	// Flattening an AMR hierarchy built from smooth data should be close to
	// the original: exact on fine blocks, interpolated on coarse ones.
	f := synth.Generate(synth.RT, 32, 5)
	h, err := BuildAMR(f, 8, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g := h.Flatten()
	// Fine blocks exact.
	for _, bc := range h.OwnedBlocks(0) {
		a := f.SubBlock(bc[0]*8, bc[1]*8, bc[2]*8, 8, 8, 8)
		b := g.SubBlock(bc[0]*8, bc[1]*8, bc[2]*8, 8, 8, 8)
		if !a.Equal(b) {
			t.Fatal("fine block not preserved exactly in Flatten")
		}
	}
	// Global error bounded: RT range is ~2, coarse interpolation of smooth
	// regions should stay well under that.
	if d := f.MaxAbsDiff(g); d > f.ValueRange() {
		t.Fatalf("flatten error %g too large", d)
	}
}

func TestOwnedBlocksDeterministicOrder(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 6)
	h, err := BuildAMR(f, 8, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	a := h.OwnedBlocks(0)
	b := h.OwnedBlocks(0)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("inconsistent owned blocks")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("OwnedBlocks order not deterministic")
		}
	}
	// Raster order: flat indices strictly increasing.
	prev := -1
	for _, bc := range a {
		idx := h.BlockIndex(bc[0], bc[1], bc[2])
		if idx <= prev {
			t.Fatal("OwnedBlocks not in raster order")
		}
		prev = idx
	}
}

func TestCloneIndependence(t *testing.T) {
	f := synth.Generate(synth.Nyx, 16, 7)
	h, err := BuildAMR(f, 8, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clone()
	c.Levels[0].Data.Data[0] = 1e30
	c.Levels[0].Owned[0] = !c.Levels[0].Owned[0]
	if h.Levels[0].Data.Data[0] == 1e30 {
		t.Fatal("Clone shares level data")
	}
	if h.Levels[0].Owned[0] == c.Levels[0].Owned[0] {
		t.Fatal("Clone shares ownership")
	}
}

func TestUnitBlockSize(t *testing.T) {
	h, err := New(64, 64, 64, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for l, want := range []int{16, 8, 4} {
		if got := h.UnitBlockSize(l); got != want {
			t.Fatalf("UnitBlockSize(%d) = %d, want %d", l, got, want)
		}
	}
}
