// Package grid models multi-resolution (AMR-style) data: a hierarchy of
// resolution levels, each owning a disjoint subset of the domain's blocks.
//
// The domain is partitioned into cubic blocks of B fine cells per edge
// (B = 2ⁿ, n > 2, per §III of the paper). Every block is owned by exactly
// one level: level 0 stores it at full resolution (B³ samples), level l at
// 2ˡ×-reduced resolution ((B/2ˡ)³ samples). This uniform representation
// covers both AMR simulation output and "adaptive" data derived from uniform
// grids by ROI extraction (package roi).
package grid

import (
	"fmt"
	"sort"

	"repro/internal/field"
)

// Hierarchy is a multi-resolution dataset over a fine-resolution domain.
type Hierarchy struct {
	// Nx, Ny, Nz are the fine (level-0) domain dimensions. They must be
	// multiples of BlockB.
	Nx, Ny, Nz int
	// BlockB is the block edge in fine cells (a power of two > 4).
	BlockB int
	// Levels holds per-level data, index 0 = finest. Every block of the
	// domain is owned by exactly one level.
	Levels []*Level
}

// Level is one resolution level of a hierarchy.
type Level struct {
	// Index is the level number (0 = finest).
	Index int
	// Scale is the coarsening factor 2^Index.
	Scale int
	// Data is a full-domain array at this level's resolution
	// (Nx/Scale × Ny/Scale × Nz/Scale); only samples inside owned blocks
	// are meaningful.
	Data *field.Field
	// Owned marks, per domain block (flat index bx + nbx*(by + nby*bz)),
	// whether this level owns that block.
	Owned []bool
}

// NumBlocks returns the block-grid dimensions.
func (h *Hierarchy) NumBlocks() (nbx, nby, nbz int) {
	return h.Nx / h.BlockB, h.Ny / h.BlockB, h.Nz / h.BlockB
}

// BlockIndex returns the flat block index for block coordinates.
func (h *Hierarchy) BlockIndex(bx, by, bz int) int {
	nbx, nby, _ := h.NumBlocks()
	return bx + nbx*(by+nby*bz)
}

// UnitBlockSize returns the per-level unit block edge in that level's own
// cells: BlockB / 2^level.
func (h *Hierarchy) UnitBlockSize(level int) int {
	return h.BlockB / h.Levels[level].Scale
}

// New creates a hierarchy skeleton with the given number of levels; all
// ownership is false and level data is zeroed. Dimensions must be multiples
// of blockB, blockB must be a power of two > 4, and blockB/2^(levels−1) must
// be ≥ 2 so the coarsest unit block is non-trivial.
func New(nx, ny, nz, blockB, levels int) (*Hierarchy, error) {
	if blockB < 8 || blockB&(blockB-1) != 0 {
		return nil, fmt.Errorf("grid: blockB must be a power of two > 4, got %d", blockB)
	}
	if nx%blockB != 0 || ny%blockB != 0 || nz%blockB != 0 {
		return nil, fmt.Errorf("grid: dims %dx%dx%d not multiples of blockB %d", nx, ny, nz, blockB)
	}
	if levels < 1 {
		return nil, fmt.Errorf("grid: need at least one level")
	}
	if blockB>>(levels-1) < 2 {
		return nil, fmt.Errorf("grid: %d levels too deep for blockB %d", levels, blockB)
	}
	h := &Hierarchy{Nx: nx, Ny: ny, Nz: nz, BlockB: blockB}
	nbx, nby, nbz := nx/blockB, ny/blockB, nz/blockB
	nBlocks := nbx * nby * nbz
	for l := 0; l < levels; l++ {
		scale := 1 << l
		h.Levels = append(h.Levels, &Level{
			Index: l,
			Scale: scale,
			Data:  field.New(nx/scale, ny/scale, nz/scale),
			Owned: make([]bool, nBlocks),
		})
	}
	return h, nil
}

// FromUniform wraps a uniform field as a single-level hierarchy owning every
// block.
func FromUniform(f *field.Field, blockB int) (*Hierarchy, error) {
	h, err := New(f.Nx, f.Ny, f.Nz, blockB, 1)
	if err != nil {
		return nil, err
	}
	copy(h.Levels[0].Data.Data, f.Data)
	for i := range h.Levels[0].Owned {
		h.Levels[0].Owned[i] = true
	}
	return h, nil
}

// Validate checks the structural invariants: every block owned by exactly
// one level, consistent shapes.
func (h *Hierarchy) Validate() error {
	nbx, nby, nbz := h.NumBlocks()
	nBlocks := nbx * nby * nbz
	owners := make([]int, nBlocks)
	for li, lv := range h.Levels {
		if lv.Scale != 1<<li {
			return fmt.Errorf("grid: level %d has scale %d", li, lv.Scale)
		}
		if len(lv.Owned) != nBlocks {
			return fmt.Errorf("grid: level %d ownership length %d != %d", li, len(lv.Owned), nBlocks)
		}
		wantX, wantY, wantZ := h.Nx/lv.Scale, h.Ny/lv.Scale, h.Nz/lv.Scale
		if lv.Data.Nx != wantX || lv.Data.Ny != wantY || lv.Data.Nz != wantZ {
			return fmt.Errorf("grid: level %d data shape %v, want %dx%dx%d", li, lv.Data, wantX, wantY, wantZ)
		}
		for b, owned := range lv.Owned {
			if owned {
				owners[b]++
			}
		}
	}
	for b, c := range owners {
		if c != 1 {
			return fmt.Errorf("grid: block %d owned by %d levels", b, c)
		}
	}
	return nil
}

// Density returns the fraction of domain blocks owned by the given level —
// the "density" column of the paper's Table III.
func (h *Hierarchy) Density(level int) float64 {
	owned := 0
	for _, o := range h.Levels[level].Owned {
		if o {
			owned++
		}
	}
	return float64(owned) / float64(len(h.Levels[level].Owned))
}

// PayloadSamples returns the number of stored samples across all levels
// (what actually needs compressing / storing).
func (h *Hierarchy) PayloadSamples() int {
	total := 0
	for l, lv := range h.Levels {
		u := h.UnitBlockSize(l)
		perBlock := u * u * u
		for _, o := range lv.Owned {
			if o {
				total += perBlock
			}
		}
	}
	return total
}

// PayloadBytes returns PayloadSamples×8, the raw multi-resolution data size.
func (h *Hierarchy) PayloadBytes() int { return h.PayloadSamples() * 8 }

// SetBlockFromFine assigns ownership of block (bx,by,bz) to the given level
// and fills the level's samples for that block by mean-downsampling the
// corresponding region of the fine field. Any previous owner is cleared.
func (h *Hierarchy) SetBlockFromFine(level, bx, by, bz int, fine *field.Field) {
	bi := h.BlockIndex(bx, by, bz)
	for _, lv := range h.Levels {
		lv.Owned[bi] = false
	}
	lv := h.Levels[level]
	lv.Owned[bi] = true
	b := fine.SubBlock(bx*h.BlockB, by*h.BlockB, bz*h.BlockB, h.BlockB, h.BlockB, h.BlockB)
	for s := 1; s < lv.Scale; s <<= 1 {
		b = b.Downsample2()
	}
	u := h.UnitBlockSize(level)
	lv.Data.SetBlock(bx*u, by*u, bz*u, b)
}

// BlockField extracts the unit block (bx,by,bz) of the given level as a
// standalone field of edge UnitBlockSize(level).
func (h *Hierarchy) BlockField(level, bx, by, bz int) *field.Field {
	u := h.UnitBlockSize(level)
	return h.Levels[level].Data.SubBlock(bx*u, by*u, bz*u, u, u, u)
}

// Flatten reconstructs a full fine-resolution field: owned fine blocks are
// copied, coarser blocks are trilinearly upsampled — the reconstruction used
// for visualization and post-analysis of multi-resolution data.
func (h *Hierarchy) Flatten() *field.Field {
	out := field.New(h.Nx, h.Ny, h.Nz)
	nbx, nby, nbz := h.NumBlocks()
	for l, lv := range h.Levels {
		u := h.UnitBlockSize(l)
		for bz := 0; bz < nbz; bz++ {
			for by := 0; by < nby; by++ {
				for bx := 0; bx < nbx; bx++ {
					if !lv.Owned[h.BlockIndex(bx, by, bz)] {
						continue
					}
					b := lv.Data.SubBlock(bx*u, by*u, bz*u, u, u, u)
					for b.Nx < h.BlockB {
						b = b.Upsample2(b.Nx*2, b.Ny*2, b.Nz*2)
					}
					out.SetBlock(bx*h.BlockB, by*h.BlockB, bz*h.BlockB, b)
				}
			}
		}
	}
	return out
}

// OwnedBlocks returns the block coordinates owned by a level, in
// deterministic raster order (z, then y, then x).
func (h *Hierarchy) OwnedBlocks(level int) [][3]int {
	nbx, nby, nbz := h.NumBlocks()
	lv := h.Levels[level]
	var out [][3]int
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				if lv.Owned[h.BlockIndex(bx, by, bz)] {
					out = append(out, [3]int{bx, by, bz})
				}
			}
		}
	}
	return out
}

// Clone deep-copies the hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{Nx: h.Nx, Ny: h.Ny, Nz: h.Nz, BlockB: h.BlockB}
	for _, lv := range h.Levels {
		nl := &Level{Index: lv.Index, Scale: lv.Scale, Data: lv.Data.Clone(), Owned: make([]bool, len(lv.Owned))}
		copy(nl.Owned, lv.Owned)
		c.Levels = append(c.Levels, nl)
	}
	return c
}

// BuildAMR constructs a hierarchy from a fine uniform field by the paper's
// range-threshold refinement criterion: blocks are ranked by value range and
// split across levels by the given fractions (fracs[l] = fraction of blocks
// owned by level l; fractions must sum to ~1). The highest-range blocks go
// to the finest level, mimicking how AMR refines regions of interest.
func BuildAMR(fine *field.Field, blockB int, fracs []float64) (*Hierarchy, error) {
	h, err := New(fine.Nx, fine.Ny, fine.Nz, blockB, len(fracs))
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for _, f := range fracs {
		if f < 0 {
			return nil, fmt.Errorf("grid: negative fraction %g", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("grid: fractions sum to %g, want 1", sum)
	}
	nbx, nby, nbz := h.NumBlocks()
	type scored struct {
		bx, by, bz int
		rng        float64
	}
	blocks := make([]scored, 0, nbx*nby*nbz)
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				b := fine.SubBlock(bx*blockB, by*blockB, bz*blockB, blockB, blockB, blockB)
				blocks = append(blocks, scored{bx, by, bz, b.ValueRange()})
			}
		}
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].rng != blocks[j].rng {
			return blocks[i].rng > blocks[j].rng
		}
		// Deterministic tie-break by position.
		a, b := blocks[i], blocks[j]
		if a.bz != b.bz {
			return a.bz < b.bz
		}
		if a.by != b.by {
			return a.by < b.by
		}
		return a.bx < b.bx
	})
	// Assign the top fracs[0] to level 0, next fracs[1] to level 1, …
	total := len(blocks)
	start := 0
	for l := range fracs {
		count := int(fracs[l]*float64(total) + 0.5)
		if l == len(fracs)-1 {
			count = total - start
		}
		if start+count > total {
			count = total - start
		}
		for i := start; i < start+count; i++ {
			h.SetBlockFromFine(l, blocks[i].bx, blocks[i].by, blocks[i].bz, fine)
		}
		start += count
	}
	return h, nil
}
