package index

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// seedGoldenContainers adds every committed golden container to the corpus:
// each carries a real footer (v3 linear, v3 TAC, v4 mixed-codec), so the
// fuzzer starts from valid bytes of every index shape we ship instead of
// having to rediscover the grammar.
func seedGoldenContainers(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "core", "testdata", "*.mrw"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no golden containers found: %v", err)
	}
	for _, p := range paths {
		blob, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read golden container: %v", err)
		}
		f.Add(blob)
	}
}

// FuzzContainerIndex hammers the footer parser with mutated trailers and
// sections — truncated footers, overflowing uvarints, offsets past EOF —
// in the spirit of the header-scan hardening: the parser must reject or
// accept, never panic, never allocate absurdly, and anything it accepts
// must re-serialize into a parseable footer.
func FuzzContainerIndex(f *testing.F) {
	seedGoldenContainers(f)
	ix, body := sampleIndex()
	f.Add(ix.AppendFooter(append([]byte(nil), body...)))
	// A single-level merged container.
	small := &Index{
		Opts: Opts{Compressor: 0, Arrangement: 0},
		Nx:   16, Ny: 16, Nz: 16, BlockB: 8,
		Levels: []Level{{Blocks: [][3]int{{0, 0, 0}}, Streams: []int{0}}},
		Streams: []Stream{
			{Level: 0, Box: -1, Offset: 10, Len: 20, RawLen: 8 * 8 * 8 * 8},
		},
	}
	f.Add(small.AppendFooter(make([]byte, 40)))
	// The same shapes with version-2 footers: per-stream checksums present.
	ixCRC, bodyCRC := sampleIndex()
	ixCRC.StreamCRCs = true
	for i := range ixCRC.Streams {
		ixCRC.Streams[i].CRC = uint32(0xdead0000 + i)
	}
	f.Add(ixCRC.AppendFooter(append([]byte(nil), bodyCRC...)))
	smallCRC := *small
	smallCRC.StreamCRCs = true
	smallCRC.Streams = append([]Stream(nil), small.Streams...)
	smallCRC.Streams[0].CRC = 0xfeedbeef
	f.Add(smallCRC.AppendFooter(make([]byte, 40)))
	// A v2 footer chopped mid-checksum: the parser must reject, not read
	// past the section.
	v2full := ixCRC.AppendFooter(append([]byte(nil), bodyCRC...))
	f.Add(v2full[:len(v2full)-TrailerLen-2])
	// A truncated footer and raw garbage.
	full := ix.AppendFooter(append([]byte(nil), body...))
	f.Add(full[:len(full)-7])
	f.Add([]byte("MRIX\x01garbage"))
	f.Add([]byte("MRIX\x02garbage"))
	// An overflowing section-length field.
	over := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(over[len(over)-12:], ^uint64(0))
	f.Add(over)

	f.Fuzz(func(t *testing.T, blob []byte) {
		got, err := ReadFrom(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			return
		}
		// Whatever parses must survive a write→read round trip.
		re := got.AppendFooter(nil)
		body, ok := Locate(re)
		if !ok || body != 0 {
			t.Fatalf("re-serialized index not locatable (body=%d ok=%v)", body, ok)
		}
		back, err := Parse(re[:len(re)-TrailerLen], 0)
		if err != nil {
			t.Fatalf("re-serialized index does not parse: %v", err)
		}
		// The round trip must preserve the checksum story bit for bit: a
		// v2 footer stays v2 with the same per-stream CRCs, a v1 footer
		// must not grow checksums out of thin air.
		if back.StreamCRCs != got.StreamCRCs {
			t.Fatalf("StreamCRCs flipped across round trip: %v -> %v", got.StreamCRCs, back.StreamCRCs)
		}
		for i := range got.Streams {
			if back.Streams[i].CRC != got.Streams[i].CRC {
				t.Fatalf("stream %d CRC changed across round trip", i)
			}
		}
		// Locate must agree with ReadFrom on in-memory blobs.
		if _, ok := Locate(blob); !ok {
			t.Fatal("ReadFrom accepted a footer Locate rejects")
		}
	})
}
