package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/layout"
)

// sampleIndex builds a representative two-level index over a fake body of
// the given length: level 0 a TAC level with two boxes, level 1 a merged
// padded level.
func sampleIndex() (*Index, []byte) {
	body := bytes.Repeat([]byte{0xAB}, 600)
	ix := &Index{
		Opts: Opts{
			Compressor: 0, Arrangement: 2, Pad: true, PadKind: 1, AdaptiveEB: true,
			SZ2Block: 260, Interp: 1, EB: 1e-3, Alpha: 2.25, Beta: 8,
		},
		Nx: 32, Ny: 32, Nz: 64, BlockB: 16,
	}
	ix.Streams = []Stream{
		{Level: 0, Box: 0, Geom: layout.Box{X0: 0, Y0: 0, Z0: 0, WX: 2, WY: 1, WZ: 1}, Compressor: 0, Offset: 100, Len: 150, RawLen: 2 * 16 * 16 * 16 * 8},
		{Level: 0, Box: 1, Geom: layout.Box{X0: 0, Y0: 1, Z0: 2, WX: 1, WY: 1, WZ: 2}, Compressor: 0, Offset: 250, Len: 100, RawLen: 2 * 16 * 16 * 16 * 8},
		{Level: 1, Box: -1, Compressor: 0, Offset: 380, Len: 200, RawLen: 9 * 9 * 40 * 8},
	}
	ix.Levels = []Level{
		{Blocks: [][3]int{{0, 0, 0}, {1, 0, 0}, {0, 1, 2}, {0, 1, 3}}, Streams: []int{0, 1}},
		{Blocks: [][3]int{{1, 1, 1}, {0, 0, 3}}, Padded: true, Streams: []int{2}},
	}
	return ix, body
}

func TestFooterRoundTrip(t *testing.T) {
	ix, body := sampleIndex()
	blob := ix.AppendFooter(append([]byte(nil), body...))
	if !bytes.Equal(blob[:len(body)], body) {
		t.Fatal("AppendFooter modified the body")
	}

	bodyLen, ok := Locate(blob)
	if !ok || bodyLen != len(body) {
		t.Fatalf("Locate = (%d, %v), want (%d, true)", bodyLen, ok, len(body))
	}

	got, err := ReadFrom(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if got.SectionCRC == 0 {
		t.Fatal("ReadFrom left SectionCRC unset")
	}
	got.SectionCRC = 0 // the in-memory original was never serialized
	if !reflect.DeepEqual(got, ix) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ix)
	}
}

func TestLevelAccessors(t *testing.T) {
	ix, _ := sampleIndex()
	if n := ix.NumLevels(); n != 2 {
		t.Fatalf("NumLevels = %d", n)
	}
	if nx, ny, nz := ix.LevelDims(1); nx != 16 || ny != 16 || nz != 32 {
		t.Fatalf("LevelDims(1) = %dx%dx%d", nx, ny, nz)
	}
	if u := ix.UnitBlockSize(1); u != 8 {
		t.Fatalf("UnitBlockSize(1) = %d", u)
	}
	if b := ix.CompressedBytes(0); b != 250 {
		t.Fatalf("CompressedBytes(0) = %d", b)
	}
}

func TestNoFooter(t *testing.T) {
	for _, blob := range [][]byte{nil, []byte("short"), bytes.Repeat([]byte{7}, 100)} {
		if _, ok := Locate(blob); ok {
			t.Fatalf("Locate accepted %d unindexed bytes", len(blob))
		}
		_, err := ReadFrom(bytes.NewReader(blob), int64(len(blob)))
		if !errors.Is(err, ErrNoIndex) {
			t.Fatalf("ReadFrom(%d unindexed bytes) = %v, want ErrNoIndex", len(blob), err)
		}
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	ix, body := sampleIndex()
	blob := ix.AppendFooter(append([]byte(nil), body...))

	// A flipped bit anywhere in the section fails the CRC.
	mut := append([]byte(nil), blob...)
	mut[len(body)+3] ^= 0x40
	if _, ok := Locate(mut); ok {
		t.Fatal("Locate accepted a CRC-corrupt footer")
	}
	if _, err := ReadFrom(bytes.NewReader(mut), int64(len(mut))); err == nil {
		t.Fatal("ReadFrom accepted a CRC-corrupt footer")
	}

	// A truncated footer is indistinguishable from no footer.
	for _, cut := range []int{1, TrailerLen - 1, TrailerLen, TrailerLen + 5} {
		trunc := blob[:len(blob)-cut]
		if _, err := ReadFrom(bytes.NewReader(trunc), int64(len(trunc))); err == nil {
			t.Fatalf("ReadFrom accepted footer truncated by %d bytes", cut)
		}
	}

	// A section-length field pointing past the start of the container.
	huge := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(huge[len(huge)-12:], 1<<40)
	if _, err := ReadFrom(bytes.NewReader(huge), int64(len(huge))); err == nil {
		t.Fatal("ReadFrom accepted an oversized section length")
	}
}

func TestParseRejectsStreamPastEOF(t *testing.T) {
	ix, body := sampleIndex()
	ix.Streams[2].Len = 1 << 30 // stream claims to extend far past the body
	blob := ix.AppendFooter(append([]byte(nil), body...))
	if _, err := ReadFrom(bytes.NewReader(blob), int64(len(blob))); err == nil {
		t.Fatal("stream extending past EOF accepted")
	}
}

func TestParseRejectsImplausibleHeaders(t *testing.T) {
	_, body := sampleIndex()
	cases := []struct {
		name string
		mut  func(*Index)
	}{
		{"zero dim", func(ix *Index) { ix.Nx = 0 }},
		{"non-power-of-two block", func(ix *Index) { ix.BlockB = 12 }},
		{"dim not multiple of block", func(ix *Index) { ix.Nx = 40 }},
		{"block index out of range", func(ix *Index) { ix.Levels[0].Blocks[0] = [3]int{5, 5, 5} }},
		{"box out of domain", func(ix *Index) { ix.Streams[0].Geom.WX = 9 }},
	}
	for _, tc := range cases {
		m, _ := sampleIndex()
		tc.mut(m)
		blob := m.AppendFooter(append([]byte(nil), body...))
		if _, err := ReadFrom(bytes.NewReader(blob), int64(len(blob))); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
