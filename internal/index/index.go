// Package index defines the self-describing block index appended as a
// footer to version-3 workflow containers. The index names every backend
// stream in the container — its level, TAC box id and geometry, backend
// compressor, absolute byte offset, compressed length, and decoded (raw)
// length — plus an echo of the container header and each level's block list,
// so a consumer holding only the footer can seek directly to any stream and
// reconstruct any level without scanning the body.
//
// The footer is strictly additive: the container body preceding it is
// byte-identical to a version-2 body, and decoders that do not know about
// the index simply never read past the last stream. A container whose
// footer is lost or corrupt therefore degrades to sequential access instead
// of becoming unreadable (package reader falls back to a full scan).
//
// # Wire format
//
// The index section is written immediately after the last stream:
//
//	"MRIX"                      leading magic (sanity check)
//	u8      index format version (1 = original, 2 = per-stream CRCs)
//	u8 ×5   compressor, arrangement, pad, padKind, adaptiveEB
//	uvarint SZ2 block size
//	u8      interpolant
//	f64 ×3  EB, Alpha, Beta (little endian)
//	uvarint nx, ny, nz, blockB, nLevels
//	per level:
//	  uvarint block count, then varint deltas of flat block indices
//	  u8      padded flag
//	  uvarint stream count
//	  per stream:
//	    varint      box id (-1 for a merged-level stream)
//	    uvarint ×6  box geometry (X0 Y0 Z0 WX WY WZ; only when box id >= 0)
//	    u8          compressor
//	    uvarint     absolute offset of the compressed stream
//	    uvarint     compressed length
//	    uvarint     raw (decoded) length in bytes
//	    u32le       CRC-32 (IEEE) of the compressed stream bytes
//	                (footer version 2 only)
//
// followed by a fixed 16-byte trailer that terminates the container:
//
//	u32le  CRC-32 (IEEE) of the index section
//	u64le  index section length in bytes
//	"MRIX" trailing magic
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/layout"
)

// Magic brackets the index section: it opens the section and closes the
// 16-byte trailer at the very end of the container.
const Magic = "MRIX"

// TrailerLen is the size of the fixed trailer terminating an indexed
// container: CRC-32 + section length + closing magic.
const TrailerLen = 4 + 8 + 4

// Index footer wire-format versions. Version 2 appends a CRC-32 of each
// compressed stream's bytes to its index entry, so every random-access read
// can verify payload integrity before decoding; stream bodies are
// byte-identical across versions, and version-1 footers stay readable with
// verification reported unavailable (Index.StreamCRCs false).
const (
	// footerVersionV1 is the original footer: no per-stream checksums.
	footerVersionV1 = 1
	// footerVersionStreamCRC adds a u32le CRC-32 (IEEE) per stream entry.
	footerVersionStreamCRC = 2
)

// Sanity bounds for the header echo; generous for any real dataset but
// tight enough that a corrupt uvarint cannot drive huge allocations.
const (
	maxDim       = 1 << 24 // per-axis domain size
	maxBlockB    = 1 << 24
	maxLevels    = 64
	maxSZ2Block  = 1 << 30 // matches core's maxSZ2BlockSize
	maxStreamLen = int64(1) << 56
)

// ErrNoIndex reports that the container carries no index footer (a v1/v2
// container, or a v3 container whose footer was truncated away).
var ErrNoIndex = errors.New("index: container has no index footer")

// Opts echoes the container header fields the reader needs to decode
// streams, as raw wire values (package core converts them to its Options).
type Opts struct {
	Compressor  byte
	Arrangement byte
	Pad         bool
	PadKind     byte
	AdaptiveEB  bool
	SZ2Block    int
	Interp      byte
	EB          float64
	Alpha       float64
	Beta        float64
}

// Stream locates one compressed backend stream inside the container.
type Stream struct {
	// Level is the resolution level the stream belongs to (0 = finest).
	Level int
	// Box is the TAC box id within the level, or -1 for a merged-level
	// stream.
	Box int
	// Geom is the box geometry in block coordinates (TAC streams only).
	Geom layout.Box
	// Compressor is the backend that produced the stream.
	Compressor byte
	// Offset is the absolute byte offset of the stream in the container.
	Offset int64
	// Len is the compressed length in bytes.
	Len int64
	// RawLen is the decoded payload size in bytes (before unpadding).
	RawLen int64
	// CRC is the CRC-32 (IEEE) of the compressed stream bytes. Meaningful
	// only when the index carries checksums (Index.StreamCRCs).
	CRC uint32
}

// Level is one level's reconstruction metadata.
type Level struct {
	// Blocks lists the level's unit blocks in merge order.
	Blocks [][3]int
	// Padded records whether the merged stream carries pad layers.
	Padded bool
	// Streams indexes into Index.Streams, in this level's stream order.
	Streams []int
}

// Index is the parsed (or to-be-written) container index.
type Index struct {
	Opts               Opts
	Nx, Ny, Nz, BlockB int
	Levels             []Level
	Streams            []Stream
	// StreamCRCs reports whether every Stream carries a payload CRC
	// (footer version 2). Writers set it to emit the checked footer;
	// readers use it to decide whether integrity verification is available.
	StreamCRCs bool
	// SectionCRC is the CRC-32 of the serialized index section, as recorded
	// in the container trailer — a cheap strong identifier for the whole
	// container version (the section covers every stream's offset, length,
	// and payload CRC). ReadFrom fills it from the trailer; for an index
	// built by a sequential scan it is computed over the synthesized
	// section. Zero only on an Index never serialized or parsed.
	SectionCRC uint32
}

// NumLevels returns the level count.
func (ix *Index) NumLevels() int { return len(ix.Levels) }

// LevelDims returns the full-domain dimensions of a level's data array.
func (ix *Index) LevelDims(level int) (nx, ny, nz int) {
	s := 1 << level
	return ix.Nx / s, ix.Ny / s, ix.Nz / s
}

// UnitBlockSize returns the unit block edge at a level, in that level's own
// cells.
func (ix *Index) UnitBlockSize(level int) int { return ix.BlockB >> level }

// CompressedBytes sums the compressed stream lengths of one level.
func (ix *Index) CompressedBytes(level int) int64 {
	var n int64
	for _, si := range ix.Levels[level].Streams {
		n += ix.Streams[si].Len
	}
	return n
}

// appendSection serializes the index section (without the trailer).
func (ix *Index) appendSection(dst []byte) []byte {
	dst = append(dst, Magic...)
	ver := byte(footerVersionV1)
	if ix.StreamCRCs {
		ver = footerVersionStreamCRC
	}
	dst = append(dst, ver)
	o := ix.Opts
	dst = append(dst, o.Compressor, o.Arrangement, boolByte(o.Pad), o.PadKind, boolByte(o.AdaptiveEB))
	dst = binary.AppendUvarint(dst, uint64(o.SZ2Block))
	dst = append(dst, o.Interp)
	for _, f := range []float64{o.EB, o.Alpha, o.Beta} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	for _, v := range []int{ix.Nx, ix.Ny, ix.Nz, ix.BlockB, len(ix.Levels)} {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	nbx, nby := ix.Nx/ix.BlockB, ix.Ny/ix.BlockB
	for _, lv := range ix.Levels {
		dst = binary.AppendUvarint(dst, uint64(len(lv.Blocks)))
		prev := int64(0)
		for _, bc := range lv.Blocks {
			flat := int64(bc[0] + nbx*(bc[1]+nby*bc[2]))
			dst = binary.AppendVarint(dst, flat-prev)
			prev = flat
		}
		dst = append(dst, boolByte(lv.Padded))
		dst = binary.AppendUvarint(dst, uint64(len(lv.Streams)))
		for _, si := range lv.Streams {
			s := ix.Streams[si]
			dst = binary.AppendVarint(dst, int64(s.Box))
			if s.Box >= 0 {
				for _, v := range []int{s.Geom.X0, s.Geom.Y0, s.Geom.Z0, s.Geom.WX, s.Geom.WY, s.Geom.WZ} {
					dst = binary.AppendUvarint(dst, uint64(v))
				}
			}
			dst = append(dst, s.Compressor)
			dst = binary.AppendUvarint(dst, uint64(s.Offset))
			dst = binary.AppendUvarint(dst, uint64(s.Len))
			dst = binary.AppendUvarint(dst, uint64(s.RawLen))
			if ix.StreamCRCs {
				dst = binary.LittleEndian.AppendUint32(dst, s.CRC)
			}
		}
	}
	return dst
}

// AppendFooter appends the serialized index section plus trailer to a
// container body and returns the extended slice.
func (ix *Index) AppendFooter(blob []byte) []byte {
	start := len(blob)
	blob = ix.appendSection(blob)
	section := blob[start:]
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:], crc32.ChecksumIEEE(section))
	binary.LittleEndian.PutUint64(tr[4:], uint64(len(section)))
	copy(tr[12:], Magic)
	return append(blob, tr[:]...)
}

// Locate checks a fully in-memory container for an index trailer and, if
// present and self-consistent, returns the body length (the offset where
// the index section begins). ok is false when the container carries no
// (intact) footer.
func Locate(blob []byte) (bodyLen int, ok bool) {
	if len(blob) < TrailerLen {
		return 0, false
	}
	tr := blob[len(blob)-TrailerLen:]
	if string(tr[12:16]) != Magic {
		return 0, false
	}
	sectionLen := binary.LittleEndian.Uint64(tr[4:12])
	if sectionLen > uint64(len(blob)-TrailerLen) {
		return 0, false
	}
	body := len(blob) - TrailerLen - int(sectionLen)
	section := blob[body : len(blob)-TrailerLen]
	if crc32.ChecksumIEEE(section) != binary.LittleEndian.Uint32(tr[0:4]) {
		return 0, false
	}
	return body, true
}

// ReadFrom reads and parses the index footer of a container accessed
// through r with the given total size. It reads only the trailer and the
// index section — never the stream payloads. Containers without a footer
// return ErrNoIndex.
func ReadFrom(r io.ReaderAt, size int64) (*Index, error) {
	if size < TrailerLen {
		return nil, ErrNoIndex
	}
	var tr [TrailerLen]byte
	if _, err := r.ReadAt(tr[:], size-TrailerLen); err != nil {
		return nil, fmt.Errorf("index: reading trailer: %w", err)
	}
	if string(tr[12:16]) != Magic {
		return nil, ErrNoIndex
	}
	sectionLen := binary.LittleEndian.Uint64(tr[4:12])
	if sectionLen > uint64(size-TrailerLen) || sectionLen > 1<<31 {
		return nil, errors.New("index: implausible section length")
	}
	section := make([]byte, sectionLen)
	if _, err := r.ReadAt(section, size-TrailerLen-int64(sectionLen)); err != nil {
		return nil, fmt.Errorf("index: reading section: %w", err)
	}
	if crc32.ChecksumIEEE(section) != binary.LittleEndian.Uint32(tr[0:4]) {
		return nil, errors.New("index: section CRC mismatch")
	}
	ix, err := Parse(section, size)
	if err != nil {
		return nil, err
	}
	ix.SectionCRC = binary.LittleEndian.Uint32(tr[0:4])
	return ix, nil
}

// Parse decodes an index section. containerSize, when > 0, bounds stream
// extents: every stream must lie fully inside the container body.
func Parse(section []byte, containerSize int64) (*Index, error) {
	buf := section
	fail := func(what string) error { return fmt.Errorf("index: truncated or corrupt section (%s)", what) }
	if len(buf) < len(Magic)+1 || string(buf[:len(Magic)]) != Magic {
		return nil, fail("magic")
	}
	buf = buf[len(Magic):]
	if buf[0] != footerVersionV1 && buf[0] != footerVersionStreamCRC {
		return nil, fmt.Errorf("index: unsupported index version %d", buf[0])
	}
	streamCRCs := buf[0] == footerVersionStreamCRC
	buf = buf[1:]
	readU := func() (uint64, bool) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, false
		}
		buf = buf[n:]
		return v, true
	}
	readV := func() (int64, bool) {
		v, n := binary.Varint(buf)
		if n <= 0 {
			return 0, false
		}
		buf = buf[n:]
		return v, true
	}
	if len(buf) < 5 {
		return nil, fail("options")
	}
	ix := &Index{StreamCRCs: streamCRCs}
	ix.Opts.Compressor = buf[0]
	ix.Opts.Arrangement = buf[1]
	ix.Opts.Pad = buf[2] != 0
	ix.Opts.PadKind = buf[3]
	ix.Opts.AdaptiveEB = buf[4] != 0
	buf = buf[5:]
	bs, ok := readU()
	if !ok || bs > maxSZ2Block {
		return nil, fail("sz2 block size")
	}
	ix.Opts.SZ2Block = int(bs)
	if len(buf) < 1+3*8 {
		return nil, fail("interp/floats")
	}
	ix.Opts.Interp = buf[0]
	buf = buf[1:]
	for _, p := range []*float64{&ix.Opts.EB, &ix.Opts.Alpha, &ix.Opts.Beta} {
		*p = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	dims := make([]uint64, 5)
	for i := range dims {
		v, ok := readU()
		if !ok {
			return nil, fail("dims")
		}
		dims[i] = v
	}
	if dims[0] == 0 || dims[1] == 0 || dims[2] == 0 ||
		dims[0] > maxDim || dims[1] > maxDim || dims[2] > maxDim {
		return nil, fail("domain dims")
	}
	if dims[3] < 8 || dims[3] > maxBlockB || dims[3]&(dims[3]-1) != 0 {
		return nil, fail("block size")
	}
	if dims[4] == 0 || dims[4] > maxLevels {
		return nil, fail("level count")
	}
	ix.Nx, ix.Ny, ix.Nz = int(dims[0]), int(dims[1]), int(dims[2])
	ix.BlockB = int(dims[3])
	nLevels := int(dims[4])
	if ix.Nx%ix.BlockB != 0 || ix.Ny%ix.BlockB != 0 || ix.Nz%ix.BlockB != 0 {
		return nil, fail("dims not multiples of block size")
	}
	if ix.BlockB>>(nLevels-1) < 2 {
		return nil, fail("levels too deep for block size")
	}
	nbx, nby, nbz := ix.Nx/ix.BlockB, ix.Ny/ix.BlockB, ix.Nz/ix.BlockB
	nBlocksTotal := nbx * nby * nbz

	for li := 0; li < nLevels; li++ {
		var lv Level
		nBlocks64, ok := readU()
		if !ok || nBlocks64 > uint64(nBlocksTotal) {
			return nil, fail("block count")
		}
		lv.Blocks = make([][3]int, int(nBlocks64))
		prev := int64(0)
		for i := range lv.Blocks {
			d, ok := readV()
			if !ok {
				return nil, fail("block delta")
			}
			prev += d
			flat := int(prev)
			if flat < 0 || flat >= nBlocksTotal {
				return nil, fail("block index out of range")
			}
			lv.Blocks[i] = [3]int{flat % nbx, (flat / nbx) % nby, flat / (nbx * nby)}
		}
		if len(buf) < 1 {
			return nil, fail("padded flag")
		}
		lv.Padded = buf[0] != 0
		buf = buf[1:]
		nStreams64, ok := readU()
		if !ok || nStreams64 > uint64(nBlocksTotal) {
			return nil, fail("stream count")
		}
		for si := 0; si < int(nStreams64); si++ {
			s := Stream{Level: li}
			box64, ok := readV()
			if !ok || box64 < -1 || box64 != int64(si) && box64 != -1 {
				return nil, fail("stream box id")
			}
			s.Box = int(box64)
			if s.Box < 0 && nStreams64 > 1 {
				return nil, fail("merged level with multiple streams")
			}
			if s.Box >= 0 {
				var g [6]int
				for i := range g {
					v, ok := readU()
					if !ok || v > maxDim {
						return nil, fail("box geometry")
					}
					g[i] = int(v)
				}
				s.Geom = layout.Box{X0: g[0], Y0: g[1], Z0: g[2], WX: g[3], WY: g[4], WZ: g[5]}
				if s.Geom.WX < 1 || s.Geom.WY < 1 || s.Geom.WZ < 1 ||
					s.Geom.X0+s.Geom.WX > nbx || s.Geom.Y0+s.Geom.WY > nby || s.Geom.Z0+s.Geom.WZ > nbz {
					return nil, fail("box out of domain")
				}
			}
			if len(buf) < 1 {
				return nil, fail("stream compressor")
			}
			s.Compressor = buf[0]
			buf = buf[1:]
			vals := make([]uint64, 3)
			for i := range vals {
				v, ok := readU()
				if !ok {
					return nil, fail("stream extent")
				}
				vals[i] = v
			}
			if vals[0] > uint64(maxStreamLen) || vals[1] > uint64(maxStreamLen) || vals[2] > uint64(maxStreamLen) {
				return nil, fail("stream extent overflow")
			}
			s.Offset, s.Len, s.RawLen = int64(vals[0]), int64(vals[1]), int64(vals[2])
			if containerSize > 0 && s.Offset+s.Len > containerSize {
				return nil, fail("stream past end of container")
			}
			if streamCRCs {
				if len(buf) < 4 {
					return nil, fail("stream crc")
				}
				s.CRC = binary.LittleEndian.Uint32(buf)
				buf = buf[4:]
			}
			lv.Streams = append(lv.Streams, len(ix.Streams))
			ix.Streams = append(ix.Streams, s)
		}
		ix.Levels = append(ix.Levels, lv)
	}
	if len(buf) != 0 {
		return nil, fail("trailing bytes")
	}
	return ix, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
