package faultio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassUnknown},
		{base, ClassUnknown},
		{Transient(base), ClassTransient},
		{Corrupt(base), ClassCorrupt},
		{Permanent(base), ClassPermanent},
		{fmt.Errorf("wrapped: %w", Corrupt(base)), ClassCorrupt},
		{fmt.Errorf("ctx: %w", fmt.Errorf("mid: %w", Transient(base))), ClassTransient},
		{io.ErrUnexpectedEOF, ClassCorrupt},
		{fmt.Errorf("short: %w", io.ErrUnexpectedEOF), ClassCorrupt},
		{Corruptf("crc mismatch at %d", 7), ClassCorrupt},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// Classification survives errors.Is on the wrapped error.
	if !errors.Is(Transient(ErrInjectedTransient), ErrInjectedTransient) {
		t.Error("Transient wrapper hides the underlying error from errors.Is")
	}
	// Marking nil stays nil.
	if Transient(nil) != nil || Corrupt(nil) != nil || Permanent(nil) != nil {
		t.Error("marking a nil error must return nil")
	}
}

func TestRetryOnlyRetriesTransient(t *testing.T) {
	calls := 0
	err := Retry(RetryPolicy{MaxAttempts: 5}, func() error {
		calls++
		return Corrupt(errors.New("bad bytes"))
	})
	if calls != 1 {
		t.Fatalf("corrupt error retried %d times", calls-1)
	}
	if !IsCorrupt(err) {
		t.Fatalf("error lost its class: %v", err)
	}

	calls = 0
	err = Retry(RetryPolicy{MaxAttempts: 5}, func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("blip"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient retry: err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	retried := 0
	p := RetryPolicy{
		MaxAttempts: 4,
		Backoff:     time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		OnRetry:     func(error) { retried++ },
	}
	calls := 0
	err := Retry(p, func() error { calls++; return Transient(errors.New("always")) })
	if calls != 4 || retried != 3 {
		t.Fatalf("calls=%d retried=%d, want 4/3", calls, retried)
	}
	if !IsTransient(err) {
		t.Fatalf("final error lost its class: %v", err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (doubling)", i, slept[i], want[i])
		}
	}
}

func TestRetryReaderAtAbsorbsTransients(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	inner := NewFaultReaderAt(bytes.NewReader(data), FaultPlan{
		Seed: 1, TransientProb: 0.5, MaxFaults: 8,
	})
	retries := 0
	r := NewRetryReaderAt(inner, RetryPolicy{MaxAttempts: 5, OnRetry: func(error) { retries++ }})
	for off := 0; off < len(data); off += 7 {
		buf := make([]byte, 7)
		n, err := r.ReadAt(buf, int64(off))
		end := off + 7
		if end > len(data) {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("tail read: err=%v", err)
			}
			end = len(data)
		} else if err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(buf[:n], data[off:end]) {
			t.Fatalf("ReadAt(%d) = %q, want %q", off, buf[:n], data[off:end])
		}
	}
	if inner.Faults() == 0 {
		t.Fatal("fault injector injected nothing; test proves nothing")
	}
	if retries == 0 {
		t.Fatal("no retries observed despite injected transients")
	}
}

func TestRetryReaderAtRetriesShortReads(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	inner := NewFaultReaderAt(bytes.NewReader(data), FaultPlan{
		Seed: 3, ShortReadProb: 0.6, MaxFaults: 3,
	})
	r := NewRetryReaderAt(inner, RetryPolicy{MaxAttempts: 5})
	buf := make([]byte, 64)
	if _, err := r.ReadAt(buf, 10); err != nil {
		t.Fatalf("short reads not absorbed: %v", err)
	}
	if !bytes.Equal(buf, data[10:74]) {
		t.Fatal("retried read returned wrong bytes")
	}
}

func TestRetryReaderAtSurfacesTruncation(t *testing.T) {
	data := make([]byte, 128)
	inner := NewFaultReaderAt(bytes.NewReader(data), FaultPlan{Seed: 1, TruncateAt: 64})
	r := NewRetryReaderAt(inner, RetryPolicy{MaxAttempts: 3})
	buf := make([]byte, 32)
	// Fully before the truncation point: clean.
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("read before truncation: %v", err)
	}
	// Straddling it: a persistent unexpected EOF, classified corrupt.
	_, err := r.ReadAt(buf, 48)
	if !errors.Is(err, io.ErrUnexpectedEOF) || !IsCorrupt(err) {
		t.Fatalf("straddling read: err=%v class=%v, want corrupt unexpected EOF", err, Classify(err))
	}
	// Entirely past it: EOF.
	if _, err := r.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
		t.Fatalf("read past truncation: %v, want EOF", err)
	}
}

func TestFaultReaderAtDeterminism(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	run := func() ([]byte, int) {
		f := NewFaultReaderAt(bytes.NewReader(data), FaultPlan{
			Seed: 42, BitFlipProb: 0.3, TransientProb: 0.1, ShortReadProb: 0.1,
		})
		var out []byte
		for off := 0; off < len(data); off += 64 {
			buf := make([]byte, 64)
			n, _ := f.ReadAt(buf, int64(off))
			out = append(out, buf[:n]...)
		}
		return out, f.Faults()
	}
	a, fa := run()
	b, fb := run()
	if fa != fb || !bytes.Equal(a, b) {
		t.Fatalf("same seed, different faults: %d vs %d injected", fa, fb)
	}
	if fa == 0 {
		t.Fatal("plan injected nothing")
	}
}

func TestFaultReaderAtBitFlipsCorrupt(t *testing.T) {
	data := make([]byte, 1024)
	f := NewFaultReaderAt(bytes.NewReader(data), FaultPlan{Seed: 9, BitFlipProb: 1})
	buf := make([]byte, 1024)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, data) {
		t.Fatal("BitFlipProb=1 returned clean bytes")
	}
}

func TestFailingWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &FailingWriter{W: &buf, FailAfter: 10}
	if n, err := w.Write([]byte("01234")); n != 5 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// Straddles the limit: partial write plus a transient-classified error.
	n, err := w.Write([]byte("0123456789"))
	if n != 5 || err == nil {
		t.Fatalf("straddling write: n=%d err=%v", n, err)
	}
	if !IsTransient(err) {
		t.Fatalf("injected write error not transient: %v", err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write past the limit succeeded")
	}
	if buf.Len() != 10 {
		t.Fatalf("%d bytes reached the destination, want 10", buf.Len())
	}
}
