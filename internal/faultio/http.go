package faultio

// HTTP and network fault classification for remote storage backends
// (internal/store's range-request origin): the mapping that makes the
// existing retry/backoff and quarantine layers behave correctly over the
// network. Timeouts, connection resets, and 5xx answers are Transient (the
// next attempt, or the next replica, may succeed); 404 and 416 are
// Permanent (the object — or the byte range the index promised — does not
// exist at the origin; retrying the same request cannot help).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"syscall"
)

// ClassifyHTTPStatus maps an HTTP response status to a fault class:
//
//   - 5xx, 408 (request timeout), and 429 (over capacity) are Transient —
//     origin-side trouble a retry or another replica can outlast;
//   - 404/410 (the object is gone) and 416 (the requested byte range does
//     not exist — a truncated or replaced object) are Permanent;
//   - other 4xx are Permanent (the request itself is wrong);
//   - 2xx/3xx are not faults (ClassUnknown).
func ClassifyHTTPStatus(status int) Class {
	switch {
	case status == http.StatusRequestTimeout, status == http.StatusTooManyRequests, status >= 500:
		return ClassTransient
	case status == http.StatusNotFound, status == http.StatusGone,
		status == http.StatusRequestedRangeNotSatisfiable:
		return ClassPermanent
	case status >= 400:
		return ClassPermanent
	default:
		return ClassUnknown
	}
}

// HTTPStatusError wraps an unexpected HTTP status as a classified error via
// ClassifyHTTPStatus (2xx/3xx statuses are still wrapped, as Permanent:
// the caller said the status was unexpected).
func HTTPStatusError(status int, url string) error {
	err := fmt.Errorf("faultio: http %d (%s) for %s", status, http.StatusText(status), url)
	class := ClassifyHTTPStatus(status)
	if class == ClassUnknown {
		class = ClassPermanent
	}
	return mark(class, err)
}

// ClassifyNetError maps a transport-level error (a failed http.Client
// round trip) to a fault class: timeouts, refused/reset/aborted
// connections, and unexpected EOFs mid-response are Transient — the remote
// end or the path flaked, and the positioned read is idempotent. A
// canceled or deadline-exceeded context is Permanent: the request is dead,
// retrying cannot help it. Everything else is ClassUnknown.
func ClassifyNetError(err error) Class {
	if err == nil {
		return ClassUnknown
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassPermanent
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTransient
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EPIPE) {
		return ClassTransient
	}
	return ClassUnknown
}

// NetError wraps a transport-level error with its ClassifyNetError class
// (unknown transport failures become Transient: for idempotent positioned
// reads, retrying an unidentified network hiccup is the safe default).
func NetError(err error) error {
	if err == nil {
		return nil
	}
	class := ClassifyNetError(err)
	if class == ClassUnknown {
		class = ClassTransient
	}
	return mark(class, err)
}
