// Package faultio is the corruption-resilience substrate shared by the
// container reader, the sequential decoder, and the mrserve serving path:
//
//   - a typed error-classification layer that splits I/O and decode failures
//     into Transient (worth retrying: a flaky read, an interrupted syscall),
//     Corrupt (the bytes are wrong: a checksum mismatch, a garbled stream),
//     and Permanent (retrying cannot help: bad parameters, missing files);
//   - a bounded retry-with-backoff wrapper, and an io.ReaderAt adapter that
//     applies it to every ReadAt so transient storage faults are absorbed
//     below the decode layer;
//   - deterministic, seed-driven fault injectors for io.ReaderAt and
//     io.Writer (bit flips, truncations, short reads, transient errors,
//     injected latency) so the failure paths above are testable without
//     real broken hardware.
//
// The package depends only on the standard library plus the leaf obs
// package (retry events land on the request trace) and is imported from
// below every decode layer, so any package may classify its errors without
// import cycles.
package faultio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// Class partitions failures by the only property the serving path cares
// about: what to do next.
type Class int

const (
	// ClassUnknown is an unclassified error (treated as Permanent: never
	// retried, never quarantined as data damage).
	ClassUnknown Class = iota
	// ClassTransient errors are worth retrying: the operation may succeed on
	// the next attempt (flaky network storage, interrupted syscalls,
	// injected test faults).
	ClassTransient
	// ClassCorrupt errors mean the bytes themselves are wrong — checksum
	// mismatches, truncated or garbled streams. Retrying the same bytes is
	// pointless; the serving path quarantines the stream and degrades.
	ClassCorrupt
	// ClassPermanent errors cannot be helped by retrying or degrading data
	// quality: missing files, invalid parameters, closed handles.
	ClassPermanent
)

func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorrupt:
		return "corrupt"
	case ClassPermanent:
		return "permanent"
	}
	return "unknown"
}

// classified attaches a Class to an error; errors.As unwraps through it.
type classified struct {
	class Class
	err   error
}

func (e *classified) Error() string { return e.class.String() + ": " + e.err.Error() }
func (e *classified) Unwrap() error { return e.err }

// mark wraps err with a class; a nil err stays nil.
func mark(class Class, err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: class, err: err}
}

// Transient marks err as worth retrying.
func Transient(err error) error { return mark(ClassTransient, err) }

// Corrupt marks err as data damage: retrying the same bytes cannot help.
func Corrupt(err error) error { return mark(ClassCorrupt, err) }

// Permanent marks err as hopeless: neither retrying nor degrading helps.
func Permanent(err error) error { return mark(ClassPermanent, err) }

// Corruptf is Corrupt(fmt.Errorf(...)).
func Corruptf(format string, args ...any) error {
	return Corrupt(fmt.Errorf(format, args...))
}

// Classify returns the innermost explicit Class attached to err, falling
// back to structural rules for common unclassified errors: unexpected EOFs
// from positioned reads are corruption (the bytes the index promised are
// not there), everything else is ClassUnknown.
func Classify(err error) Class {
	if err == nil {
		return ClassUnknown
	}
	var ce *classified
	if errors.As(err, &ce) {
		return ce.class
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return ClassCorrupt
	}
	return ClassUnknown
}

// IsTransient reports whether err carries ClassTransient.
func IsTransient(err error) bool { return Classify(err) == ClassTransient }

// IsCorrupt reports whether err carries ClassCorrupt (explicitly, or
// structurally via an unexpected EOF).
func IsCorrupt(err error) bool { return Classify(err) == ClassCorrupt }

// --- retry ------------------------------------------------------------------

// RetryPolicy bounds the retry loop absorbing transient faults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retries). Zero or
	// negative means the DefaultRetryPolicy attempt count.
	MaxAttempts int
	// Backoff is the sleep before the first retry; it doubles on each
	// further retry. Zero means no sleeping (tests); the serving default is
	// DefaultRetryPolicy.Backoff.
	Backoff time.Duration
	// Sleep replaces time.Sleep (tests). Nil uses time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, if set, observes each retried error (metrics counters).
	OnRetry func(error)
}

// DefaultRetryPolicy is the serving path's bounded retry: three total
// attempts with 2 ms exponential backoff, so a blip costs at most ~6 ms
// before surfacing.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, Backoff: 2 * time.Millisecond}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Retry runs fn up to p.MaxAttempts times, retrying only errors classified
// Transient, sleeping p.Backoff (doubling) between attempts. The final
// error is returned unwrapped of nothing — it keeps its classification.
func Retry(p RetryPolicy, fn func() error) error {
	p = p.withDefaults()
	backoff := p.Backoff
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if p.OnRetry != nil {
				p.OnRetry(err)
			}
			if backoff > 0 {
				p.Sleep(backoff)
				backoff *= 2
			}
		}
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// RetryReaderAt wraps an io.ReaderAt so every ReadAt absorbs transient
// faults under the policy's bounded retry. Positioned reads are idempotent,
// so short reads (io.ErrUnexpectedEOF — a torn read, or a truncated object)
// are retried too; a read that keeps coming up short surfaces with its
// natural Corrupt classification after the attempts are exhausted. Corrupt
// and Permanent errors surface immediately. Safe for concurrent use when
// the wrapped ReaderAt is.
type RetryReaderAt struct {
	R      io.ReaderAt
	Policy RetryPolicy
}

// NewRetryReaderAt wraps r with the given retry policy.
func NewRetryReaderAt(r io.ReaderAt, p RetryPolicy) *RetryReaderAt {
	return &RetryReaderAt{R: r, Policy: p}
}

func (r *RetryReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return r.ReadAtCtx(context.Background(), p, off)
}

// ReadAtCtx is ReadAt with request-scoped observability and cancellation:
// each retried fault is recorded as an event on the context's current trace
// span, and a canceled context stops the retry loop between attempts (the
// cancellation surfaces as Permanent — retrying cannot help a dead request).
func (r *RetryReaderAt) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	pol := r.Policy.withDefaults()
	backoff := pol.Backoff
	var n int
	var err error
	for attempt := 0; ; attempt++ {
		n, err = r.R.ReadAt(p, off)
		if err == nil || errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			// A clean end-of-source EOF is the caller's business, not a fault.
			return n, err
		}
		retriable := IsTransient(err) || errors.Is(err, io.ErrUnexpectedEOF)
		if !retriable || attempt+1 >= pol.MaxAttempts {
			return n, err
		}
		if pol.OnRetry != nil {
			pol.OnRetry(err)
		}
		obs.Eventf(ctx, "retry attempt=%d off=%d err=%v", attempt+1, off, err)
		if cerr := ctx.Err(); cerr != nil {
			return n, Permanent(cerr)
		}
		if backoff > 0 {
			pol.Sleep(backoff)
			backoff *= 2
		}
	}
}

// --- fault injection --------------------------------------------------------

// FaultPlan configures a deterministic fault injector. All probabilities
// are per ReadAt call in [0,1]; faults are drawn from a seeded PRNG, so a
// given (plan, call sequence) always produces the same faults.
type FaultPlan struct {
	// Seed drives the PRNG.
	Seed int64
	// BitFlipProb flips one random bit of the returned buffer (data
	// corruption the caller's checksums must catch).
	BitFlipProb float64
	// TransientProb fails the call with a Transient error (next attempt may
	// succeed).
	TransientProb float64
	// ShortReadProb returns fewer bytes than asked with io.ErrUnexpectedEOF
	// (a torn read).
	ShortReadProb float64
	// TruncateAt, when > 0, makes every byte at or past this offset
	// unreadable, as if the object were truncated (io.ErrUnexpectedEOF /
	// io.EOF at the boundary).
	TruncateAt int64
	// Latency is added to every call (sleeps; keep small in tests).
	Latency time.Duration
	// MaxFaults, when > 0, bounds the total number of injected faults (bit
	// flips, transients, short reads); past it the reader behaves cleanly.
	// This is how "a few transient blips then recovery" is modeled.
	MaxFaults int
}

// ErrInjectedTransient is the error injected for transient faults, wrapped
// with ClassTransient.
var ErrInjectedTransient = errors.New("faultio: injected transient fault")

// FaultReaderAt injects deterministic faults into an io.ReaderAt according
// to a FaultPlan. Safe for concurrent use; the PRNG is mutex-guarded, so
// concurrent call interleavings change which call gets which fault but not
// the fault sequence itself.
type FaultReaderAt struct {
	R    io.ReaderAt
	Plan FaultPlan

	mu     sync.Mutex
	rng    *rand.Rand
	faults int
	reads  int64
}

// NewFaultReaderAt wraps r with the plan's deterministic faults.
func NewFaultReaderAt(r io.ReaderAt, plan FaultPlan) *FaultReaderAt {
	return &FaultReaderAt{R: r, Plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Faults returns how many faults have been injected so far.
func (f *FaultReaderAt) Faults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// Reads returns how many ReadAt calls have been observed.
func (f *FaultReaderAt) Reads() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

// fault is one drawn fault decision.
type fault struct {
	transient bool
	short     bool
	flipByte  int // -1: none
	flipBit   uint
}

// draw rolls the plan's dice under the mutex; the expensive work (the
// wrapped read, sleeping) happens outside it.
func (f *FaultReaderAt) draw(n int) fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	d := fault{flipByte: -1}
	if f.Plan.MaxFaults > 0 && f.faults >= f.Plan.MaxFaults {
		return d
	}
	switch {
	case f.rng.Float64() < f.Plan.TransientProb:
		d.transient = true
	case f.rng.Float64() < f.Plan.ShortReadProb:
		d.short = true
	case n > 0 && f.rng.Float64() < f.Plan.BitFlipProb:
		d.flipByte = f.rng.Intn(n)
		d.flipBit = uint(f.rng.Intn(8))
	default:
		return d
	}
	f.faults++
	return d
}

func (f *FaultReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if f.Plan.Latency > 0 {
		time.Sleep(f.Plan.Latency)
	}
	if t := f.Plan.TruncateAt; t > 0 {
		if off >= t {
			return 0, io.EOF
		}
		if off+int64(len(p)) > t {
			n, _ := f.R.ReadAt(p[:t-off], off)
			return n, io.ErrUnexpectedEOF
		}
	}
	d := f.draw(len(p))
	if d.transient {
		return 0, Transient(ErrInjectedTransient)
	}
	if d.short && len(p) > 1 {
		n, err := f.R.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, io.ErrUnexpectedEOF
	}
	n, err := f.R.ReadAt(p, off)
	if err == nil && d.flipByte >= 0 && d.flipByte < n {
		p[d.flipByte] ^= 1 << d.flipBit
	}
	return n, err
}

// FailingWriter passes writes through to W until FailAfter total bytes have
// been written, then fails every call — the model of a crash (or a full
// disk) mid-ingest for exercising atomic-install cleanup paths.
type FailingWriter struct {
	W         io.Writer
	FailAfter int64
	Err       error // returned after the limit; defaults to ErrInjectedWrite

	written int64
}

// ErrInjectedWrite is the default error a FailingWriter returns at its
// limit.
var ErrInjectedWrite = errors.New("faultio: injected write failure")

func (w *FailingWriter) Write(p []byte) (int, error) {
	if w.written >= w.FailAfter {
		err := w.Err
		if err == nil {
			err = ErrInjectedWrite
		}
		return 0, Transient(err)
	}
	n := len(p)
	if w.written+int64(n) > w.FailAfter {
		n = int(w.FailAfter - w.written)
	}
	n, err := w.W.Write(p[:n])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	if n < len(p) {
		err := w.Err
		if err == nil {
			err = ErrInjectedWrite
		}
		return n, Transient(err)
	}
	return n, nil
}
