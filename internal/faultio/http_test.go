package faultio

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"syscall"
	"testing"
)

func TestClassifyHTTPStatus(t *testing.T) {
	cases := []struct {
		status int
		want   Class
	}{
		{http.StatusOK, ClassUnknown},
		{http.StatusPartialContent, ClassUnknown},
		{http.StatusNotModified, ClassUnknown},
		{http.StatusBadRequest, ClassPermanent},
		{http.StatusForbidden, ClassPermanent},
		{http.StatusNotFound, ClassPermanent},
		{http.StatusGone, ClassPermanent},
		{http.StatusRequestedRangeNotSatisfiable, ClassPermanent},
		{http.StatusRequestTimeout, ClassTransient},
		{http.StatusTooManyRequests, ClassTransient},
		{http.StatusInternalServerError, ClassTransient},
		{http.StatusBadGateway, ClassTransient},
		{http.StatusServiceUnavailable, ClassTransient},
		{http.StatusGatewayTimeout, ClassTransient},
	}
	for _, tc := range cases {
		if got := ClassifyHTTPStatus(tc.status); got != tc.want {
			t.Errorf("ClassifyHTTPStatus(%d) = %v, want %v", tc.status, got, tc.want)
		}
	}
}

func TestHTTPStatusError(t *testing.T) {
	// A 503 is retryable, a 404 is not, and an "unexpected" 2xx — the
	// caller wanted a 206 and got something else — must not be retried
	// either.
	if err := HTTPStatusError(503, "http://o/x"); Classify(err) != ClassTransient {
		t.Errorf("503: class %v, want Transient", Classify(err))
	}
	if err := HTTPStatusError(404, "http://o/x"); Classify(err) != ClassPermanent {
		t.Errorf("404: class %v, want Permanent", Classify(err))
	}
	if err := HTTPStatusError(200, "http://o/x"); Classify(err) != ClassPermanent {
		t.Errorf("unexpected 200: class %v, want Permanent", Classify(err))
	}
}

// timeoutErr implements net.Error with Timeout() true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClassifyNetError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassUnknown},
		{"canceled", context.Canceled, ClassPermanent},
		{"deadline", context.DeadlineExceeded, ClassPermanent},
		{"wrapped canceled", fmt.Errorf("round trip: %w", context.Canceled), ClassPermanent},
		{"timeout", timeoutErr{}, ClassTransient},
		{"conn reset", fmt.Errorf("read: %w", syscall.ECONNRESET), ClassTransient},
		{"conn refused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), ClassTransient},
		{"conn aborted", syscall.ECONNABORTED, ClassTransient},
		{"broken pipe", syscall.EPIPE, ClassTransient},
		{"other", errors.New("mystery"), ClassUnknown},
	}
	for _, tc := range cases {
		if got := ClassifyNetError(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyNetError = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestNetErrorDefaultsTransient(t *testing.T) {
	// An unidentified transport failure wraps as Transient: positioned
	// reads are idempotent, so retrying the hiccup is the safe default.
	err := NetError(errors.New("mystery"))
	if !IsTransient(err) {
		t.Errorf("unknown transport error classified %v, want Transient", Classify(err))
	}
	if err := NetError(context.Canceled); IsTransient(err) {
		t.Error("canceled context must not be retried")
	}
	if NetError(nil) != nil {
		t.Error("NetError(nil) != nil")
	}
}
