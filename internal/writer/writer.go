// Package writer holds the durable-write plumbing under the streaming
// container write path: atomic file replacement for compress-to-file and
// server ingest, so a crash or a concurrent reader never observes a partial
// container at a served path.
package writer

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// AtomicFile streams fn's output into a hidden temporary file in path's
// directory and renames it over path only after the data is flushed and
// fsynced, so every observer of path sees either the old complete file or
// the new complete file — never a partial write. The temporary lives in the
// same directory (rename must not cross filesystems) and is removed on any
// failure. The containing directory is fsynced after the rename on a
// best-effort basis (not every platform or filesystem supports it).
func AtomicFile(path string, perm os.FileMode, fn func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("writer: creating temporary: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fn(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("writer: syncing %s: %w", tmp.Name(), err)
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("writer: chmod %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("writer: closing %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("writer: installing %s: %w", path, err)
	}
	// Persist the rename itself. Failure here does not un-install the file.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// tmpGlob matches the temporaries AtomicFile creates: "." + base + ".tmp-" +
// random suffix. Kept alongside AtomicFile so the two can't drift apart.
const tmpGlob = ".*.tmp-*"

// SweepTemps removes AtomicFile residue from dir: hidden temporaries left
// behind by a process that crashed between CreateTemp and the final rename.
// Only temporaries older than maxAge are removed, so an in-flight write's
// temporary is never yanked out from under it. It returns the number of
// files removed; the error reports only a failure to list the directory —
// per-file races (another sweeper, the writer finishing) are ignored.
func SweepTemps(dir string, maxAge time.Duration) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, tmpGlob))
	if err != nil {
		return 0, fmt.Errorf("writer: sweeping %s: %w", dir, err)
	}
	cutoff := time.Now().Add(-maxAge)
	removed := 0
	for _, path := range matches {
		info, err := os.Lstat(path)
		if err != nil || !info.Mode().IsRegular() || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(path) == nil {
			removed++
		}
	}
	return removed, nil
}
