// Package writer holds the durable-write plumbing under the streaming
// container write path: atomic file replacement for compress-to-file and
// server ingest, so a crash or a concurrent reader never observes a partial
// container at a served path.
package writer

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicFile streams fn's output into a hidden temporary file in path's
// directory and renames it over path only after the data is flushed and
// fsynced, so every observer of path sees either the old complete file or
// the new complete file — never a partial write. The temporary lives in the
// same directory (rename must not cross filesystems) and is removed on any
// failure. The containing directory is fsynced after the rename on a
// best-effort basis (not every platform or filesystem supports it).
func AtomicFile(path string, perm os.FileMode, fn func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("writer: creating temporary: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fn(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("writer: syncing %s: %w", tmp.Name(), err)
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("writer: chmod %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("writer: closing %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("writer: installing %s: %w", path, err)
	}
	// Persist the rename itself. Failure here does not un-install the file.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
