package writer

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAtomicFileWritesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := AtomicFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content %q", got)
	}
	// Replace: readers of the old path keep their inode; the path flips.
	old, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := AtomicFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("after replace: %q", got)
	}
	oldContent, err := io.ReadAll(old)
	if err != nil || string(oldContent) != "first" {
		t.Fatalf("old handle read %q, %v", oldContent, err)
	}
}

func TestAtomicFileFailureLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := AtomicFile(path, 0o644, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "keep" {
		t.Fatalf("failed write clobbered the target: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary %s left behind", e.Name())
		}
	}
}

// TestSweepTempsRemovesCrashResidue simulates a crash between CreateTemp and
// rename: the orphaned temporary must be swept once stale, while fresh
// temporaries (a write in flight) and real containers survive.
func TestSweepTempsRemovesCrashResidue(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".field.mrw.tmp-123456")
	fresh := filepath.Join(dir, ".other.mrw.tmp-654321")
	kept := filepath.Join(dir, "field.mrw")
	for _, p := range []string{stale, fresh, kept} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}
	n, err := SweepTemps(dir, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("swept %d files, want 1", n)
	}
	if _, err := os.Lstat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temporary survived the sweep")
	}
	for _, p := range []string{fresh, kept} {
		if _, err := os.Lstat(p); err != nil {
			t.Fatalf("sweep removed %s: %v", p, err)
		}
	}
	// maxAge 0 sweeps everything matching the pattern, fresh or not.
	if n, err := SweepTemps(dir, 0); err != nil || n != 1 {
		t.Fatalf("aggressive sweep: n=%d err=%v", n, err)
	}
	if _, err := os.Lstat(kept); err != nil {
		t.Fatalf("sweep removed the container: %v", err)
	}
}
