package writer

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicFileWritesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := AtomicFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content %q", got)
	}
	// Replace: readers of the old path keep their inode; the path flips.
	old, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := AtomicFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("after replace: %q", got)
	}
	oldContent, err := io.ReadAll(old)
	if err != nil || string(oldContent) != "first" {
		t.Fatalf("old handle read %q, %v", oldContent, err)
	}
}

func TestAtomicFileFailureLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := AtomicFile(path, 0o644, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "keep" {
		t.Fatalf("failed write clobbered the target: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary %s left behind", e.Name())
		}
	}
}
