package reader

// The corruption sweep: flip bits across whole containers — committed
// golden fixtures and freshly written checksummed ones — and assert the
// resilience contract at every offset. The contract has two tiers:
//
//   - Any container, any damage: no decode path may panic. Errors are
//     fine; crashes are not.
//   - A checksummed (v2-footer) container: every read either fails with an
//     error or returns exactly the pristine data. Silent corruption is the
//     one forbidden outcome.
//
// The committed fixtures carry v1 footers (no checksums), so only the
// no-panic tier applies to them; they are kept in the sweep because their
// wire layouts (v3 linear, v4 mixed-codec, legacy v2 body) are exactly the
// old formats a scrub meets in the wild.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// sweepOffsets samples byte offsets of an n-byte container: the structural
// boundaries (header magic/version, footer trailer, trailer CRC) plus a
// stride-spaced pass over the interior.
func sweepOffsets(n, stride int) []int {
	offs := []int{0, 1, 4, 5, n - 1, n - 8, n - 16, n - 17}
	for o := stride / 2; o < n; o += stride {
		offs = append(offs, o)
	}
	seen := make(map[int]bool, len(offs))
	out := offs[:0]
	for _, o := range offs {
		if o >= 0 && o < n && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// TestCorruptionSweepGoldenFixtures flips bits across every committed
// golden fixture and runs both decode paths over the damage. The only
// assertion is survival: a panic anywhere fails the test. (The fixtures
// predate per-stream checksums, so a flip may legally decode to different
// data — the wire offers no way to notice.)
func TestCorruptionSweepGoldenFixtures(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("..", "core", "testdata", "golden-*"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no golden fixtures found: %v", err)
	}
	for _, path := range fixtures {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(path), func(t *testing.T) {
			for _, off := range sweepOffsets(len(blob), 127) {
				for _, bit := range []byte{0x01, 0x80} {
					bad := append([]byte(nil), blob...)
					bad[off] ^= bit
					// Sequential decode: error or success, never a crash.
					core.Decompress(bad)
					// Random access: same contract on open and every level.
					r, err := Open(bytes.NewReader(bad), int64(len(bad)))
					if err != nil {
						continue
					}
					if r.NumLevels() > 16 {
						t.Fatalf("offset %d bit %#x: corrupt container parsed to %d levels", off, bit, r.NumLevels())
					}
					for l := 0; l < r.NumLevels(); l++ {
						r.ReadLevel(l)
					}
				}
			}
		})
	}
}

// TestCorruptionSweepVerifiedContainer asserts the full integrity contract
// on a checksummed container: whatever byte is damaged, every successful
// read returns data identical to the pristine decode. Footer damage is
// caught by the trailer CRC (falling back to a body scan of intact bytes),
// body damage by the per-stream CRCs, and header damage fails the open —
// there is no offset whose flip yields silently different data.
func TestCorruptionSweepVerifiedContainer(t *testing.T) {
	h := testHierarchy(t, 32, 9)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for name, opt := range map[string]core.Options{
		"tac":    {EB: eb, Arrangement: core.ArrangeTAC},
		"linear": {EB: eb, Arrangement: core.ArrangeLinear},
		// Interleaved multi-lane entropy streams add per-lane headers and
		// lane payloads to the attack surface; a flip in any of them must
		// fail the per-stream CRC or the lane decoder, never read back
		// silently different data.
		"interleaved": {EB: eb, Arrangement: core.ArrangeTAC, EntropyLanes: 4},
	} {
		t.Run(name, func(t *testing.T) {
			blob := compress(t, h, opt)
			clean := open(t, blob)
			pristine := make([]*field.Field, clean.NumLevels())
			for l := range pristine {
				f, err := clean.ReadLevel(l)
				if err != nil {
					t.Fatal(err)
				}
				pristine[l] = f
			}
			for _, off := range sweepOffsets(len(blob), 61) {
				bad := append([]byte(nil), blob...)
				bad[off] ^= 0x04
				r, err := Open(bytes.NewReader(bad), int64(len(bad)))
				if err != nil {
					continue // typed failure at open: acceptable
				}
				if r.NumLevels() != len(pristine) {
					// A parseable-but-different shape must come from footer
					// damage the trailer CRC failed to catch — that would be
					// a real wire hole, not an acceptable outcome.
					t.Fatalf("offset %d: corrupt container parsed to %d levels, want %d",
						off, r.NumLevels(), len(pristine))
				}
				for l := 0; l < r.NumLevels(); l++ {
					f, err := r.ReadLevel(l)
					if err != nil {
						continue // typed error: acceptable
					}
					if !f.Equal(pristine[l]) {
						t.Fatalf("offset %d: level %d read back silently corrupted", off, l)
					}
				}
			}
		})
	}
}
