package reader

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/synth"
)

func testHierarchy(t *testing.T, size int, seed int64) *grid.Hierarchy {
	t.Helper()
	f := synth.Generate(synth.Nyx, size, seed)
	h, err := grid.BuildAMR(f, 16, []float64{0.3, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func compress(t *testing.T, h *grid.Hierarchy, opt core.Options) []byte {
	t.Helper()
	c, err := core.CompressHierarchy(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c.Blob
}

func open(t *testing.T, blob []byte, opts ...Option) *Reader {
	t.Helper()
	r, err := Open(bytes.NewReader(blob), int64(len(blob)), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testOptions(eb float64) map[string]core.Options {
	return map[string]core.Options{
		"linear-pad-eb": {EB: eb, Arrangement: core.ArrangeLinear, Pad: true, AdaptiveEB: true},
		"stack":         {EB: eb, Arrangement: core.ArrangeStack},
		"tac":           {EB: eb, Arrangement: core.ArrangeTAC},
		"zorder1d":      {EB: eb, Arrangement: core.ArrangeZOrder1D},
		"sz2":           {EB: eb, Compressor: core.SZ2},
		"zfp":           {EB: eb, Compressor: core.ZFP},
	}
}

// TestReadLevelMatchesDecompress locks random access against the reference
// sequential decoder: for every arrangement and backend, ReadLevel must
// reproduce exactly the level arrays core.Decompress builds.
func TestReadLevelMatchesDecompress(t *testing.T) {
	h := testHierarchy(t, 32, 3)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for name, opt := range testOptions(eb) {
		blob := compress(t, h, opt)
		want, err := core.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := open(t, blob)
		if r.FellBack() {
			t.Fatalf("%s: v3 container took the fallback path", name)
		}
		if r.NumLevels() != len(want.Levels) {
			t.Fatalf("%s: %d levels, want %d", name, r.NumLevels(), len(want.Levels))
		}
		for l := range want.Levels {
			got, err := r.ReadLevel(l)
			if err != nil {
				t.Fatalf("%s: ReadLevel(%d): %v", name, l, err)
			}
			if !got.Equal(want.Levels[l].Data) {
				t.Fatalf("%s: level %d differs from sequential decode", name, l)
			}
		}
	}
}

// TestReadLevelDecodesOnlyRequestedStreams is the core promise of the
// subsystem, proven by the instrumented backend-decode counter: reading
// one level decodes that level's streams and nothing else, and fetches
// only that level's compressed bytes.
func TestReadLevelDecodesOnlyRequestedStreams(t *testing.T) {
	h := testHierarchy(t, 32, 4)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, name := range []string{"linear-pad-eb", "tac"} {
		opt := testOptions(eb)[name]
		blob := compress(t, h, opt)
		r := open(t, blob)
		ix := r.Index()
		total := len(ix.Streams)
		coarsest := r.NumLevels() - 1
		wantStreams := int64(len(ix.Levels[coarsest].Streams))
		if wantStreams == 0 || int(wantStreams) >= total {
			t.Fatalf("%s: degenerate container (%d of %d streams on coarsest level)", name, wantStreams, total)
		}
		if _, err := r.ReadLevel(coarsest); err != nil {
			t.Fatal(err)
		}
		st := r.Stats()
		if st.BackendDecodes != wantStreams {
			t.Fatalf("%s: ReadLevel(%d) decoded %d streams, want exactly %d (container has %d)",
				name, coarsest, st.BackendDecodes, wantStreams, total)
		}
		if st.BytesRead != ix.CompressedBytes(coarsest) {
			t.Fatalf("%s: read %d compressed bytes, level holds %d", name, st.BytesRead, ix.CompressedBytes(coarsest))
		}
	}
}

// TestCachedReadsSkipDecode locks the brick cache: a repeated read must
// not touch the backend again.
func TestCachedReadsSkipDecode(t *testing.T) {
	h := testHierarchy(t, 32, 5)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, name := range []string{"linear-pad-eb", "tac"} {
		blob := compress(t, h, testOptions(eb)[name])
		r := open(t, blob)
		a, err := r.ReadLevel(0)
		if err != nil {
			t.Fatal(err)
		}
		afterCold := r.Stats()
		b, err := r.ReadLevel(0)
		if err != nil {
			t.Fatal(err)
		}
		st := r.Stats()
		if st.BackendDecodes != afterCold.BackendDecodes || st.BytesRead != afterCold.BytesRead {
			t.Fatalf("%s: cached re-read decoded again (%+v -> %+v)", name, afterCold, st)
		}
		if st.CacheHits == 0 {
			t.Fatalf("%s: no cache hits recorded", name)
		}
		if !a.Equal(b) {
			t.Fatalf("%s: cached read differs", name)
		}

		// With caching disabled every read pays the backend again.
		rc := open(t, blob, WithCache(nil))
		rc.ReadLevel(0)
		first := rc.Stats().BackendDecodes
		rc.ReadLevel(0)
		if got := rc.Stats().BackendDecodes; got != 2*first {
			t.Fatalf("%s: cacheless re-read decoded %d streams, want %d", name, got, 2*first)
		}
	}
}

// TestReadBoxMatchesExtract locks per-box random access against the
// decoded hierarchy.
func TestReadBoxMatchesExtract(t *testing.T) {
	h := testHierarchy(t, 32, 6)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	blob := compress(t, h, testOptions(eb)["tac"])
	want, err := core.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	r := open(t, blob)
	for l := 0; l < r.NumLevels(); l++ {
		for b := range r.Index().Levels[l].Streams {
			f, geom, err := r.ReadBox(l, b)
			if err != nil {
				t.Fatalf("ReadBox(%d,%d): %v", l, b, err)
			}
			if !f.Equal(layout.ExtractBox(want, l, geom)) {
				t.Fatalf("box (%d,%d) differs from sequential decode", l, b)
			}
		}
	}
	if _, _, err := r.ReadBox(0, 9999); err == nil {
		t.Fatal("out-of-range box accepted")
	}
	rl := open(t, compress(t, h, testOptions(eb)["linear-pad-eb"]))
	if _, _, err := rl.ReadBox(0, 0); err == nil {
		t.Fatal("ReadBox on a merged container accepted")
	}
}

// TestReadSliceMatchesLevel locks every axis of ReadSlice against slicing
// the full level array, and — for TAC — proves non-intersecting boxes are
// not decoded.
func TestReadSliceMatchesLevel(t *testing.T) {
	h := testHierarchy(t, 32, 7)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for name, opt := range testOptions(eb) {
		blob := compress(t, h, opt)
		r := open(t, blob)
		for l := 0; l < r.NumLevels(); l++ {
			lf, err := r.ReadLevel(l)
			if err != nil {
				t.Fatal(err)
			}
			for _, axis := range []Axis{AxisX, AxisY, AxisZ} {
				dim := []int{lf.Nx, lf.Ny, lf.Nz}[axis]
				for _, k := range []int{0, dim / 2, dim - 1} {
					got, err := r.ReadSlice(axis, k, l)
					if err != nil {
						t.Fatalf("%s: ReadSlice(%v,%d,%d): %v", name, axis, k, l, err)
					}
					var want *field.Field
					switch axis {
					case AxisX:
						want = lf.SubBlock(k, 0, 0, 1, lf.Ny, lf.Nz)
					case AxisY:
						want = lf.SubBlock(0, k, 0, lf.Nx, 1, lf.Nz)
					default:
						want = lf.SliceZ(k)
					}
					if !got.Equal(want) {
						t.Fatalf("%s: slice %v=%d level %d differs", name, axis, k, l)
					}
				}
			}
		}
		if _, err := r.ReadSlice(AxisZ, 1<<20, 0); err == nil {
			t.Fatalf("%s: out-of-range slice accepted", name)
		}
	}
}

// TestSliceDecodesOnlyIntersectingBoxes proves the TAC slice path skips
// boxes the plane misses.
func TestSliceDecodesOnlyIntersectingBoxes(t *testing.T) {
	h := testHierarchy(t, 32, 8)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	blob := compress(t, h, testOptions(eb)["tac"])
	r := open(t, blob, WithCache(nil)) // count every decode
	// Find a level and plane where some boxes miss.
	found := false
	ix := r.Index()
	for l := 0; l < r.NumLevels() && !found; l++ {
		streams := ix.Levels[l].Streams
		if len(streams) < 2 {
			continue
		}
		u := ix.UnitBlockSize(l)
		intersecting := 0
		for _, si := range streams {
			g := ix.Streams[si].Geom
			if g.Z0*u <= 0 && 0 < (g.Z0+g.WZ)*u {
				intersecting++
			}
		}
		if intersecting == len(streams) {
			continue
		}
		before := r.Stats().BackendDecodes
		if _, err := r.ReadSlice(AxisZ, 0, l); err != nil {
			t.Fatal(err)
		}
		decoded := r.Stats().BackendDecodes - before
		if decoded != int64(intersecting) {
			t.Fatalf("slice z=0 level %d decoded %d boxes, %d intersect (of %d)",
				l, decoded, intersecting, len(streams))
		}
		found = true
	}
	if !found {
		t.Skip("no level with non-intersecting boxes in this fixture")
	}
}

// TestUnindexedFallback locks the compatibility path: a v2 container (no
// footer) opens via the sequential scan and serves identical data.
func TestUnindexedFallback(t *testing.T) {
	h := testHierarchy(t, 32, 9)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for _, name := range []string{"linear-pad-eb", "tac"} {
		blob := compress(t, h, testOptions(eb)[name])
		body, ok := index.Locate(blob)
		if !ok {
			t.Fatal("no footer on v3 container")
		}
		v2 := append([]byte(nil), blob[:body]...)
		v2[4] = 2
		r2 := open(t, v2)
		if !r2.FellBack() {
			t.Fatalf("%s: unindexed container did not fall back", name)
		}
		r3 := open(t, blob)
		for l := 0; l < r3.NumLevels(); l++ {
			a, err := r2.ReadLevel(l)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r3.ReadLevel(l)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("%s: fallback level %d differs from indexed read", name, l)
			}
		}
	}
}

// TestCorruptFooterFallsBack locks the degradation guarantee: a v3
// container whose footer fails its CRC (intact trailing magic, flipped
// section bit) must still open via the sequential scan — the body is
// untouched, so the data must not become unreadable.
func TestCorruptFooterFallsBack(t *testing.T) {
	h := testHierarchy(t, 32, 11)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	blob := compress(t, h, testOptions(eb)["linear-pad-eb"])
	body, ok := index.Locate(blob)
	if !ok {
		t.Fatal("no footer")
	}
	mut := append([]byte(nil), blob...)
	mut[body+6] ^= 0x10 // inside the index section, magic and trailer intact
	if _, ok := index.Locate(mut); ok {
		t.Fatal("corruption not detected by Locate")
	}
	r := open(t, mut)
	if !r.FellBack() {
		t.Fatal("corrupt footer did not fall back to the sequential scan")
	}
	want := open(t, blob)
	for l := 0; l < want.NumLevels(); l++ {
		a, err := r.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		b, err := want.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("level %d differs after corrupt-footer fallback", l)
		}
	}
}

// TestOpenRejectsGarbage: Open must error (never panic) on junk.
func TestOpenRejectsGarbage(t *testing.T) {
	for _, blob := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte{0x5A}, 300), []byte("MRWF\x03short")} {
		if _, err := Open(bytes.NewReader(blob), int64(len(blob))); err == nil {
			t.Fatalf("garbage of %d bytes opened", len(blob))
		}
	}
}

// TestConcurrentReads hammers one shared reader (and shared cache) from
// many goroutines; under -race this is the concurrency proof backing the
// server.
func TestConcurrentReads(t *testing.T) {
	h := testHierarchy(t, 32, 10)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	shared := cache.New(64<<20, 8)
	for _, name := range []string{"linear-pad-eb", "tac"} {
		blob := compress(t, h, testOptions(eb)[name])
		r := open(t, blob, WithCache(shared), WithCacheKey("conc-"+name))
		want, err := core.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					l := (g + i) % r.NumLevels()
					f, err := r.ReadLevel(l)
					if err != nil {
						errs <- err
						return
					}
					if !f.Equal(want.Levels[l].Data) {
						errs <- fmt.Errorf("level %d differs under concurrency", l)
						return
					}
					if _, err := r.ReadSlice(AxisZ, i%4, l); err != nil {
						errs <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
