package reader

// The scrub path: walk every stream of an open container and prove its
// payload intact, without decoding more than necessary and without
// touching the brick cache. This is what `mrcompress -verify` and
// repro.Verify run — the periodic integrity pass a serving fleet schedules
// against shared storage to find bit rot before a request does.

import (
	"context"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/faultio"
)

// StreamFault records one stream that failed the scrub.
type StreamFault struct {
	// Level and Box identify the stream (Box -1 for merged levels).
	Level, Box int
	// Offset and Len locate the compressed payload in the container.
	Offset, Len int64
	// Err is the typed failure (faultio.Classify tells corrupt from
	// transient-exhausted from permanent).
	Err error
}

func (f StreamFault) String() string {
	return fmt.Sprintf("stream L%dB%d [%d,+%d): %v", f.Level, f.Box, f.Offset, f.Len, f.Err)
}

// VerifyResult summarizes a container scrub.
type VerifyResult struct {
	// Streams is the number of streams examined.
	Streams int
	// Checked counts streams verified against a footer checksum.
	Checked int
	// Decoded counts streams verified by a full decode because the footer
	// carries no checksum for them (version-1 footers).
	Decoded int
	// Faults lists the streams that failed, in container order.
	Faults []StreamFault
}

// OK reports whether every stream passed.
func (v *VerifyResult) OK() bool { return len(v.Faults) == 0 }

// Verify scrubs the container: every stream's payload is read and checked
// against its index checksum when the footer carries one, or fully decoded
// otherwise (the only integrity evidence available for pre-checksum
// footers). Per-stream failures are collected in the result, not returned
// as an error — a scrub's job is the complete damage report; the returned
// error is reserved for context cancellation.
func (r *Reader) Verify(ctx context.Context) (*VerifyResult, error) {
	res := &VerifyResult{}
	for si := range r.ix.Streams {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		s := r.ix.Streams[si]
		res.Streams++
		payload := make([]byte, s.Len)
		if _, err := r.src.ReadAt(payload, s.Offset); err != nil {
			res.Faults = append(res.Faults, StreamFault{
				Level: s.Level, Box: s.Box, Offset: s.Offset, Len: s.Len, Err: err,
			})
			continue
		}
		r.bytesRead.Add(s.Len)
		if r.ix.StreamCRCs {
			res.Checked++
			if got := crc32.ChecksumIEEE(payload); got != s.CRC {
				res.Faults = append(res.Faults, StreamFault{
					Level: s.Level, Box: s.Box, Offset: s.Offset, Len: s.Len,
					Err: faultio.Corruptf("payload CRC %08x, index says %08x", got, s.CRC),
				})
				r.corruptStreams.Add(1)
			}
			continue
		}
		res.Decoded++
		opt := r.opt
		opt.Compressor = core.Compressor(s.Compressor)
		f, err := core.DecodeStream(payload, opt)
		if err == nil && int64(f.Bytes()) != s.RawLen {
			err = faultio.Corruptf("decoded to %d bytes, index says %d", f.Bytes(), s.RawLen)
		}
		if err != nil {
			if !faultio.IsCorrupt(err) {
				err = faultio.Corrupt(err)
			}
			res.Faults = append(res.Faults, StreamFault{
				Level: s.Level, Box: s.Box, Offset: s.Offset, Len: s.Len, Err: err,
			})
			r.corruptStreams.Add(1)
		} else {
			r.backendDecodes.Add(1)
		}
	}
	return res, nil
}
