package reader

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/store"
)

// goldenFixtures are every committed container fixture; the storage-seam
// tests must serve each one byte-identically over every backend.
var goldenFixtures = []string{
	"golden-mixed-sz3-flate-v4.mrw",
	"golden-tac-sz3.mrc",
	"golden-linear-sz2-v3.mrw",
	"golden-tac-sz3-v3.mrw",
	"golden-linear-zfp-v3.mrw",
}

// TestGoldenFixturesOverEveryBackend locks the tentpole invariant of the
// storage seam: every committed golden container decodes identically —
// every level, every sample — whether opened from a local directory, an
// in-memory object set, or a remote HTTP origin read with range requests.
func TestGoldenFixturesOverEveryBackend(t *testing.T) {
	dir := filepath.Join("..", "core", "testdata")

	fsStore, err := store.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMem()
	for _, name := range goldenFixtures {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		err = mem.Install(context.Background(), name, func(w io.Writer) error {
			_, werr := w.Write(blob)
			return werr
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(store.OriginHandler(dir))
	defer srv.Close()
	// Small prefetch/read-ahead so the remote reads genuinely exercise
	// ranged GETs instead of buffering each fixture whole.
	httpStore, err := store.NewHTTP(srv.URL, store.HTTPOptions{FooterPrefetch: 2048, ReadAhead: 2048})
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range goldenFixtures {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		for _, be := range []struct {
			label string
			st    store.Store
		}{{"fs", fsStore}, {"mem", mem}, {"http", httpStore}} {
			r, err := OpenStore(be.st, name)
			if err != nil {
				t.Fatalf("%s over %s: open: %v", name, be.label, err)
			}
			for l := range want.Levels {
				got, err := r.ReadLevel(l)
				if err != nil {
					t.Fatalf("%s over %s: level %d: %v", name, be.label, l, err)
				}
				if !got.Equal(want.Levels[l].Data) {
					t.Fatalf("%s over %s: level %d differs from core.Decompress", name, be.label, l)
				}
			}
			r.Close()
		}
	}
}

// gatedReaderAt blocks every ReadAt (once armed) until released: it holds
// the singleflight leader inside its backend fetch while the other readers
// pile up behind the flight.
type gatedReaderAt struct {
	src     io.ReaderAt
	mu      sync.Mutex
	armed   bool
	release chan struct{}
}

func (g *gatedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	g.mu.Lock()
	armed, release := g.armed, g.release
	g.mu.Unlock()
	if armed {
		<-release
	}
	return g.src.ReadAt(p, off)
}

func (g *gatedReaderAt) arm() {
	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
}

// TestSingleflightThunderingHerd proves decode coalescing: many concurrent
// cold readers of the same brick cost exactly one backend decode — the
// rest join the in-flight decode (or are served by the cache it populated)
// instead of decoding redundantly. Run under -race in CI, this also
// exercises the flight/cache interleaving for data races.
func TestSingleflightThunderingHerd(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden-linear-sz2-v3.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	gate := &gatedReaderAt{src: bytes.NewReader(blob), release: make(chan struct{})}
	r, err := Open(gate, int64(len(blob)), WithCache(cache.New(8<<20, 4)))
	if err != nil {
		t.Fatal(err) // footer read happens before the gate is armed
	}
	gate.arm()

	const workers = 10
	fields := make([]*field.Field, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fields[i], errs[i] = r.ReadLevel(0)
		}(i)
	}

	// Release the payload read only once every worker has recorded its
	// cache miss — i.e. all of them are past the cache probe and heading
	// into the flight, so the leader's decode is the herd's only one.
	for r.Stats().CacheMisses < workers {
		runtime.Gosched()
	}
	close(gate.release)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !fields[i].Equal(fields[0]) {
			t.Fatalf("worker %d decoded a different level image", i)
		}
	}
	st := r.Stats()
	if st.BackendDecodes != 1 {
		t.Fatalf("%d concurrent cold reads cost %d backend decodes, want exactly 1", workers, st.BackendDecodes)
	}
	if st.CoalescedWaits < workers-2 {
		t.Fatalf("CoalescedWaits = %d, want at least %d of %d readers coalesced",
			st.CoalescedWaits, workers-2, workers)
	}

	// A fresh read is now a pure cache hit: still one decode total.
	if _, err := r.ReadLevel(0); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.BackendDecodes != 1 {
		t.Fatalf("warm read re-decoded: %d backend decodes", st.BackendDecodes)
	}
}

// TestDiskTierThroughReader locks the spill round trip at the reader
// level: a brick evicted from the memory LRU comes back from the disk
// tier — counted as a DiskTierHit, without a backend re-decode — and is
// promoted back into memory.
func TestDiskTierThroughReader(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden-linear-sz2-v3.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	// A memory budget big enough for one level but not two forces the
	// first level out when the second is decoded.
	c := cache.New(int64(want.Levels[0].Data.Bytes())+512, 1)
	if _, err := EnableDiskTier(c, t.TempDir(), 64<<20); err != nil {
		t.Fatal(err)
	}
	r := open(t, blob, WithCache(c))

	l0, err := r.ReadLevel(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadLevel(1); err != nil {
		t.Fatal(err)
	}
	decodes := r.Stats().BackendDecodes

	got, err := r.ReadLevel(0) // evicted from memory: must reload from disk
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l0) {
		t.Fatal("disk-tier reload differs from the original decode")
	}
	st := r.Stats()
	if st.BackendDecodes != decodes {
		t.Fatalf("disk-tier reload re-decoded: %d -> %d backend decodes", decodes, st.BackendDecodes)
	}
	if st.DiskTierHits == 0 {
		t.Fatal("no DiskTierHits recorded across an eviction round trip")
	}
}
