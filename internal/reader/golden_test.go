package reader

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
)

// TestV2GoldenFixtureThroughReader locks the committed pre-index (v2)
// container against the random-access path: it must open via the
// sequential-scan fallback and serve every level exactly as
// core.Decompress reads it.
func TestV2GoldenFixtureThroughReader(t *testing.T) {
	path := filepath.Join("..", "core", "testdata", "golden-tac-sz3.mrc")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	r := open(t, blob)
	if !r.FellBack() {
		t.Fatal("v2 golden opened without the fallback scan")
	}
	if r.NumLevels() != len(want.Levels) {
		t.Fatalf("NumLevels = %d, want %d", r.NumLevels(), len(want.Levels))
	}
	for l := range want.Levels {
		got, err := r.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d of the v2 golden differs between reader and Decompress", l)
		}
	}

	// The v3 golden serves identically through the indexed path.
	v3, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden-tac-sz3-v3.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	r3 := open(t, v3)
	if r3.FellBack() {
		t.Fatal("v3 golden took the fallback path")
	}
	for l := range want.Levels {
		got, err := r3.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d differs between v3 golden and v2 golden", l)
		}
	}
}

// TestMixedCodecGoldenThroughReader locks the mixed-codec (format v4)
// fixture against the random-access path: each level must decode under its
// own codec — sz3 for the fine level, lossless flate for the coarse one —
// both through the index footer and through the sequential-scan fallback
// (which must recover the per-stream codec bytes from the v4 body).
func TestMixedCodecGoldenThroughReader(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden-mixed-sz3-flate-v4.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Indexed path: codecs come from the footer's per-stream bytes.
	r := open(t, blob)
	if r.FellBack() {
		t.Fatal("v4 golden took the fallback path")
	}
	for l := range want.Levels {
		got, err := r.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d differs between reader and Decompress", l)
		}
	}

	// Footer stripped: the fallback body scan must still find each
	// stream's codec (the v4 per-stream codec byte).
	body, ok := index.Locate(blob)
	if !ok {
		t.Fatal("v4 golden has no index footer")
	}
	rs := open(t, blob[:body])
	if !rs.FellBack() {
		t.Fatal("footer-stripped v4 golden opened without the fallback scan")
	}
	for l := range want.Levels {
		got, err := rs.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d differs between fallback reader and Decompress", l)
		}
	}
}
