package reader

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestV2GoldenFixtureThroughReader locks the committed pre-index (v2)
// container against the random-access path: it must open via the
// sequential-scan fallback and serve every level exactly as
// core.Decompress reads it.
func TestV2GoldenFixtureThroughReader(t *testing.T) {
	path := filepath.Join("..", "core", "testdata", "golden-tac-sz3.mrc")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	r := open(t, blob)
	if !r.FellBack() {
		t.Fatal("v2 golden opened without the fallback scan")
	}
	if r.NumLevels() != len(want.Levels) {
		t.Fatalf("NumLevels = %d, want %d", r.NumLevels(), len(want.Levels))
	}
	for l := range want.Levels {
		got, err := r.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d of the v2 golden differs between reader and Decompress", l)
		}
	}

	// The v3 golden serves identically through the indexed path.
	v3, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden-tac-sz3-v3.mrw"))
	if err != nil {
		t.Fatal(err)
	}
	r3 := open(t, v3)
	if r3.FellBack() {
		t.Fatal("v3 golden took the fallback path")
	}
	for l := range want.Levels {
		got, err := r3.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d differs between v3 golden and v2 golden", l)
		}
	}
}
