// Package reader provides random access into compressed multi-resolution
// containers: where core.Decompress parses and decodes every stream, a
// Reader seeks directly to the streams a request needs — one level, one TAC
// box, one slice — and decodes only those, so a consumer wanting the
// coarsest level of a large container touches a few kilobytes instead of
// the whole file.
//
// Open reads only the index footer of a version-3 container (internal/
// index). Containers without a usable footer — version 1/2 blobs, or a v3
// blob whose footer was truncated or corrupted — transparently fall back
// to one sequential scan of the whole container (core.BuildIndex), after
// which access is equally random.
//
// Decoded levels and boxes ("bricks") are cached in an optional sharded
// byte-budgeted LRU (internal/cache), so repeated reads of hot levels skip
// the backend decode entirely. Fields returned by Read* methods may be
// served from that shared cache: treat them as read-only.
//
// A Reader is safe for concurrent use when its io.ReaderAt is (os.File and
// bytes.Reader both are).
package reader

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/field"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/obs"
)

// DefaultCacheBytes is the budget of the private brick cache a Reader
// creates when WithCache is not given.
const DefaultCacheBytes = 256 << 20

// Axis names a slicing axis.
type Axis int

// Slicing axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// ParseAxis converts "x", "y", or "z".
func ParseAxis(s string) (Axis, error) {
	switch s {
	case "x":
		return AxisX, nil
	case "y":
		return AxisY, nil
	case "z":
		return AxisZ, nil
	}
	return 0, fmt.Errorf("reader: unknown axis %q", s)
}

// Stats counts what a Reader actually did — the observable difference
// between random access and decode-everything.
type Stats struct {
	// BackendDecodes is the number of compressed streams decoded.
	BackendDecodes int64
	// BytesRead is the number of compressed payload bytes fetched from the
	// source (excluding the index footer; including the full-container scan
	// when falling back on an unindexed blob).
	BytesRead int64
	// CacheHits and CacheMisses count brick-cache outcomes for this reader.
	CacheHits, CacheMisses int64
	// Retries counts source reads that were retried after a transient fault.
	Retries int64
	// CorruptStreams counts streams that failed integrity verification or
	// decode — candidates for quarantine in the serving path.
	CorruptStreams int64
	// CoalescedWaits counts brick requests that joined an in-flight decode
	// of the same brick instead of starting their own (singleflight).
	CoalescedWaits int64
	// DiskTierHits counts cache hits served by reloading a spilled brick
	// from the cache's disk tier (a subset of CacheHits).
	DiskTierHits int64
}

// Option configures a Reader.
type Option func(*Reader)

// WithCache shares a brick cache across readers (the serving setup: one
// byte budget for all open fields). Passing nil disables caching.
func WithCache(c *cache.Cache) Option {
	return func(r *Reader) { r.cache, r.cacheSet = c, true }
}

// WithCacheKey sets the prefix distinguishing this container's bricks in a
// shared cache. Defaults to the file path for OpenFile, or a process-unique
// id otherwise.
func WithCacheKey(id string) Option {
	return func(r *Reader) { r.id = id }
}

// WithVerify controls per-stream CRC verification before decode. The
// default is on; verification is silently unavailable when the container's
// footer predates stream checksums (see CanVerify).
func WithVerify(v bool) Option {
	return func(r *Reader) { r.verify = v }
}

// WithRetryPolicy overrides the bounded retry-with-backoff applied to every
// source read (default faultio.DefaultRetryPolicy: transient faults are
// absorbed below the decode layer).
func WithRetryPolicy(p faultio.RetryPolicy) Option {
	return func(r *Reader) { r.retryPolicy = p }
}

// WithSourceWrap interposes a transform on the container source underneath
// the retry layer — the fault-injection seam: tests (and the CI smoke run)
// wrap the source in a faultio.FaultReaderAt to exercise the serving path
// under storage faults without real broken hardware.
func WithSourceWrap(wrap func(io.ReaderAt) io.ReaderAt) Option {
	return func(r *Reader) { r.srcWrap = wrap }
}

var nextID atomic.Int64

// Reader is an open container handle.
type Reader struct {
	src         io.ReaderAt
	size        int64
	ix          *index.Index
	opt         core.Options
	cache       *cache.Cache
	cacheSet    bool
	id          string
	fellBack    bool
	verify      bool
	retryPolicy faultio.RetryPolicy
	srcWrap     func(io.ReaderAt) io.ReaderAt

	// flight coalesces concurrent decodes of the same brick: N readers
	// racing one cold cache miss cost one backend fetch + decode.
	flight flightGroup

	backendDecodes atomic.Int64
	bytesRead      atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	retries        atomic.Int64
	corruptStreams atomic.Int64
	coalescedWaits atomic.Int64
	diskTierHits   atomic.Int64
}

// Open opens a container accessed through src with the given total size.
// It reads the index footer (plus nothing else); unindexed containers cost
// one full sequential scan up front.
func Open(src io.ReaderAt, size int64, opts ...Option) (*Reader, error) {
	return OpenCtx(context.Background(), src, size, opts...)
}

// OpenCtx is Open under a context: when ctx carries a trace (internal/obs)
// the footer read — or, for unindexed containers, the full sequential
// fallback scan — appears as a span on it, so a request that pays a cold
// open shows exactly where the time went.
func OpenCtx(ctx context.Context, src io.ReaderAt, size int64, opts ...Option) (*Reader, error) {
	r := &Reader{size: size, verify: true, retryPolicy: faultio.DefaultRetryPolicy}
	for _, o := range opts {
		o(r)
	}
	if r.srcWrap != nil {
		src = r.srcWrap(src)
	}
	// Every read — the footer, the fallback scan, stream payloads — goes
	// through the bounded retry layer, so transient storage faults are
	// absorbed before any decode or parse sees them. The OnRetry hook feeds
	// the reader's retry counter (and the caller's hook, when set).
	pol := r.retryPolicy
	callerOnRetry := pol.OnRetry
	pol.OnRetry = func(err error) {
		r.retries.Add(1)
		if callerOnRetry != nil {
			callerOnRetry(err)
		}
	}
	src = faultio.NewRetryReaderAt(src, pol)
	r.src = src
	if !r.cacheSet {
		r.cache = cache.New(DefaultCacheBytes, cache.DefaultShards)
	}
	if r.id == "" {
		r.id = fmt.Sprintf("mrw#%d", nextID.Add(1))
	}
	ix, err := func() (*index.Index, error) {
		_, sp := obs.StartSpan(ctx, "footer_read")
		defer sp.End()
		return index.ReadFrom(src, size)
	}()
	if err == nil {
		r.ix = ix
	} else if err := func() error {
		// No footer (v1/v2, or truncated away) or a corrupt one (CRC
		// mismatch, implausible contents): the body may still be perfectly
		// intact, so degrade to one sequential scan rather than becoming
		// unreadable. The synthesized stream offsets are absolute, so
		// subsequent reads go back to src directly — the scan buffer is
		// not retained (it would pin the whole container outside the
		// brick-cache budget).
		sctx, sp := obs.StartSpan(ctx, "fallback_scan")
		defer sp.End()
		blob := make([]byte, size)
		if _, err := readAtCtx(sctx, src, blob, 0); err != nil {
			return fmt.Errorf("reader: scanning unindexed container: %w", err)
		}
		r.bytesRead.Add(size)
		ix, err := core.BuildIndex(blob)
		if err != nil {
			return err
		}
		// Re-validate through the footer parser: the sequential body scan
		// is laxer about box geometry than index.Parse, and everything
		// downstream (SetBlock placement) relies on its bounds.
		section := ix.AppendFooter(nil)
		if r.ix, err = index.Parse(section[:len(section)-index.TrailerLen], size); err != nil {
			return err
		}
		// The synthesized section's CRC plays the same container-version
		// role the trailer CRC does for footer-indexed containers.
		r.ix.SectionCRC = crc32.ChecksumIEEE(section[:len(section)-index.TrailerLen])
		r.fellBack = true
		return nil
	}(); err != nil {
		return nil, err
	}
	r.opt = core.OptionsFromIndex(r.ix.Opts)
	return r, nil
}

// readAtCtx routes a positioned read through the source's context-aware
// path when it has one (faultio.RetryReaderAt.ReadAtCtx), so retry events
// land on the request trace and cancellation stops the retry loop.
func readAtCtx(ctx context.Context, src io.ReaderAt, p []byte, off int64) (int, error) {
	if rc, ok := src.(interface {
		ReadAtCtx(context.Context, []byte, int64) (int, error)
	}); ok {
		return rc.ReadAtCtx(ctx, p, off)
	}
	return src.ReadAt(p, off)
}

// FileReader is a Reader over an opened file.
type FileReader struct {
	*Reader
	f *os.File
}

// Close releases the underlying file.
func (fr *FileReader) Close() error { return fr.f.Close() }

// Stat fstats the open file — the inode this reader actually serves, not
// whatever currently sits at its path. Callers revalidate a cached reader
// by comparing this against a fresh os.Stat of the path: a mismatch means
// the container was replaced underneath and the reader is stale.
func (fr *FileReader) Stat() (os.FileInfo, error) { return fr.f.Stat() }

// OpenFile opens a container file for random access.
func OpenFile(path string, opts ...Option) (*FileReader, error) {
	return OpenFileCtx(context.Background(), path, opts...)
}

// OpenFileCtx is OpenFile under a context (see OpenCtx).
func OpenFileCtx(ctx context.Context, path string, opts ...Option) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := OpenCtx(ctx, f, st.Size(), append([]Option{WithCacheKey(path)}, opts...)...)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileReader{Reader: r, f: f}, nil
}

// Index exposes the parsed container index (read-only).
func (r *Reader) Index() *index.Index { return r.ix }

// Options returns the container's decode options.
func (r *Reader) Options() core.Options { return r.opt }

// NumLevels returns the container's level count.
func (r *Reader) NumLevels() int { return r.ix.NumLevels() }

// Dims returns the fine-level domain dimensions.
func (r *Reader) Dims() (nx, ny, nz int) { return r.ix.Nx, r.ix.Ny, r.ix.Nz }

// FellBack reports whether the container had no usable index footer and
// was scanned sequentially instead.
func (r *Reader) FellBack() bool { return r.fellBack }

// Size returns the container's total size in bytes.
func (r *Reader) Size() int64 { return r.size }

// CanVerify reports whether per-stream integrity verification is available:
// the container's index carries payload checksums (checked-footer
// containers, and any container opened through the sequential-scan
// fallback, whose synthesized index checksums the payloads it located).
func (r *Reader) CanVerify() bool { return r.ix.StreamCRCs }

// Stats snapshots the reader's access counters.
func (r *Reader) Stats() Stats {
	return Stats{
		BackendDecodes: r.backendDecodes.Load(),
		BytesRead:      r.bytesRead.Load(),
		CacheHits:      r.cacheHits.Load(),
		CacheMisses:    r.cacheMisses.Load(),
		Retries:        r.retries.Load(),
		CorruptStreams: r.corruptStreams.Load(),
		CoalescedWaits: r.coalescedWaits.Load(),
		DiskTierHits:   r.diskTierHits.Load(),
	}
}

// cached wraps the brick cache with reader-local hit/miss accounting. The
// probe lands on the request trace as a cache_hit, disk_tier_hit (reloaded
// from the cache's spill tier), or cache_miss leaf span.
func (r *Reader) cachedField(ctx context.Context, key string) (*field.Field, bool) {
	start := time.Now()
	if v, tier, ok := r.cache.GetTier(key); ok {
		r.cacheHits.Add(1)
		if tier == cache.TierDisk {
			r.diskTierHits.Add(1)
			obs.Record(ctx, "disk_tier_hit", start, "key", key)
		} else {
			obs.Record(ctx, "cache_hit", start, "key", key)
		}
		return v.(*field.Field), true
	}
	r.cacheMisses.Add(1)
	obs.Record(ctx, "cache_miss", start, "key", key)
	return nil, false
}

// brickOnce is the cache-or-decode path for one brick key with singleflight
// coalescing: a miss either leads a flight (running fetch, which must cache
// its result before returning) or joins the one already decoding the same
// key, landing on the trace as a coalesced_wait span. The leader re-checks
// the cache inside the flight, closing the race where a previous flight
// published its brick between this caller's miss and the flight lock.
func (r *Reader) brickOnce(ctx context.Context, key string, fetch func() (*field.Field, error)) (*field.Field, error) {
	if f, ok := r.cachedField(ctx, key); ok {
		return f, nil
	}
	start := time.Now()
	v, shared, err := r.flight.Do(key, func() (any, error) {
		if v, _, ok := r.cache.GetTier(key); ok {
			return v.(*field.Field), nil
		}
		return fetch()
	})
	if err != nil {
		return nil, err
	}
	if shared {
		r.coalescedWaits.Add(1)
		obs.Record(ctx, "coalesced_wait", start, "key", key)
	}
	return v.(*field.Field), nil
}

// markCorrupt counts a stream that failed integrity checks or decode and
// returns the error classified Corrupt (idempotent when already classified).
func (r *Reader) markCorrupt(err error) error {
	r.corruptStreams.Add(1)
	if faultio.IsCorrupt(err) {
		return err
	}
	return faultio.Corrupt(err)
}

// fetchStream reads and decodes stream si, without caching. The payload is
// verified against the index's per-stream CRC first (when available and not
// disabled via WithVerify), so damaged bytes are rejected with a typed
// Corrupt error before any codec sees them. Decoding uses the stream's own
// codec from the index — in a mixed-codec (format v4) container each level
// may have been compressed by a different backend.
func (r *Reader) fetchStream(ctx context.Context, si int) (*field.Field, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := r.ix.Streams[si]
	payload := make([]byte, s.Len)
	if err := func() error {
		// The positioned read plus integrity check is the "stream_read"
		// stage: fetching verified compressed bytes, before any codec runs.
		rctx, sp := obs.StartSpan(ctx, "stream_read")
		defer sp.End()
		sp.SetTag("stream", fmt.Sprintf("L%dB%d", s.Level, s.Box))
		if _, err := readAtCtx(rctx, r.src, payload, s.Offset); err != nil {
			return fmt.Errorf("reader: stream L%dB%d: %w", s.Level, s.Box, err)
		}
		r.bytesRead.Add(s.Len)
		if r.verify && r.ix.StreamCRCs {
			if got := crc32.ChecksumIEEE(payload); got != s.CRC {
				return faultio.Corrupt(fmt.Errorf("reader: stream L%dB%d: payload CRC %08x, index says %08x",
					s.Level, s.Box, got, s.CRC))
			}
		}
		return nil
	}(); err != nil {
		if faultio.IsCorrupt(err) {
			r.corruptStreams.Add(1)
		}
		return nil, err
	}
	opt := r.opt
	opt.Compressor = core.Compressor(s.Compressor)
	f, err := core.DecodeStreamCtx(ctx, payload, opt)
	if err != nil {
		return nil, r.markCorrupt(fmt.Errorf("reader: stream L%dB%d: %w", s.Level, s.Box, err))
	}
	r.backendDecodes.Add(1)
	if int64(f.Bytes()) != s.RawLen {
		return nil, r.markCorrupt(fmt.Errorf("reader: stream L%dB%d decoded to %d bytes, index says %d",
			s.Level, s.Box, f.Bytes(), s.RawLen))
	}
	return f, nil
}

// boxBrick returns the decoded field of TAC stream si, via the cache, with
// concurrent decodes of the same box coalesced.
func (r *Reader) boxBrick(ctx context.Context, si int) (*field.Field, error) {
	s := r.ix.Streams[si]
	key := fmt.Sprintf("%s/L%d/B%d", r.id, s.Level, s.Box)
	return r.brickOnce(ctx, key, func() (*field.Field, error) {
		f, err := r.fetchStream(ctx, si)
		if err != nil {
			return nil, err
		}
		u := r.ix.UnitBlockSize(s.Level)
		if f.Nx != s.Geom.WX*u || f.Ny != s.Geom.WY*u || f.Nz != s.Geom.WZ*u {
			return nil, r.markCorrupt(fmt.Errorf("reader: box L%dB%d decoded shape %v does not match geometry %+v",
				s.Level, s.Box, f, s.Geom))
		}
		r.cache.Put(key, f, int64(f.Bytes()))
		return f, nil
	})
}

// levelField returns a merged level's placed full-domain array, via the
// cache. Valid only for non-TAC streams.
func (r *Reader) levelField(ctx context.Context, l int) (*field.Field, error) {
	key := fmt.Sprintf("%s/L%d", r.id, l)
	return r.brickOnce(ctx, key, func() (*field.Field, error) {
		nx, ny, nz := r.ix.LevelDims(l)
		out := field.New(nx, ny, nz)
		lv := &r.ix.Levels[l]
		if len(lv.Streams) > 0 {
			f, err := r.fetchStream(ctx, lv.Streams[0])
			if err != nil {
				return nil, err
			}
			if lv.Padded {
				if f.Nx < 2 || f.Ny < 2 {
					return nil, fmt.Errorf("reader: level %d padded stream too small to unpad (%v)", l, f)
				}
				f = layout.UnpadXY(f)
			}
			m := &layout.Merged{Data: f, U: r.ix.UnitBlockSize(l), Blocks: lv.Blocks}
			var err2 error
			switch core.Arrangement(r.ix.Opts.Arrangement) {
			case core.ArrangeLinear:
				err2 = layout.LinearPlace(m, out)
			case core.ArrangeStack:
				err2 = layout.StackPlace(m, out)
			case core.ArrangeZOrder1D:
				err2 = layout.ZOrderPlace1D(m, out)
			default:
				err2 = fmt.Errorf("reader: unknown arrangement %d", r.ix.Opts.Arrangement)
			}
			if err2 != nil {
				return nil, err2
			}
		}
		r.cache.Put(key, out, int64(out.Bytes()))
		return out, nil
	})
}

func (r *Reader) checkLevel(l int) error {
	if l < 0 || l >= len(r.ix.Levels) {
		return fmt.Errorf("reader: level %d out of range [0,%d)", l, len(r.ix.Levels))
	}
	return nil
}

func (r *Reader) isTAC() bool {
	return core.Arrangement(r.ix.Opts.Arrangement) == core.ArrangeTAC
}

// ReadLevel returns level l as a full-domain array at that level's
// resolution, decoding (or fetching from cache) only that level's streams.
// Samples of blocks owned by other levels are zero; the index's block
// lists say which blocks are meaningful. The returned field may be shared
// with the cache — treat it as read-only.
func (r *Reader) ReadLevel(l int) (*field.Field, error) {
	return r.ReadLevelCtx(context.Background(), l)
}

// ReadLevelCtx is ReadLevel under a context: cancellation is honored
// before each brick fetch, so a disconnected client or a shutting-down
// server stops paying for decodes mid-level.
func (r *Reader) ReadLevelCtx(ctx context.Context, l int) (*field.Field, error) {
	if err := r.checkLevel(l); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "read_level")
	sp.SetTag("level", strconv.Itoa(l))
	defer sp.End()
	if !r.isTAC() {
		return r.levelField(ctx, l)
	}
	nx, ny, nz := r.ix.LevelDims(l)
	out := field.New(nx, ny, nz)
	u := r.ix.UnitBlockSize(l)
	for _, si := range r.ix.Levels[l].Streams {
		f, err := r.boxBrick(ctx, si)
		if err != nil {
			return nil, err
		}
		g := r.ix.Streams[si].Geom
		out.SetBlock(g.X0*u, g.Y0*u, g.Z0*u, f)
	}
	return out, nil
}

// ReadBox returns TAC box b of level l and its geometry in block
// coordinates, decoding only that box's stream. It errors on containers
// whose arrangement has no boxes (use ReadLevel).
func (r *Reader) ReadBox(l, b int) (*field.Field, layout.Box, error) {
	return r.ReadBoxCtx(context.Background(), l, b)
}

// ReadBoxCtx is ReadBox under a context (see ReadLevelCtx).
func (r *Reader) ReadBoxCtx(ctx context.Context, l, b int) (*field.Field, layout.Box, error) {
	if err := r.checkLevel(l); err != nil {
		return nil, layout.Box{}, err
	}
	if !r.isTAC() {
		return nil, layout.Box{}, fmt.Errorf("reader: container arrangement %v has no boxes", core.Arrangement(r.ix.Opts.Arrangement))
	}
	streams := r.ix.Levels[l].Streams
	if b < 0 || b >= len(streams) {
		return nil, layout.Box{}, fmt.Errorf("reader: box %d out of range [0,%d) in level %d", b, len(streams), l)
	}
	ctx, sp := obs.StartSpan(ctx, "read_box")
	sp.SetTag("level", strconv.Itoa(l))
	sp.SetTag("box", strconv.Itoa(b))
	defer sp.End()
	si := streams[b]
	f, err := r.boxBrick(ctx, si)
	if err != nil {
		return nil, layout.Box{}, err
	}
	return f, r.ix.Streams[si].Geom, nil
}

// ReadSlice returns the 2D cross-section of level l at index k along the
// given axis (in that level's cells), as a field whose sliced dimension is
// 1. On TAC containers only boxes intersecting the plane are decoded; on
// merged containers the level's single stream is decoded (once — repeats
// hit the cache).
func (r *Reader) ReadSlice(axis Axis, k, l int) (*field.Field, error) {
	return r.ReadSliceCtx(context.Background(), axis, k, l)
}

// ReadSliceCtx is ReadSlice under a context (see ReadLevelCtx).
func (r *Reader) ReadSliceCtx(ctx context.Context, axis Axis, k, l int) (*field.Field, error) {
	if err := r.checkLevel(l); err != nil {
		return nil, err
	}
	nx, ny, nz := r.ix.LevelDims(l)
	dim := [3]int{nx, ny, nz}
	if axis < AxisX || axis > AxisZ {
		return nil, fmt.Errorf("reader: invalid axis %d", axis)
	}
	if k < 0 || k >= dim[axis] {
		return nil, fmt.Errorf("reader: slice %v=%d out of range [0,%d)", axis, k, dim[axis])
	}
	ctx, sp := obs.StartSpan(ctx, "read_slice")
	sp.SetTag("axis", axis.String())
	sp.SetTag("k", strconv.Itoa(k))
	sp.SetTag("level", strconv.Itoa(l))
	defer sp.End()
	onx, ony, onz := nx, ny, nz
	switch axis {
	case AxisX:
		onx = 1
	case AxisY:
		ony = 1
	case AxisZ:
		onz = 1
	}
	if !r.isTAC() {
		lf, err := r.levelField(ctx, l)
		if err != nil {
			return nil, err
		}
		switch axis {
		case AxisX:
			return lf.SubBlock(k, 0, 0, 1, ny, nz), nil
		case AxisY:
			return lf.SubBlock(0, k, 0, nx, 1, nz), nil
		default:
			return lf.SliceZ(k), nil
		}
	}
	out := field.New(onx, ony, onz)
	u := r.ix.UnitBlockSize(l)
	for _, si := range r.ix.Levels[l].Streams {
		g := r.ix.Streams[si].Geom
		lo := [3]int{g.X0 * u, g.Y0 * u, g.Z0 * u}
		w := [3]int{g.WX * u, g.WY * u, g.WZ * u}
		if k < lo[axis] || k >= lo[axis]+w[axis] {
			continue // box does not intersect the plane; skip its decode
		}
		f, err := r.boxBrick(ctx, si)
		if err != nil {
			return nil, err
		}
		kl := k - lo[axis]
		switch axis {
		case AxisX:
			out.SetBlock(0, lo[1], lo[2], f.SubBlock(kl, 0, 0, 1, w[1], w[2]))
		case AxisY:
			out.SetBlock(lo[0], 0, lo[2], f.SubBlock(0, kl, 0, w[0], 1, w[2]))
		default:
			out.SetBlock(lo[0], lo[1], 0, f.SubBlock(0, 0, kl, w[0], w[1], 1))
		}
	}
	return out, nil
}
