package reader

import (
	"context"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/obs"
)

// TestTracePropagatesThroughReadPath is the cross-layer observability
// contract: one trace, carried by context from the caller through the
// reader into the cache probe and the codec decode, must come back with
// the original trace ID and the read_level → stream_read / decode /
// cache_miss span chain (and a cache_hit on the second read).
func TestTracePropagatesThroughReadPath(t *testing.T) {
	h := testHierarchy(t, 32, 3)
	blob := compress(t, h, core.Options{EB: 1e-3, Arrangement: core.ArrangeTAC})
	r := open(t, blob)

	c := obs.NewCollector(8)
	ctx, tr := c.StartTrace(context.Background(), "reader-trace-1")
	if _, err := r.ReadLevelCtx(ctx, r.NumLevels()-1); err != nil {
		t.Fatal(err)
	}
	c.Finish(tr)

	snaps := c.Traces(1)
	if len(snaps) != 1 || snaps[0].ID != "reader-trace-1" {
		t.Fatalf("trace did not survive the read path: %+v", snaps)
	}
	byName := map[string]SpanCount{}
	for _, s := range snaps[0].Spans {
		e := byName[s.Name]
		e.n++
		e.parent = s.Parent
		byName[s.Name] = e
	}
	if byName["read_level"].n != 1 {
		t.Fatalf("missing read_level span: %v", byName)
	}
	// cache_miss, stream_read, and decode all parent under read_level:
	// stream_read is a closed sibling by the time decode starts.
	for _, name := range []string{"cache_miss", "stream_read", "decode"} {
		e := byName[name]
		if e.n == 0 {
			t.Errorf("missing %s span (spans: %v)", name, byName)
		}
		if e.parent != "read_level" {
			t.Errorf("%s parent %q want %q", name, e.parent, "read_level")
		}
	}
	// Second read of the same level must be a pure cache hit on the trace.
	ctx2, tr2 := c.StartTrace(context.Background(), "reader-trace-2")
	if _, err := r.ReadLevelCtx(ctx2, r.NumLevels()-1); err != nil {
		t.Fatal(err)
	}
	c.Finish(tr2)
	hot := c.Traces(1)[0]
	var hits, decodes int
	for _, s := range hot.Spans {
		switch s.Name {
		case "cache_hit":
			hits++
		case "decode":
			decodes++
		}
	}
	if hits == 0 || decodes != 0 {
		t.Fatalf("hot read: %d cache_hit, %d decode spans, want >0 and 0", hits, decodes)
	}
}

type SpanCount struct {
	n      int
	parent string
}

// TestRetryEventsLandOnTrace injects transient faults and checks the retry
// breadcrumbs appear as events on the in-flight stream_read span.
func TestRetryEventsLandOnTrace(t *testing.T) {
	h := testHierarchy(t, 32, 5)
	blob := compress(t, h, core.Options{EB: 1e-3})
	var faulty *faultio.FaultReaderAt
	r := open(t, blob,
		WithSourceWrap(func(src io.ReaderAt) io.ReaderAt {
			faulty = faultio.NewFaultReaderAt(src, faultio.FaultPlan{Seed: 1, TransientProb: 0.5, MaxFaults: 4})
			return faulty
		}),
		WithRetryPolicy(faultio.RetryPolicy{MaxAttempts: 5}),
	)

	c := obs.NewCollector(4)
	ctx, tr := c.StartTrace(context.Background(), "retry-trace")
	if _, err := r.ReadLevelCtx(ctx, 0); err != nil {
		t.Fatal(err)
	}
	c.Finish(tr)
	if r.Stats().Retries == 0 {
		t.Skip("fault plan injected no retries on this read path")
	}
	var events int
	for _, s := range c.Traces(1)[0].Spans {
		events += len(s.Events)
	}
	if events == 0 {
		t.Fatal("retries happened but no retry events landed on the trace")
	}
}

// TestCanceledContextStopsRetries: a canceled request must not sit through
// the retry backoff schedule — RetryReaderAt.ReadAtCtx aborts between
// attempts, and fetchStream refuses to start work on a dead context.
func TestCanceledContextStopsRetries(t *testing.T) {
	h := testHierarchy(t, 32, 7)
	blob := compress(t, h, core.Options{EB: 1e-3})
	r := open(t, blob)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ReadLevelCtx(ctx, 0); err == nil {
		t.Fatal("read with canceled context succeeded")
	}

	// Directly on the retry layer: an always-faulting source under a huge
	// attempt budget must return promptly once the context is canceled.
	faulty := faultio.NewFaultReaderAt(failingReaderAt{}, faultio.FaultPlan{Seed: 1, TransientProb: 1})
	rr := faultio.NewRetryReaderAt(faulty, faultio.RetryPolicy{MaxAttempts: 1 << 20})
	buf := make([]byte, 8)
	if _, err := rr.ReadAtCtx(ctx, buf, 0); err == nil {
		t.Fatal("ReadAtCtx with canceled context succeeded")
	}
	if faulty.Reads() > 2 {
		t.Fatalf("canceled context still allowed %d attempts", faulty.Reads())
	}
}

type failingReaderAt struct{}

func (failingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return 0, io.ErrUnexpectedEOF
}
