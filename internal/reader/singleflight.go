package reader

import "sync"

// flightGroup coalesces concurrent duplicate work by key: the first caller
// of Do for a key (the leader) runs fn; callers arriving while it runs (the
// followers) block and share the leader's result instead of repeating the
// work. This is what keeps a thundering herd on one cold brick — N requests
// racing the same cache miss — down to exactly one backend fetch + decode.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// Do runs fn for key unless a flight for key is already in progress, in
// which case it waits for that flight and returns its result with
// shared=true. The flight is deregistered before its result is published,
// so a caller that misses both the cache and the flight re-runs fn — which
// is why leaders re-check the cache first (see brickOnce).
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
