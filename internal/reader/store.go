package reader

import (
	"bytes"
	"context"

	"repro/internal/cache"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/store"
)

// StoreReader is a Reader over an object opened from a storage backend
// (internal/store): the serving tier's container handle when the backing
// may be a local directory, an in-memory object set, or a remote HTTP
// origin.
type StoreReader struct {
	*Reader
	h store.Handle
}

// Close releases the underlying store handle.
func (sr *StoreReader) Close() error { return sr.h.Close() }

// StoreInfo returns the object identity observed when the handle was
// opened — the baseline a serving tier compares against a fresh Stat to
// detect replace-while-serving, generalizing FileReader.Stat's fstat
// identity across backends.
func (sr *StoreReader) StoreInfo() store.Info { return sr.h.Info() }

// OpenStore opens the container object key from st for random access.
func OpenStore(st store.Store, key string, opts ...Option) (*StoreReader, error) {
	return OpenStoreCtx(context.Background(), st, key, opts...)
}

// OpenStoreCtx is OpenStore under a context: the backend open — for the
// HTTP backend, the suffix-range GET that sizes the object and prefetches
// its footer — lands on the request trace as a "store_read" span, ahead of
// OpenCtx's footer_read/fallback_scan.
func OpenStoreCtx(ctx context.Context, st store.Store, key string, opts ...Option) (*StoreReader, error) {
	h, err := func() (store.Handle, error) {
		_, sp := obs.StartSpan(ctx, "store_read")
		sp.SetTag("store", st.String())
		sp.SetTag("key", key)
		defer sp.End()
		return st.Open(ctx, key)
	}()
	if err != nil {
		return nil, err
	}
	r, err := OpenCtx(ctx, h, h.Size(), append([]Option{WithCacheKey(st.String() + key)}, opts...)...)
	if err != nil {
		h.Close()
		return nil, err
	}
	return &StoreReader{Reader: r, h: h}, nil
}

// EnableDiskTier attaches a disk spill tier for decoded bricks to a brick
// cache: fields evicted from the memory LRU are serialized (field wire
// format) into budgeted spill files under dir and transparently reloaded —
// and re-promoted — on the next access. Call before the cache is shared.
func EnableDiskTier(c *cache.Cache, dir string, budgetBytes int64) (*cache.DiskTier, error) {
	t, err := cache.NewDiskTier(dir, budgetBytes)
	if err != nil {
		return nil, err
	}
	c.SetDiskTier(t, encodeBrick, decodeBrick)
	return t, nil
}

func encodeBrick(v any) ([]byte, bool) {
	f, ok := v.(*field.Field)
	if !ok {
		return nil, false
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

func decodeBrick(payload []byte) (any, int64, bool) {
	f, err := field.ReadFromLimit(bytes.NewReader(payload), int64(len(payload)))
	if err != nil {
		return nil, 0, false
	}
	return f, int64(f.Bytes()), true
}
