package reader

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/index"
)

// corruptStreamByte returns a copy of blob with one payload byte of the
// given stream flipped, plus the stream's level and box.
func corruptStreamByte(t *testing.T, blob []byte, si int) ([]byte, index.Stream) {
	t.Helper()
	ix, err := index.ReadFrom(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if si >= len(ix.Streams) {
		t.Fatalf("stream %d out of range (%d streams)", si, len(ix.Streams))
	}
	s := ix.Streams[si]
	bad := append([]byte(nil), blob...)
	bad[s.Offset+s.Len/2] ^= 0x10
	return bad, s
}

// TestReadRejectsCorruptPayload is the wire half of the tentpole: a single
// flipped bit in a compressed stream body must surface as a typed Corrupt
// error from every read method — never as decoded garbage — because the
// footer's per-stream CRC is checked before the codec runs.
func TestReadRejectsCorruptPayload(t *testing.T) {
	h := testHierarchy(t, 32, 5)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	for name, opt := range testOptions(eb) {
		blob := compress(t, h, opt)
		bad, s := corruptStreamByte(t, blob, 0)
		r := open(t, bad)
		if !r.CanVerify() {
			t.Fatalf("%s: freshly written container reports verification unavailable", name)
		}
		_, err := r.ReadLevel(s.Level)
		if err == nil {
			t.Fatalf("%s: corrupt payload read back without error", name)
		}
		if !faultio.IsCorrupt(err) {
			t.Fatalf("%s: corruption error not classified Corrupt: %v", name, err)
		}
		if st := r.Stats(); st.CorruptStreams == 0 {
			t.Fatalf("%s: corrupt stream not counted", name)
		}
	}
}

// TestVerifyDisabledSkipsChecksum proves WithVerify(false) is the escape
// hatch the integrity benchmark measures against: same container, no CRC
// pass, identical data.
func TestVerifyDisabledSkipsChecksum(t *testing.T) {
	h := testHierarchy(t, 32, 5)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	blob := compress(t, h, core.Options{EB: eb})
	checked := open(t, blob)
	unchecked := open(t, blob, WithVerify(false))
	for l := 0; l < checked.NumLevels(); l++ {
		a, err := checked.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		b, err := unchecked.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("level %d: verified and unverified reads differ", l)
		}
	}
}

// TestRetryAbsorbsTransientFaults exercises the serving path's fault
// tolerance end to end: a source that injects transient errors (and
// nothing else) must cost retries, not failures.
func TestRetryAbsorbsTransientFaults(t *testing.T) {
	h := testHierarchy(t, 32, 5)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	blob := compress(t, h, core.Options{EB: eb, Arrangement: core.ArrangeTAC})
	var inj *faultio.FaultReaderAt
	r := open(t, blob,
		WithSourceWrap(func(src io.ReaderAt) io.ReaderAt {
			inj = faultio.NewFaultReaderAt(src, faultio.FaultPlan{Seed: 11, TransientProb: 0.4, MaxFaults: 16})
			return inj
		}),
		WithRetryPolicy(faultio.RetryPolicy{MaxAttempts: 6}),
	)
	want, err := core.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < r.NumLevels(); l++ {
		got, err := r.ReadLevel(l)
		if err != nil {
			t.Fatalf("ReadLevel(%d) under transient faults: %v", l, err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d corrupted by transient faults", l)
		}
	}
	if inj.Faults() == 0 {
		t.Fatal("injector faulted nothing; test proves nothing")
	}
	if st := r.Stats(); st.Retries == 0 {
		t.Fatal("no retries counted despite injected transients")
	}
}

// TestReadHonorsContext: a canceled context stops brick fetches.
func TestReadHonorsContext(t *testing.T) {
	h := testHierarchy(t, 32, 5)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	blob := compress(t, h, core.Options{EB: eb, Arrangement: core.ArrangeTAC})
	r := open(t, blob)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ReadLevelCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadLevelCtx on canceled context: %v", err)
	}
	if _, _, err := r.ReadBoxCtx(ctx, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadBoxCtx on canceled context: %v", err)
	}
	if _, err := r.ReadSliceCtx(ctx, AxisZ, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadSliceCtx on canceled context: %v", err)
	}
	if st := r.Stats(); st.BackendDecodes != 0 {
		t.Fatalf("%d streams decoded under a canceled context", st.BackendDecodes)
	}
}

// TestVerifyScrub runs the scrub over a clean container, a corrupted one,
// and a container whose footer predates checksums (decode-verified).
func TestVerifyScrub(t *testing.T) {
	h := testHierarchy(t, 32, 5)
	eb := h.Levels[0].Data.ValueRange() * 1e-3
	blob := compress(t, h, core.Options{EB: eb, Arrangement: core.ArrangeTAC})

	clean := open(t, blob)
	res, err := clean.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Checked != res.Streams || res.Streams == 0 {
		t.Fatalf("clean scrub: %+v", res)
	}

	bad, s := corruptStreamByte(t, blob, 1)
	res, err = open(t, bad).Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 1 {
		t.Fatalf("corrupt scrub found %d faults, want 1: %v", len(res.Faults), res.Faults)
	}
	f := res.Faults[0]
	if f.Level != s.Level || f.Box != s.Box || !faultio.IsCorrupt(f.Err) {
		t.Fatalf("fault misattributed: %v (stream L%dB%d)", f, s.Level, s.Box)
	}

	// Rewrite the footer without checksums: the scrub must fall back to
	// decode-verification and still pass on clean bytes.
	body, ok := index.Locate(blob)
	if !ok {
		t.Fatal("no footer")
	}
	ix, err := index.ReadFrom(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	ix.StreamCRCs = false
	old := ix.AppendFooter(append([]byte(nil), blob[:body]...))
	r := open(t, old)
	if r.CanVerify() {
		t.Fatal("checksum-free footer reports verification available")
	}
	res, err = r.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Decoded != res.Streams || res.Checked != 0 {
		t.Fatalf("decode-verified scrub: %+v", res)
	}
}
