package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/field"
	"repro/internal/store"
	"repro/internal/synth"
)

// storeBackendFixtures builds two distinct container blobs (versions A and
// B of the same field id) and their expected level-0 reconstructions.
func storeBackendFixtures(t *testing.T) (blobA, blobB []byte, wantA, wantB *field.Field) {
	t.Helper()
	fA := synth.Generate(synth.Nyx, 32, 3)
	fB := synth.Generate(synth.RT, 32, 9)
	blob := func(f *field.Field) []byte {
		res, err := repro.CompressUniform(f, repro.Options{RelEB: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Blob
	}
	return blob(fA), blob(fB), expectedLevels(t, fA)[0], expectedLevels(t, fB)[0]
}

// storeBackends returns each backend pre-loaded with blobA under nyx.mrw,
// plus a replace function swapping in new bytes the way that backend's
// deployment would: an atomic rename for the directory, Install for the
// in-memory store, a file replace at the origin for HTTP.
func storeBackends(t *testing.T, blobA []byte) []struct {
	name    string
	cfg     Config
	replace func([]byte)
} {
	t.Helper()

	install := func(st store.Store, blob []byte) {
		err := st.Install(context.Background(), "nyx.mrw", func(w io.Writer) error {
			_, werr := w.Write(blob)
			return werr
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	fsDir := t.TempDir()
	fsStore, err := store.NewFS(fsDir)
	if err != nil {
		t.Fatal(err)
	}
	install(fsStore, blobA)

	mem := store.NewMem()
	install(mem, blobA)

	httpDir := t.TempDir()
	replaceAtOrigin := func(blob []byte) {
		// Write + rename, like a publisher would; bump mtime explicitly so
		// the origin's size+mtime ETag always changes.
		tmp := filepath.Join(httpDir, ".nyx.tmp")
		if err := os.WriteFile(tmp, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, filepath.Join(httpDir, "nyx.mrw")); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(httpDir, "nyx.mrw"), time.Now(), time.Now().Add(time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	replaceAtOrigin(blobA)
	origin := httptest.NewServer(store.OriginHandler(httpDir))
	t.Cleanup(origin.Close)
	httpStore, err := store.NewHTTP(origin.URL, store.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}

	return []struct {
		name    string
		cfg     Config
		replace func([]byte)
	}{
		{"fs", Config{Store: fsStore, CacheBytes: 32 << 20, MaxIngestBytes: 1 << 30, CacheShards: 4},
			func(b []byte) { install(fsStore, b) }},
		{"mem", Config{Store: mem, CacheBytes: 32 << 20, MaxIngestBytes: 1 << 30, CacheShards: 4},
			func(b []byte) { install(mem, b) }},
		{"http", Config{Store: httpStore, CacheBytes: 32 << 20, MaxIngestBytes: 1 << 30, CacheShards: 4},
			replaceAtOrigin},
	}
}

// TestRevalidationAcrossBackends locks replace-while-serving over every
// storage backend: after the stored container is swapped, the very next
// request serves the new version — the per-lookup identity probe (fstat
// for the directory backend, ETag HEAD for HTTP) detects the replacement
// and drops the stale reader, its summary, and its cached bricks together.
func TestRevalidationAcrossBackends(t *testing.T) {
	blobA, blobB, wantA, wantB := storeBackendFixtures(t)
	for _, be := range storeBackends(t, blobA) {
		t.Run(be.name, func(t *testing.T) {
			s, err := New(be.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.handler())
			t.Cleanup(func() { ts.Close(); s.close() })
			url := ts.URL + "/v1/field/nyx/level/0"

			code, body, h1 := get(t, url)
			if code != 200 {
				t.Fatalf("GET A: %d %s", code, body)
			}
			if !parseRawField(t, body).Equal(wantA) {
				t.Fatal("version A reconstruction differs")
			}
			etagA := h1.Get("ETag")
			if etagA == "" || strings.HasPrefix(etagA, "W/") {
				t.Fatalf("want a strong ETag on an intact response, got %q", etagA)
			}

			be.replace(blobB)

			code, body, h2 := get(t, url)
			if code != 200 {
				t.Fatalf("GET B: %d %s", code, body)
			}
			if !parseRawField(t, body).Equal(wantB) {
				t.Fatal("request after replace did not serve the new version")
			}
			if h2.Get("ETag") == etagA {
				t.Fatal("ETag unchanged across a content replace")
			}
		})
	}
}

// TestRevalidateEverySpacing locks the probe-spacing contract: with a long
// RevalidateEvery the server intentionally trusts its open reader and
// keeps serving the old version inside the window; with the default (probe
// every lookup) the replacement is picked up immediately — that case is
// TestRevalidationAcrossBackends.
func TestRevalidateEverySpacing(t *testing.T) {
	blobA, blobB, wantA, _ := storeBackendFixtures(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "nyx.mrw"), blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Dir: dir, CacheBytes: 32 << 20, MaxIngestBytes: 1 << 30, CacheShards: 4,
		RevalidateEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { ts.Close(); s.close() })
	url := ts.URL + "/v1/field/nyx/level/0"

	if code, body, _ := get(t, url); code != 200 || !parseRawField(t, body).Equal(wantA) {
		t.Fatalf("GET A: %d", code)
	}
	if err := os.WriteFile(filepath.Join(dir, "nyx.mrw"), blobB, 0o644); err != nil {
		t.Fatal(err)
	}
	code, body, _ := get(t, url)
	if code != 200 {
		t.Fatalf("GET inside window: %d %s", code, body)
	}
	if !parseRawField(t, body).Equal(wantA) {
		t.Fatal("server probed inside the revalidation window (want the old version served)")
	}
}

// TestStoreMetricsExposed locks the new observability series: a server
// with a disk cache tier exports the mrserve_disk_tier_* family, and the
// coalesced-decode counter is always present.
func TestStoreMetricsExposed(t *testing.T) {
	blobA, _, _, _ := storeBackendFixtures(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "nyx.mrw"), blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Dir: dir, CacheBytes: 32 << 20, MaxIngestBytes: 1 << 30, CacheShards: 4,
		DiskCacheDir: t.TempDir(), DiskCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { ts.Close(); s.close() })

	if code, _, _ := get(t, ts.URL+"/v1/field/nyx/level/0"); code != 200 {
		t.Fatalf("level: %d", code)
	}
	code, body, _ := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, series := range []string{
		"mrserve_coalesced_reads_total",
		"mrserve_disk_tier_hits_total",
		"mrserve_disk_tier_misses_total",
		"mrserve_disk_tier_writes_total",
		"mrserve_disk_tier_evictions_total",
		"mrserve_disk_tier_bytes",
		"mrserve_disk_tier_budget_bytes",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestConditionalGet locks the conditional-request protocol on the read
// endpoints: an intact response carries a strong ETag and a cacheable
// Cache-Control; If-None-Match with that validator answers 304 with an
// empty body (skipping decode entirely); a stale validator gets the full
// 200; level and slice validators are distinct (different representations
// of the same container version).
func TestConditionalGet(t *testing.T) {
	ts, _, _ := newTestServer(t)
	levelURL := ts.URL + "/v1/field/nyx/level/0"

	code, _, h := get(t, levelURL)
	if code != 200 {
		t.Fatalf("GET: %d", code)
	}
	etag := h.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("want a strong quoted ETag, got %q", etag)
	}
	if cc := h.Get("Cache-Control"); !strings.Contains(cc, "max-age") {
		t.Fatalf("intact response Cache-Control = %q, want cacheable", cc)
	}

	cond := func(url, inm string) (int, []byte, http.Header) {
		t.Helper()
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b, resp.Header
	}

	if code, b, h304 := cond(levelURL, etag); code != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("If-None-Match match: %d with %d body bytes", code, len(b))
	} else if h304.Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", h304.Get("ETag"), etag)
	}
	if code, _, _ := cond(levelURL, `"stale-validator"`); code != 200 {
		t.Fatalf("stale If-None-Match: %d, want 200", code)
	}
	if code, _, _ := cond(levelURL, fmt.Sprintf(`W/%s, "other", %s`, etag, etag)); code != http.StatusNotModified {
		t.Fatal("ETag list with a match not honored")
	}
	if code, _, _ := cond(levelURL, "*"); code != http.StatusNotModified {
		t.Fatal(`If-None-Match: * not honored`)
	}

	// The slice representation has its own validator, distinct from the
	// level's, and honors conditionals the same way.
	sliceURL := ts.URL + "/v1/field/nyx/slice?axis=z&k=1&level=0"
	code, _, hs := get(t, sliceURL)
	if code != 200 {
		t.Fatalf("GET slice: %d", code)
	}
	setag := hs.Get("ETag")
	if setag == "" || setag == etag {
		t.Fatalf("slice ETag %q must be set and distinct from level ETag %q", setag, etag)
	}
	if code, _, _ := cond(sliceURL, setag); code != http.StatusNotModified {
		t.Fatalf("slice If-None-Match match: %d", code)
	}

	// The JSON representation of the same level is another variant again.
	code, _, hj := get(t, levelURL+"?format=json")
	if code != 200 {
		t.Fatalf("GET json: %d", code)
	}
	if jtag := hj.Get("ETag"); jtag == "" || jtag == etag {
		t.Fatalf("json ETag %q must be set and distinct from binary ETag %q", jtag, etag)
	}
}
