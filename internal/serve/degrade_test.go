package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/internal/index"
	"repro/internal/reader"
)

// corruptLevelOnDisk flips one payload byte in every stream of the given
// level of a served container, in place. The footer (and its checksums) is
// untouched, so the damage is exactly what a scrub or a verified read must
// catch. The file's mtime is bumped so the server's stat-revalidation drops
// any already-open reader.
func corruptLevelOnDisk(t *testing.T, dir, id string, level int) {
	t.Helper()
	path := filepath.Join(dir, id+".mrw")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.ReadFrom(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, s := range ix.Streams {
		if s.Level == level {
			blob[s.Offset+s.Len/2] ^= 0x20
			n++
		}
	}
	if n == 0 {
		t.Fatalf("no streams at level %d", level)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
}

// metricValue extracts one un-labeled counter value from Prometheus text.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestLevelFallsBackOnCorruption is the degradation half of the tentpole: a
// corrupt finest level must not 500 — the response falls back to the next
// intact level, flagged with X-Degraded, and the level is quarantined so
// the second request skips the corrupt bytes entirely.
func TestLevelFallsBackOnCorruption(t *testing.T) {
	ts, s, want := newTestServer(t)
	corruptLevelOnDisk(t, s.dataDir(), "nyx", 0)

	code, body, hdr := get(t, ts.URL+"/v1/field/nyx/level/0")
	if code != 200 {
		t.Fatalf("corrupt level 0: %d %s", code, body)
	}
	deg := hdr.Get("X-Degraded")
	if !strings.Contains(deg, "requested-level=0") || !strings.Contains(deg, "reason=corrupt") {
		t.Fatalf("X-Degraded %q", deg)
	}
	served, err := strconv.Atoi(hdr.Get("X-Mrw-Level"))
	if err != nil || served == 0 {
		t.Fatalf("served level %q", hdr.Get("X-Mrw-Level"))
	}
	got := parseRawField(t, body)
	if !got.Equal(want["nyx"].Levels[served].Data) {
		t.Fatalf("degraded response is not level %d's data", served)
	}

	// Second request: the corrupt level is quarantined, so the fallback is
	// immediate (no re-read of bad bytes) and still explicitly flagged.
	code, body, hdr = get(t, ts.URL+"/v1/field/nyx/level/0")
	if code != 200 {
		t.Fatalf("quarantined level 0: %d %s", code, body)
	}
	if deg := hdr.Get("X-Degraded"); !strings.Contains(deg, "reason=quarantined") {
		t.Fatalf("second X-Degraded %q", deg)
	}
	if !parseRawField(t, body).Equal(want["nyx"].Levels[served].Data) {
		t.Fatal("quarantined fallback served wrong data")
	}

	// The resilience picture shows up in /healthz...
	code, body, _ = get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz lost its ok: %s", body)
	}
	var hz struct {
		Quarantined int   `json:"quarantined_levels"`
		Events      int64 `json:"quarantine_events"`
		Degraded    int64 `json:"degraded_responses"`
		Corrupt     int64 `json:"corrupt_streams"`
		Fields      map[string]fieldHealth
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Quarantined != 1 || hz.Events != 1 || hz.Degraded != 2 || hz.Corrupt == 0 {
		t.Fatalf("healthz counters: %+v (%s)", hz, body)
	}
	if fh := hz.Fields["nyx"]; fh.CorruptStreams == 0 || len(fh.QuarantinedLevels) != 1 || fh.QuarantinedLevels[0] != 0 {
		t.Fatalf("per-field health: %+v", hz.Fields)
	}

	// ...and in /metrics.
	_, body, _ = get(t, ts.URL+"/metrics")
	text := string(body)
	if !strings.Contains(text, `mrserve_degraded_responses_total{endpoint="level"} 2`) {
		t.Fatalf("metrics missing degraded counter:\n%s", text)
	}
	if metricValue(t, text, "mrserve_quarantine_events_total") != 1 {
		t.Fatalf("quarantine events:\n%s", text)
	}
	if metricValue(t, text, "mrserve_quarantined_levels") != 1 {
		t.Fatalf("quarantined gauge:\n%s", text)
	}
	if metricValue(t, text, "mrserve_corrupt_streams_total") == 0 {
		t.Fatalf("corrupt streams not counted:\n%s", text)
	}
	if !strings.Contains(text, `mrserve_field_corrupt_streams_total{field="nyx"}`) {
		t.Fatalf("per-field corruption missing:\n%s", text)
	}
}

// TestSliceFallsBackAndRescalesK: on fallback the plane index is rescaled
// to the coarser grid so the served slice covers the same physical cut.
func TestSliceFallsBackAndRescalesK(t *testing.T) {
	ts, s, want := newTestServer(t)
	corruptLevelOnDisk(t, s.dataDir(), "nyx", 0)
	code, body, hdr := get(t, ts.URL+"/v1/field/nyx/slice?axis=z&k=6&level=0")
	if code != 200 {
		t.Fatalf("degraded slice: %d %s", code, body)
	}
	if deg := hdr.Get("X-Degraded"); !strings.Contains(deg, "reason=corrupt") {
		t.Fatalf("X-Degraded %q", deg)
	}
	served, _ := strconv.Atoi(hdr.Get("X-Mrw-Level"))
	servedK, _ := strconv.Atoi(hdr.Get("X-Mrw-K"))
	if served == 0 || servedK != 6>>uint(served) {
		t.Fatalf("served level %d k %d", served, servedK)
	}
	got := parseRawField(t, body)
	if !got.Equal(want["nyx"].Levels[served].Data.SliceZ(servedK)) {
		t.Fatal("degraded slice data wrong")
	}
}

// TestAllLevelsCorrupt: when nothing intact remains the failure is a typed
// 500 naming the corruption — degradation has a floor, not a lie.
func TestAllLevelsCorrupt(t *testing.T) {
	ts, s, want := newTestServer(t)
	for l := range want["nyx"].Levels {
		corruptLevelOnDisk(t, s.dataDir(), "nyx", l)
	}
	code, body, _ := get(t, ts.URL+"/v1/field/nyx/level/0")
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "corrupt") {
		t.Fatalf("all-corrupt read: %d %s", code, body)
	}
}

// TestServerAbsorbsTransientFaults wires a deterministic transient-fault
// injector under every reader (the same seam -fault-inject uses) and
// proves the serving path retries through it: every response stays 200
// with intact data, and the retries are visible in /metrics.
func TestServerAbsorbsTransientFaults(t *testing.T) {
	ts, s, want := newTestServer(t)
	// TransientProb 1 with MaxFaults 3: the first three reads fail once
	// each (deterministically, whatever the seed), then the source runs
	// clean — well inside the 8-attempt budget, so no request may fail.
	s.readerOpts = []reader.Option{
		reader.WithSourceWrap(func(src io.ReaderAt) io.ReaderAt {
			return faultio.NewFaultReaderAt(src, faultio.FaultPlan{Seed: 3, TransientProb: 1, MaxFaults: 3})
		}),
		reader.WithRetryPolicy(faultio.RetryPolicy{MaxAttempts: 8}),
	}
	for id, h := range want {
		for l := range h.Levels {
			code, body, _ := get(t, fmt.Sprintf("%s/v1/field/%s/level/%d", ts.URL, id, l))
			if code != 200 {
				t.Fatalf("%s level %d under transients: %d %s", id, l, code, body)
			}
			if !parseRawField(t, body).Equal(h.Levels[l].Data) {
				t.Fatalf("%s level %d corrupted by transient faults", id, l)
			}
		}
	}
	_, body, _ := get(t, ts.URL+"/metrics")
	if metricValue(t, string(body), "mrserve_read_retries_total") == 0 {
		t.Fatal("no retries counted despite injected transients")
	}
}

// TestHandlerPanicBecomesCounted500: the instrument wrapper is the last
// line of panic defense.
func TestHandlerPanicBecomesCounted500(t *testing.T) {
	_, s, _ := newTestServer(t)
	h := s.instrument("level", func(http.ResponseWriter, *http.Request) { panic("boom") })
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/field/x/level/0", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d", rec.Code)
	}
	if s.metrics.panics.Load() != 1 || s.metrics.errors["level"].Load() != 1 {
		t.Fatalf("panic not counted: panics=%d errors=%d",
			s.metrics.panics.Load(), s.metrics.errors["level"].Load())
	}
}

// TestQuarantineTTL exercises the negative cache directly with a fake
// clock: entries expire, refresh, and are forgotten per field.
func TestQuarantineTTL(t *testing.T) {
	q := newQuarantine(time.Minute)
	base := time.Now()
	cur := base
	q.now = func() time.Time { return cur }

	if !q.add("f", 0) {
		t.Fatal("first add not counted as new")
	}
	if q.add("f", 0) {
		t.Fatal("refresh counted as new")
	}
	if !q.active("f", 0) || q.active("f", 1) || q.active("g", 0) {
		t.Fatal("active membership wrong")
	}
	cur = base.Add(2 * time.Minute)
	if q.active("f", 0) {
		t.Fatal("entry survived its TTL")
	}
	if !q.add("f", 0) {
		t.Fatal("re-add after expiry not counted as new")
	}
	q.add("f", 2)
	q.add("g", 1)
	if lv := q.levelsFor("f"); len(lv) != 2 || lv[0] != 0 || lv[1] != 2 {
		t.Fatalf("levelsFor: %v", lv)
	}
	if n := q.activeCount(); n != 3 {
		t.Fatalf("activeCount %d", n)
	}
	q.forget("f")
	if q.active("f", 0) || q.active("f", 2) || !q.active("g", 1) {
		t.Fatal("forget dropped the wrong entries")
	}
}

// TestReplaceClearsQuarantine: re-ingesting (or externally replacing) a
// container wipes its corruption history — new bytes, fresh chance.
func TestReplaceClearsQuarantine(t *testing.T) {
	_, s, _ := newTestServer(t)
	s.quar.add("nyx", 0)
	s.invalidateField("nyx")
	if s.quar.active("nyx", 0) {
		t.Fatal("quarantine survived container replacement")
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := parseFaultPlan("seed=7, transient=0.05,maxfaults=100,latency=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || plan.TransientProb != 0.05 || plan.MaxFaults != 100 || plan.Latency != 2*time.Millisecond {
		t.Fatalf("plan: %+v", plan)
	}
	for _, bad := range []string{"bogus=1", "transient", "seed=x"} {
		if _, err := parseFaultPlan(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
