package serve

// Graceful degradation: mrserve turns stream-level corruption into coarser
// answers instead of 500s. A level whose streams fail integrity checks is
// quarantined (a TTL'd negative cache, so a repaired or replaced container
// gets retried without a restart), and level/slice requests fall back to the
// coarsest intact level, flagged with an X-Degraded header so clients can
// tell a downsampled answer from the real one. Transient faults never
// degrade — the reader's retry layer absorbs them, and if they outlast the
// retry budget the request fails 503 so the client retries against a
// healthy replica instead of silently getting coarse data.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultio"
	"repro/internal/field"
	"repro/internal/reader"
)

// quarantine is a TTL'd negative cache of (field, level) pairs whose
// streams failed integrity verification. Entries expire so a container
// repaired in place is retried; entries for a field are dropped eagerly
// when its container is replaced or re-ingested.
type quarantine struct {
	ttl time.Duration
	now func() time.Time // test seam

	mu  sync.Mutex
	bad map[string]time.Time // id/level -> expiry
}

func newQuarantine(ttl time.Duration) *quarantine {
	return &quarantine{ttl: ttl, now: time.Now, bad: make(map[string]time.Time)}
}

func qkey(id string, level int) string { return id + "/" + strconv.Itoa(level) }

// add quarantines one level of a field and reports whether the entry is new
// (false when it only refreshed an active quarantine's expiry).
func (q *quarantine) add(id string, level int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	k := qkey(id, level)
	exp, ok := q.bad[k]
	q.bad[k] = q.now().Add(q.ttl)
	return !ok || q.now().After(exp)
}

// active reports whether the level is currently quarantined, lazily
// dropping an expired entry.
func (q *quarantine) active(id string, level int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	k := qkey(id, level)
	exp, ok := q.bad[k]
	if !ok {
		return false
	}
	if q.now().After(exp) {
		delete(q.bad, k)
		return false
	}
	return true
}

// forget drops every quarantine entry of a field (the container was
// replaced; its history is meaningless).
func (q *quarantine) forget(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for k := range q.bad {
		if strings.HasPrefix(k, id+"/") {
			delete(q.bad, k)
		}
	}
}

// activeCount returns the number of live entries, pruning expired ones.
func (q *quarantine) activeCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	for k, exp := range q.bad {
		if now.After(exp) {
			delete(q.bad, k)
		}
	}
	return len(q.bad)
}

// levelsFor lists the quarantined levels of one field, sorted.
func (q *quarantine) levelsFor(id string) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	var levels []int
	for k, exp := range q.bad {
		rest, ok := strings.CutPrefix(k, id+"/")
		if !ok {
			continue
		}
		if now.After(exp) {
			delete(q.bad, k)
			continue
		}
		if l, err := strconv.Atoi(rest); err == nil {
			levels = append(levels, l)
		}
	}
	for i := 1; i < len(levels); i++ { // insertion sort; a handful of levels
		for j := i; j > 0 && levels[j] < levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	return levels
}

// quarantineLevel records a corrupt level in the negative cache and counts
// the event.
func (s *Server) quarantineLevel(id string, level int) {
	if s.quar.add(id, level) {
		s.metrics.quarantineEvents.Add(1)
	}
}

// degradedHeader is the X-Degraded value: machine-parseable key=value
// pairs naming what was asked for, what was served, and why.
func degradedHeader(requested, served int, reason string) string {
	return fmt.Sprintf("requested-level=%d; served-level=%d; reason=%s", requested, served, reason)
}

// readLevelDegraded reads level l of a field, falling back level by level
// toward the coarsest when the requested one is quarantined or turns out
// corrupt. It returns the field, the level actually served, and the
// degradation reason ("" when the requested level was served intact).
// Non-corrupt errors — context cancellation, transient faults that
// outlasted the retry budget, missing files — abort the walk: degradation
// is a remedy for bad bytes, not for an unreachable backend.
func (s *Server) readLevelDegraded(ctx context.Context, rd *reader.Reader, id string, l int) (*field.Field, int, string, error) {
	reason := ""
	var lastErr error
	for lv := l; lv < rd.NumLevels(); lv++ {
		if s.quar.active(id, lv) {
			if reason == "" {
				reason = "quarantined"
			}
			continue
		}
		f, err := rd.ReadLevelCtx(ctx, lv)
		if err == nil {
			return f, lv, reason, nil
		}
		if ctx.Err() != nil || !faultio.IsCorrupt(err) {
			return nil, lv, "", err
		}
		s.quarantineLevel(id, lv)
		reason = "corrupt"
		lastErr = err
	}
	if lastErr == nil {
		lastErr = faultio.Corruptf("field %s: levels %d..%d all quarantined", id, l, rd.NumLevels()-1)
	}
	return nil, -1, "", lastErr
}

// readSliceDegraded is readLevelDegraded for plane extraction: on fallback
// the plane index is rescaled to the coarser grid (k >> levels dropped,
// clamped), so the served slice covers the same physical cut.
func (s *Server) readSliceDegraded(ctx context.Context, rd *reader.Reader, id string, axis reader.Axis, k, l int) (*field.Field, int, int, string, error) {
	reason := ""
	var lastErr error
	for lv := l; lv < rd.NumLevels(); lv++ {
		if s.quar.active(id, lv) {
			if reason == "" {
				reason = "quarantined"
			}
			continue
		}
		kk := k >> uint(lv-l)
		nx, ny, nz := rd.Index().LevelDims(lv)
		if dim := []int{nx, ny, nz}[axis]; kk >= dim {
			kk = dim - 1
		}
		f, err := rd.ReadSliceCtx(ctx, axis, kk, lv)
		if err == nil {
			return f, lv, kk, reason, nil
		}
		if ctx.Err() != nil || !faultio.IsCorrupt(err) {
			return nil, lv, kk, "", err
		}
		s.quarantineLevel(id, lv)
		reason = "corrupt"
		lastErr = err
	}
	if lastErr == nil {
		lastErr = faultio.Corruptf("field %s: levels %d..%d all quarantined", id, l, rd.NumLevels()-1)
	}
	return nil, -1, -1, "", lastErr
}

// ParseFaultPlan parses the -fault-inject spec: comma-separated key=value
// pairs (seed, transient, bitflip, shortread, latency, maxfaults), e.g.
// "seed=7,transient=0.05,maxfaults=100". Used by the fault-injected smoke
// test in CI and for resilience drills against a staging instance.
func ParseFaultPlan(spec string) (faultio.FaultPlan, error) {
	return parseFaultPlan(spec)
}

func parseFaultPlan(spec string) (faultio.FaultPlan, error) {
	plan := faultio.FaultPlan{Seed: 1}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return plan, fmt.Errorf("fault spec %q: want key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			plan.Seed, err = strconv.ParseInt(val, 10, 64)
		case "transient":
			plan.TransientProb, err = strconv.ParseFloat(val, 64)
		case "bitflip":
			plan.BitFlipProb, err = strconv.ParseFloat(val, 64)
		case "shortread":
			plan.ShortReadProb, err = strconv.ParseFloat(val, 64)
		case "latency":
			plan.Latency, err = time.ParseDuration(val)
		case "maxfaults":
			plan.MaxFaults, err = strconv.Atoi(val)
		default:
			return plan, fmt.Errorf("fault spec: unknown key %q", key)
		}
		if err != nil {
			return plan, fmt.Errorf("fault spec %q: %v", kv, err)
		}
	}
	return plan, nil
}
