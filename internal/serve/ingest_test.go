package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/synth"
	"repro/internal/writer"
)

// rawFieldBody serializes a field in the PUT ingest wire format.
func rawFieldBody(t *testing.T, f *field.Field) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

func doPut(t *testing.T, url string, body io.Reader) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// expectedLevels compresses a field with the ingest defaults and returns
// the per-level reconstructions the server should serve for it.
func expectedLevels(t *testing.T, f *field.Field) []*field.Field {
	t.Helper()
	res, err := repro.CompressUniform(f, repro.Options{RelEB: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.Decompress(res.Blob)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*field.Field, len(h.Levels))
	for li := range h.Levels {
		out[li] = h.Levels[li].Data
	}
	return out
}

// TestIngestEndpoint uploads a field, reads it back at every level,
// replaces it with a second upload, and checks the served data flips —
// through the reader, the listing, and the brick cache.
func TestIngestEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := newServer(dir, 64<<20, 1<<30, 8)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { ts.Close(); s.close() })

	fA := synth.Generate(synth.Nyx, 32, 3)
	code, body := doPut(t, ts.URL+"/v1/field/up", rawFieldBody(t, fA))
	if code != http.StatusCreated {
		t.Fatalf("first PUT: %d %s", code, body)
	}
	if !strings.Contains(string(body), `"container_bytes"`) {
		t.Fatalf("PUT response: %s", body)
	}
	if _, err := os.Stat(filepath.Join(dir, "up.mrw")); err != nil {
		t.Fatalf("container not installed: %v", err)
	}
	wantA := expectedLevels(t, fA)
	for li, want := range wantA {
		code, lvl, _ := get(t, fmt.Sprintf("%s/v1/field/up/level/%d", ts.URL, li))
		if code != 200 {
			t.Fatalf("level %d: %d", li, code)
		}
		if !parseRawField(t, lvl).Equal(want) {
			t.Fatalf("level %d differs from local compression with ingest defaults", li)
		}
	}
	// Listing reflects the ingested field.
	code, list, _ := get(t, ts.URL+"/v1/fields")
	if code != 200 || !strings.Contains(string(list), `"up"`) {
		t.Fatalf("listing after ingest: %d %s", code, list)
	}

	// Replace with different data: second PUT is a 200, and every level —
	// including the ones just warmed into the brick cache — must flip.
	fB := synth.Generate(synth.RT, 32, 9)
	code, body = doPut(t, ts.URL+"/v1/field/up", rawFieldBody(t, fB))
	if code != http.StatusOK {
		t.Fatalf("replacing PUT: %d %s", code, body)
	}
	wantB := expectedLevels(t, fB)
	for li, want := range wantB {
		_, lvl, _ := get(t, fmt.Sprintf("%s/v1/field/up/level/%d", ts.URL, li))
		got := parseRawField(t, lvl)
		if !got.Equal(want) {
			if got.Equal(wantA[li]) {
				t.Fatalf("level %d still serves the replaced container (stale reader/cache)", li)
			}
			t.Fatalf("level %d differs from expected after replacement", li)
		}
	}
	// The ingest endpoint shows up in metrics.
	_, metrics, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `mrserve_requests_total{endpoint="ingest"} 2`) {
		t.Fatalf("ingest metrics missing:\n%s", metrics)
	}
}

func TestIngestRejections(t *testing.T) {
	dir := t.TempDir()
	s, err := newServer(dir, 64<<20, 64<<10, 8) // 64 KiB ingest cap
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { ts.Close(); s.close() })

	f := synth.Generate(synth.Nyx, 32, 3) // 256 KiB raw: over the cap
	if code, _ := doPut(t, ts.URL+"/v1/field/big", rawFieldBody(t, f)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap PUT: %d", code)
	}
	// A tiny body whose header promises a huge field must be rejected from
	// the header alone — before anything is allocated for it.
	hdr := make([]byte, 24)
	for _, off := range []int{0, 8, 16} {
		hdr[off] = 0 // 2048 = 0x800
		hdr[off+1] = 8
	}
	if code, _ := doPut(t, ts.URL+"/v1/field/huge", bytes.NewReader(hdr)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge-header PUT: %d", code)
	}
	if code, _ := doPut(t, ts.URL+"/v1/field/..%2Fetc", rawFieldBody(t, f)); code != http.StatusBadRequest {
		t.Fatalf("path-traversal PUT: %d", code)
	}
	if code, _ := doPut(t, ts.URL+"/v1/field/x?compressor=lzma", rawFieldBody(t, f)); code != http.StatusBadRequest {
		t.Fatalf("unknown compressor: %d", code)
	}
	if code, _ := doPut(t, ts.URL+"/v1/field/x?releb=-1", rawFieldBody(t, f)); code != http.StatusBadRequest {
		t.Fatalf("bad releb: %d", code)
	}
	if code, _ := doPut(t, ts.URL+"/v1/field/x", strings.NewReader("not a field")); code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", code)
	}
	// Nothing half-written may remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("rejected ingests left files: %v", entries)
	}
}

// TestReplaceWhileServing is the stale-reader regression test: requests
// hammer a field while its container is atomically replaced on disk, and
// (a) no request may fail or see torn data — every response is exactly the
// old or the new reconstruction — and (b) responses must switch to the new
// data once the replacement lands. Run under -race this also proves the
// revalidate/close path is data-race free.
func TestReplaceWhileServing(t *testing.T) {
	dir := t.TempDir()
	fA := synth.Generate(synth.Nyx, 32, 3)
	fB := synth.Generate(synth.RT, 32, 9)
	blob := func(f *field.Field) []byte {
		res, err := repro.CompressUniform(f, repro.Options{RelEB: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Blob
	}
	blobA, blobB := blob(fA), blob(fB)
	path := filepath.Join(dir, "nyx.mrw")
	if err := os.WriteFile(path, blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	wantA, wantB := expectedLevels(t, fA), expectedLevels(t, fB)

	s, err := newServer(dir, 32<<20, 1<<30, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { ts.Close(); s.close() })

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			level := g % 2
			url := fmt.Sprintf("%s/v1/field/nyx/level/%d", ts.URL, level)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					errs <- fmt.Errorf("GET L%d: status %d, %v", level, resp.StatusCode, err)
					return
				}
				got, err := field.ReadFrom(bytes.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("GET L%d: torn payload: %v", level, err)
					return
				}
				if !got.Equal(wantA[level]) && !got.Equal(wantB[level]) {
					errs <- fmt.Errorf("GET L%d: payload is neither old nor new data", level)
					return
				}
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond) // let traffic warm the old reader + cache
	if err := writer.AtomicFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write(blobB)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Fresh data must be served promptly after the swap.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body, _ := get(t, ts.URL+"/v1/field/nyx/level/1")
		if parseRawField(t, body).Equal(wantB[1]) {
			break
		}
		if time.Now().After(deadline) {
			t.Error("server kept serving stale data 10s after the container was replaced")
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// And the flip must be total: both levels now serve B.
	for level := 0; level < 2; level++ {
		_, body, _ := get(t, fmt.Sprintf("%s/v1/field/nyx/level/%d", ts.URL, level))
		if !parseRawField(t, body).Equal(wantB[level]) {
			t.Fatalf("level %d stale after replacement settled", level)
		}
	}
}
