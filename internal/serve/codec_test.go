package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/synth"
)

// codecTestServer builds an empty serving directory.
func codecTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	s, err := newServer(t.TempDir(), 64<<20, 1<<30, 8)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { ts.Close(); s.close() })
	return ts, s
}

// metaLevels fetches /meta and returns the container codec plus the
// per-level codec names.
func metaLevels(t *testing.T, url, id string) (string, []string) {
	t.Helper()
	code, body, _ := get(t, url+"/v1/field/"+id+"/meta")
	if code != http.StatusOK {
		t.Fatalf("meta: %d %s", code, body)
	}
	var meta struct {
		Compressor string `json:"compressor"`
		Levels     []struct {
			Codec string `json:"codec"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	codecs := make([]string, len(meta.Levels))
	for i, l := range meta.Levels {
		codecs[i] = l.Codec
	}
	return meta.Compressor, codecs
}

// TestIngestUnknownCodec400 locks the registry-driven validation: an
// unknown codec name — under either parameter spelling, or inside a
// levelcodecs spec — fails with a 400 whose body enumerates every
// registered codec, so the client learns the vocabulary from the error.
func TestIngestUnknownCodec400(t *testing.T) {
	ts, _ := codecTestServer(t)
	f := synth.Generate(synth.Nyx, 16, 5)
	for _, q := range []string{"codec=lzma", "compressor=lzma", "levelcodecs=0:lzma"} {
		code, body := doPut(t, ts.URL+"/v1/field/x?"+q, rawFieldBody(t, f))
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, code)
		}
		for _, name := range repro.Codecs() {
			if !strings.Contains(string(body), name) {
				t.Fatalf("%s: 400 body does not enumerate %q: %s", q, name, body)
			}
		}
	}
	// Malformed level specs are rejected too.
	for _, q := range []string{"levelcodecs=flate", "levelcodecs=-1:flate", "levelcodecs=0:flate,0:sz3"} {
		if code, body := doPut(t, ts.URL+"/v1/field/x?"+q, rawFieldBody(t, f)); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", q, code, body)
		}
	}
}

// ingestExpectedLevels runs the ingest pipeline locally with the given
// options and returns the per-level reconstructions the server should
// serve.
func ingestExpectedLevels(t *testing.T, f *field.Field, opt repro.Options) []*field.Field {
	t.Helper()
	res, err := repro.CompressUniform(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.Decompress(res.Blob)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*field.Field, len(h.Levels))
	for li := range h.Levels {
		out[li] = h.Levels[li].Data
	}
	return out
}

// TestIngestFlateCodec uploads a field under the lossless codec and checks
// the served container: meta reports FLATE everywhere and every level
// reads back exactly as the local pipeline produces it.
func TestIngestFlateCodec(t *testing.T) {
	ts, _ := codecTestServer(t)
	f := synth.Generate(synth.Nyx, 32, 6)
	if code, body := doPut(t, ts.URL+"/v1/field/mask?codec=flate", rawFieldBody(t, f)); code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}
	comp, codecs := metaLevels(t, ts.URL, "mask")
	if comp != "FLATE" {
		t.Fatalf("meta compressor = %q, want FLATE", comp)
	}
	want := ingestExpectedLevels(t, f, repro.Options{RelEB: 1e-3, Compressor: repro.Flate})
	for li, lc := range codecs {
		if lc != "FLATE" {
			t.Fatalf("level %d codec = %q, want FLATE", li, lc)
		}
		code, body, _ := get(t, fmt.Sprintf("%s/v1/field/mask/level/%d", ts.URL, li))
		if code != http.StatusOK {
			t.Fatalf("level %d: %d", li, code)
		}
		if got := parseRawField(t, body); !got.Equal(want[li]) {
			t.Fatalf("level %d served data differs from local pipeline", li)
		}
	}
}

// TestIngestMixedLevelCodecs uploads with a per-level override — fine
// level error-bounded, coarse level lossless — and checks the mixed (v4)
// container serves both levels correctly with per-level codecs visible in
// meta.
func TestIngestMixedLevelCodecs(t *testing.T) {
	ts, _ := codecTestServer(t)
	f := synth.Generate(synth.Nyx, 32, 7)
	if code, body := doPut(t, ts.URL+"/v1/field/mix?levelcodecs=1:flate", rawFieldBody(t, f)); code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}
	comp, codecs := metaLevels(t, ts.URL, "mix")
	if comp != "SZ3" {
		t.Fatalf("meta compressor = %q, want SZ3", comp)
	}
	if len(codecs) != 2 || codecs[0] != "SZ3" || codecs[1] != "FLATE" {
		t.Fatalf("level codecs = %v, want [SZ3 FLATE]", codecs)
	}
	want := ingestExpectedLevels(t, f, repro.Options{
		RelEB:       1e-3,
		LevelCodecs: map[int]repro.Compressor{1: repro.Flate},
	})
	for li := range want {
		code, body, _ := get(t, fmt.Sprintf("%s/v1/field/mix/level/%d", ts.URL, li))
		if code != http.StatusOK {
			t.Fatalf("level %d: %d", li, code)
		}
		if got := parseRawField(t, body); !got.Equal(want[li]) {
			t.Fatalf("level %d served data differs from local pipeline", li)
		}
	}
}

// TestIngestEntropyLanes uploads with ?lanes=4 and checks the interleaved
// container serves every level byte-exactly as the local pipeline with the
// same lane count, while malformed lane counts fail the ingest with a 400.
func TestIngestEntropyLanes(t *testing.T) {
	ts, _ := codecTestServer(t)
	f := synth.Generate(synth.Nyx, 32, 6)
	if code, body := doPut(t, ts.URL+"/v1/field/il?lanes=4", rawFieldBody(t, f)); code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", code, body)
	}
	want := ingestExpectedLevels(t, f, repro.Options{RelEB: 1e-3, EntropyLanes: 4})
	for li := range want {
		code, body, _ := get(t, fmt.Sprintf("%s/v1/field/il/level/%d", ts.URL, li))
		if code != http.StatusOK {
			t.Fatalf("level %d: %d", li, code)
		}
		if got := parseRawField(t, body); !got.Equal(want[li]) {
			t.Fatalf("level %d served data differs from local pipeline", li)
		}
	}
	for _, q := range []string{"lanes=3", "lanes=-4", "lanes=128", "lanes=zow"} {
		if code, body := doPut(t, ts.URL+"/v1/field/bad?"+q, rawFieldBody(t, f)); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", q, code, body)
		}
	}
}
