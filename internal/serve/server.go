// Package serve implements the mrserve progressive serving daemon as an
// importable library: the HTTP surface (fields/meta/level/slice/ingest), the
// revalidated reader pool over a shared brick cache, corruption quarantine
// with graceful degradation, and the observability plane — per-request
// traces (X-Request-Id, GET /debug/traces), per-endpoint and per-stage
// latency histograms on GET /metrics, and structured access/slow logs.
// cmd/mrserve is a thin flag wrapper around New + Handler; the traffic
// benchmark (mrbench -exp traffic) drives the same Server in-process.
//
// Containers come from a pluggable storage backend (internal/store): a
// local directory, an in-memory object set, or a remote HTTP origin read
// with range requests. The serving semantics — revalidation, quarantine,
// degradation, caching — are identical over every backend.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/reader"
	"repro/internal/store"
)

// server serves a store of .mrw containers over HTTP. Containers are
// opened lazily on first access and kept open while fresh: lookups
// revalidate the object's current identity (fstat on the filesystem
// backend, HEAD on the HTTP one) against the identity the reader holds, so
// a container replaced underneath (PUT ingest, an external copy) is picked
// up on the next request instead of being served stale forever. All readers
// share one brick cache, so the byte budget bounds decoded memory across
// the whole store regardless of how many fields are hot.
type Server struct {
	st             store.Store
	cache          *cache.Cache
	maxIngestBytes int64
	// revalidateEvery spaces identity probes of an open container: 0 means
	// every lookup (the historical behavior, right for local fstat), > 0
	// trusts an open reader for that long between probes (right for remote
	// backends where a probe is a network round trip).
	revalidateEvery time.Duration
	// quar is the corruption negative cache: levels whose streams failed
	// integrity checks, skipped by the degraded read path until they expire.
	quar *quarantine
	// readerOpts is appended to every reader open — the fault-injection and
	// policy seam (-fault-inject, tests).
	readerOpts []reader.Option

	mu      sync.Mutex
	readers map[string]*readerEntry
	// summaries caches /v1/fields entries keyed by id, so listing a large
	// directory does not hold every container open; invalidated when the
	// file's size or mtime changes.
	summaries map[string]cachedSummary

	metrics metricsRegistry
	// obs owns the bounded trace ring (GET /debug/traces), the per-stage
	// latency histograms, and slow-request logging; every instrumented
	// request runs under one of its traces.
	obs *obs.Collector
	// accessLog, when non-nil, receives one structured key=value line per
	// sampled request (and the collector's slow-request lines).
	accessLog *obs.Logger
	logSample *obs.Sampler
}

// DefaultQuarantineTTL bounds how long a corrupt level is written off
// before it is probed again (-quarantine-ttl overrides).
const DefaultQuarantineTTL = time.Minute

// Config configures a Server (the flag surface of cmd/mrserve, importable
// so tests and the traffic benchmark can run the real serving path
// in-process).
type Config struct {
	// Store is the storage backend holding the .mrw containers. When nil,
	// Dir names a local directory instead.
	Store store.Store
	// Dir is the directory of .mrw containers to serve (ignored when Store
	// is set).
	Dir string
	// CacheBytes is the shared brick-cache budget (0 disables caching).
	CacheBytes int64
	// DiskCacheDir, when non-empty, attaches a disk spill tier to the brick
	// cache: bricks evicted from memory land in budgeted spill files there
	// and reload without a backend fetch + decode.
	DiskCacheDir string
	// DiskCacheBytes bounds the spill tier (required > 0 with DiskCacheDir).
	DiskCacheBytes int64
	// RevalidateEvery spaces identity probes of open containers: 0
	// revalidates on every lookup, > 0 trusts an open reader that long
	// between probes (recommended for remote backends, where each probe is
	// a HEAD round trip).
	RevalidateEvery time.Duration
	// MaxIngestBytes caps the raw field size PUT ingest accepts.
	MaxIngestBytes int64
	// CacheShards is the brick cache shard count.
	CacheShards int
	// QuarantineTTL overrides DefaultQuarantineTTL when > 0.
	QuarantineTTL time.Duration
	// TraceRing sizes the recent-trace ring (0 = obs.DefaultRingSize).
	TraceRing int
	// TraceSlow, when > 0, logs every request at least this slow to
	// LogWriter with its span breakdown.
	TraceSlow time.Duration
	// LogSample emits one access-log line per LogSample requests to
	// LogWriter (1 = every request, 0 = no access log).
	LogSample int
	// LogWriter is the structured-log destination (nil disables both the
	// access log and the slow-request log).
	LogWriter io.Writer
	// ReaderOptions is appended to every container open — the
	// fault-injection and policy seam (-fault-inject, tests).
	ReaderOptions []reader.Option
}

// New builds a Server from a Config.
func New(cfg Config) (*Server, error) {
	st := cfg.Store
	if st == nil {
		fsStore, err := store.NewFS(cfg.Dir)
		if err != nil {
			return nil, err
		}
		st = fsStore
	}
	ttl := cfg.QuarantineTTL
	if ttl <= 0 {
		ttl = DefaultQuarantineTTL
	}
	col := obs.NewCollector(cfg.TraceRing)
	logger := obs.NewLogger(cfg.LogWriter)
	if cfg.TraceSlow > 0 {
		col.SetSlowLog(cfg.TraceSlow, logger)
	}
	c := cache.New(cfg.CacheBytes, cfg.CacheShards)
	if cfg.DiskCacheDir != "" {
		if _, err := reader.EnableDiskTier(c, cfg.DiskCacheDir, cfg.DiskCacheBytes); err != nil {
			return nil, fmt.Errorf("mrserve: disk cache tier: %w", err)
		}
	}
	return &Server{
		st:              st,
		cache:           c,
		maxIngestBytes:  cfg.MaxIngestBytes,
		revalidateEvery: cfg.RevalidateEvery,
		quar:            newQuarantine(ttl),
		readerOpts:      cfg.ReaderOptions,
		readers:         make(map[string]*readerEntry),
		summaries:       make(map[string]cachedSummary),
		metrics:         newMetricsRegistry(),
		obs:             col,
		accessLog:       logger,
		logSample:       obs.NewSampler(cfg.LogSample),
	}, nil
}

// cachedSummary is a listing entry plus the object identity it was
// computed from.
type cachedSummary struct {
	summary fieldSummary
	info    store.Info
}

// readerEntry is a per-field open slot. The sync.Once serializes the open
// of one container without holding the server-wide mutex, so a slow open
// (e.g. the sequential fallback scan of a large legacy container) blocks
// only requests for that field. The reference count — one for residence in
// the readers map, one per in-flight request — defers the Close of a
// replaced container until its last in-flight request has finished, so an
// object swap never yanks the reader out from under a response being
// written.
type readerEntry struct {
	once sync.Once
	r    *reader.StoreReader
	err  error
	// info is the identity of the object actually opened (set by the once,
	// under the server mutex); lookups compare it against a fresh Stat of
	// the key to detect replacement.
	info store.Info
	// lastCheck is when the identity was last confirmed against the store
	// (under the server mutex); with RevalidateEvery > 0 a recent enough
	// check lets a lookup skip the Stat round trip.
	lastCheck time.Time

	mu   sync.Mutex
	refs int
}

func (e *readerEntry) acquire() {
	e.mu.Lock()
	e.refs++
	e.mu.Unlock()
}

// release drops one reference and closes the reader when the last holder
// lets go. By the time refs can reach zero the entry's once has completed
// (every holder acquired before using it), so reading e.r without the
// server mutex is safe.
func (e *readerEntry) release() {
	e.mu.Lock()
	e.refs--
	last := e.refs == 0
	e.mu.Unlock()
	if last && e.r != nil {
		e.r.Close()
	}
}

// newServer is the compact constructor tests use.
func newServer(dir string, cacheBytes, maxIngestBytes int64, shards int) (*Server, error) {
	return New(Config{Dir: dir, CacheBytes: cacheBytes, MaxIngestBytes: maxIngestBytes, CacheShards: shards})
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics) // not instrumented: scrapes shouldn't skew latency stats
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/fields", s.instrument("fields", s.handleFields))
	mux.HandleFunc("GET /v1/field/{id}/meta", s.instrument("meta", s.handleMeta))
	mux.HandleFunc("GET /v1/field/{id}/level/{level}", s.instrument("level", s.handleLevel))
	mux.HandleFunc("GET /v1/field/{id}/slice", s.instrument("slice", s.handleSlice))
	mux.HandleFunc("PUT /v1/field/{id}", s.instrument("ingest", s.handleIngest))
	return mux
}

// handler is Handler (the tests' spelling, kept for brevity at call sites).
func (s *Server) handler() http.Handler { return s.Handler() }

// Collector exposes the server's observability collector: the trace ring
// and per-stage histograms (the debug listener mounts its /debug/traces
// from it, the traffic benchmark reads its stage latencies).
func (s *Server) Collector() *obs.Collector { return s.obs }

// TracesHandler serves the recent-trace ring as JSON, newest first
// (?n=limit). Mounted at GET /debug/traces on both the serving mux and the
// opt-in debug listener.
func (s *Server) TracesHandler() http.HandlerFunc { return s.handleTraces }

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			n = parsed
		}
	}
	writeJSON(w, map[string]any{"traces": s.obs.Traces(n)})
}

// EndpointHistograms snapshots the per-endpoint request-latency histograms
// (the traffic benchmark's quantile source).
func (s *Server) EndpointHistograms() map[string]obs.HistogramSnapshot {
	out := make(map[string]obs.HistogramSnapshot, len(endpoints))
	for _, e := range endpoints {
		out[e] = s.metrics.latency[e].Snapshot()
	}
	return out
}

// Close releases every open reader (test teardown / shutdown).
func (s *Server) Close() { s.close() }

// close releases every open reader (test teardown / shutdown).
func (s *Server) close() {
	s.mu.Lock()
	entries := s.readers
	s.readers = make(map[string]*readerEntry)
	s.mu.Unlock()
	for _, e := range entries {
		// Wait out (or forestall) any in-flight open so its FileReader
		// cannot be stored into an orphaned entry and leak.
		e.once.Do(func() {})
		e.release() // the map's reference; closes once in-flight requests drain
	}
}

// FieldIDs lists the ids currently present in the directory.
func (s *Server) FieldIDs() ([]string, error) { return s.fieldIDs() }

// fieldKey maps a field id to its container object key in the store.
func fieldKey(id string) string { return id + ".mrw" }

// dataDir returns the filesystem backend's directory ("" for non-local
// stores) — the hook tests use to damage container bytes on disk.
func (s *Server) dataDir() string {
	if fsStore, ok := s.st.(*store.FS); ok {
		return fsStore.Dir()
	}
	return ""
}

// fieldIDs lists the ids currently present in the store. Backends that
// cannot enumerate (a plain HTTP origin) surface store.ErrUnsupported,
// which the listing endpoint maps to 501.
func (s *Server) fieldIDs() ([]string, error) {
	keys, err := s.st.List(context.Background())
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(keys))
	for _, k := range keys {
		if strings.HasSuffix(k, ".mrw") {
			ids = append(ids, strings.TrimSuffix(k, ".mrw"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// validID rejects ids naming path components before they touch the
// filesystem.
func validID(id string) bool {
	return id != "" && !strings.ContainsAny(id, `/\`) && !strings.Contains(id, "..")
}

// getReader returns the open reader for a field id (opening it on first
// use) plus a release func the caller must invoke once done with it. The
// server mutex covers only the map lookup and freshness bookkeeping; the
// open itself runs under the entry's once and the revalidation Stat runs
// outside any lock, so concurrent requests for other fields are never
// blocked by either.
func (s *Server) getReader(ctx context.Context, id string) (*reader.StoreReader, func(), error) {
	if !validID(id) {
		return nil, nil, errBadID
	}
	key := fieldKey(id)
	var e *readerEntry
	for {
		s.mu.Lock()
		var ok bool
		e, ok = s.readers[id]
		if !ok {
			e = &readerEntry{refs: 1} // the map's reference
			s.readers[id] = e
			e.acquire() // the request's reference
			s.mu.Unlock()
			break
		}
		e.acquire() // the request's reference
		opened := e.r != nil
		info := e.info
		fresh := opened && s.revalidateEvery > 0 && time.Since(e.lastCheck) < s.revalidateEvery
		s.mu.Unlock()
		if !opened {
			break // open in flight; join it below
		}
		if fresh {
			return e.r, e.release, nil
		}
		// Revalidate outside the server mutex (the Stat may block on a slow
		// filesystem or a network round trip and must not serialize
		// unrelated requests): when the object at the key no longer matches
		// the identity this reader holds, the container was replaced — drop
		// the stale reader (closed once its in-flight requests drain), the
		// listing summary, and the field's decoded bricks, then retry with a
		// fresh entry.
		cur, err := s.st.Stat(ctx, key)
		if err == nil && cur.Same(info) {
			s.mu.Lock()
			if s.readers[id] == e {
				e.lastCheck = time.Now()
			}
			s.mu.Unlock()
			return e.r, e.release, nil
		}
		s.mu.Lock()
		if s.readers[id] == e {
			s.dropFieldLocked(id)
		}
		s.mu.Unlock()
		e.release() // the request's reference on the stale entry
	}
	e.once.Do(func() {
		opts := append([]reader.Option{reader.WithCache(s.cache), reader.WithCacheKey(id)}, s.readerOpts...)
		// The opening request's trace gets the store_read and footer_read
		// (or fallback_scan) spans; requests that join a completed once pay
		// nothing.
		r, err := reader.OpenStoreCtx(ctx, s.st, key, opts...)
		var info store.Info
		if err == nil {
			info = r.StoreInfo()
		}
		// Store under the server mutex: /metrics, summarize, and close()
		// read entries without going through this once.
		s.mu.Lock()
		e.r, e.err = r, err
		e.info = info
		e.lastCheck = time.Now()
		s.mu.Unlock()
	})
	if e.err != nil {
		// Drop the failed entry so the field can be retried later (e.g.
		// the file appears after a copy completes).
		s.mu.Lock()
		if s.readers[id] == e {
			delete(s.readers, id)
			e.release() // the map's reference
		}
		s.mu.Unlock()
		e.release() // the request's reference
		return nil, nil, e.err
	}
	return e.r, e.release, nil
}

// dropFieldLocked forgets every cached artifact of a field — the open
// reader (closed when its last in-flight request finishes), the listing
// summary, and its decoded bricks in the shared cache. Callers hold s.mu.
func (s *Server) dropFieldLocked(id string) {
	if e, ok := s.readers[id]; ok {
		delete(s.readers, id)
		e.release() // the map's reference
	}
	delete(s.summaries, id)
	s.cache.InvalidatePrefix(id + "/")
	// A replaced container invalidates the field's corruption history too:
	// the new bytes deserve a fresh chance at every level.
	s.quar.forget(id)
}

// invalidateField is dropFieldLocked behind the server mutex (the ingest
// path's post-replace hook).
func (s *Server) invalidateField(id string) {
	s.mu.Lock()
	s.dropFieldLocked(id)
	s.mu.Unlock()
}

var errBadID = fmt.Errorf("invalid field id")

// httpError maps a reader/lookup error to a status code. Fault classes map
// to distinct statuses so clients and probes can react correctly: transient
// faults that outlasted the retry budget are 503 (retry elsewhere/later),
// corruption with no intact fallback is 500 with an explicit message, and a
// canceled request context gets nginx's conventional 499 (the client is
// gone; the code is for the access log, not the wire).
func (s *Server) httpError(w http.ResponseWriter, err error) {
	switch {
	case err == errBadID:
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, fs.ErrNotExist):
		http.Error(w, "unknown field", http.StatusNotFound)
	case errors.Is(err, store.ErrUnsupported):
		http.Error(w, err.Error(), http.StatusNotImplemented)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "client canceled request", 499)
	case faultio.IsTransient(err):
		http.Error(w, "transient backend fault (retries exhausted): "+err.Error(), http.StatusServiceUnavailable)
	case faultio.IsCorrupt(err):
		http.Error(w, "corrupt container data: "+err.Error(), http.StatusInternalServerError)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// --- conditional GETs ---------------------------------------------------------

// cacheControlIntact is sent with full-fidelity responses: cacheable, but
// revalidated against the strong ETag so a replaced container is picked up
// within a minute.
const cacheControlIntact = "public, max-age=60, must-revalidate"

// containerETag is the strong validator of one served representation: the
// container's index-section CRC and total size identify the object version
// (the section covers every stream's offset, length, and payload checksum),
// and the variant pins the representation (level, slice coordinates, JSON
// vs binary). Identical over every storage backend.
func containerETag(rd *reader.Reader, variant string) string {
	return fmt.Sprintf("\"%08x-%x-%s\"", rd.Index().SectionCRC, rd.Size(), variant)
}

// etagMatch reports whether an If-None-Match header (a comma-separated tag
// list, possibly weak-prefixed or "*") matches etag.
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c), "W/"))
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// notModified answers a matched conditional GET: 304 with the validator and
// caching policy restated, no body.
func notModified(w http.ResponseWriter, etag string) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", cacheControlIntact)
	w.WriteHeader(http.StatusNotModified)
}

// writeField sends a field in the raw binary format (24-byte dims header +
// float64 samples, the same format mrcompress reads and writes), or as
// JSON with ?format=json.
func writeField(w http.ResponseWriter, r *http.Request, f *field.Field) {
	w.Header().Set("X-Mrw-Nx", strconv.Itoa(f.Nx))
	w.Header().Set("X-Mrw-Ny", strconv.Itoa(f.Ny))
	w.Header().Set("X-Mrw-Nz", strconv.Itoa(f.Nz))
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, map[string]any{"nx": f.Nx, "ny": f.Ny, "nz": f.Nz, "data": f.Data})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(24+8*f.Len()))
	f.WriteTo(w)
}

// fieldHealth is the per-field block of /healthz: the integrity and
// resilience counters of one open container.
type fieldHealth struct {
	Retries           int64 `json:"read_retries"`
	CorruptStreams    int64 `json:"corrupt_streams"`
	QuarantinedLevels []int `json:"quarantined_levels,omitempty"`
}

// handleHealthz reports liveness plus the resilience picture: per-field
// retry/corruption counters and quarantined levels, and the process-wide
// totals. The body always contains the substring "ok" in the status field —
// the deploy smoke greps for it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var retries, corrupt int64
	fields := make(map[string]fieldHealth)
	s.mu.Lock()
	for id, e := range s.readers {
		if e.r == nil {
			continue // open in flight or failed
		}
		//lint:ignore mrlint/lockio Stats only loads atomic counters, it cannot block or re-enter the registry
		st := e.r.Stats()
		retries += st.Retries
		corrupt += st.CorruptStreams
		fields[id] = fieldHealth{
			Retries:           st.Retries,
			CorruptStreams:    st.CorruptStreams,
			QuarantinedLevels: s.quar.levelsFor(id),
		}
	}
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"status":             "ok",
		"fields_open":        len(fields),
		"quarantined_levels": s.quar.activeCount(),
		"quarantine_events":  s.metrics.quarantineEvents.Load(),
		"degraded_responses": s.metrics.degradedTotal(),
		"read_retries":       retries,
		"corrupt_streams":    corrupt,
		"decode_panics":      s.metrics.panics.Load(),
		"fields":             fields,
	})
}

// fieldSummary is one entry of GET /v1/fields.
type fieldSummary struct {
	ID             string `json:"id"`
	Nx             int    `json:"nx"`
	Ny             int    `json:"ny"`
	Nz             int    `json:"nz"`
	Levels         int    `json:"levels"`
	ContainerBytes int64  `json:"container_bytes"`
	Indexed        bool   `json:"indexed"`
}

// summarize returns the listing entry for one field without permanently
// holding its container open: an already-open reader is reused, otherwise
// the cached summary is served, otherwise a transient reader computes one
// and is closed again.
func (s *Server) summarize(ctx context.Context, id string, info store.Info) (fieldSummary, error) {
	s.mu.Lock()
	// An open reader is only trusted while it still matches the stored
	// object; a replaced container falls through to the identity-validated
	// summary cache (or a fresh transient read), so the listing never shows
	// the old object's shape for the new one.
	if e, ok := s.readers[id]; ok && e.r != nil && e.info.Same(info) {
		rd := e.r
		s.mu.Unlock()
		return makeSummary(id, rd.Reader, info), nil
	}
	if c, ok := s.summaries[id]; ok && c.info.Same(info) {
		s.mu.Unlock()
		return c.summary, nil
	}
	s.mu.Unlock()

	rd, err := reader.OpenStoreCtx(ctx, s.st, fieldKey(id), reader.WithCache(nil))
	if err != nil {
		return fieldSummary{}, err
	}
	sum := makeSummary(id, rd.Reader, info)
	rd.Close()
	s.mu.Lock()
	s.summaries[id] = cachedSummary{summary: sum, info: info}
	s.mu.Unlock()
	return sum, nil
}

func makeSummary(id string, rd *reader.Reader, info store.Info) fieldSummary {
	nx, ny, nz := rd.Dims()
	return fieldSummary{
		ID: id, Nx: nx, Ny: ny, Nz: nz,
		Levels:         rd.NumLevels(),
		ContainerBytes: info.Size,
		Indexed:        !rd.FellBack(),
	}
}

func (s *Server) handleFields(w http.ResponseWriter, r *http.Request) {
	ids, err := s.fieldIDs()
	if err != nil {
		s.httpError(w, err)
		return
	}
	out := make([]fieldSummary, 0, len(ids))
	for _, id := range ids {
		info, err := s.st.Stat(r.Context(), fieldKey(id))
		if err != nil {
			continue
		}
		sum, err := s.summarize(r.Context(), id, info)
		if err != nil {
			continue // unreadable container: omit rather than fail the listing
		}
		out = append(out, sum)
	}
	writeJSON(w, map[string]any{"fields": out})
}

// levelMeta is one level's entry of GET /v1/field/{id}/meta.
type levelMeta struct {
	Level           int    `json:"level"`
	Nx              int    `json:"nx"`
	Ny              int    `json:"ny"`
	Nz              int    `json:"nz"`
	UnitBlock       int    `json:"unit_block"`
	Blocks          int    `json:"blocks"`
	Streams         int    `json:"streams"`
	Codec           string `json:"codec,omitempty"`
	CompressedBytes int64  `json:"compressed_bytes"`
	RawBytes        int64  `json:"raw_bytes"`
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	rd, release, err := s.getReader(r.Context(), r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	defer release()
	ix := rd.Index()
	opt := rd.Options()
	levels := make([]levelMeta, 0, ix.NumLevels())
	for l := 0; l < ix.NumLevels(); l++ {
		nx, ny, nz := ix.LevelDims(l)
		lm := levelMeta{
			Level: l, Nx: nx, Ny: ny, Nz: nz,
			UnitBlock:       ix.UnitBlockSize(l),
			Blocks:          len(ix.Levels[l].Blocks),
			Streams:         len(ix.Levels[l].Streams),
			CompressedBytes: ix.CompressedBytes(l),
		}
		for _, si := range ix.Levels[l].Streams {
			lm.RawBytes += ix.Streams[si].RawLen
		}
		// The level's codec, from its streams' per-stream compressor bytes
		// (mixed-codec containers differ per level; within a level all
		// streams share one codec).
		if streams := ix.Levels[l].Streams; len(streams) > 0 {
			lm.Codec = core.Compressor(ix.Streams[streams[0]].Compressor).String()
		}
		levels = append(levels, lm)
	}
	nx, ny, nz := rd.Dims()
	writeJSON(w, map[string]any{
		"id":          r.PathValue("id"),
		"nx":          nx,
		"ny":          ny,
		"nz":          nz,
		"block_b":     ix.BlockB,
		"compressor":  opt.Compressor.String(),
		"arrangement": opt.Arrangement.String(),
		"eb":          opt.EB,
		"indexed":     !rd.FellBack(),
		"levels":      levels,
	})
}

func (s *Server) handleLevel(w http.ResponseWriter, r *http.Request) {
	rd, release, err := s.getReader(r.Context(), r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	defer release()
	l, err := strconv.Atoi(r.PathValue("level"))
	if err != nil {
		http.Error(w, "bad level", http.StatusBadRequest)
		return
	}
	if l < 0 || l >= rd.NumLevels() {
		http.Error(w, "unknown level", http.StatusNotFound)
		return
	}
	variant := fmt.Sprintf("L%d", l)
	if r.URL.Query().Get("format") == "json" {
		variant += "+json"
	}
	etag := containerETag(rd.Reader, variant)
	// The validator depends only on the container version and the requested
	// representation, so a match short-circuits before any decode: the
	// client's cached copy (necessarily full-fidelity — degraded responses
	// are never tagged) is still exactly right.
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		notModified(w, etag)
		return
	}
	id := r.PathValue("id")
	f, served, reason, err := s.readLevelDegraded(r.Context(), rd.Reader, id, l)
	if err != nil {
		s.httpError(w, err)
		return
	}
	if reason != "" {
		w.Header().Set("X-Degraded", degradedHeader(l, served, reason))
		// Degraded payloads must not be cached or revalidated into
		// freshness: the client should re-ask once the quarantine lifts.
		w.Header().Set("Cache-Control", "no-cache")
		s.metrics.degraded["level"].Add(1)
	} else {
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", cacheControlIntact)
	}
	w.Header().Set("X-Mrw-Level", strconv.Itoa(served))
	writeField(w, r, f)
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	rd, release, err := s.getReader(r.Context(), r.PathValue("id"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	defer release()
	q := r.URL.Query()
	axisStr := q.Get("axis")
	if axisStr == "" {
		axisStr = "z"
	}
	axis, err := reader.ParseAxis(axisStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	l := 0
	if v := q.Get("level"); v != "" {
		if l, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad level", http.StatusBadRequest)
			return
		}
	}
	if l < 0 || l >= rd.NumLevels() {
		http.Error(w, "unknown level", http.StatusNotFound)
		return
	}
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil {
		http.Error(w, "bad or missing k", http.StatusBadRequest)
		return
	}
	nx, ny, nz := rd.Index().LevelDims(l)
	if dim := []int{nx, ny, nz}[axis]; k < 0 || k >= dim {
		http.Error(w, fmt.Sprintf("k out of range [0,%d)", dim), http.StatusBadRequest)
		return
	}
	variant := fmt.Sprintf("%s%d-L%d", axis, k, l)
	if q.Get("format") == "json" {
		variant += "+json"
	}
	etag := containerETag(rd.Reader, variant)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		notModified(w, etag)
		return
	}
	// Parameters were validated above; what remains is a server-side decode
	// or I/O fault, handled by the degraded read path.
	id := r.PathValue("id")
	f, served, servedK, reason, err := s.readSliceDegraded(r.Context(), rd.Reader, id, axis, k, l)
	if err != nil {
		s.httpError(w, err)
		return
	}
	if reason != "" {
		w.Header().Set("X-Degraded", degradedHeader(l, served, reason))
		w.Header().Set("Cache-Control", "no-cache")
		s.metrics.degraded["slice"].Add(1)
	} else {
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", cacheControlIntact)
	}
	w.Header().Set("X-Mrw-Level", strconv.Itoa(served))
	w.Header().Set("X-Mrw-Axis", axis.String())
	w.Header().Set("X-Mrw-K", strconv.Itoa(servedK))
	writeField(w, r, f)
}

// --- ingest -----------------------------------------------------------------

// ingestOptions maps PUT query parameters onto compression options. The
// defaults are the paper's recommended configuration at releb 1e-3. Codec
// names (?codec=, its legacy alias ?compressor=, and the per-level
// ?levelcodecs= spec) are validated against the codec registry, so an
// unknown name fails with a message enumerating what is registered.
// ?lanes= opts the huffman-based backends into interleaved multi-lane
// entropy ("auto" or a power of two ≤ 64); an invalid value is a 400.
func ingestOptions(q url.Values) (repro.Options, error) {
	opt := repro.Options{RelEB: 1e-3, ROIBlockB: 16, ROITopFrac: 0.5}
	if v := q.Get("releb"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return opt, fmt.Errorf("bad releb %q", v)
		}
		opt.RelEB = f
	}
	if v := q.Get("eb"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return opt, fmt.Errorf("bad eb %q", v)
		}
		opt.EB, opt.RelEB = f, 0
	}
	name := q.Get("codec")
	if name == "" {
		name = q.Get("compressor")
	}
	if name != "" {
		c, err := repro.ParseCodec(name)
		if err != nil {
			return opt, err
		}
		opt.Compressor = c
	}
	if v := q.Get("levelcodecs"); v != "" {
		m, err := repro.ParseLevelCodecs(v)
		if err != nil {
			return opt, err
		}
		opt.LevelCodecs = m
	}
	if v := q.Get("lanes"); v != "" {
		n, err := repro.ParseEntropyLanes(v)
		if err != nil {
			return opt, err
		}
		opt.EntropyLanes = n
	}
	if v := q.Get("roiblock"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 4 {
			return opt, fmt.Errorf("bad roiblock %q", v)
		}
		opt.ROIBlockB = n
	}
	if v := q.Get("roifrac"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return opt, fmt.Errorf("bad roifrac %q", v)
		}
		opt.ROITopFrac = f
	}
	return opt, nil
}

// handleIngest accepts a raw field (24-byte dims header + float64 samples —
// the same format the level endpoint emits) and compresses it into the
// served directory with the streaming write path: the container is built
// wave by wave into a hidden temporary and atomically renamed over
// {id}.mrw, so concurrent readers see either the old or the new container,
// never a partial one. On success every cached artifact of the id — open
// reader, listing summary, decoded bricks — is invalidated, so the next
// request serves the new data. Compression is configured by query
// parameters (releb, eb, compressor, roiblock, roifrac).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validID(id) {
		s.httpError(w, errBadID)
		return
	}
	opt, err := ingestOptions(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// ReadFromLimit rejects a header whose dimensions imply more than the
	// cap before allocating, so a tiny body cannot reserve gigabytes;
	// MaxBytesReader bounds what the connection may actually deliver.
	f, err := field.ReadFromLimit(http.MaxBytesReader(w, r.Body, s.maxIngestBytes), s.maxIngestBytes)
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) || errors.Is(err, field.ErrTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, fmt.Sprintf("bad field payload: %v", err), status)
		return
	}
	_, statErr := s.st.Stat(r.Context(), fieldKey(id))
	var res *repro.WriteResult
	err = s.st.Install(r.Context(), fieldKey(id), func(dst io.Writer) error {
		var werr error
		res, werr = repro.CompressTo(f, opt, dst)
		return werr
	})
	if err != nil {
		if errors.Is(err, store.ErrUnsupported) {
			http.Error(w, err.Error(), http.StatusNotImplemented)
			return
		}
		// Storage faults are the server's problem; anything else is a
		// payload/parameter the pipeline rejected.
		status := http.StatusBadRequest
		var perr *fs.PathError
		if errors.As(err, &perr) {
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	s.invalidateField(id)
	w.Header().Set("Content-Type", "application/json")
	if errors.Is(statErr, fs.ErrNotExist) {
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, map[string]any{
		"id":                id,
		"nx":                f.Nx,
		"ny":                f.Ny,
		"nz":                f.Nz,
		"container_bytes":   res.Bytes,
		"compression_ratio": res.CompressionRatio,
	})
}

// --- metrics ----------------------------------------------------------------

// endpoints instrumented with request/latency counters.
var endpoints = []string{"healthz", "fields", "meta", "level", "slice", "ingest"}

// metricsRegistry is a minimal fixed-cardinality Prometheus-style counter
// set (no external deps; the text exposition format is trivial).
type metricsRegistry struct {
	requests  map[string]*atomic.Int64
	errors    map[string]*atomic.Int64
	latencyNs map[string]*atomic.Int64
	// latency is the per-endpoint request-duration histogram
	// (mrserve_request_duration_seconds); latencyNs above stays as the
	// pre-histogram sum-only series so existing dashboards keep working.
	latency map[string]*obs.Histogram
	// degraded counts responses served from a coarser level than requested
	// (X-Degraded set), by endpoint.
	degraded map[string]*atomic.Int64
	// quarantineEvents counts levels newly quarantined after failing
	// integrity checks.
	quarantineEvents *atomic.Int64
	// panics counts handler panics converted to 500s by instrument.
	panics *atomic.Int64
	// tempsSwept counts stale AtomicFile temporaries removed from the data
	// directory (crash residue).
	tempsSwept *atomic.Int64
}

func newMetricsRegistry() metricsRegistry {
	m := metricsRegistry{
		requests:         make(map[string]*atomic.Int64),
		errors:           make(map[string]*atomic.Int64),
		latencyNs:        make(map[string]*atomic.Int64),
		latency:          make(map[string]*obs.Histogram),
		degraded:         make(map[string]*atomic.Int64),
		quarantineEvents: new(atomic.Int64),
		panics:           new(atomic.Int64),
		tempsSwept:       new(atomic.Int64),
	}
	for _, e := range endpoints {
		m.requests[e] = new(atomic.Int64)
		m.errors[e] = new(atomic.Int64)
		m.latencyNs[e] = new(atomic.Int64)
		m.latency[e] = obs.NewHistogram(nil)
		m.degraded[e] = new(atomic.Int64)
	}
	return m
}

// degradedTotal sums degraded responses across endpoints.
func (m *metricsRegistry) degradedTotal() int64 {
	var n int64
	for _, e := range endpoints {
		n += m.degraded[e].Load()
	}
	return n
}

// statusRecorder captures the response code for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request, error, and latency accounting
// (counters plus the request-duration histogram), runs it under a request
// trace — the client's X-Request-Id, or a fresh one, echoed back on the
// response — and converts a handler panic into a counted 500 instead of
// tearing down the connection. Decode panics are already recovered at the
// core layer; this is the last line of defense for everything else, so one
// poisoned request can never take a worker goroutine down with stacked
// state. Each completed trace lands in the /debug/traces ring; sampled
// requests additionally emit one structured access-log line.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NewID()
		}
		w.Header().Set("X-Request-Id", reqID)
		ctx, tr := s.obs.StartTrace(r.Context(), reqID)
		ctx, root := obs.StartSpan(ctx, "serve:"+name)
		r = r.WithContext(ctx)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Add(1)
				rec.status = http.StatusInternalServerError
				// If the handler already wrote headers this is a no-op on
				// the wire; the counters still record the failure.
				http.Error(rec, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
			d := time.Since(start)
			root.End()
			s.metrics.requests[name].Add(1)
			s.metrics.latencyNs[name].Add(d.Nanoseconds())
			s.metrics.latency[name].Observe(d)
			if rec.status >= 400 {
				s.metrics.errors[name].Add(1)
			}
			degraded := rec.Header().Get("X-Degraded") != ""
			tr.SetAttr("endpoint", name)
			tr.SetAttr("status", strconv.Itoa(rec.status))
			if degraded {
				tr.SetAttr("degraded", "true")
			}
			s.obs.Finish(tr)
			if s.logSample.Allow() {
				s.accessLog.Log(
					"trace", reqID,
					"endpoint", name,
					"method", r.Method,
					"path", r.URL.Path,
					"status", strconv.Itoa(rec.status),
					"degraded", strconv.FormatBool(degraded),
					"dur", d.String(),
				)
			}
		}()
		h(rec, r)
	}
}

// metricsSnapshot is everything /metrics reports, gathered under the
// briefest possible locking so the formatter below runs lock-free: the
// exposition text is rendered into a buffer and written in one shot,
// keeping a slow scrape connection from ever holding the server mutex.
type metricsSnapshot struct {
	requests, errors, degraded map[string]int64
	latencySec                 map[string]float64
	latencyHist                map[string]obs.HistogramSnapshot
	stages                     []obs.StageSnapshot
	cache                      cache.Stats
	disk                       cache.DiskStats
	diskOK                     bool
	perField                   map[string]reader.Stats
	ids                        []string
	quarActive                 int
	quarEvents                 int64
	panics                     int64
	tempsSwept                 int64
}

// snapshotMetrics gathers a point-in-time copy of every exported series.
// Counter loads are individually atomic (a scrape racing a request may see
// adjacent counters a few events apart — standard scrape semantics); the
// server mutex covers only the open-reader walk.
func (s *Server) snapshotMetrics() metricsSnapshot {
	snap := metricsSnapshot{
		requests:   make(map[string]int64, len(endpoints)),
		errors:     make(map[string]int64, len(endpoints)),
		degraded:   make(map[string]int64, len(endpoints)),
		latencySec: make(map[string]float64, len(endpoints)),
		perField:   make(map[string]reader.Stats),
	}
	for _, e := range endpoints {
		snap.requests[e] = s.metrics.requests[e].Load()
		snap.errors[e] = s.metrics.errors[e].Load()
		snap.degraded[e] = s.metrics.degraded[e].Load()
		snap.latencySec[e] = float64(s.metrics.latencyNs[e].Load()) / 1e9
	}
	snap.latencyHist = s.EndpointHistograms()
	snap.stages = s.obs.StageSnapshots()
	snap.cache = s.cache.Stats()
	snap.disk, snap.diskOK = s.cache.DiskStats()
	s.mu.Lock()
	for id, e := range s.readers {
		if e.r == nil {
			continue // open in flight or failed
		}
		//lint:ignore mrlint/lockio Stats only loads atomic counters, it cannot block or re-enter the registry
		snap.perField[id] = e.r.Stats()
		snap.ids = append(snap.ids, id)
	}
	s.mu.Unlock()
	sort.Strings(snap.ids)
	snap.quarActive = s.quar.activeCount()
	snap.quarEvents = s.metrics.quarantineEvents.Load()
	snap.panics = s.metrics.panics.Load()
	snap.tempsSwept = s.metrics.tempsSwept.Load()
	return snap
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshotMetrics()
	var buf bytes.Buffer
	formatMetrics(&buf, snap)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// formatMetrics renders a snapshot as Prometheus text. It takes no locks
// and touches no live server state.
func formatMetrics(w io.Writer, snap metricsSnapshot) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP mrserve_requests_total Requests served, by endpoint.\n")
	p("# TYPE mrserve_requests_total counter\n")
	for _, e := range endpoints {
		p("mrserve_requests_total{endpoint=%q} %d\n", e, snap.requests[e])
	}
	p("# HELP mrserve_request_errors_total Requests answered with status >= 400, by endpoint.\n")
	p("# TYPE mrserve_request_errors_total counter\n")
	for _, e := range endpoints {
		p("mrserve_request_errors_total{endpoint=%q} %d\n", e, snap.errors[e])
	}
	p("# HELP mrserve_request_seconds_total Cumulative request wall time, by endpoint.\n")
	p("# TYPE mrserve_request_seconds_total counter\n")
	for _, e := range endpoints {
		p("mrserve_request_seconds_total{endpoint=%q} %.6f\n", e, snap.latencySec[e])
	}
	p("# HELP mrserve_request_duration_seconds Request latency histogram, by endpoint.\n")
	p("# TYPE mrserve_request_duration_seconds histogram\n")
	for _, e := range endpoints {
		snap.latencyHist[e].WriteProm(w, "mrserve_request_duration_seconds", fmt.Sprintf("endpoint=%q", e))
	}
	p("# HELP mrserve_stage_duration_seconds Per-stage latency histogram from request traces (cache probes, footer/stream reads, decodes, reader ops).\n")
	p("# TYPE mrserve_stage_duration_seconds histogram\n")
	for _, st := range snap.stages {
		st.Hist.WriteProm(w, "mrserve_stage_duration_seconds", fmt.Sprintf("stage=%q", st.Name))
	}

	cst := snap.cache
	p("# HELP mrserve_cache_hits_total Brick cache hits.\n")
	p("# TYPE mrserve_cache_hits_total counter\n")
	p("mrserve_cache_hits_total %d\n", cst.Hits)
	p("# HELP mrserve_cache_misses_total Brick cache misses.\n")
	p("# TYPE mrserve_cache_misses_total counter\n")
	p("mrserve_cache_misses_total %d\n", cst.Misses)
	p("# HELP mrserve_cache_evictions_total Brick cache evictions.\n")
	p("# TYPE mrserve_cache_evictions_total counter\n")
	p("mrserve_cache_evictions_total %d\n", cst.Evictions)
	p("# HELP mrserve_cache_bytes Bytes of decoded bricks currently cached.\n")
	p("# TYPE mrserve_cache_bytes gauge\n")
	p("mrserve_cache_bytes %d\n", cst.Bytes)
	p("# HELP mrserve_cache_budget_bytes Configured brick cache budget.\n")
	p("# TYPE mrserve_cache_budget_bytes gauge\n")
	p("mrserve_cache_budget_bytes %d\n", cst.Budget)
	p("# HELP mrserve_cache_entries Bricks currently cached.\n")
	p("# TYPE mrserve_cache_entries gauge\n")
	p("mrserve_cache_entries %d\n", cst.Entries)

	// The disk spill tier's series appear only when a tier is configured,
	// so dashboards can tell "no tier" from "tier idle".
	if snap.diskOK {
		dst := snap.disk
		p("# HELP mrserve_disk_tier_hits_total Bricks reloaded from the disk spill tier.\n")
		p("# TYPE mrserve_disk_tier_hits_total counter\n")
		p("mrserve_disk_tier_hits_total %d\n", dst.Hits)
		p("# HELP mrserve_disk_tier_misses_total Memory-tier misses not found on disk either.\n")
		p("# TYPE mrserve_disk_tier_misses_total counter\n")
		p("mrserve_disk_tier_misses_total %d\n", dst.Misses)
		p("# HELP mrserve_disk_tier_writes_total Bricks spilled to disk on memory-tier eviction.\n")
		p("# TYPE mrserve_disk_tier_writes_total counter\n")
		p("mrserve_disk_tier_writes_total %d\n", dst.Writes)
		p("# HELP mrserve_disk_tier_evictions_total Spill files displaced by the disk budget.\n")
		p("# TYPE mrserve_disk_tier_evictions_total counter\n")
		p("mrserve_disk_tier_evictions_total %d\n", dst.Evictions)
		p("# HELP mrserve_disk_tier_bytes Bytes of spilled bricks currently on disk.\n")
		p("# TYPE mrserve_disk_tier_bytes gauge\n")
		p("mrserve_disk_tier_bytes %d\n", dst.Bytes)
		p("# HELP mrserve_disk_tier_budget_bytes Configured disk spill budget.\n")
		p("# TYPE mrserve_disk_tier_budget_bytes gauge\n")
		p("mrserve_disk_tier_budget_bytes %d\n", dst.Budget)
		p("# HELP mrserve_disk_tier_entries Spilled bricks currently on disk.\n")
		p("# TYPE mrserve_disk_tier_entries gauge\n")
		p("mrserve_disk_tier_entries %d\n", dst.Entries)
	}

	var decodes, bytesRead, retries, corrupt, coalesced int64
	perField, ids := snap.perField, snap.ids
	for _, st := range perField {
		decodes += st.BackendDecodes
		bytesRead += st.BytesRead
		retries += st.Retries
		corrupt += st.CorruptStreams
		coalesced += st.CoalescedWaits
	}
	p("# HELP mrserve_coalesced_reads_total Brick requests that joined an in-flight decode of the same brick (singleflight).\n")
	p("# TYPE mrserve_coalesced_reads_total counter\n")
	p("mrserve_coalesced_reads_total %d\n", coalesced)
	p("# HELP mrserve_backend_decodes_total Compressed streams decoded across all open fields.\n")
	p("# TYPE mrserve_backend_decodes_total counter\n")
	p("mrserve_backend_decodes_total %d\n", decodes)
	p("# HELP mrserve_compressed_bytes_read_total Compressed bytes fetched from containers.\n")
	p("# TYPE mrserve_compressed_bytes_read_total counter\n")
	p("mrserve_compressed_bytes_read_total %d\n", bytesRead)
	p("# HELP mrserve_fields_open Containers currently held open.\n")
	p("# TYPE mrserve_fields_open gauge\n")
	p("mrserve_fields_open %d\n", len(ids))

	// Resilience counters: the corruption/retry story per field and overall.
	p("# HELP mrserve_read_retries_total Source reads retried after transient faults.\n")
	p("# TYPE mrserve_read_retries_total counter\n")
	p("mrserve_read_retries_total %d\n", retries)
	p("# HELP mrserve_corrupt_streams_total Streams that failed integrity verification.\n")
	p("# TYPE mrserve_corrupt_streams_total counter\n")
	p("mrserve_corrupt_streams_total %d\n", corrupt)
	p("# HELP mrserve_field_read_retries_total Retried source reads, by open field.\n")
	p("# TYPE mrserve_field_read_retries_total counter\n")
	for _, id := range ids {
		p("mrserve_field_read_retries_total{field=%q} %d\n", id, perField[id].Retries)
	}
	p("# HELP mrserve_field_corrupt_streams_total Integrity failures, by open field.\n")
	p("# TYPE mrserve_field_corrupt_streams_total counter\n")
	for _, id := range ids {
		p("mrserve_field_corrupt_streams_total{field=%q} %d\n", id, perField[id].CorruptStreams)
	}
	p("# HELP mrserve_degraded_responses_total Responses served from a coarser level than requested, by endpoint.\n")
	p("# TYPE mrserve_degraded_responses_total counter\n")
	for _, e := range endpoints {
		p("mrserve_degraded_responses_total{endpoint=%q} %d\n", e, snap.degraded[e])
	}
	p("# HELP mrserve_quarantine_events_total Levels newly quarantined after integrity failures.\n")
	p("# TYPE mrserve_quarantine_events_total counter\n")
	p("mrserve_quarantine_events_total %d\n", snap.quarEvents)
	p("# HELP mrserve_quarantined_levels Levels currently quarantined.\n")
	p("# TYPE mrserve_quarantined_levels gauge\n")
	p("mrserve_quarantined_levels %d\n", snap.quarActive)
	p("# HELP mrserve_handler_panics_total Handler panics converted to 500s.\n")
	p("# TYPE mrserve_handler_panics_total counter\n")
	p("mrserve_handler_panics_total %d\n", snap.panics)
	p("# HELP mrserve_temps_swept_total Stale write temporaries removed from the data directory.\n")
	p("# TYPE mrserve_temps_swept_total counter\n")
	p("mrserve_temps_swept_total %d\n", snap.tempsSwept)
}

// --- crash-residue sweep ----------------------------------------------------

// staleTempAge is how old an AtomicFile temporary must be before the sweep
// treats it as crash residue rather than a write in flight. Generously past
// the server's write timeouts, so a live ingest can never lose its file.
const staleTempAge = time.Hour

// SweepTemps removes stale AtomicFile temporaries (crash residue) from the
// data directory once; SweepLoop repeats it on an interval.
func (s *Server) SweepTemps() { s.sweepTemps() }

// SweepLoop runs SweepTemps every interval until stop is closed.
func (s *Server) SweepLoop(interval time.Duration, stop <-chan struct{}) {
	s.sweepLoop(interval, stop)
}

// sweepTemps removes stale AtomicFile temporaries (crash residue) from the
// backing store, when the backend can accumulate them (the filesystem one);
// other backends have nothing to sweep.
func (s *Server) sweepTemps() {
	sw, ok := s.st.(store.Sweeper)
	if !ok {
		return
	}
	n, err := sw.SweepTemps(staleTempAge)
	if err == nil && n > 0 {
		s.metrics.tempsSwept.Add(int64(n))
	}
}

// sweepLoop runs sweepTemps every interval until stop is closed. Started
// from main; a sweep also runs once at startup before serving.
func (s *Server) sweepLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sweepTemps()
		case <-stop:
			return
		}
	}
}
