package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a mutex-guarded log sink: the handler's deferred log write
// may still be running when the client already has the response.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls the buffer until substr shows up (the handler's deferred
// accounting runs after the response is on the wire).
func (s *syncBuffer) waitFor(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if line := s.String(); strings.Contains(line, substr) || time.Now().After(deadline) {
			return line
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// expectedMetricEndpoints is the instrumented-endpoint roster the metrics
// tests assert histogram series for. The mrlint obsspan check verifies
// every endpoint registered through Server.instrument appears here, so a
// new endpoint cannot ship without joining the metrics contract.
var expectedMetricEndpoints = []string{"healthz", "fields", "meta", "level", "slice", "ingest"}

// TestRequestIDEcho pins the trace-identity contract: a client-supplied
// X-Request-Id comes back verbatim, and a request without one gets a
// generated ID.
func TestRequestIDEcho(t *testing.T) {
	ts, _, _ := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/field/nyx/level/0", nil)
	req.Header.Set("X-Request-Id", "my-req-007")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "my-req-007" {
		t.Fatalf("X-Request-Id echoed %q, want my-req-007", got)
	}
	code, _, hdr := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz %d", code)
	}
	if gen := hdr.Get("X-Request-Id"); len(gen) != 16 {
		t.Fatalf("generated X-Request-Id %q, want 16 hex chars", gen)
	}
}

// tracesResponse mirrors the /debug/traces JSON shape.
type tracesResponse struct {
	Traces []obs.TraceSnapshot `json:"traces"`
}

// TestTraceSpansChain is the acceptance criterion: a traced level request
// must show at least the serve → read → decode span chain, each span with a
// recorded duration, retrievable by the request's trace ID.
func TestTraceSpansChain(t *testing.T) {
	ts, _, _ := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/field/nyx/level/0", nil)
	req.Header.Set("X-Request-Id", "chain-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("level: %d", resp.StatusCode)
	}

	code, body, _ := get(t, ts.URL+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, body)
	}
	var found *obs.TraceSnapshot
	for i := range tr.Traces {
		if tr.Traces[i].ID == "chain-trace-1" {
			found = &tr.Traces[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("trace chain-trace-1 not in ring (%d traces)", len(tr.Traces))
	}
	spans := map[string]obs.SpanSnapshot{}
	for _, sp := range found.Spans {
		spans[sp.Name] = sp
	}
	for _, name := range []string{"serve:level", "read_level", "decode"} {
		sp, ok := spans[name]
		if !ok {
			t.Fatalf("trace missing span %q (has %v)", name, found.Spans)
		}
		if sp.DurationNs <= 0 {
			t.Errorf("span %q has no duration", name)
		}
	}
	if found.Attrs["endpoint"] != "level" || found.Attrs["status"] != "200" {
		t.Errorf("trace attrs %v", found.Attrs)
	}
	// The chain nests: read_level under the serve root, decode under
	// read_level.
	if spans["read_level"].Parent != "serve:level" {
		t.Errorf("read_level parent %q", spans["read_level"].Parent)
	}
	if spans["decode"].Parent != "read_level" {
		t.Errorf("decode parent %q", spans["decode"].Parent)
	}
}

// TestMetricsHistograms asserts /metrics serves a complete histogram
// series (_bucket/_sum/_count) for every instrumented endpoint, stage
// histograms for the read path, and that every pre-histogram metric name
// is still present (the compatibility half of metrics v2).
func TestMetricsHistograms(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for _, path := range []string{"/v1/field/nyx/level/0", "/v1/field/nyx/slice?axis=z&k=1", "/v1/fields", "/v1/field/nyx/meta", "/healthz"} {
		if code, body, _ := get(t, ts.URL+path); code != 200 {
			t.Fatalf("%s: %d %s", path, code, body)
		}
	}
	code, body, _ := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	text := string(body)
	for _, e := range expectedMetricEndpoints {
		for _, series := range []string{
			fmt.Sprintf(`mrserve_request_duration_seconds_bucket{endpoint=%q,le="+Inf"}`, e),
			fmt.Sprintf(`mrserve_request_duration_seconds_sum{endpoint=%q}`, e),
			fmt.Sprintf(`mrserve_request_duration_seconds_count{endpoint=%q}`, e),
		} {
			if !strings.Contains(text, series) {
				t.Errorf("missing histogram series %s", series)
			}
		}
	}
	for _, stage := range []string{"read_level", "decode", "stream_read"} {
		if !strings.Contains(text, fmt.Sprintf(`mrserve_stage_duration_seconds_count{stage=%q}`, stage)) {
			t.Errorf("missing stage histogram for %q", stage)
		}
	}
	// Every metric name from before the histogram migration must survive.
	for _, name := range []string{
		"mrserve_requests_total", "mrserve_request_errors_total", "mrserve_request_seconds_total",
		"mrserve_cache_hits_total", "mrserve_cache_misses_total", "mrserve_cache_evictions_total",
		"mrserve_cache_bytes", "mrserve_cache_budget_bytes", "mrserve_cache_entries",
		"mrserve_backend_decodes_total", "mrserve_compressed_bytes_read_total", "mrserve_fields_open",
		"mrserve_read_retries_total", "mrserve_corrupt_streams_total",
		"mrserve_field_read_retries_total", "mrserve_field_corrupt_streams_total",
		"mrserve_degraded_responses_total", "mrserve_quarantine_events_total",
		"mrserve_quarantined_levels", "mrserve_handler_panics_total", "mrserve_temps_swept_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("pre-existing metric %s disappeared from /metrics", name)
		}
	}
	// The level request above decoded through the histogram path: its
	// count must be nonzero.
	if !strings.Contains(text, `mrserve_request_duration_seconds_count{endpoint="level"} 1`) {
		t.Errorf("level histogram count not 1:\n%s", grepLines(text, "mrserve_request_duration_seconds_count"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestAccessLog wires a log writer at sample rate 1 and checks each
// request emits one key=value line carrying the trace ID and outcome.
func TestAccessLog(t *testing.T) {
	ts, s, _ := newTestServer(t)
	var buf syncBuffer
	s.accessLog = obs.NewLogger(&buf)
	s.logSample = obs.NewSampler(1)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/field/nyx/level/0", nil)
	req.Header.Set("X-Request-Id", "logged-req")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.waitFor(t, "trace=logged-req")
	for _, want := range []string{"trace=logged-req", "endpoint=level", "status=200", "degraded=false", "dur="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %s", want, line)
		}
	}
}

// TestSlowRequestLog sets a zero-distance slow threshold and checks the
// trace lands in the slow log with its span breakdown.
func TestSlowRequestLog(t *testing.T) {
	ts, s, _ := newTestServer(t)
	var buf syncBuffer
	s.obs.SetSlowLog(time.Nanosecond, obs.NewLogger(&buf))
	code, _, _ := get(t, ts.URL+"/v1/field/nyx/level/0")
	if code != 200 {
		t.Fatalf("level: %d", code)
	}
	line := buf.waitFor(t, "slow_request=true")
	for _, want := range []string{"slow_request=true", "endpoint=level", "read_level:"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log missing %q: %s", want, line)
		}
	}
}

// TestTraceRingBounded: the /debug/traces ring honors its configured size.
func TestTraceRingBounded(t *testing.T) {
	ts, s, _ := newTestServer(t)
	_ = s
	for i := 0; i < 12; i++ {
		get(t, ts.URL+"/healthz")
	}
	code, body, _ := get(t, ts.URL+"/debug/traces?n=5")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 5 {
		t.Fatalf("?n=5 returned %d traces", len(tr.Traces))
	}
}
