package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/synth"
)

// newTestServer compresses two synthetic fields into a temp directory and
// returns a running httptest server over it.
func newTestServer(t *testing.T) (*httptest.Server, *Server, map[string]*grid.Hierarchy) {
	t.Helper()
	dir := t.TempDir()
	want := make(map[string]*grid.Hierarchy)

	// "nyx": the standard SZ3MR container.
	f := synth.Generate(synth.Nyx, 32, 42)
	res, err := repro.CompressUniform(f, repro.Options{RelEB: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "nyx.mrw"), res.Blob, 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := core.Decompress(res.Blob)
	if err != nil {
		t.Fatal(err)
	}
	want["nyx"] = h

	// "tac": a TAC container (exercises box assembly + slice skipping).
	g := synth.Generate(synth.RT, 32, 7)
	ah, err := grid.BuildAMR(g, 16, []float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.CompressHierarchy(ah, core.TACSZ3Options(g.ValueRange()*1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tac.mrw"), c.Blob, 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := core.Decompress(c.Blob)
	if err != nil {
		t.Fatal(err)
	}
	want["tac"] = h2

	s, err := newServer(dir, 64<<20, 1<<30, 8)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { ts.Close(); s.close() })
	return ts, s, want
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// parseRawField decodes the binary response format.
func parseRawField(t *testing.T, body []byte) *field.Field {
	t.Helper()
	f, err := field.ReadFrom(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t)
	code, body, _ := get(t, ts.URL+"/healthz")
	if code != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

func TestFieldsListing(t *testing.T) {
	ts, _, _ := newTestServer(t)
	code, body, _ := get(t, ts.URL+"/v1/fields")
	if code != 200 {
		t.Fatalf("fields: %d %s", code, body)
	}
	var got struct {
		Fields []fieldSummary `json:"fields"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != 2 || got.Fields[0].ID != "nyx" || got.Fields[1].ID != "tac" {
		t.Fatalf("fields listing: %+v", got.Fields)
	}
	for _, f := range got.Fields {
		if !f.Indexed || f.Levels < 2 || f.Nx != 32 {
			t.Fatalf("field summary: %+v", f)
		}
	}
}

func TestMeta(t *testing.T) {
	ts, _, _ := newTestServer(t)
	code, body, _ := get(t, ts.URL+"/v1/field/nyx/meta")
	if code != 200 {
		t.Fatalf("meta: %d %s", code, body)
	}
	var meta struct {
		ID          string      `json:"id"`
		Compressor  string      `json:"compressor"`
		Arrangement string      `json:"arrangement"`
		Indexed     bool        `json:"indexed"`
		Levels      []levelMeta `json:"levels"`
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.ID != "nyx" || meta.Compressor != "SZ3" || meta.Arrangement != "linear" || !meta.Indexed {
		t.Fatalf("meta: %+v", meta)
	}
	for _, lm := range meta.Levels {
		if lm.Streams > 0 && (lm.CompressedBytes <= 0 || lm.RawBytes <= 0) {
			t.Fatalf("level meta without sizes: %+v", lm)
		}
	}
}

func TestLevelEndpointMatchesDecompress(t *testing.T) {
	ts, _, want := newTestServer(t)
	for id, h := range want {
		for l := range h.Levels {
			code, body, hdr := get(t, fmt.Sprintf("%s/v1/field/%s/level/%d", ts.URL, id, l))
			if code != 200 {
				t.Fatalf("%s level %d: %d %s", id, l, code, body)
			}
			got := parseRawField(t, body)
			if !got.Equal(h.Levels[l].Data) {
				t.Fatalf("%s level %d differs from sequential decode", id, l)
			}
			if hdr.Get("X-Mrw-Nx") == "" {
				t.Fatalf("%s level %d: missing dimension headers", id, l)
			}
		}
	}
}

func TestSliceEndpoint(t *testing.T) {
	ts, _, want := newTestServer(t)
	h := want["nyx"]
	for _, axis := range []string{"x", "y", "z"} {
		code, body, _ := get(t, ts.URL+"/v1/field/nyx/slice?axis="+axis+"&k=5&level=0")
		if code != 200 {
			t.Fatalf("slice %s: %d %s", axis, code, body)
		}
		got := parseRawField(t, body)
		lf := h.Levels[0].Data
		var wantSlice *field.Field
		switch axis {
		case "x":
			wantSlice = lf.SubBlock(5, 0, 0, 1, lf.Ny, lf.Nz)
		case "y":
			wantSlice = lf.SubBlock(0, 5, 0, lf.Nx, 1, lf.Nz)
		default:
			wantSlice = lf.SliceZ(5)
		}
		if !got.Equal(wantSlice) {
			t.Fatalf("slice %s differs", axis)
		}
	}
	// JSON format round-trips too.
	code, body, _ := get(t, ts.URL+"/v1/field/nyx/slice?k=0&format=json")
	if code != 200 {
		t.Fatalf("json slice: %d", code)
	}
	var js struct {
		Nx   int       `json:"nx"`
		Data []float64 `json:"data"`
	}
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.Nx != 32 || len(js.Data) != 32*32 {
		t.Fatalf("json slice shape: nx=%d len=%d", js.Nx, len(js.Data))
	}
}

func TestErrorResponses(t *testing.T) {
	ts, _, _ := newTestServer(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/v1/field/missing/meta", 404},
		{"/v1/field/missing/level/0", 404},
		{"/v1/field/..%2Fnyx/meta", 400},
		{"/v1/field/nyx/level/99", 404},
		{"/v1/field/nyx/level/x", 400},
		{"/v1/field/nyx/slice?axis=w&k=0", 400},
		{"/v1/field/nyx/slice?k=100000", 400},
		{"/v1/field/nyx/slice", 400},
	}
	for _, tc := range cases {
		code, body, _ := get(t, ts.URL+tc.url)
		if code != tc.code {
			t.Errorf("%s: got %d want %d (%s)", tc.url, code, tc.code, body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t)
	// Generate traffic: two reads of the same level (one cold, one cached)
	// and one error.
	get(t, ts.URL+"/v1/field/nyx/level/1")
	get(t, ts.URL+"/v1/field/nyx/level/1")
	get(t, ts.URL+"/v1/field/missing/meta")
	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics content type %q", hdr.Get("Content-Type"))
	}
	text := string(body)
	for _, want := range []string{
		`mrserve_requests_total{endpoint="level"} 2`,
		`mrserve_request_errors_total{endpoint="meta"} 1`,
		"mrserve_cache_hits_total",
		"mrserve_cache_misses_total",
		"mrserve_backend_decodes_total",
		"mrserve_request_seconds_total",
		"mrserve_fields_open 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// The second level read must have come from cache: decodes == hits' cold
	// complement. Weaker but robust check: hits > 0.
	if strings.Contains(text, "mrserve_cache_hits_total 0\n") {
		t.Error("repeated level read recorded no cache hits")
	}
}

// TestConcurrentTraffic hammers every endpoint from many goroutines; with
// -race this is the serving-path concurrency proof.
func TestConcurrentTraffic(t *testing.T) {
	ts, _, want := newTestServer(t)
	urls := []string{
		"/v1/fields",
		"/v1/field/nyx/meta",
		"/v1/field/nyx/level/0",
		"/v1/field/nyx/level/1",
		"/v1/field/tac/level/0",
		"/v1/field/tac/level/1",
		"/v1/field/nyx/slice?axis=z&k=3",
		"/v1/field/tac/slice?axis=y&k=7&level=0",
		"/metrics",
		"/healthz",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				u := urls[(g+i)%len(urls)]
				resp, err := http.Get(ts.URL + u)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s: status %d", u, resp.StatusCode)
					return
				}
				// Spot-check payload integrity under concurrency.
				if u == "/v1/field/nyx/level/1" {
					f, err := field.ReadFrom(strings.NewReader(string(body)))
					if err != nil {
						errs <- fmt.Errorf("%s: %v", u, err)
						return
					}
					if !f.Equal(want["nyx"].Levels[1].Data) {
						errs <- fmt.Errorf("%s: payload corrupted under concurrency", u)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
