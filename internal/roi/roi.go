// Package roi implements the paper's compression-oriented Region-of-Interest
// extraction (§III): converting uniform-grid data into multi-resolution
// ("adaptive") data by range thresholding.
//
// The field is partitioned into b³ blocks (b = 2ⁿ, n > 2). Each block's
// value range (max − min) is computed and the top x% of blocks are kept at
// full resolution (the ROI); the rest are stored 2×-downsampled. Following
// Kumar et al. [7], range thresholding is chosen for being lightweight yet
// effective — on Nyx it captures the over-density halos (Fig. 4).
package roi

import (
	"fmt"
	"sort"

	"repro/internal/field"
	"repro/internal/grid"
)

// Options configures ROI extraction.
type Options struct {
	// BlockB is the block edge in fine cells (power of two > 4; default 16).
	BlockB int
	// TopFrac is the fraction of blocks kept at full resolution
	// (default 0.5, as in the paper; adjustable per application).
	TopFrac float64
}

func (o *Options) setDefaults() {
	if o.BlockB == 0 {
		o.BlockB = 16
	}
	if o.TopFrac == 0 {
		o.TopFrac = 0.5
	}
}

// Select returns the per-block ROI mask (flat raster block index order) for
// the field: true for blocks whose value range is in the top TopFrac.
func Select(f *field.Field, opt Options) ([]bool, error) {
	opt.setDefaults()
	if opt.TopFrac < 0 || opt.TopFrac > 1 {
		return nil, fmt.Errorf("roi: TopFrac %g out of [0,1]", opt.TopFrac)
	}
	b := opt.BlockB
	if f.Nx%b != 0 || f.Ny%b != 0 || f.Nz%b != 0 {
		return nil, fmt.Errorf("roi: dims %dx%dx%d not multiples of block %d", f.Nx, f.Ny, f.Nz, b)
	}
	nbx, nby, nbz := f.Nx/b, f.Ny/b, f.Nz/b
	n := nbx * nby * nbz
	ranges := make([]float64, n)
	idx := 0
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				ranges[idx] = f.SubBlock(bx*b, by*b, bz*b, b, b, b).ValueRange()
				idx++
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if ranges[order[i]] != ranges[order[j]] {
			return ranges[order[i]] > ranges[order[j]]
		}
		return order[i] < order[j]
	})
	keep := int(opt.TopFrac*float64(n) + 0.5)
	mask := make([]bool, n)
	for i := 0; i < keep; i++ {
		mask[order[i]] = true
	}
	return mask, nil
}

// Convert turns a uniform field into a two-level adaptive hierarchy: ROI
// blocks at full resolution (level 0), the rest mean-downsampled 2× per axis
// (level 1).
func Convert(f *field.Field, opt Options) (*grid.Hierarchy, error) {
	opt.setDefaults()
	mask, err := Select(f, opt)
	if err != nil {
		return nil, err
	}
	h, err := grid.New(f.Nx, f.Ny, f.Nz, opt.BlockB, 2)
	if err != nil {
		return nil, err
	}
	nbx, nby, nbz := h.NumBlocks()
	idx := 0
	for bz := 0; bz < nbz; bz++ {
		for by := 0; by < nby; by++ {
			for bx := 0; bx < nbx; bx++ {
				level := 1
				if mask[idx] {
					level = 0
				}
				h.SetBlockFromFine(level, bx, by, bz, f)
				idx++
			}
		}
	}
	return h, nil
}

// ROIOnly returns a copy of f where non-ROI samples are replaced by the
// down-then-upsampled approximation — the "ROI extraction" visualization of
// Fig. 4 (ROI regions identical, background smoothed).
func ROIOnly(f *field.Field, opt Options) (*field.Field, error) {
	h, err := Convert(f, opt)
	if err != nil {
		return nil, err
	}
	return h.Flatten(), nil
}

// Stats summarizes an extraction: fraction of blocks kept and the fraction
// of raw samples retained (ROI at full rate + non-ROI at 1/8 rate).
type Stats struct {
	BlocksKept   float64 // fraction of blocks at full resolution
	SampleRatio  float64 // stored samples / original samples
	StorageRatio float64 // original bytes / stored bytes
}

// Measure computes extraction statistics for the given options.
func Measure(f *field.Field, opt Options) (Stats, error) {
	opt.setDefaults()
	h, err := Convert(f, opt)
	if err != nil {
		return Stats{}, err
	}
	kept := h.Density(0)
	samples := float64(h.PayloadSamples()) / float64(f.Len())
	return Stats{BlocksKept: kept, SampleRatio: samples, StorageRatio: 1 / samples}, nil
}
