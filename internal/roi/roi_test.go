package roi

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func TestSelectTopFraction(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 1)
	mask, err := Select(f, Options{BlockB: 16, TopFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, m := range mask {
		if m {
			kept++
		}
	}
	if kept != 16 { // 64 blocks total, 25%
		t.Fatalf("kept %d blocks, want 16", kept)
	}
}

func TestSelectPicksHighRangeBlocks(t *testing.T) {
	// A field that is constant except one block with huge range: that block
	// must be selected.
	f := field.New(32, 32, 32)
	f.Set(20, 20, 20, 100) // block (1,1,1) at BlockB=16 contains this spike
	mask, err := Select(f, Options{BlockB: 16, TopFrac: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	// Flat index of block (1,1,1) in a 2x2x2 block grid = 1 + 2*(1 + 2*1) = 7.
	if !mask[7] {
		t.Fatal("spike block not selected as ROI")
	}
}

func TestSelectValidation(t *testing.T) {
	f := field.New(30, 32, 32)
	if _, err := Select(f, Options{BlockB: 16}); err == nil {
		t.Fatal("non-multiple dims accepted")
	}
	g := field.New(32, 32, 32)
	if _, err := Select(g, Options{BlockB: 16, TopFrac: 1.5}); err == nil {
		t.Fatal("TopFrac > 1 accepted")
	}
}

func TestConvertStructure(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 2)
	h, err := Convert(f, Options{BlockB: 16, TopFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(h.Levels))
	}
	if d := h.Density(0); math.Abs(d-0.5) > 0.01 {
		t.Fatalf("fine density %v, want 0.5", d)
	}
	// ROI blocks must be preserved exactly in the flattened reconstruction.
	g := h.Flatten()
	for _, bc := range h.OwnedBlocks(0) {
		a := f.SubBlock(bc[0]*16, bc[1]*16, bc[2]*16, 16, 16, 16)
		b := g.SubBlock(bc[0]*16, bc[1]*16, bc[2]*16, 16, 16, 16)
		if !a.Equal(b) {
			t.Fatal("ROI block altered by conversion")
		}
	}
}

// TestFig4ROIQuality reproduces the claim of Fig. 4: a modest ROI fraction
// of a halo-rich cosmology field reconstructs with near-perfect SSIM.
func TestFig4ROIQuality(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 3)
	rec, err := ROIOnly(f, Options{BlockB: 16, TopFrac: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	ssim := metrics.SSIM3D(f, rec)
	if ssim < 0.95 {
		t.Fatalf("ROI reconstruction SSIM %.4f, want ≥ 0.95 (paper: 0.99995)", ssim)
	}
}

func TestMeasureStorageRatio(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 4)
	st, err := Measure(f, Options{BlockB: 16, TopFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// 50% full + 50% at 1/8 → sample ratio 0.5 + 0.0625 = 0.5625.
	if math.Abs(st.SampleRatio-0.5625) > 1e-9 {
		t.Fatalf("sample ratio %v, want 0.5625", st.SampleRatio)
	}
	if math.Abs(st.BlocksKept-0.5) > 0.01 {
		t.Fatalf("blocks kept %v", st.BlocksKept)
	}
	if math.Abs(st.StorageRatio-1/0.5625) > 1e-9 {
		t.Fatalf("storage ratio %v", st.StorageRatio)
	}
}

func TestDefaultsApplied(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 5)
	h, err := Convert(f, Options{}) // BlockB 16, TopFrac 0.5
	if err != nil {
		t.Fatal(err)
	}
	if h.BlockB != 16 {
		t.Fatalf("default BlockB = %d", h.BlockB)
	}
}
