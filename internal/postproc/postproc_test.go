package postproc

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/zfp"

	sz2pkg "repro/internal/sz2"
)

func TestProcessStaysWithinIntensityBound(t *testing.T) {
	f := synth.Generate(synth.WarpX, 32, 1)
	eb := f.ValueRange() * 1e-2
	data, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := zfp.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	a := Uniform(0.3)
	proc := Process(dec, a, Options{EB: eb, BlockSize: 4})
	// Each axis pass may move a sample by ≤ a·eb relative to the original
	// decompressed value; passes are clamped against the same reference, so
	// the total deviation stays ≤ a·eb.
	if d := dec.MaxAbsDiff(proc); d > 0.3*eb*(1+1e-9) {
		t.Fatalf("deviation %g exceeds a*eb = %g", d, 0.3*eb)
	}
}

func TestProcessZeroIntensityIsIdentity(t *testing.T) {
	f := synth.Generate(synth.S3D, 16, 2)
	proc := Process(f, Uniform(0), Options{EB: 1, BlockSize: 4})
	if !proc.Equal(f) {
		t.Fatal("zero intensity must not change the field")
	}
}

func TestProcessSmoothsSyntheticBlockArtifact(t *testing.T) {
	// Construct a field that is a smooth ramp plus per-block constant
	// offsets (a caricature of blocking artifacts); the true data is the
	// ramp. Post-processing must reduce error at block boundaries.
	const n, bs = 16, 4
	orig := field.New(n, n, n)
	dec := field.New(n, n, n)
	eb := 0.2
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := 0.1 * float64(x+y+z)
				orig.Set(x, y, z, v)
				// Block-dependent offset within ±eb.
				off := eb * 0.9 * float64((x/bs+y/bs+z/bs)%2*2-1)
				dec.Set(x, y, z, v+off)
			}
		}
	}
	proc := Process(dec, Uniform(0.5), Options{EB: eb, BlockSize: bs})
	before := metrics.MSE(orig, dec)
	after := metrics.MSE(orig, proc)
	if after >= before {
		t.Fatalf("post-processing did not reduce MSE: %g -> %g", before, after)
	}
}

func TestProcessOnlyTouchesBoundaries(t *testing.T) {
	f := synth.Generate(synth.RT, 16, 3)
	proc := Process(f, Uniform(0.5), Options{EB: 1, BlockSize: 4})
	// Interior samples (not adjacent to any block boundary along any axis)
	// must be unchanged.
	isBoundary := func(p int) bool {
		m := p % 4
		return m == 3 || m == 0
	}
	for z := 1; z < 15; z++ {
		for y := 1; y < 15; y++ {
			for x := 1; x < 15; x++ {
				if isBoundary(x) || isBoundary(y) || isBoundary(z) {
					continue
				}
				if proc.At(x, y, z) != f.At(x, y, z) {
					t.Fatalf("interior sample (%d,%d,%d) modified", x, y, z)
				}
			}
		}
	}
}

func TestCandidates(t *testing.T) {
	s := SZ2Candidates()
	if len(s) != 10 || math.Abs(s[0]-0.05) > 1e-15 || math.Abs(s[9]-0.5) > 1e-15 {
		t.Fatalf("SZ2 candidates %v", s)
	}
	z := ZFPCandidates()
	if len(z) != 10 || math.Abs(z[0]-0.005) > 1e-15 || math.Abs(z[9]-0.05) > 1e-15 {
		t.Fatalf("ZFP candidates %v", z)
	}
}

func zfpRoundTrip(eb float64) RoundTrip {
	return func(f *field.Field) (*field.Field, error) {
		data, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
		if err != nil {
			return nil, err
		}
		return zfp.Decompress(data)
	}
}

func sz2RoundTrip(eb float64, bs int) RoundTrip {
	return func(f *field.Field) (*field.Field, error) {
		data, err := sz2pkg.Compress(f, sz2pkg.Options{EB: eb, BlockSize: bs})
		if err != nil {
			return nil, err
		}
		return sz2pkg.Decompress(data)
	}
}

func TestCollectSamplesRate(t *testing.T) {
	// On a field large enough that the rate bound dominates the minimum
	// sample count, the sampling rate must stay below 1.5%.
	f := synth.Generate(synth.S3D, 72, 4)
	eb := f.ValueRange() * 1e-2
	opt := Options{EB: eb, BlockSize: 4}
	set, err := CollectSamples(f, zfpRoundTrip(eb), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	total := 0
	for _, s := range set.Samples {
		total += s.Orig.Len()
	}
	if rate := float64(total) / float64(f.Len()); rate > 0.016 {
		t.Fatalf("sampling rate %.4f exceeds 1.5%%", rate)
	}
}

func TestFindIntensityImprovesFullFieldPSNR(t *testing.T) {
	// End-to-end: ZFP at a coarse tolerance, intensity from samples,
	// post-process the full decompressed field → PSNR must improve.
	f := synth.Generate(synth.WarpX, 48, 5)
	eb := f.ValueRange() * 2e-2
	rt := zfpRoundTrip(eb)
	opt := Options{EB: eb, BlockSize: 4, Candidates: ZFPCandidates()}
	set, err := CollectSamples(f, rt, opt)
	if err != nil {
		t.Fatal(err)
	}
	a := set.FindIntensity()
	dec, err := rt(f)
	if err != nil {
		t.Fatal(err)
	}
	proc := Process(dec, a, opt)
	before := metrics.PSNR(f, dec)
	after := metrics.PSNR(f, proc)
	if after < before {
		t.Fatalf("post-processing reduced PSNR: %.2f -> %.2f (a=%v)", before, after, a)
	}
}

func TestFindIntensityImprovesSZ2(t *testing.T) {
	f := synth.Generate(synth.Nyx, 48, 6)
	eb := f.ValueRange() * 1e-2
	rt := sz2RoundTrip(eb, 4)
	opt := Options{EB: eb, BlockSize: 4, Candidates: SZ2Candidates()}
	set, err := CollectSamples(f, rt, opt)
	if err != nil {
		t.Fatal(err)
	}
	a := set.FindIntensity()
	dec, err := rt(f)
	if err != nil {
		t.Fatal(err)
	}
	proc := Process(dec, a, opt)
	if metrics.PSNR(f, proc) < metrics.PSNR(f, dec) {
		t.Fatalf("SZ2 post-processing reduced PSNR (a=%v)", a)
	}
}

func TestConservativeAtHighQuality(t *testing.T) {
	// At a very tight bound there is almost nothing to fix; the dynamic
	// intensity must not make things worse (paper: "conservative degree of
	// post-processing intensity" at low CR).
	f := synth.Generate(synth.S3D, 32, 7)
	eb := f.ValueRange() * 1e-6
	rt := zfpRoundTrip(eb)
	opt := Options{EB: eb, BlockSize: 4, Candidates: ZFPCandidates()}
	set, err := CollectSamples(f, rt, opt)
	if err != nil {
		t.Fatal(err)
	}
	a := set.FindIntensity()
	dec, err := rt(f)
	if err != nil {
		t.Fatal(err)
	}
	proc := Process(dec, a, opt)
	if metrics.PSNR(f, proc) < metrics.PSNR(f, dec)-1e-9 {
		t.Fatalf("high-quality regime regressed: %v", a)
	}
}

func TestErrorStats(t *testing.T) {
	orig := field.New(4, 4, 4)
	dec := field.New(4, 4, 4)
	for i := range orig.Data {
		orig.Data[i] = float64(i)
		dec.Data[i] = float64(i) - 0.5 // constant error +0.5
	}
	set := &SampleSet{Samples: []Sample{{Orig: orig, Decomp: dec}}}
	mean, variance := set.ErrorStats()
	if math.Abs(mean-0.5) > 1e-12 || variance > 1e-12 {
		t.Fatalf("stats = (%g, %g), want (0.5, 0)", mean, variance)
	}
}

func TestErrorStatsNearIsovalue(t *testing.T) {
	orig := field.New(4, 1, 1)
	dec := field.New(4, 1, 1)
	copy(orig.Data, []float64{0, 1.2, 2.1, 3})
	copy(dec.Data, []float64{0, 1.0, 2.0, 3})
	set := &SampleSet{Samples: []Sample{{Orig: orig, Decomp: dec}}}
	// Window around isovalue 1.5 captures decompressed values 1.0 and 2.0.
	mean, _, count := set.ErrorStatsNearIsovalue(1.5, 0.6)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if math.Abs(mean-0.15) > 1e-12 {
		t.Fatalf("mean = %g, want 0.15", mean)
	}
}

func TestCollectSamplesValidation(t *testing.T) {
	f := synth.Generate(synth.S3D, 16, 8)
	if _, err := CollectSamples(f, zfpRoundTrip(1), Options{EB: 0, BlockSize: 4}); err == nil {
		t.Fatal("zero eb accepted")
	}
	if _, err := CollectSamples(f, zfpRoundTrip(1), Options{EB: 1, BlockSize: 1}); err == nil {
		t.Fatal("block size 1 accepted")
	}
}
