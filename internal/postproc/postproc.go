// Package postproc implements the paper's error-bounded adaptive
// post-processing for block-wise compressors (§III-B).
//
// Block-wise compressors (SZ2, ZFP) lose spatial information at block
// boundaries, producing blocking artifacts. For each block-boundary sample
// d₄ the post-processor builds a quadratic Bézier curve through its in-block
// neighbor d₃ and its cross-block neighbor d₅ (d₄ as control point),
// evaluates B(0.5) = 0.25·d₃ + 0.5·d₄ + 0.25·d₅, and moves d₄ toward it —
// clamped to ±a·eb around the decompressed value so the result stays within
// the compressor's error bound of the original data. The intensity a < 1 is
// chosen per dimension by compressing a ≤1.5% sample of the data and running
// stochastic gradient descent over the paper's candidate sets
// (SZ2: 0.05…0.5, ZFP: 0.005…0.05).
package postproc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/field"
)

// CurveKind selects the smoothing curve. The paper uses the quadratic
// Bézier; its future work (§V) proposes exploring alternatives, so a 4-point
// cubic interpolant is provided as well.
type CurveKind byte

const (
	// QuadBezier evaluates B(0.5) = 0.25·d₋₁ + 0.5·d₀ + 0.25·d₊₁ — the
	// paper's curve (d₀ itself is the control point).
	QuadBezier CurveKind = iota
	// Cubic4 replaces d₀ with the 4-point cubic interpolation of its
	// neighbors, (−d₋₂ + 9·d₋₁ + 9·d₊₁ − d₊₂)/16, falling back to
	// QuadBezier where ±2 neighbors do not exist.
	Cubic4
)

// Options configures post-processing.
type Options struct {
	// EB is the error bound the compressor was run with (> 0).
	EB float64
	// BlockSize is the compressor's block edge: 4 for ZFP, the SZ2 block
	// size, or the unit block size for partitioned multi-resolution SZ3.
	BlockSize int
	// Curve selects the smoothing curve (default QuadBezier).
	Curve CurveKind
	// Candidates is the intensity candidate set. Defaults to SZ2Candidates.
	Candidates []float64
	// SampleFrac is the target sampling rate for intensity selection
	// (default 0.015, the paper's "below 1.5%").
	SampleFrac float64
	// SampleBlockMul is j in the paper's (j·blocksize)³ sample regions
	// (default 2).
	SampleBlockMul int
	// Seed makes sampling deterministic (0 = fixed default seed).
	Seed int64
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Candidates == nil {
		v.Candidates = SZ2Candidates()
	}
	if v.SampleFrac == 0 {
		v.SampleFrac = 0.015
	}
	if v.SampleBlockMul == 0 {
		v.SampleBlockMul = 2
	}
	if v.Seed == 0 {
		v.Seed = 20240267
	}
	return v
}

// SZ2Candidates returns the paper's intensity candidates for SZ2
// ({0.05, 0.10, …, 0.50}).
func SZ2Candidates() []float64 {
	c := make([]float64, 10)
	for i := range c {
		c[i] = 0.05 * float64(i+1)
	}
	return c
}

// ZFPCandidates returns the paper's intensity candidates for ZFP
// ({0.005, 0.010, …, 0.050}); smaller because ZFP's real maximum error is
// well below its tolerance (underestimation characteristic).
func ZFPCandidates() []float64 {
	c := make([]float64, 10)
	for i := range c {
		c[i] = 0.005 * float64(i+1)
	}
	return c
}

// Intensity is the per-dimension post-processing intensity a.
type Intensity [3]float64

// Uniform returns the same intensity for all three dimensions.
func Uniform(a float64) Intensity { return Intensity{a, a, a} }

// Process returns a post-processed copy of the decompressed field: every
// block-boundary sample is moved toward its quadratic Bézier midpoint,
// clamped to ±aᵢ·eb (per dimension i) around its decompressed value.
//
// Both faces of each block boundary are processed (the last sample of one
// block and the first of the next), one dimension at a time; the clamp is
// always relative to the original decompressed value, so the total deviation
// introduced along dimension i never exceeds aᵢ·eb and the result stays
// within (1+max aᵢ)·eb of the original data.
func Process(decomp *field.Field, a Intensity, opt Options) *field.Field {
	opt = (&opt).withDefaults()
	out := decomp.Clone()
	ref := decomp // clamp reference: the unprocessed decompressed values
	processAxis(out, ref, 0, a[0]*opt.EB, opt.BlockSize, opt.Curve)
	processAxis(out, ref, 1, a[1]*opt.EB, opt.BlockSize, opt.Curve)
	processAxis(out, ref, 2, a[2]*opt.EB, opt.BlockSize, opt.Curve)
	return out
}

// processAxis smooths boundary samples along one axis in place.
func processAxis(f, ref *field.Field, axis int, limit float64, bs int, curve CurveKind) {
	if limit <= 0 || bs < 2 {
		return
	}
	var n int
	switch axis {
	case 0:
		n = f.Nx
	case 1:
		n = f.Ny
	default:
		n = f.Nz
	}
	if n <= bs {
		return // single block: no boundaries along this axis
	}
	// Boundary positions: p = bs−1, 2bs−1, … (last of block) and the first
	// sample of the following block p+1.
	for p := bs - 1; p+1 < n; p += bs {
		smoothPlane(f, ref, axis, p, limit, curve)
		smoothPlane(f, ref, axis, p+1, limit, curve)
	}
}

// smoothPlane applies the curve update to every sample with the given
// coordinate along axis, using neighbors at ±1 (and ±2 for Cubic4) along
// that axis.
func smoothPlane(f, ref *field.Field, axis, p int, limit float64, curve CurveKind) {
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	var dim int
	switch axis {
	case 0:
		dim = nx
	case 1:
		dim = ny
	default:
		dim = nz
	}
	if p-1 < 0 || p+1 >= dim {
		return
	}
	cubic := curve == Cubic4 && p-2 >= 0 && p+2 < dim
	// update smooths the sample whose axis coordinate is p; at returns the
	// current value at coordinate p+off along the axis.
	update := func(i int, at func(off int) float64) {
		var b float64
		if cubic {
			b = (-at(-2) + 9*at(-1) + 9*at(1) - at(2)) / 16
		} else {
			b = 0.25*at(-1) + 0.5*f.Data[i] + 0.25*at(1)
		}
		d := ref.Data[i]
		if b > d+limit {
			b = d + limit
		} else if b < d-limit {
			b = d - limit
		}
		f.Data[i] = b
	}
	switch axis {
	case 0:
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				i := f.Index(p, y, z)
				update(i, func(off int) float64 { return f.Data[i+off] })
			}
		}
	case 1:
		for z := 0; z < nz; z++ {
			for x := 0; x < nx; x++ {
				i := f.Index(x, p, z)
				update(i, func(off int) float64 { return f.Data[i+off*nx] })
			}
		}
	default:
		stride := nx * ny
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := f.Index(x, y, p)
				update(i, func(off int) float64 { return f.Data[i+off*stride] })
			}
		}
	}
}

// Sample is one sampled region with its original and round-tripped data.
type Sample struct {
	Orig, Decomp *field.Field
}

// SampleSet is the collection of sampled regions used both to select the
// post-processing intensity and (reused, §III-C) to model the compression
// error distribution for uncertainty visualization.
type SampleSet struct {
	Samples []Sample
	opt     Options
}

// RoundTrip compresses and decompresses a field at the working error bound;
// callers supply their compressor of choice.
type RoundTrip func(*field.Field) (*field.Field, error)

// CollectSamples draws sample regions of size (j·blocksize)³ from the field
// at a rate ≤ opt.SampleFrac, round-trips each through the compressor, and
// returns the pairs. Regions are aligned to block boundaries so the sampled
// artifacts match the full-field compression.
func CollectSamples(f *field.Field, rt RoundTrip, opt Options) (*SampleSet, error) {
	opt = (&opt).withDefaults()
	if opt.EB <= 0 {
		return nil, errors.New("postproc: error bound must be positive")
	}
	if opt.BlockSize < 2 {
		return nil, fmt.Errorf("postproc: block size %d too small", opt.BlockSize)
	}
	side := opt.SampleBlockMul * opt.BlockSize
	if side > f.Nx {
		side = f.Nx
	}
	if side > f.Ny {
		side = f.Ny
	}
	if side > f.Nz {
		side = f.Nz
	}
	if side < 2 {
		return nil, errors.New("postproc: field too small to sample")
	}
	perSample := side * side * side
	maxSamples := int(opt.SampleFrac * float64(f.Len()) / float64(perSample))
	// On large fields the ≤1.5% rate dominates; on small fields a handful
	// of regions is required for the intensity fit to be representative
	// (the rate bound is about overhead, which is negligible there).
	const minSamples = 8
	if maxSamples < minSamples {
		maxSamples = minSamples
	}
	// Candidate origins aligned to the block grid.
	bx := alignedOrigins(f.Nx, side, opt.BlockSize)
	by := alignedOrigins(f.Ny, side, opt.BlockSize)
	bz := alignedOrigins(f.Nz, side, opt.BlockSize)
	type origin struct{ x, y, z int }
	var origins []origin
	for _, z := range bz {
		for _, y := range by {
			for _, x := range bx {
				origins = append(origins, origin{x, y, z})
			}
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	rng.Shuffle(len(origins), func(i, j int) { origins[i], origins[j] = origins[j], origins[i] })
	if len(origins) > maxSamples {
		origins = origins[:maxSamples]
	}
	set := &SampleSet{opt: opt}
	for _, o := range origins {
		orig := f.SubBlock(o.x, o.y, o.z, side, side, side)
		dec, err := rt(orig)
		if err != nil {
			return nil, fmt.Errorf("postproc: sampling round trip: %w", err)
		}
		if !orig.SameShape(dec) {
			return nil, errors.New("postproc: round trip changed shape")
		}
		set.Samples = append(set.Samples, Sample{Orig: orig, Decomp: dec})
	}
	return set, nil
}

func alignedOrigins(n, side, bs int) []int {
	var out []int
	for x := 0; x+side <= n; x += bs {
		out = append(out, x)
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}

// FindIntensity selects the per-dimension intensity a minimizing the L2
// error of the processed samples against the originals, by mini-batch
// stochastic descent over the candidate set: starting from the middle
// candidate, each iteration evaluates the current index and its neighbors on
// a random batch of samples and moves downhill, stopping when stable.
func (s *SampleSet) FindIntensity() Intensity {
	opt := s.opt
	var a Intensity
	if len(s.Samples) == 0 || len(opt.Candidates) == 0 {
		return a
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	for axis := 0; axis < 3; axis++ {
		a[axis] = s.descendAxis(axis, rng)
	}
	// Joint guard: the per-axis descents optimize each dimension in
	// isolation, but Process applies all three sequentially. Accept the
	// combined intensity only if it clearly improves the full sampled
	// objective (0.5% margin); otherwise fall back to no processing — the
	// paper's conservative behaviour when there is little to gain.
	if a != (Intensity{}) {
		base := s.fullError(Intensity{})
		proc := s.fullError(a)
		if proc >= 0.995*base {
			return Intensity{}
		}
	}
	return a
}

// fullError is the total squared error of all samples after processing with
// the complete intensity vector.
func (s *SampleSet) fullError(a Intensity) float64 {
	sum := 0.0
	for i := range s.Samples {
		sm := s.Samples[i]
		proc := sm.Decomp
		if a != (Intensity{}) {
			proc = Process(sm.Decomp, a, s.opt)
		}
		for j, v := range proc.Data {
			d := v - sm.Orig.Data[j]
			sum += d * d
		}
	}
	return sum
}

// descendAxis runs the discrete SGD for one dimension.
func (s *SampleSet) descendAxis(axis int, rng *rand.Rand) float64 {
	cand := s.opt.Candidates
	idx := len(cand) / 2
	stable := 0
	batchSize := len(s.Samples)/2 + 1
	for iter := 0; iter < 8 && stable < 2; iter++ {
		batch := s.randomBatch(batchSize, rng)
		best, bestErr := idx, math.Inf(1)
		for _, j := range []int{idx - 1, idx, idx + 1} {
			if j < 0 || j >= len(cand) {
				continue
			}
			e := s.batchError(batch, axis, cand[j])
			if e < bestErr {
				best, bestErr = j, e
			}
		}
		if best == idx {
			stable++
		} else {
			stable = 0
			idx = best
		}
	}
	// Guard: only keep the intensity if it does not hurt on the full sample
	// set (the paper's conservative behaviour at low compression ratios).
	if s.batchError(s.allIndices(), axis, cand[idx]) >= s.batchError(s.allIndices(), axis, 0) {
		return 0
	}
	return cand[idx]
}

func (s *SampleSet) randomBatch(n int, rng *rand.Rand) []int {
	if n >= len(s.Samples) {
		return s.allIndices()
	}
	idx := rng.Perm(len(s.Samples))[:n]
	return idx
}

func (s *SampleSet) allIndices() []int {
	idx := make([]int, len(s.Samples))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// batchError returns the summed squared error after processing the given
// samples along one axis with intensity a.
func (s *SampleSet) batchError(batch []int, axis int, a float64) float64 {
	var ia Intensity
	ia[axis] = a
	sum := 0.0
	for _, i := range batch {
		sm := s.Samples[i]
		proc := Process(sm.Decomp, ia, s.opt)
		for j, v := range proc.Data {
			d := v - sm.Orig.Data[j]
			sum += d * d
		}
	}
	return sum
}

// ErrorStats estimates the mean and variance of the compression error
// (orig − decomp) over all sampled voxels. Used by the uncertainty stage.
func (s *SampleSet) ErrorStats() (mean, variance float64) {
	n := 0
	for _, sm := range s.Samples {
		for i, v := range sm.Orig.Data {
			mean += v - sm.Decomp.Data[i]
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean /= float64(n)
	for _, sm := range s.Samples {
		for i, v := range sm.Orig.Data {
			d := (v - sm.Decomp.Data[i]) - mean
			variance += d * d
		}
	}
	variance /= float64(n)
	return mean, variance
}

// ErrorStatsNearIsovalue estimates the error distribution using only voxels
// whose decompressed value lies within window of the isovalue — the paper's
// isovalue-related variance (§III-C), which better reflects the uncertainty
// of the voxels that decide isosurface topology.
func (s *SampleSet) ErrorStatsNearIsovalue(isovalue, window float64) (mean, variance float64, count int) {
	for _, sm := range s.Samples {
		for i, v := range sm.Orig.Data {
			if math.Abs(sm.Decomp.Data[i]-isovalue) <= window {
				mean += v - sm.Decomp.Data[i]
				count++
			}
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	mean /= float64(count)
	for _, sm := range s.Samples {
		for i, v := range sm.Orig.Data {
			if math.Abs(sm.Decomp.Data[i]-isovalue) <= window {
				d := (v - sm.Decomp.Data[i]) - mean
				variance += d * d
			}
		}
	}
	variance /= float64(count)
	return mean, variance, count
}
