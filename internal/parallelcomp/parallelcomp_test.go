package parallelcomp

import (
	"testing"

	"repro/internal/field"
	"repro/internal/synth"
	"repro/internal/sz2"
	"repro/internal/zfp"
)

func sz2Codec(eb float64) Codec {
	return Codec{
		Name:       "sz2",
		Compress:   func(f *field.Field) ([]byte, error) { return sz2.Compress(f, sz2.Options{EB: eb}) },
		Decompress: sz2.Decompress,
	}
}

func zfpCodec(tol float64) Codec {
	return Codec{
		Name:       "zfp",
		Compress:   func(f *field.Field) ([]byte, error) { return zfp.Compress(f, zfp.Options{Tolerance: tol}) },
		Decompress: zfp.Decompress,
	}
}

func TestRoundTripWithinBound(t *testing.T) {
	f := synth.Generate(synth.S3D, 32, 1)
	eb := f.ValueRange() * 1e-3
	for _, workers := range []int{1, 2, 4, 7} {
		blob, err := Compress(f, sz2Codec(eb), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		g, err := Decompress(blob, sz2Codec(eb))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
			t.Fatalf("workers=%d: error %g exceeds %g", workers, d, eb)
		}
	}
}

func TestParallelCRPenalty(t *testing.T) {
	// The paper's observation: parallel (chunked) SZ2 compresses worse than
	// serial because slabs lose shared context.
	f := synth.Generate(synth.Nyx, 48, 2)
	eb := f.ValueRange() * 1e-3
	serial, err := Compress(f, sz2Codec(eb), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compress(f, sz2Codec(eb), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) <= len(serial) {
		t.Fatalf("expected CR penalty for chunked compression: serial %d, parallel %d", len(serial), len(par))
	}
}

func TestZFPCodecRoundTrip(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 24, 3)
	tol := f.ValueRange() * 5e-3
	blob, err := Compress(f, zfpCodec(tol), 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(blob, zfpCodec(tol))
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > tol {
		t.Fatalf("error %g exceeds %g", d, tol)
	}
}

func TestWorkersClampedToDepth(t *testing.T) {
	f := field.New(8, 8, 3) // only 3 z planes
	f.Fill(1)
	blob, err := Compress(f, sz2Codec(0.01), 16)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(blob, sz2Codec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if !g.SameShape(f) {
		t.Fatal("shape lost")
	}
}

func TestDecompressValidation(t *testing.T) {
	if _, err := Decompress([]byte("nope"), sz2Codec(1)); err == nil {
		t.Fatal("garbage accepted")
	}
	f := synth.Generate(synth.S3D, 16, 4)
	blob, err := Compress(f, sz2Codec(f.ValueRange()*1e-3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(blob[:len(blob)/2], sz2Codec(f.ValueRange()*1e-3)); err == nil {
		t.Fatal("truncation accepted")
	}
}
