// Package parallelcomp provides OpenMP-style chunked parallel compression:
// the field is split into z-slabs compressed concurrently, each with its own
// stream. This mirrors how the paper parallelizes SZ2/ZFP with OpenMP and
// reproduces its side effect — "using OpenMP with SZ2 can lead to a lower
// compression ratio due to the embarrassingly parallel" decomposition
// (§IV-C): each slab carries its own entropy tables and loses cross-slab
// prediction context.
package parallelcomp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/parallel"
)

// Codec adapts a single-field compressor.
type Codec struct {
	// Name identifies the codec in diagnostics.
	Name string
	// Compress encodes one field chunk.
	Compress func(*field.Field) ([]byte, error)
	// Decompress decodes one chunk.
	Decompress func([]byte) (*field.Field, error)
}

const magic = "PARC"

// Compress splits f into up to `workers` z-slabs, compresses them
// concurrently with the codec, and concatenates the streams into a
// self-describing container. workers ≤ 1 degenerates to a single slab
// (serial semantics and serial compression ratio).
func Compress(f *field.Field, codec Codec, workers int) ([]byte, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > f.Nz {
		workers = f.Nz
	}
	// Slab boundaries: contiguous z ranges, as even as possible.
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * f.Nz / workers
	}
	chunks, err := parallel.MapErrWorkers(workers, workers, func(i int) ([]byte, error) {
		lo, hi := bounds[i], bounds[i+1]
		if lo >= hi {
			return nil, nil
		}
		slab := f.SubBlock(0, 0, lo, f.Nx, f.Ny, hi-lo)
		c, err := codec.Compress(slab)
		if err != nil {
			return nil, fmt.Errorf("parallelcomp: slab %d: %w", i, err)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	var out []byte
	out = append(out, magic...)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{uint64(f.Nx), uint64(f.Ny), uint64(f.Nz), uint64(workers)} {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	for _, c := range chunks {
		n := binary.PutUvarint(tmp[:], uint64(len(c)))
		out = append(out, tmp[:n]...)
		out = append(out, c...)
	}
	return out, nil
}

// Decompress reverses Compress, decoding slabs concurrently.
func Decompress(blob []byte, codec Codec) (*field.Field, error) {
	if len(blob) < 4 || string(blob[:4]) != magic {
		return nil, errors.New("parallelcomp: bad magic")
	}
	buf := blob[4:]
	readU := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, errors.New("parallelcomp: truncated header")
		}
		buf = buf[n:]
		return v, nil
	}
	nx64, err := readU()
	if err != nil {
		return nil, err
	}
	ny64, err := readU()
	if err != nil {
		return nil, err
	}
	nz64, err := readU()
	if err != nil {
		return nil, err
	}
	workers64, err := readU()
	if err != nil {
		return nil, err
	}
	// Dimensions are validated (axes, and their product, so field.New below
	// cannot overflow) while still uint64; the worker count is bounded by nz
	// the same way the encoder bounds it.
	nx, ny, nz, _, err := field.CheckDims(nx64, ny64, nz64)
	if err != nil || workers64 == 0 || workers64 > uint64(nz) {
		return nil, errors.New("parallelcomp: invalid header")
	}
	workers := int(workers64)
	chunks := make([][]byte, workers)
	for i := range chunks {
		l, err := readU()
		if err != nil {
			return nil, err
		}
		if l > uint64(len(buf)) {
			return nil, errors.New("parallelcomp: truncated chunk")
		}
		chunks[i] = buf[:l]
		buf = buf[l:]
	}
	out := field.New(nx, ny, nz)
	slabs, err := parallel.MapErrWorkers(workers, workers, func(i int) (*field.Field, error) {
		if len(chunks[i]) == 0 {
			return nil, nil
		}
		s, err := codec.Decompress(chunks[i])
		if err != nil {
			return nil, fmt.Errorf("parallelcomp: slab %d: %w", i, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	z := 0
	for i := range chunks {
		s := slabs[i]
		if s == nil {
			continue
		}
		if s.Nx != nx || s.Ny != ny || z+s.Nz > nz {
			return nil, fmt.Errorf("parallelcomp: slab %d shape %v inconsistent", i, s)
		}
		out.SetBlock(0, 0, z, s)
		z += s.Nz
	}
	if z != nz {
		return nil, fmt.Errorf("parallelcomp: slabs cover %d of %d z planes", z, nz)
	}
	return out, nil
}
