package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutAndLRUEviction(t *testing.T) {
	c := New(100, 1) // single shard so eviction order is deterministic
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	st := c.Stats()
	if st.Entries != 10 || st.Bytes != 100 {
		t.Fatalf("occupancy %d entries / %d bytes", st.Entries, st.Bytes)
	}
	// Touch k0 so it becomes MRU, then push it over budget: k1 (now LRU)
	// must be the eviction victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k10", 10, 10)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived eviction despite being LRU")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recently-used k0 was evicted")
	}
	if st := c.Stats(); st.Bytes > 100 {
		t.Fatalf("budget overrun: %d bytes", st.Bytes)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestRefreshAdjustsBytes(t *testing.T) {
	c := New(100, 1)
	c.Put("a", 1, 40)
	c.Put("a", 2, 60)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 60 {
		t.Fatalf("after refresh: %d entries / %d bytes", st.Entries, st.Bytes)
	}
	v, ok := c.Get("a")
	if !ok || v.(int) != 2 {
		t.Fatalf("refresh lost the new value: %v %v", v, ok)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(100, 1)
	c.Put("huge", 1, 1000)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("value larger than the budget was cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized put left residue: %+v", st)
	}
}

// TestLargerThanShardBudgetCached is the regression test for the silent
// large-brick drop: with 4 shards over a 1000-byte budget each shard's
// slice is 250 bytes, yet a 400-byte brick (the expensive fine-level case)
// must still cache and be a hit on the second read.
func TestLargerThanShardBudgetCached(t *testing.T) {
	c := New(1000, 4)
	c.Put("big", "brick", 400) // > per-shard 250, < global/2
	v, ok := c.Get("big")
	if !ok || v.(string) != "brick" {
		t.Fatalf("brick above the per-shard budget was not cached (ok=%v)", ok)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("second read was not a hit: %+v", st)
	}
	// Above half the global budget the entry is (deliberately) dropped.
	c.Put("toobig", 1, 501)
	if _, ok := c.Get("toobig"); ok {
		t.Fatal("entry above half the global budget was cached")
	}
}

// TestOversizeEntryBorrowsWithoutOverrun fills every shard, inserts an
// oversize entry, and checks the global budget still holds — the borrow
// must come out of other shards' LRU tails.
func TestOversizeEntryBorrowsWithoutOverrun(t *testing.T) {
	c := New(1000, 4)
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 100)
	}
	before := c.Stats()
	if before.Bytes == 0 {
		t.Fatal("warm-up cached nothing")
	}
	c.Put("big", "brick", 450)
	st := c.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("global budget overrun after oversize put: %d > %d", st.Bytes, st.Budget)
	}
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversize entry evicted by its own insert")
	}
	if st.Evictions == 0 {
		t.Fatal("oversize insert displaced nothing despite a full cache")
	}
}

func TestRemove(t *testing.T) {
	c := New(1000, 4)
	c.Put("a", 1, 10)
	if !c.Remove("a") {
		t.Fatal("Remove of a present key returned false")
	}
	if c.Remove("a") {
		t.Fatal("Remove of an absent key returned true")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key still served")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("remove left residue: %+v", st)
	}
}

func TestInvalidatePrefix(t *testing.T) {
	c := New(1<<16, 4)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("nyx/L%d", i), i, 100)
		c.Put(fmt.Sprintf("nyx2/L%d", i), i, 100)
	}
	if n := c.InvalidatePrefix("nyx/"); n != 8 {
		t.Fatalf("InvalidatePrefix dropped %d entries, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("nyx/L%d", i)); ok {
			t.Fatalf("nyx/L%d survived invalidation", i)
		}
		if _, ok := c.Get(fmt.Sprintf("nyx2/L%d", i)); !ok {
			t.Fatalf("nyx2/L%d was wrongly invalidated", i)
		}
	}
	if st := c.Stats(); st.Bytes != 800 {
		t.Fatalf("occupancy after invalidation: %+v", st)
	}
	// No-op paths.
	if n := c.InvalidatePrefix("absent/"); n != 0 {
		t.Fatalf("invalidating an absent prefix dropped %d", n)
	}
	var nilCache *Cache
	if n := nilCache.InvalidatePrefix("x"); n != 0 || nilCache.Remove("x") {
		t.Fatal("nil cache invalidation not a no-op")
	}
}

func TestDisabledAndNilCaches(t *testing.T) {
	for name, c := range map[string]*Cache{"disabled": New(0, 4), "nil": nil} {
		c.Put("k", 1, 1)
		if _, ok := c.Get("k"); ok {
			t.Fatalf("%s cache returned a value", name)
		}
		if st := c.Stats(); st.Entries != 0 {
			t.Fatalf("%s cache has entries", name)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(1000, 4)
	c.Put("a", 1, 10)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Budget != 1000 {
		t.Fatalf("budget %d", st.Budget)
	}
}

// TestConcurrentAccess exercises all shards from many goroutines; run with
// -race this doubles as the data-race check for the serving path.
func TestConcurrentAccess(t *testing.T) {
	c := New(1<<16, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%200)
				if v, ok := c.Get(key); ok {
					_ = v.(int)
				} else {
					c.Put(key, i, int64(64+i%128))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("budget overrun under concurrency: %d > %d", st.Bytes, st.Budget)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no operations recorded")
	}
}

// TestConcurrentInvalidation races Remove and InvalidatePrefix against
// Get/Put traffic — the serving pattern where ingest invalidates a field's
// bricks while requests for it (and for other fields) are in flight. Run
// under -race this is the invalidation-path concurrency proof; the final
// assertions check that the byte/entry accounting survives the storm.
func TestConcurrentInvalidation(t *testing.T) {
	c := New(1<<16, 8)
	fields := []string{"a", "b", "c", "d"}

	var traffic sync.WaitGroup
	for g := 0; g < 4; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("%s/brick%d", fields[(g+i)%len(fields)], i%50)
				if _, ok := c.Get(key); !ok {
					c.Put(key, i, int64(64+i%256))
				}
			}
		}(g)
	}

	stop := make(chan struct{})
	var invalidators sync.WaitGroup
	invalidators.Add(2)
	go func() {
		defer invalidators.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.InvalidatePrefix(fields[i%len(fields)] + "/")
			}
		}
	}()
	go func() {
		defer invalidators.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.Remove(fmt.Sprintf("%s/brick%d", fields[i%len(fields)], i%50))
			}
		}
	}()

	traffic.Wait()
	close(stop)
	invalidators.Wait()

	st := c.Stats()
	if st.Bytes < 0 || st.Bytes > st.Budget {
		t.Fatalf("byte accounting broken under concurrent invalidation: %d (budget %d)", st.Bytes, st.Budget)
	}
	if st.Entries < 0 {
		t.Fatalf("negative entry count: %d", st.Entries)
	}
	// A final full wipe must leave the cache exactly empty.
	for _, f := range fields {
		c.InvalidatePrefix(f + "/")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-wipe residue: %d entries, %d bytes", st.Entries, st.Bytes)
	}
}
