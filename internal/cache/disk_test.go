package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// byteCodec is the test spill codec: values are []byte payloads.
func byteEncode(v any) ([]byte, bool) {
	b, ok := v.([]byte)
	return b, ok
}

func byteDecode(payload []byte) (any, int64, bool) {
	return append([]byte(nil), payload...), int64(len(payload)), true
}

func TestDiskTierRoundTripAndBudget(t *testing.T) {
	// Each spill file costs len(framing)+len(payload); size the budget for
	// roughly three 100-byte entries.
	tier, err := NewDiskTier(t.TempDir(), 350)
	if err != nil {
		t.Fatal(err)
	}

	pay := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 100-len(fmt.Sprintf("k%d", i))-1) }
	for i := 0; i < 3; i++ {
		tier.put(fmt.Sprintf("k%d", i), pay(i))
	}
	for i := 0; i < 3; i++ {
		got, ok := tier.get(fmt.Sprintf("k%d", i))
		if !ok || !bytes.Equal(got, pay(i)) {
			t.Fatalf("k%d: round trip failed (ok=%v)", i, ok)
		}
	}
	st := tier.Stats()
	if st.Entries != 3 || st.Writes != 3 || st.Evictions != 0 {
		t.Fatalf("pre-eviction stats %+v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("occupancy %d exceeds budget %d", st.Bytes, st.Budget)
	}

	// k0 was just touched by the get loop's ordering… make the LRU order
	// explicit: touch k1 and k2, then insert k3 — k0 must be the victim.
	tier.get("k1")
	tier.get("k2")
	tier.put("k3", pay(3))
	if _, ok := tier.get("k0"); ok {
		t.Fatal("k0 survived an over-budget insert despite being LRU")
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if _, ok := tier.get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	st = tier.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
	if st.Bytes > st.Budget {
		t.Fatalf("occupancy %d exceeds budget %d after eviction", st.Bytes, st.Budget)
	}

	// The directory never holds more bytes than the index says: evicted and
	// replaced spill files are deleted, not leaked.
	tier.put("k3", pay(4)) // replace
	var onDisk int64
	ents, err := os.ReadDir(tier.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size()
	}
	if st := tier.Stats(); onDisk != st.Bytes {
		t.Fatalf("directory holds %d bytes, index says %d (stale spill files leaked)", onDisk, st.Bytes)
	}

	// An entry bigger than the whole budget is refused outright.
	tier.put("huge", make([]byte, 1000))
	if _, ok := tier.get("huge"); ok {
		t.Fatal("over-budget entry was spilled")
	}
}

func TestDiskTierSweepsResidueAndRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	residue := filepath.Join(dir, "00000000deadbeef.spill")
	if err := os.WriteFile(residue, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	tier, err := NewDiskTier(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(residue); !os.IsNotExist(err) {
		t.Fatal("startup did not sweep residue spill files")
	}

	// A corrupted spill file is detected by its embedded key and dropped.
	tier.put("k", []byte("payload"))
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("want one spill file, got %d (%v)", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	if err := os.WriteFile(path, []byte("\x01Xgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := tier.get("k"); ok {
		t.Fatal("corrupt spill served")
	}
	if st := tier.Stats(); st.Entries != 0 {
		t.Fatalf("corrupt entry not dropped from the index: %+v", st)
	}
	// …and a vanished file likewise.
	tier.put("k2", []byte("payload"))
	ents, _ = os.ReadDir(dir)
	for _, e := range ents {
		os.Remove(filepath.Join(dir, e.Name()))
	}
	if _, ok := tier.get("k2"); ok {
		t.Fatal("vanished spill served")
	}
}

// TestCacheSpillsEvictionsToDiskTier locks the two-tier flow end to end:
// memory-budget evictions spill to disk, GetTier reloads and re-promotes
// them, and invalidation cascades so removed keys cannot resurrect.
func TestCacheSpillsEvictionsToDiskTier(t *testing.T) {
	c := New(256, 1)
	tier, err := NewDiskTier(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDiskTier(tier, byteEncode, byteDecode)

	a := bytes.Repeat([]byte{1}, 200)
	b := bytes.Repeat([]byte{2}, 200)
	c.Put("f/a", a, int64(len(a)))
	c.Put("f/b", b, int64(len(b))) // evicts f/a from the 256-byte memory tier

	if _, ok := c.Get("f/a"); ok {
		t.Fatal("f/a still in the memory tier")
	}
	v, tierHit, ok := c.GetTier("f/a")
	if !ok || tierHit != TierDisk {
		t.Fatalf("GetTier(f/a) = (tier %v, ok %v), want a disk hit", tierHit, ok)
	}
	if !bytes.Equal(v.([]byte), a) {
		t.Fatal("disk tier returned different bytes")
	}
	// The disk hit re-promoted f/a into memory (evicting f/b in turn).
	if _, ok := c.Get("f/a"); !ok {
		t.Fatal("disk hit did not promote f/a back into the memory tier")
	}

	// Remove cascades: the disk copy must not resurrect the key.
	c.Put("f/b", b, int64(len(b))) // push f/a back out so its spill is fresh
	c.Remove("f/a")
	if _, tierHit, ok := c.GetTier("f/a"); ok {
		t.Fatalf("removed key served from tier %v", tierHit)
	}

	// InvalidatePrefix cascades across both tiers.
	c.Put("f/c", a, int64(len(a)))
	c.Put("f/d", b, int64(len(b)))
	c.InvalidatePrefix("f/")
	for _, k := range []string{"f/b", "f/c", "f/d"} {
		if _, _, ok := c.GetTier(k); ok {
			t.Fatalf("%s survived InvalidatePrefix in some tier", k)
		}
	}
	if st, ok := c.DiskStats(); !ok || st.Entries != 0 {
		t.Fatalf("disk tier not emptied by the invalidation cascade: %+v", st)
	}
}
