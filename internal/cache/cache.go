// Package cache provides the sharded, byte-budgeted LRU brick cache behind
// the random-access reader and the mrserve HTTP server: decoded level and
// box fields ("bricks") are kept hot so repeated reads of popular levels
// skip the backend decode entirely.
//
// The cache is safe for concurrent use. Keys are sharded by FNV-1a hash so
// concurrent readers of different bricks rarely contend on the same lock.
// Each shard enforces its slice of the global byte budget for ordinary
// entries, but a single entry may be up to half the *global* budget: large
// bricks (the fine levels of big fields — the most expensive decodes) borrow
// room from the other shards, which are swept least-recently-used-first
// until the global budget fits again. No key distribution can overrun the
// global budget.
package cache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when New is given a non-positive
// one.
const DefaultShards = 16

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries displaced by the byte budget.
	Evictions int64
	// Entries and Bytes are current occupancy.
	Entries int
	Bytes   int64
	// Budget is the configured byte budget (0 = caching disabled).
	Budget int64
}

// Cache is a sharded LRU keyed by string, bounded by total value bytes.
// The zero value is not usable; call New. A nil *Cache is a valid no-op
// cache (every Get misses, every Put is dropped), so callers can thread an
// optional cache without nil checks.
type Cache struct {
	shards []shard
	budget int64
	// maxEntry is the largest single value admitted: the per-shard budget,
	// or half the global budget when that is larger (the oversize
	// exemption — see Put).
	maxEntry  int64
	bytes     atomic.Int64 // global occupancy, mirrored by the shard sums
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// Optional disk tier (SetDiskTier): values evicted from the memory LRU
	// are spilled through encode; GetTier reloads them through decode.
	disk   *DiskTier
	encode func(val any) ([]byte, bool)
	decode func(payload []byte) (val any, size int64, ok bool)
}

type shard struct {
	mu     sync.Mutex
	lru    *list.List // front = most recently used
	items  map[string]*list.Element
	bytes  int64
	budget int64
}

type entry struct {
	key  string
	val  any
	size int64
}

// New creates a cache holding at most budgetBytes of values across the
// given number of shards (DefaultShards when nShards <= 0). A budgetBytes
// <= 0 disables caching entirely.
func New(budgetBytes int64, nShards int) *Cache {
	if budgetBytes <= 0 {
		return &Cache{budget: 0}
	}
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if int64(nShards) > budgetBytes {
		nShards = 1
	}
	c := &Cache{shards: make([]shard, nShards), budget: budgetBytes}
	per := budgetBytes / int64(nShards)
	c.maxEntry = max(per, budgetBytes/2)
	for i := range c.shards {
		c.shards[i] = shard{lru: list.New(), items: make(map[string]*list.Element), budget: per}
	}
	return c
}

// fnv1a hashes a key without allocating.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shardIndex(key string) int {
	return int(fnv1a(key) % uint32(len(c.shards)))
}

// SetDiskTier attaches a disk spill tier: values displaced from the memory
// LRU by the byte budget are serialized through encode (which may decline a
// value by returning false) into t, and GetTier transparently reloads and
// re-promotes them through decode (which returns the value and the size to
// account it at in the memory tier). Must be called before the cache is
// shared between goroutines. No-op on a nil or disabled cache.
func (c *Cache) SetDiskTier(t *DiskTier, encode func(any) ([]byte, bool), decode func([]byte) (any, int64, bool)) {
	if c == nil || c.budget <= 0 || t == nil {
		return
	}
	c.disk, c.encode, c.decode = t, encode, decode
}

// Tier reports where GetTier found a value.
type Tier int

const (
	// TierNone: not cached anywhere.
	TierNone Tier = iota
	// TierMem: served from the in-memory LRU.
	TierMem
	// TierDisk: reloaded from the disk spill tier (and re-promoted to
	// memory).
	TierDisk
)

// GetTier is Get extended over the disk tier: a memory miss falls through
// to the spill files, and a disk hit is decoded, promoted back into the
// memory LRU, and returned with TierDisk so callers can attribute it.
func (c *Cache) GetTier(key string) (any, Tier, bool) {
	if val, ok := c.Get(key); ok {
		return val, TierMem, true
	}
	if c == nil || c.disk == nil || c.decode == nil {
		return nil, TierNone, false
	}
	payload, ok := c.disk.get(key)
	if !ok {
		return nil, TierNone, false
	}
	val, size, ok := c.decode(payload)
	if !ok {
		return nil, TierNone, false
	}
	c.Put(key, val, size)
	return val, TierDisk, true
}

// DiskStats snapshots the disk tier's counters; ok is false when no tier is
// attached.
func (c *Cache) DiskStats() (DiskStats, bool) {
	if c == nil || c.disk == nil {
		return DiskStats{}, false
	}
	return c.disk.Stats(), true
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil || c.budget <= 0 {
		return nil, false
	}
	s := &c.shards[c.shardIndex(key)]
	s.mu.Lock()
	el, ok := s.items[key]
	var val any
	if ok {
		s.lru.MoveToFront(el)
		// Extract under the lock: a concurrent Put may refresh the entry.
		val = el.Value.(*entry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put inserts (or refreshes) a value accounted at the given size in bytes,
// evicting least-recently-used entries until the budget fits. Ordinary
// values are bounded by their shard's slice of the budget; a value larger
// than that (but at most half the global budget) is still admitted — it
// borrows room by sweeping the other shards' LRU tails — so the most
// expensive bricks are never silently uncacheable. Values above the
// admission bound are dropped.
func (c *Cache) Put(key string, val any, size int64) {
	if c == nil || c.budget <= 0 || size < 0 {
		return
	}
	if size > c.maxEntry {
		return
	}
	si := c.shardIndex(key)
	s := &c.shards[si]
	// Budget victims are collected under the locks but spilled to the disk
	// tier only after every unlock (spilling is file IO).
	var victims []*entry
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		c.bytes.Add(size - e.size)
		e.val, e.size = val, size
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&entry{key: key, val: val, size: size})
		s.bytes += size
		c.bytes.Add(size)
	}
	// Shard-local eviction: an oversize entry may push out every ordinary
	// co-resident; the shard then legitimately sits above its slice.
	evicted := c.evictLocked(s, key, func() bool { return s.bytes > s.budget }, &victims)
	s.mu.Unlock()
	// Global sweep: when the insert (typically an oversize one) pushed the
	// whole cache over budget, reclaim from the other shards, one lock at a
	// time, least recently used first within each shard.
	for c.bytes.Load() > c.budget {
		freed := 0
		for i := 1; i < len(c.shards) && c.bytes.Load() > c.budget; i++ {
			o := &c.shards[(si+i)%len(c.shards)]
			o.mu.Lock()
			freed += c.evictLocked(o, key, func() bool { return o.bytes > 0 && c.bytes.Load() > c.budget }, &victims)
			o.mu.Unlock()
		}
		evicted += freed
		if freed == 0 {
			// Nothing left to reclaim elsewhere; drain this shard (except
			// the entry just inserted, which fits the global budget alone).
			s.mu.Lock()
			evicted += c.evictLocked(s, key, func() bool { return c.bytes.Load() > c.budget }, &victims)
			s.mu.Unlock()
			break
		}
	}
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
	c.spill(victims)
}

// spill writes budget victims to the disk tier, if one is attached. Called
// with no locks held.
func (c *Cache) spill(victims []*entry) {
	if c.disk == nil || c.encode == nil {
		return
	}
	for _, e := range victims {
		if payload, ok := c.encode(e.val); ok {
			c.disk.put(e.key, payload)
		}
	}
}

// evictLocked removes s's LRU entries while cond holds, never evicting
// keep, appending the displaced entries to *victims for a later disk-tier
// spill. The shard lock must be held. Returns the eviction count.
func (c *Cache) evictLocked(s *shard, keep string, cond func() bool, victims *[]*entry) int {
	evicted := 0
	for cond() {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		if e.key == keep {
			break
		}
		s.lru.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.size
		c.bytes.Add(-e.size)
		*victims = append(*victims, e)
		evicted++
	}
	return evicted
}

// Remove deletes the entry for key, if present, and reports whether the
// memory tier held it. Any disk-tier spill for the key is dropped too —
// invalidation must never resurrect from disk.
func (c *Cache) Remove(key string) bool {
	if c == nil || c.budget <= 0 {
		return false
	}
	if c.disk != nil {
		c.disk.remove(key)
	}
	s := &c.shards[c.shardIndex(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.items, key)
	s.bytes -= e.size
	c.bytes.Add(-e.size)
	return true
}

// InvalidatePrefix removes every memory-tier entry whose key starts with
// prefix and returns how many were dropped — the hook that lets a server
// drop one container's bricks when its file is replaced. Matching disk-tier
// spills are dropped too (not included in the count): a replaced
// container's bricks must not resurrect from disk. Invalidations are not
// counted as evictions (nothing displaced them).
func (c *Cache) InvalidatePrefix(prefix string) int {
	if c == nil || c.budget <= 0 {
		return 0
	}
	if c.disk != nil {
		c.disk.removePrefix(prefix)
	}
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.items {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			e := el.Value.(*entry)
			s.lru.Remove(el)
			delete(s.items, key)
			s.bytes -= e.size
			c.bytes.Add(-e.size)
			dropped++
		}
		s.mu.Unlock()
	}
	return dropped
}

// Stats snapshots the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Budget:    c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.items)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
