// Package cache provides the sharded, byte-budgeted LRU brick cache behind
// the random-access reader and the mrserve HTTP server: decoded level and
// box fields ("bricks") are kept hot so repeated reads of popular levels
// skip the backend decode entirely.
//
// The cache is safe for concurrent use. Keys are sharded by FNV-1a hash so
// concurrent readers of different bricks rarely contend on the same lock,
// and each shard enforces its slice of the global byte budget independently
// (a deliberately simple discipline: a pathological key distribution can
// under-use the budget, but no distribution can overrun it).
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when New is given a non-positive
// one.
const DefaultShards = 16

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries displaced by the byte budget.
	Evictions int64
	// Entries and Bytes are current occupancy.
	Entries int
	Bytes   int64
	// Budget is the configured byte budget (0 = caching disabled).
	Budget int64
}

// Cache is a sharded LRU keyed by string, bounded by total value bytes.
// The zero value is not usable; call New. A nil *Cache is a valid no-op
// cache (every Get misses, every Put is dropped), so callers can thread an
// optional cache without nil checks.
type Cache struct {
	shards    []shard
	budget    int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type shard struct {
	mu     sync.Mutex
	lru    *list.List // front = most recently used
	items  map[string]*list.Element
	bytes  int64
	budget int64
}

type entry struct {
	key  string
	val  any
	size int64
}

// New creates a cache holding at most budgetBytes of values across the
// given number of shards (DefaultShards when nShards <= 0). A budgetBytes
// <= 0 disables caching entirely.
func New(budgetBytes int64, nShards int) *Cache {
	if budgetBytes <= 0 {
		return &Cache{budget: 0}
	}
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if int64(nShards) > budgetBytes {
		nShards = 1
	}
	c := &Cache{shards: make([]shard, nShards), budget: budgetBytes}
	per := budgetBytes / int64(nShards)
	for i := range c.shards {
		c.shards[i] = shard{lru: list.New(), items: make(map[string]*list.Element), budget: per}
	}
	return c
}

// fnv1a hashes a key without allocating.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *shard {
	return &c.shards[fnv1a(key)%uint32(len(c.shards))]
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil || c.budget <= 0 {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var val any
	if ok {
		s.lru.MoveToFront(el)
		// Extract under the lock: a concurrent Put may refresh the entry.
		val = el.Value.(*entry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put inserts (or refreshes) a value accounted at the given size in bytes,
// evicting least-recently-used entries until the shard fits its budget.
// Values larger than the shard budget are not cached at all.
func (c *Cache) Put(key string, val any, size int64) {
	if c == nil || c.budget <= 0 || size < 0 {
		return
	}
	s := c.shard(key)
	if size > s.budget {
		return
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.val, e.size = val, size
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&entry{key: key, val: val, size: size})
		s.bytes += size
	}
	evicted := 0
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		if e.key == key {
			// Never evict the entry just inserted/refreshed.
			break
		}
		s.lru.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// Stats snapshots the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Budget:    c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.items)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
