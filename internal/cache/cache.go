// Package cache provides the sharded, byte-budgeted LRU brick cache behind
// the random-access reader and the mrserve HTTP server: decoded level and
// box fields ("bricks") are kept hot so repeated reads of popular levels
// skip the backend decode entirely.
//
// The cache is safe for concurrent use. Keys are sharded by FNV-1a hash so
// concurrent readers of different bricks rarely contend on the same lock.
// Each shard enforces its slice of the global byte budget for ordinary
// entries, but a single entry may be up to half the *global* budget: large
// bricks (the fine levels of big fields — the most expensive decodes) borrow
// room from the other shards, which are swept least-recently-used-first
// until the global budget fits again. No key distribution can overrun the
// global budget.
package cache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when New is given a non-positive
// one.
const DefaultShards = 16

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries displaced by the byte budget.
	Evictions int64
	// Entries and Bytes are current occupancy.
	Entries int
	Bytes   int64
	// Budget is the configured byte budget (0 = caching disabled).
	Budget int64
}

// Cache is a sharded LRU keyed by string, bounded by total value bytes.
// The zero value is not usable; call New. A nil *Cache is a valid no-op
// cache (every Get misses, every Put is dropped), so callers can thread an
// optional cache without nil checks.
type Cache struct {
	shards []shard
	budget int64
	// maxEntry is the largest single value admitted: the per-shard budget,
	// or half the global budget when that is larger (the oversize
	// exemption — see Put).
	maxEntry  int64
	bytes     atomic.Int64 // global occupancy, mirrored by the shard sums
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type shard struct {
	mu     sync.Mutex
	lru    *list.List // front = most recently used
	items  map[string]*list.Element
	bytes  int64
	budget int64
}

type entry struct {
	key  string
	val  any
	size int64
}

// New creates a cache holding at most budgetBytes of values across the
// given number of shards (DefaultShards when nShards <= 0). A budgetBytes
// <= 0 disables caching entirely.
func New(budgetBytes int64, nShards int) *Cache {
	if budgetBytes <= 0 {
		return &Cache{budget: 0}
	}
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if int64(nShards) > budgetBytes {
		nShards = 1
	}
	c := &Cache{shards: make([]shard, nShards), budget: budgetBytes}
	per := budgetBytes / int64(nShards)
	c.maxEntry = max(per, budgetBytes/2)
	for i := range c.shards {
		c.shards[i] = shard{lru: list.New(), items: make(map[string]*list.Element), budget: per}
	}
	return c
}

// fnv1a hashes a key without allocating.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shardIndex(key string) int {
	return int(fnv1a(key) % uint32(len(c.shards)))
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil || c.budget <= 0 {
		return nil, false
	}
	s := &c.shards[c.shardIndex(key)]
	s.mu.Lock()
	el, ok := s.items[key]
	var val any
	if ok {
		s.lru.MoveToFront(el)
		// Extract under the lock: a concurrent Put may refresh the entry.
		val = el.Value.(*entry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put inserts (or refreshes) a value accounted at the given size in bytes,
// evicting least-recently-used entries until the budget fits. Ordinary
// values are bounded by their shard's slice of the budget; a value larger
// than that (but at most half the global budget) is still admitted — it
// borrows room by sweeping the other shards' LRU tails — so the most
// expensive bricks are never silently uncacheable. Values above the
// admission bound are dropped.
func (c *Cache) Put(key string, val any, size int64) {
	if c == nil || c.budget <= 0 || size < 0 {
		return
	}
	if size > c.maxEntry {
		return
	}
	si := c.shardIndex(key)
	s := &c.shards[si]
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		c.bytes.Add(size - e.size)
		e.val, e.size = val, size
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&entry{key: key, val: val, size: size})
		s.bytes += size
		c.bytes.Add(size)
	}
	// Shard-local eviction: an oversize entry may push out every ordinary
	// co-resident; the shard then legitimately sits above its slice.
	evicted := c.evictLocked(s, key, func() bool { return s.bytes > s.budget })
	s.mu.Unlock()
	// Global sweep: when the insert (typically an oversize one) pushed the
	// whole cache over budget, reclaim from the other shards, one lock at a
	// time, least recently used first within each shard.
	for c.bytes.Load() > c.budget {
		freed := 0
		for i := 1; i < len(c.shards) && c.bytes.Load() > c.budget; i++ {
			o := &c.shards[(si+i)%len(c.shards)]
			o.mu.Lock()
			freed += c.evictLocked(o, key, func() bool { return o.bytes > 0 && c.bytes.Load() > c.budget })
			o.mu.Unlock()
		}
		evicted += freed
		if freed == 0 {
			// Nothing left to reclaim elsewhere; drain this shard (except
			// the entry just inserted, which fits the global budget alone).
			s.mu.Lock()
			evicted += c.evictLocked(s, key, func() bool { return c.bytes.Load() > c.budget })
			s.mu.Unlock()
			break
		}
	}
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// evictLocked removes s's LRU entries while cond holds, never evicting
// keep. The shard lock must be held. Returns the eviction count.
func (c *Cache) evictLocked(s *shard, keep string, cond func() bool) int {
	evicted := 0
	for cond() {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		if e.key == keep {
			break
		}
		s.lru.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.size
		c.bytes.Add(-e.size)
		evicted++
	}
	return evicted
}

// Remove deletes the entry for key, if present, and reports whether it was.
func (c *Cache) Remove(key string) bool {
	if c == nil || c.budget <= 0 {
		return false
	}
	s := &c.shards[c.shardIndex(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.items, key)
	s.bytes -= e.size
	c.bytes.Add(-e.size)
	return true
}

// InvalidatePrefix removes every entry whose key starts with prefix and
// returns how many were dropped — the hook that lets a server drop one
// container's bricks when its file is replaced. Invalidations are not
// counted as evictions (nothing displaced them).
func (c *Cache) InvalidatePrefix(prefix string) int {
	if c == nil || c.budget <= 0 {
		return 0
	}
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.items {
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			e := el.Value.(*entry)
			s.lru.Remove(el)
			delete(s.items, key)
			s.bytes -= e.size
			c.bytes.Add(-e.size)
			dropped++
		}
		s.mu.Unlock()
	}
	return dropped
}

// Stats snapshots the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Budget:    c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.items)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
