package cache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// The disk tier is the cache's second level: bricks evicted from the memory
// LRU are spilled to files in a budgeted directory instead of being thrown
// away, so a working set larger than RAM costs a file read on re-access
// rather than a full backend fetch + decode. The tier is ephemeral — it is
// wiped at startup (a cache has nothing worth keeping across restarts) and
// never fsynced.

// maxSpillKeyLen bounds the key-length prefix read back from a spill file;
// anything larger marks the file as garbage, not a huge allocation.
const maxSpillKeyLen = 4096

// DiskStats snapshots the disk tier's counters and occupancy.
type DiskStats struct {
	// Hits and Misses count lookups that fell through the memory tier.
	Hits, Misses int64
	// Writes counts spill files written (memory-tier evictions captured).
	Writes int64
	// Evictions counts spill files displaced by the disk budget.
	Evictions int64
	// Entries and Bytes are current occupancy; Budget the configured bound.
	Entries int
	Bytes   int64
	Budget  int64
}

// DiskTier is a byte-budgeted LRU of spill files in one directory. Safe for
// concurrent use; all file IO happens outside its lock.
type DiskTier struct {
	dir    string
	budget int64
	seq    atomic.Uint64 // unique spill filenames

	mu    sync.Mutex
	lru   *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits, misses, writes, evictions atomic.Int64
}

type diskEntry struct {
	key  string
	path string
	size int64 // file size on disk (header + payload)
}

// NewDiskTier creates (or reuses) dir as a spill directory bounded by
// budgetBytes, removing any spill files a previous process left behind.
func NewDiskTier(dir string, budgetBytes int64) (*DiskTier, error) {
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("cache: disk tier budget must be positive, got %d", budgetBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The tier is ephemeral: stale spill files from a previous run are
	// unindexed garbage, so reclaim the space up front.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".spill") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &DiskTier{
		dir:    dir,
		budget: budgetBytes,
		lru:    list.New(),
		items:  make(map[string]*list.Element),
	}, nil
}

// Dir returns the spill directory.
func (t *DiskTier) Dir() string { return t.dir }

// Stats snapshots the tier's counters and occupancy.
func (t *DiskTier) Stats() DiskStats {
	st := DiskStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Writes:    t.writes.Load(),
		Evictions: t.evictions.Load(),
		Budget:    t.budget,
	}
	t.mu.Lock()
	st.Entries = len(t.items)
	st.Bytes = t.bytes
	t.mu.Unlock()
	return st
}

// encodeSpill frames a payload for its spill file: uvarint key length, key
// bytes, payload. The embedded key lets reads verify the index still points
// at the file they expect.
func encodeSpill(key string, payload []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(key)+len(payload))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	return append(buf, payload...)
}

// decodeSpill undoes encodeSpill, returning the embedded key and payload.
func decodeSpill(data []byte) (string, []byte, error) {
	klen, n := binary.Uvarint(data)
	if n <= 0 {
		return "", nil, fmt.Errorf("cache: spill file: bad key length prefix")
	}
	if klen > maxSpillKeyLen {
		return "", nil, fmt.Errorf("cache: spill file: implausible key length %d", klen)
	}
	rest := data[n:]
	if uint64(len(rest)) < klen {
		return "", nil, fmt.Errorf("cache: spill file: truncated key")
	}
	return string(rest[:klen]), rest[klen:], nil
}

// put spills a payload for key, replacing any previous spill and evicting
// least-recently-used files until the budget fits. Write failures just drop
// the spill — the tier is an optimization, never a correctness dependency.
func (t *DiskTier) put(key string, payload []byte) {
	if len(key) > maxSpillKeyLen {
		return
	}
	framed := encodeSpill(key, payload)
	size := int64(len(framed))
	if size > t.budget {
		return
	}
	path := filepath.Join(t.dir, fmt.Sprintf("%016x.spill", t.seq.Add(1)))
	// Write the complete file before touching the index: a concurrent get
	// never observes a partial spill because the path is not indexed yet.
	if err := os.WriteFile(path, framed, 0o644); err != nil {
		os.Remove(path)
		return
	}
	var stale []string
	t.mu.Lock()
	if el, ok := t.items[key]; ok {
		old := el.Value.(*diskEntry)
		stale = append(stale, old.path)
		t.bytes -= old.size
		old.path, old.size = path, size
		t.lru.MoveToFront(el)
	} else {
		t.items[key] = t.lru.PushFront(&diskEntry{key: key, path: path, size: size})
	}
	t.bytes += size
	evicted := 0
	for t.bytes > t.budget {
		back := t.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*diskEntry)
		if e.key == key {
			break
		}
		t.lru.Remove(back)
		delete(t.items, e.key)
		t.bytes -= e.size
		stale = append(stale, e.path)
		evicted++
	}
	t.mu.Unlock()
	t.writes.Add(1)
	if evicted > 0 {
		t.evictions.Add(int64(evicted))
	}
	for _, p := range stale {
		os.Remove(p)
	}
}

// get returns the spilled payload for key, if present and intact, marking
// it most recently used. A file that has vanished or fails verification is
// dropped from the index and reported as a miss.
func (t *DiskTier) get(key string) ([]byte, bool) {
	t.mu.Lock()
	el, ok := t.items[key]
	var path string
	if ok {
		t.lru.MoveToFront(el)
		path = el.Value.(*diskEntry).path
	}
	t.mu.Unlock()
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err == nil {
		gotKey, payload, derr := decodeSpill(data)
		if derr == nil && gotKey == key {
			t.hits.Add(1)
			return payload, true
		}
	}
	// Vanished (a concurrent replace removed it) or corrupt: drop the index
	// entry if it still points at this path.
	t.mu.Lock()
	if el, ok := t.items[key]; ok {
		e := el.Value.(*diskEntry)
		if e.path == path {
			t.lru.Remove(el)
			delete(t.items, key)
			t.bytes -= e.size
		}
	}
	t.mu.Unlock()
	t.misses.Add(1)
	return nil, false
}

// remove drops key's spill, if any (invalidation cascade from the memory
// tier — a replaced container's bricks must not resurrect from disk).
func (t *DiskTier) remove(key string) {
	t.mu.Lock()
	el, ok := t.items[key]
	var path string
	if ok {
		e := el.Value.(*diskEntry)
		path = e.path
		t.lru.Remove(el)
		delete(t.items, key)
		t.bytes -= e.size
	}
	t.mu.Unlock()
	if ok {
		os.Remove(path)
	}
}

// removePrefix drops every spill whose key starts with prefix, returning
// how many.
func (t *DiskTier) removePrefix(prefix string) int {
	var paths []string
	t.mu.Lock()
	for key, el := range t.items {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		e := el.Value.(*diskEntry)
		paths = append(paths, e.path)
		t.lru.Remove(el)
		delete(t.items, key)
		t.bytes -= e.size
	}
	t.mu.Unlock()
	for _, p := range paths {
		os.Remove(p)
	}
	return len(paths)
}
