// Package mcubes implements isosurface extraction: marching-cubes cell
// classification (which cells the isosurface crosses) and triangle
// extraction by marching tetrahedra (each cell split into six tetrahedra,
// which avoids the ambiguous cases of classic marching cubes while producing
// an equivalent surface). It provides the deterministic-surface machinery on
// which package uncertainty builds probabilistic marching cubes.
package mcubes

import (
	"math"

	"repro/internal/field"
)

// Vec3 is a point in cell-index space.
type Vec3 struct{ X, Y, Z float64 }

// Triangle is one isosurface triangle.
type Triangle [3]Vec3

// cornerOffsets lists the 8 cube corners in the conventional order:
// bit 0 = +x, bit 1 = +y, bit 2 = +z.
var cornerOffsets = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
}

// tets decomposes the cube into six tetrahedra sharing the main diagonal
// corner0–corner7 (indices into cornerOffsets).
var tets = [6][4]int{
	{0, 5, 1, 7}, {0, 1, 3, 7}, {0, 3, 2, 7},
	{0, 2, 6, 7}, {0, 6, 4, 7}, {0, 4, 5, 7},
}

// CellCrosses reports whether the isosurface crosses the cell with min
// corner (x,y,z): some corner is ≥ iso and some corner is < iso.
func CellCrosses(f *field.Field, x, y, z int, iso float64) bool {
	above, below := false, false
	for _, o := range cornerOffsets {
		if f.At(x+o[0], y+o[1], z+o[2]) >= iso {
			above = true
		} else {
			below = true
		}
		if above && below {
			return true
		}
	}
	return false
}

// CrossingCells returns a boolean mask over cells ((Nx−1)(Ny−1)(Nz−1), cell
// raster order) marking isosurface-crossing cells, plus the crossing count.
func CrossingCells(f *field.Field, iso float64) ([]bool, int) {
	cx, cy, cz := f.Nx-1, f.Ny-1, f.Nz-1
	if cx <= 0 || cy <= 0 || cz <= 0 {
		return nil, 0
	}
	mask := make([]bool, cx*cy*cz)
	count := 0
	for z := 0; z < cz; z++ {
		for y := 0; y < cy; y++ {
			for x := 0; x < cx; x++ {
				if CellCrosses(f, x, y, z, iso) {
					mask[x+cx*(y+cy*z)] = true
					count++
				}
			}
		}
	}
	return mask, count
}

// ExtractSurface runs marching tetrahedra over the whole field and returns
// the isosurface triangles in cell-index coordinates.
func ExtractSurface(f *field.Field, iso float64) []Triangle {
	var out []Triangle
	for z := 0; z < f.Nz-1; z++ {
		for y := 0; y < f.Ny-1; y++ {
			for x := 0; x < f.Nx-1; x++ {
				out = appendCellTriangles(out, f, x, y, z, iso)
			}
		}
	}
	return out
}

func appendCellTriangles(out []Triangle, f *field.Field, x, y, z int, iso float64) []Triangle {
	if !CellCrosses(f, x, y, z, iso) {
		return out
	}
	var vals [8]float64
	var pos [8]Vec3
	for i, o := range cornerOffsets {
		vals[i] = f.At(x+o[0], y+o[1], z+o[2])
		pos[i] = Vec3{float64(x + o[0]), float64(y + o[1]), float64(z + o[2])}
	}
	for _, tet := range tets {
		out = appendTetTriangles(out, vals, pos, tet, iso)
	}
	return out
}

// appendTetTriangles emits 0–2 triangles for one tetrahedron.
func appendTetTriangles(out []Triangle, vals [8]float64, pos [8]Vec3, tet [4]int, iso float64) []Triangle {
	var above [4]bool
	n := 0
	for i, vi := range tet {
		if vals[vi] >= iso {
			above[i] = true
			n++
		}
	}
	edge := func(i, j int) Vec3 {
		a, b := tet[i], tet[j]
		va, vb := vals[a], vals[b]
		t := 0.5
		if vb != va {
			t = (iso - va) / (vb - va)
		}
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		return Vec3{
			X: pos[a].X + t*(pos[b].X-pos[a].X),
			Y: pos[a].Y + t*(pos[b].Y-pos[a].Y),
			Z: pos[a].Z + t*(pos[b].Z-pos[a].Z),
		}
	}
	switch n {
	case 0, 4:
		return out
	case 1, 3:
		// One vertex isolated: a single triangle on the three edges from it.
		iso1 := 0
		want := n == 1
		for i := 0; i < 4; i++ {
			if above[i] == want {
				iso1 = i
				break
			}
		}
		var others [3]int
		k := 0
		for i := 0; i < 4; i++ {
			if i != iso1 {
				others[k] = i
				k++
			}
		}
		return append(out, Triangle{edge(iso1, others[0]), edge(iso1, others[1]), edge(iso1, others[2])})
	default: // 2
		// Two above, two below: a quad split into two triangles.
		var ab, be [2]int
		ka, kb := 0, 0
		for i := 0; i < 4; i++ {
			if above[i] {
				ab[ka] = i
				ka++
			} else {
				be[kb] = i
				kb++
			}
		}
		q0 := edge(ab[0], be[0])
		q1 := edge(ab[0], be[1])
		q2 := edge(ab[1], be[1])
		q3 := edge(ab[1], be[0])
		return append(out, Triangle{q0, q1, q2}, Triangle{q0, q2, q3})
	}
}

// SurfaceArea sums the areas of the triangles.
func SurfaceArea(tris []Triangle) float64 {
	area := 0.0
	for _, t := range tris {
		ax := t[1].X - t[0].X
		ay := t[1].Y - t[0].Y
		az := t[1].Z - t[0].Z
		bx := t[2].X - t[0].X
		by := t[2].Y - t[0].Y
		bz := t[2].Z - t[0].Z
		cx := ay*bz - az*by
		cy := az*bx - ax*bz
		cz := ax*by - ay*bx
		area += 0.5 * math.Sqrt(cx*cx+cy*cy+cz*cz)
	}
	return area
}
