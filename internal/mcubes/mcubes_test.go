package mcubes

import (
	"math"
	"testing"

	"repro/internal/field"
)

// sphereField returns f(x) = |x - c| for a grid, so the isosurface at r is a
// sphere of radius r.
func sphereField(n int) *field.Field {
	f := field.New(n, n, n)
	c := float64(n-1) / 2
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
				f.Set(x, y, z, math.Sqrt(dx*dx+dy*dy+dz*dz))
			}
		}
	}
	return f
}

func TestCellCrossesPlane(t *testing.T) {
	f := field.New(2, 2, 2)
	// Half below, half above iso=0.5.
	f.Set(0, 0, 0, 0)
	f.Set(1, 0, 0, 1)
	f.Set(0, 1, 0, 0)
	f.Set(1, 1, 0, 1)
	f.Set(0, 0, 1, 0)
	f.Set(1, 0, 1, 1)
	f.Set(0, 1, 1, 0)
	f.Set(1, 1, 1, 1)
	if !CellCrosses(f, 0, 0, 0, 0.5) {
		t.Fatal("cell must cross")
	}
	if CellCrosses(f, 0, 0, 0, 2) {
		t.Fatal("cell must not cross iso above all values")
	}
}

func TestCrossingCellsCount(t *testing.T) {
	f := sphereField(16)
	_, count := CrossingCells(f, 5)
	if count == 0 {
		t.Fatal("sphere surface must cross cells")
	}
	// All crossing cells must be at distance ~5 from center.
	mask, _ := CrossingCells(f, 5)
	cx := 15
	c := 7.5
	for z := 0; z < cx; z++ {
		for y := 0; y < cx; y++ {
			for x := 0; x < cx; x++ {
				if !mask[x+cx*(y+cx*z)] {
					continue
				}
				d := math.Sqrt((float64(x)+0.5-c)*(float64(x)+0.5-c) +
					(float64(y)+0.5-c)*(float64(y)+0.5-c) +
					(float64(z)+0.5-c)*(float64(z)+0.5-c))
				if math.Abs(d-5) > 1.8 {
					t.Fatalf("crossing cell (%d,%d,%d) at distance %g from surface", x, y, z, d)
				}
			}
		}
	}
}

func TestExtractPlanarSurfaceExact(t *testing.T) {
	// f = x: the isosurface at x=2.5 is the plane x=2.5; every triangle
	// vertex must lie on it.
	n := 6
	f := field.New(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Set(x, y, z, float64(x))
			}
		}
	}
	tris := ExtractSurface(f, 2.5)
	if len(tris) == 0 {
		t.Fatal("no triangles for plane")
	}
	for _, tr := range tris {
		for _, v := range tr {
			if math.Abs(v.X-2.5) > 1e-12 {
				t.Fatalf("vertex off plane: %+v", v)
			}
		}
	}
	// Plane area through a 5x5x5-cell domain is 5x5 = 25.
	if a := SurfaceArea(tris); math.Abs(a-25) > 1e-9 {
		t.Fatalf("plane area %g, want 25", a)
	}
}

func TestSphereAreaApproximation(t *testing.T) {
	f := sphereField(32)
	r := 10.0
	tris := ExtractSurface(f, r)
	got := SurfaceArea(tris)
	want := 4 * math.Pi * r * r
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("sphere area %g, want ~%g (±5%%)", got, want)
	}
}

func TestNoSurfaceOutsideRange(t *testing.T) {
	f := sphereField(8)
	if tris := ExtractSurface(f, 100); len(tris) != 0 {
		t.Fatalf("%d triangles for out-of-range isovalue", len(tris))
	}
}

func TestSurfaceWatertightVertexOnEdges(t *testing.T) {
	// Every triangle vertex produced by marching tetrahedra must have a
	// value equal to iso under trilinear interpolation along its edge; a
	// cheap necessary check: vertices lie within the cell bounds.
	f := sphereField(12)
	tris := ExtractSurface(f, 4)
	for _, tr := range tris {
		for _, v := range tr {
			if v.X < 0 || v.X > 11 || v.Y < 0 || v.Y > 11 || v.Z < 0 || v.Z > 11 {
				t.Fatalf("vertex outside domain: %+v", v)
			}
		}
	}
}

func TestDegenerateSmallFields(t *testing.T) {
	f := field.New(1, 1, 1)
	if mask, n := CrossingCells(f, 0); mask != nil || n != 0 {
		t.Fatal("1-voxel field has no cells")
	}
	if tris := ExtractSurface(f, 0); len(tris) != 0 {
		t.Fatal("1-voxel field has no surface")
	}
}
