// Package zfp implements a transform-based, block-wise lossy compressor
// modeled after ZFP's fixed-accuracy mode (Lindstrom, TVCG 2014).
//
// Each 4³ block is converted to block-floating-point integers (a shared
// exponent per block), decorrelated with a separable two-level integer
// lifting transform (exactly invertible), reordered by total sequency, and
// its coefficients are truncated to a per-block precision derived
// conservatively from the error tolerance. Like real ZFP, the achieved
// maximum error is typically well below the requested tolerance — the
// "underestimation characteristic" the paper exploits when choosing the
// post-processing intensity candidates for ZFP (§III-B).
//
// Partial boundary blocks are padded by edge replication, as in ZFP.
package zfp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/field"
	"repro/internal/flatepool"
)

// BlockSize is the fixed block edge (4, as in ZFP).
const BlockSize = 4

// Options configures compression.
type Options struct {
	// Tolerance is the absolute error tolerance (> 0). The achieved max
	// error is guaranteed ≤ Tolerance and is typically much smaller.
	Tolerance float64
}

const magic = "ZFPG"

// fixedPointBits positions values in a 64-bit integer with headroom for the
// transform's dynamic-range growth.
const fixedPointBits = 40

// conservativeness divides the tolerance when choosing how many low bits to
// truncate, absorbing transform error amplification plus rounding. The value
// is calibrated so the achieved maximum error stays below the tolerance with
// a 2–4× margin — matching real ZFP's accuracy mode, whose true error also
// sits well below the requested tolerance (the "underestimation
// characteristic" of §III-B).
const conservativeness = 4

// emaxEmpty flags an all-zero block.
const emaxEmpty = math.MinInt16

// Compress encodes the field under opt.
func Compress(f *field.Field, opt Options) ([]byte, error) {
	if opt.Tolerance <= 0 {
		return nil, errors.New("zfp: tolerance must be positive")
	}
	nx, ny, nz := f.Nx, f.Ny, f.Nz

	nBlocks := blocksAlong(nx) * blocksAlong(ny) * blocksAlong(nz)
	emaxs := make([]int16, 0, nBlocks)
	var coefBuf bytes.Buffer
	coefBuf.Grow(nBlocks * 80) // ~1.25 varint bytes per coefficient
	var tmp [binary.MaxVarintLen64]byte

	var block [64]float64
	var iblock [64]int64
	forEachBlock(nx, ny, nz, func(x0, y0, z0 int) {
		loadBlockPadded(f, x0, y0, z0, &block)
		maxAbs := 0.0
		for _, v := range block {
			a := math.Abs(v)
			if a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			emaxs = append(emaxs, emaxEmpty)
			return
		}
		_, emax := math.Frexp(maxAbs)
		scale := math.Ldexp(1, fixedPointBits-emax)
		for i, v := range block {
			iblock[i] = int64(math.Round(v * scale))
		}
		forwardTransform(&iblock)
		drop := dropBits(opt.Tolerance, scale)
		emaxs = append(emaxs, int16(emax))
		for _, idx := range sequencyOrder {
			c := rshiftRound(iblock[idx], drop)
			n := binary.PutVarint(tmp[:], c)
			coefBuf.Write(tmp[:n])
		}
	})

	var payload bytes.Buffer
	payload.Grow(2*len(emaxs) + coefBuf.Len() + 64)
	payload.WriteString(magic)
	for _, v := range []uint64{uint64(nx), uint64(ny), uint64(nz)} {
		n := binary.PutUvarint(tmp[:], v)
		payload.Write(tmp[:n])
	}
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(opt.Tolerance))
	payload.Write(f8[:])
	n := binary.PutUvarint(tmp[:], uint64(len(emaxs)))
	payload.Write(tmp[:n])
	for _, e := range emaxs {
		var b2 [2]byte
		binary.LittleEndian.PutUint16(b2[:], uint16(e))
		payload.Write(b2[:])
	}
	payload.Write(coefBuf.Bytes())

	return flatepool.Deflate(payload.Bytes())
}

// Decompress decodes a buffer produced by Compress.
func Decompress(data []byte) (*field.Field, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	payload, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("zfp: inflate: %w", err)
	}
	if len(payload) < 4 || string(payload[:4]) != magic {
		return nil, errors.New("zfp: bad magic")
	}
	buf := payload[4:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, errors.New("zfp: truncated header")
		}
		buf = buf[n:]
		return v, nil
	}
	nx64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	ny64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nz64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nx, ny, nz, _, err := field.CheckDims(nx64, ny64, nz64)
	if err != nil {
		return nil, errors.New("zfp: invalid dims")
	}
	if len(buf) < 8 {
		return nil, errors.New("zfp: truncated tolerance")
	}
	tol := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	if !(tol > 0) {
		return nil, errors.New("zfp: invalid tolerance")
	}
	nBlocks64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	// Compare in uint64: int(nBlocks64) can wrap negative for a hostile
	// count and the conversion would hide it from the mismatch error.
	want := blocksAlong(nx) * blocksAlong(ny) * blocksAlong(nz)
	if nBlocks64 != uint64(want) {
		return nil, fmt.Errorf("zfp: block count %d != %d", nBlocks64, want)
	}
	if len(buf) < 2*want {
		return nil, errors.New("zfp: truncated emax table")
	}
	emaxs := make([]int16, want)
	for i := range emaxs {
		//lint:ignore mrlint/uvarintguard emax is an int16 stored as its uint16 bit pattern; the conversion reinterprets, every value is in range
		emaxs[i] = int16(binary.LittleEndian.Uint16(buf[2*i:]))
	}
	buf = buf[2*want:]

	g := field.New(nx, ny, nz)
	var iblock [64]int64
	var block, zeroBlock [64]float64
	bi := 0
	var decodeErr error
	forEachBlock(nx, ny, nz, func(x0, y0, z0 int) {
		if decodeErr != nil {
			return
		}
		emax := emaxs[bi]
		bi++
		if emax == emaxEmpty {
			storeBlock(g, x0, y0, z0, &zeroBlock)
			return
		}
		scale := math.Ldexp(1, fixedPointBits-int(emax))
		drop := dropBits(tol, scale)
		for _, idx := range sequencyOrder {
			c, n := binary.Varint(buf)
			if n <= 0 {
				decodeErr = errors.New("zfp: truncated coefficients")
				return
			}
			buf = buf[n:]
			iblock[idx] = c << drop
		}
		inverseTransform(&iblock)
		for i, v := range iblock {
			block[i] = float64(v) / scale
		}
		storeBlock(g, x0, y0, z0, &block)
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return g, nil
}

// dropBits returns how many low coefficient bits can be discarded while
// keeping the reconstruction error within tol.
func dropBits(tol, scale float64) uint {
	budget := tol * scale / conservativeness
	if budget < 2 {
		return 0
	}
	d := uint(math.Floor(math.Log2(budget)))
	if d > 40 {
		d = 40
	}
	return d
}

// rshiftRound shifts v right by b bits with round-half-up, so the
// reintroduced error is at most 2^(b−1).
func rshiftRound(v int64, b uint) int64 {
	if b == 0 {
		return v
	}
	return (v + 1<<(b-1)) >> b
}

// lift4 applies the forward two-level integer lifting transform to a stride
// of 4 values: after it, index 0 holds the DC average, index 2 the low
// detail, and indices 1, 3 the high details. Every step is a lifting step,
// so inverse4 undoes it exactly.
func lift4(v *[64]int64, i0, stride int) {
	a, b, c, d := v[i0], v[i0+stride], v[i0+2*stride], v[i0+3*stride]
	b -= a
	d -= c
	a += b >> 1
	c += d >> 1
	c -= a
	a += c >> 1
	v[i0], v[i0+stride], v[i0+2*stride], v[i0+3*stride] = a, b, c, d
}

// inverse4 exactly inverts lift4.
func inverse4(v *[64]int64, i0, stride int) {
	a, b, c, d := v[i0], v[i0+stride], v[i0+2*stride], v[i0+3*stride]
	a -= c >> 1
	c += a
	c -= d >> 1
	d += c
	a -= b >> 1
	b += a
	v[i0], v[i0+stride], v[i0+2*stride], v[i0+3*stride] = a, b, c, d
}

func forwardTransform(v *[64]int64) {
	// Along x.
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			lift4(v, 4*y+16*z, 1)
		}
	}
	// Along y.
	for z := 0; z < 4; z++ {
		for x := 0; x < 4; x++ {
			lift4(v, x+16*z, 4)
		}
	}
	// Along z.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			lift4(v, x+4*y, 16)
		}
	}
}

func inverseTransform(v *[64]int64) {
	// Reverse order of forwardTransform.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			inverse4(v, x+4*y, 16)
		}
	}
	for z := 0; z < 4; z++ {
		for x := 0; x < 4; x++ {
			inverse4(v, x+16*z, 4)
		}
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			inverse4(v, 4*y+16*z, 1)
		}
	}
}

// sequencyOrder lists the 64 coefficient indices ordered by total sequency
// (sum of per-axis frequency weights), so low-frequency coefficients come
// first — improving entropy-coding locality, as in ZFP's ordering.
var sequencyOrder = buildSequencyOrder()

// freqWeight maps the within-axis position after lift4 to a frequency rank:
// 0 = DC, 2 = low detail, 1 and 3 = high details.
var freqWeight = [4]int{0, 2, 1, 2}

func buildSequencyOrder() []int {
	type entry struct{ idx, w int }
	entries := make([]entry, 0, 64)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				entries = append(entries, entry{x + 4*y + 16*z, freqWeight[x] + freqWeight[y] + freqWeight[z]})
			}
		}
	}
	// Stable sort by weight, preserving raster order within a weight class.
	order := make([]int, 0, 64)
	for w := 0; w <= 6; w++ {
		for _, e := range entries {
			if e.w == w {
				order = append(order, e.idx)
			}
		}
	}
	return order
}

func blocksAlong(n int) int { return (n + BlockSize - 1) / BlockSize }

func forEachBlock(nx, ny, nz int, fn func(x0, y0, z0 int)) {
	for z0 := 0; z0 < nz; z0 += BlockSize {
		for y0 := 0; y0 < ny; y0 += BlockSize {
			for x0 := 0; x0 < nx; x0 += BlockSize {
				fn(x0, y0, z0)
			}
		}
	}
}

// loadBlockPadded copies the 4³ block at (x0,y0,z0) into dst, replicating
// edge samples for out-of-domain positions.
func loadBlockPadded(f *field.Field, x0, y0, z0 int, dst *[64]float64) {
	for z := 0; z < 4; z++ {
		gz := x0clamp(z0+z, f.Nz)
		for y := 0; y < 4; y++ {
			gy := x0clamp(y0+y, f.Ny)
			for x := 0; x < 4; x++ {
				gx := x0clamp(x0+x, f.Nx)
				dst[x+4*y+16*z] = f.At(gx, gy, gz)
			}
		}
	}
}

// storeBlock writes back the in-domain portion of a 4³ block.
func storeBlock(f *field.Field, x0, y0, z0 int, src *[64]float64) {
	for z := 0; z < 4 && z0+z < f.Nz; z++ {
		for y := 0; y < 4 && y0+y < f.Ny; y++ {
			for x := 0; x < 4 && x0+x < f.Nx; x++ {
				f.Set(x0+x, y0+y, z0+z, src[x+4*y+16*z])
			}
		}
	}
}

func x0clamp(v, n int) int {
	if v >= n {
		return n - 1
	}
	return v
}
