package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/synth"
)

func smoothField(n int) *field.Field {
	f := field.New(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				px, py, pz := float64(x)/float64(n), float64(y)/float64(n), float64(z)/float64(n)
				f.Set(x, y, z, math.Sin(6*px)+math.Cos(5*py)*pz)
			}
		}
	}
	return f
}

func TestLiftInverseExact(t *testing.T) {
	prop := func(a, b, c, d int32) bool {
		var v [64]int64
		v[0], v[1], v[2], v[3] = int64(a), int64(b), int64(c), int64(d)
		w := v
		lift4(&v, 0, 1)
		inverse4(&v, 0, 1)
		return v == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformInverseExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var v, w [64]int64
		for i := range v {
			v[i] = int64(rng.Int31()) - (1 << 30)
			w[i] = v[i]
		}
		forwardTransform(&v)
		inverseTransform(&v)
		if v != w {
			t.Fatalf("transform round trip failed on trial %d", trial)
		}
	}
}

func TestDCConcentratesEnergy(t *testing.T) {
	// A constant block transforms to a single DC coefficient.
	var v [64]int64
	for i := range v {
		v[i] = 1000
	}
	forwardTransform(&v)
	if v[0] != 1000 {
		t.Fatalf("DC = %d, want 1000", v[0])
	}
	for i := 1; i < 64; i++ {
		if v[i] != 0 {
			t.Fatalf("AC coefficient %d = %d, want 0", i, v[i])
		}
	}
}

func TestSequencyOrderIsPermutation(t *testing.T) {
	seen := make([]bool, 64)
	for _, idx := range sequencyOrder {
		if idx < 0 || idx >= 64 || seen[idx] {
			t.Fatalf("bad sequency order at %d", idx)
		}
		seen[idx] = true
	}
	if sequencyOrder[0] != 0 {
		t.Fatalf("first coefficient must be DC, got %d", sequencyOrder[0])
	}
}

func TestRoundTripWithinTolerance(t *testing.T) {
	f := smoothField(20)
	for _, tol := range []float64{1e-1, 1e-3, 1e-6} {
		data, err := Compress(f, Options{Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		g, err := Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		if d := f.MaxAbsDiff(g); d > tol {
			t.Fatalf("tol=%g: max error %g", tol, d)
		}
	}
}

func TestUnderestimation(t *testing.T) {
	// The achieved error should be clearly below the tolerance — the
	// characteristic the paper relies on for ZFP's post-process candidates.
	f := smoothField(24)
	tol := 1e-2
	data, err := Compress(f, Options{Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > tol/2 {
		t.Fatalf("expected strong underestimation, max error %g vs tol %g", d, tol)
	}
}

func TestPartialBlocks(t *testing.T) {
	f := field.New(9, 6, 11)
	rng := rand.New(rand.NewSource(3))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	tol := 0.05
	data, err := Compress(f, Options{Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameShape(g) {
		t.Fatal("shape mismatch")
	}
	if d := f.MaxAbsDiff(g); d > tol {
		t.Fatalf("max error %g", d)
	}
}

func TestAllZeroField(t *testing.T) {
	f := field.New(8, 8, 8)
	data, err := Compress(f, Options{Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("zero field decoded nonzero at %d: %g", i, v)
		}
	}
	if len(data) > 200 {
		t.Fatalf("zero field should compress to almost nothing, got %d bytes", len(data))
	}
}

func TestInvalidInputs(t *testing.T) {
	f := smoothField(8)
	if _, err := Compress(f, Options{Tolerance: 0}); err == nil {
		t.Fatal("expected error for zero tolerance")
	}
	if _, err := Decompress([]byte{1}); err == nil {
		t.Fatal("expected error for garbage")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		f := field.New(nx, ny, nz)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
		}
		tol := 0.01
		data, err := Compress(f, Options{Tolerance: tol})
		if err != nil {
			return false
		}
		g, err := Decompress(data)
		if err != nil {
			return false
		}
		return f.MaxAbsDiff(g) <= tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHigherToleranceBetterRatio(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 24, 5)
	rng := f.ValueRange()
	small, err := Compress(f, Options{Tolerance: rng * 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compress(f, Options{Tolerance: rng * 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if len(big) >= len(small) {
		t.Fatalf("looser tolerance must compress better: %d vs %d", len(big), len(small))
	}
}
