// Package sz3 implements a global, interpolation-based, error-bounded lossy
// compressor for 3D floating-point fields, modeled after SZ3 (Zhao et al.,
// ICDE 2021; Liang et al.). It is the substrate the paper's SZ3MR
// optimizations (padding, per-level adaptive error bounds) are built on.
//
// Compression proceeds level by level over strides s = 2ᵏ, …, 2, 1. The
// point grid at stride 2s is already reconstructed; the grid at stride s is
// filled dimension-by-dimension, predicting each new point from its two (or
// four, for cubic) reconstructed neighbors at distance s along the current
// axis, falling back to linear extrapolation at the domain boundary — the
// behaviour §III-A of the paper analyzes and improves with padding.
// Prediction residuals are quantized under the (possibly per-level) error
// bound and entropy coded with canonical Huffman; escaped outliers are stored
// verbatim. The whole payload is wrapped in DEFLATE (standing in for SZ3's
// zstd stage).
package sz3

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/field"
	"repro/internal/flatepool"
	"repro/internal/huffman"
	"repro/internal/quant"
)

// Interpolant selects the prediction spline.
type Interpolant byte

const (
	// Linear predicts the midpoint as the average of the two stride-s
	// neighbors (the paper's running example).
	Linear Interpolant = iota
	// Cubic uses the 4-point cubic spline weights (−1, 9, 9, −1)/16 when all
	// four neighbors exist, falling back to Linear at boundaries.
	Cubic
)

// Options configures compression.
type Options struct {
	// EB is the absolute error bound (> 0).
	EB float64
	// Interp selects the interpolation spline (default Linear).
	Interp Interpolant
	// LevelEB, if non-nil, returns the error bound to use at interpolation
	// level l ∈ [1, maxLevel], where maxLevel is the finest (stride-1) level.
	// The paper's SZ3MR adaptive bound is
	//   eb_l = eb / min(α^(maxLevel−l), β).
	// If nil, EB is used at every level.
	LevelEB func(level, maxLevel int) float64
	// EntropyLanes selects the entropy stage's lane count: 0 or 1 keep the
	// single-lane huffman format (the default, byte-identical to earlier
	// versions), negative selects automatically from the stream size, and
	// an explicit power of two (≤ huffman.MaxLanes) writes that many
	// interleaved lanes, decodable in parallel. Streams of every lane count
	// decode through the same Decompress.
	EntropyLanes int
}

// AdaptiveLevelEB returns a LevelEB implementing the paper's SZ3MR rule with
// the given α and β (the paper fixes α = 2.25, β = 8 for multi-resolution
// data, more aggressive than QoZ's tuned values).
func AdaptiveLevelEB(eb, alpha, beta float64) func(level, maxLevel int) float64 {
	return func(level, maxLevel int) float64 {
		f := math.Pow(alpha, float64(maxLevel-level))
		if f > beta {
			f = beta
		}
		return eb / f
	}
}

const magic = "SZ3G"

// MaxLevelFor returns the number of interpolation levels used for the given
// dimensions: the smallest L with 2ᴸ ≥ max(nx, ny, nz).
func MaxLevelFor(nx, ny, nz int) int {
	maxDim := nx
	if ny > maxDim {
		maxDim = ny
	}
	if nz > maxDim {
		maxDim = nz
	}
	l := 0
	for s := 1; s < maxDim; s <<= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Codes runs the prediction + quantization stage only and returns the raw
// quantization-code stream that Compress would entropy-code. It exists so the
// entropy stage can be benchmarked on realistic code distributions (see
// BenchmarkHuffmanDecode and `mrbench -exp entropy`).
func Codes(f *field.Field, opt Options) ([]int32, error) {
	ebTable, maxLevel, err := buildEBTable(f, opt)
	if err != nil {
		return nil, err
	}
	codes, _ := encodeCore(f, opt.Interp, ebTable, maxLevel)
	return codes, nil
}

// buildEBTable validates opt and materializes the per-level error bounds.
func buildEBTable(f *field.Field, opt Options) ([]float64, int, error) {
	if opt.EB <= 0 {
		return nil, 0, errors.New("sz3: error bound must be positive")
	}
	maxLevel := MaxLevelFor(f.Nx, f.Ny, f.Nz)
	ebTable := make([]float64, maxLevel+1) // index by level, [1..maxLevel]; [0] = seed
	for l := 1; l <= maxLevel; l++ {
		if opt.LevelEB != nil {
			ebTable[l] = opt.LevelEB(l, maxLevel)
		} else {
			ebTable[l] = opt.EB
		}
		if ebTable[l] <= 0 {
			return nil, 0, fmt.Errorf("sz3: non-positive level eb at level %d", l)
		}
	}
	ebTable[0] = ebTable[1]
	return ebTable, maxLevel, nil
}

// Compress encodes the field under opt and returns the compressed bytes.
func Compress(f *field.Field, opt Options) ([]byte, error) {
	if !huffman.ValidLanes(opt.EntropyLanes) {
		return nil, fmt.Errorf("sz3: invalid entropy lane count %d", opt.EntropyLanes)
	}
	ebTable, maxLevel, err := buildEBTable(f, opt)
	if err != nil {
		return nil, err
	}
	codes, outliers := encodeCore(f, opt.Interp, ebTable, maxLevel)

	// Container: header | eb table | huffman codes | outliers, then DEFLATE.
	hb := huffman.EncodeInterleaved(codes, opt.EntropyLanes)
	var payload bytes.Buffer
	payload.Grow(len(hb) + 8*len(ebTable) + 8*len(outliers) + 64)
	payload.WriteString(magic)
	payload.WriteByte(byte(opt.Interp))
	var tmp [8]byte
	for _, v := range []uint64{uint64(f.Nx), uint64(f.Ny), uint64(f.Nz)} {
		n := binary.PutUvarint(tmp[:], v)
		payload.Write(tmp[:n])
	}
	n := binary.PutUvarint(tmp[:], uint64(maxLevel))
	payload.Write(tmp[:n])
	for _, eb := range ebTable {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(eb))
		payload.Write(tmp[:])
	}
	n = binary.PutUvarint(tmp[:], uint64(len(hb)))
	payload.Write(tmp[:n])
	payload.Write(hb)
	n = binary.PutUvarint(tmp[:], uint64(len(outliers)))
	payload.Write(tmp[:n])
	for _, v := range outliers {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		payload.Write(tmp[:])
	}

	return flatepool.Deflate(payload.Bytes())
}

// Decompress decodes a buffer produced by Compress.
func Decompress(data []byte) (*field.Field, error) { return DecompressWorkers(data, 1) }

// DecompressWorkers is Decompress with a goroutine bound for the entropy
// stage: an interleaved code stream decodes its lanes on up to workers
// goroutines (≤ 0 means the runtime default). Single-lane streams and
// workers == 1 decode fully serially. The result is identical either way.
func DecompressWorkers(data []byte, workers int) (*field.Field, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	payload, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("sz3: inflate: %w", err)
	}
	if len(payload) < 5 || string(payload[:4]) != magic {
		return nil, errors.New("sz3: bad magic")
	}
	interp := Interpolant(payload[4])
	buf := payload[5:]

	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, errors.New("sz3: truncated header")
		}
		buf = buf[n:]
		return v, nil
	}
	nx64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	ny64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nz64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	maxLevel64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nx, ny, nz, _, err := field.CheckDims(nx64, ny64, nz64)
	if err != nil || maxLevel64 == 0 || maxLevel64 > 62 {
		return nil, fmt.Errorf("sz3: invalid dims %dx%dx%d level %d", nx64, ny64, nz64, maxLevel64)
	}
	maxLevel := int(maxLevel64)
	if maxLevel != MaxLevelFor(nx, ny, nz) {
		return nil, errors.New("sz3: inconsistent level count")
	}
	ebTable := make([]float64, maxLevel+1)
	for i := range ebTable {
		if len(buf) < 8 {
			return nil, errors.New("sz3: truncated eb table")
		}
		ebTable[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		if !(ebTable[i] > 0) {
			return nil, errors.New("sz3: invalid eb in table")
		}
		buf = buf[8:]
	}
	hlen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(buf)) < hlen {
		return nil, errors.New("sz3: truncated code stream")
	}
	codes, err := huffman.DecodeWorkers(buf[:hlen], workers)
	if err != nil {
		return nil, err
	}
	buf = buf[hlen:]
	nOut, err := readUvarint()
	if err != nil {
		return nil, err
	}
	// Divide instead of multiplying: nOut*8 can wrap uint64 for a hostile
	// count and slip a huge value past the length check into make.
	if nOut > uint64(len(buf))/8 {
		return nil, errors.New("sz3: truncated outliers")
	}
	outliers := make([]float64, nOut)
	for i := range outliers {
		outliers[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	if len(codes) != nx*ny*nz {
		return nil, fmt.Errorf("sz3: code count %d does not match %dx%dx%d", len(codes), nx, ny, nz)
	}
	return decodeCore(nx, ny, nz, interp, ebTable, maxLevel, codes, outliers)
}

// visit enumerates, for one stride level and one axis pass, every point that
// pass predicts, in a deterministic order shared by encoder and decoder.
// Axis pass conventions (matching SZ3): when filling stride s from stride 2s,
//
//	pass 0 (x): x ≡ s (mod 2s), y ≡ 0 (mod 2s), z ≡ 0 (mod 2s)
//	pass 1 (y): x ≡ 0 (mod s),  y ≡ s (mod 2s), z ≡ 0 (mod 2s)
//	pass 2 (z): x ≡ 0 (mod s),  y ≡ 0 (mod s),  z ≡ s (mod 2s)
func visit(nx, ny, nz, s int, pass int, fn func(x, y, z int)) {
	s2 := 2 * s
	switch pass {
	case 0:
		for z := 0; z < nz; z += s2 {
			for y := 0; y < ny; y += s2 {
				for x := s; x < nx; x += s2 {
					fn(x, y, z)
				}
			}
		}
	case 1:
		for z := 0; z < nz; z += s2 {
			for y := s; y < ny; y += s2 {
				for x := 0; x < nx; x += s {
					fn(x, y, z)
				}
			}
		}
	case 2:
		for z := s; z < nz; z += s2 {
			for y := 0; y < ny; y += s {
				for x := 0; x < nx; x += s {
					fn(x, y, z)
				}
			}
		}
	}
}

// predictor computes the spline prediction for point (x,y,z) along the given
// axis at stride s, using only already-reconstructed values in recon.
type predictor struct {
	recon      []float64
	nx, ny, nz int
	interp     Interpolant
}

func (p *predictor) idx(x, y, z int) int { return x + p.nx*(y+p.ny*z) }

// predict returns the prediction for the point at (x,y,z) along axis
// (0=x,1=y,2=z) with neighbor distance s.
func (p *predictor) predict(x, y, z, axis, s int) float64 {
	var pos, dim int
	switch axis {
	case 0:
		pos, dim = x, p.nx
	case 1:
		pos, dim = y, p.ny
	default:
		pos, dim = z, p.nz
	}
	at := func(q int) float64 {
		switch axis {
		case 0:
			return p.recon[p.idx(q, y, z)]
		case 1:
			return p.recon[p.idx(x, q, z)]
		default:
			return p.recon[p.idx(x, y, q)]
		}
	}
	hasRight := pos+s < dim
	if !hasRight {
		// Boundary: linear extrapolation from the two previous known points
		// (spacing 2s), falling back to constant extrapolation.
		if pos-3*s >= 0 {
			return 1.5*at(pos-s) - 0.5*at(pos-3*s)
		}
		return at(pos - s)
	}
	if p.interp == Cubic && pos-3*s >= 0 && pos+3*s < dim {
		return (-at(pos-3*s) + 9*at(pos-s) + 9*at(pos+s) - at(pos+3*s)) / 16
	}
	return 0.5 * (at(pos-s) + at(pos+s))
}

// initialStride returns the starting stride: the smallest power of two ≥
// max dimension, so that the origin is the only known point initially.
func initialStride(nx, ny, nz int) int {
	maxDim := nx
	if ny > maxDim {
		maxDim = ny
	}
	if nz > maxDim {
		maxDim = nz
	}
	s := 1
	for s < maxDim {
		s <<= 1
	}
	return s
}

func encodeCore(f *field.Field, interp Interpolant, ebTable []float64, maxLevel int) ([]int32, []float64) {
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	recon := make([]float64, len(f.Data))
	codes := make([]int32, 0, len(f.Data))
	q := quant.New(ebTable[0])
	p := &predictor{recon: recon, nx: nx, ny: ny, nz: nz, interp: interp}

	// Seed: predict the origin with 0.
	q.EB = ebTable[0]
	c, r := q.Encode(f.Data[0], 0)
	codes = append(codes, c)
	recon[0] = r

	level := 0
	for s := initialStride(nx, ny, nz) / 2; s >= 1; s >>= 1 {
		level++
		q.EB = ebTable[levelIndex(level, maxLevel)]
		for pass := 0; pass < 3; pass++ {
			visit(nx, ny, nz, s, pass, func(x, y, z int) {
				i := p.idx(x, y, z)
				pred := p.predict(x, y, z, pass, s)
				c, r := q.Encode(f.Data[i], pred)
				codes = append(codes, c)
				recon[i] = r
			})
		}
	}
	return codes, q.Outliers
}

func decodeCore(nx, ny, nz int, interp Interpolant, ebTable []float64, maxLevel int, codes []int32, outliers []float64) (*field.Field, error) {
	f := field.New(nx, ny, nz)
	recon := f.Data
	q := quant.New(ebTable[0])
	q.Outliers = outliers
	p := &predictor{recon: recon, nx: nx, ny: ny, nz: nz, interp: interp}

	pos := 0
	next := func() (int32, error) {
		if pos >= len(codes) {
			return 0, errors.New("sz3: code stream underrun")
		}
		c := codes[pos]
		pos++
		return c, nil
	}

	q.EB = ebTable[0]
	c, err := next()
	if err != nil {
		return nil, err
	}
	recon[0] = q.Decode(c, 0)

	level := 0
	var decodeErr error
	for s := initialStride(nx, ny, nz) / 2; s >= 1 && decodeErr == nil; s >>= 1 {
		level++
		q.EB = ebTable[levelIndex(level, maxLevel)]
		for pass := 0; pass < 3 && decodeErr == nil; pass++ {
			visit(nx, ny, nz, s, pass, func(x, y, z int) {
				if decodeErr != nil {
					return
				}
				i := p.idx(x, y, z)
				pred := p.predict(x, y, z, pass, s)
				c, err := next()
				if err != nil {
					decodeErr = err
					return
				}
				recon[i] = q.Decode(c, pred)
			})
		}
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	if pos != len(codes) {
		return nil, fmt.Errorf("sz3: %d trailing codes", len(codes)-pos)
	}
	return f, nil
}

// levelIndex clamps the running level counter into the eb table range (the
// counter can exceed maxLevel only if dims disagree, which Decompress
// rejects, but clamping keeps encodeCore robust for any input).
func levelIndex(level, maxLevel int) int {
	if level > maxLevel {
		return maxLevel
	}
	return level
}
