package sz3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/synth"
)

func smoothField(n int) *field.Field {
	f := field.New(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				px, py, pz := float64(x)/float64(n), float64(y)/float64(n), float64(z)/float64(n)
				f.Set(x, y, z, math.Sin(4*px)*math.Cos(3*py)+pz*pz)
			}
		}
	}
	return f
}

func TestRoundTripWithinBound(t *testing.T) {
	f := smoothField(20)
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		data, err := Compress(f, Options{EB: eb})
		if err != nil {
			t.Fatal(err)
		}
		g, err := Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		if !f.SameShape(g) {
			t.Fatalf("shape mismatch")
		}
		if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
			t.Fatalf("eb=%g: max error %g exceeds bound", eb, d)
		}
	}
}

func TestCubicRoundTripWithinBound(t *testing.T) {
	f := smoothField(24)
	eb := 1e-4
	data, err := Compress(f, Options{EB: eb, Interp: Cubic})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
		t.Fatalf("cubic: max error %g exceeds %g", d, eb)
	}
}

func TestNonCubeDims(t *testing.T) {
	// Shapes like the paper's merged arrays: two small dims, one long dim.
	f := field.New(9, 9, 128)
	rng := rand.New(rand.NewSource(1))
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i)/50) + 0.01*rng.NormFloat64()
	}
	eb := 1e-3
	data, err := Compress(f, Options{EB: eb})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
		t.Fatalf("max error %g exceeds %g", d, eb)
	}
}

func TestDim1Axes(t *testing.T) {
	// 2D and 1D degenerate shapes must work (merged levels can be thin).
	for _, dims := range [][3]int{{16, 16, 1}, {1, 32, 1}, {1, 1, 17}, {5, 1, 9}} {
		f := field.New(dims[0], dims[1], dims[2])
		for i := range f.Data {
			f.Data[i] = float64(i % 7)
		}
		data, err := Compress(f, Options{EB: 0.01})
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		g, err := Decompress(data)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if d := f.MaxAbsDiff(g); d > 0.01*(1+1e-12) {
			t.Fatalf("%v: max error %g", dims, d)
		}
	}
}

func TestSingleVoxel(t *testing.T) {
	f := field.New(1, 1, 1)
	f.Data[0] = 3.25
	data, err := Compress(f, Options{EB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Data[0]-3.25) > 0.1 {
		t.Fatalf("single voxel error %g", math.Abs(g.Data[0]-3.25))
	}
}

func TestAdaptiveLevelEBWithinOverallBound(t *testing.T) {
	// Adaptive per-level bounds only tighten: overall error stays ≤ EB.
	f := smoothField(16)
	eb := 1e-3
	opt := Options{EB: eb, LevelEB: AdaptiveLevelEB(eb, 2.25, 8)}
	data, err := Compress(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
		t.Fatalf("adaptive eb: max error %g exceeds %g", d, eb)
	}
}

func TestAdaptiveLevelEBValues(t *testing.T) {
	fn := AdaptiveLevelEB(1.0, 2.25, 8)
	// Finest level gets the full bound.
	if got := fn(5, 5); got != 1.0 {
		t.Fatalf("finest level eb = %g, want 1", got)
	}
	// One level coarser: eb/2.25.
	if got := fn(4, 5); math.Abs(got-1/2.25) > 1e-15 {
		t.Fatalf("level 4 eb = %g, want %g", got, 1/2.25)
	}
	// Very coarse levels capped at eb/8.
	if got := fn(1, 10); got != 1.0/8 {
		t.Fatalf("coarse level eb = %g, want 1/8", got)
	}
}

func TestCompressionBeatsRawOnSmoothData(t *testing.T) {
	f := smoothField(32)
	data, err := Compress(f, Options{EB: f.ValueRange() * 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(f.Bytes()) / float64(len(data))
	if cr < 5 {
		t.Fatalf("compression ratio %.1f too low for smooth data", cr)
	}
}

func TestInvalidInputs(t *testing.T) {
	f := smoothField(4)
	if _, err := Compress(f, Options{EB: 0}); err == nil {
		t.Fatal("expected error for zero eb")
	}
	if _, err := Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for garbage input")
	}
	good, _ := Compress(f, Options{EB: 0.1})
	if _, err := Decompress(good[:len(good)/2]); err == nil {
		t.Fatal("expected error for truncated input")
	}
}

func TestMaxLevelFor(t *testing.T) {
	cases := []struct {
		nx, ny, nz, want int
	}{
		{8, 8, 8, 3}, {9, 4, 4, 4}, {1, 1, 1, 1}, {2, 2, 2, 1}, {128, 4, 4, 7},
	}
	for _, c := range cases {
		if got := MaxLevelFor(c.nx, c.ny, c.nz); got != c.want {
			t.Fatalf("MaxLevelFor(%d,%d,%d) = %d, want %d", c.nx, c.ny, c.nz, got, c.want)
		}
	}
}

// TestInterpolation8 mirrors Fig. 7 of the paper: for an 8-point 1D block,
// the interior points at indices 4 (stride 4) and 6 (stride 2) and the last
// point 7 (stride 1) lack a right neighbor and are extrapolated.
func TestInterpolation8(t *testing.T) {
	p := &predictor{recon: make([]float64, 8), nx: 8, ny: 1, nz: 1, interp: Linear}
	for i := range p.recon {
		p.recon[i] = float64(i) // linear data
	}
	// Index 4 at stride 4: right neighbor 8 out of bounds, only constant
	// extrapolation from index 0 available → suboptimal prediction (0 ≠ 4).
	if got := p.predict(4, 0, 0, 0, 4); got != 0 {
		t.Fatalf("extrapolated d5 = %g, want 0 (constant from d1)", got)
	}
	// Index 6 at stride 2: linear extrapolation 1.5·recon[4] − 0.5·recon[0].
	if got := p.predict(6, 0, 0, 0, 2); got != 6 {
		t.Fatalf("extrapolated d7 = %g, want 6", got)
	}
	// Interior midpoint with both neighbors: exact for linear data.
	if got := p.predict(2, 0, 0, 0, 2); got != 2 {
		t.Fatalf("interpolated d3 = %g, want 2", got)
	}
}

// TestPadding9 mirrors Fig. 8: with one padded point (9 samples), every
// interior point has both neighbors and is interpolated, not extrapolated.
func TestPadding9(t *testing.T) {
	p := &predictor{recon: make([]float64, 9), nx: 9, ny: 1, nz: 1, interp: Linear}
	for i := range p.recon {
		p.recon[i] = float64(i)
	}
	// Index 4 at stride 4 now has neighbors 0 and 8 → exact interpolation.
	if got := p.predict(4, 0, 0, 0, 4); got != 4 {
		t.Fatalf("interpolated d5 = %g, want 4", got)
	}
	// Index 6 at stride 2 has neighbors 4 and 8 → exact.
	if got := p.predict(6, 0, 0, 0, 2); got != 6 {
		t.Fatalf("interpolated d7 = %g, want 6", got)
	}
}

func TestVisitCoversAllPointsExactlyOnce(t *testing.T) {
	// Property: the seed plus all (level, pass) visits enumerate every point
	// of the domain exactly once.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		seen := make([]int, nx*ny*nz)
		seen[0]++ // seed
		for s := initialStride(nx, ny, nz) / 2; s >= 1; s >>= 1 {
			for pass := 0; pass < 3; pass++ {
				visit(nx, ny, nz, s, pass, func(x, y, z int) {
					seen[x+nx*(y+ny*z)]++
				})
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripRandomFields(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		f := field.New(nx, ny, nz)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6))-3)
		}
		eb := 1e-3
		data, err := Compress(f, Options{EB: eb, Interp: Interpolant(rng.Intn(2))})
		if err != nil {
			return false
		}
		g, err := Decompress(data)
		if err != nil {
			return false
		}
		return f.MaxAbsDiff(g) <= eb*(1+1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRealisticDatasets(t *testing.T) {
	for _, kind := range []synth.Dataset{synth.Nyx, synth.WarpX} {
		f := synth.Generate(kind, 24, 3)
		eb := f.ValueRange() * 1e-3
		data, err := Compress(f, Options{EB: eb})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		g, err := Decompress(data)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
			t.Fatalf("%s: error %g exceeds %g", kind, d, eb)
		}
	}
}
